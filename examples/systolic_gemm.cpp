// PULSAR beyond QR: the textbook 2D systolic array — matrix
// multiplication C = A * B on a grid of processing elements, with A tiles
// streaming rightward and B tiles streaming downward (Kung & Leiserson's
// classic design, reference [8] of the paper).
//
// This demonstrates the Section II goal that the runtime is "fully
// decoupled from the user code" and reusable across application domains:
// the whole application is VDP functions plus channel wiring.
//
//   build/examples/systolic_gemm
#include <cstdio>
#include <memory>

#include "blas/blas.hpp"
#include "common/rng.hpp"
#include "prt/vsa.hpp"
#include "tile/tile_matrix.hpp"
#include "vsaqr/codec.hpp"

using namespace pulsarqr;
using prt::Packet;
using prt::Tuple;

namespace {

/// Results deposited by the grid's VDPs.
struct GemmSink {
  explicit GemmSink(TileMatrix c) : c(std::move(c)) {}
  TileMatrix c;
};

}  // namespace

int main() {
  const int m = 384, k = 256, n = 320, nb = 64;
  Matrix ad(m, k), bd(k, n);
  fill_random(ad.view(), 11);
  fill_random(bd.view(), 12);
  TileMatrix a = TileMatrix::from_dense(ad.view(), nb);
  TileMatrix b = TileMatrix::from_dense(bd.view(), nb);
  const int mt = a.mt(), kt = a.nt(), ntt = b.nt();

  prt::Vsa::Config cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 2;
  prt::Vsa vsa(cfg);
  auto sink = std::make_shared<GemmSink>(TileMatrix(m, n, nb));
  vsa.set_global(sink);

  // PE(i,j) receives kt tile pairs: A(i,0..kt) from the left, B(0..kt,j)
  // from above; accumulates C(i,j) locally; forwards both streams onward.
  const std::size_t bytes = vsaqr::tile_packet_bytes(nb, nb);
  for (int i = 0; i < mt; ++i) {
    for (int j = 0; j < ntt; ++j) {
      const bool last_col = j == ntt - 1;
      const bool last_row = i == mt - 1;
      const int num_out = (last_col ? 0 : 1) + (last_row ? 0 : 1);
      vsa.add_vdp(
          prt::tuple2(i, j), kt,
          [i, j, last_col, last_row](prt::VdpContext& ctx) {
            Packet pa = ctx.pop(0);
            Packet pb = ctx.pop(1);
            // Systolic forwarding first (by-pass), then local compute.
            int slot = 0;
            if (!last_col) ctx.push(slot++, pa);
            if (!last_row) ctx.push(slot, pb);
            auto& s = ctx.global<GemmSink>();
            MatrixView c = s.c.tile(i, j);
            blas::gemm(blas::Trans::No, blas::Trans::No, 1.0,
                       vsaqr::tile_view(pa), vsaqr::tile_view(pb), 1.0, c);
          },
          2, num_out);
    }
  }
  // Horizontal channels carry A, vertical carry B; the west/north borders
  // are fed with the input tiles.
  for (int i = 0; i < mt; ++i) {
    std::vector<Packet> row;
    for (int p = 0; p < kt; ++p) row.push_back(vsaqr::encode_tile(a.tile(i, p), p));
    vsa.feed(prt::tuple2(i, 0), 0, bytes, std::move(row));
    for (int j = 0; j + 1 < ntt; ++j) {
      vsa.connect(prt::tuple2(i, j), 0, prt::tuple2(i, j + 1), 0, bytes);
    }
  }
  for (int j = 0; j < ntt; ++j) {
    std::vector<Packet> col;
    for (int p = 0; p < kt; ++p) col.push_back(vsaqr::encode_tile(b.tile(p, j), p));
    vsa.feed(prt::tuple2(0, j), 1, bytes, std::move(col));
    for (int i = 0; i + 1 < mt; ++i) {
      const int slot = (j == ntt - 1) ? 0 : 1;
      vsa.connect(prt::tuple2(i, j), slot, prt::tuple2(i + 1, j), 1, bytes);
    }
  }

  auto stats = vsa.run();
  std::printf("systolic C = A*B on a %d x %d PE grid: %lld firings, "
              "%lld inter-node messages, %.3f s\n",
              mt, ntt, stats.fires, stats.remote_messages, stats.seconds);

  // Verify against a direct gemm.
  Matrix expect(m, n);
  blas::gemm(blas::Trans::No, blas::Trans::No, 1.0, ad.view(), bd.view(), 0.0,
             expect.view());
  Matrix got = sink->c.to_dense();
  double err = 0.0;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      err = std::max(err, std::abs(got(i, j) - expect(i, j)));
    }
  }
  std::printf("max |C - C_ref| = %.3e\n", err);
  return err < 1e-10 * k ? 0 : 1;
}
