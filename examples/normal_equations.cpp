// Two systolic arrays, one problem: solve the same least-squares system
//   (a) by tree QR of [A | b] on the 3D array (backward stable), and
//   (b) by forming the normal equations A^T A x = A^T b and factorizing
//       them with the PULSAR-mapped Cholesky array.
// Cholesky squares the condition number; on an ill-conditioned design
// matrix the QR route keeps digits the normal equations lose — measured
// and printed at the end.
//
//   build/examples/normal_equations
#include <cmath>
#include <cstdio>

#include "blas/blas.hpp"
#include "chol/vsa_chol.hpp"
#include "common/rng.hpp"
#include "vsaqr/tree_qr.hpp"

using namespace pulsarqr;

int main() {
  const int m = 4000;
  const int n = 48;
  // An ill-conditioned design matrix: geometrically decaying column
  // scales (cond ~ 1e6).
  Matrix a(m, n);
  fill_random(a.view(), 55);
  for (int j = 0; j < n; ++j) {
    const double scale = std::pow(10.0, -6.0 * j / (n - 1));
    blas::scal(m, scale, a.view().col(j));
  }
  Rng rng(56);
  std::vector<double> xtrue(n);
  for (auto& v : xtrue) v = rng.next_symmetric();
  std::vector<double> b(m);
  blas::gemv(blas::Trans::No, 1.0, a.view(), xtrue.data(), 0.0, b.data());

  // (a) Tree QR on the 3D array.
  TileMatrix at = TileMatrix::from_dense(a.view(), 48);
  vsaqr::TreeQrOptions qopt;
  qopt.tree = {plan::TreeKind::BinaryOnFlat, 6, plan::BoundaryMode::Shifted};
  qopt.ib = 12;
  qopt.nodes = 2;
  Matrix bx(m, 1);
  for (int i = 0; i < m; ++i) bx(i, 0) = b[i];
  Matrix xqr = vsaqr::tree_qr_solve(at, bx.view(), qopt);

  // (b) Normal equations + systolic Cholesky.
  Matrix ata(n, n);
  blas::gemm(blas::Trans::Yes, blas::Trans::No, 1.0, a.view(), a.view(), 0.0,
             ata.view());
  std::vector<double> atb(n, 0.0);
  blas::gemv(blas::Trans::Yes, 1.0, a.view(), b.data(), 0.0, atb.data());
  chol::VsaCholOptions copt;
  copt.nodes = 2;
  auto lrun = chol::vsa_cholesky(TileMatrix::from_dense(ata.view(), 12), copt);
  const auto xchol = chol::chol_solve(lrun.l, atb);

  double err_qr = 0.0, err_chol = 0.0;
  for (int i = 0; i < n; ++i) {
    err_qr = std::fmax(err_qr, std::fabs(xqr(i, 0) - xtrue[i]));
    err_chol = std::fmax(err_chol, std::fabs(xchol[i] - xtrue[i]));
  }
  std::printf("ill-conditioned least squares, %d x %d (cond ~ 1e6)\n\n", m, n);
  std::printf("tree QR on the 3D array     : max error %.3e\n", err_qr);
  std::printf("normal eqs + systolic chol  : max error %.3e\n", err_chol);
  std::printf("\nQR works on A directly (cond ~ 1e6); the normal equations "
              "square it (cond ~ 1e12),\nso Cholesky loses ~6 more digits — "
              "the classic argument for tall-skinny QR.\n");
  return err_qr < 1e-6 && err_qr <= err_chol ? 0 : 1;
}
