// Explore the reduction-tree design space on the real runtime: factor the
// same matrix with every tree kind, domain size and boundary mode, verify
// the factors agree with the sequential reference, and print the array's
// shape (VDP/channel counts), message traffic and trace statistics.
//
//   build/examples/explore_trees [m n nb ib]
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "prt/trace.hpp"
#include "ref/reference_qr.hpp"
#include "vsaqr/tree_qr.hpp"

using namespace pulsarqr;

int main(int argc, char** argv) {
  const int m = argc > 1 ? std::atoi(argv[1]) : 1280;
  const int n = argc > 2 ? std::atoi(argv[2]) : 256;
  const int nb = argc > 3 ? std::atoi(argv[3]) : 64;
  const int ib = argc > 4 ? std::atoi(argv[4]) : 16;
  std::printf("exploring reduction trees for a %d x %d matrix "
              "(nb = %d, ib = %d, 2 virtual nodes x 2 workers)\n\n",
              m, n, nb, ib);
  Matrix a0(m, n);
  fill_random(a0.view(), 123);
  TileMatrix a = TileMatrix::from_dense(a0.view(), nb);

  struct Config {
    const char* name;
    plan::PlanConfig cfg;
  };
  const Config configs[] = {
      {"flat (domino QR)", {plan::TreeKind::Flat, 1,
                            plan::BoundaryMode::Shifted}},
      {"binary", {plan::TreeKind::Binary, 1, plan::BoundaryMode::Shifted}},
      {"binary-on-flat h=2", {plan::TreeKind::BinaryOnFlat, 2,
                              plan::BoundaryMode::Shifted}},
      {"binary-on-flat h=5", {plan::TreeKind::BinaryOnFlat, 5,
                              plan::BoundaryMode::Shifted}},
      {"binary-on-flat h=5 (fixed bnd)", {plan::TreeKind::BinaryOnFlat, 5,
                                          plan::BoundaryMode::Fixed}},
  };

  std::printf("%-32s %6s %8s %8s %8s %9s %8s\n", "tree", "VDPs", "channels",
              "firings", "msgs", "overlap%", "check");
  for (const auto& c : configs) {
    vsaqr::TreeQrOptions opt;
    opt.tree = c.cfg;
    opt.ib = ib;
    opt.nodes = 2;
    opt.workers_per_node = 2;
    opt.trace = true;
    auto run = vsaqr::tree_qr(a, opt);
    auto reference =
        ref::tree_qr(TileMatrix::from_dense(a0.view(), nb), ib, c.cfg);
    bool same = true;
    for (int j = 0; j < n && same; ++j) {
      for (int i = 0; i < m; ++i) {
        if (run.factors.a.at(i, j) != reference.a.at(i, j)) {
          same = false;
          break;
        }
      }
    }
    const auto st = prt::trace::compute_stats(run.events, 4, 2);
    std::printf("%-32s %6d %8d %8lld %8lld %9.1f %8s\n", c.name,
                run.vdp_count, run.channel_count, run.stats.fires,
                run.stats.remote_messages, st.overlap_fraction * 100,
                same ? "bitwise" : "DIFFER");
    if (!same) return 1;
  }
  std::printf("\nevery configuration produces bitwise the factors of the "
              "sequential reference executor.\n");
  return 0;
}
