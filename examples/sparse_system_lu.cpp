// Solving a discretized PDE system with the systolic LU array.
//
// A 2D reaction-diffusion operator (5-point Laplacian plus a reaction
// term) on an N x N grid gives a diagonally dominant system — exactly the
// class where no-pivot LU is safe. We assemble it densely (this library
// is a dense-tile engine), factorize it on the PULSAR LU array, and check
// the solution against a manufactured right-hand side.
//
//   build/examples/sparse_system_lu
#include <cmath>
#include <cstdio>

#include "blas/blas.hpp"
#include "common/rng.hpp"
#include "lu/vsa_lu.hpp"

using namespace pulsarqr;

int main() {
  const int grid = 28;           // 28 x 28 interior points
  const int n = grid * grid;     // 784 unknowns
  const double reaction = 0.35;  // diagonal shift (keeps dominance strict)

  // Assemble -Laplacian + reaction*I (row-wise 5-point stencil).
  Matrix a(n, n);
  auto idx = [&](int r, int c) { return r * grid + c; };
  for (int r = 0; r < grid; ++r) {
    for (int c = 0; c < grid; ++c) {
      const int i = idx(r, c);
      a(i, i) = 4.0 + reaction;
      if (r > 0) a(i, idx(r - 1, c)) = -1.0;
      if (r + 1 < grid) a(i, idx(r + 1, c)) = -1.0;
      if (c > 0) a(i, idx(r, c - 1)) = -1.0;
      if (c + 1 < grid) a(i, idx(r, c + 1)) = -1.0;
    }
  }

  // Manufactured solution: u(r,c) = sin(pi r/N) * cos(pi c/N).
  std::vector<double> utrue(n);
  for (int r = 0; r < grid; ++r) {
    for (int c = 0; c < grid; ++c) {
      utrue[idx(r, c)] =
          std::sin(M_PI * (r + 1) / (grid + 1)) *
          std::cos(M_PI * (c + 1) / (grid + 1));
    }
  }
  std::vector<double> b(n, 0.0);
  blas::gemv(blas::Trans::No, 1.0, a.view(), utrue.data(), 0.0, b.data());

  lu::VsaLuOptions opt;
  opt.nodes = 2;
  opt.workers_per_node = 2;
  auto run = lu::vsa_lu(TileMatrix::from_dense(a.view(), 56), opt);
  const auto u = lu::lu_solve(run.f, b);

  double err = 0.0;
  for (int i = 0; i < n; ++i) err = std::max(err, std::abs(u[i] - utrue[i]));
  std::printf("reaction-diffusion system: %d unknowns (%dx%d grid)\n", n,
              grid, grid);
  std::printf("systolic LU: %lld firings on %d virtual nodes, %lld "
              "inter-node messages\n",
              run.stats.fires, opt.nodes, run.stats.remote_messages);
  std::printf("max |u - u_true| = %.3e\n", err);
  return err < 1e-10 ? 0 : 1;
}
