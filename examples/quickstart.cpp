// Quickstart: factorize a tall-and-skinny matrix on the virtual systolic
// array and solve a least-squares problem with it.
//
//   build/examples/quickstart
#include <cstdio>

#include "blas/blas.hpp"
#include "common/rng.hpp"
#include "lapack/solve.hpp"
#include "ref/apply_q.hpp"
#include "vsaqr/tree_qr.hpp"

using namespace pulsarqr;

int main() {
  // An overdetermined system: 3000 observations, 40 unknowns.
  const int m = 3000;
  const int n = 40;
  Matrix a(m, n);
  fill_random_well_conditioned(a.view(), 1);
  Rng rng(2);
  std::vector<double> xtrue(n);
  for (auto& v : xtrue) v = rng.next_symmetric();
  std::vector<double> b(m);
  blas::gemv(blas::Trans::No, 1.0, a.view(), xtrue.data(), 0.0, b.data());
  for (auto& v : b) v += 1e-6 * rng.next_symmetric();  // measurement noise

  // Tile it and factorize on the VSA: binary tree on top of flat trees,
  // shifted domain boundaries (the paper's configuration).
  TileMatrix tiled = TileMatrix::from_dense(a.view(), /*nb=*/40);
  vsaqr::TreeQrOptions opt;
  opt.tree = {plan::TreeKind::BinaryOnFlat, /*h=*/6,
              plan::BoundaryMode::Shifted};
  opt.ib = 8;
  opt.nodes = 2;            // two virtual distributed-memory nodes
  opt.workers_per_node = 2; // two worker threads each
  auto run = vsaqr::tree_qr(tiled, opt);

  std::printf("factorized %d x %d: %lld VDP firings on %d virtual nodes, "
              "%lld inter-node messages\n",
              m, n, run.stats.fires, opt.nodes, run.stats.remote_messages);

  // Solve min ||Ax - b|| with the factors: x = R^{-1} (Q^T b).
  const auto x = ref::least_squares(run.factors, b);
  double err = 0.0;
  for (int i = 0; i < n; ++i) {
    err = std::max(err, std::abs(x[i] - xtrue[i]));
  }
  std::printf("max |x - x_true|     = %.3e\n", err);
  std::printf("residual ||b - Ax||  = %.3e\n",
              lapack::residual_norm(a.view(), x, b));
  return err < 1e-4 ? 0 : 1;
}
