// Domain scenario: harmonic regression on a long sensor time series.
//
// The paper motivates tall-and-skinny QR with "models using least-squares
// optimization" over growing data volumes (Section II). This example
// builds the classic instance: fit a trend + seasonal harmonics model to
// tens of thousands of noisy samples — a design matrix with m >> n — and
// solves it through the tree QR, comparing the three reduction trees.
//
//   build/examples/least_squares_fitting
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "ref/apply_q.hpp"
#include "vsaqr/tree_qr.hpp"

using namespace pulsarqr;

namespace {

constexpr int kHarmonics = 6;
constexpr int kCols = 2 + 2 * kHarmonics;  // intercept, slope, sin/cos pairs

// Design matrix row for time t in [0, 1).
void design_row(double t, double* row) {
  row[0] = 1.0;
  row[1] = t;
  for (int h = 1; h <= kHarmonics; ++h) {
    row[2 * h] = std::sin(2.0 * M_PI * h * t);
    row[2 * h + 1] = std::cos(2.0 * M_PI * h * t);
  }
}

const char* tree_name(plan::TreeKind t) {
  switch (t) {
    case plan::TreeKind::Flat: return "flat";
    case plan::TreeKind::Binary: return "binary";
    case plan::TreeKind::BinaryOnFlat: return "binary-on-flat";
  }
  return "?";
}

}  // namespace

int main() {
  const int m = 36000;  // e.g. one sample per second for 10 hours
  const int n = kCols;
  std::printf("harmonic regression: %d observations, %d coefficients\n\n", m,
              n);

  // Ground-truth signal: trend + two strong harmonics + noise.
  Rng rng(7);
  std::vector<double> truth(n, 0.0);
  truth[0] = 3.0;   // offset
  truth[1] = -1.5;  // drift
  truth[2] = 2.0;   // sin(2 pi t)
  truth[5] = 0.8;   // cos(4 pi t)
  Matrix a(m, n);
  std::vector<double> b(m);
  std::vector<double> row(n);
  for (int i = 0; i < m; ++i) {
    const double t = static_cast<double>(i) / m;
    design_row(t, row.data());
    double y = 0.0;
    for (int j = 0; j < n; ++j) {
      a(i, j) = row[j];
      y += truth[j] * row[j];
    }
    b[i] = y + 0.05 * rng.next_symmetric();
  }

  TileMatrix tiled = TileMatrix::from_dense(a.view(), /*nb=*/n);
  for (plan::TreeKind tree :
       {plan::TreeKind::Flat, plan::TreeKind::Binary,
        plan::TreeKind::BinaryOnFlat}) {
    vsaqr::TreeQrOptions opt;
    opt.tree = {tree, 8, plan::BoundaryMode::Shifted};
    opt.ib = 7;
    opt.workers_per_node = 3;
    const auto t0 = std::chrono::steady_clock::now();
    auto run = vsaqr::tree_qr(tiled, opt);
    const auto x = ref::least_squares(run.factors, b);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    double coeff_err = 0.0;
    for (int j = 0; j < n; ++j) {
      coeff_err = std::max(coeff_err, std::abs(x[j] - truth[j]));
    }
    std::printf("%-15s: %7.3f s, %6lld firings, max coefficient error "
                "%.2e\n",
                tree_name(tree), secs, run.stats.fires, coeff_err);
  }

  std::printf("\nall trees recover the planted model; on real parallel "
              "hardware the hierarchical tree wins on speed for this "
              "extreme aspect ratio (m/n = %d).\n", m / n);
  return 0;
}
