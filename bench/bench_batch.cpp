// Throughput benchmark for the batched small-matrix QR path: jobs/sec and
// Gflop/s of the fused single-graph plan against (a) one VSA graph per
// matrix — the cost a caller pays without the batch API, isolating the
// per-graph build + GraphCheck + worker spawn/teardown overhead — and
// (b) a plain sequential LAPACK-style geqrt loop, the zero-runtime floor.
// All three run the identical geqrt kernel on identical bytes, so the
// deltas are pure runtime overhead. Timing is manual: the input refill
// (matrices are factored in place) happens outside the measured region.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <span>
#include <vector>

#include "blas/simd.hpp"
#include "common/rng.hpp"
#include "kernels/tile_kernels.hpp"
#include "plan/flops.hpp"
#include "vsaqr/qr_batch.hpp"

namespace {

using namespace pulsarqr;

constexpr int kIb = 32;
constexpr int kWorkers = 2;  // same thread count for fused and per-matrix

template <class T>
struct BatchData {
  std::vector<MatrixT<T>> pristine, a, t;
  std::vector<MatrixViewT<T>> av, tv;
  std::size_t tile_bytes;

  BatchData(int batch, int m, int n) {
    const int k = std::min(m, n);
    tile_bytes = sizeof(T) * static_cast<std::size_t>(m) * n;
    pristine.reserve(batch);
    a.reserve(batch);
    t.reserve(batch);
    Rng rng(20260808);
    for (int i = 0; i < batch; ++i) {
      pristine.emplace_back(m, n);
      MatrixT<T>& p = pristine.back();
      for (int j = 0; j < n; ++j) {
        for (int r = 0; r < m; ++r) p(r, j) = static_cast<T>(rng.next_symmetric());
      }
      a.push_back(p);
      t.emplace_back(std::min(kIb, k), k);
    }
    for (int i = 0; i < batch; ++i) {
      av.push_back(a[i].view());
      tv.push_back(t[i].view());
    }
  }

  void refill() {
    for (std::size_t i = 0; i < a.size(); ++i) {
      std::memcpy(a[i].data(), pristine[i].data(), tile_bytes);
    }
  }
};

void set_counters(benchmark::State& state, int batch, int m, int n) {
  const double jobs = static_cast<double>(state.iterations()) * batch;
  state.SetItemsProcessed(static_cast<int64_t>(jobs));
  state.counters["jobs_per_s"] =
      benchmark::Counter(jobs, benchmark::Counter::kIsRate);
  state.counters["Gflop/s"] = benchmark::Counter(
      jobs * plan::flops_geqrt(m, n) * 1e-9, benchmark::Counter::kIsRate);
  state.SetLabel(blas::simd::isa_name(blas::simd::active_isa()));
}

template <class T>
void bm_batch_fused(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  BatchData<T> data(batch, m, n);
  vsaqr::BatchOptions opt;
  opt.ib = kIb;
  opt.workers_per_node = kWorkers;
  for (auto _ : state) {
    data.refill();
    const auto t0 = std::chrono::steady_clock::now();
    const vsaqr::BatchRun run = vsaqr::qr_batch(
        std::span<const MatrixViewT<T>>(data.av),
        std::span<const MatrixViewT<T>>(data.tv), opt);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    benchmark::DoNotOptimize(run.stats.fires);
    state.SetIterationTime(dt.count());
  }
  set_counters(state, batch, m, n);
}

void BM_qr_batch_fused(benchmark::State& state) {
  bm_batch_fused<double>(state);
}

void BM_qr_batch_fused_f32(benchmark::State& state) {
  bm_batch_fused<float>(state);
}

// One full VSA lifecycle per matrix: what the batch API exists to amortize.
void BM_qr_single_graph(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  BatchData<double> data(batch, m, n);
  vsaqr::BatchOptions opt;
  opt.ib = kIb;
  opt.workers_per_node = kWorkers;
  for (auto _ : state) {
    data.refill();
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < batch; ++i) {
      const vsaqr::BatchRun run =
          vsaqr::qr_batch(std::span<const MatrixView>(&data.av[i], 1),
                          std::span<const MatrixView>(&data.tv[i], 1), opt);
      benchmark::DoNotOptimize(run.stats.fires);
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    state.SetIterationTime(dt.count());
  }
  set_counters(state, batch, m, n);
}

// The zero-runtime floor: a plain loop of geqrt calls on one thread.
void BM_qr_sequential(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  BatchData<double> data(batch, m, n);
  kernels::Workspace ws;
  for (auto _ : state) {
    data.refill();
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < batch; ++i) {
      kernels::geqrt(data.av[i], kIb, data.tv[i], ws);
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    state.SetIterationTime(dt.count());
  }
  set_counters(state, batch, m, n);
}

}  // namespace

BENCHMARK(BM_qr_batch_fused)
    ->Args({64, 64, 16})->Args({1024, 64, 16})
    ->Args({64, 128, 32})->Args({1024, 128, 32})
    ->UseManualTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_qr_batch_fused_f32)
    ->Args({1024, 64, 16})
    ->UseManualTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_qr_single_graph)
    ->Args({64, 64, 16})->Args({1024, 64, 16})
    ->Args({64, 128, 32})->Args({1024, 128, 32})
    ->UseManualTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_qr_sequential)
    ->Args({64, 64, 16})->Args({1024, 64, 16})
    ->Args({64, 128, 32})->Args({1024, 128, 32})
    ->UseManualTime()->Unit(benchmark::kMillisecond);
