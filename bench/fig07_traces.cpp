// Figure 7 reproduction: execution traces of the hierarchical QR with
// fixed vs shifted domain boundaries, on the real PULSAR runtime.
//
// The paper's Figure 7 shows per-core Gantt traces where red = flat-tree
// panel reductions, orange = the corresponding trailing updates and
// blue = binary-tree reductions. With fixed boundaries only the first
// domain of the next panel can overlap the binary reduction; with shifted
// boundaries the flat trees overlap much more. We reproduce the traces
// (ASCII Gantt + CSV) and quantify the effect with two numbers per mode:
// the flat/binary overlap fraction and total wall time.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "vsaqr/tree_qr.hpp"

using namespace pulsarqr;

namespace {

struct ModeResult {
  double seconds = 0.0;
  double overlap = 0.0;
  double utilization = 0.0;
  double depth = 0.0;  ///< average panel steps in flight
};

// One traced run; the trace of the last repetition is rendered/saved.
ModeResult run_once(plan::BoundaryMode bm, const TileMatrix& a, int workers,
                    int h, int ib, bool render, const char* name) {
  vsaqr::TreeQrOptions opt;
  opt.tree = {plan::TreeKind::BinaryOnFlat, h, bm};
  opt.ib = ib;
  opt.nodes = 1;
  opt.workers_per_node = workers;
  opt.trace = true;
  auto run = vsaqr::tree_qr(a, opt);
  const auto stats =
      prt::trace::compute_stats(run.events, workers, vsaqr::kColorBinary);
  if (render) {
    std::printf("\nGantt, boundary = %s (F=flat factor, U=update, "
                "B=binary, .=idle):\n",
                name);
    prt::trace::write_ascii_gantt(std::cout, run.events, workers, 100,
                                  {"flat-factor", "update", "binary"});
    const std::string csv = std::string("fig07_trace_") + name + ".csv";
    std::ofstream os(csv);
    prt::trace::write_csv(os, run.events);
    std::printf("full trace written to %s\n", csv.c_str());
  }
  return {stats.span, stats.overlap_fraction, stats.utilization,
          prt::trace::pipeline_depth(run.events)};
}

// Median over repetitions: on an oversubscribed host a single trace is
// noisy (preempted tasks count as "in flight").
ModeResult run_mode(plan::BoundaryMode bm, const char* name,
                    const TileMatrix& a, int workers, int h, int ib,
                    int reps) {
  std::vector<double> overlap, util, span, depth;
  for (int r = 0; r < reps; ++r) {
    const auto one = run_once(bm, a, workers, h, ib, r == reps - 1, name);
    overlap.push_back(one.overlap);
    util.push_back(one.utilization);
    span.push_back(one.seconds);
    depth.push_back(one.depth);
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  ModeResult out{median(span), median(overlap), median(util), median(depth)};
  std::printf("\n--- boundary = %s (median of %d runs) ---\n", name, reps);
  std::printf("wall time          : %8.3f s\n", out.seconds);
  std::printf("worker utilization : %8.1f %%\n", out.utilization * 100);
  std::printf("binary/flat overlap: %8.1f %% of wall time\n",
              out.overlap * 100);
  std::printf("pipeline depth     : %8.2f panel steps in flight\n",
              out.depth);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Defaults chosen so the panel reductions dominate (few trailing
  // columns) — the regime where the boundary strategy matters most.
  const int m = argc > 1 ? std::atoi(argv[1]) : 4096;
  const int n = argc > 2 ? std::atoi(argv[2]) : 128;
  const int nb = argc > 3 ? std::atoi(argv[3]) : 64;
  const int ib = argc > 4 ? std::atoi(argv[4]) : 16;
  const int h = argc > 5 ? std::atoi(argv[5]) : 16;
  const int workers = argc > 6 ? std::atoi(argv[6]) : 2;
  const int reps = argc > 7 ? std::atoi(argv[7]) : 5;
  std::printf("== Figure 7: execution traces, fixed vs shifted domain "
              "boundaries ==\n");
  std::printf("matrix %d x %d, nb = %d, ib = %d, binary-on-flat h = %d, "
              "%d workers, %d reps\n",
              m, n, nb, ib, h, workers, reps);

  Matrix a0(m, n);
  fill_random(a0.view(), 2014);
  TileMatrix a = TileMatrix::from_dense(a0.view(), nb);

  const auto fixed = run_mode(plan::BoundaryMode::Fixed, "fixed", a,
                              workers, h, ib, reps);
  const auto shifted = run_mode(plan::BoundaryMode::Shifted, "shifted", a,
                                workers, h, ib, reps);

  std::printf("\n== summary (paper: shifted boundaries give greater overlap "
              "of the tree reductions) ==\n");
  std::printf("wall time       : fixed %.3f s -> shifted %.3f s (%.2fx)\n",
              fixed.seconds, shifted.seconds,
              fixed.seconds / shifted.seconds);
  std::printf("utilization     : fixed %.1f %% -> shifted %.1f %%\n",
              fixed.utilization * 100, shifted.utilization * 100);
  std::printf("overlap fraction: fixed %.1f %% -> shifted %.1f %%\n",
              fixed.overlap * 100, shifted.overlap * 100);
  std::printf("pipeline depth  : fixed %.2f -> shifted %.2f panel steps in "
              "flight\n",
              fixed.depth, shifted.depth);
  std::printf("\n(on an oversubscribed host the in-flight overlap metric is "
              "noisy — wall time and\nutilization are the robust signals "
              "here; bench/tab_ablation quantifies the boundary\neffect at "
              "scale on the simulator: 1.4-2.1x.)\n");
  return 0;
}
