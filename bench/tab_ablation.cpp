// Ablation study of the design choices the paper argues for (simulator):
//
//   1. Shifted vs fixed domain boundaries (Section V-B / Figure 7): the
//      shifted boundary pipelines consecutive panels.
//   2. Reserving a core per node for the communication proxy
//      (Section IV-B): costs 1/12 of the cores, buys asynchronous
//      progress (here: the worker count changes; the model charges no
//      penalty for sharing, so this bounds the worst case of the choice).
//   3. Runtime weight (Section II: "minimal scheduling overheads"): how
//      the makespan degrades as the per-task runtime overhead grows from
//      PRT-like (2 us) to heavyweight (100 us).
//   4. Interconnect latency sensitivity: the latency-bound panel phase is
//      the reason tall-skinny QR needs the tree reduction at all.
#include <cstdio>

#include "sim/simulator.hpp"

using namespace pulsarqr;
using namespace pulsarqr::sim;

int main() {
  const int m = 368640;
  const int n = 4608;
  const int nodes = 320;  // 3840 cores

  std::printf("== Ablations (simulator, %d x %d, %d nodes) ==\n\n", m, n,
              nodes);

  // 1. Boundary mode x tree.
  std::printf("-- domain boundary (binary-on-flat) --\n");
  for (int h : {6, 12, 24}) {
    const auto sh = simulate_tree_qr(
        m, n, 192, 48,
        {plan::TreeKind::BinaryOnFlat, h, plan::BoundaryMode::Shifted},
        MachineModel::kraken(), nodes);
    const auto fx = simulate_tree_qr(
        m, n, 192, 48,
        {plan::TreeKind::BinaryOnFlat, h, plan::BoundaryMode::Fixed},
        MachineModel::kraken(), nodes);
    std::printf("h=%-3d shifted %7.0f Gflop/s | fixed %7.0f Gflop/s | "
                "shifted/fixed %.3fx\n",
                h, sh.useful_gflops, fx.useful_gflops,
                sh.useful_gflops / fx.useful_gflops);
  }

  // 2. Proxy core reservation.
  std::printf("\n-- proxy core reservation --\n");
  for (bool reserved : {true, false}) {
    MachineModel mm = MachineModel::kraken();
    mm.proxy_core_reserved = reserved;
    const auto r = simulate_tree_qr(
        m, n, 192, 48,
        {plan::TreeKind::BinaryOnFlat, 6, plan::BoundaryMode::Shifted}, mm,
        nodes);
    std::printf("proxy core %-12s: %d workers/node, %7.0f Gflop/s\n",
                reserved ? "reserved" : "not reserved",
                mm.workers_per_node(), r.useful_gflops);
  }

  // 3. Runtime weight. Shown at fine granularity (nb = 64, where a tsmqr
  // is ~130 us of math) — that is the regime where a heavyweight runtime
  // erodes performance; at nb = 192 even 100 us/task disappears into
  // millisecond kernels.
  std::printf("\n-- per-task runtime overhead (nb = 64: ~0.1 ms kernels) "
              "--\n");
  for (double ov : {2e-6, 10e-6, 30e-6, 100e-6, 300e-6}) {
    MachineModel mm = MachineModel::kraken();
    mm.task_overhead_s = ov;
    const auto r = simulate_tree_qr(
        m / 4, n / 4, 64, 16,
        {plan::TreeKind::BinaryOnFlat, 6, plan::BoundaryMode::Shifted}, mm,
        nodes / 4);
    std::printf("overhead %6.0f us/task: %7.0f Gflop/s\n", ov * 1e6,
                r.useful_gflops);
  }

  // 4. Link latency at fine granularity (same reasoning).
  std::printf("\n-- interconnect latency (nb = 64) --\n");
  for (double lat : {2e-6, 8e-6, 32e-6, 128e-6}) {
    MachineModel mm = MachineModel::kraken();
    mm.link_latency_s = lat;
    const auto hier = simulate_tree_qr(
        m / 4, n / 4, 64, 16,
        {plan::TreeKind::BinaryOnFlat, 6, plan::BoundaryMode::Shifted}, mm,
        nodes / 4);
    const auto flat = simulate_tree_qr(
        m / 4, n / 4, 64, 16,
        {plan::TreeKind::Flat, 1, plan::BoundaryMode::Shifted}, mm,
        nodes / 4);
    std::printf("latency %6.0f us: hier %7.0f | flat %7.0f Gflop/s\n",
                lat * 1e6, hier.useful_gflops, flat.useful_gflops);
  }
  std::printf("\nreading: the shifted boundary never loses (and wins big at "
              "large h); reserving the\nproxy core costs ~1%% at this scale; "
              "runtime overhead and latency only bite at fine\ntile "
              "granularity — which is exactly the paper's argument for a "
              "lightweight runtime\nwith tile-sized work units.\n");
  return 0;
}
