// Microbenchmarks of the PULSAR runtime primitives: channel throughput,
// VDP firing overhead, the by-pass chain, and the inter-node proxy path.
// These quantify the "minimal scheduling overheads" claim of Section IV-B.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "prt/packet_pool.hpp"
#include "prt/vsa.hpp"
#include "vsaqr/tree_qr.hpp"

namespace {

using namespace pulsarqr;
using prt::ChannelImpl;
using prt::Packet;
using prt::Scheduling;
using prt::Tuple;
using prt::Vsa;

ChannelImpl impl_arg(const benchmark::State& state) {
  return state.range(0) == 0 ? ChannelImpl::Spsc : ChannelImpl::Mutex;
}

void set_impl_label(benchmark::State& state) {
  state.SetLabel(state.range(0) == 0 ? "spsc" : "mutex");
}

// Same-thread push/pop round trip: the per-packet bookkeeping floor.
void BM_channel_push_pop(benchmark::State& state) {
  prt::Channel ch(64, true, impl_arg(state));
  Packet p = Packet::make(64);
  for (auto _ : state) {
    ch.push(p);
    benchmark::DoNotOptimize(ch.pop());
  }
  state.SetItemsProcessed(state.iterations());
  set_impl_label(state);
}

// Single-channel ping throughput: one producer thread streams packets
// through one channel to a consuming thread — exactly the SPSC regime
// GraphCheck proves for every VSA channel. This is the tentpole
// comparison: the lock-free path must beat the mutex path.
void BM_channel_ping(benchmark::State& state) {
  const int packets = 1 << 14;
  // Cap the in-flight count at a realistic channel occupancy: VSA
  // channels stay short, which is what keeps the SPSC node cache in
  // recycle mode. Unbounded build-up would measure malloc instead.
  const int max_queue = 1024;
  prt::Channel ch(64, true, impl_arg(state));
  Packet p = Packet::make(64);
  for (auto _ : state) {
    std::thread producer([&] {
      for (int i = 0; i < packets; ++i) {
        while (ch.size() >= max_queue) std::this_thread::yield();
        ch.push(p);
      }
    });
    int consumed = 0;
    while (consumed < packets) {
      if (ch.size() == 0) {
        // Yield rather than busy-poll: on few-core machines a spinning
        // consumer starves the producer for a whole timeslice and the
        // bench measures the scheduler instead of the queue.
        std::this_thread::yield();
        continue;
      }
      benchmark::DoNotOptimize(ch.pop());
      ++consumed;
    }
    producer.join();
  }
  state.SetItemsProcessed(state.iterations() * packets);
  set_impl_label(state);
}

// Inter-node ping through the proxy path: a 3-way A/B matrix of egress
// frame coalescing (on/off), the ack/retransmit reliable-delivery
// protocol (off must show no measurable overhead: the sequencing
// machinery is not even instantiated then), and the packet pool.
void BM_channel_ping_internode(benchmark::State& state) {
  const int length = 8;
  const int packets = 256;
  const bool coalesce = state.range(0) == 1;
  const bool reliable = state.range(1) == 1;
  const bool pool = state.range(2) == 1;
  prt::PacketPool::set_enabled(pool);
  for (auto _ : state) {
    state.PauseTiming();
    Vsa::Config cfg;
    cfg.nodes = 2;
    cfg.workers_per_node = 1;
    cfg.reliable_transport = reliable;
    cfg.coalesce_bytes = coalesce ? 64 * 1024 : 0;
    Vsa vsa(cfg);
    // Alternate home nodes so every hop crosses the proxy transport.
    for (int i = 0; i < length; ++i) {
      const bool last = i == length - 1;
      vsa.add_vdp(
          prt::tuple2(2, i), packets,
          [last](prt::VdpContext& ctx) {
            Packet p = ctx.pop(0);
            if (!last) ctx.push(0, std::move(p));
          },
          1, last ? 0 : 1);
      vsa.map_vdp(prt::tuple2(2, i), i % 2);  // workers_per_node == 1
    }
    std::vector<Packet> init;
    for (int k = 0; k < packets; ++k) init.push_back(Packet::make(64));
    vsa.feed(prt::tuple2(2, 0), 0, 64, std::move(init));
    for (int i = 0; i + 1 < length; ++i) {
      vsa.connect(prt::tuple2(2, i), 0, prt::tuple2(2, i + 1), 0, 64);
    }
    state.ResumeTiming();
    auto stats = vsa.run();
    benchmark::DoNotOptimize(stats.remote_messages);
  }
  state.SetItemsProcessed(state.iterations() * length * packets);
  state.SetLabel(std::string(coalesce ? "coalesce-on" : "coalesce-off") +
                 (reliable ? "/reliable-on" : "/reliable-off") +
                 (pool ? "/pool-on" : "/pool-off"));
  prt::PacketPool::set_enabled(true);
}

// The same inter-node ping over the out-of-process Socket backend: one
// forked OS process per node, frames over Unix-domain sockets. Measures
// the full fork + mesh + run + epilogue cycle per iteration — the honest
// cost of process isolation against the in-process rows above.
void BM_channel_ping_internode_socket(benchmark::State& state) {
  const int length = 8;
  const int packets = 256;
  for (auto _ : state) {
    state.PauseTiming();
    Vsa::Config cfg;
    cfg.nodes = 2;
    cfg.workers_per_node = 1;
    cfg.transport = prt::Transport::Socket;
    Vsa vsa(cfg);
    for (int i = 0; i < length; ++i) {
      const bool last = i == length - 1;
      vsa.add_vdp(
          prt::tuple2(2, i), packets,
          [last](prt::VdpContext& ctx) {
            Packet p = ctx.pop(0);
            if (!last) ctx.push(0, std::move(p));
          },
          1, last ? 0 : 1);
      vsa.map_vdp(prt::tuple2(2, i), i % 2);
    }
    std::vector<Packet> init;
    for (int k = 0; k < packets; ++k) init.push_back(Packet::make(64));
    vsa.feed(prt::tuple2(2, 0), 0, 64, std::move(init));
    for (int i = 0; i + 1 < length; ++i) {
      vsa.connect(prt::tuple2(2, i), 0, prt::tuple2(2, i + 1), 0, 64);
    }
    state.ResumeTiming();
    auto stats = vsa.run();
    benchmark::DoNotOptimize(stats.remote_messages);
  }
  state.SetItemsProcessed(state.iterations() * length * packets);
  state.SetLabel("socket/fork-per-node");
}

// End-to-end tree QR at small tiles, where per-packet runtime overhead —
// channel ops and wakeups — is the limiter (the regime of arXiv:1110.1553
// / arXiv:0809.2407). A/B of the channel implementations.
void BM_qr_small_nb(benchmark::State& state) {
  const int n = 768;
  const int nb = 64;
  Matrix a0(n, n);
  fill_random(a0.view(), 42);
  const TileMatrix tiled = TileMatrix::from_dense(a0.view(), nb);
  vsaqr::TreeQrOptions opt;
  opt.tree = {plan::TreeKind::BinaryOnFlat, 6, plan::BoundaryMode::Shifted};
  opt.ib = 16;
  opt.nodes = 1;
  opt.workers_per_node = 4;
  opt.channel_impl = impl_arg(state);
  for (auto _ : state) {
    auto run = vsaqr::tree_qr(tiled, opt);
    benchmark::DoNotOptimize(run.stats.fires);
  }
  state.SetItemsProcessed(state.iterations());
  set_impl_label(state);
}

// Pooled vs plain allocation: the recycled steady state against a fresh
// aligned heap allocation per packet.
void BM_packet_alloc(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  const bool pool = state.range(1) == 1;
  prt::PacketPool::set_enabled(pool);
  for (auto _ : state) {
    Packet p = Packet::make(bytes);
    benchmark::DoNotOptimize(p.bytes());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(pool ? "pool-on" : "pool-off");
  prt::PacketPool::set_enabled(true);
}

void BM_packet_clone(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  Packet p = Packet::make(bytes);
  for (auto _ : state) {
    Packet c = p.clone();
    benchmark::DoNotOptimize(c.bytes());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}

// Firing overhead: a pipeline of trivial VDPs; reported as fires/second.
void fire_pipeline(benchmark::State& state, int nodes, int workers) {
  const int length = 16;
  const int packets = 256;
  for (auto _ : state) {
    state.PauseTiming();
    Vsa::Config cfg;
    cfg.nodes = nodes;
    cfg.workers_per_node = workers;
    Vsa vsa(cfg);
    for (int i = 0; i < length; ++i) {
      const bool last = i == length - 1;
      vsa.add_vdp(
          prt::tuple2(0, i), packets,
          [last](prt::VdpContext& ctx) {
            Packet p = ctx.pop(0);
            if (!last) ctx.push(0, std::move(p));
          },
          1, last ? 0 : 1);
    }
    std::vector<Packet> init;
    for (int k = 0; k < packets; ++k) init.push_back(Packet::make(64));
    vsa.feed(prt::tuple2(0, 0), 0, 64, std::move(init));
    for (int i = 0; i + 1 < length; ++i) {
      vsa.connect(prt::tuple2(0, i), 0, prt::tuple2(0, i + 1), 0, 64);
    }
    state.ResumeTiming();
    auto stats = vsa.run();
    benchmark::DoNotOptimize(stats.fires);
  }
  state.SetItemsProcessed(state.iterations() * length * packets);
}

void BM_vdp_fire_local(benchmark::State& state) {
  fire_pipeline(state, 1, static_cast<int>(state.range(0)));
}

void BM_vdp_fire_internode(benchmark::State& state) {
  fire_pipeline(state, static_cast<int>(state.range(0)), 1);
}

// The by-pass broadcast chain (Section V-C): time for one packet to
// traverse a chain of forwarding VDPs.
void BM_bypass_chain(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Vsa::Config cfg;
    cfg.nodes = 1;
    cfg.workers_per_node = 2;
    Vsa vsa(cfg);
    for (int i = 0; i < length; ++i) {
      const bool last = i == length - 1;
      vsa.add_vdp(
          prt::tuple2(1, i), 1,
          [last](prt::VdpContext& ctx) {
            Packet p = ctx.pop(0);
            if (!last) ctx.push(0, p);  // forward before "using"
            benchmark::DoNotOptimize(p.doubles());
          },
          1, last ? 0 : 1);
    }
    std::vector<Packet> init;
    init.push_back(Packet::make(8 * 1024));
    vsa.feed(prt::tuple2(1, 0), 0, 8 * 1024, std::move(init));
    for (int i = 0; i + 1 < length; ++i) {
      vsa.connect(prt::tuple2(1, i), 0, prt::tuple2(1, i + 1), 0, 8 * 1024);
    }
    state.ResumeTiming();
    auto stats = vsa.run();
    benchmark::DoNotOptimize(stats.fires);
  }
  state.SetItemsProcessed(state.iterations() * length);
}

}  // namespace

BENCHMARK(BM_channel_push_pop)->Arg(0)->Arg(1);
BENCHMARK(BM_channel_ping)->Arg(0)->Arg(1)->UseRealTime();
BENCHMARK(BM_channel_ping_internode)
    ->Args({1, 0, 1})->Args({0, 0, 1})  // coalesce A/B, reliable off
    ->Args({1, 1, 1})->Args({0, 1, 1})  // coalesce A/B, reliable on
    ->Args({1, 0, 0})->Args({0, 0, 0})  // pool off, coalesce A/B
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_channel_ping_internode_socket)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_qr_small_nb)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_packet_alloc)
    ->Args({64, 1})->Args({64, 0})
    ->Args({192 * 192 * 8, 1})->Args({192 * 192 * 8, 0});
BENCHMARK(BM_packet_clone)->Arg(64)->Arg(192 * 192 * 8);
BENCHMARK(BM_vdp_fire_local)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_vdp_fire_internode)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_bypass_chain)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
