// Section VI-A reproduction: tree QR vs established and research solvers.
//
// Paper claims (reiterating [6], [7]):
//   * Cray LibSci / ScaLAPACK lag tree-based QR by at least 3x, up to an
//     order of magnitude, for tall-skinny matrices;
//   * a PaRSEC-style generic task runtime is ~10% slower in strong
//     scaling and >= 20% slower in weak scaling.
//
// ScaLAPACK is an analytic alpha-beta-gamma model of pdgeqrf (blocking
// column-by-column panels, no lookahead); the PaRSEC-style comparator is
// the same VSA task graph executed with a heavier per-task runtime cost
// and no by-pass (higher effective latency), reflecting a generic
// dependence-tracking runtime.
#include <cstdio>

#include "sim/scalapack_model.hpp"
#include "sim/simulator.hpp"

using namespace pulsarqr;
using namespace pulsarqr::sim;

namespace {

MachineModel parsec_like(MachineModel mm) {
  // Generic task-superscalar runtime: ~10% lower effective kernel
  // throughput (scheduler jitter, dependence-tracker cache pollution, no
  // parent/child thread co-location), heavier per-task tracking, a
  // scheduler hand-off per resolved local dependency (PRT resolves these
  // with zero-copy channel pushes and by-pass chains), and extra software
  // latency per remote message (no by-pass pipelining of broadcasts).
  mm.eff_geqrt *= 0.91;
  mm.eff_tsqrt *= 0.91;
  mm.eff_ttqrt *= 0.91;
  mm.eff_ormqr *= 0.91;
  mm.eff_tsmqr *= 0.91;
  mm.eff_ttmqr *= 0.91;
  mm.task_overhead_s *= 8.0;
  mm.intra_node_edge_latency_s = 40e-6;
  mm.link_latency_s *= 2.5;
  return mm;
}

}  // namespace

int main() {
  const MachineModel mm = MachineModel::kraken();
  const int m = 368640;
  const int n = 4608;
  const plan::PlanConfig hier{plan::TreeKind::BinaryOnFlat, 6,
                              plan::BoundaryMode::Shifted};

  std::printf("== Section VI-A: comparison against established and research "
              "solvers ==\n");
  std::printf("matrix %d x %d (tall-skinny)\n\n", m, n);
  std::printf("%8s | %12s | %12s %8s | %12s %8s\n", "cores", "PULSAR(s)",
              "ScaLAPACK(s)", "ratio", "PaRSEC-ish(s)", "ratio");

  // Strong-scaling comparison.
  for (int cores : {1920, 3840, 7680, 15360}) {
    const int nodes = cores / mm.cores_per_node;
    const auto tree = simulate_tree_qr(m, n, 192, 48, hier, mm, nodes);
    const auto scal = scalapack_qr_model(m, n, 64, mm, cores);
    const auto par =
        simulate_tree_qr(m, n, 192, 48, hier, parsec_like(mm), nodes);
    std::printf("%8d | %12.2f | %12.2f %7.2fx | %12.2f %7.2fx\n", cores,
                tree.seconds, scal.seconds, scal.seconds / tree.seconds,
                par.seconds, par.seconds / tree.seconds);
  }

  // Weak-scaling comparison (fixed rows per core). Aggregate traffic per
  // node grows here, so both runtimes are charged NIC injection
  // contention; the PaRSEC-style communication engine additionally
  // sustains a lower effective injection bandwidth.
  std::printf("\nweak scaling (m = 48 rows x nb per core, n = %d, NIC "
              "contention modeled):\n", n);
  std::printf("%8s | %12s | %12s %8s | %12s %8s\n", "cores", "PULSAR(s)",
              "ScaLAPACK(s)", "ratio", "PaRSEC-ish(s)", "ratio");
  MachineModel mmw = mm;
  mmw.model_nic_contention = true;
  MachineModel par_w = parsec_like(mmw);
  par_w.link_bandwidth_bps *= 0.55;
  for (int cores : {960, 1920, 3840, 7680}) {
    const int nodes = cores / mm.cores_per_node;
    const int mw = cores * 48;  // rows proportional to cores
    const auto tree = simulate_tree_qr(mw, n, 192, 48, hier, mmw, nodes);
    const auto scal = scalapack_qr_model(mw, n, 64, mm, cores);
    const auto par = simulate_tree_qr(mw, n, 192, 48, hier, par_w, nodes);
    std::printf("%8d | %12.2f | %12.2f %7.2fx | %12.2f %7.2fx\n", cores,
                tree.seconds, scal.seconds, scal.seconds / tree.seconds,
                par.seconds, par.seconds / tree.seconds);
  }

  std::printf("\npaper: ScaLAPACK/LibSci >= 3x slower (up to ~10x); "
              "PaRSEC-style runtime >= 10%% slower (strong), >= 20%% "
              "(weak).\n");
  return 0;
}
