// Evaluation of the extension algorithms mapped onto PULSAR (the paper's
// stated follow-up work): simulated strong scaling of the systolic
// Cholesky and no-pivot LU on the Kraken model, plus real-runtime
// verification runs on this host.
//
// Cholesky/LU of a square matrix are compute-rich (n^3/3 and 2n^3/3 over
// n^2 data), so unlike tall-skinny QR their systolic pipelines keep
// scaling without a hierarchical tree — the interesting comparison is
// against the latency-starved tall-skinny QR at equal flop budgets.
#include <chrono>
#include <cstdio>

#include "chol/vsa_chol.hpp"
#include "lu/vsa_lu.hpp"
#include "sim/chol_sim.hpp"
#include "sim/lu_sim.hpp"
#include "sim/simulator.hpp"

using namespace pulsarqr;
using namespace pulsarqr::sim;

int main() {
  const MachineModel mm = MachineModel::kraken();
  std::printf("== Cholesky and LU on PULSAR: simulated strong scaling "
              "(n = 46080, nb = 192) ==\n\n");
  std::printf("%8s %8s | %12s %12s | %12s %12s\n", "cores", "nodes",
              "chol Gflop/s", "per-core", "lu Gflop/s", "per-core");
  for (int cores : {480, 1920, 3840, 7680, 15360}) {
    const int nodes = cores / mm.cores_per_node;
    const auto r = simulate_cholesky(46080, 192, mm, nodes);
    const auto l = simulate_lu(46080, 46080, 192, mm, nodes);
    std::printf("%8d %8d | %12.0f %12.2f | %12.0f %12.2f\n", cores, nodes,
                r.useful_gflops, r.useful_gflops / cores, l.useful_gflops,
                l.useful_gflops / cores);
  }

  // Equal-flop comparison against tall-skinny tree QR: n^3/3 Cholesky
  // flops vs 2 m n^2 QR flops.
  std::printf("\nequal-flop shape comparison at 3840 cores:\n");
  const auto chol_r = simulate_cholesky(46080, 192, mm, 320);
  const auto qr_r = simulate_tree_qr(
      368640, 4608, 192, 48,
      {plan::TreeKind::BinaryOnFlat, 6, plan::BoundaryMode::Shifted}, mm,
      320);
  std::printf("  cholesky 46080^2        : %7.0f useful Gflop/s\n",
              chol_r.useful_gflops);
  std::printf("  tree QR 368640 x 4608   : %7.0f useful Gflop/s\n",
              qr_r.useful_gflops);
  std::printf("  (square Cholesky feeds its pipeline from O(n^2) tiles; "
              "tall-skinny QR is\n   bounded by its O(mt) panel chains — "
              "the gap is the paper's motivation.)\n");

  // Real runtime on this host.
  std::printf("\n== real PULSAR runtime on this host ==\n");
  for (int n : {512, 1024}) {
    Matrix a = chol::random_spd(n, 1000 + n);
    chol::VsaCholOptions opt;
    opt.nodes = 2;
    opt.workers_per_node = 2;
    const auto t0 = std::chrono::steady_clock::now();
    auto run = chol::vsa_cholesky(TileMatrix::from_dense(a.view(), 64), opt);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("chol n=%5d nb=64: %7.3f s, %6lld firings, %5lld "
                "inter-node msgs, %.2f Gflop/s\n",
                n, secs, run.stats.fires, run.stats.remote_messages,
                chol::chol_useful_flops(n) / secs / 1e9);
  }
  for (int n : {512, 1024}) {
    Matrix a = lu::random_diag_dominant(n, n, 2000 + n);
    lu::VsaLuOptions opt;
    opt.nodes = 2;
    opt.workers_per_node = 2;
    const auto t0 = std::chrono::steady_clock::now();
    auto run = lu::vsa_lu(TileMatrix::from_dense(a.view(), 64), opt);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("lu   n=%5d nb=64: %7.3f s, %6lld firings, %5lld "
                "inter-node msgs, %.2f Gflop/s\n",
                n, secs, run.stats.fires, run.stats.remote_messages,
                lu::lu_useful_flops(n) / secs / 1e9);
  }
  return 0;
}
