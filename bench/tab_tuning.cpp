// Section VI setup reproduction: the tuning sweep over nb in {192, 240},
// ib = 48 and h in {6, 12} that selects the best configuration per
// (m, cores) point, plus the sensitivity around those values.
#include <cstdio>

#include "sim/simulator.hpp"

using namespace pulsarqr;
using namespace pulsarqr::sim;

int main() {
  const MachineModel mm = MachineModel::kraken();
  const int n = 4608;
  std::printf("== Tuning sweep (simulator): binary-on-flat, shifted "
              "boundaries ==\n\n");
  std::printf("%10s %8s | ", "m", "cores");
  for (int nb : {192, 240}) {
    for (int h : {3, 6, 12, 24}) std::printf("nb%3d/h%-2d ", nb, h);
  }
  std::printf("| best\n");

  for (int m : {92160, 368640}) {
    for (int nodes : {160, 768}) {
      std::printf("%10d %8d | ", m, nodes * mm.cores_per_node);
      double best = 0;
      int best_nb = 0, best_h = 0;
      for (int nb : {192, 240}) {
        for (int h : {3, 6, 12, 24}) {
          const auto r = simulate_tree_qr(
              m, n, nb, 48,
              {plan::TreeKind::BinaryOnFlat, h, plan::BoundaryMode::Shifted},
              mm, nodes);
          std::printf("%9.0f ", r.useful_gflops);
          if (r.useful_gflops > best) {
            best = r.useful_gflops;
            best_nb = nb;
            best_h = h;
          }
        }
      }
      std::printf("| nb=%d h=%d (%.0f Gflop/s)\n", best_nb, best_h, best);
    }
  }
  std::printf("\npaper protocol: run nb in {192,240} x h in {6,12} and "
              "report the best per point (Section VI).\n");
  return 0;
}
