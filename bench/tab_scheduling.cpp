// Section V-D reproduction: lazy vs aggressive VDP scheduling.
//
// Paper: "For our tree-based QR, the lazy scheduling scheme often obtained
// better core utilization than the aggressive scheme did", because lazy
// sweeping lets the panel factorization interleave with the trailing
// updates (lookahead). We run the real runtime in both modes and report
// wall time and utilization.
#include <cstdio>

#include "common/rng.hpp"
#include "prt/trace.hpp"
#include "vsaqr/tree_qr.hpp"

using namespace pulsarqr;

namespace {

void run_mode(prt::Scheduling sched, bool stealing, const char* name,
              const TileMatrix& a) {
  vsaqr::TreeQrOptions opt;
  opt.tree = {plan::TreeKind::BinaryOnFlat, 4, plan::BoundaryMode::Shifted};
  opt.ib = 16;
  opt.workers_per_node = 4;
  opt.scheduling = sched;
  opt.work_stealing = stealing;
  opt.trace = true;
  const auto run = vsaqr::tree_qr(a, opt);
  const auto stats = prt::trace::compute_stats(run.events, 4, 2);
  std::printf("%-14s | wall %8.3f s | utilization %6.1f %% | overlap "
              "%6.1f %%\n",
              name, stats.span, stats.utilization * 100,
              stats.overlap_fraction * 100);
}

}  // namespace

int main() {
  std::printf("== Lazy vs aggressive VDP scheduling (Section V-D), plus the "
              "work-stealing executor ==\n");
  std::printf("matrix 2048 x 256, nb = 64, ib = 16, h = 4, 4 workers\n\n");
  Matrix a0(2048, 256);
  fill_random(a0.view(), 4242);
  TileMatrix a = TileMatrix::from_dense(a0.view(), 64);
  run_mode(prt::Scheduling::Lazy, false, "lazy", a);
  run_mode(prt::Scheduling::Aggressive, false, "aggressive", a);
  run_mode(prt::Scheduling::Lazy, true, "work-stealing", a);
  std::printf("\npaper: lazy often wins on utilization through lookahead "
              "(panel/update interleaving).\nthe work-stealing row is this "
              "repo's extra ablation: same dataflow, generic scheduler.\n");
  return 0;
}
