// Figure 10 reproduction: asymptotic scaling of tree-based QR.
//
// Paper setup: n = 4608 fixed, m in {23040, 92160, 184320, 368640,
// 737280}, 9216 cores (768 Kraken nodes), double precision, nb in
// {192, 240}, ib = 48, h in {6, 12}; the best configuration per tree is
// reported. Result: binary-on-flat > binary >> flat, with the flat tree
// saturating early for tall-skinny matrices.
//
// Reproduced on the simulator substrate (see DESIGN.md): the machine is a
// calibrated Kraken model, the schedule is the VSA's task graph.
#include <cstdio>
#include <fstream>

#include "sim/simulator.hpp"

using namespace pulsarqr;
using namespace pulsarqr::sim;

namespace {

struct Best {
  double gflops = 0.0;
  int nb = 0, h = 0;
};

Best best_of(int m, int n, plan::TreeKind tree, const MachineModel& mm,
             int nodes) {
  Best best;
  const std::vector<int> hs =
      tree == plan::TreeKind::BinaryOnFlat ? std::vector<int>{6, 12}
                                           : std::vector<int>{1};
  for (int nb : {192, 240}) {
    for (int h : hs) {
      const auto r = simulate_tree_qr(
          m, n, nb, 48, {tree, h, plan::BoundaryMode::Shifted}, mm, nodes);
      if (r.useful_gflops > best.gflops) best = {r.useful_gflops, nb, h};
    }
  }
  return best;
}

}  // namespace

int main() {
  const MachineModel mm = MachineModel::kraken();
  const int n = 4608;
  const int nodes = 768;  // 9216 cores
  std::printf("== Figure 10: asymptotic tree-based QR scaling ==\n");
  std::printf("n = %d, %d nodes (%d cores), nb in {192,240}, ib = 48, "
              "h in {6,12}, best-of per tree\n\n",
              n, nodes, nodes * mm.cores_per_node);
  std::printf("%10s %14s %14s %14s   best hier cfg\n", "m",
              "Hierarchical", "Binary", "Flat");

  std::ofstream csv("fig10_asymptotic.csv");
  csv << "m,hierarchical_gflops,binary_gflops,flat_gflops\n";
  for (int m : {23040, 92160, 184320, 368640, 737280}) {
    const Best h = best_of(m, n, plan::TreeKind::BinaryOnFlat, mm, nodes);
    const Best b = best_of(m, n, plan::TreeKind::Binary, mm, nodes);
    const Best f = best_of(m, n, plan::TreeKind::Flat, mm, nodes);
    std::printf("%10d %14.0f %14.0f %14.0f   (nb=%d, h=%d)\n", m, h.gflops,
                b.gflops, f.gflops, h.nb, h.h);
    csv << m << ',' << h.gflops << ',' << b.gflops << ',' << f.gflops
        << '\n';
  }
  std::printf("\npaper shape: hierarchical > binary >> flat; flat saturates "
              "(limited panel parallelism);\nhierarchical reaches ~10500 "
              "Gflop/s at m = 737280. CSV: fig10_asymptotic.csv\n");
  return 0;
}
