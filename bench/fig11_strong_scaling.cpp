// Figure 11 reproduction: strong scaling of tree-based QR at
// (m, n) = (368640, 4608) over 480..15360 cores.
//
// Paper result: binary-on-flat and binary scale far better than flat,
// with binary-on-flat best; flat is pinned by the serial panel pipeline.
#include <cstdio>
#include <fstream>

#include "sim/simulator.hpp"

using namespace pulsarqr;
using namespace pulsarqr::sim;

namespace {

double best_of(int m, int n, plan::TreeKind tree, const MachineModel& mm,
               int nodes) {
  double best = 0.0;
  const std::vector<int> hs =
      tree == plan::TreeKind::BinaryOnFlat ? std::vector<int>{6, 12}
                                           : std::vector<int>{1};
  for (int nb : {192, 240}) {
    for (int h : hs) {
      const auto r = simulate_tree_qr(
          m, n, nb, 48, {tree, h, plan::BoundaryMode::Shifted}, mm, nodes);
      best = std::max(best, r.useful_gflops);
    }
  }
  return best;
}

}  // namespace

int main() {
  const MachineModel mm = MachineModel::kraken();
  const int m = 368640;
  const int n = 4608;
  std::printf("== Figure 11: strong scaling of tree QR at %d x %d ==\n\n", m,
              n);
  std::printf("%8s %8s %14s %14s %14s\n", "cores", "nodes", "Hierarchical",
              "Binary", "Flat");
  std::ofstream csv("fig11_strong_scaling.csv");
  csv << "cores,hierarchical_gflops,binary_gflops,flat_gflops\n";
  for (int cores : {480, 1920, 3840, 7680, 15360}) {
    const int nodes = cores / mm.cores_per_node;
    const double h = best_of(m, n, plan::TreeKind::BinaryOnFlat, mm, nodes);
    const double b = best_of(m, n, plan::TreeKind::Binary, mm, nodes);
    const double f = best_of(m, n, plan::TreeKind::Flat, mm, nodes);
    std::printf("%8d %8d %14.0f %14.0f %14.0f\n", cores, nodes, h, b, f);
    csv << cores << ',' << h << ',' << b << ',' << f << '\n';
  }
  std::printf("\npaper shape: hierarchical and binary keep scaling; flat is "
              "flat. CSV: fig11_strong_scaling.csv\n");
  return 0;
}
