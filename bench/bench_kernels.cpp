// Microbenchmarks of the six tile kernels (Section V-B) and the dense QR
// building blocks. These numbers calibrate the simulator's kernel
// efficiency model for *this* host; the Kraken model in sim/machine.hpp
// uses the paper's platform instead.
#include <benchmark/benchmark.h>

#include "chol/reference_chol.hpp"
#include "common/rng.hpp"
#include "kernels/tile_kernels.hpp"
#include "lapack/cholesky.hpp"
#include "lapack/lu.hpp"
#include "lapack/qr.hpp"
#include "lu/reference_lu.hpp"
#include "plan/flops.hpp"

namespace {

using namespace pulsarqr;

Matrix random_matrix(int m, int n, std::uint64_t seed) {
  Matrix a(m, n);
  fill_random(a.view(), seed);
  return a;
}

// Square gemm C += op(A) op(B) at size nb; range(1)/range(2) select the
// Trans of A/B (0 = NoTrans), range(3) the implementation (0 = reference
// triple loop family, 1 = packed micro-kernel).
void BM_gemm(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  const blas::Trans ta = state.range(1) ? blas::Trans::Yes : blas::Trans::No;
  const blas::Trans tb = state.range(2) ? blas::Trans::Yes : blas::Trans::No;
  const bool packed = state.range(3) != 0;
  Matrix a = random_matrix(nb, nb, 30);
  Matrix b = random_matrix(nb, nb, 31);
  Matrix c = random_matrix(nb, nb, 32);
  for (auto _ : state) {
    if (packed) {
      blas::gemm_packed(ta, tb, 1.0, a.view(), b.view(), 1.0, c.view());
    } else {
      blas::gemm_ref(ta, tb, 1.0, a.view(), b.view(), 1.0, c.view());
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      2.0 * nb * nb * nb * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

Matrix upper(const Matrix& a) {
  Matrix r(a.rows(), a.cols());
  for (int j = 0; j < a.cols(); ++j) {
    for (int i = 0; i <= j && i < a.rows(); ++i) r(i, j) = a(i, j);
    if (j < a.rows()) r(j, j) += 2.0;
  }
  return r;
}

void BM_geqrt(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  const int ib = static_cast<int>(state.range(1));
  Matrix a0 = random_matrix(nb, nb, 1);
  Matrix t(ib, nb);
  for (auto _ : state) {
    state.PauseTiming();
    Matrix a = a0;
    state.ResumeTiming();
    kernels::geqrt(a.view(), ib, t.view());
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      plan::flops_geqrt(nb, nb) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_tsqrt(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  const int ib = static_cast<int>(state.range(1));
  Matrix r0 = upper(random_matrix(nb, nb, 2));
  Matrix a0 = random_matrix(nb, nb, 3);
  Matrix t(ib, nb);
  for (auto _ : state) {
    state.PauseTiming();
    Matrix r = r0;
    Matrix a = a0;
    state.ResumeTiming();
    kernels::tsqrt(r.view(), a.view(), ib, t.view());
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      plan::flops_tsqrt(nb, nb) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_ttqrt(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  const int ib = static_cast<int>(state.range(1));
  Matrix r0 = upper(random_matrix(nb, nb, 4));
  Matrix a0 = upper(random_matrix(nb, nb, 5));
  Matrix t(ib, nb);
  for (auto _ : state) {
    state.PauseTiming();
    Matrix r = r0;
    Matrix a = a0;
    state.ResumeTiming();
    kernels::ttqrt(r.view(), a.view(), ib, t.view());
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      plan::flops_ttqrt(nb) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_ormqr(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  const int ib = static_cast<int>(state.range(1));
  Matrix v = random_matrix(nb, nb, 6);
  Matrix t(ib, nb);
  kernels::geqrt(v.view(), ib, t.view());
  Matrix c = random_matrix(nb, nb, 7);
  for (auto _ : state) {
    kernels::ormqr(blas::Trans::Yes, v.view(), t.view(), ib, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      plan::flops_ormqr(nb, nb, nb) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_tsmqr(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  const int ib = static_cast<int>(state.range(1));
  Matrix r = upper(random_matrix(nb, nb, 8));
  Matrix v = random_matrix(nb, nb, 9);
  Matrix t(ib, nb);
  kernels::tsqrt(r.view(), v.view(), ib, t.view());
  Matrix c1 = random_matrix(nb, nb, 10);
  Matrix c2 = random_matrix(nb, nb, 11);
  for (auto _ : state) {
    kernels::tsmqr(blas::Trans::Yes, v.view(), t.view(), ib, c1.view(),
                   c2.view());
    benchmark::DoNotOptimize(c2.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      plan::flops_tsmqr(nb, nb, nb) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_ttmqr(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  const int ib = static_cast<int>(state.range(1));
  Matrix r = upper(random_matrix(nb, nb, 12));
  Matrix v = upper(random_matrix(nb, nb, 13));
  Matrix t(ib, nb);
  kernels::ttqrt(r.view(), v.view(), ib, t.view());
  Matrix c1 = random_matrix(nb, nb, 14);
  Matrix c2 = random_matrix(nb, nb, 15);
  for (auto _ : state) {
    kernels::ttmqr(blas::Trans::Yes, v.view(), t.view(), ib, c1.view(),
                   c2.view());
    benchmark::DoNotOptimize(c2.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      plan::flops_ttmqr(nb, nb) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

// ---- Single-precision rows (templated kernel path) ------------------------

MatrixF random_matrix_f(int m, int n, std::uint64_t seed) {
  MatrixF a(m, n);
  Rng rng(seed);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      a(i, j) = static_cast<float>(rng.next_symmetric());
    }
  }
  return a;
}

MatrixF upper_f(const MatrixF& a) {
  MatrixF r(a.rows(), a.cols());
  for (int j = 0; j < a.cols(); ++j) {
    for (int i = 0; i <= j && i < a.rows(); ++i) r(i, j) = a(i, j);
    if (j < a.rows()) r(j, j) += 2.0f;
  }
  return r;
}

void BM_gemm_f32(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  MatrixF a = random_matrix_f(nb, nb, 40);
  MatrixF b = random_matrix_f(nb, nb, 41);
  MatrixF c = random_matrix_f(nb, nb, 42);
  for (auto _ : state) {
    blas::gemm_packed(blas::Trans::No, blas::Trans::No, 1.0f, a.view(),
                      b.view(), 1.0f, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      2.0 * nb * nb * nb * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_tsmqr_f32(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  const int ib = static_cast<int>(state.range(1));
  kernels::Workspace ws;
  MatrixF r = upper_f(random_matrix_f(nb, nb, 43));
  MatrixF v = random_matrix_f(nb, nb, 44);
  MatrixF t(ib, nb);
  kernels::tsqrt(r.view(), v.view(), ib, t.view(), ws);
  MatrixF c1 = random_matrix_f(nb, nb, 45);
  MatrixF c2 = random_matrix_f(nb, nb, 46);
  for (auto _ : state) {
    kernels::tsmqr(blas::Trans::Yes, v.view(), t.view(), ib, c1.view(),
                   c2.view(), ws);
    benchmark::DoNotOptimize(c2.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      plan::flops_tsmqr(nb, nb, nb) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_ttmqr_f32(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  const int ib = static_cast<int>(state.range(1));
  kernels::Workspace ws;
  MatrixF r = upper_f(random_matrix_f(nb, nb, 47));
  MatrixF v = upper_f(random_matrix_f(nb, nb, 48));
  MatrixF t(ib, nb);
  kernels::ttqrt(r.view(), v.view(), ib, t.view(), ws);
  MatrixF c1 = random_matrix_f(nb, nb, 49);
  MatrixF c2 = random_matrix_f(nb, nb, 50);
  for (auto _ : state) {
    kernels::ttmqr(blas::Trans::Yes, v.view(), t.view(), ib, c1.view(),
                   c2.view(), ws);
    benchmark::DoNotOptimize(c2.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      plan::flops_ttmqr(nb, nb) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_potrf_tile(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  Matrix spd = pulsarqr::chol::random_spd(nb, 20);
  for (auto _ : state) {
    state.PauseTiming();
    Matrix a = spd;
    state.ResumeTiming();
    lapack::potf2(a.view());
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      static_cast<double>(nb) * nb * nb / 3.0 * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_getrf_tile(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  Matrix dd = pulsarqr::lu::random_diag_dominant(nb, nb, 21);
  for (auto _ : state) {
    state.PauseTiming();
    Matrix a = dd;
    state.ResumeTiming();
    lapack::getf2_nopiv(a.view());
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      2.0 * nb * nb * nb / 3.0 * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_dense_geqrf(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Matrix a0 = random_matrix(m, n, 16);
  std::vector<double> tau(n);
  for (auto _ : state) {
    state.PauseTiming();
    Matrix a = a0;
    state.ResumeTiming();
    lapack::geqrf(a.view(), tau.data());
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      plan::qr_useful_flops(m, n) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

}  // namespace

// gemm at the tile sizes, all four Trans combinations, reference vs packed.
static void GemmArgs(benchmark::internal::Benchmark* b) {
  for (int nb : {64, 128, 192}) {
    for (int ta : {0, 1}) {
      for (int tb : {0, 1}) {
        for (int impl : {0, 1}) b->Args({nb, ta, tb, impl});
      }
    }
  }
}
BENCHMARK(BM_gemm)->Apply(GemmArgs)->Unit(benchmark::kMillisecond);

// Paper tile sizes: nb in {192, 240}, ib = 48; smaller sizes for context.
BENCHMARK(BM_geqrt)->Args({64, 16})->Args({128, 32})->Args({192, 48})
    ->Args({240, 48})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_tsqrt)->Args({64, 16})->Args({128, 32})->Args({192, 48})
    ->Args({240, 48})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ttqrt)->Args({64, 16})->Args({128, 32})->Args({192, 48})
    ->Args({240, 48})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ormqr)->Args({64, 16})->Args({128, 32})->Args({192, 48})
    ->Args({240, 48})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_tsmqr)->Args({64, 16})->Args({128, 32})->Args({192, 48})
    ->Args({240, 48})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ttmqr)->Args({64, 16})->Args({128, 32})->Args({192, 48})
    ->Args({240, 48})->Unit(benchmark::kMillisecond);
// Single-precision path: packed float gemm and the float stacked kernels
// (double-width SIMD lanes; compare against the f64 rows above).
BENCHMARK(BM_gemm_f32)->Arg(128)->Arg(192)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_tsmqr_f32)->Args({128, 32})->Args({192, 48})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ttmqr_f32)->Args({128, 32})->Args({192, 48})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_potrf_tile)->Arg(64)->Arg(192)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_getrf_tile)->Arg(64)->Arg(192)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_dense_geqrf)->Args({768, 192})->Args({1024, 64})
    ->Unit(benchmark::kMillisecond);
