// Section VI, paragraph 2: "For a square matrix, our flat-tree
// configuration obtains the performance that is equivalent to that of our
// first VSA implementation of the QR decomposition (domino QR)" — and the
// 2013 paper showed that domino QR was highly competitive on square
// matrices. The flip side of the tall-skinny story: with many trailing
// columns per step, the flat pipeline has plenty of update work to hide
// its serial panel chain, so the hierarchical tree's advantage shrinks.
//
// Simulated square-matrix comparison of the three trees, plus the
// tall-skinny contrast at the same flop budget.
#include <cstdio>

#include "sim/simulator.hpp"

using namespace pulsarqr;
using namespace pulsarqr::sim;

namespace {

double gflops(plan::TreeKind t, int h, int m, int n, int nodes) {
  return simulate_tree_qr(m, n, 192, 48,
                          {t, h, plan::BoundaryMode::Shifted},
                          MachineModel::kraken(), nodes)
      .useful_gflops;
}

}  // namespace

int main() {
  std::printf("== Square vs tall-skinny: where the hierarchical tree "
              "matters (simulator) ==\n\n");
  std::printf("square matrices, 160 nodes (1920 cores):\n");
  std::printf("%10s | %12s %12s %12s | %10s\n", "n", "Flat(domino)",
              "Hier h=6", "Binary", "hier/flat");
  for (int n : {9216, 18432, 27648}) {
    const double f = gflops(plan::TreeKind::Flat, 1, n, n, 160);
    const double h = gflops(plan::TreeKind::BinaryOnFlat, 6, n, n, 160);
    const double b = gflops(plan::TreeKind::Binary, 1, n, n, 160);
    std::printf("%10d | %12.0f %12.0f %12.0f | %9.2fx\n", n, f, h, b, h / f);
  }
  std::printf("\ntall-skinny at comparable flops, 160 nodes:\n");
  std::printf("%10s | %12s %12s %12s | %10s\n", "m x 4608", "Flat(domino)",
              "Hier h=6", "Binary", "hier/flat");
  for (int m : {92160, 368640}) {
    const double f = gflops(plan::TreeKind::Flat, 1, m, 4608, 160);
    const double h = gflops(plan::TreeKind::BinaryOnFlat, 6, m, 4608, 160);
    const double b = gflops(plan::TreeKind::Binary, 1, m, 4608, 160);
    std::printf("%10d | %12.0f %12.0f %12.0f | %9.2fx\n", m, f, h, b, h / f);
  }
  std::printf("\npaper: on squares the flat tree (== domino QR) is already "
              "competitive; the tree\nreduction earns its cost on "
              "tall-skinny shapes.\n");
  return 0;
}
