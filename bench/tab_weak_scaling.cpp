// Weak-scaling study (Section II motivates it: "weak scaling allows the
// user to partition the data as well as the computation, which enables
// larger mathematical models to be evaluated").
//
// Simulator part: rows grow with the core count (fixed tile rows per
// core), n fixed — the per-core Gflop/s should hold roughly constant for
// the hierarchical tree while flat decays.
// Real-runtime part: the same sweep at laptop scale on the actual PULSAR
// runtime, growing the matrix with the worker count.
#include <cstdio>

#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "vsaqr/tree_qr.hpp"

using namespace pulsarqr;
using namespace pulsarqr::sim;

int main() {
  const MachineModel mm = MachineModel::kraken();
  const int n = 4608;
  std::printf("== Weak scaling (simulator, Kraken model): 96 tile rows per "
              "node, n = %d ==\n\n", n);
  std::printf("%8s %10s | %12s %14s | %12s %14s\n", "cores", "m",
              "hier Gflop/s", "per-core", "flat Gflop/s", "per-core");
  for (int nodes : {40, 80, 160, 320}) {
    const int cores = nodes * mm.cores_per_node;
    const int m = nodes * 64 * 192;
    const auto h = simulate_tree_qr(
        m, n, 192, 48,
        {plan::TreeKind::BinaryOnFlat, 6, plan::BoundaryMode::Shifted}, mm,
        nodes);
    const auto f = simulate_tree_qr(
        m, n, 192, 48, {plan::TreeKind::Flat, 1, plan::BoundaryMode::Shifted},
        mm, nodes);
    std::printf("%8d %10d | %12.0f %14.2f | %12.0f %14.2f\n", cores, m,
                h.useful_gflops, h.useful_gflops / cores, f.useful_gflops,
                f.useful_gflops / cores);
  }
  std::printf("\nexpected shape: hierarchical holds its per-core rate; flat "
              "decays as the panel pipeline saturates.\n");

  std::printf("\n== Weak scaling (real PULSAR runtime on this host) ==\n");
  std::printf("%8s %8s | %10s %12s %14s\n", "workers", "m", "time (s)",
              "fires", "fires/s/worker");
  for (int workers : {1, 2, 4}) {
    const int m = workers * 512;
    Matrix a0(m, 128);
    fill_random(a0.view(), 99 + workers);
    TileMatrix a = TileMatrix::from_dense(a0.view(), 64);
    vsaqr::TreeQrOptions opt;
    opt.tree = {plan::TreeKind::BinaryOnFlat, 4, plan::BoundaryMode::Shifted};
    opt.ib = 16;
    opt.workers_per_node = workers;
    const auto run = vsaqr::tree_qr(a, opt);
    std::printf("%8d %8d | %10.3f %12lld %14.0f\n", workers, m,
                run.stats.seconds, run.stats.fires,
                run.stats.fires / run.stats.seconds / workers);
  }
  std::printf("\n(single-core host: real-runtime weak scaling exercises the "
              "code path; rate constancy needs real cores.)\n");
  return 0;
}
