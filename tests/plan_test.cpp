// Tests for the domain partitioning (Figure 6) and the reduction plan
// (Figure 5 pseudocode): structural invariants that must hold for every
// tree configuration.
#include <gtest/gtest.h>

#include <set>

#include "plan/flops.hpp"
#include "plan/reduction_plan.hpp"

namespace pulsarqr::plan {
namespace {

TEST(Domains, FlatIsOneDomain) {
  PlanConfig cfg{TreeKind::Flat, 6, BoundaryMode::Shifted};
  const auto d = domains_for_panel(10, 3, cfg);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].begin, 3);
  EXPECT_EQ(d[0].end, 10);
}

TEST(Domains, BinaryIsSingletons) {
  PlanConfig cfg{TreeKind::Binary, 6, BoundaryMode::Shifted};
  const auto d = domains_for_panel(5, 2, cfg);
  ASSERT_EQ(d.size(), 3u);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(d[k].begin, 2 + k);
    EXPECT_EQ(d[k].size(), 1);
  }
}

TEST(Domains, ShiftedBoundariesMoveWithPanel) {
  PlanConfig cfg{TreeKind::BinaryOnFlat, 3, BoundaryMode::Shifted};
  const auto d0 = domains_for_panel(10, 0, cfg);
  ASSERT_EQ(d0.size(), 4u);
  EXPECT_EQ(d0[0].begin, 0);
  EXPECT_EQ(d0[1].begin, 3);
  EXPECT_EQ(d0[3].begin, 9);
  EXPECT_EQ(d0[3].end, 10);
  const auto d1 = domains_for_panel(10, 1, cfg);
  EXPECT_EQ(d1[0].begin, 1);
  EXPECT_EQ(d1[1].begin, 4);  // boundary shifted by one
}

TEST(Domains, FixedBoundariesStayAbsolute) {
  PlanConfig cfg{TreeKind::BinaryOnFlat, 3, BoundaryMode::Fixed};
  const auto d1 = domains_for_panel(10, 1, cfg);
  ASSERT_EQ(d1.size(), 4u);
  EXPECT_EQ(d1[0].begin, 1);
  EXPECT_EQ(d1[0].end, 3);  // truncated first domain
  EXPECT_EQ(d1[1].begin, 3);
  EXPECT_EQ(d1[2].begin, 6);
  const auto d4 = domains_for_panel(10, 4, cfg);
  EXPECT_EQ(d4[0].begin, 4);
  EXPECT_EQ(d4[0].end, 6);
  EXPECT_EQ(d4[1].begin, 6);  // same absolute boundary as at panel 1
}

TEST(Domains, CoverEveryRowExactlyOnce) {
  for (auto tree : {TreeKind::Flat, TreeKind::Binary, TreeKind::BinaryOnFlat}) {
    for (auto bm : {BoundaryMode::Fixed, BoundaryMode::Shifted}) {
      for (int h : {1, 2, 5}) {
        PlanConfig cfg{tree, h, bm};
        for (int mt : {1, 4, 13}) {
          for (int j = 0; j < mt; ++j) {
            const auto doms = domains_for_panel(mt, j, cfg);
            int expect = j;
            for (const auto& d : doms) {
              EXPECT_EQ(d.begin, expect);
              EXPECT_LT(d.begin, d.end);
              expect = d.end;
            }
            EXPECT_EQ(expect, mt);
          }
        }
      }
    }
  }
}

TEST(BinaryLevel, PairsAdjacentLowerSurvives) {
  std::vector<int> heads = {2, 5, 8, 11, 14};
  auto pairs = binary_level(heads);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], std::make_pair(2, 5));
  EXPECT_EQ(pairs[1], std::make_pair(8, 11));
  EXPECT_EQ(heads, (std::vector<int>{2, 8, 14}));
  pairs = binary_level(heads);
  EXPECT_EQ(heads, (std::vector<int>{2, 14}));
  pairs = binary_level(heads);
  EXPECT_EQ(heads, (std::vector<int>{2}));
}

// Every plan, regardless of tree, must eliminate each below-diagonal tile
// row exactly once per panel and finish with the diagonal as survivor.
class PlanParam
    : public ::testing::TestWithParam<std::tuple<TreeKind, BoundaryMode, int,
                                                 int, int>> {};

TEST_P(PlanParam, EliminatesEachRowOncePerPanel) {
  const auto [tree, bm, h, mt, nt] = GetParam();
  ReductionPlan plan(mt, nt, PlanConfig{tree, h, bm});
  for (int j = 0; j < plan.panels(); ++j) {
    std::set<int> eliminated;
    std::set<int> geqrted;
    const auto [b, e] = plan.panel_range(j);
    for (std::size_t idx = b; idx < e; ++idx) {
      const Op& op = plan.ops()[idx];
      EXPECT_EQ(op.j, j);
      if (op.kind == OpKind::Geqrt) {
        EXPECT_TRUE(geqrted.insert(op.i).second) << "double geqrt";
      } else if (op.kind == OpKind::Tsqrt || op.kind == OpKind::Ttqrt) {
        EXPECT_GE(op.k, j);
        EXPECT_LT(op.i, op.k) << "survivor must be the lower row index";
        EXPECT_TRUE(eliminated.insert(op.k).second)
            << "row " << op.k << " eliminated twice in panel " << j;
      }
    }
    // Rows j+1..mt-1 eliminated exactly once; row j never eliminated.
    EXPECT_EQ(static_cast<int>(eliminated.size()), mt - j - 1);
    EXPECT_EQ(eliminated.count(j), 0u);
    // Every domain head was geqrt'd, and heads that lose a ttqrt were
    // geqrt'd before being eliminated (structural sanity).
    EXPECT_GE(geqrted.count(j), 1u);
  }
}

TEST_P(PlanParam, UpdatesCoverAllTrailingColumns) {
  const auto [tree, bm, h, mt, nt] = GetParam();
  ReductionPlan plan(mt, nt, PlanConfig{tree, h, bm});
  for (const auto& op : plan.ops()) {
    const bool factor = is_factor_op(op.kind);
    if (factor) {
      EXPECT_EQ(op.l, -1);
    } else {
      EXPECT_GT(op.l, op.j);
      EXPECT_LT(op.l, nt);
    }
  }
  // Count updates: each factor op must be followed by nt-1-j updates.
  for (int j = 0; j < plan.panels(); ++j) {
    int factors = 0;
    int updates = 0;
    const auto [b, e] = plan.panel_range(j);
    for (std::size_t idx = b; idx < e; ++idx) {
      if (is_factor_op(plan.ops()[idx].kind)) {
        ++factors;
      } else {
        ++updates;
      }
    }
    EXPECT_EQ(updates, factors * (nt - 1 - j));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlanParam,
    ::testing::Combine(
        ::testing::Values(TreeKind::Flat, TreeKind::Binary,
                          TreeKind::BinaryOnFlat),
        ::testing::Values(BoundaryMode::Fixed, BoundaryMode::Shifted),
        ::testing::Values(1, 2, 3, 7),
        ::testing::Values(1, 5, 12),
        ::testing::Values(1, 3, 12)));

TEST(Flops, FlatPlanMatchesUsefulFlopsLeadingOrder) {
  // For the flat tree the tile algorithm performs (to leading order, with
  // small ib/nb overheads) the classical 2n^2(m - n/3) flops.
  const int nb = 8;
  const int m = 32 * nb;
  const int n = 4 * nb;
  ReductionPlan plan(m / nb, n / nb, PlanConfig{TreeKind::Flat, 1,
                                                BoundaryMode::Shifted});
  const double got = plan_flops(plan, m, n, nb);
  const double expect = qr_useful_flops(m, n);
  EXPECT_GT(got, expect);            // tile algorithm does extra work
  EXPECT_LT(got, 2.0 * expect);      // but bounded overhead
}

TEST(Flops, BinaryCostsMoreThanFlat) {
  const int nb = 8;
  const int m = 64 * nb;
  const int n = 4 * nb;
  ReductionPlan flat(m / nb, n / nb,
                     PlanConfig{TreeKind::Flat, 1, BoundaryMode::Shifted});
  ReductionPlan bin(m / nb, n / nb,
                    PlanConfig{TreeKind::Binary, 1, BoundaryMode::Shifted});
  // The paper: the hierarchical/binary trees increase computational cost.
  EXPECT_GT(plan_flops(bin, m, n, nb) / plan_flops(flat, m, n, nb), 0.5);
}

TEST(Plan, OpCountFormula) {
  // Each panel has D_j geqrts (one per domain) plus mt-j-1 eliminations,
  // and each factor op fans out into nt-1-j updates. Trees with more
  // domains therefore do strictly more kernel calls (the paper's "albeit
  // increasing the computational cost").
  for (auto tree : {TreeKind::Flat, TreeKind::Binary, TreeKind::BinaryOnFlat}) {
    PlanConfig cfg{tree, 3, BoundaryMode::Shifted};
    ReductionPlan plan(7, 4, cfg);
    std::size_t expect = 0;
    for (int j = 0; j < 4; ++j) {
      const auto d = domains_for_panel(7, j, cfg).size();
      expect += (d + (7 - j - 1)) * (4 - j);
    }
    EXPECT_EQ(plan.ops().size(), expect);
  }
}

}  // namespace
}  // namespace pulsarqr::plan
