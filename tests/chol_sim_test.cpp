// Tests for the Cholesky and LU performance simulations.
#include <gtest/gtest.h>

#include "sim/chol_sim.hpp"
#include "sim/lu_sim.hpp"

namespace pulsarqr::sim {
namespace {

TEST(CholSim, SingleWorkerMatchesSerialWork) {
  MachineModel mm = MachineModel::kraken();
  mm.cores_per_node = 2;  // one worker
  const auto r = simulate_cholesky(8 * 64, 64, mm, 1);
  EXPECT_NEAR(r.busy_fraction, 1.0, 1e-9);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(CholSim, ScalesWithNodes) {
  const MachineModel mm = MachineModel::kraken();
  double prev = 1e300;
  for (int nodes : {1, 2, 4, 8}) {
    const auto r = simulate_cholesky(64 * 192, 192, mm, nodes);
    EXPECT_LT(r.seconds, prev * 1.02) << nodes;
    prev = r.seconds;
  }
}

TEST(CholSim, ActualExceedsUsefulSlightly) {
  // The tile Cholesky does (to leading order) exactly n^3/3 work, so the
  // two rates agree within the tile fringe.
  const auto r = simulate_cholesky(32 * 128, 128, MachineModel::kraken(), 4);
  EXPECT_GE(r.actual_gflops, r.useful_gflops * 0.95);
  EXPECT_LE(r.actual_gflops, r.useful_gflops * 1.6);
}

TEST(CholSim, TaskCountMatchesPlan) {
  const int mt = 20;
  chol::CholPlan plan(mt);
  const auto r = simulate_cholesky(mt * 64, 64, MachineModel::kraken(), 2);
  EXPECT_EQ(r.tasks, static_cast<long long>(plan.ops().size()));
}

TEST(CholSim, UtilizationDecaysUnderStrongScaling) {
  // Fixed problem, growing machine: utilization must fall monotonically
  // (the signature of strong scaling saturation).
  const MachineModel mm = MachineModel::kraken();
  double prev = 1.1;
  for (int nodes : {10, 40, 160}) {
    const auto r = simulate_cholesky(120 * 192, 192, mm, nodes);
    EXPECT_LT(r.busy_fraction, prev);
    prev = r.busy_fraction;
  }
}

TEST(LuSim, ScalesWithNodes) {
  const MachineModel mm = MachineModel::kraken();
  double prev = 1e300;
  for (int nodes : {1, 2, 4, 8}) {
    const auto r = simulate_lu(48 * 192, 48 * 192, 192, mm, nodes);
    EXPECT_LT(r.seconds, prev * 1.02) << nodes;
    prev = r.seconds;
  }
}

TEST(LuSim, TaskCountMatchesPlan) {
  lu::LuPlan plan(12, 12);
  const auto r = simulate_lu(12 * 64, 12 * 64, 64, MachineModel::kraken(), 2);
  EXPECT_EQ(r.tasks, static_cast<long long>(plan.ops().size()));
}

TEST(LuSim, RectangularShapesWork) {
  const MachineModel mm = MachineModel::kraken();
  const auto tall = simulate_lu(64 * 128, 8 * 128, 128, mm, 4);
  const auto wide = simulate_lu(8 * 128, 64 * 128, 128, mm, 4);
  EXPECT_GT(tall.seconds, 0.0);
  EXPECT_GT(wide.seconds, 0.0);
  // Same flop totals to leading order (LU of A and A^T differ only in
  // trsm/gemm shapes), so the times should be within a small factor.
  EXPECT_LT(tall.seconds / wide.seconds, 4.0);
  EXPECT_GT(tall.seconds / wide.seconds, 0.25);
}

TEST(LuSim, SquareLuCostsMoreThanCholesky) {
  // 2n^3/3 vs n^3/3 flops at similar kernel efficiencies; both are partly
  // pipeline-bound at this scale, so the measured ratio sits between 1
  // and the flop ratio of 2.
  const MachineModel mm = MachineModel::kraken();
  const auto l = simulate_lu(64 * 192, 64 * 192, 192, mm, 16);
  const auto c = simulate_cholesky(64 * 192, 192, mm, 16);
  const double ratio = l.seconds / c.seconds;
  EXPECT_GT(ratio, 1.1);
  EXPECT_LT(ratio, 3.5);
}

}  // namespace
}  // namespace pulsarqr::sim
