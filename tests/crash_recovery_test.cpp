// Node-process crash recovery over the Socket transport: the kill fault
// (FaultPlan::kill_rank / kill_after), parent-side respawn from the
// pristine copy-on-write image, survivor-side history replay
// (Reliable::replay_link + the proxy's per-channel dedup), and the
// exactly-once deposit discipline of the result stores.
//
// The soak at the bottom SIGKILLs one node per schedule across three
// array shapes and verifies every recovered run bit-for-bit against the
// fault-free sequential reference — recovery must be completely
// invisible in the output. PQR_CHAOS_SCHEDULES shrinks the per-shape
// schedule count for smoke runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

#include "blas/blas.hpp"
#include "chol/vsa_chol.hpp"
#include "common/rng.hpp"
#include "lu/vsa_lu.hpp"
#include "prt/transport.hpp"
#include "prt/vsa.hpp"
#include "ref/reference_qr.hpp"
#include "vsaqr/result_store.hpp"
#include "vsaqr/tree_qr.hpp"

namespace pulsarqr {
namespace {

using prt::Packet;
using Comm = prt::net::MailboxComm;
using prt::net::Message;
using prt::net::Reliable;
using Clock = std::chrono::steady_clock;

// ---- Reliable: replay-log retention and survivor-side replay ----------------

Reliable::Params replay_params(std::size_t log_bytes) {
  Reliable::Params p;
  p.rto_us = 60'000'000;  // no spurious retransmits inside a unit test
  p.replay_log_bytes = log_bytes;
  return p;
}

TEST(ReliableReplayTest, ReplayLinkRequeuesAckedHistoryWithOriginalSeqs) {
  Comm comm(2);
  Reliable a(comm, 0, replay_params(1 << 20));
  Reliable b(comm, 1, replay_params(0));
  for (int i = 0; i < 3; ++i) a.send(1, 4, Packet::make(8), 40 + i);
  std::deque<Message> inbox;
  while (auto m = comm.try_recv(1)) b.on_receive(std::move(*m), inbox);
  ASSERT_EQ(inbox.size(), 3u);
  b.flush_acks();
  std::deque<Message> back;
  while (auto m = comm.try_recv(0)) a.on_receive(std::move(*m), back);
  // Fully acked: nothing pending, but the history is retained.
  EXPECT_TRUE(a.poll(Clock::now() + std::chrono::hours(1)));
  EXPECT_EQ(a.retransmits(), 0);

  // Rank 1 "dies"; its replacement receives from expected = 0. Replay
  // requeues the entire history with the ORIGINAL sequence numbers.
  ASSERT_EQ(a.replay_link(1, Clock::now()), 3);
  EXPECT_EQ(a.replayed(), 3);
  EXPECT_TRUE(a.poll(Clock::now() + std::chrono::seconds(1)));
  Reliable fresh(comm, 1, replay_params(0));
  std::deque<Message> redelivered;
  while (auto m = comm.try_recv(1)) {
    EXPECT_GE(m->seq, 0);
    EXPECT_LE(m->seq, 2);
    fresh.on_receive(std::move(*m), redelivered);
  }
  ASSERT_EQ(redelivered.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(redelivered[static_cast<std::size_t>(i)].meta, 40 + i);
    EXPECT_EQ(redelivered[static_cast<std::size_t>(i)].seq, i);
  }
}

TEST(ReliableReplayTest, EvictionMakesReplayReportAnUnrecoverableGap) {
  Comm comm(2);
  // Budget fits one 8-byte frame: acking the second evicts the first.
  Reliable a(comm, 0, replay_params(8));
  Reliable b(comm, 1, replay_params(0));
  for (int i = 0; i < 2; ++i) a.send(1, 4, Packet::make(8), i);
  std::deque<Message> inbox;
  while (auto m = comm.try_recv(1)) b.on_receive(std::move(*m), inbox);
  b.flush_acks();
  std::deque<Message> back;
  while (auto m = comm.try_recv(0)) a.on_receive(std::move(*m), back);
  // Part of the history is gone; a replay would silently lose frame 0,
  // so it must refuse instead.
  EXPECT_EQ(a.replay_link(1, Clock::now()), -1);
}

TEST(ReliableReplayTest, ResetRecvLinkAcceptsAFreshStreamFromSeqZero) {
  Comm comm(2);
  Reliable a(comm, 0, replay_params(0));
  Reliable b(comm, 1, replay_params(0));
  for (int i = 0; i < 5; ++i) a.send(1, 2, Packet::make(8), i);
  std::deque<Message> inbox;
  while (auto m = comm.try_recv(1)) b.on_receive(std::move(*m), inbox);
  ASSERT_EQ(inbox.size(), 5u);
  // Rank 0's replacement restarts its stream at seq 0; without the reset
  // those frames would all be "duplicates" of the dead incarnation.
  b.reset_recv_link(0);
  Reliable a2(comm, 0, replay_params(0));
  a2.send(1, 2, Packet::make(8), 100);
  std::deque<Message> fresh;
  while (auto m = comm.try_recv(1)) b.on_receive(std::move(*m), fresh);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].meta, 100);
  EXPECT_EQ(fresh[0].seq, 0);
  EXPECT_EQ(b.duplicates_suppressed(), 0);
}

// ---- ResultStore: exactly-once deposits under replay ------------------------

TEST(ResultStoreDedupTest, ReplayedDepositsAreVerifiedAndSkipped) {
  // A respawned node re-executes from scratch, so the parent can receive
  // the same deposit twice (once replayed to a survivor that shipped it,
  // once from the replacement's own epilogue). With dedup on, identical
  // re-deposits are no-ops; the deposit log must not grow either.
  vsaqr::ResultStore src(10, 5, 5, 2);
  src.enable_deposit_log();
  src.enable_dedup();
  Matrix tile(5, 5), t(2, 5);
  fill_random(tile.view(), 31);
  fill_random(t.view(), 32);
  src.put_tile(0, 0, tile.view());
  src.put_tile(1, 0, tile.view());
  src.put_tg(0, 0, t.view());
  src.put_tt(1, 0, t.view());
  const Packet blob = src.serialize_deposits();

  vsaqr::ResultStore dst(10, 5, 5, 2);
  dst.enable_deposit_log();
  dst.enable_dedup();
  dst.apply_deposits(blob);
  dst.apply_deposits(blob);  // the replay: verified bitwise, then skipped
  const Packet once = dst.serialize_deposits();
  EXPECT_EQ(once.size(), blob.size())
      << "replayed deposits leaked into the deposit log";
}

TEST(ResultStoreDedupTest, WithoutDedupADoubleDepositStillAborts) {
  vsaqr::ResultStore store(10, 5, 5, 2);
  Matrix tile(5, 5);
  fill_random(tile.view(), 33);
  store.put_tile(0, 0, tile.view());
  EXPECT_DEATH(store.put_tile(0, 0, tile.view()), "deposited twice");
}

TEST(ResultStoreDedupTest, ConflictingReplayContentAbortsEvenWithDedup) {
  // Dedup forgives identical replays, not two VDPs claiming one slot.
  vsaqr::ResultStore store(10, 5, 5, 2);
  store.enable_dedup();
  Matrix tile(5, 5), other(5, 5);
  fill_random(tile.view(), 34);
  fill_random(other.view(), 35);
  store.put_tile(0, 0, tile.view());
  EXPECT_DEATH(store.put_tile(0, 0, other.view()), "conflicting re-deposit");
}

// ---- configuration guards ---------------------------------------------------

TEST(CrashRecoveryTest, RespawnBudgetRequiresReliableSocketTransport) {
  Matrix a0(40, 10);
  fill_random(a0.view(), 41);
  TileMatrix a = TileMatrix::from_dense(a0.view(), 5);
  vsaqr::TreeQrOptions opt;
  opt.tree = {plan::TreeKind::BinaryOnFlat, 2, plan::BoundaryMode::Shifted};
  opt.ib = 2;
  opt.nodes = 2;
  opt.workers_per_node = 2;
  opt.max_respawns = 1;  // recovery without the socket backend: rejected
  EXPECT_THROW(vsaqr::tree_qr(a, opt), Error);
  opt.transport = prt::Transport::Socket;
  opt.reliable_transport = false;  // and without reliable delivery too
  EXPECT_THROW(vsaqr::tree_qr(a, opt), Error);
}

// ---- structured failure without a respawn budget ----------------------------

TEST(CrashRecoveryTest, KillWithoutBudgetYieldsStructuredProcessFailure) {
  Matrix a0(48, 12);
  fill_random(a0.view(), 42);
  TileMatrix a = TileMatrix::from_dense(a0.view(), 6);
  vsaqr::TreeQrOptions opt;
  opt.tree = {plan::TreeKind::Binary, 1, plan::BoundaryMode::Shifted};
  opt.ib = 3;
  opt.nodes = 3;
  opt.workers_per_node = 1;
  opt.watchdog_seconds = 60.0;
  opt.transport = prt::Transport::Socket;
  opt.reliable_transport = true;
  opt.retransmit_timeout_us = 800;
  opt.max_retransmits = 30;
  opt.fault_plan.kill_rank = 1;
  opt.fault_plan.kill_after = 4;
  opt.max_respawns = 0;  // a death is immediately terminal
  try {
    vsaqr::tree_qr(a, opt);
    FAIL() << "a SIGKILLed node without respawn budget must fail the run";
  } catch (const prt::Vsa::RunError& e) {
    const auto& r = e.report();
    EXPECT_EQ(r.reason, "process");
    ASSERT_EQ(r.dead_ranks.size(), 1u);
    EXPECT_EQ(r.dead_ranks[0], 1);
    // The parent names the VDP tuples that died with the rank, from its
    // own pristine image of the graph.
    EXPECT_FALSE(r.stuck_vdps.empty());
    const std::string what = e.what();
    EXPECT_NE(what.find("dead node process"), std::string::npos);
    EXPECT_NE(what.find("respawn"), std::string::npos);
  }
}

// ---- the crash-chaos soak ---------------------------------------------------

struct SoakShape {
  int m, n, nb, ib;
  plan::PlanConfig tree;
  int nodes, workers;
};

// Per-shape schedule count; >= 24 by default (acceptance criterion),
// shrinkable via PQR_CHAOS_SCHEDULES for smoke runs.
int kill_schedules() {
  if (const char* e = std::getenv("PQR_CHAOS_SCHEDULES")) {
    const int n = std::atoi(e);
    if (n > 0) return std::min(n, 24);
  }
  return 24;
}

TEST(CrashRecoveryTest, KillSoakRecoversBitwiseAcrossShapesAndSeeds) {
  const std::vector<SoakShape> shapes = {
      {40, 10, 5, 2, {plan::TreeKind::BinaryOnFlat, 2,
                      plan::BoundaryMode::Shifted}, 2, 2},
      {48, 12, 6, 3, {plan::TreeKind::Binary, 1,
                      plan::BoundaryMode::Shifted}, 3, 1},
      {30, 10, 5, 5, {plan::TreeKind::Flat, 1,
                      plan::BoundaryMode::Fixed}, 2, 2},
  };
  const int schedules = kill_schedules();
  long long total_respawns = 0;
  long long total_replayed = 0;
  for (std::size_t which = 0; which < shapes.size(); ++which) {
    const auto& sh = shapes[which];
    Matrix a0(sh.m, sh.n);
    fill_random(a0.view(), 900 + static_cast<int>(which));
    const auto reference =
        ref::tree_qr(TileMatrix::from_dense(a0.view(), sh.nb), sh.ib, sh.tree);
    for (int s = 0; s < schedules; ++s) {
      TileMatrix a = TileMatrix::from_dense(a0.view(), sh.nb);
      vsaqr::TreeQrOptions opt;
      opt.tree = sh.tree;
      opt.ib = sh.ib;
      opt.nodes = sh.nodes;
      opt.workers_per_node = sh.workers;
      opt.watchdog_seconds = 60.0;
      opt.transport = prt::Transport::Socket;
      opt.reliable_transport = true;
      opt.retransmit_timeout_us = 800;
      opt.max_retransmits = 30;
      opt.max_respawns = 2;
      // Rotate the victim and the crash point across schedules. The kill
      // can race run completion on these small arrays (a node may finish
      // before its monitor loop fires the fault) — that is fine, the
      // soak's contract is that the OUTPUT is identical either way.
      opt.fault_plan.kill_rank = s % sh.nodes;
      opt.fault_plan.kill_after = 1 + 3 * (s % 8);
      // Odd schedules add message-level chaos on top of the crash.
      if (s % 2 == 1) {
        opt.fault_plan.seed = 1000 + static_cast<std::uint64_t>(s);
        opt.fault_plan.drop = 0.05;
        opt.fault_plan.dup = 0.05;
        opt.fault_plan.reorder = 0.05;
      }

      auto run = vsaqr::tree_qr(a, opt);
      total_respawns += run.stats.respawns;
      total_replayed += run.stats.replayed_frames;
      if (run.stats.respawns > 0) {
        EXPECT_GT(run.stats.refired_fires, 0)
            << "shape " << which << " schedule " << s
            << ": a respawned node reported no re-fired work";
      }
      ASSERT_EQ(run.stats.leftover_packets, 0)
          << "shape " << which << " schedule " << s;
      for (int j = 0; j < reference.a.cols(); ++j) {
        for (int i = 0; i < reference.a.rows(); ++i) {
          ASSERT_EQ(run.factors.a.at(i, j), reference.a.at(i, j))
              << "shape " << which << " schedule " << s << " diverged at ("
              << i << "," << j << ")";
        }
      }
    }
  }
  // The soak must actually exercise recovery: across all schedules at
  // least one node died and was respawned, and at least one survivor
  // replayed retained frames to a replacement.
  EXPECT_GT(total_respawns, 0) << "no schedule ever triggered the kill";
  EXPECT_GT(total_replayed, 0) << "no survivor ever replayed history";
}

// ---- Cholesky and LU ride the same recovery machinery -----------------------

TEST(CrashRecoveryTest, CholeskyOverSocketSurvivesAKill) {
  const int n = 256, nb = 32;
  Matrix spd = chol::random_spd(n, 51);
  chol::VsaCholOptions base;
  base.nodes = 3;
  base.workers_per_node = 2;
  const auto reference =
      chol::vsa_cholesky(TileMatrix::from_dense(spd.view(), nb), base);
  chol::VsaCholOptions opt = base;
  opt.transport = prt::Transport::Socket;
  opt.reliable_transport = true;
  opt.retransmit_timeout_us = 800;
  opt.max_retransmits = 30;
  opt.max_respawns = 2;
  opt.fault_plan.kill_rank = 1;
  opt.fault_plan.kill_after = 2;
  auto run = chol::vsa_cholesky(TileMatrix::from_dense(spd.view(), nb), opt);
  EXPECT_GE(run.stats.respawns, 1) << "the kill never fired";
  const Matrix want = chol::extract_l(reference.l);
  const Matrix got = chol::extract_l(run.l);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(got(i, j), want(i, j))
          << "L diverged at (" << i << "," << j << ")";
    }
  }
}

TEST(CrashRecoveryTest, LuOverSocketSurvivesAKill) {
  const int n = 256, nb = 32;
  Matrix m = lu::random_diag_dominant(n, n, 52);
  lu::VsaLuOptions base;
  base.nodes = 3;
  base.workers_per_node = 2;
  const auto reference = lu::vsa_lu(TileMatrix::from_dense(m.view(), nb), base);
  lu::VsaLuOptions opt = base;
  opt.transport = prt::Transport::Socket;
  opt.reliable_transport = true;
  opt.retransmit_timeout_us = 800;
  opt.max_retransmits = 30;
  opt.max_respawns = 2;
  opt.fault_plan.kill_rank = 2;
  opt.fault_plan.kill_after = 2;
  auto run = lu::vsa_lu(TileMatrix::from_dense(m.view(), nb), opt);
  EXPECT_GE(run.stats.respawns, 1) << "the kill never fired";
  const Matrix want = reference.f.to_dense();
  const Matrix got = run.f.to_dense();
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(got(i, j), want(i, j))
          << "factors diverged at (" << i << "," << j << ")";
    }
  }
}

TEST(CrashRecoveryTest, CholAndLuShipResultsOverTheSocketBackend) {
  // No faults at all: the deposit-log shipping alone must reproduce the
  // in-process factors bit-for-bit for both scenario stores.
  const int n = 120, nb = 20;
  Matrix spd = chol::random_spd(n, 53);
  chol::VsaCholOptions copt;
  copt.nodes = 2;
  copt.workers_per_node = 2;
  const auto cref =
      chol::vsa_cholesky(TileMatrix::from_dense(spd.view(), nb), copt);
  copt.transport = prt::Transport::Socket;
  const auto crun =
      chol::vsa_cholesky(TileMatrix::from_dense(spd.view(), nb), copt);
  const Matrix cwant = chol::extract_l(cref.l);
  const Matrix cgot = chol::extract_l(crun.l);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(cgot(i, j), cwant(i, j))
          << "chol diverged at (" << i << "," << j << ")";
    }
  }

  Matrix dd = lu::random_diag_dominant(n, n, 54);
  lu::VsaLuOptions lopt;
  lopt.nodes = 2;
  lopt.workers_per_node = 2;
  const auto lref = lu::vsa_lu(TileMatrix::from_dense(dd.view(), nb), lopt);
  lopt.transport = prt::Transport::Socket;
  const auto lrun = lu::vsa_lu(TileMatrix::from_dense(dd.view(), nb), lopt);
  const Matrix lwant = lref.f.to_dense();
  const Matrix lgot = lrun.f.to_dense();
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(lgot(i, j), lwant(i, j))
          << "lu diverged at (" << i << "," << j << ")";
    }
  }
}

}  // namespace
}  // namespace pulsarqr
