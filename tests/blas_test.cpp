// Unit tests for the from-scratch BLAS subset.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/blas.hpp"
#include "common/rng.hpp"

namespace pulsarqr {
namespace {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;

Matrix random_matrix(int m, int n, std::uint64_t seed) {
  Matrix a(m, n);
  fill_random(a.view(), seed);
  return a;
}

// Naive reference gemm for validation.
Matrix naive_gemm(Trans ta, Trans tb, double alpha, const Matrix& a,
                  const Matrix& b, double beta, const Matrix& c) {
  Matrix out = c;
  const int m = c.rows();
  const int n = c.cols();
  const int k = ta == Trans::No ? a.cols() : a.rows();
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      double s = 0.0;
      for (int p = 0; p < k; ++p) {
        const double av = ta == Trans::No ? a(i, p) : a(p, i);
        const double bv = tb == Trans::No ? b(p, j) : b(j, p);
        s += av * bv;
      }
      out(i, j) = alpha * s + beta * c(i, j);
    }
  }
  return out;
}

double max_diff(const Matrix& a, const Matrix& b) {
  double d = 0.0;
  for (int j = 0; j < a.cols(); ++j) {
    for (int i = 0; i < a.rows(); ++i) {
      d = std::fmax(d, std::fabs(a(i, j) - b(i, j)));
    }
  }
  return d;
}

TEST(Level1, AxpyScalDotCopy) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {4.0, 5.0, 6.0};
  blas::axpy(3, 2.0, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  blas::scal(3, 0.5, y.data());
  EXPECT_DOUBLE_EQ(y[1], 4.5);
  EXPECT_DOUBLE_EQ(blas::dot(3, x.data(), x.data()), 14.0);
  std::vector<double> z(3);
  blas::copy(3, x.data(), z.data());
  EXPECT_EQ(z, x);
}

TEST(Level1, Nrm2MatchesSqrtDot) {
  Rng rng(7);
  std::vector<double> x(257);
  for (auto& v : x) v = rng.next_symmetric();
  const double n1 = blas::nrm2(static_cast<int>(x.size()), x.data());
  const double n2 = std::sqrt(blas::dot(static_cast<int>(x.size()), x.data(), x.data()));
  EXPECT_NEAR(n1, n2, 1e-12 * n2);
}

TEST(Level1, Nrm2AvoidsOverflow) {
  std::vector<double> x = {1e200, 1e200};
  EXPECT_DOUBLE_EQ(blas::nrm2(2, x.data()), std::sqrt(2.0) * 1e200);
  std::vector<double> tiny = {1e-200, 1e-200};
  EXPECT_NEAR(blas::nrm2(2, tiny.data()), std::sqrt(2.0) * 1e-200,
              1e-210);
}

TEST(Level2, GemvBothTrans) {
  Matrix a = random_matrix(5, 3, 11);
  std::vector<double> x = {1.0, -2.0, 0.5};
  std::vector<double> y(5, 1.0);
  blas::gemv(Trans::No, 2.0, a.view(), x.data(), 3.0, y.data());
  for (int i = 0; i < 5; ++i) {
    double s = 0.0;
    for (int j = 0; j < 3; ++j) s += a(i, j) * x[j];
    EXPECT_NEAR(y[i], 2.0 * s + 3.0, 1e-14);
  }
  std::vector<double> xt = {1.0, -1.0, 2.0, 0.5, 0.25};
  std::vector<double> yt(3, -1.0);
  blas::gemv(Trans::Yes, 1.5, a.view(), xt.data(), 0.5, yt.data());
  for (int j = 0; j < 3; ++j) {
    double s = 0.0;
    for (int i = 0; i < 5; ++i) s += a(i, j) * xt[i];
    EXPECT_NEAR(yt[j], 1.5 * s - 0.5, 1e-14);
  }
}

TEST(Level2, Ger) {
  Matrix a = random_matrix(4, 3, 13);
  Matrix a0 = a;
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {0.5, -1.0, 2.0};
  blas::ger(2.0, x.data(), y.data(), a.view());
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_NEAR(a(i, j), a0(i, j) + 2.0 * x[i] * y[j], 1e-14);
    }
  }
}

class GemmParam : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmParam, AllTransCombosMatchNaive) {
  const auto [m, n, k] = GetParam();
  for (Trans ta : {Trans::No, Trans::Yes}) {
    for (Trans tb : {Trans::No, Trans::Yes}) {
      Matrix a = ta == Trans::No ? random_matrix(m, k, 1) : random_matrix(k, m, 1);
      Matrix b = tb == Trans::No ? random_matrix(k, n, 2) : random_matrix(n, k, 2);
      Matrix c = random_matrix(m, n, 3);
      Matrix expect = naive_gemm(ta, tb, 1.7, a, b, -0.3, c);
      blas::gemm(ta, tb, 1.7, a.view(), b.view(), -0.3, c.view());
      EXPECT_LT(max_diff(c, expect), 1e-12 * (1.0 + k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmParam,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(3, 4, 5),
                                           std::make_tuple(8, 8, 8),
                                           std::make_tuple(17, 5, 9),
                                           std::make_tuple(2, 31, 6),
                                           std::make_tuple(24, 24, 1)));

TEST(Level3, GemmBetaZeroIgnoresGarbage) {
  Matrix a = random_matrix(3, 3, 5);
  Matrix b = random_matrix(3, 3, 6);
  Matrix c(3, 3);
  c(0, 0) = std::nan("");
  Matrix zero(3, 3);
  Matrix expect = naive_gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, zero);
  blas::gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view());
  EXPECT_LT(max_diff(c, expect), 1e-13);
}

Matrix make_triangular(int n, Uplo uplo, std::uint64_t seed) {
  Matrix a = random_matrix(n, n, seed);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const bool keep = uplo == Uplo::Upper ? i <= j : i >= j;
      if (!keep) a(i, j) = 0.0;
    }
    a(j, j) += 3.0;  // well conditioned
  }
  return a;
}

class TriParam
    : public ::testing::TestWithParam<std::tuple<Side, Uplo, Trans, Diag>> {};

TEST_P(TriParam, TrmmMatchesGemm) {
  const auto [side, uplo, trans, diag] = GetParam();
  const int n = 7;
  const int m = 5;
  Matrix a = make_triangular(side == Side::Left ? m : n, uplo, 21);
  Matrix aeff = a;
  if (diag == Diag::Unit) {
    for (int j = 0; j < aeff.cols(); ++j) aeff(j, j) = 1.0;
  }
  Matrix b = random_matrix(m, n, 22);
  Matrix expect(m, n);
  if (side == Side::Left) {
    expect = naive_gemm(trans, Trans::No, 1.3, aeff, b, 0.0, expect);
  } else {
    expect = naive_gemm(Trans::No, trans, 1.3, b, aeff, 0.0, expect);
  }
  blas::trmm(side, uplo, trans, diag, 1.3, a.view(), b.view());
  EXPECT_LT(max_diff(b, expect), 1e-12);
}

TEST_P(TriParam, TrsmInvertsTrmm) {
  const auto [side, uplo, trans, diag] = GetParam();
  const int n = 6;
  const int m = 4;
  Matrix a = make_triangular(side == Side::Left ? m : n, uplo, 31);
  Matrix b = random_matrix(m, n, 32);
  Matrix b0 = b;
  blas::trmm(side, uplo, trans, diag, 1.0, a.view(), b.view());
  blas::trsm(side, uplo, trans, diag, 1.0, a.view(), b.view());
  EXPECT_LT(max_diff(b, b0), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, TriParam,
    ::testing::Combine(::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(Uplo::Upper, Uplo::Lower),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit)));

TEST(Level2, TrsvSolves) {
  Matrix a = make_triangular(8, Uplo::Upper, 41);
  std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> b = x;
  blas::trmv(Uplo::Upper, Trans::No, Diag::NonUnit, a.view(), b.data());
  blas::trsv(Uplo::Upper, Trans::No, Diag::NonUnit, a.view(), b.data());
  for (int i = 0; i < 8; ++i) EXPECT_NEAR(b[i], x[i], 1e-12);
}

TEST(Aux, LasetAndNorms) {
  Matrix a(3, 4);
  blas::laset_all(2.0, 5.0, a.view());
  EXPECT_DOUBLE_EQ(a(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(2, 2), 5.0);
  EXPECT_DOUBLE_EQ(blas::norm_max(a.view()), 5.0);
  Matrix b(2, 2);
  b(0, 0) = 3.0;
  b(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(blas::norm_fro(b.view()), 5.0);
  b(0, 1) = -10.0;
  EXPECT_DOUBLE_EQ(blas::norm_one(b.view()), 14.0);
}

TEST(Aux, LacpyTriangles) {
  Matrix a = random_matrix(4, 4, 51);
  Matrix u(4, 4);
  Matrix l(4, 4);
  blas::lacpy(Uplo::Upper, a.view(), u.view());
  blas::lacpy(Uplo::Lower, a.view(), l.view());
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(u(i, j), i <= j ? a(i, j) : 0.0);
      EXPECT_DOUBLE_EQ(l(i, j), i >= j ? a(i, j) : 0.0);
    }
  }
}

}  // namespace
}  // namespace pulsarqr
