// Tests for the tile / (V,T) packet encodings and the result store.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "vsaqr/codec.hpp"
#include "vsaqr/result_store.hpp"

namespace pulsarqr::vsaqr {
namespace {

TEST(Codec, TileRoundTrip) {
  Matrix a(7, 5);
  fill_random(a.view(), 3);
  prt::Packet p = encode_tile(a.view(), 42);
  EXPECT_EQ(p.meta(), 42);
  MatrixView v = tile_view(p);
  EXPECT_EQ(v.rows, 7);
  EXPECT_EQ(v.cols, 5);
  for (int j = 0; j < 5; ++j) {
    for (int i = 0; i < 7; ++i) EXPECT_DOUBLE_EQ(v(i, j), a(i, j));
  }
  // The view is mutable and payload-backed.
  v(3, 2) = -9.0;
  EXPECT_DOUBLE_EQ(tile_view(p)(3, 2), -9.0);
}

TEST(Codec, TileViewOfSubmatrixKeepsShape) {
  Matrix a(9, 9);
  fill_random(a.view(), 4);
  // Encode a non-contiguous block view; the packet stores it compactly.
  prt::Packet p = encode_tile(a.block(2, 3, 4, 5), 0);
  MatrixView v = tile_view(p);
  EXPECT_EQ(v.rows, 4);
  EXPECT_EQ(v.ld, 4);
  EXPECT_DOUBLE_EQ(v(1, 2), a(3, 5));
}

TEST(Codec, VtRoundTrip) {
  Matrix vmat(6, 4);
  Matrix tmat(2, 4);
  fill_random(vmat.view(), 5);
  fill_random(tmat.view(), 6);
  prt::Packet p = encode_vt(vmat.view(), tmat.view(), 7);
  EXPECT_EQ(p.meta(), 7);
  const VtView w = vt_view(p);
  EXPECT_EQ(w.v.rows, 6);
  EXPECT_EQ(w.v.cols, 4);
  EXPECT_EQ(w.t.rows, 2);
  EXPECT_EQ(w.t.cols, 4);
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(w.v(i, j), vmat(i, j));
    for (int i = 0; i < 2; ++i) EXPECT_DOUBLE_EQ(w.t(i, j), tmat(i, j));
  }
}

TEST(Codec, ByteBudgets) {
  EXPECT_GE(tile_packet_bytes(8, 8), (2 + 64) * sizeof(double));
  // A packet for any v <= 8x8 and t <= 3x8 must fit the declared budget.
  Matrix vmat(8, 8);
  Matrix tmat(3, 8);
  prt::Packet p = encode_vt(vmat.view(), tmat.view(), 0);
  EXPECT_LE(p.size(), vt_packet_bytes(8, 8, 3));
}

TEST(ResultStore, CollectsAndFinishes) {
  const int m = 10, n = 6, nb = 3, ib = 2;
  ResultStore store(m, n, nb, ib);
  Matrix tile(nb, nb);
  Matrix t(ib, nb);
  fill_random(tile.view(), 8);
  fill_random(t.view(), 9);
  for (int j = 0; j < store.nt(); ++j) {
    for (int i = 0; i < store.mt(); ++i) {
      const int tr = i == store.mt() - 1 ? m - i * nb : nb;
      const int tc = j == store.nt() - 1 ? n - j * nb : nb;
      store.put_tile(i, j, tile.block(0, 0, tr, tc));
      store.put_tg(i, j, t.block(0, 0, ib, tc));
      store.put_tt(i, j, t.block(0, 0, ib, tc));
    }
  }
  auto factors = store.finish(
      plan::ReductionPlan(store.mt(), store.nt(),
                          {plan::TreeKind::Flat, 1,
                           plan::BoundaryMode::Shifted}),
      ib);
  EXPECT_DOUBLE_EQ(factors.a.at(0, 0), tile(0, 0));
  EXPECT_DOUBLE_EQ(factors.tg.t(1, 1)(0, 0), t(0, 0));
}

TEST(ResultStore, FinishRejectsMissingTiles) {
  ResultStore store(6, 6, 3, 2);
  Matrix tile(3, 3);
  store.put_tile(0, 0, tile.view());  // only one of four
  EXPECT_THROW(store.finish(plan::ReductionPlan(
                                2, 2, {plan::TreeKind::Flat, 1,
                                       plan::BoundaryMode::Shifted}),
                            2),
               Error);
}

}  // namespace
}  // namespace pulsarqr::vsaqr
