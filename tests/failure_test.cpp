// Failure-injection tests: internal invariants must detect misuse loudly
// (PQR_ASSERT aborts) and API misuse must throw pulsarqr::Error with an
// actionable message.
#include <gtest/gtest.h>

#include "prt/channel.hpp"
#include "prt/vsa.hpp"
#include "tile/tile_matrix.hpp"
#include "vsaqr/tree_qr.hpp"

namespace pulsarqr {
namespace {

using prt::Channel;
using prt::Packet;

using FailureDeathTest = ::testing::Test;

TEST(FailureDeathTest, OversizedPacketAborts) {
  EXPECT_DEATH(
      {
        Channel ch(16, true);
        ch.push(Packet::make(64));
      },
      "exceeds the declared maximum");
}

TEST(FailureDeathTest, PopFromEmptyChannelAborts) {
  EXPECT_DEATH(
      {
        Channel ch(16, true);
        (void)ch.pop();
      },
      "pop from empty");
}

TEST(FailureDeathTest, BadSlotInVdpFunctionAborts) {
  EXPECT_DEATH(
      {
        prt::Vsa::Config cfg;
        cfg.workers_per_node = 1;
        prt::Vsa vsa(cfg);
        vsa.add_vdp(prt::tuple2(0, 0), 1,
                    [](prt::VdpContext& ctx) { (void)ctx.pop(3); }, 1, 0);
        std::vector<Packet> init;
        init.push_back(Packet::make(8));
        vsa.feed(prt::tuple2(0, 0), 0, 8, std::move(init));
        vsa.run();
      },
      "bad input slot");
}

TEST(Failure, WatchdogMessageNamesTheStuckVdp) {
  prt::Vsa::Config cfg;
  cfg.workers_per_node = 1;
  cfg.watchdog_seconds = 0.2;
  prt::Vsa vsa(cfg);
  // Two VDPs; the second waits forever on a channel fed by a VDP that
  // never pushes.
  vsa.add_vdp(prt::tuple2(1, 1), 1, [](prt::VdpContext&) {}, 1, 0);
  vsa.add_vdp(
      prt::tuple2(1, 0), 1, [](prt::VdpContext& ctx) { (void)ctx; }, 0, 1);
  vsa.connect(prt::tuple2(1, 0), 0, prt::tuple2(1, 1), 0, 8);
  try {
    vsa.run();
    FAIL() << "expected watchdog";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("(1,1)"), std::string::npos) << what;
    EXPECT_NE(what.find("counter=1"), std::string::npos) << what;
    EXPECT_NE(what.find("VDPs still alive"), std::string::npos) << what;
  }
}

TEST(Failure, ErrorsCarryTupleNamesForWiringMistakes) {
  prt::Vsa::Config cfg;
  prt::Vsa vsa(cfg);
  vsa.add_vdp(prt::tuple2(2, 5), 1, [](prt::VdpContext&) {}, 1, 0);
  try {
    vsa.run();
    FAIL() << "expected wiring error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("(2,5)"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("unconnected input"),
              std::string::npos);
  }
}

TEST(Failure, TreeQrValidatesOptions) {
  TileMatrix a(16, 8, 4);
  vsaqr::TreeQrOptions opt;
  opt.ib = 0;
  EXPECT_THROW(vsaqr::tree_qr(a, opt), Error);
  opt.ib = 4;
  opt.tree.domain_size = 0;
  opt.tree.tree = plan::TreeKind::BinaryOnFlat;
  EXPECT_THROW(vsaqr::tree_qr(a, opt), Error);
}

TEST(Failure, VsaConfigValidated) {
  prt::Vsa::Config cfg;
  cfg.nodes = 0;
  EXPECT_THROW(prt::Vsa vsa(cfg), Error);
  cfg.nodes = 1;
  cfg.workers_per_node = 0;
  EXPECT_THROW(prt::Vsa vsa2(cfg), Error);
}

TEST(Failure, AddVdpRejectsNonPositiveCounter) {
  prt::Vsa::Config cfg;
  prt::Vsa vsa(cfg);
  EXPECT_THROW(
      vsa.add_vdp(prt::tuple2(3, 0), 0, [](prt::VdpContext&) {}, 0, 0),
      Error);
}

}  // namespace
}  // namespace pulsarqr
