// Unit tests for the trace recorder and its statistics (the measurements
// behind the Figure 7 reproduction) using synthetic event streams with
// hand-computable answers.
#include <gtest/gtest.h>

#include <sstream>

#include "prt/trace.hpp"

namespace pulsarqr::prt::trace {
namespace {

Event ev(int thread, int color, double t0, double t1) {
  return Event{thread, color, Tuple{thread, color}, t0, t1};
}

TEST(TraceStats, EmptyEventsGiveZeroes) {
  const auto s = compute_stats({}, 4, 0);
  EXPECT_EQ(s.span, 0.0);
  EXPECT_EQ(s.busy, 0.0);
  EXPECT_EQ(s.overlap_fraction, 0.0);
}

TEST(TraceStats, SpanBusyUtilization) {
  // Two threads: thread 0 busy [0,2], thread 1 busy [1,3]. Span = 3,
  // busy = 4, utilization = 4 / (3*2).
  std::vector<Event> events = {ev(0, 0, 0.0, 2.0), ev(1, 0, 1.0, 3.0)};
  const auto s = compute_stats(events, 2, 1);
  EXPECT_DOUBLE_EQ(s.span, 3.0);
  EXPECT_DOUBLE_EQ(s.busy, 4.0);
  EXPECT_DOUBLE_EQ(s.utilization, 4.0 / 6.0);
}

TEST(TraceStats, BusyByColor) {
  std::vector<Event> events = {ev(0, 0, 0.0, 1.0), ev(0, 2, 1.0, 4.0),
                               ev(1, 0, 0.0, 0.5)};
  const auto s = compute_stats(events, 2, 2);
  ASSERT_EQ(s.busy_by_color.size(), 3u);
  EXPECT_DOUBLE_EQ(s.busy_by_color[0], 1.5);
  EXPECT_DOUBLE_EQ(s.busy_by_color[1], 0.0);
  EXPECT_DOUBLE_EQ(s.busy_by_color[2], 3.0);
}

TEST(TraceStats, OverlapFractionExact) {
  // Color 2 runs [2,6]; color 0 runs [0,4]: both in flight during [2,4],
  // span [0,6] => overlap fraction = 2/6.
  std::vector<Event> events = {ev(0, 0, 0.0, 4.0), ev(1, 2, 2.0, 6.0)};
  const auto s = compute_stats(events, 2, 2);
  EXPECT_NEAR(s.overlap_fraction, 2.0 / 6.0, 1e-12);
}

TEST(TraceStats, NoOverlapWhenPhasesAreSequential) {
  std::vector<Event> events = {ev(0, 0, 0.0, 2.0), ev(0, 2, 2.0, 4.0)};
  const auto s = compute_stats(events, 1, 2);
  EXPECT_DOUBLE_EQ(s.overlap_fraction, 0.0);
}

TEST(TraceStats, OverlapNeedsBothKinds) {
  // Only overlap-color tasks: no "other" tasks in flight, so zero overlap.
  std::vector<Event> events = {ev(0, 2, 0.0, 2.0), ev(1, 2, 1.0, 3.0)};
  const auto s = compute_stats(events, 2, 2);
  EXPECT_DOUBLE_EQ(s.overlap_fraction, 0.0);
}

TEST(PipelineDepth, SerializedStagesGiveOne) {
  // Stage windows [0,1], [1,2], [2,3]: total 3 over span 3 -> depth 1.
  std::vector<Event> events;
  for (int k = 0; k < 3; ++k) {
    events.push_back({0, 0, Tuple{0, k}, static_cast<double>(k), k + 1.0});
  }
  EXPECT_NEAR(pipeline_depth(events), 1.0, 1e-12);
}

TEST(PipelineDepth, FullyOverlappedStages) {
  // Three stages all spanning [0,1]: total 3 over span 1 -> depth 3.
  std::vector<Event> events;
  for (int k = 0; k < 3; ++k) {
    events.push_back({0, 0, Tuple{0, k}, 0.0, 1.0});
  }
  EXPECT_NEAR(pipeline_depth(events), 3.0, 1e-12);
}

TEST(PipelineDepth, UsesTheRequestedTupleElement) {
  // Key at index 0: two stages, half overlapped.
  std::vector<Event> events = {{0, 0, Tuple{7}, 0.0, 2.0},
                               {0, 0, Tuple{8}, 1.0, 3.0}};
  EXPECT_NEAR(pipeline_depth(events, 0), 4.0 / 3.0, 1e-12);
  // Default key index 1 does not exist on these tuples -> no stages.
  EXPECT_DOUBLE_EQ(pipeline_depth(events, 1), 0.0);
}

TEST(PipelineDepth, MultipleEventsPerStageMergeIntoOneWindow) {
  std::vector<Event> events = {{0, 0, Tuple{0, 5}, 0.0, 0.5},
                               {1, 1, Tuple{1, 5}, 1.5, 2.0},
                               {0, 2, Tuple{2, 6}, 0.0, 2.0}};
  // Stage 5 window [0,2], stage 6 window [0,2]: depth 2.
  EXPECT_NEAR(pipeline_depth(events), 2.0, 1e-12);
}

TEST(PipelineDepth, EmptyGivesZero) {
  EXPECT_DOUBLE_EQ(pipeline_depth({}), 0.0);
}

TEST(Recorder, CollectsSortedByStart) {
  Recorder rec(2, true);
  rec.record(1, 0, Tuple{1}, 2.0, 3.0);
  rec.record(0, 1, Tuple{0}, 1.0, 2.0);
  rec.record(0, 0, Tuple{2}, 0.5, 0.6);
  const auto events = rec.collect();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events[0].t0, 0.5);
  EXPECT_DOUBLE_EQ(events[1].t0, 1.0);
  EXPECT_DOUBLE_EQ(events[2].t0, 2.0);
}

TEST(Recorder, DisabledRecordsNothing) {
  Recorder rec(1, false);
  rec.record(0, 0, Tuple{1}, 0.0, 1.0);
  EXPECT_TRUE(rec.collect().empty());
}

TEST(TraceOutput, CsvFormat) {
  std::ostringstream os;
  write_csv(os, {ev(0, 1, 0.25, 0.5)});
  const std::string out = os.str();
  EXPECT_NE(out.find("thread,color,tuple,t0,t1"), std::string::npos);
  EXPECT_NE(out.find("0,1,\"(0,1)\",0.25,0.5"), std::string::npos);
}

TEST(TraceOutput, AsciiGanttMarksBusyCells) {
  std::ostringstream os;
  write_ascii_gantt(os, {ev(0, 0, 0.0, 1.0), ev(1, 2, 0.5, 1.0)}, 2, 10,
                    {"f", "u", "b"});
  const std::string out = os.str();
  // Thread 0 busy the whole span with color 0 ('F'), thread 1 idle then
  // color 2 ('B').
  EXPECT_NE(out.find("FFFFFFFFFF"), std::string::npos);
  EXPECT_NE(out.find(".....BBBBB"), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(TraceOutput, GanttHandlesEmpty) {
  std::ostringstream os;
  write_ascii_gantt(os, {}, 2, 10, {});
  EXPECT_TRUE(os.str().empty());
}

}  // namespace
}  // namespace pulsarqr::prt::trace
