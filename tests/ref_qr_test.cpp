// End-to-end correctness of the sequential tree QR executor across all
// tree configurations: R validity, Q orthogonality, A = QR reconstruction,
// agreement with the dense LAPACK-style QR, and the least-squares driver.
#include <gtest/gtest.h>

#include <cmath>

#include "blas/blas.hpp"
#include "common/rng.hpp"
#include "lapack/qr.hpp"
#include "lapack/solve.hpp"
#include "ref/apply_q.hpp"
#include "ref/reference_qr.hpp"

namespace pulsarqr {
namespace {

using blas::Trans;
using plan::BoundaryMode;
using plan::PlanConfig;
using plan::TreeKind;

struct Case {
  int m, n, nb, ib;
  PlanConfig cfg;
};

std::string tree_name(TreeKind t) {
  switch (t) {
    case TreeKind::Flat: return "Flat";
    case TreeKind::Binary: return "Binary";
    case TreeKind::BinaryOnFlat: return "BinaryOnFlat";
  }
  return "?";
}

class TreeQrParam : public ::testing::TestWithParam<Case> {};

TEST_P(TreeQrParam, FactorizationIsValidQR) {
  const Case& c = GetParam();
  Matrix a0(c.m, c.n);
  fill_random(a0.view(), 1000 + c.m + c.n);
  TileMatrix a = TileMatrix::from_dense(a0.view(), c.nb);
  auto f = ref::tree_qr(std::move(a), c.ib, c.cfg);

  // R upper triangular with the right values: Q R == A.
  Matrix q = ref::form_q(f, c.m);
  // Q orthogonal.
  Matrix g(c.m, c.m);
  blas::gemm(Trans::Yes, Trans::No, 1.0, q.view(), q.view(), 0.0, g.view());
  for (int j = 0; j < c.m; ++j) g(j, j) -= 1.0;
  EXPECT_LT(blas::norm_max(g.view()), 1e-12 * c.m)
      << tree_name(c.cfg.tree);

  Matrix r = ref::extract_r(f);
  Matrix qr(c.m, c.n);
  blas::gemm(Trans::No, Trans::No, 1.0, q.block(0, 0, c.m, c.n), r.view(),
             0.0, qr.view());
  double err = 0.0;
  for (int j = 0; j < c.n; ++j) {
    for (int i = 0; i < c.m; ++i) {
      err = std::fmax(err, std::fabs(qr(i, j) - a0(i, j)));
    }
  }
  EXPECT_LT(err / (1.0 + blas::norm_max(a0.view())), 1e-12 * c.m)
      << tree_name(c.cfg.tree);
}

TEST_P(TreeQrParam, RMatchesDenseQrUpToColumnSigns) {
  const Case& c = GetParam();
  Matrix a0(c.m, c.n);
  fill_random(a0.view(), 2000 + c.m * 31 + c.n);
  TileMatrix a = TileMatrix::from_dense(a0.view(), c.nb);
  auto f = ref::tree_qr(std::move(a), c.ib, c.cfg);
  Matrix r_tree = ref::extract_r(f);

  Matrix adense = a0;
  std::vector<double> tau(c.n);
  lapack::geqrf(adense.view(), tau.data());
  // |R| must agree row-wise up to sign: compare absolute values.
  for (int j = 0; j < c.n; ++j) {
    for (int i = 0; i <= j; ++i) {
      EXPECT_NEAR(std::fabs(r_tree(i, j)), std::fabs(adense(i, j)),
                  1e-10 * (1.0 + std::fabs(adense(i, j))))
          << "at (" << i << "," << j << ") tree=" << tree_name(c.cfg.tree);
    }
  }
}

TEST_P(TreeQrParam, ApplyQTransposeGivesR) {
  const Case& c = GetParam();
  Matrix a0(c.m, c.n);
  fill_random(a0.view(), 3000 + c.m + 7 * c.n);
  TileMatrix a = TileMatrix::from_dense(a0.view(), c.nb);
  auto f = ref::tree_qr(std::move(a), c.ib, c.cfg);
  // Q^T A must equal [R; 0].
  TileMatrix b = TileMatrix::from_dense(a0.view(), c.nb);
  ref::apply_q(Trans::Yes, f, b);
  Matrix qta = b.to_dense();
  Matrix r = ref::extract_r(f);
  for (int j = 0; j < c.n; ++j) {
    for (int i = 0; i < c.m; ++i) {
      const double expect = i <= j && i < c.n ? r(i, j) : 0.0;
      EXPECT_NEAR(qta(i, j), expect, 1e-10 * (1.0 + c.m));
    }
  }
}

TEST_P(TreeQrParam, LeastSquaresMatchesDense) {
  const Case& c = GetParam();
  if (c.m < c.n) GTEST_SKIP();
  Matrix a0(c.m, c.n);
  fill_random_well_conditioned(a0.view(), 4000 + c.m + c.n);
  Rng rng(99);
  std::vector<double> b(c.m);
  for (auto& v : b) v = rng.next_symmetric();

  TileMatrix a = TileMatrix::from_dense(a0.view(), c.nb);
  auto f = ref::tree_qr(std::move(a), c.ib, c.cfg);
  const auto x_tree = ref::least_squares(f, b);

  Matrix adense = a0;
  const auto x_dense = lapack::least_squares(adense.view(), b);
  for (int i = 0; i < c.n; ++i) {
    EXPECT_NEAR(x_tree[i], x_dense[i], 1e-9 * (1.0 + std::fabs(x_dense[i])));
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const std::vector<std::pair<TreeKind, int>> trees = {
      {TreeKind::Flat, 1},        {TreeKind::Binary, 1},
      {TreeKind::BinaryOnFlat, 2}, {TreeKind::BinaryOnFlat, 3}};
  for (auto bm : {BoundaryMode::Fixed, BoundaryMode::Shifted}) {
    for (const auto& [tree, h] : trees) {
      // Tall-skinny, exact tiles.
      cases.push_back({40, 10, 5, 2, {tree, h, bm}});
      // Ragged rows and columns.
      cases.push_back({33, 9, 5, 3, {tree, h, bm}});
      // Square.
      cases.push_back({20, 20, 5, 5, {tree, h, bm}});
      // Single tile column.
      cases.push_back({25, 4, 4, 2, {tree, h, bm}});
    }
  }
  // Extreme shapes (independent of boundary mode, run once).
  cases.push_back({7, 3, 3, 1, {TreeKind::BinaryOnFlat, 2, BoundaryMode::Shifted}});
  cases.push_back({3, 3, 3, 3, {TreeKind::Flat, 1, BoundaryMode::Shifted}});
  cases.push_back({64, 8, 8, 4, {TreeKind::Binary, 1, BoundaryMode::Shifted}});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreeQrParam, ::testing::ValuesIn(all_cases()));

TEST(TreeQr, RejectsBadIb) {
  TileMatrix a(8, 4, 4);
  EXPECT_THROW(ref::tree_qr(std::move(a), 0,
                            PlanConfig{TreeKind::Flat, 1,
                                       BoundaryMode::Shifted}),
               Error);
}

}  // namespace
}  // namespace pulsarqr
