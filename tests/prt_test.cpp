// Unit tests for the PRT primitives: tuples, packets, channels and the
// loopback message-passing transport.
#include <gtest/gtest.h>

#include <thread>

#include "prt/channel.hpp"
#include "prt/packet.hpp"
#include "prt/transport.hpp"
#include "prt/tuple.hpp"

namespace pulsarqr::prt {
namespace {

TEST(Tuple, EqualityAndHash) {
  Tuple a{1, 2, 3};
  Tuple b = tuple3(1, 2, 3);
  Tuple c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_LT(a, c);
  EXPECT_EQ(a.to_string(), "(1,2,3)");
  EXPECT_EQ(Tuple{}.to_string(), "()");
}

TEST(Tuple, DifferentLengthsDiffer) {
  EXPECT_NE(tuple2(1, 2), tuple3(1, 2, 0));
  EXPECT_NE(Tuple{0}, Tuple{});
}

TEST(Packet, SharesBufferOnCopy) {
  Packet p = Packet::make(8 * sizeof(double), 7);
  p.doubles()[3] = 42.0;
  Packet alias = p;  // zero-copy aliasing
  alias.doubles()[3] = 43.0;
  EXPECT_DOUBLE_EQ(p.doubles()[3], 43.0);
  EXPECT_EQ(alias.meta(), 7);
}

TEST(Packet, CloneIsIndependent) {
  Packet p = Packet::make(4 * sizeof(double), 1);
  p.doubles()[0] = 1.5;
  Packet c = p.clone();
  c.doubles()[0] = 2.5;
  EXPECT_DOUBLE_EQ(p.doubles()[0], 1.5);
  EXPECT_EQ(c.meta(), 1);
  EXPECT_EQ(c.size(), p.size());
}

TEST(Packet, EmptyByDefault) {
  Packet p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
}

class ChannelImplParam : public ::testing::TestWithParam<ChannelImpl> {};

INSTANTIATE_TEST_SUITE_P(Impls, ChannelImplParam,
                         ::testing::Values(ChannelImpl::Spsc,
                                           ChannelImpl::Mutex),
                         [](const auto& info) {
                           return info.param == ChannelImpl::Spsc ? "Spsc"
                                                                  : "Mutex";
                         });

TEST_P(ChannelImplParam, FifoOrder) {
  Channel ch(64, true, GetParam());
  for (int i = 0; i < 5; ++i) {
    ch.push(Packet::make(8, i));
  }
  EXPECT_EQ(ch.size(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ch.pop().meta(), i);
  }
  EXPECT_EQ(ch.size(), 0);
}

// The SPSC regime proper: a producer thread streams sequence-numbered
// packets while the consumer pops concurrently; order must be exact and
// no packet lost. (TSan covers the memory-ordering claims.)
TEST_P(ChannelImplParam, CrossThreadStrictFifo) {
  const int packets = 20000;
  Channel ch(8, true, GetParam());
  std::thread producer([&] {
    for (int i = 0; i < packets; ++i) ch.push(Packet::make(8, i));
  });
  for (int i = 0; i < packets; ++i) {
    while (ch.size() == 0) std::this_thread::yield();
    ASSERT_EQ(ch.pop().meta(), i);
  }
  producer.join();
  EXPECT_EQ(ch.size(), 0);
}

// Regression for the destroy-vs-push race: push used to check destroyed_
// BEFORE the synchronization guarding the queue, so a racing producer
// could re-enqueue a packet after destroy() cleared the queue,
// resurrecting data on a destroyed channel. Hammered here so TSan sees
// the interleavings; after destroy() + producer exit the channel must be
// empty no matter how the race resolved.
TEST_P(ChannelImplParam, DestroyVsPushRace) {
  const int rounds = 300;
  for (int round = 0; round < rounds; ++round) {
    Channel ch(8, true, GetParam());
    std::atomic<bool> start{false};
    std::thread producer([&] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < 64; ++i) ch.push(Packet::make(8, i));
    });
    start.store(true, std::memory_order_release);
    // Destroy somewhere inside the producer's stream.
    while (ch.size() == 0 && !ch.destroyed()) std::this_thread::yield();
    ch.destroy();
    producer.join();
    ASSERT_TRUE(ch.destroyed());
    ASSERT_FALSE(ch.enabled());
    ASSERT_EQ(ch.size(), 0) << "packet resurrected on a destroyed channel "
                               "(round "
                            << round << ")";
    ch.push(Packet::make(8, 99));  // late push: still dropped
    ASSERT_EQ(ch.size(), 0);
  }
}

TEST(Channel, EnableDisable) {
  Channel ch(64, false);
  EXPECT_FALSE(ch.enabled());
  ch.set_enabled(true);
  EXPECT_TRUE(ch.enabled());
}

TEST(Channel, DestroyDropsPacketsAndFutureOnes) {
  Channel ch(64, true);
  ch.push(Packet::make(8));
  ch.destroy();
  EXPECT_EQ(ch.size(), 0);
  ch.push(Packet::make(8));
  EXPECT_EQ(ch.size(), 0);
  EXPECT_TRUE(ch.destroyed());
}

struct TestWaker : Waker {
  std::atomic<int> wakes{0};
  void wake() override { ++wakes; }
};

TEST(Channel, PushWakesOwner) {
  Channel ch(64, true);
  TestWaker w;
  ch.set_waker(&w);
  ch.push(Packet::make(8));
  EXPECT_EQ(w.wakes.load(), 1);
  ch.set_enabled(true);  // enabling also wakes
  EXPECT_EQ(w.wakes.load(), 2);
}

TEST(Comm, DeliversWithDeepCopy) {
  net::MailboxComm comm(2);
  Packet p = Packet::make(2 * sizeof(double), 9);
  p.doubles()[0] = 3.25;
  comm.isend(0, 1, 5, p, p.meta());
  p.doubles()[0] = -1.0;  // mutating after send must not affect the message
  auto m = comm.try_recv(1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->source, 0);
  EXPECT_EQ(m->tag, 5);
  EXPECT_EQ(m->meta, 9);
  EXPECT_DOUBLE_EQ(m->payload.doubles()[0], 3.25);
  EXPECT_EQ(net::Comm::get_count(*m), 2 * sizeof(double));
  EXPECT_FALSE(comm.try_recv(1).has_value());
  EXPECT_FALSE(comm.try_recv(0).has_value());
}

TEST(Comm, FifoPerSenderAndCounts) {
  net::MailboxComm comm(2);
  for (int i = 0; i < 10; ++i) comm.isend(0, 1, i, Packet::make(8), i);
  for (int i = 0; i < 10; ++i) {
    auto m = comm.try_recv(1);
    ASSERT_TRUE(m);
    EXPECT_EQ(m->tag, i);
  }
  EXPECT_EQ(comm.messages_sent(), 10);
  EXPECT_EQ(comm.bytes_sent(), 80);
}

TEST(Comm, DrainTakesEverythingInOrder) {
  net::MailboxComm comm(2);
  for (int i = 0; i < 6; ++i) comm.isend(0, 1, i, Packet::make(8), i);
  auto batch = comm.drain(1);
  ASSERT_EQ(batch.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(batch[static_cast<std::size_t>(i)].tag, i);
    EXPECT_EQ(batch[static_cast<std::size_t>(i)].meta, i);
  }
  EXPECT_TRUE(comm.drain(1).empty());
  EXPECT_FALSE(comm.try_recv(1).has_value());
}

TEST(Comm, RecvWaitTimesOutAndWakes) {
  net::MailboxComm comm(1);
  const auto t0 = std::chrono::steady_clock::now();
  auto m = comm.recv_wait(0, 2000);
  EXPECT_FALSE(m.has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::microseconds(1000));
  // A sender unblocks a waiting receiver.
  std::thread t([&] { comm.isend(0, 0, 1, Packet::make(8), 0); });
  auto m2 = comm.recv_wait(0, 1000000);
  EXPECT_TRUE(m2.has_value());
  t.join();
}

TEST(Comm, BarrierSynchronizesRanks) {
  net::MailboxComm comm(3);
  std::atomic<int> before{0};
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      (void)r;
      ++before;
      comm.barrier();
      if (before.load() != 3) ok = false;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
}

TEST(Comm, CancelDropsQueued) {
  net::MailboxComm comm(2);
  comm.isend(0, 1, 0, Packet::make(8), 0);
  comm.cancel(1);
  EXPECT_FALSE(comm.try_recv(1).has_value());
}

// interrupt() is latched: delivered while nobody waits, it makes the NEXT
// recv_wait return immediately instead of being lost, and repeated
// interrupts collapse into one latch (idempotent across re-shutdowns).
TEST(Comm, InterruptIsLatchedAndIdempotent) {
  net::MailboxComm comm(1);
  comm.interrupt(0);
  comm.interrupt(0);
  comm.interrupt(0);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(comm.recv_wait(0, 5'000'000).has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(500));  // returned on the latch
  // The latch was consumed: the next wait times out normally.
  const auto t1 = std::chrono::steady_clock::now();
  EXPECT_FALSE(comm.recv_wait(0, 20'000).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t1,
            std::chrono::microseconds(10'000));
  // A latch pending alongside a queued message must not eat the message.
  comm.isend(0, 0, 1, Packet::make(8), 7);
  comm.interrupt(0);
  auto m = comm.recv_wait(0, 1'000'000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->meta, 7);
}

// Regression stress for barrier generation reuse: a rank re-entering the
// barrier immediately must never release (or be counted into) the
// previous generation. The two-barrier pattern makes the count exact: all
// ranks contribute before barrier #1 releases, and none may contribute to
// the next round until barrier #2 releases. Run under TSan in CI.
TEST(Comm, BarrierImmediateReentryStress) {
  const int ranks = 4;
  const int iters = 2000;
  net::MailboxComm comm(ranks);
  std::atomic<long long> count{0};
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        count.fetch_add(1, std::memory_order_relaxed);
        comm.barrier();
        if (count.load(std::memory_order_relaxed) !=
            static_cast<long long>(ranks) * (i + 1)) {
          ok.store(false);
        }
        comm.barrier();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(count.load(), static_cast<long long>(ranks) * iters);
}

// The channels' lifetime counters feed the stuck-VDP diagnostics.
// ---- reserved tag space -----------------------------------------------------

TEST(Tags, RegistryClassifiesReservedValues) {
  static_assert(net::is_reserved_tag(net::kPureAckTag));
  static_assert(net::is_reserved_tag(net::kAggregateTag));
  static_assert(!net::is_reserved_tag(net::kFirstUserTag));
  static_assert(!net::is_reserved_tag(7));
  EXPECT_STREQ(net::reserved_tag_name(net::kPureAckTag),
               "reliable-protocol pure ack");
  EXPECT_STREQ(net::reserved_tag_name(net::kAggregateTag),
               "coalesced aggregate");
  EXPECT_EQ(net::reserved_tag_name(0), nullptr);
  EXPECT_EQ(net::reserved_tag_name(-3), nullptr);
}

TEST(Tags, IsendRejectsReservedAndNegativeTags) {
  net::MailboxComm comm(2);
  const Packet p = Packet::make(8);
  // A data frame aliasing the pure-ack tag would vanish into the peer's
  // protocol endpoint instead of reaching a channel.
  try {
    comm.isend(0, 1, net::kPureAckTag, p, 0);
    FAIL() << "isend accepted the pure-ack tag for data";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("reserved"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("pure ack"), std::string::npos)
        << e.what();
  }
  // Any other negative value is a latent aliasing hazard: rejected too.
  try {
    comm.isend(0, 1, -7, p, 0);
    FAIL() << "isend accepted an arbitrary negative tag";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("negative"), std::string::npos)
        << e.what();
  }
  // Nothing leaked into the mailbox from the rejected sends.
  EXPECT_FALSE(comm.try_recv(1).has_value());
}

TEST(Tags, IsendAcceptsTheReservedTagsOnlyForTheirOwners) {
  net::MailboxComm comm(2);
  const Packet p = Packet::make(8);
  // Aggregates are proxy traffic, pure acks are protocol traffic; both
  // remain sendable through their designated code paths.
  EXPECT_NO_THROW(comm.isend(0, 1, net::kAggregateTag, p, 1));
  EXPECT_NO_THROW(
      comm.isend(0, 1, net::kPureAckTag, Packet(), 0, -1, 3, true));
  // An "ack" with a data tag is a protocol bug, not an application one.
  EXPECT_THROW(comm.isend(0, 1, 4, Packet(), 0, -1, 3, true), Error);
}

TEST(Tags, ReliableSendAndStagerRejectReservedTags) {
  net::MailboxComm comm(2);
  net::Reliable rel(comm, 0, {});
  const Packet p = Packet::make(8);
  EXPECT_THROW(rel.send(1, net::kPureAckTag, p, 0), Error);
  EXPECT_THROW(rel.send(1, -9, p, 0), Error);
  net::FrameStager stager(256);
  EXPECT_THROW(stager.add(net::kAggregateTag, 0, p), Error);  // no nesting
  EXPECT_THROW(stager.add(net::kPureAckTag, 0, p), Error);
  EXPECT_NO_THROW(stager.add(0, 0, p));
}

TEST_P(ChannelImplParam, PushedPoppedCounters) {
  Channel ch(64, true, GetParam());
  EXPECT_EQ(ch.pushed(), 0);
  EXPECT_EQ(ch.popped(), 0);
  for (int i = 0; i < 4; ++i) ch.push(Packet::make(8, i));
  (void)ch.pop();
  EXPECT_EQ(ch.pushed(), 4);
  EXPECT_EQ(ch.popped(), 1);
  ch.destroy();  // drops the queued packets: they count as consumed
  EXPECT_EQ(ch.pushed(), 4);
  EXPECT_EQ(ch.popped(), 4);
}

}  // namespace
}  // namespace pulsarqr::prt
