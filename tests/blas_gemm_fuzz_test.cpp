// Randomized equivalence testing of the packed, cache-blocked gemm against
// the reference implementation: all four Trans combinations, shapes that
// straddle every blocking boundary (0, 1, odd, multiples of and beyond
// MR/NR/MC/KC/NC), non-tight leading dimensions, and the alpha/beta special
// cases. The packed path accumulates in a different order than the
// reference, so comparisons use a tolerance scaled by the reduction depth.
//
// With the explicit SIMD micro-kernels the packed path dispatches through
// blas::simd; the IsaCrossCheck tests pin each compiled-and-supported ISA
// in turn and re-run the equivalence sweep, so every kernel flavor (scalar,
// AVX2, AVX-512, NEON — whatever this binary and host have) is checked
// against the plain-loop scalar reference, in double and float. The tile
// kernel leg does the same for the tsqrt/tsmqr/ttqrt/ttmqr stacked cores,
// whose triangular fringes use the dot_cols/ger_cols fused kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <utility>
#include <vector>

#include "blas/blas.hpp"
#include "blas/simd.hpp"
#include "common/rng.hpp"
#include "kernels/tile_kernels.hpp"
#include "kernels/workspace.hpp"

namespace pulsarqr {
namespace {

using blas::Trans;

// Blocking parameters of the packed implementation (gemm_packed.cpp);
// shapes below are chosen to land on and beyond these boundaries.
constexpr int kMC = 128;
constexpr int kKC = 256;
constexpr int kNC = 512;

struct Case {
  int m, n, k;
  int lda_pad, ldb_pad, ldc_pad;
  Trans ta, tb;
  double alpha, beta;
};

// Build op-shaped operand: a is stored so that op(a) is m-by-k.
Matrix make_operand(Trans t, int m, int k, int ld_pad, std::uint64_t seed) {
  const int rows = t == Trans::No ? m : k;
  const int cols = t == Trans::No ? k : m;
  Matrix a(rows + ld_pad, std::max(cols, 1));
  fill_random(a.view(), seed);
  return a;
}

ConstMatrixView operand_view(const Matrix& a, Trans t, int m, int k) {
  const int rows = t == Trans::No ? m : k;
  const int cols = t == Trans::No ? k : m;
  return ConstMatrixView(a.data(), rows, cols, a.rows());
}

double tol_for(int k) { return 1e-13 * (k + 4); }

void run_case(const Case& cs) {
  SCOPED_TRACE(::testing::Message()
               << "m=" << cs.m << " n=" << cs.n << " k=" << cs.k
               << " ta=" << (cs.ta == Trans::No ? "N" : "T")
               << " tb=" << (cs.tb == Trans::No ? "N" : "T")
               << " alpha=" << cs.alpha << " beta=" << cs.beta
               << " pads=" << cs.lda_pad << "," << cs.ldb_pad << ","
               << cs.ldc_pad);
  std::uint64_t seed = 0x9e3779b97f4a7c15ull ^
                       (static_cast<std::uint64_t>(cs.m) << 40) ^
                       (static_cast<std::uint64_t>(cs.n) << 20) ^
                       static_cast<std::uint64_t>(cs.k);
  Matrix a = make_operand(cs.ta, cs.m, cs.k, cs.lda_pad, seed + 1);
  Matrix b = make_operand(cs.tb, cs.k, cs.n, cs.ldb_pad, seed + 2);
  Matrix c0(cs.m + cs.ldc_pad, std::max(cs.n, 1));
  fill_random(c0.view(), seed + 3);

  Matrix c_ref = c0;
  Matrix c_packed = c0;
  ConstMatrixView av = operand_view(a, cs.ta, cs.m, cs.k);
  ConstMatrixView bv = operand_view(b, cs.tb, cs.k, cs.n);
  MatrixView cr(c_ref.data(), cs.m, cs.n, c_ref.rows());
  MatrixView cp(c_packed.data(), cs.m, cs.n, c_packed.rows());
  blas::gemm_ref(cs.ta, cs.tb, cs.alpha, av, bv, cs.beta, cr);
  blas::gemm_packed(cs.ta, cs.tb, cs.alpha, av, bv, cs.beta, cp);

  const double tol = tol_for(cs.k);
  for (int j = 0; j < cs.n; ++j) {
    for (int i = 0; i < cs.m; ++i) {
      const double scale = std::fmax(1.0, std::fabs(cr(i, j)));
      ASSERT_NEAR(cr(i, j), cp(i, j), tol * scale)
          << "mismatch at (" << i << ", " << j << ")";
    }
  }
  // Rows below the view (padding) must be untouched by both paths.
  for (int j = 0; j < c0.cols(); ++j) {
    for (int i = cs.m; i < c0.rows(); ++i) {
      ASSERT_EQ(c0(i, j), c_packed(i, j)) << "padding clobbered";
    }
  }
}

TEST(GemmFuzz, BlockingBoundaries) {
  const int ms[] = {0, 1, 3, 7, 8, 9, 17, kMC, kMC + 5};
  const int ns[] = {0, 1, 3, 4, 5, 13, kNC / 8, kNC / 4 + 3};
  const int ks[] = {0, 1, 2, 9, 31, kKC, kKC + 7};
  const Trans ts[] = {Trans::No, Trans::Yes};
  int idx = 0;
  for (int m : ms) {
    for (int n : ns) {
      for (int k : ks) {
        // Rotate through the Trans combinations and scalars so the full
        // product of cases stays fast while every (ta, tb) pair still sees
        // every boundary class.
        const Trans ta = ts[idx % 2];
        const Trans tb = ts[(idx / 2) % 2];
        const double alpha = (idx % 3 == 0) ? 0.0 : 1.25;
        const double beta = (idx % 5 == 0) ? 0.0 : ((idx % 5 == 1) ? 1.0 : -0.5);
        run_case({m, n, k, idx % 3, (idx + 1) % 3, (idx + 2) % 4, ta, tb,
                  alpha, beta});
        ++idx;
      }
    }
  }
}

TEST(GemmFuzz, RandomizedShapes) {
  std::mt19937_64 rng(2026);
  std::uniform_int_distribution<int> dm(0, kMC + 40);
  std::uniform_int_distribution<int> dn(0, 96);
  std::uniform_int_distribution<int> dk(0, kKC + 40);
  std::uniform_int_distribution<int> dt(0, 1);
  std::uniform_int_distribution<int> dpad(0, 5);
  std::uniform_real_distribution<double> dscal(-2.0, 2.0);
  for (int it = 0; it < 60; ++it) {
    run_case({dm(rng), dn(rng), dk(rng), dpad(rng), dpad(rng), dpad(rng),
              dt(rng) ? Trans::Yes : Trans::No,
              dt(rng) ? Trans::Yes : Trans::No, dscal(rng), dscal(rng)});
  }
}

// One shape past NC so the jc loop takes more than one trip.
TEST(GemmFuzz, WideN) {
  run_case({33, kNC + 9, 21, 1, 0, 2, Trans::No, Trans::Yes, 1.0, 1.0});
  run_case({9, kNC + 9, 40, 0, 1, 0, Trans::Yes, Trans::No, -1.0, 0.0});
}

// ---- Per-ISA cross-checks -------------------------------------------------

using blas::simd::Isa;

std::vector<Isa> supported_isas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::Scalar, Isa::Neon, Isa::Avx2, Isa::Avx512}) {
    if (blas::simd::isa_supported(isa)) out.push_back(isa);
  }
  return out;
}

// Save/restore the process-wide ISA selection around a test.
struct IsaGuard {
  Isa prev = blas::simd::active_isa();
  ~IsaGuard() { blas::simd::set_isa(prev); }
};

TEST(GemmFuzz, EveryIsaMatchesScalarReference) {
  IsaGuard guard;
  // Shapes straddle every micro-tile boundary in use (MR up to 32 for
  // AVX-512 floats, NR up to 6 for AVX2) plus odd fringes; alpha/beta
  // rotate through the special cases 0, 1 and a general value.
  const int ms[] = {1, 5, 8, 16, 17, 31, 33};
  const int ns[] = {1, 3, 4, 6, 7, 13};
  const int ks[] = {1, 2, 17, 64};
  const Trans ts[] = {Trans::No, Trans::Yes};
  const double alphas[] = {0.0, 1.0, -0.75};
  const double betas[] = {0.0, 1.0, -0.5};
  for (Isa isa : supported_isas()) {
    SCOPED_TRACE(blas::simd::isa_name(isa));
    ASSERT_TRUE(blas::simd::set_isa(isa));
    int idx = 0;
    for (int m : ms) {
      for (int n : ns) {
        for (int k : ks) {
          run_case({m, n, k, idx % 3, (idx + 1) % 3, (idx + 2) % 4,
                    ts[idx % 2], ts[(idx / 2) % 2], alphas[idx % 3],
                    betas[idx % 5 % 3]});
          ++idx;
        }
      }
    }
  }
}

// Single-precision equivalence: same structure as the double tests, float
// tolerance scaled by the reduction depth.
void fill_random_f(MatrixViewF a, std::uint64_t seed) {
  Rng rng(seed);
  for (int j = 0; j < a.cols; ++j) {
    for (int i = 0; i < a.rows; ++i) {
      a(i, j) = static_cast<float>(rng.next_symmetric());
    }
  }
}

void run_case_f(int m, int n, int k, Trans ta, Trans tb, float alpha,
                float beta, int pad) {
  SCOPED_TRACE(::testing::Message()
               << "f32 m=" << m << " n=" << n << " k=" << k
               << " ta=" << (ta == Trans::No ? "N" : "T")
               << " tb=" << (tb == Trans::No ? "N" : "T") << " alpha=" << alpha
               << " beta=" << beta);
  const std::uint64_t seed = 0xd1b54a32d192ed03ull ^
                             (static_cast<std::uint64_t>(m) << 40) ^
                             (static_cast<std::uint64_t>(n) << 20) ^
                             static_cast<std::uint64_t>(k);
  MatrixF a(ta == Trans::No ? m + pad : k, std::max(ta == Trans::No ? k : m, 1));
  MatrixF b(tb == Trans::No ? k : n + pad, std::max(tb == Trans::No ? n : k, 1));
  fill_random_f(a.view(), seed + 1);
  fill_random_f(b.view(), seed + 2);
  MatrixF c0(m, std::max(n, 1));
  fill_random_f(c0.view(), seed + 3);

  MatrixF c_ref = c0;
  MatrixF c_packed = c0;
  ConstMatrixViewF av(a.data(), ta == Trans::No ? m : k,
                      ta == Trans::No ? k : m, a.rows());
  ConstMatrixViewF bv(b.data(), tb == Trans::No ? k : n,
                      tb == Trans::No ? n : k, b.rows());
  blas::gemm_ref(ta, tb, alpha, av, bv, beta,
                 MatrixViewF(c_ref.data(), m, n, c_ref.rows()));
  blas::gemm_packed(ta, tb, alpha, av, bv, beta,
                    MatrixViewF(c_packed.data(), m, n, c_packed.rows()));

  const float tol = 2e-6f * static_cast<float>(k + 8);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      const float scale = std::fmax(1.0f, std::fabs(c_ref(i, j)));
      ASSERT_NEAR(c_ref(i, j), c_packed(i, j), tol * scale)
          << "mismatch at (" << i << ", " << j << ")";
    }
  }
}

TEST(GemmFuzzF32, EveryIsaMatchesScalarReference) {
  IsaGuard guard;
  const int ms[] = {1, 7, 16, 32, 33, 47};
  const int ns[] = {1, 4, 6, 11};
  const int ks[] = {1, 9, 64};
  const Trans ts[] = {Trans::No, Trans::Yes};
  const float alphas[] = {0.0f, 1.0f, -0.75f};
  const float betas[] = {0.0f, 1.0f, -0.5f};
  for (Isa isa : supported_isas()) {
    SCOPED_TRACE(blas::simd::isa_name(isa));
    ASSERT_TRUE(blas::simd::set_isa(isa));
    int idx = 0;
    for (int m : ms) {
      for (int n : ns) {
        for (int k : ks) {
          run_case_f(m, n, k, ts[idx % 2], ts[(idx / 2) % 2], alphas[idx % 3],
                     betas[(idx / 3) % 3], idx % 3);
          ++idx;
        }
      }
    }
  }
}

// ---- Tile-kernel ISA cross-check ------------------------------------------
//
// Runs the four stacked kernels (the TT pair exercises the triangular
// fringe dot_cols/ger_cols sweeps) under each ISA and compares against the
// scalar run. Odd nb/ib make the fringes as deep and ragged as possible.
template <class T>
std::vector<T> run_stacked_kernels(int nb, int ib, std::uint64_t seed) {
  kernels::Workspace ws;
  MatrixT<T> a1(nb, nb), a2(nb, nb), t(ib, nb), c1(nb, nb), c2(nb, nb);
  MatrixT<T> a3(nb, nb), t3(ib, nb), c3(nb, nb);
  Rng rng(seed);
  for (MatrixT<T>* m : {&a1, &a2, &c1, &c2, &a3, &c3}) {
    for (int j = 0; j < m->cols(); ++j) {
      for (int i = 0; i < m->rows(); ++i) {
        (*m)(i, j) = static_cast<T>(rng.next_symmetric());
      }
    }
  }
  // Make A1 upper triangular (R-tile contract of the stacked kernels).
  for (int j = 0; j < nb; ++j) {
    for (int i = j + 1; i < nb; ++i) a1(i, j) = T(0);
  }
  kernels::tsqrt(a1.view(), a2.view(), ib, t.view(), ws);
  kernels::tsmqr(blas::Trans::Yes, a2.view(), t.view(), ib, c1.view(),
                 c2.view(), ws);
  kernels::ttqrt(a1.view(), a3.view(), ib, t3.view(), ws);
  kernels::ttmqr(blas::Trans::Yes, a3.view(), t3.view(), ib, c1.view(),
                 c3.view(), ws);
  std::vector<T> out;
  for (const MatrixT<T>* m : {&a1, &a2, &t, &c1, &c2, &a3, &t3, &c3}) {
    out.insert(out.end(), m->data(), m->data() + m->rows() * m->cols());
  }
  return out;
}

template <class T>
void stacked_isa_cross_check(T tol) {
  IsaGuard guard;
  const std::pair<int, int> shapes[] = {{40, 8}, {37, 7}, {24, 5}};
  for (const auto& shape : shapes) {
    const int nb = shape.first;
    const int ib = shape.second;
    ASSERT_TRUE(blas::simd::set_isa(Isa::Scalar));
    const std::vector<T> ref = run_stacked_kernels<T>(nb, ib, 97);
    for (Isa isa : supported_isas()) {
      if (isa == Isa::Scalar) continue;
      SCOPED_TRACE(::testing::Message() << blas::simd::isa_name(isa)
                                        << " nb=" << nb << " ib=" << ib);
      ASSERT_TRUE(blas::simd::set_isa(isa));
      const std::vector<T> got = run_stacked_kernels<T>(nb, ib, 97);
      ASSERT_EQ(ref.size(), got.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        const T scale = std::fmax(T(1), std::fabs(ref[i]));
        ASSERT_NEAR(ref[i], got[i], tol * scale) << "element " << i;
      }
    }
  }
}

TEST(TileKernelIsaFuzz, StackedKernelsMatchScalarF64) {
  stacked_isa_cross_check<double>(1e-10);
}

TEST(TileKernelIsaFuzz, StackedKernelsMatchScalarF32) {
  stacked_isa_cross_check<float>(5e-4f);
}

// ---- Sub-micro-tile small-GEMM tier ---------------------------------------
//
// The direct (non-packing) small tier handles every shape below the
// work <= 64*MR*NR threshold; sweep all m, n in 1..16 with odd leading
// dimensions and every Trans pair, under every compiled-and-supported ISA,
// both through the public dispatcher (blas::gemm) and the gemm_small entry
// point itself.
TEST(GemmSmall, SubMicroTileShapesEveryIsa) {
  IsaGuard guard;
  const Trans ts[] = {Trans::No, Trans::Yes};
  const double alphas[] = {1.0, -0.75, 0.0};
  const double betas[] = {0.0, 1.0, -0.5};
  for (Isa isa : supported_isas()) {
    SCOPED_TRACE(blas::simd::isa_name(isa));
    ASSERT_TRUE(blas::simd::set_isa(isa));
    int idx = 0;
    for (int m = 1; m <= 16; ++m) {
      for (int n = 1; n <= 16; ++n) {
        const int k = 1 + (idx % 16);
        const Trans ta = ts[idx % 2];
        const Trans tb = ts[(idx / 2) % 2];
        const Case cs{m,
                      n,
                      k,
                      1 + idx % 2 * 2,  // odd ld padding on a
                      3 - idx % 2 * 2,  // and on b
                      idx % 5,
                      ta,
                      tb,
                      alphas[idx % 3],
                      betas[(idx / 3) % 3]};
        run_case(cs);
        // Same shape straight through gemm_small (the dispatcher may route
        // some of these to the packed path if the threshold moves).
        std::uint64_t seed = 0xc0ffee ^ (static_cast<std::uint64_t>(idx) << 8);
        Matrix a = make_operand(ta, m, k, cs.lda_pad, seed + 1);
        Matrix b = make_operand(tb, k, n, cs.ldb_pad, seed + 2);
        Matrix c0(m + cs.ldc_pad, n);
        fill_random(c0.view(), seed + 3);
        Matrix c_ref = c0;
        Matrix c_small = c0;
        ConstMatrixView av = operand_view(a, ta, m, k);
        ConstMatrixView bv = operand_view(b, tb, k, n);
        blas::gemm_ref(ta, tb, cs.alpha, av, bv, cs.beta,
                       MatrixView(c_ref.data(), m, n, c_ref.rows()));
        blas::gemm_small(ta, tb, cs.alpha, av, bv, cs.beta,
                         MatrixView(c_small.data(), m, n, c_small.rows()));
        const double tol = tol_for(k);
        for (int j = 0; j < n; ++j) {
          for (int i = 0; i < m; ++i) {
            const double scale = std::fmax(1.0, std::fabs(c_ref(i, j)));
            ASSERT_NEAR(c_ref(i, j), c_small(i, j), tol * scale)
                << "gemm_small mismatch at (" << i << ", " << j << ") m=" << m
                << " n=" << n << " k=" << k;
          }
        }
        ++idx;
      }
    }
  }
}

TEST(GemmSmallF32, SubMicroTileShapesEveryIsa) {
  IsaGuard guard;
  const Trans ts[] = {Trans::No, Trans::Yes};
  for (Isa isa : supported_isas()) {
    SCOPED_TRACE(blas::simd::isa_name(isa));
    ASSERT_TRUE(blas::simd::set_isa(isa));
    int idx = 0;
    for (int m = 1; m <= 16; m += 3) {
      for (int n = 1; n <= 16; n += 3) {
        for (int k : {1, 5, 16}) {
          const Trans ta = ts[idx % 2];
          const Trans tb = ts[(idx / 2) % 2];
          const std::uint64_t seed = 0xf32f32 + idx;
          MatrixF a(ta == Trans::No ? m + 1 : k + 1, std::max(ta == Trans::No ? k : m, 1));
          MatrixF b(tb == Trans::No ? k + 3 : n + 3, std::max(tb == Trans::No ? n : k, 1));
          fill_random_f(a.view(), seed + 1);
          fill_random_f(b.view(), seed + 2);
          MatrixF c0(m, n);
          fill_random_f(c0.view(), seed + 3);
          MatrixF c_ref = c0;
          MatrixF c_small = c0;
          ConstMatrixViewF av(a.data(), ta == Trans::No ? m : k,
                              ta == Trans::No ? k : m, a.rows());
          ConstMatrixViewF bv(b.data(), tb == Trans::No ? k : n,
                              tb == Trans::No ? n : k, b.rows());
          blas::gemm_ref(ta, tb, 1.25f, av, bv, -0.5f,
                         MatrixViewF(c_ref.data(), m, n, c_ref.rows()));
          blas::gemm_small(ta, tb, 1.25f, av, bv, -0.5f,
                           MatrixViewF(c_small.data(), m, n, c_small.rows()));
          const float tol = 2e-6f * static_cast<float>(k + 8);
          for (int j = 0; j < n; ++j) {
            for (int i = 0; i < m; ++i) {
              const float scale = std::fmax(1.0f, std::fabs(c_ref(i, j)));
              ASSERT_NEAR(c_ref(i, j), c_small(i, j), tol * scale)
                  << "f32 gemm_small mismatch at (" << i << ", " << j
                  << ") m=" << m << " n=" << n << " k=" << k;
            }
          }
          ++idx;
        }
      }
    }
  }
}

TEST(GemmSmall, ThresholdDerivesFromActiveTable) {
  IsaGuard guard;
  for (Isa isa : supported_isas()) {
    SCOPED_TRACE(blas::simd::isa_name(isa));
    ASSERT_TRUE(blas::simd::set_isa(isa));
    const auto& kt64 = blas::simd::kernels<double>();
    const auto& kt32 = blas::simd::kernels<float>();
    EXPECT_EQ(blas::gemm_small_max_work_f64(), 64LL * kt64.mr * kt64.nr);
    EXPECT_EQ(blas::gemm_small_max_work_f32(), 64LL * kt32.mr * kt32.nr);
  }
}

TEST(GemmFuzz, DispatcherKnob) {
  // The knob must route through the selected implementation; both agree
  // numerically, so just check the setting round-trips and gemm still works.
  const blas::GemmImpl prev = blas::gemm_impl();
  blas::set_gemm_impl(blas::GemmImpl::Ref);
  EXPECT_EQ(blas::gemm_impl(), blas::GemmImpl::Ref);
  run_case({40, 40, 40, 0, 0, 0, Trans::No, Trans::No, 1.0, 1.0});
  blas::set_gemm_impl(blas::GemmImpl::Packed);
  EXPECT_EQ(blas::gemm_impl(), blas::GemmImpl::Packed);
  blas::set_gemm_impl(prev);
}

}  // namespace
}  // namespace pulsarqr
