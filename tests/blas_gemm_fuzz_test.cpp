// Randomized equivalence testing of the packed, cache-blocked gemm against
// the reference implementation: all four Trans combinations, shapes that
// straddle every blocking boundary (0, 1, odd, multiples of and beyond
// MR/NR/MC/KC/NC), non-tight leading dimensions, and the alpha/beta special
// cases. The packed path accumulates in a different order than the
// reference, so comparisons use a tolerance scaled by the reduction depth.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "blas/blas.hpp"
#include "common/rng.hpp"

namespace pulsarqr {
namespace {

using blas::Trans;

// Blocking parameters of the packed implementation (gemm_packed.cpp);
// shapes below are chosen to land on and beyond these boundaries.
constexpr int kMC = 128;
constexpr int kKC = 256;
constexpr int kNC = 512;

struct Case {
  int m, n, k;
  int lda_pad, ldb_pad, ldc_pad;
  Trans ta, tb;
  double alpha, beta;
};

// Build op-shaped operand: a is stored so that op(a) is m-by-k.
Matrix make_operand(Trans t, int m, int k, int ld_pad, std::uint64_t seed) {
  const int rows = t == Trans::No ? m : k;
  const int cols = t == Trans::No ? k : m;
  Matrix a(rows + ld_pad, std::max(cols, 1));
  fill_random(a.view(), seed);
  return a;
}

ConstMatrixView operand_view(const Matrix& a, Trans t, int m, int k) {
  const int rows = t == Trans::No ? m : k;
  const int cols = t == Trans::No ? k : m;
  return ConstMatrixView(a.data(), rows, cols, a.rows());
}

double tol_for(int k) { return 1e-13 * (k + 4); }

void run_case(const Case& cs) {
  SCOPED_TRACE(::testing::Message()
               << "m=" << cs.m << " n=" << cs.n << " k=" << cs.k
               << " ta=" << (cs.ta == Trans::No ? "N" : "T")
               << " tb=" << (cs.tb == Trans::No ? "N" : "T")
               << " alpha=" << cs.alpha << " beta=" << cs.beta
               << " pads=" << cs.lda_pad << "," << cs.ldb_pad << ","
               << cs.ldc_pad);
  std::uint64_t seed = 0x9e3779b97f4a7c15ull ^
                       (static_cast<std::uint64_t>(cs.m) << 40) ^
                       (static_cast<std::uint64_t>(cs.n) << 20) ^
                       static_cast<std::uint64_t>(cs.k);
  Matrix a = make_operand(cs.ta, cs.m, cs.k, cs.lda_pad, seed + 1);
  Matrix b = make_operand(cs.tb, cs.k, cs.n, cs.ldb_pad, seed + 2);
  Matrix c0(cs.m + cs.ldc_pad, std::max(cs.n, 1));
  fill_random(c0.view(), seed + 3);

  Matrix c_ref = c0;
  Matrix c_packed = c0;
  ConstMatrixView av = operand_view(a, cs.ta, cs.m, cs.k);
  ConstMatrixView bv = operand_view(b, cs.tb, cs.k, cs.n);
  MatrixView cr(c_ref.data(), cs.m, cs.n, c_ref.rows());
  MatrixView cp(c_packed.data(), cs.m, cs.n, c_packed.rows());
  blas::gemm_ref(cs.ta, cs.tb, cs.alpha, av, bv, cs.beta, cr);
  blas::gemm_packed(cs.ta, cs.tb, cs.alpha, av, bv, cs.beta, cp);

  const double tol = tol_for(cs.k);
  for (int j = 0; j < cs.n; ++j) {
    for (int i = 0; i < cs.m; ++i) {
      const double scale = std::fmax(1.0, std::fabs(cr(i, j)));
      ASSERT_NEAR(cr(i, j), cp(i, j), tol * scale)
          << "mismatch at (" << i << ", " << j << ")";
    }
  }
  // Rows below the view (padding) must be untouched by both paths.
  for (int j = 0; j < c0.cols(); ++j) {
    for (int i = cs.m; i < c0.rows(); ++i) {
      ASSERT_EQ(c0(i, j), c_packed(i, j)) << "padding clobbered";
    }
  }
}

TEST(GemmFuzz, BlockingBoundaries) {
  const int ms[] = {0, 1, 3, 7, 8, 9, 17, kMC, kMC + 5};
  const int ns[] = {0, 1, 3, 4, 5, 13, kNC / 8, kNC / 4 + 3};
  const int ks[] = {0, 1, 2, 9, 31, kKC, kKC + 7};
  const Trans ts[] = {Trans::No, Trans::Yes};
  int idx = 0;
  for (int m : ms) {
    for (int n : ns) {
      for (int k : ks) {
        // Rotate through the Trans combinations and scalars so the full
        // product of cases stays fast while every (ta, tb) pair still sees
        // every boundary class.
        const Trans ta = ts[idx % 2];
        const Trans tb = ts[(idx / 2) % 2];
        const double alpha = (idx % 3 == 0) ? 0.0 : 1.25;
        const double beta = (idx % 5 == 0) ? 0.0 : ((idx % 5 == 1) ? 1.0 : -0.5);
        run_case({m, n, k, idx % 3, (idx + 1) % 3, (idx + 2) % 4, ta, tb,
                  alpha, beta});
        ++idx;
      }
    }
  }
}

TEST(GemmFuzz, RandomizedShapes) {
  std::mt19937_64 rng(2026);
  std::uniform_int_distribution<int> dm(0, kMC + 40);
  std::uniform_int_distribution<int> dn(0, 96);
  std::uniform_int_distribution<int> dk(0, kKC + 40);
  std::uniform_int_distribution<int> dt(0, 1);
  std::uniform_int_distribution<int> dpad(0, 5);
  std::uniform_real_distribution<double> dscal(-2.0, 2.0);
  for (int it = 0; it < 60; ++it) {
    run_case({dm(rng), dn(rng), dk(rng), dpad(rng), dpad(rng), dpad(rng),
              dt(rng) ? Trans::Yes : Trans::No,
              dt(rng) ? Trans::Yes : Trans::No, dscal(rng), dscal(rng)});
  }
}

// One shape past NC so the jc loop takes more than one trip.
TEST(GemmFuzz, WideN) {
  run_case({33, kNC + 9, 21, 1, 0, 2, Trans::No, Trans::Yes, 1.0, 1.0});
  run_case({9, kNC + 9, 40, 0, 1, 0, Trans::Yes, Trans::No, -1.0, 0.0});
}

TEST(GemmFuzz, DispatcherKnob) {
  // The knob must route through the selected implementation; both agree
  // numerically, so just check the setting round-trips and gemm still works.
  const blas::GemmImpl prev = blas::gemm_impl();
  blas::set_gemm_impl(blas::GemmImpl::Ref);
  EXPECT_EQ(blas::gemm_impl(), blas::GemmImpl::Ref);
  run_case({40, 40, 40, 0, 0, 0, Trans::No, Trans::No, 1.0, 1.0});
  blas::set_gemm_impl(blas::GemmImpl::Packed);
  EXPECT_EQ(blas::gemm_impl(), blas::GemmImpl::Packed);
  blas::set_gemm_impl(prev);
}

}  // namespace
}  // namespace pulsarqr
