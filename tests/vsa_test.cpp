// Behavioural tests of the VSA execution engine: firing rules, counters,
// feeds, by-pass forwarding, dynamic channel enable/disable, multi-node
// execution through the proxy, schedulers, mappings, and failure modes.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "prt/vsa.hpp"

namespace pulsarqr::prt {
namespace {

/// Shared result collector for tests.
struct Collector {
  std::mutex mu;
  std::vector<double> values;
  std::vector<int> metas;
  void add(double v, int meta) {
    std::lock_guard<std::mutex> lock(mu);
    values.push_back(v);
    metas.push_back(meta);
  }
};

Packet scalar_packet(double v, int meta = 0) {
  Packet p = Packet::make(sizeof(double), meta);
  p.doubles()[0] = v;
  return p;
}

Vsa::Config cfg(int nodes, int workers, Scheduling s = Scheduling::Lazy) {
  Vsa::Config c;
  c.nodes = nodes;
  c.workers_per_node = workers;
  c.scheduling = s;
  c.watchdog_seconds = 5.0;
  return c;
}

// A chain of VDPs, each adding 1 to every value that streams through.
// Exercises feeds, per-firing pops/pushes and the sink via globals.
void build_increment_chain(Vsa& vsa, int length, int packets) {
  for (int i = 0; i < length; ++i) {
    const bool last = i == length - 1;
    vsa.add_vdp(
        tuple2(0, i), packets,
        [last](VdpContext& ctx) {
          Packet p = ctx.pop(0);
          p.doubles()[0] += 1.0;
          if (last) {
            ctx.global<Collector>().add(p.doubles()[0], p.meta());
          } else {
            ctx.push(0, std::move(p));
          }
        },
        1, last ? 0 : 1);
  }
  std::vector<Packet> initial;
  for (int k = 0; k < packets; ++k) initial.push_back(scalar_packet(k, k));
  vsa.feed(tuple2(0, 0), 0, sizeof(double), std::move(initial));
  for (int i = 0; i + 1 < length; ++i) {
    vsa.connect(tuple2(0, i), 0, tuple2(0, i + 1), 0, sizeof(double));
  }
}

TEST(VsaPipeline, SingleNodeSingleWorker) {
  Vsa vsa(cfg(1, 1));
  auto collector = std::make_shared<Collector>();
  vsa.set_global(collector);
  build_increment_chain(vsa, 5, 8);
  auto stats = vsa.run();
  ASSERT_EQ(collector->values.size(), 8u);
  for (int k = 0; k < 8; ++k) {
    EXPECT_DOUBLE_EQ(collector->values[k], k + 5.0);  // order preserved: FIFO
    EXPECT_EQ(collector->metas[k], k);
  }
  EXPECT_EQ(stats.fires, 5 * 8);
  EXPECT_EQ(stats.leftover_packets, 0);
  EXPECT_EQ(stats.remote_messages, 0);
}

TEST(VsaPipeline, MultiWorker) {
  Vsa vsa(cfg(1, 4));
  auto collector = std::make_shared<Collector>();
  vsa.set_global(collector);
  build_increment_chain(vsa, 7, 16);
  auto stats = vsa.run();
  ASSERT_EQ(collector->values.size(), 16u);
  for (int k = 0; k < 16; ++k) EXPECT_DOUBLE_EQ(collector->values[k], k + 7.0);
  EXPECT_EQ(stats.fires, 7 * 16);
}

TEST(VsaPipeline, MultiNodeGoesThroughProxy) {
  Vsa vsa(cfg(3, 2));
  auto collector = std::make_shared<Collector>();
  vsa.set_global(collector);
  build_increment_chain(vsa, 6, 10);
  // Spread the chain across nodes explicitly: VDP i on thread i % 6.
  for (int i = 0; i < 6; ++i) vsa.map_vdp(tuple2(0, i), i);
  auto stats = vsa.run();
  ASSERT_EQ(collector->values.size(), 10u);
  for (int k = 0; k < 10; ++k) {
    EXPECT_DOUBLE_EQ(collector->values[k], k + 6.0);
    EXPECT_EQ(collector->metas[k], k);  // FIFO preserved across the proxy
  }
  // 5 of the 6 hops cross node boundaries (threads 0,1 on node 0, etc.):
  // hops 1->2, 3->4, 5->... : thread i -> i+1 crosses when i is odd.
  EXPECT_GT(stats.remote_messages, 0);
  EXPECT_EQ(stats.leftover_packets, 0);
}

TEST(VsaPipeline, AggressiveSchedulingSameResult) {
  Vsa vsa(cfg(1, 2, Scheduling::Aggressive));
  auto collector = std::make_shared<Collector>();
  vsa.set_global(collector);
  build_increment_chain(vsa, 4, 12);
  vsa.run();
  ASSERT_EQ(collector->values.size(), 12u);
  for (int k = 0; k < 12; ++k) EXPECT_DOUBLE_EQ(collector->values[k], k + 4.0);
}

TEST(Vsa, SourceVdpWithZeroInputsFiresCounterTimes) {
  Vsa vsa(cfg(1, 2));
  auto collector = std::make_shared<Collector>();
  vsa.set_global(collector);
  vsa.add_vdp(
      tuple2(1, 0), 5,
      [](VdpContext& ctx) {
        ctx.push(0, scalar_packet(ctx.counter()));  // 5,4,3,2,1
      },
      0, 1);
  vsa.add_vdp(
      tuple2(1, 1), 5,
      [](VdpContext& ctx) {
        ctx.global<Collector>().add(ctx.pop(0).doubles()[0], 0);
      },
      1, 0);
  vsa.connect(tuple2(1, 0), 0, tuple2(1, 1), 0, sizeof(double));
  auto stats = vsa.run();
  EXPECT_EQ(stats.fires, 10);
  ASSERT_EQ(collector->values.size(), 5u);
  EXPECT_DOUBLE_EQ(collector->values.front(), 5.0);
  EXPECT_DOUBLE_EQ(collector->values.back(), 1.0);
}

TEST(Vsa, LocalStatePersistsAcrossFirings) {
  Vsa vsa(cfg(1, 1));
  auto collector = std::make_shared<Collector>();
  vsa.set_global(collector);
  vsa.add_vdp(
      tuple2(2, 0), 4,
      [](VdpContext& ctx) {
        auto& sum = ctx.local<double>(0.0);
        sum += ctx.pop(0).doubles()[0];
        if (ctx.counter() == 1) ctx.global<Collector>().add(sum, 0);
      },
      1, 0);
  std::vector<Packet> init;
  for (double v : {1.0, 2.0, 3.0, 4.0}) init.push_back(scalar_packet(v));
  vsa.feed(tuple2(2, 0), 0, sizeof(double), std::move(init));
  vsa.run();
  ASSERT_EQ(collector->values.size(), 1u);
  EXPECT_DOUBLE_EQ(collector->values[0], 10.0);
}

// The by-pass pattern: a VDP forwards a packet before using it; the
// downstream consumer sees the same buffer (intra-node zero-copy).
TEST(Vsa, BypassForwardsBeforeProcessing) {
  Vsa vsa(cfg(1, 2));
  auto collector = std::make_shared<Collector>();
  vsa.set_global(collector);
  vsa.add_vdp(
      tuple2(3, 0), 1,
      [](VdpContext& ctx) {
        Packet p = ctx.pop(0);
        ctx.push(0, p);  // forward first (aliased)
        p.doubles()[0] *= 10.0;
        ctx.global<Collector>().add(p.doubles()[0], 1);
      },
      1, 1);
  vsa.add_vdp(
      tuple2(3, 1), 1,
      [](VdpContext& ctx) {
        // The downstream VDP fires once the packet arrives; with one worker
        // per VDP, this can run concurrently with the upstream mutation —
        // here we only check the buffer was shared at some point, so make
        // the upstream finish first by running on a single thread below.
        ctx.global<Collector>().add(ctx.pop(0).doubles()[0], 2);
      },
      1, 0);
  vsa.connect(tuple2(3, 0), 0, tuple2(3, 1), 0, sizeof(double));
  vsa.feed(tuple2(3, 0), 0, sizeof(double), [] {
    std::vector<Packet> v;
    v.push_back(scalar_packet(7.0));
    return v;
  }());
  vsa.map_vdp(tuple2(3, 0), 0);
  vsa.map_vdp(tuple2(3, 1), 0);  // same thread: upstream firing completes first
  vsa.run();
  ASSERT_EQ(collector->values.size(), 2u);
  EXPECT_DOUBLE_EQ(collector->values[0], 70.0);
  EXPECT_DOUBLE_EQ(collector->values[1], 70.0);  // saw the aliased mutation
}

// Dynamic channel control: a VDP with a disabled second input fires on the
// first alone; enabling the second mid-run gates the final firing. This is
// the paper's flat/binary overlap mechanism in miniature.
TEST(Vsa, EnableInputMidRun) {
  Vsa vsa(cfg(1, 2));
  auto collector = std::make_shared<Collector>();
  vsa.set_global(collector);
  // Producer pushes 3 packets on slot 0 path and 1 late packet on slot 1.
  vsa.add_vdp(
      tuple2(4, 0), 4,
      [](VdpContext& ctx) {
        (void)ctx.pop(0);
        if (ctx.counter() > 1) {
          ctx.push(0, scalar_packet(ctx.counter()));
        } else {
          ctx.push(1, scalar_packet(100.0));
        }
      },
      1, 2);
  vsa.add_vdp(
      tuple2(4, 1), 4,
      [](VdpContext& ctx) {
        auto& state = ctx.local<int>(0);
        if (state < 3) {
          Packet p = ctx.pop(0);
          ctx.global<Collector>().add(p.doubles()[0], 0);
          if (++state == 3) {
            // All solid-channel packets consumed: switch to the dashed one.
            ctx.disable_input(0);
            ctx.enable_input(1);
          }
        } else {
          ctx.global<Collector>().add(ctx.pop(1).doubles()[0], 1);
        }
      },
      2, 0);
  std::vector<Packet> ticks;
  for (int i = 0; i < 4; ++i) ticks.push_back(scalar_packet(0));
  vsa.feed(tuple2(4, 0), 0, sizeof(double), std::move(ticks));
  vsa.connect(tuple2(4, 0), 0, tuple2(4, 1), 0, sizeof(double));
  vsa.connect(tuple2(4, 0), 1, tuple2(4, 1), 1, sizeof(double),
              /*enabled=*/false);
  auto stats = vsa.run();
  ASSERT_EQ(collector->values.size(), 4u);
  EXPECT_DOUBLE_EQ(collector->values[3], 100.0);
  EXPECT_EQ(collector->metas[3], 1);
  EXPECT_EQ(stats.leftover_packets, 0);
}

// A VDP can destroy one of its input channels at runtime (the paper's
// channel-destroy option): queued and future packets on it are dropped
// and the slot leaves the firing rule.
TEST(Vsa, DestroyInputMidRun) {
  Vsa vsa(cfg(1, 2));
  auto collector = std::make_shared<Collector>();
  vsa.set_global(collector);
  // Producer sends on both outputs every firing; the consumer destroys
  // its second input after the first firing and keeps consuming slot 0.
  vsa.add_vdp(
      tuple2(10, 0), 3,
      [](VdpContext& ctx) {
        (void)ctx.pop(0);
        ctx.push(0, scalar_packet(1.0));
        ctx.push(1, scalar_packet(2.0));
      },
      1, 2);
  vsa.add_vdp(
      tuple2(10, 1), 3,
      [](VdpContext& ctx) {
        auto& fired = ctx.local<int>(0);
        double sum = ctx.pop(0).doubles()[0];
        if (fired == 0) {
          sum += ctx.pop(1).doubles()[0];
          ctx.destroy_input(1);
        }
        ++fired;
        ctx.global<Collector>().add(sum, fired);
      },
      2, 0);
  std::vector<Packet> ticks;
  for (int i = 0; i < 3; ++i) ticks.push_back(scalar_packet(0));
  vsa.feed(tuple2(10, 0), 0, sizeof(double), std::move(ticks));
  vsa.connect(tuple2(10, 0), 0, tuple2(10, 1), 0, sizeof(double));
  vsa.connect(tuple2(10, 0), 1, tuple2(10, 1), 1, sizeof(double));
  auto stats = vsa.run();
  ASSERT_EQ(collector->values.size(), 3u);
  EXPECT_DOUBLE_EQ(collector->values[0], 3.0);  // consumed both
  EXPECT_DOUBLE_EQ(collector->values[1], 1.0);  // slot 1 destroyed
  EXPECT_DOUBLE_EQ(collector->values[2], 1.0);
  // Packets pushed into the destroyed channel were dropped, not leaked.
  EXPECT_EQ(stats.leftover_packets, 0);
}

TEST(Vsa, WatchdogDetectsDeadlock) {
  Vsa::Config c = cfg(1, 1);
  c.watchdog_seconds = 0.3;
  // GraphCheck would flag the starvation statically; bypass it so the
  // runtime watchdog path itself stays covered.
  c.graph_check = false;
  Vsa vsa(c);
  // A VDP waiting on a channel that never receives anything.
  vsa.add_vdp(tuple2(5, 0), 1, [](VdpContext&) {}, 1, 0);
  vsa.feed(tuple2(5, 0), 0, 8, {});  // empty feed: never ready
  try {
    vsa.run();
    FAIL() << "expected watchdog error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("(5,0)"), std::string::npos);
  }
}

// Regression: the watchdog used to measure progress by the *completed*
// fire count only, so one firing outliving watchdog_seconds aborted a
// healthy run (large-nb dgeqrt/dtsmqr). In-flight firings now count as
// progress via the per-worker heartbeat epoch.
TEST(Vsa, WatchdogToleratesOneLongFiring) {
  Vsa::Config c = cfg(1, 2);
  c.watchdog_seconds = 0.2;
  Vsa vsa(c);
  auto collector = std::make_shared<Collector>();
  vsa.set_global(collector);
  // A deliberately slow VDP: one firing sleeps for 3x the watchdog.
  vsa.add_vdp(tuple2(20, 0), 1,
              [](VdpContext& ctx) {
                std::this_thread::sleep_for(std::chrono::milliseconds(600));
                ctx.global<Collector>().add(1.0, 0);
              },
              0, 0);
  auto stats = vsa.run();  // must complete, not throw the watchdog error
  EXPECT_EQ(stats.fires, 1);
  EXPECT_EQ(collector->values.size(), 1u);
}

// The legacy mutex channels and the park-immediately wakeup path stay
// exercised through the Config knobs.
TEST(VsaPipeline, MutexChannelsAndImmediatePark) {
  Vsa::Config c = cfg(2, 2);
  c.channel_impl = ChannelImpl::Mutex;
  c.spin_us = 0;
  Vsa vsa(c);
  auto collector = std::make_shared<Collector>();
  vsa.set_global(collector);
  build_increment_chain(vsa, 6, 12);
  auto stats = vsa.run();
  ASSERT_EQ(collector->values.size(), 12u);
  for (int k = 0; k < 12; ++k) {
    EXPECT_DOUBLE_EQ(collector->values[k], k + 6.0);
  }
  EXPECT_EQ(stats.fires, 6 * 12);
  EXPECT_EQ(stats.leftover_packets, 0);
}

TEST(Vsa, RejectsBadWiring) {
  {
    Vsa vsa(cfg(1, 1));
    vsa.add_vdp(tuple2(6, 0), 1, [](VdpContext&) {}, 1, 0);
    EXPECT_THROW(vsa.run(), Error);  // unconnected input
  }
  {
    Vsa vsa(cfg(1, 1));
    vsa.add_vdp(tuple2(6, 1), 1, [](VdpContext&) {}, 0, 1);
    EXPECT_THROW(vsa.run(), Error);  // unconnected output
  }
  {
    Vsa vsa(cfg(1, 1));
    vsa.add_vdp(tuple2(6, 2), 1, [](VdpContext&) {}, 0, 0);
    EXPECT_THROW(vsa.connect(tuple2(6, 2), 0, tuple2(9, 9), 0, 8);
                 vsa.run(), Error);  // unknown destination
  }
  {
    Vsa vsa(cfg(1, 1));
    vsa.add_vdp(tuple2(6, 3), 1, [](VdpContext&) {}, 0, 0);
    EXPECT_THROW(vsa.add_vdp(tuple2(6, 3), 1, [](VdpContext&) {}, 0, 0),
                 Error);  // duplicate tuple
  }
  {
    Vsa vsa(cfg(1, 2));
    vsa.add_vdp(tuple2(6, 4), 1, [](VdpContext&) {}, 0, 0);
    vsa.map_vdp(tuple2(6, 4), 99);  // out-of-range thread
    EXPECT_THROW(vsa.run(), Error);
  }
}

TEST(Vsa, DefaultMappingFunction) {
  Vsa vsa(cfg(1, 3));
  auto collector = std::make_shared<Collector>();
  vsa.set_global(collector);
  build_increment_chain(vsa, 6, 4);
  vsa.set_default_mapping([](const Tuple& t) { return t[1] % 3; });
  vsa.run();
  EXPECT_EQ(collector->values.size(), 4u);
}

TEST(Vsa, TraceRecordsFirings) {
  Vsa::Config c = cfg(1, 2);
  c.trace = true;
  Vsa vsa(c);
  auto collector = std::make_shared<Collector>();
  vsa.set_global(collector);
  build_increment_chain(vsa, 3, 5);
  vsa.run();
  const auto events = vsa.recorder().collect();
  EXPECT_EQ(events.size(), 15u);
  for (const auto& e : events) {
    EXPECT_GE(e.t1, e.t0);
    EXPECT_GE(e.thread, 0);
    EXPECT_LT(e.thread, 2);
  }
  const auto stats = trace::compute_stats(events, 2, 0);
  EXPECT_GT(stats.span, 0.0);
  EXPECT_GT(stats.busy, 0.0);
}

TEST(Vsa, CannotRunTwice) {
  Vsa vsa(cfg(1, 1));
  vsa.add_vdp(tuple2(7, 0), 1, [](VdpContext&) {}, 0, 0);
  vsa.run();
  EXPECT_THROW(vsa.run(), Error);
}

// Stress: a diamond join — two producer streams merging into one consumer
// that requires a packet on both inputs per firing (the canonical
// "fire when all active inputs are nonempty" rule).
TEST(Vsa, JoinFiringRule) {
  for (int nodes : {1, 2}) {
    Vsa vsa(cfg(nodes, 2));
    auto collector = std::make_shared<Collector>();
    vsa.set_global(collector);
    const int n = 20;
    for (int side = 0; side < 2; ++side) {
      vsa.add_vdp(
          tuple2(8, side), n,
          [side](VdpContext& ctx) {
            ctx.push(0, scalar_packet(side == 0 ? ctx.counter() : 1000.0));
          },
          0, 1);
    }
    vsa.add_vdp(
        tuple2(8, 2), n,
        [](VdpContext& ctx) {
          const double a = ctx.pop(0).doubles()[0];
          const double b = ctx.pop(1).doubles()[0];
          ctx.global<Collector>().add(a + b, 0);
        },
        2, 0);
    vsa.connect(tuple2(8, 0), 0, tuple2(8, 2), 0, sizeof(double));
    vsa.connect(tuple2(8, 1), 0, tuple2(8, 2), 1, sizeof(double));
    auto stats = vsa.run();
    ASSERT_EQ(collector->values.size(), static_cast<std::size_t>(n));
    double sum = std::accumulate(collector->values.begin(),
                                 collector->values.end(), 0.0);
    // sum of (counter + 1000) = sum(1..n) + 1000n
    EXPECT_DOUBLE_EQ(sum, n * (n + 1) / 2.0 + 1000.0 * n);
    EXPECT_EQ(stats.leftover_packets, 0);
  }
}

}  // namespace
}  // namespace pulsarqr::prt
