// prt::GraphCheck: every diagnostic kind on a deliberately broken graph,
// plus no-diagnostic passes over the real QR / Cholesky / LU plans across
// tree shapes, domain sizes (including h = 1 and h = infinity), boundary
// modes, node counts and panel-limited factorizations.
#include <gtest/gtest.h>

#include <string>

#include "chol/vsa_chol.hpp"
#include "lu/vsa_lu.hpp"
#include "prt/graph_check.hpp"
#include "prt/vsa.hpp"
#include "vsaqr/tree_qr.hpp"

namespace pulsarqr::prt {
namespace {

Vsa::Config quiet_cfg() {
  Vsa::Config c;
  c.nodes = 1;
  c.workers_per_node = 1;
  c.watchdog_seconds = 5.0;
  return c;
}

VdpFn nop() {
  return [](VdpContext&) {};
}

Packet bytes_packet(std::size_t bytes, int meta = 0) {
  return Packet::make(bytes, meta);
}

/// The single finding of a report that is expected to have exactly one
/// (copied out: the report is usually a temporary).
Diagnostic only(const GraphReport& rep) {
  EXPECT_EQ(rep.diagnostics.size(), 1u) << rep.to_string();
  return rep.diagnostics.at(0);
}

TEST(GraphCheck, CleanGraphHasNoDiagnostics) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(0, 0), 3,
              [](VdpContext& ctx) { ctx.push(0, ctx.pop(0)); }, 1, 1);
  vsa.add_vdp(tuple2(0, 1), 3, [](VdpContext& ctx) { ctx.pop(0); }, 1, 0);
  vsa.connect(tuple2(0, 0), 0, tuple2(0, 1), 0, 64);
  vsa.feed(tuple2(0, 0), 0, 64,
           {bytes_packet(8), bytes_packet(8), bytes_packet(8)});
  const GraphReport rep = GraphCheck::check(vsa);
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(rep.diagnostics.empty()) << rep.to_string();
}

TEST(GraphCheck, DanglingOutput) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(1, 0), 2, nop(), 0, 1);
  const Diagnostic& d = only(GraphCheck::check(vsa));
  EXPECT_EQ(d.kind, CheckKind::DanglingOutput);
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_EQ(d.vdp, tuple2(1, 0));
  EXPECT_EQ(d.slot, 0);
}

TEST(GraphCheck, UnfedInput) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(2, 0), 2, nop(), 0, 1);
  vsa.add_vdp(tuple2(2, 1), 2, nop(), 2, 0);  // slot 1 never wired
  vsa.connect(tuple2(2, 0), 0, tuple2(2, 1), 0, 64);
  const Diagnostic& d = only(GraphCheck::check(vsa));
  EXPECT_EQ(d.kind, CheckKind::UnfedInput);
  EXPECT_EQ(d.vdp, tuple2(2, 1));
  EXPECT_EQ(d.slot, 1);
}

TEST(GraphCheck, CounterStarvation) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(3, 0), 3, nop(), 1, 0);
  vsa.feed(tuple2(3, 0), 0, 64, {bytes_packet(8)});  // 1 packet, 3 firings
  const Diagnostic& d = only(GraphCheck::check(vsa));
  EXPECT_EQ(d.kind, CheckKind::Starvation);
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_NE(d.message.find("deadlock"), std::string::npos);
}

TEST(GraphCheck, PacketLeakIsAWarning) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(4, 0), 1, nop(), 1, 0);
  vsa.feed(tuple2(4, 0), 0, 64,
           {bytes_packet(8), bytes_packet(8), bytes_packet(8)});
  const GraphReport rep = GraphCheck::check(vsa);
  EXPECT_TRUE(rep.ok());  // warnings do not fail the check
  const Diagnostic& d = only(rep);
  EXPECT_EQ(d.kind, CheckKind::PacketLeak);
  EXPECT_EQ(d.severity, Severity::Warning);
}

TEST(GraphCheck, EnabledEmptyCycle) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(5, 0), 1, nop(), 1, 1);
  vsa.add_vdp(tuple2(5, 1), 1, nop(), 1, 1);
  vsa.connect(tuple2(5, 0), 0, tuple2(5, 1), 0, 64);
  vsa.connect(tuple2(5, 1), 0, tuple2(5, 0), 0, 64);
  const Diagnostic& d = only(GraphCheck::check(vsa));
  EXPECT_EQ(d.kind, CheckKind::EnabledCycle);
  EXPECT_NE(d.message.find("(5,0)"), std::string::npos);
  EXPECT_NE(d.message.find("(5,1)"), std::string::npos);
}

TEST(GraphCheck, OversizeFeed) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(6, 0), 1, nop(), 1, 0);
  vsa.feed(tuple2(6, 0), 0, /*max_bytes=*/8, {bytes_packet(16)});
  const Diagnostic& d = only(GraphCheck::check(vsa));
  EXPECT_EQ(d.kind, CheckKind::OversizeFeed);
  EXPECT_NE(d.message.find("16"), std::string::npos);
  EXPECT_NE(d.message.find("8"), std::string::npos);
}

TEST(GraphCheck, DuplicateProducerOnInputSlot) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(7, 0), 1, nop(), 0, 1);
  vsa.add_vdp(tuple2(7, 1), 1, nop(), 0, 1);
  vsa.add_vdp(tuple2(7, 2), 2, nop(), 1, 0);
  vsa.connect(tuple2(7, 0), 0, tuple2(7, 2), 0, 64);
  vsa.connect(tuple2(7, 1), 0, tuple2(7, 2), 0, 64);
  const Diagnostic& d = only(GraphCheck::check(vsa));
  EXPECT_EQ(d.kind, CheckKind::DuplicateProducer);
  EXPECT_EQ(d.vdp, tuple2(7, 2));
}

TEST(GraphCheck, BlockedVdpAllInputsUnconnected) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(8, 0), 1, nop(), 2, 0);
  const Diagnostic& d = only(GraphCheck::check(vsa));
  EXPECT_EQ(d.kind, CheckKind::BlockedVdp);
  // failure_test depends on this wording for the thrown run() error.
  EXPECT_NE(d.message.find("unconnected input"), std::string::npos);
}

TEST(GraphCheck, BlockedVdpAllInputsStartDisabled) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(9, 0), 1, nop(), 1, 0);
  vsa.feed(tuple2(9, 0), 0, 64, {bytes_packet(8)}, /*enabled=*/false);
  const Diagnostic& d = only(GraphCheck::check(vsa));
  EXPECT_EQ(d.kind, CheckKind::BlockedVdp);
  EXPECT_NE(d.message.find("disabled"), std::string::npos);
}

TEST(GraphCheck, UnreachableVdp) {
  Vsa vsa(quiet_cfg());
  // A <-> B with the back edge disabled: no enabled cycle, but no source
  // ever reaches either VDP. A is additionally blocked (its only input
  // starts disabled), which suppresses its redundant unreachable finding.
  vsa.add_vdp(tuple2(10, 0), 1, nop(), 1, 1);
  vsa.add_vdp(tuple2(10, 1), 1, nop(), 1, 1);
  vsa.connect(tuple2(10, 0), 0, tuple2(10, 1), 0, 64);
  vsa.connect(tuple2(10, 1), 0, tuple2(10, 0), 0, 64, /*enabled=*/false);
  const GraphReport rep = GraphCheck::check(vsa);
  ASSERT_EQ(rep.diagnostics.size(), 2u) << rep.to_string();
  EXPECT_EQ(rep.diagnostics[0].kind, CheckKind::BlockedVdp);
  EXPECT_EQ(rep.diagnostics[0].vdp, tuple2(10, 0));
  EXPECT_EQ(rep.diagnostics[1].kind, CheckKind::Unreachable);
  EXPECT_EQ(rep.diagnostics[1].vdp, tuple2(10, 1));
}

TEST(GraphCheck, UnknownEndpointAndBadSlot) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(11, 0), 1, nop(), 0, 1);
  vsa.add_vdp(tuple2(11, 1), 1, nop(), 1, 0);
  vsa.connect(tuple2(11, 0), 0, tuple2(11, 9), 0, 64);  // unknown dst
  vsa.connect(tuple2(11, 0), 3, tuple2(11, 1), 0, 64);  // bad out slot
  const GraphReport rep = GraphCheck::check(vsa);
  EXPECT_FALSE(rep.ok());
  bool unknown = false, bad = false;
  for (const auto& d : rep.diagnostics) {
    unknown |= d.kind == CheckKind::UnknownVdp;
    bad |= d.kind == CheckKind::BadSlot;
  }
  EXPECT_TRUE(unknown) << rep.to_string();
  EXPECT_TRUE(bad) << rep.to_string();
}

TEST(GraphCheck, ReportRendersKindNames) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(12, 0), 3, nop(), 1, 0);
  vsa.feed(tuple2(12, 0), 0, 64, {bytes_packet(8)});
  const std::string text = GraphCheck::check(vsa).to_string();
  EXPECT_NE(text.find("error starvation"), std::string::npos) << text;
  EXPECT_NE(text.find("1 error(s)"), std::string::npos) << text;
}

TEST(GraphCheck, RunFailsFastOnMalformedGraph) {
  Vsa vsa(quiet_cfg());  // graph_check defaults to on
  vsa.add_vdp(tuple2(13, 0), 3, nop(), 1, 0);
  vsa.feed(tuple2(13, 0), 0, 64, {bytes_packet(8)});
  try {
    vsa.run();
    FAIL() << "expected GraphCheck error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("GraphCheck"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("(13,0)"), std::string::npos);
  }
}

// Regression: run() used to set ran_ BEFORE the graph check, so a retry
// after a lint failure reported the misleading "already ran" instead of
// the actual graph problem. Every retry must re-report the real error.
TEST(GraphCheck, RetryAfterLintFailureReportsTheGraphError) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(16, 0), 3, nop(), 1, 0);
  vsa.feed(tuple2(16, 0), 0, 64, {bytes_packet(8)});  // starved
  for (int attempt = 0; attempt < 2; ++attempt) {
    try {
      vsa.run();
      FAIL() << "expected GraphCheck error on attempt " << attempt;
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("GraphCheck"), std::string::npos)
          << "attempt " << attempt << ": " << what;
      EXPECT_EQ(what.find("already ran"), std::string::npos)
          << "attempt " << attempt << ": " << what;
    }
  }
}

TEST(GraphCheck, ConfigKnobBypassesTheCheck) {
  Vsa::Config c = quiet_cfg();
  c.graph_check = false;
  c.watchdog_seconds = 0.2;
  Vsa vsa(c);
  vsa.add_vdp(tuple2(14, 0), 3, nop(), 1, 0);
  vsa.feed(tuple2(14, 0), 0, 64, {});  // empty: never ready
  try {
    vsa.run();
    FAIL() << "expected watchdog error";
  } catch (const Error& e) {
    // Reaches the runtime watchdog instead of the static check.
    EXPECT_EQ(std::string(e.what()).find("GraphCheck"), std::string::npos);
  }
}

TEST(GraphCheck, DeclarationsValidateTheirArguments) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(15, 0), 1, nop(), 1, 1);
  EXPECT_THROW(vsa.declare_output_packets(tuple2(15, 9), 0, 1), Error);
  EXPECT_THROW(vsa.declare_output_packets(tuple2(15, 0), 5, 1), Error);
  EXPECT_THROW(vsa.declare_input_packets(tuple2(15, 0), 0, -2), Error);
}

// ---- the shipped plans lint clean --------------------------------------

vsaqr::TreeQrOptions qr_opt(plan::TreeKind tree, int h,
                            plan::BoundaryMode bm, int nodes = 1) {
  vsaqr::TreeQrOptions opt;
  opt.tree = {tree, h, bm};
  opt.ib = 2;
  opt.nodes = nodes;
  opt.workers_per_node = 2;
  return opt;
}

void expect_clean(const GraphReport& rep, const std::string& what) {
  EXPECT_TRUE(rep.ok()) << what << ":\n" << rep.to_string();
  EXPECT_TRUE(rep.diagnostics.empty()) << what << ":\n" << rep.to_string();
}

TEST(GraphCheckPlans, TreeQrSweepIsClean) {
  const int nb = 4;
  const struct { int mt, nt; } shapes[] = {{1, 1}, {2, 2}, {4, 3},
                                           {6, 4}, {8, 2}, {2, 4}};
  // h = 1 degenerates to a pure binary tree over singleton domains;
  // h = 100 >= mt degenerates to a single flat domain.
  const int hs[] = {1, 2, 3, 100};
  for (const auto& s : shapes) {
    const TileMatrix a(s.mt * nb, s.nt * nb, nb);
    for (int h : hs) {
      for (auto bm : {plan::BoundaryMode::Fixed, plan::BoundaryMode::Shifted}) {
        for (int nodes : {1, 2}) {
          const auto opt =
              qr_opt(plan::TreeKind::BinaryOnFlat, h, bm, nodes);
          expect_clean(vsaqr::lint_tree_qr(a, opt),
                       "qr mt=" + std::to_string(s.mt) +
                           " nt=" + std::to_string(s.nt) +
                           " h=" + std::to_string(h));
        }
      }
    }
    expect_clean(
        vsaqr::lint_tree_qr(
            a, qr_opt(plan::TreeKind::Flat, 1, plan::BoundaryMode::Shifted)),
        "qr flat");
  }
}

TEST(GraphCheckPlans, BinaryTsqrIsClean) {
  const int nb = 4;
  for (int mt : {1, 2, 3, 7, 8}) {
    const TileMatrix a(mt * nb, nb, nb);
    expect_clean(
        vsaqr::lint_tree_qr(a, qr_opt(plan::TreeKind::Binary, 1,
                                      plan::BoundaryMode::Shifted)),
        "tsqr mt=" + std::to_string(mt));
  }
}

TEST(GraphCheckPlans, PanelLimitedQrIsClean) {
  const int nb = 4;
  const TileMatrix a(6 * nb, 5 * nb, nb);
  for (int panels : {1, 2, 3}) {
    auto opt = qr_opt(plan::TreeKind::BinaryOnFlat, 2,
                      plan::BoundaryMode::Shifted);
    opt.panel_columns = panels;
    expect_clean(vsaqr::lint_tree_qr(a, opt),
                 "qr panels=" + std::to_string(panels));
  }
}

// ---- flow/capacity analysis -------------------------------------------------
//
// The deadlock fixture: source A (counter 2) feeds B through a bounded
// channel and feeds C through an unbounded one; C's single output is B's
// second input. A's second output carries one packet over two firings, so
// A may legally defer it to its last firing — and with capacity 1 on
// A->B, A stalls on the full channel after firing once, C never gets its
// input, and B (waiting on C) never pops. With capacity 2 the same graph
// is live under every legal schedule.
struct CapacityFixture {
  Vsa vsa;
  explicit CapacityFixture(int capacity, bool graph_check = true,
                           double watchdog = 5.0)
      : vsa([&] {
          Vsa::Config c;
          c.nodes = 1;
          c.workers_per_node = 1;
          c.graph_check = graph_check;
          c.watchdog_seconds = watchdog;
          return c;
        }()) {
    // A defers its out1 packet to the last firing — legal under the
    // declared totals, and the schedule that wedges a capacity-1 A->B.
    vsa.add_vdp(tuple2(50, 0), 2,
                [](VdpContext& ctx) {
                  ctx.push(0, Packet::make(8));
                  if (ctx.counter() == 1) ctx.push(1, Packet::make(8));
                },
                0, 2);
    vsa.add_vdp(tuple2(50, 1), 2,
                [](VdpContext& ctx) {
                  ctx.pop(0);
                  if (ctx.counter() == 2) {
                    ctx.pop(1);
                    ctx.disable_input(1);
                  }
                },
                2, 0);
    vsa.add_vdp(tuple2(50, 2), 1,
                [](VdpContext& ctx) { ctx.push(0, ctx.pop(0)); }, 1, 1);
    vsa.connect(tuple2(50, 0), 0, tuple2(50, 1), 0, 64, true, capacity);
    vsa.connect(tuple2(50, 0), 1, tuple2(50, 2), 0, 64);
    vsa.connect(tuple2(50, 2), 0, tuple2(50, 1), 1, 64);
    vsa.declare_output_packets(tuple2(50, 0), 1, 1);
    vsa.declare_input_packets(tuple2(50, 1), 1, 1);
  }
};

TEST(GraphCheckFlow, CapacityDeadlockIsStaticallyRejected) {
  CapacityFixture fx(1);
  const Diagnostic d = only(GraphCheck::check(fx.vsa));
  EXPECT_EQ(d.kind, CheckKind::CapacityDeadlock);
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_EQ(d.vdp, tuple2(50, 0));  // anchored at the stalled producer
  EXPECT_EQ(d.slot, 0);
  // The finding names the offending channel and its bound.
  EXPECT_NE(d.message.find("capacity 1"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("(50,0)"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("(50,1)"), std::string::npos) << d.message;
}

TEST(GraphCheckFlow, AdequateCapacityIsCleanAndRunsLive) {
  CapacityFixture fx(2);
  const GraphReport rep = GraphCheck::check(fx.vsa);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_TRUE(rep.diagnostics.empty()) << rep.to_string();
  const Vsa::RunStats stats = fx.vsa.run();  // graph_check on: no throw
  EXPECT_EQ(stats.fires, 5);  // A twice, B twice, C once
}

TEST(GraphCheckFlow, RunRefusesTheDeadlockGraphUpFront) {
  CapacityFixture fx(1);
  try {
    fx.vsa.run();
    FAIL() << "run() accepted a capacity-deadlock graph";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("capacity-deadlock"),
              std::string::npos)
        << e.what();
  }
}

// The regression this analysis exists for: before GraphCheck understood
// capacities, the same graph sailed through the static checks and only
// the runtime watchdog — after its full timeout — caught the wedge.
TEST(GraphCheckFlow, WatchdogWasTheOnlyDefenseWithoutTheAnalysis) {
  CapacityFixture fx(1, /*graph_check=*/false, /*watchdog=*/0.3);
  try {
    fx.vsa.run();
    FAIL() << "deadlocked run returned";
  } catch (const Vsa::RunError& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos)
        << e.what();
  }
}

TEST(GraphCheckFlow, FeedPrefillOverCapacityIsOverflow) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(51, 0), 3, [](VdpContext& ctx) { ctx.pop(0); }, 1, 0);
  vsa.feed(tuple2(51, 0), 0, 64,
           {bytes_packet(8), bytes_packet(8), bytes_packet(8)}, true,
           /*capacity=*/2);
  const Diagnostic d = only(GraphCheck::check(vsa));
  EXPECT_EQ(d.kind, CheckKind::CapacityOverflow);
  EXPECT_NE(d.message.find("prefills 3"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("capacity is 2"), std::string::npos) << d.message;
}

TEST(GraphCheckFlow, SingleFiringBurstOverCapacityIsOverflow) {
  Vsa vsa(quiet_cfg());
  // One firing pushes both packets: no pop can interleave, so capacity 1
  // cannot hold the burst no matter how the consumer is scheduled.
  vsa.add_vdp(tuple2(52, 0), 1, nop(), 0, 1, 0, /*outputs_per_fire=*/2);
  vsa.add_vdp(tuple2(52, 1), 2, [](VdpContext& ctx) { ctx.pop(0); }, 1, 0);
  vsa.connect(tuple2(52, 0), 0, tuple2(52, 1), 0, 64, true, /*capacity=*/1);
  const Diagnostic d = only(GraphCheck::check(vsa));
  EXPECT_EQ(d.kind, CheckKind::CapacityOverflow);
  EXPECT_EQ(d.vdp, tuple2(52, 0));
  EXPECT_NE(d.message.find("can push 2"), std::string::npos) << d.message;
}

TEST(GraphCheckFlow, UniformPipelineAtCapacityOneIsClean) {
  // A bounded straight pipeline is live at any capacity >= its burst:
  // the producer stalls, the consumer pops, the producer resumes. No
  // dependency path back to the producer exists besides the channel
  // itself, so no deadlock is reported.
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(53, 0), 4,
              [](VdpContext& ctx) { ctx.push(0, Packet::make(8)); }, 0, 1);
  vsa.add_vdp(tuple2(53, 1), 4, [](VdpContext& ctx) { ctx.pop(0); }, 1, 0);
  vsa.connect(tuple2(53, 0), 0, tuple2(53, 1), 0, 64, true, /*capacity=*/1);
  const GraphReport rep = GraphCheck::check(vsa);
  EXPECT_TRUE(rep.diagnostics.empty()) << rep.to_string();
  EXPECT_NO_THROW(vsa.run());
}

TEST(GraphCheckFlow, CoveringSiblingChannelIsNotADeadlock) {
  // Two parallel channels between the same pair, one bounded, one not:
  // the consumer pops both every firing, so whenever the bounded channel
  // is full the unbounded sibling is non-empty too (it "covers" it) and
  // the consumer can always make progress. The naive cycle (B waits on A
  // through the sibling while A waits on B through the bound) is a false
  // positive the covers rule must suppress.
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(54, 0), 2,
              [](VdpContext& ctx) {
                ctx.push(0, Packet::make(8));
                ctx.push(1, Packet::make(8));
              },
              0, 2);
  vsa.add_vdp(tuple2(54, 1), 2,
              [](VdpContext& ctx) {
                ctx.pop(0);
                ctx.pop(1);
              },
              2, 0);
  vsa.connect(tuple2(54, 0), 0, tuple2(54, 1), 0, 64, true, /*capacity=*/1);
  vsa.connect(tuple2(54, 0), 1, tuple2(54, 1), 1, 64);
  const GraphReport rep = GraphCheck::check(vsa);
  EXPECT_TRUE(rep.diagnostics.empty()) << rep.to_string();
  EXPECT_NO_THROW(vsa.run());
}

TEST(GraphCheckFlow, BoundedSelfLoopIsADeadlock) {
  // A VDP that must pop its own deferred output: with the loop bounded
  // at 1 and two packets crossing it, the stalled producer waits on its
  // own consumption. The loop channel starts disabled so this isolates
  // the capacity analysis from the enabled-cycle check.
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(55, 0), 2, nop(), 2, 1);
  vsa.feed(tuple2(55, 0), 0, 64, {bytes_packet(8), bytes_packet(8)});
  vsa.connect(tuple2(55, 0), 0, tuple2(55, 0), 1, 64, /*enabled=*/false,
              /*capacity=*/1);
  const Diagnostic d = only(GraphCheck::check(vsa));
  EXPECT_EQ(d.kind, CheckKind::CapacityDeadlock);
  EXPECT_EQ(d.vdp, tuple2(55, 0));
}

TEST(GraphCheckFlow, FlowsReportOccupancyBounds) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(56, 0), 2,
              [](VdpContext& ctx) { ctx.push(0, ctx.pop(0)); }, 1, 1);
  vsa.add_vdp(tuple2(56, 1), 2, [](VdpContext& ctx) { ctx.pop(0); }, 1, 0);
  vsa.connect(tuple2(56, 0), 0, tuple2(56, 1), 0, 64);
  vsa.feed(tuple2(56, 0), 0, 64, {bytes_packet(8), bytes_packet(8)});
  const GraphReport rep = GraphCheck::check(vsa);
  ASSERT_EQ(rep.flows.size(), 2u) << rep.to_string();
  const ChannelFlow& feed = rep.flows[1];  // declaration order: edge, feed
  EXPECT_TRUE(feed.from_feed);
  EXPECT_EQ(feed.fed, 2);
  EXPECT_EQ(feed.peak_packets, 2);
  EXPECT_EQ(feed.resident_end, 0);
  const ChannelFlow& edge = rep.flows[0];
  EXPECT_EQ(edge.src, tuple2(56, 0));
  EXPECT_EQ(edge.delivered, 2);
  EXPECT_EQ(edge.consumed, 2);
  EXPECT_EQ(edge.peak_bytes(), 128);
  // JSON rendering carries the same numbers for CI gating.
  const std::string js = rep.to_json();
  EXPECT_NE(js.find("\"flows\":"), std::string::npos) << js;
  EXPECT_NE(js.find("\"peak_packets\":2"), std::string::npos) << js;
}

TEST(GraphCheckFlow, NegativeCapacityIsRejectedAtConnect) {
  Vsa vsa(quiet_cfg());
  vsa.add_vdp(tuple2(57, 0), 1, nop(), 0, 1);
  vsa.add_vdp(tuple2(57, 1), 1, nop(), 1, 0);
  EXPECT_THROW(vsa.connect(tuple2(57, 0), 0, tuple2(57, 1), 0, 64, true, -1),
               Error);
  EXPECT_THROW(vsa.feed(tuple2(57, 1), 0, 64, {bytes_packet(8)}, true, -2),
               Error);
}

TEST(GraphCheckPlans, CholeskySweepIsClean) {
  const int nb = 4;
  for (int mt : {1, 2, 3, 5, 8}) {
    for (int nodes : {1, 2}) {
      chol::VsaCholOptions opt;
      opt.nodes = nodes;
      const TileMatrix a(mt * nb, mt * nb, nb);
      expect_clean(chol::lint_vsa_cholesky(a, opt),
                   "chol mt=" + std::to_string(mt));
    }
  }
}

TEST(GraphCheckPlans, LuSweepIsClean) {
  const int nb = 4;
  const struct { int mt, nt; } shapes[] = {{1, 1}, {3, 3}, {5, 3}, {3, 5},
                                           {8, 8}};
  for (const auto& s : shapes) {
    for (int nodes : {1, 2}) {
      lu::VsaLuOptions opt;
      opt.nodes = nodes;
      const TileMatrix a(s.mt * nb, s.nt * nb, nb);
      expect_clean(lu::lint_vsa_lu(a, opt),
                   "lu mt=" + std::to_string(s.mt) +
                       " nt=" + std::to_string(s.nt));
    }
  }
}

}  // namespace
}  // namespace pulsarqr::prt
