// Unit tests for the Householder primitives and dense QR drivers.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/blas.hpp"
#include "common/rng.hpp"
#include "lapack/householder.hpp"
#include "lapack/qr.hpp"
#include "lapack/solve.hpp"

namespace pulsarqr {
namespace {

using blas::Trans;

Matrix random_matrix(int m, int n, std::uint64_t seed) {
  Matrix a(m, n);
  fill_random(a.view(), seed);
  return a;
}

double ortho_error(const Matrix& q) {
  // ||Q^T Q - I||_max
  Matrix g(q.cols(), q.cols());
  blas::gemm(Trans::Yes, Trans::No, 1.0, q.view(), q.view(), 0.0, g.view());
  for (int j = 0; j < g.cols(); ++j) g(j, j) -= 1.0;
  return blas::norm_max(g.view());
}

double factorization_error(const Matrix& a0, const Matrix& q, const Matrix& r) {
  Matrix qr(a0.rows(), a0.cols());
  blas::gemm(Trans::No, Trans::No, 1.0, q.view(),
             r.block(0, 0, q.cols(), a0.cols()), 0.0, qr.view());
  double d = 0.0;
  for (int j = 0; j < a0.cols(); ++j) {
    for (int i = 0; i < a0.rows(); ++i) {
      d = std::fmax(d, std::fabs(qr(i, j) - a0(i, j)));
    }
  }
  return d / (1.0 + blas::norm_max(a0.view()));
}

Matrix upper_of(const Matrix& a) {
  const int k = std::min(a.rows(), a.cols());
  Matrix r(k, a.cols());
  for (int j = 0; j < a.cols(); ++j) {
    for (int i = 0; i <= std::min(j, k - 1); ++i) r(i, j) = a(i, j);
  }
  return r;
}

TEST(Larfg, ZeroesTail) {
  std::vector<double> v = {3.0, 4.0, 12.0};
  double alpha = v[0];
  const double tau = lapack::larfg(3, alpha, v.data() + 1);
  // beta = -sign(alpha) * ||[3,4,12]|| = -13
  EXPECT_NEAR(alpha, -13.0, 1e-12);
  EXPECT_GT(tau, 0.0);
  // Check H * x = [beta, 0, 0]: H = I - tau w w^T, w = [1, v1, v2].
  std::vector<double> w = {1.0, v[1], v[2]};
  std::vector<double> x = {3.0, 4.0, 12.0};
  const double wx = blas::dot(3, w.data(), x.data());
  for (int i = 0; i < 3; ++i) x[i] -= tau * wx * w[i];
  EXPECT_NEAR(x[0], -13.0, 1e-12);
  EXPECT_NEAR(x[1], 0.0, 1e-12);
  EXPECT_NEAR(x[2], 0.0, 1e-12);
}

TEST(Larfg, ZeroTailGivesIdentity) {
  std::vector<double> v = {5.0, 0.0, 0.0};
  double alpha = v[0];
  const double tau = lapack::larfg(3, alpha, v.data() + 1);
  EXPECT_DOUBLE_EQ(tau, 0.0);
  EXPECT_DOUBLE_EQ(alpha, 5.0);
}

TEST(Larfg, TinyValuesRescale) {
  std::vector<double> v = {3e-300, 4e-300};
  double alpha = v[0];
  const double tau = lapack::larfg(2, alpha, v.data() + 1);
  EXPECT_NEAR(alpha, -5e-300, 1e-312);
  EXPECT_TRUE(std::isfinite(tau));
}

class DenseQrParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DenseQrParam, Geqr2ReconstructsA) {
  const auto [m, n] = GetParam();
  Matrix a = random_matrix(m, n, 101);
  Matrix a0 = a;
  std::vector<double> tau(std::min(m, n));
  lapack::geqr2(a.view(), tau.data());
  Matrix q = lapack::form_q(a.view(), tau.data(), std::min(m, n));
  EXPECT_LT(ortho_error(q), 1e-13 * m);
  EXPECT_LT(factorization_error(a0, q, upper_of(a)), 1e-13 * m);
}

TEST_P(DenseQrParam, GeqrfMatchesGeqr2UpToRoundoff) {
  const auto [m, n] = GetParam();
  Matrix a = random_matrix(m, n, 103);
  Matrix a0 = a;
  std::vector<double> tau(std::min(m, n));
  lapack::geqrf(a.view(), tau.data(), 5);
  Matrix q = lapack::form_q(a.view(), tau.data(), std::min(m, n));
  EXPECT_LT(ortho_error(q), 1e-13 * m);
  EXPECT_LT(factorization_error(a0, q, upper_of(a)), 1e-13 * m);
}

TEST_P(DenseQrParam, GeqrtAgreesWithGeqrf) {
  const auto [m, n] = GetParam();
  const int ib = 3;
  Matrix a = random_matrix(m, n, 107);
  Matrix b = a;
  const int k = std::min(m, n);
  Matrix t(ib < k ? ib : k, n);
  lapack::geqrt(a.view(), ib, t.view());
  std::vector<double> tau(k);
  lapack::geqrf(b.view(), tau.data(), ib);
  // Same algorithm, same panel split => identical output.
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) EXPECT_DOUBLE_EQ(a(i, j), b(i, j));
  }
}

TEST_P(DenseQrParam, OrmqrTransposeUndoesApply) {
  const auto [m, n] = GetParam();
  if (m < n) GTEST_SKIP();
  Matrix a = random_matrix(m, n, 109);
  std::vector<double> tau(n);
  lapack::geqrf(a.view(), tau.data());
  Matrix c = random_matrix(m, 3, 110);
  Matrix c0 = c;
  lapack::ormqr(Trans::No, a.view(), tau.data(), c.view());
  lapack::ormqr(Trans::Yes, a.view(), tau.data(), c.view());
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i < m; ++i) EXPECT_NEAR(c(i, j), c0(i, j), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, DenseQrParam,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(4, 4),
                                           std::make_tuple(10, 7),
                                           std::make_tuple(7, 10),
                                           std::make_tuple(33, 12),
                                           std::make_tuple(12, 12),
                                           std::make_tuple(64, 16)));

TEST(OrmqrT, MatchesOrmqrTau) {
  const int m = 20;
  const int n = 8;
  const int ib = 3;
  Matrix a = random_matrix(m, n, 113);
  Matrix t(ib, n);
  lapack::geqrt(a.view(), ib, t.view());
  Matrix c = random_matrix(m, 5, 114);
  Matrix c2 = c;
  lapack::ormqr_t(Trans::Yes, a.view(), t.view(), ib, c.view());
  // Independent path: geqrf with the same blocking then ormqr via taus.
  Matrix b = random_matrix(m, n, 113);
  std::vector<double> tau(n);
  lapack::geqrf(b.view(), tau.data(), ib);
  lapack::ormqr(Trans::Yes, b.view(), tau.data(), c2.view(), ib);
  for (int j = 0; j < 5; ++j) {
    for (int i = 0; i < m; ++i) EXPECT_NEAR(c(i, j), c2(i, j), 1e-12);
  }
}

TEST(LeastSquares, RecoversPlantedSolution) {
  const int m = 60;
  const int n = 11;
  Matrix a(m, n);
  fill_random_well_conditioned(a.view(), 201);
  Rng rng(202);
  std::vector<double> xtrue(n);
  for (auto& v : xtrue) v = rng.next_symmetric();
  std::vector<double> b(m, 0.0);
  blas::gemv(Trans::No, 1.0, a.view(), xtrue.data(), 0.0, b.data());
  Matrix awork = a;
  const auto x = lapack::least_squares(awork.view(), b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], xtrue[i], 1e-10);
  EXPECT_LT(lapack::residual_norm(a.view(), x, b), 1e-10);
}

TEST(LeastSquares, ResidualIsOrthogonalToRange) {
  const int m = 40;
  const int n = 7;
  Matrix a(m, n);
  fill_random_well_conditioned(a.view(), 203);
  Rng rng(204);
  std::vector<double> b(m);
  for (auto& v : b) v = rng.next_symmetric();
  Matrix awork = a;
  const auto x = lapack::least_squares(awork.view(), b);
  // r = b - A x must satisfy A^T r = 0.
  std::vector<double> r = b;
  blas::gemv(Trans::No, -1.0, a.view(), x.data(), 1.0, r.data());
  std::vector<double> atr(n, 0.0);
  blas::gemv(Trans::Yes, 1.0, a.view(), r.data(), 0.0, atr.data());
  for (int j = 0; j < n; ++j) EXPECT_NEAR(atr[j], 0.0, 1e-10);
}

TEST(LeastSquares, RejectsBadShapes) {
  Matrix a(3, 5);
  EXPECT_THROW(lapack::least_squares(a.view(), std::vector<double>(3)), Error);
  Matrix b(5, 3);
  EXPECT_THROW(lapack::least_squares(b.view(), std::vector<double>(4)), Error);
}

}  // namespace
}  // namespace pulsarqr
