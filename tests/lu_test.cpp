// Tests for the LU stack: dense no-pivot kernels, tile plan, sequential
// reference executor, and the PULSAR-mapped systolic LU (bitwise against
// the reference).
#include <gtest/gtest.h>

#include <cmath>

#include "blas/blas.hpp"
#include "common/rng.hpp"
#include "lapack/lu.hpp"
#include "lu/vsa_lu.hpp"

namespace pulsarqr {
namespace {

using blas::Diag;
using blas::Trans;
using blas::Uplo;

// ||A - L U|| / ||A|| from packed factors.
double lu_reconstruction_error(const Matrix& a, const Matrix& f) {
  const int m = a.rows();
  const int n = a.cols();
  const int k = std::min(m, n);
  Matrix l(m, k);
  Matrix u(k, n);
  for (int j = 0; j < k; ++j) {
    l(j, j) = 1.0;
    for (int i = j + 1; i < m; ++i) l(i, j) = f(i, j);
  }
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j && i < k; ++i) u(i, j) = f(i, j);
  }
  Matrix rec(m, n);
  blas::gemm(Trans::No, Trans::No, 1.0, l.view(), u.view(), 0.0, rec.view());
  double err = 0.0;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      err = std::fmax(err, std::fabs(rec(i, j) - a(i, j)));
    }
  }
  return err / (1.0 + blas::norm_max(a.view()));
}

class GetrfParam : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(GetrfParam, FactorReconstructsA) {
  const auto [m, n, nb] = GetParam();
  Matrix a = lu::random_diag_dominant(m, n, 40 + m + n);
  Matrix f = a;
  lapack::getrf_nopiv(f.view(), nb);
  EXPECT_LT(lu_reconstruction_error(a, f), 1e-13 * std::max(m, n));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GetrfParam,
                         ::testing::Values(std::make_tuple(1, 1, 4),
                                           std::make_tuple(8, 8, 3),
                                           std::make_tuple(20, 12, 5),
                                           std::make_tuple(12, 20, 5),
                                           std::make_tuple(32, 32, 32),
                                           std::make_tuple(33, 33, 8)));

TEST(Getf2, RejectsZeroPivot) {
  Matrix a(2, 2);
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;  // a(0,0) == 0
  EXPECT_THROW(lapack::getf2_nopiv(a.view()), Error);
}

TEST(Getrs, SolvesSystem) {
  const int n = 24;
  Matrix a = lu::random_diag_dominant(n, n, 9);
  Rng rng(10);
  std::vector<double> xtrue(n);
  for (auto& v : xtrue) v = rng.next_symmetric();
  std::vector<double> b(n, 0.0);
  blas::gemv(Trans::No, 1.0, a.view(), xtrue.data(), 0.0, b.data());
  Matrix f = a;
  lapack::getrf_nopiv(f.view());
  lapack::getrs_nopiv(f.view(), b.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(b[i], xtrue[i], 1e-11);
}

TEST(LuPlan, OpCounts) {
  lu::LuPlan plan(4, 4);
  int getrf = 0, tu = 0, tl = 0, gemm = 0;
  for (const auto& op : plan.ops()) {
    switch (op.kind) {
      case lu::OpKind::Getrf: ++getrf; break;
      case lu::OpKind::TrsmU: ++tu; break;
      case lu::OpKind::TrsmL: ++tl; break;
      case lu::OpKind::Gemm: ++gemm; break;
    }
  }
  EXPECT_EQ(getrf, 4);
  EXPECT_EQ(tu, 6);
  EXPECT_EQ(tl, 6);
  EXPECT_EQ(gemm, 1 + 4 + 9);
}

TEST(LuPlan, FlopsMatchClassicalCount) {
  const int nb = 8;
  const int n = 12 * nb;
  lu::LuPlan plan(n / nb, n / nb);
  EXPECT_NEAR(lu::plan_flops(plan, n, n, nb), lu::lu_useful_flops(n),
              0.2 * lu::lu_useful_flops(n));
}

class TileLuParam
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TileLuParam, MatchesDenseGetrf) {
  const auto [m, n, nb] = GetParam();
  Matrix a = lu::random_diag_dominant(m, n, 400 + m + n);
  TileMatrix ft = lu::tile_lu(TileMatrix::from_dense(a.view(), nb));
  Matrix f = ft.to_dense();
  EXPECT_LT(lu_reconstruction_error(a, f), 1e-12 * std::max(m, n));
  Matrix fd = a;
  lapack::getrf_nopiv(fd.view(), nb);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(f(i, j), fd(i, j), 1e-10 * (1.0 + std::fabs(fd(i, j))));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TileLuParam,
                         ::testing::Values(std::make_tuple(20, 20, 5),
                                           std::make_tuple(23, 23, 5),
                                           std::make_tuple(30, 18, 6),
                                           std::make_tuple(18, 30, 6),
                                           std::make_tuple(16, 16, 16)));

TEST(LuSolve, SolvesThroughTiles) {
  const int n = 30;
  Matrix a = lu::random_diag_dominant(n, n, 77);
  Rng rng(78);
  std::vector<double> xtrue(n);
  for (auto& v : xtrue) v = rng.next_symmetric();
  std::vector<double> b(n, 0.0);
  blas::gemv(Trans::No, 1.0, a.view(), xtrue.data(), 0.0, b.data());
  TileMatrix f = lu::tile_lu(TileMatrix::from_dense(a.view(), 7));
  const auto x = lu::lu_solve(f, b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], xtrue[i], 1e-11);
}

struct VsaLuCase {
  int m, n, nb, nodes, workers;
  bool stealing;
};

class VsaLuParam : public ::testing::TestWithParam<VsaLuCase> {};

TEST_P(VsaLuParam, BitwiseMatchesReference) {
  const VsaLuCase& c = GetParam();
  Matrix a = lu::random_diag_dominant(c.m, c.n, 500 + c.m + c.n);
  TileMatrix ref = lu::tile_lu(TileMatrix::from_dense(a.view(), c.nb));
  lu::VsaLuOptions opt;
  opt.nodes = c.nodes;
  opt.workers_per_node = c.workers;
  opt.work_stealing = c.stealing;
  opt.watchdog_seconds = 20.0;
  auto run = lu::vsa_lu(TileMatrix::from_dense(a.view(), c.nb), opt);
  EXPECT_EQ(run.stats.leftover_packets, 0);
  for (int j = 0; j < c.n; ++j) {
    for (int i = 0; i < c.m; ++i) {
      ASSERT_EQ(run.f.at(i, j), ref.at(i, j))
          << "factors differ at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VsaLuParam,
    ::testing::Values(VsaLuCase{20, 20, 5, 1, 1, false},
                      VsaLuCase{20, 20, 5, 2, 2, false},
                      VsaLuCase{20, 20, 5, 2, 2, true},
                      VsaLuCase{33, 33, 5, 2, 2, false},  // ragged
                      VsaLuCase{30, 18, 6, 2, 2, false},  // tall
                      VsaLuCase{18, 30, 6, 2, 2, false},  // wide
                      VsaLuCase{5, 5, 8, 1, 2, false},    // single tile
                      VsaLuCase{48, 48, 6, 3, 2, true}));

TEST(VsaLu, FireCountMatchesStructure) {
  // P(k) fires mt-k, each of the nt-k-1 update VDPs fires mt-k.
  const int mt = 4;
  Matrix a = lu::random_diag_dominant(4 * 5, 4 * 5, 3);
  lu::VsaLuOptions opt;
  auto run = lu::vsa_lu(TileMatrix::from_dense(a.view(), 5), opt);
  long long expect = 0;
  for (int k = 0; k < mt; ++k) expect += (mt - k) * (1 + (mt - k - 1));
  EXPECT_EQ(run.stats.fires, expect);
}

}  // namespace
}  // namespace pulsarqr
