// Tests for the performance-simulator substrate: thread-map closed forms,
// task-graph structure, DES scheduling invariants, and model properties
// the paper's figures rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "plan/domains.hpp"
#include "sim/scalapack_model.hpp"
#include "sim/simulator.hpp"

namespace pulsarqr::sim {
namespace {

using plan::BoundaryMode;
using plan::PlanConfig;
using plan::TreeKind;

TEST(VdpThreadMap, DomainIndexMatchesEnumeration) {
  const int mt = 29;
  for (auto tree : {TreeKind::Flat, TreeKind::Binary, TreeKind::BinaryOnFlat}) {
    for (auto bm : {BoundaryMode::Fixed, BoundaryMode::Shifted}) {
      for (int h : {1, 3, 4}) {
        PlanConfig cfg{tree, h, bm};
        VdpThreadMap map(mt, 8, cfg, 16);
        for (int k = 0; k < 8; ++k) {
          const auto doms = plan::domains_for_panel(mt, k, cfg);
          for (std::size_t d = 0; d < doms.size(); ++d) {
            EXPECT_EQ(map.domain_index(k, doms[d].head()),
                      static_cast<int>(d))
                << "tree=" << static_cast<int>(tree)
                << " bm=" << static_cast<int>(bm) << " h=" << h << " k=" << k;
          }
        }
      }
    }
  }
}

TEST(VdpThreadMap, FlatThreadIsCyclicInCreationOrder) {
  PlanConfig cfg{TreeKind::BinaryOnFlat, 2, BoundaryMode::Shifted};
  const int mt = 10;
  const int nt = 4;
  const int threads = 7;
  VdpThreadMap map(mt, nt, cfg, threads);
  int expect = 0;
  for (int k = 0; k < nt; ++k) {
    const auto doms = plan::domains_for_panel(mt, k, cfg);
    for (std::size_t d = 0; d < doms.size(); ++d) {
      for (int l = k; l < nt; ++l) {
        EXPECT_EQ(map.flat_thread(k, static_cast<int>(d), l),
                  expect % threads);
        ++expect;
      }
    }
  }
}

TEST(TaskGraph, StructureIsSane) {
  plan::ReductionPlan plan(12, 4, {TreeKind::BinaryOnFlat, 3,
                                   BoundaryMode::Shifted});
  MachineModel mm = MachineModel::kraken();
  CostModel cost(mm, 12 * 32, 4 * 32, 32, 8);
  TaskGraph g = build_task_graph(plan, cost, 2);
  EXPECT_EQ(g.num_tasks, static_cast<int>(plan.ops().size()));
  EXPECT_EQ(g.num_threads, 2 * mm.workers_per_node());
  for (int x = 0; x < g.num_tasks; ++x) {
    EXPECT_GE(g.thread[x], 0);
    EXPECT_LT(g.thread[x], g.num_threads);
    EXPECT_GT(g.duration[x], 0.0f);
    // Edges only point backwards (the plan order is dependency-valid).
    for (auto e = g.pred_offset[x]; e < g.pred_offset[x + 1]; ++e) {
      EXPECT_LT(g.pred_task[e], x);
    }
  }
}

TEST(TaskGraph, FirstTaskHasNoPreds) {
  plan::ReductionPlan plan(6, 3, {TreeKind::Flat, 1, BoundaryMode::Shifted});
  MachineModel mm = MachineModel::kraken();
  CostModel cost(mm, 6 * 8, 3 * 8, 8, 4);
  TaskGraph g = build_task_graph(plan, cost, 1);
  EXPECT_EQ(g.pred_offset[1] - g.pred_offset[0], 0);
}

TEST(Simulator, SingleWorkerEqualsSerialSum) {
  MachineModel mm = MachineModel::kraken();
  mm.cores_per_node = 2;  // 1 worker + proxy
  const int nb = 16;
  plan::ReductionPlan plan(8, 2, {TreeKind::Flat, 1, BoundaryMode::Shifted});
  CostModel cost(mm, 8 * nb, 2 * nb, nb, 8);
  TaskGraph g = build_task_graph(plan, cost, 1);
  auto r = simulate_graph(g, cost, 1.0, 1.0);
  double serial = 0.0;
  for (float d : g.duration) serial += d;
  EXPECT_NEAR(r.seconds, serial, 1e-9 * serial);
  EXPECT_NEAR(r.busy_fraction, 1.0, 1e-9);
}

TEST(Simulator, MoreNodesNeverSlowerMuch) {
  // Communication can make more nodes slightly slower in corner cases,
  // but across a doubling sweep the trend must be monotone non-increasing
  // within a small tolerance.
  MachineModel mm = MachineModel::kraken();
  const PlanConfig cfg{TreeKind::BinaryOnFlat, 6, BoundaryMode::Shifted};
  double prev = 1e300;
  for (int nodes : {1, 2, 4, 8, 16}) {
    auto r = simulate_tree_qr(48 * 192, 4 * 192, 192, 48, cfg, mm, nodes);
    EXPECT_LT(r.seconds, prev * 1.05) << nodes;
    prev = r.seconds;
  }
}

TEST(Simulator, TallSkinnyTreeOrderingMatchesFigure10) {
  // The headline result: hierarchical > binary > flat in useful Gflop/s
  // for a tall-skinny matrix at scale.
  MachineModel mm = MachineModel::kraken();
  const int m = 256 * 192;
  const int n = 8 * 192;
  const int nodes = 96;
  auto hier = simulate_tree_qr(
      m, n, 192, 48, {TreeKind::BinaryOnFlat, 6, BoundaryMode::Shifted}, mm,
      nodes);
  auto bin = simulate_tree_qr(
      m, n, 192, 48, {TreeKind::Binary, 1, BoundaryMode::Shifted}, mm, nodes);
  auto flat = simulate_tree_qr(
      m, n, 192, 48, {TreeKind::Flat, 1, BoundaryMode::Shifted}, mm, nodes);
  EXPECT_GT(hier.useful_gflops, bin.useful_gflops);
  EXPECT_GT(bin.useful_gflops, flat.useful_gflops);
  EXPECT_GT(hier.useful_gflops, 2.5 * flat.useful_gflops);
}

TEST(Simulator, ShiftedBoundariesBeatFixed) {
  // Figure 7's point: shifting the domain boundary pipelines consecutive
  // panels, so it must not be slower than the fixed boundary.
  MachineModel mm = MachineModel::kraken();
  auto shifted = simulate_tree_qr(
      128 * 192, 4 * 192, 192, 48,
      {TreeKind::BinaryOnFlat, 8, BoundaryMode::Shifted}, mm, 16);
  auto fixed = simulate_tree_qr(
      128 * 192, 4 * 192, 192, 48,
      {TreeKind::BinaryOnFlat, 8, BoundaryMode::Fixed}, mm, 16);
  EXPECT_LE(shifted.seconds, fixed.seconds * 1.02);
}

TEST(Simulator, MakespanRespectsLowerBounds) {
  MachineModel mm = MachineModel::kraken();
  const PlanConfig cfg{TreeKind::BinaryOnFlat, 4, BoundaryMode::Shifted};
  const int nb = 64;
  const int m = 32 * nb;
  const int n = 4 * nb;
  plan::ReductionPlan plan(32, 4, cfg);
  CostModel cost(mm, m, n, nb, 16);
  for (int nodes : {1, 4}) {
    TaskGraph g = build_task_graph(plan, cost, nodes);
    auto r = simulate_graph(g, cost, plan::qr_useful_flops(m, n),
                            plan::plan_flops(plan, m, n, nb));
    // Work bound.
    double total = 0.0;
    for (float d : g.duration) total += d;
    EXPECT_GE(r.seconds * g.num_threads, total * 0.999);
    // Longest-task bound.
    EXPECT_GE(r.seconds,
              *std::max_element(g.duration.begin(), g.duration.end()));
    EXPECT_LE(r.busy_fraction, 1.0 + 1e-9);
    EXPECT_GT(r.busy_fraction, 0.0);
  }
}

TEST(Simulator, UsefulVersusActualGflops) {
  MachineModel mm = MachineModel::kraken();
  auto r = simulate_tree_qr(64 * 64, 4 * 64, 64, 16,
                            {TreeKind::Binary, 1, BoundaryMode::Shifted}, mm,
                            4);
  // Tree algorithms do more raw flops than the useful count.
  EXPECT_GT(r.actual_gflops, r.useful_gflops);
}

TEST(Simulator, NicContentionNeverSpeedsUp) {
  MachineModel mm = MachineModel::kraken();
  const PlanConfig cfg{TreeKind::BinaryOnFlat, 4, BoundaryMode::Shifted};
  const auto base = simulate_tree_qr(96 * 128, 8 * 128, 128, 32, cfg, mm, 8);
  mm.model_nic_contention = true;
  const auto cont = simulate_tree_qr(96 * 128, 8 * 128, 128, 32, cfg, mm, 8);
  EXPECT_GE(cont.seconds, base.seconds * 0.999);
}

TEST(Simulator, NicContentionIrrelevantOnOneNode) {
  MachineModel mm = MachineModel::kraken();
  const PlanConfig cfg{TreeKind::Flat, 1, BoundaryMode::Shifted};
  const auto base = simulate_tree_qr(32 * 64, 4 * 64, 64, 16, cfg, mm, 1);
  mm.model_nic_contention = true;
  const auto cont = simulate_tree_qr(32 * 64, 4 * 64, 64, 16, cfg, mm, 1);
  EXPECT_DOUBLE_EQ(cont.seconds, base.seconds);
}

TEST(CostModel, MessageTimesScaleWithSize) {
  MachineModel mm = MachineModel::kraken();
  CostModel small(mm, 1024, 256, 64, 16);
  CostModel large(mm, 1024, 256, 256, 16);
  EXPECT_GT(large.tile_message_seconds(), small.tile_message_seconds());
  EXPECT_GT(small.tile_message_seconds(), mm.link_latency_s);
  EXPECT_GT(small.vt_message_seconds(), small.tile_message_seconds());
}

TEST(Scalapack, GridPrefersTallForTallSkinny) {
  MachineModel mm = MachineModel::kraken();
  auto r = scalapack_qr_model(368640, 4608, 64, mm, 1920);
  EXPECT_GT(r.pr, r.pc);
  EXPECT_EQ(r.pr * r.pc, 1920);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.panel_seconds, 0.0);
}

TEST(Scalapack, LagsTreeQrAtScale) {
  // Section VI-A: LibSci/ScaLAPACK lag tree QR by at least 3x (up to an
  // order of magnitude) for tall-skinny problems at scale.
  MachineModel mm = MachineModel::kraken();
  auto tree = simulate_tree_qr(
      368640, 4608, 192, 48, {TreeKind::BinaryOnFlat, 6,
                              BoundaryMode::Shifted}, mm, 640);
  auto scal = scalapack_qr_model(368640, 4608, 64, mm, 640 * 12);
  EXPECT_GT(scal.seconds / tree.seconds, 3.0);
}

}  // namespace
}  // namespace pulsarqr::sim
