// Randomized property sweep of the Cholesky and LU systolic arrays:
// seeded random shapes, tile sizes and runtime topologies; every draw
// must reproduce its sequential reference bitwise with no leftovers.
#include <gtest/gtest.h>

#include "chol/vsa_chol.hpp"
#include "common/rng.hpp"
#include "lu/vsa_lu.hpp"

namespace pulsarqr {
namespace {

class CholFuzzParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CholFuzzParam, RandomConfigBitwiseMatchesReference) {
  Rng rng(GetParam() * 31 + 5);
  const int nb = 3 + static_cast<int>(rng.next_u64() % 6);
  const int mt = 1 + static_cast<int>(rng.next_u64() % 8);
  const int n = mt * nb - static_cast<int>(rng.next_u64() % nb);
  chol::VsaCholOptions opt;
  opt.nodes = 1 + static_cast<int>(rng.next_u64() % 3);
  opt.workers_per_node = 1 + static_cast<int>(rng.next_u64() % 3);
  opt.scheduling = rng.next_u64() % 2 ? prt::Scheduling::Lazy
                                      : prt::Scheduling::Aggressive;
  opt.work_stealing = rng.next_u64() % 2 == 0;
  opt.watchdog_seconds = 20.0;
  SCOPED_TRACE(testing::Message()
               << "n=" << n << " nb=" << nb << " nodes=" << opt.nodes
               << " workers=" << opt.workers_per_node
               << " stealing=" << opt.work_stealing);

  Matrix a = chol::random_spd(n, GetParam() * 101 + 3);
  TileMatrix ref = chol::tile_cholesky(TileMatrix::from_dense(a.view(), nb));
  auto run = chol::vsa_cholesky(TileMatrix::from_dense(a.view(), nb), opt);
  EXPECT_EQ(run.stats.leftover_packets, 0);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      ASSERT_EQ(run.l.at(i, j), ref.at(i, j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, CholFuzzParam,
                         ::testing::Range<std::uint64_t>(1, 21));

class LuFuzzParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LuFuzzParam, RandomConfigBitwiseMatchesReference) {
  Rng rng(GetParam() * 37 + 11);
  const int nb = 3 + static_cast<int>(rng.next_u64() % 6);
  const int mt = 1 + static_cast<int>(rng.next_u64() % 7);
  const int nt = 1 + static_cast<int>(rng.next_u64() % 7);
  const int m = mt * nb - static_cast<int>(rng.next_u64() % nb);
  const int n = nt * nb - static_cast<int>(rng.next_u64() % nb);
  lu::VsaLuOptions opt;
  opt.nodes = 1 + static_cast<int>(rng.next_u64() % 3);
  opt.workers_per_node = 1 + static_cast<int>(rng.next_u64() % 3);
  opt.scheduling = rng.next_u64() % 2 ? prt::Scheduling::Lazy
                                      : prt::Scheduling::Aggressive;
  opt.work_stealing = rng.next_u64() % 2 == 0;
  opt.watchdog_seconds = 20.0;
  SCOPED_TRACE(testing::Message()
               << "m=" << m << " n=" << n << " nb=" << nb << " nodes="
               << opt.nodes << " workers=" << opt.workers_per_node
               << " stealing=" << opt.work_stealing);

  Matrix a = lu::random_diag_dominant(m, n, GetParam() * 211 + 7);
  TileMatrix ref = lu::tile_lu(TileMatrix::from_dense(a.view(), nb));
  auto run = lu::vsa_lu(TileMatrix::from_dense(a.view(), nb), opt);
  EXPECT_EQ(run.stats.leftover_packets, 0);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      ASSERT_EQ(run.f.at(i, j), ref.at(i, j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, LuFuzzParam,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace pulsarqr
