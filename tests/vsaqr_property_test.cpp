// Randomized property sweep of the QR systolic array: seeded random
// problem shapes, tile/inner-block sizes, tree configurations, runtime
// topologies and executors — every draw must reproduce the sequential
// reference bitwise and leave no packets behind.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ref/reference_qr.hpp"
#include "vsaqr/tree_qr.hpp"

namespace pulsarqr {
namespace {

class QrFuzzParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QrFuzzParam, RandomConfigBitwiseMatchesReference) {
  Rng rng(GetParam());
  const int nb = 3 + static_cast<int>(rng.next_u64() % 6);       // 3..8
  const int mt = 2 + static_cast<int>(rng.next_u64() % 9);       // 2..10
  const int nt = 1 + static_cast<int>(rng.next_u64() % 5);       // 1..5
  const int m = mt * nb - static_cast<int>(rng.next_u64() % nb); // ragged
  const int n = nt * nb - static_cast<int>(rng.next_u64() % nb);
  const int ib = 1 + static_cast<int>(rng.next_u64() % nb);      // 1..nb

  plan::PlanConfig cfg;
  switch (rng.next_u64() % 3) {
    case 0: cfg.tree = plan::TreeKind::Flat; break;
    case 1: cfg.tree = plan::TreeKind::Binary; break;
    default: cfg.tree = plan::TreeKind::BinaryOnFlat; break;
  }
  cfg.domain_size = 1 + static_cast<int>(rng.next_u64() % 4);
  cfg.boundary = rng.next_u64() % 2 ? plan::BoundaryMode::Shifted
                                    : plan::BoundaryMode::Fixed;

  vsaqr::TreeQrOptions opt;
  opt.tree = cfg;
  opt.ib = ib;
  opt.nodes = 1 + static_cast<int>(rng.next_u64() % 3);
  opt.workers_per_node = 1 + static_cast<int>(rng.next_u64() % 3);
  opt.scheduling = rng.next_u64() % 2 ? prt::Scheduling::Lazy
                                      : prt::Scheduling::Aggressive;
  opt.work_stealing = rng.next_u64() % 2 == 0;
  opt.watchdog_seconds = 20.0;

  SCOPED_TRACE(testing::Message()
               << "m=" << m << " n=" << n << " nb=" << nb << " ib=" << ib
               << " tree=" << static_cast<int>(cfg.tree)
               << " h=" << cfg.domain_size
               << " bm=" << static_cast<int>(cfg.boundary)
               << " nodes=" << opt.nodes << " workers="
               << opt.workers_per_node << " stealing=" << opt.work_stealing);

  Matrix a0(m, n);
  fill_random(a0.view(), GetParam() * 7919 + 13);
  auto reference =
      ref::tree_qr(TileMatrix::from_dense(a0.view(), nb), ib, cfg);
  auto run = vsaqr::tree_qr(TileMatrix::from_dense(a0.view(), nb), opt);

  EXPECT_EQ(run.stats.leftover_packets, 0);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      ASSERT_EQ(run.factors.a.at(i, j), reference.a.at(i, j))
          << "differs at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, QrFuzzParam,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace pulsarqr
