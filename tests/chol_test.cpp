// Tests for the Cholesky stack: dense kernels, tile plan, sequential
// reference executor, and the PULSAR-mapped systolic Cholesky (checked
// bitwise against the reference).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "blas/blas.hpp"
#include "chol/vsa_chol.hpp"
#include "common/rng.hpp"
#include "lapack/cholesky.hpp"

namespace pulsarqr {
namespace {

using blas::Trans;

double reconstruction_error(const Matrix& a, const Matrix& l) {
  const int n = a.rows();
  Matrix llt(n, n);
  blas::gemm(Trans::No, Trans::Yes, 1.0, l.view(), l.view(), 0.0, llt.view());
  double err = 0.0;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      err = std::fmax(err, std::fabs(llt(i, j) - a(i, j)));
    }
  }
  return err / (1.0 + blas::norm_max(a.view()));
}

// ---- dense kernels ---------------------------------------------------------

class PotrfParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PotrfParam, FactorReconstructsA) {
  const auto [n, nb] = GetParam();
  Matrix a = chol::random_spd(n, 17 + n);
  Matrix l = a;
  lapack::potrf(l.view(), nb);
  // Strict upper triangle must be zeroed.
  for (int j = 1; j < n; ++j) {
    for (int i = 0; i < j; ++i) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
  }
  EXPECT_LT(reconstruction_error(a, l), 1e-13 * n);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PotrfParam,
                         ::testing::Values(std::make_tuple(1, 4),
                                           std::make_tuple(5, 2),
                                           std::make_tuple(16, 16),
                                           std::make_tuple(33, 8),
                                           std::make_tuple(64, 13)));

TEST(Potf2, RejectsIndefiniteMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  EXPECT_THROW(lapack::potf2(a.view()), Error);
}

TEST(Potrs, SolvesSpdSystem) {
  const int n = 20;
  Matrix a = chol::random_spd(n, 5);
  Rng rng(6);
  std::vector<double> xtrue(n);
  for (auto& v : xtrue) v = rng.next_symmetric();
  std::vector<double> b(n, 0.0);
  blas::gemv(Trans::No, 1.0, a.view(), xtrue.data(), 0.0, b.data());
  Matrix l = a;
  lapack::potrf(l.view());
  lapack::potrs(l.view(), b.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(b[i], xtrue[i], 1e-10);
}

// ---- plan ------------------------------------------------------------------

TEST(CholPlan, OpCountAndCoverage) {
  const int mt = 5;
  chol::CholPlan plan(mt);
  int potrf = 0, trsm = 0, syrk = 0, gemm = 0;
  for (const auto& op : plan.ops()) {
    switch (op.kind) {
      case chol::OpKind::Potrf: ++potrf; break;
      case chol::OpKind::Trsm: ++trsm; break;
      case chol::OpKind::Syrk: ++syrk; break;
      case chol::OpKind::Gemm: ++gemm; break;
    }
  }
  EXPECT_EQ(potrf, mt);
  EXPECT_EQ(trsm, mt * (mt - 1) / 2);
  EXPECT_EQ(syrk, mt * (mt - 1) / 2);
  EXPECT_EQ(gemm, mt * (mt - 1) * (mt - 2) / 6);
}

TEST(CholPlan, FlopsMatchClassicalCount) {
  const int nb = 8;
  const int n = 10 * nb;
  chol::CholPlan plan(n / nb);
  const double got = chol::plan_flops(plan, n, nb);
  const double expect = chol::chol_useful_flops(n);
  // The tile algorithm with triangular kernels matches n^3/3 to leading
  // order (within the nb/n fringe).
  EXPECT_NEAR(got, expect, 0.35 * expect);
}

// ---- reference executor ----------------------------------------------------

class TileCholParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TileCholParam, MatchesDensePotrf) {
  const auto [n, nb] = GetParam();
  Matrix a = chol::random_spd(n, 100 + n);
  TileMatrix at = TileMatrix::from_dense(a.view(), nb);
  TileMatrix lt = chol::tile_cholesky(std::move(at));
  Matrix l = chol::extract_l(lt);
  EXPECT_LT(reconstruction_error(a, l), 1e-12 * n);

  Matrix ld = a;
  lapack::potrf(ld.view());
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      EXPECT_NEAR(l(i, j), ld(i, j), 1e-10 * (1.0 + std::fabs(ld(i, j))));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TileCholParam,
                         ::testing::Values(std::make_tuple(4, 4),
                                           std::make_tuple(20, 5),
                                           std::make_tuple(23, 5),
                                           std::make_tuple(48, 8),
                                           std::make_tuple(30, 30)));

TEST(CholSolve, SolvesThroughTiles) {
  const int n = 35;
  Matrix a = chol::random_spd(n, 71);
  Rng rng(72);
  std::vector<double> xtrue(n);
  for (auto& v : xtrue) v = rng.next_symmetric();
  std::vector<double> b(n, 0.0);
  blas::gemv(Trans::No, 1.0, a.view(), xtrue.data(), 0.0, b.data());
  TileMatrix lt =
      chol::tile_cholesky(TileMatrix::from_dense(a.view(), 6));
  const auto x = chol::chol_solve(lt, b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], xtrue[i], 1e-10);
}

// ---- the systolic array ----------------------------------------------------

struct VsaCholCase {
  int n, nb, nodes, workers;
  prt::Scheduling sched;
};

class VsaCholParam : public ::testing::TestWithParam<VsaCholCase> {};

TEST_P(VsaCholParam, BitwiseMatchesReference) {
  const VsaCholCase& c = GetParam();
  Matrix a = chol::random_spd(c.n, 300 + c.n);
  TileMatrix at = TileMatrix::from_dense(a.view(), c.nb);
  TileMatrix ref = chol::tile_cholesky(TileMatrix::from_dense(a.view(), c.nb));

  chol::VsaCholOptions opt;
  opt.nodes = c.nodes;
  opt.workers_per_node = c.workers;
  opt.scheduling = c.sched;
  opt.watchdog_seconds = 20.0;
  auto run = chol::vsa_cholesky(at, opt);
  EXPECT_EQ(run.stats.leftover_packets, 0);
  for (int j = 0; j < c.n; ++j) {
    for (int i = j; i < c.n; ++i) {
      ASSERT_EQ(run.l.at(i, j), ref.at(i, j))
          << "L differs at (" << i << "," << j << ")";
    }
  }
  // And it is a valid factorization.
  EXPECT_LT(reconstruction_error(a, chol::extract_l(run.l)), 1e-12 * c.n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VsaCholParam,
    ::testing::Values(
        VsaCholCase{20, 5, 1, 1, prt::Scheduling::Lazy},
        VsaCholCase{20, 5, 1, 3, prt::Scheduling::Lazy},
        VsaCholCase{20, 5, 2, 2, prt::Scheduling::Lazy},
        VsaCholCase{20, 5, 2, 2, prt::Scheduling::Aggressive},
        VsaCholCase{33, 5, 2, 2, prt::Scheduling::Lazy},  // ragged tiles
        VsaCholCase{5, 8, 1, 2, prt::Scheduling::Lazy},   // single tile
        VsaCholCase{64, 8, 3, 2, prt::Scheduling::Lazy},
        VsaCholCase{48, 4, 4, 1, prt::Scheduling::Aggressive}));

TEST(VsaChol, WorkStealingBitwiseMatchesReference) {
  Matrix a = chol::random_spd(44, 21);
  TileMatrix ref = chol::tile_cholesky(TileMatrix::from_dense(a.view(), 5));
  chol::VsaCholOptions opt;
  opt.nodes = 2;
  opt.workers_per_node = 3;
  opt.work_stealing = true;
  auto run = chol::vsa_cholesky(TileMatrix::from_dense(a.view(), 5), opt);
  for (int j = 0; j < 44; ++j) {
    for (int i = j; i < 44; ++i) {
      ASSERT_EQ(run.l.at(i, j), ref.at(i, j));
    }
  }
}

TEST(VsaChol, TraceHasBothColors) {
  Matrix a = chol::random_spd(40, 9);
  TileMatrix at = TileMatrix::from_dense(a.view(), 8);
  chol::VsaCholOptions opt;
  opt.workers_per_node = 2;
  opt.trace = true;
  auto run = chol::vsa_cholesky(at, opt);
  ASSERT_FALSE(run.events.empty());
  bool panel = false, update = false;
  for (const auto& e : run.events) {
    if (e.color == chol::kCholPanel) panel = true;
    if (e.color == chol::kCholUpdate) update = true;
  }
  EXPECT_TRUE(panel);
  EXPECT_TRUE(update);
  // Fire count: P(k) fires mt-k times, S(k,j) fires mt-k-1 times.
  const int mt = 5;
  long long expect = 0;
  for (int k = 0; k < mt; ++k) {
    expect += mt - k + static_cast<long long>(mt - k - 1) * (mt - k - 1);
  }
  EXPECT_EQ(run.stats.fires, expect);
}

TEST(VsaChol, RejectsNonSquare) {
  TileMatrix a(8, 12, 4);
  chol::VsaCholOptions opt;
  EXPECT_THROW(chol::vsa_cholesky(a, opt), Error);
}

}  // namespace
}  // namespace pulsarqr
