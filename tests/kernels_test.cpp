// Tests for the six tile kernels: each factor kernel is checked by
// reconstructing the input from its output via the matching apply kernel,
// plus structural and orthogonality properties.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "blas/blas.hpp"
#include "common/rng.hpp"
#include "kernels/tile_kernels.hpp"

namespace pulsarqr {
namespace {

using blas::Trans;

Matrix random_matrix(int m, int n, std::uint64_t seed) {
  Matrix a(m, n);
  fill_random(a.view(), seed);
  return a;
}

Matrix upper_square(const Matrix& a, int n) {
  Matrix r(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j && i < a.rows(); ++i) r(i, j) = a(i, j);
  }
  return r;
}

double max_diff(ConstMatrixView a, ConstMatrixView b) {
  double d = 0.0;
  for (int j = 0; j < a.cols; ++j) {
    for (int i = 0; i < a.rows; ++i) {
      d = std::fmax(d, std::fabs(a(i, j) - b(i, j)));
    }
  }
  return d;
}

// ---- TS kernels ------------------------------------------------------------

class TsParam : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

// tsqrt on [R1; A2] then tsmqr(NoTrans) applied to [R1'; 0] must rebuild the
// stacked input: Q * [R_new; 0] = [R1; A2].
TEST_P(TsParam, TsqrtReconstructsStackedInput) {
  const auto [n, m2, ib] = GetParam();
  // Build R1 as the R factor shape: upper triangular n-by-n.
  Matrix r1 = upper_square(random_matrix(n, n, 301), n);
  Matrix a2 = random_matrix(m2, n, 302);
  Matrix r1_0 = r1;
  Matrix a2_0 = a2;
  Matrix t(std::min(ib, n), n);
  kernels::tsqrt(r1.view(), a2.view(), ib, t.view());
  // R1 must remain upper triangular.
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < n; ++i) EXPECT_DOUBLE_EQ(r1(i, j), 0.0);
  }
  // Reconstruct: C1 = R_new, C2 = 0; apply Q (NoTrans).
  Matrix c1 = r1;
  Matrix c2(m2, n);
  kernels::tsmqr(Trans::No, a2.view(), t.view(), ib, c1.view(), c2.view());
  EXPECT_LT(max_diff(c1.view(), r1_0.view()), 1e-12 * (1 + n));
  EXPECT_LT(max_diff(c2.view(), a2_0.view()), 1e-12 * (1 + n));
}

// Q^T then Q must be the identity on arbitrary stacked data.
TEST_P(TsParam, TsmqrRoundTrip) {
  const auto [n, m2, ib] = GetParam();
  Matrix r1 = upper_square(random_matrix(n, n, 303), n);
  Matrix a2 = random_matrix(m2, n, 304);
  Matrix t(std::min(ib, n), n);
  kernels::tsqrt(r1.view(), a2.view(), ib, t.view());
  const int nc = 5;
  Matrix c1 = random_matrix(n + 2, nc, 305);  // taller than n: extra rows inert
  Matrix c2 = random_matrix(m2, nc, 306);
  Matrix c1_0 = c1;
  Matrix c2_0 = c2;
  kernels::tsmqr(Trans::Yes, a2.view(), t.view(), ib, c1.view(), c2.view());
  kernels::tsmqr(Trans::No, a2.view(), t.view(), ib, c1.view(), c2.view());
  EXPECT_LT(max_diff(c1.view(), c1_0.view()), 1e-12);
  EXPECT_LT(max_diff(c2.view(), c2_0.view()), 1e-12);
  // Rows of C1 beyond n must never be touched.
  kernels::tsmqr(Trans::Yes, a2.view(), t.view(), ib, c1.view(), c2.view());
  for (int j = 0; j < nc; ++j) {
    for (int i = n; i < n + 2; ++i) EXPECT_DOUBLE_EQ(c1(i, j), c1_0(i, j));
  }
}

// The transformation must preserve the Frobenius norm of stacked data
// (orthogonality property).
TEST_P(TsParam, TsmqrPreservesNorm) {
  const auto [n, m2, ib] = GetParam();
  Matrix r1 = upper_square(random_matrix(n, n, 307), n);
  Matrix a2 = random_matrix(m2, n, 308);
  Matrix t(std::min(ib, n), n);
  kernels::tsqrt(r1.view(), a2.view(), ib, t.view());
  Matrix c1 = random_matrix(n, 4, 309);
  Matrix c2 = random_matrix(m2, 4, 310);
  const double before = std::hypot(blas::norm_fro(c1.view()),
                                   blas::norm_fro(c2.view()));
  kernels::tsmqr(Trans::Yes, a2.view(), t.view(), ib, c1.view(), c2.view());
  const double after = std::hypot(blas::norm_fro(c1.view()),
                                  blas::norm_fro(c2.view()));
  EXPECT_NEAR(before, after, 1e-11 * before);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TsParam,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(4, 4, 2),
                      std::make_tuple(8, 8, 8), std::make_tuple(8, 8, 3),
                      std::make_tuple(6, 2, 2),   // short A2 (m2 < n)
                      std::make_tuple(5, 17, 2),  // tall A2
                      std::make_tuple(16, 16, 4)));

// ---- TT kernels ------------------------------------------------------------

class TtParam : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TtParam, TtqrtReconstructsStackedTriangles) {
  const auto [n, m2, ib] = GetParam();
  Matrix r1 = upper_square(random_matrix(n, n, 311), n);
  // Loser tile: upper triangular content in the top m2 rows, garbage below
  // the diagonal (simulating Householder vectors from the flat phase).
  Matrix a2 = random_matrix(m2, n, 312);
  Matrix a2_upper(m2, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j && i < m2; ++i) a2_upper(i, j) = a2(i, j);
  }
  Matrix r1_0 = r1;
  Matrix a2_0 = a2;  // full tile, including the "V junk"
  Matrix t(std::min(ib, n), n);
  kernels::ttqrt(r1.view(), a2.view(), ib, t.view());
  // Strict-lower part of A2 (old Householder vectors) must be untouched.
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < m2; ++i) EXPECT_DOUBLE_EQ(a2(i, j), a2_0(i, j));
  }
  // Reconstruct [R1_old; triu(A2_old)] = Q [R_new; 0].
  Matrix c1 = r1;
  Matrix c2(m2, n);
  kernels::ttmqr(Trans::No, a2.view(), t.view(), ib, c1.view(), c2.view());
  EXPECT_LT(max_diff(c1.view(), r1_0.view()), 1e-12 * (1 + n));
  EXPECT_LT(max_diff(c2.view(), a2_upper.view()), 1e-12 * (1 + n));
}

TEST_P(TtParam, TtmqrRoundTrip) {
  const auto [n, m2, ib] = GetParam();
  Matrix r1 = upper_square(random_matrix(n, n, 313), n);
  Matrix a2 = random_matrix(m2, n, 314);
  Matrix t(std::min(ib, n), n);
  kernels::ttqrt(r1.view(), a2.view(), ib, t.view());
  Matrix c1 = random_matrix(n, 3, 315);
  Matrix c2 = random_matrix(m2, 3, 316);
  Matrix c1_0 = c1;
  Matrix c2_0 = c2;
  kernels::ttmqr(Trans::Yes, a2.view(), t.view(), ib, c1.view(), c2.view());
  kernels::ttmqr(Trans::No, a2.view(), t.view(), ib, c1.view(), c2.view());
  EXPECT_LT(max_diff(c1.view(), c1_0.view()), 1e-12);
  EXPECT_LT(max_diff(c2.view(), c2_0.view()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TtParam,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(4, 4, 2),
                                           std::make_tuple(8, 8, 3),
                                           std::make_tuple(6, 3, 2),  // short loser
                                           std::make_tuple(12, 12, 4)));

// ---- geqrt/ormqr as tile kernels -------------------------------------------

// Sub-micro-tile shapes: the fused larf kernel and the small-GEMM tier own
// these sizes, and off-by-ones in their fringe handling show up here first.
TEST(GeqrtTile, TinyShapesReconstruct) {
  for (int m = 1; m <= 9; m += 2) {
    for (int n = 1; n <= 9; n += 2) {
      for (int ib : {1, 2, 4}) {
        SCOPED_TRACE(::testing::Message()
                     << "m=" << m << " n=" << n << " ib=" << ib);
        const int k = std::min(m, n);
        Matrix a = random_matrix(m, n, 331 + 7 * m + n);
        Matrix a0 = a;
        Matrix t(std::min(ib, k), k);
        kernels::geqrt(a.view(), ib, t.view());
        Matrix c = a0;
        kernels::ormqr(Trans::Yes, a.view(), t.view(), ib, c.view());
        for (int j = 0; j < n; ++j) {
          for (int i = 0; i <= std::min(j, m - 1); ++i) {
            EXPECT_NEAR(c(i, j), a(i, j), 1e-12);
          }
          for (int i = j + 1; i < m; ++i) EXPECT_NEAR(c(i, j), 0.0, 1e-12);
        }
      }
    }
  }
}

// Single-precision geqrt/ormqr: same reconstruction property at float
// tolerance, on the batch bench's headline shape and a tiny one.
TEST(GeqrtTileF32, ApplyTransposeYieldsR) {
  const std::pair<int, int> shapes[] = {{64, 16}, {5, 3}};
  for (const auto& [m, n] : shapes) {
    SCOPED_TRACE(::testing::Message() << "m=" << m << " n=" << n);
    const int ib = std::min(4, n);
    MatrixF a(m, n);
    Rng rng(341);
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < m; ++i) {
        a(i, j) = static_cast<float>(rng.next_symmetric());
      }
    }
    MatrixF a0 = a;
    MatrixF t(ib, n);
    kernels::geqrt(a.view(), ib, t.view());
    MatrixF c = a0;
    kernels::ormqr(Trans::Yes, a.view(), t.view(), ib, c.view());
    const float tol = 1e-4f;
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i <= j; ++i) EXPECT_NEAR(c(i, j), a(i, j), tol);
      for (int i = j + 1; i < m; ++i) EXPECT_NEAR(c(i, j), 0.0f, tol);
    }
  }
}

TEST(GeqrtTile, ApplyTransposeYieldsR) {
  const int m = 12;
  const int n = 6;
  const int ib = 2;
  Matrix a = random_matrix(m, n, 321);
  Matrix a0 = a;
  Matrix t(ib, n);
  kernels::geqrt(a.view(), ib, t.view());
  // Applying Q^T to the original tile must reproduce [R; 0].
  Matrix c = a0;
  kernels::ormqr(Trans::Yes, a.view(), t.view(), ib, c.view());
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) EXPECT_NEAR(c(i, j), a(i, j), 1e-12);
    for (int i = j + 1; i < m; ++i) EXPECT_NEAR(c(i, j), 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace pulsarqr
