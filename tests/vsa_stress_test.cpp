// Randomized stress tests of the VSA engine: layered random dataflow
// graphs with token-conservation invariants, across node counts, worker
// counts and schedulers. Any lost/duplicated packet, missed wakeup or
// premature VDP death shows up as a count mismatch or a watchdog timeout.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/rng.hpp"
#include "prt/vsa.hpp"

namespace pulsarqr::prt {
namespace {

struct Counters {
  std::atomic<long long> tokens{0};
  std::atomic<long long> checksum{0};
};

struct StressCase {
  std::uint64_t seed;
  int nodes;
  int workers;
  Scheduling sched;
  bool stealing = false;
};

class StressParam : public ::testing::TestWithParam<StressCase> {};

// Build a random layered graph. Every VDP forwards each received packet
// to ALL of its children (one output channel per edge); every VDP in
// layer i > 0 has 1 or 2 parents and fires once per "wave". With T waves
// fed at the sources, every VDP fires exactly T times and every sink
// token count is exactly T.
TEST_P(StressParam, TokenConservation) {
  const StressCase& c = GetParam();
  Rng rng(c.seed);
  const int layers = 3 + static_cast<int>(rng.next_u64() % 4);
  const int width = 2 + static_cast<int>(rng.next_u64() % 5);
  const int waves = 5 + static_cast<int>(rng.next_u64() % 40);

  Vsa::Config cfg;
  cfg.nodes = c.nodes;
  cfg.workers_per_node = c.workers;
  cfg.scheduling = c.sched;
  cfg.work_stealing = c.stealing;
  cfg.watchdog_seconds = 10.0;
  Vsa vsa(cfg);
  auto counters = std::make_shared<Counters>();
  vsa.set_global(counters);

  // Topology: edges[l][w] = list of parents (by index in layer l-1).
  std::vector<std::vector<std::vector<int>>> parents(layers);
  // children counts to size output slots.
  std::vector<std::vector<int>> nchildren(layers, std::vector<int>(width, 0));
  for (int l = 1; l < layers; ++l) {
    parents[l].resize(width);
    for (int w = 0; w < width; ++w) {
      const int np = 1 + static_cast<int>(rng.next_u64() % 2);
      for (int p = 0; p < np; ++p) {
        const int parent = static_cast<int>(rng.next_u64() % width);
        // Avoid duplicate parent edges (two channels from the same VDP
        // to the same consumer are fine, but keep counters simple).
        if (p == 1 && parents[l][w][0] == parent) continue;
        parents[l][w].push_back(parent);
        ++nchildren[l - 1][parent];
      }
    }
  }

  // Create VDPs.
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      const int nin = l == 0 ? 1 : static_cast<int>(parents[l][w].size());
      const int nout = l == layers - 1 ? 0 : nchildren[l][w];
      const bool sink = l == layers - 1;
      vsa.add_vdp(
          tuple2(l, w), waves,
          [nin, nout, sink](VdpContext& ctx) {
            double sum = 0.0;
            for (int s = 0; s < nin; ++s) {
              sum += ctx.pop(s).doubles()[0];
            }
            if (sink) {
              auto& cts = ctx.global<Counters>();
              cts.tokens.fetch_add(1);
              cts.checksum.fetch_add(static_cast<long long>(sum));
            } else {
              for (int s = 0; s < nout; ++s) {
                Packet p = Packet::make(sizeof(double));
                p.doubles()[0] = 1.0;
                ctx.push(s, p);
              }
            }
          },
          nin, nout);
    }
  }

  // Connect edges; track the next free slot per endpoint.
  std::vector<std::vector<int>> next_out(layers, std::vector<int>(width, 0));
  std::vector<std::vector<int>> next_in(layers, std::vector<int>(width, 0));
  for (int l = 1; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      for (int parent : parents[l][w]) {
        vsa.connect(tuple2(l - 1, parent), next_out[l - 1][parent]++,
                    tuple2(l, w), next_in[l][w]++, sizeof(double));
      }
    }
  }
  // Feed the sources.
  for (int w = 0; w < width; ++w) {
    std::vector<Packet> init;
    for (int t = 0; t < waves; ++t) {
      Packet p = Packet::make(sizeof(double));
      p.doubles()[0] = 1.0;
      init.push_back(std::move(p));
    }
    vsa.feed(tuple2(0, w), 0, sizeof(double), std::move(init));
  }

  auto stats = vsa.run();
  EXPECT_EQ(stats.fires, static_cast<long long>(layers) * width * waves);
  EXPECT_EQ(stats.leftover_packets, 0);
  EXPECT_EQ(counters->tokens.load(),
            static_cast<long long>(width) * waves);
}

std::vector<StressCase> stress_cases() {
  std::vector<StressCase> cases;
  std::uint64_t seed = 1;
  for (int nodes : {1, 3}) {
    for (int workers : {1, 2, 4}) {
      for (auto sched : {Scheduling::Lazy, Scheduling::Aggressive}) {
        for (bool stealing : {false, true}) {
          for (int rep = 0; rep < 3; ++rep) {
            cases.push_back({seed++, nodes, workers, sched, stealing});
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, StressParam,
                         ::testing::ValuesIn(stress_cases()));

// A long chain across many virtual nodes: every hop crosses the proxy.
TEST(VsaStress, DeepCrossNodeChain) {
  Vsa::Config cfg;
  cfg.nodes = 8;
  cfg.workers_per_node = 1;
  cfg.watchdog_seconds = 20.0;
  Vsa vsa(cfg);
  auto counters = std::make_shared<Counters>();
  vsa.set_global(counters);
  const int length = 64;
  const int waves = 32;
  for (int i = 0; i < length; ++i) {
    const bool last = i == length - 1;
    vsa.add_vdp(
        tuple2(9, i), waves,
        [last](VdpContext& ctx) {
          Packet p = ctx.pop(0);
          p.doubles()[0] += 1.0;
          if (last) {
            auto& cts = ctx.global<Counters>();
            cts.tokens.fetch_add(1);
            cts.checksum.fetch_add(
                static_cast<long long>(p.doubles()[0]));
          } else {
            ctx.push(0, std::move(p));
          }
        },
        1, last ? 0 : 1);
    vsa.map_vdp(tuple2(9, i), i % 8);  // consecutive hops on distinct nodes
  }
  std::vector<Packet> init;
  for (int t = 0; t < waves; ++t) {
    Packet p = Packet::make(sizeof(double));
    p.doubles()[0] = 0.0;
    init.push_back(std::move(p));
  }
  vsa.feed(tuple2(9, 0), 0, sizeof(double), std::move(init));
  for (int i = 0; i + 1 < length; ++i) {
    vsa.connect(tuple2(9, i), 0, tuple2(9, i + 1), 0, sizeof(double));
  }
  auto stats = vsa.run();
  EXPECT_EQ(counters->tokens.load(), waves);
  EXPECT_EQ(counters->checksum.load(), static_cast<long long>(waves) * length);
  EXPECT_GE(stats.remote_messages, static_cast<long long>(waves) * (length - 8));
}

// Strict FIFO through a single channel under the real schedulers. Every
// VSA channel runs in the SPSC regime (GraphCheck proves one producer
// per input slot), so sequence numbers must arrive in exact order
// whether the producer is a worker thread (same node) or the node proxy
// (cross-node), for both scheduling modes and both executors. This runs
// in the TSan CI leg, which additionally checks the memory-ordering
// claims of the lock-free fast path.
struct FifoProbe {
  std::atomic<long long> received{0};
  std::atomic<long long> misordered{0};
};

TEST(VsaStress, SpscStrictFifoAcrossSchedulers) {
  const int packets = 2000;
  for (int nodes : {1, 2}) {
    for (auto sched : {Scheduling::Lazy, Scheduling::Aggressive}) {
      for (bool stealing : {false, true}) {
        Vsa::Config cfg;
        cfg.nodes = nodes;
        cfg.workers_per_node = 2;
        cfg.scheduling = sched;
        cfg.work_stealing = stealing;
        cfg.watchdog_seconds = 20.0;
        // Cover both wakeup paths regardless of the host's core count:
        // bounded spin on the epoch, and immediate park.
        cfg.spin_us = nodes == 1 ? 50 : 0;
        Vsa vsa(cfg);
        auto probe = std::make_shared<FifoProbe>();
        vsa.set_global(probe);
        // Successive firings of one VDP are serialized by the runtime,
        // so plain shared counters are safe on each side.
        auto seq = std::make_shared<int>(0);
        auto expect = std::make_shared<int>(0);
        vsa.add_vdp(
            tuple2(20, 0), packets,
            [seq](VdpContext& ctx) {
              (void)ctx.pop(0);
              ctx.push(0, Packet::make(8, (*seq)++));
            },
            1, 1);
        vsa.add_vdp(
            tuple2(20, 1), packets,
            [expect](VdpContext& ctx) {
              const Packet p = ctx.pop(0);
              auto& pr = ctx.global<FifoProbe>();
              pr.received.fetch_add(1);
              if (p.meta() != (*expect)++) pr.misordered.fetch_add(1);
            },
            1, 0);
        if (nodes == 2) {
          vsa.map_vdp(tuple2(20, 0), 0);
          vsa.map_vdp(tuple2(20, 1), 1);  // channel fed by node 1's proxy
        }
        vsa.connect(tuple2(20, 0), 0, tuple2(20, 1), 0, 8);
        std::vector<Packet> ticks;
        for (int t = 0; t < packets; ++t) ticks.push_back(Packet::make(8));
        vsa.feed(tuple2(20, 0), 0, 8, std::move(ticks));
        auto stats = vsa.run();
        EXPECT_EQ(stats.fires, 2LL * packets);
        EXPECT_EQ(probe->received.load(), packets);
        EXPECT_EQ(probe->misordered.load(), 0)
            << "nodes=" << nodes << " sched="
            << (sched == Scheduling::Lazy ? "lazy" : "aggressive")
            << " stealing=" << stealing;
      }
    }
  }
}

}  // namespace
}  // namespace pulsarqr::prt
