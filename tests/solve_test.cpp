// Tests for least squares on the array (augmented [A | B] factorization
// with panel-limited plans).
#include <gtest/gtest.h>

#include <cmath>

#include "blas/blas.hpp"
#include "common/rng.hpp"
#include "lapack/solve.hpp"
#include "plan/reduction_plan.hpp"
#include "vsaqr/tree_qr.hpp"

namespace pulsarqr {
namespace {

using plan::BoundaryMode;
using plan::PlanConfig;
using plan::TreeKind;

TEST(PanelLimitedPlan, StopsEliminationEarly) {
  plan::ReductionPlan plan(10, 6, {TreeKind::Flat, 1, BoundaryMode::Shifted},
                           3);
  EXPECT_EQ(plan.panels(), 3);
  for (const auto& op : plan.ops()) {
    EXPECT_LT(op.j, 3);
    if (!plan::is_factor_op(op.kind)) {
      EXPECT_LT(op.l, 6);
    }
  }
  // Updates of the last panel must still sweep columns 3..5.
  bool saw_last_col = false;
  for (const auto& op : plan.ops()) {
    if (op.kind == plan::OpKind::Tsmqr && op.j == 2 && op.l == 5) {
      saw_last_col = true;
    }
  }
  EXPECT_TRUE(saw_last_col);
}

TEST(PanelLimitedPlan, DefaultIsFullFactorization) {
  plan::ReductionPlan a(8, 4, {TreeKind::Flat, 1, BoundaryMode::Shifted});
  plan::ReductionPlan b(8, 4, {TreeKind::Flat, 1, BoundaryMode::Shifted}, 99);
  EXPECT_EQ(a.panels(), 4);
  EXPECT_EQ(b.panels(), 4);
}

struct SolveCase {
  int m, n, nb, ib, nrhs;
  PlanConfig cfg;
  int nodes, workers;
};

class TreeQrSolveParam : public ::testing::TestWithParam<SolveCase> {};

TEST_P(TreeQrSolveParam, MatchesDenseLeastSquares) {
  const SolveCase& c = GetParam();
  Matrix a0(c.m, c.n);
  fill_random_well_conditioned(a0.view(), 900 + c.m + c.n);
  Matrix b0(c.m, c.nrhs);
  fill_random(b0.view(), 901);

  TileMatrix a = TileMatrix::from_dense(a0.view(), c.nb);
  vsaqr::TreeQrOptions opt;
  opt.tree = c.cfg;
  opt.ib = c.ib;
  opt.nodes = c.nodes;
  opt.workers_per_node = c.workers;
  Matrix x = vsaqr::tree_qr_solve(a, b0.view(), opt);

  ASSERT_EQ(x.rows(), c.n);
  ASSERT_EQ(x.cols(), c.nrhs);
  for (int r = 0; r < c.nrhs; ++r) {
    Matrix awork = a0;
    std::vector<double> rhs(c.m);
    for (int i = 0; i < c.m; ++i) rhs[i] = b0(i, r);
    const auto xd = lapack::least_squares(awork.view(), rhs);
    for (int i = 0; i < c.n; ++i) {
      EXPECT_NEAR(x(i, r), xd[i], 1e-9 * (1.0 + std::fabs(xd[i])))
          << "rhs " << r << " row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeQrSolveParam,
    ::testing::Values(
        // Exact tiles, one rhs.
        SolveCase{40, 10, 5, 2,
                  1, {TreeKind::BinaryOnFlat, 2, BoundaryMode::Shifted}, 1, 2},
        // Multiple right-hand sides.
        SolveCase{40, 10, 5, 2,
                  4, {TreeKind::BinaryOnFlat, 3, BoundaryMode::Shifted}, 2, 2},
        // Ragged A columns (padding path).
        SolveCase{33, 7, 5, 3,
                  2, {TreeKind::Binary, 1, BoundaryMode::Shifted}, 1, 2},
        // Flat tree, fixed boundary.
        SolveCase{30, 10, 5, 5, 2, {TreeKind::Flat, 1, BoundaryMode::Fixed},
                  2, 1},
        // nrhs spanning multiple tile columns.
        SolveCase{48, 8, 4, 4,
                  9, {TreeKind::BinaryOnFlat, 2, BoundaryMode::Shifted}, 2,
                  2},
        // Large-ish stress.
        SolveCase{96, 12, 6, 3,
                  3, {TreeKind::BinaryOnFlat, 4, BoundaryMode::Shifted}, 3,
                  2}));

TEST(TreeQrSolve, SolvesPlantedSystemExactly) {
  const int m = 60;
  const int n = 12;
  Matrix a0(m, n);
  fill_random_well_conditioned(a0.view(), 31);
  Rng rng(32);
  Matrix xtrue(n, 2);
  fill_random(xtrue.view(), 33);
  Matrix b(m, 2);
  blas::gemm(blas::Trans::No, blas::Trans::No, 1.0, a0.view(), xtrue.view(),
             0.0, b.view());

  TileMatrix a = TileMatrix::from_dense(a0.view(), 6);
  vsaqr::TreeQrOptions opt;
  opt.tree = {TreeKind::BinaryOnFlat, 3, BoundaryMode::Shifted};
  opt.ib = 3;
  Matrix x = vsaqr::tree_qr_solve(a, b.view(), opt);
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(x(i, j), xtrue(i, j), 1e-9);
    }
  }
}

TEST(TreeQrSolve, RejectsBadShapes) {
  TileMatrix a(8, 12, 4);  // m < n
  Matrix b(8, 1);
  vsaqr::TreeQrOptions opt;
  EXPECT_THROW(vsaqr::tree_qr_solve(a, b.view(), opt), Error);
  TileMatrix a2(12, 8, 4);
  Matrix b2(10, 1);  // wrong row count
  EXPECT_THROW(vsaqr::tree_qr_solve(a2, b2.view(), opt), Error);
  Matrix b3(12, 0);  // no rhs
  EXPECT_THROW(vsaqr::tree_qr_solve(a2, b3.view(), opt), Error);
}

}  // namespace
}  // namespace pulsarqr
