// Additional coverage: plan slicing APIs, flop-count properties, thread
// map edges, rectangular kernel operands, degenerate tile shapes, and
// runtime statistics accounting.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "kernels/tile_kernels.hpp"
#include "plan/flops.hpp"
#include "plan/reduction_plan.hpp"
#include "prt/vsa.hpp"
#include "sim/task_graph.hpp"
#include "tile/tile_matrix.hpp"

namespace pulsarqr {
namespace {

using plan::BoundaryMode;
using plan::OpKind;
using plan::PlanConfig;
using plan::TreeKind;

TEST(PlanSlicing, PanelRangesPartitionTheOps) {
  plan::ReductionPlan p(9, 5, {TreeKind::BinaryOnFlat, 2,
                               BoundaryMode::Shifted});
  std::size_t expect_begin = 0;
  for (int j = 0; j < p.panels(); ++j) {
    const auto [b, e] = p.panel_range(j);
    EXPECT_EQ(b, expect_begin);
    EXPECT_GT(e, b);
    for (std::size_t i = b; i < e; ++i) EXPECT_EQ(p.ops()[i].j, j);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, p.ops().size());
}

TEST(PlanSlicing, FactorOpsAreTheEliminations) {
  plan::ReductionPlan p(6, 3, {TreeKind::Binary, 1, BoundaryMode::Shifted});
  for (int j = 0; j < 3; ++j) {
    const auto f = p.factor_ops(j);
    // One geqrt per row plus one elimination per non-survivor.
    int geqrt = 0, elim = 0;
    for (const auto& op : f) {
      EXPECT_TRUE(plan::is_factor_op(op.kind));
      if (op.kind == OpKind::Geqrt) ++geqrt;
      if (op.kind == OpKind::Ttqrt || op.kind == OpKind::Tsqrt) ++elim;
    }
    EXPECT_EQ(geqrt, 6 - j);
    EXPECT_EQ(elim, 6 - j - 1);
  }
}

TEST(Flops, AllOpKindsPositiveAndAdditive) {
  plan::ReductionPlan p(7, 4, {TreeKind::BinaryOnFlat, 3,
                               BoundaryMode::Fixed});
  const int m = 7 * 16;
  const int n = 4 * 16;
  double sum = 0.0;
  for (const auto& op : p.ops()) {
    const double f = plan::op_flops(op, m, n, 16);
    EXPECT_GT(f, 0.0);
    sum += f;
  }
  EXPECT_DOUBLE_EQ(sum, plan::plan_flops(p, m, n, 16));
}

TEST(Flops, TreeOverheadOrdering) {
  // Binary does more flops than hierarchical which does more than flat
  // (more TT kernels as domains shrink).
  const int m = 64 * 16;
  const int n = 4 * 16;
  auto total = [&](TreeKind t, int h) {
    plan::ReductionPlan p(64, 4, {t, h, BoundaryMode::Shifted});
    return plan::plan_flops(p, m, n, 16);
  };
  const double flat = total(TreeKind::Flat, 1);
  const double hier = total(TreeKind::BinaryOnFlat, 8);
  const double bin = total(TreeKind::Binary, 1);
  EXPECT_LT(flat, hier);
  EXPECT_LT(hier, bin);
}

TEST(TaskGraphEdges, VtEdgesExist) {
  plan::ReductionPlan p(6, 3, {TreeKind::BinaryOnFlat, 2,
                               BoundaryMode::Shifted});
  sim::MachineModel mm = sim::MachineModel::kraken();
  sim::CostModel cost(mm, 6 * 32, 3 * 32, 32, 8);
  const auto g = sim::build_task_graph(p, cost, 2);
  int serial = 0, tile = 0, vt = 0;
  for (const auto k : g.pred_kind) {
    if (k == sim::EdgeKind::Serial) ++serial;
    if (k == sim::EdgeKind::Tile) ++tile;
    if (k == sim::EdgeKind::Vt) ++vt;
  }
  EXPECT_GT(serial, 0);
  EXPECT_GT(tile, 0);
  EXPECT_GT(vt, 0);
}

TEST(Kernels, RectangularTrailingTiles) {
  // tsqrt/tsmqr with C tiles narrower than the panel (ragged last column).
  const int n = 6;
  const int m2 = 9;
  const int nc = 2;  // narrow trailing tile
  Matrix r1(n, n);
  fill_random(r1.view(), 1);
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < n; ++i) r1(i, j) = 0.0;
  }
  Matrix a2(m2, n);
  fill_random(a2.view(), 2);
  Matrix t(3, n);
  kernels::tsqrt(r1.view(), a2.view(), 3, t.view());
  Matrix c1(n, nc);
  Matrix c2(m2, nc);
  fill_random(c1.view(), 3);
  fill_random(c2.view(), 4);
  Matrix c1_0 = c1;
  Matrix c2_0 = c2;
  kernels::tsmqr(blas::Trans::Yes, a2.view(), t.view(), 3, c1.view(),
                 c2.view());
  kernels::tsmqr(blas::Trans::No, a2.view(), t.view(), 3, c1.view(),
                 c2.view());
  for (int j = 0; j < nc; ++j) {
    for (int i = 0; i < n; ++i) EXPECT_NEAR(c1(i, j), c1_0(i, j), 1e-12);
    for (int i = 0; i < m2; ++i) EXPECT_NEAR(c2(i, j), c2_0(i, j), 1e-12);
  }
}

TEST(TileMatrixEdge, TileLargerThanMatrix) {
  TileMatrix t(3, 2, 64);
  EXPECT_EQ(t.mt(), 1);
  EXPECT_EQ(t.nt(), 1);
  EXPECT_EQ(t.tile_rows(0), 3);
  EXPECT_EQ(t.tile_cols(0), 2);
}

TEST(RunStats, AccountsBusyTimeAndRemoteBytes) {
  prt::Vsa::Config cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 1;
  prt::Vsa vsa(cfg);
  const std::size_t bytes = 1000;
  vsa.add_vdp(
      prt::tuple2(0, 0), 4,
      [bytes](prt::VdpContext& ctx) {
        (void)ctx.pop(0);
        ctx.push(0, prt::Packet::make(bytes));
      },
      1, 1);
  vsa.add_vdp(
      prt::tuple2(0, 1), 4, [](prt::VdpContext& ctx) { (void)ctx.pop(0); },
      1, 0);
  vsa.map_vdp(prt::tuple2(0, 0), 0);
  vsa.map_vdp(prt::tuple2(0, 1), 1);  // forces the proxy path
  std::vector<prt::Packet> init;
  for (int i = 0; i < 4; ++i) init.push_back(prt::Packet::make(8));
  vsa.feed(prt::tuple2(0, 0), 0, bytes, std::move(init));
  vsa.connect(prt::tuple2(0, 0), 0, prt::tuple2(0, 1), 0, bytes);
  const auto stats = vsa.run();
  EXPECT_EQ(stats.remote_messages, 4);
  EXPECT_EQ(stats.remote_bytes, 4 * static_cast<long long>(bytes));
  ASSERT_EQ(stats.busy_per_thread.size(), 2u);
  const double total =
      std::accumulate(stats.busy_per_thread.begin(),
                      stats.busy_per_thread.end(), 0.0);
  EXPECT_GT(total, 0.0);
  EXPECT_LT(total, stats.seconds * 2.0 + 1.0);
}

TEST(ThreadMapEdge, WrapsAroundThreadCount) {
  sim::VdpThreadMap map(100, 4, {TreeKind::Binary, 1, BoundaryMode::Shifted},
                        7);
  // All values must be in range for a large sweep.
  for (int k = 0; k < 4; ++k) {
    for (int d = 0; d < 100 - k; ++d) {
      for (int l = k; l < 4; ++l) {
        const int t = map.flat_thread(k, d, l);
        ASSERT_GE(t, 0);
        ASSERT_LT(t, 7);
      }
    }
  }
}

}  // namespace
}  // namespace pulsarqr
