// Property tests for the fused batched QR plan: every batch element must be
// BITWISE identical to running kernels::geqrt on the same matrix
// sequentially — both paths execute the same kernel code on the same bytes,
// so any divergence means the batch plan corrupted state (sliced the batch
// wrong, shared a workspace incorrectly, or raced on the views). Covered in
// double and float, across batch sizes that exercise one-VDP, multi-VDP and
// multi-chunk slicing, and across the tentpole's headline shapes (64x16,
// 128x32) plus ragged odd shapes and wide (m < n) tiles.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "kernels/tile_kernels.hpp"
#include "vsaqr/qr_batch.hpp"

namespace pulsarqr {
namespace {

template <class T>
void fill_rng(MatrixViewT<T> a, std::uint64_t seed) {
  Rng rng(seed);
  for (int j = 0; j < a.cols; ++j) {
    for (int i = 0; i < a.rows; ++i) {
      a(i, j) = static_cast<T>(rng.next_symmetric());
    }
  }
}

template <class T>
bool bitwise_equal(const MatrixT<T>& a, const MatrixT<T>& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(T) * static_cast<std::size_t>(a.rows()) *
                         static_cast<std::size_t>(a.cols())) == 0;
}

struct Shape {
  int m, n;
};

/// Factor `batch` matrices of the given shapes (cycled) twice — once through
/// qr_batch, once sequentially through kernels::geqrt — and require bitwise
/// equality of both the factored tiles and the T factors.
template <class T>
void check_batch(int batch, std::span<const Shape> shapes, int ib,
                 const vsaqr::BatchOptions& opt_in) {
  SCOPED_TRACE(::testing::Message()
               << "batch=" << batch << " ib=" << ib
               << " workers=" << opt_in.workers_per_node
               << " chunk=" << opt_in.chunk);
  std::vector<MatrixT<T>> a_batch, t_batch, a_seq, t_seq;
  std::vector<MatrixViewT<T>> av, tv;
  a_batch.reserve(batch);
  for (int i = 0; i < batch; ++i) {
    const Shape s = shapes[static_cast<std::size_t>(i) % shapes.size()];
    const int k = std::min(s.m, s.n);
    a_batch.emplace_back(s.m, s.n);
    t_batch.emplace_back(std::min(ib, std::max(k, 1)), std::max(k, 1));
    fill_rng<T>(a_batch.back().view(), 0xb5ull * (i + 1));
    for (int j = 0; j < t_batch.back().cols(); ++j) {
      for (int r = 0; r < t_batch.back().rows(); ++r) {
        t_batch.back()(r, j) = T(0);
      }
    }
    a_seq.push_back(a_batch.back());
    t_seq.push_back(t_batch.back());
    av.push_back(a_batch.back().view());
    tv.push_back(t_batch.back().view());
  }

  vsaqr::BatchOptions opt = opt_in;
  opt.ib = ib;
  const vsaqr::BatchRun run = vsaqr::qr_batch(
      std::span<const MatrixViewT<T>>(av), std::span<const MatrixViewT<T>>(tv),
      opt);
  EXPECT_GT(run.vdp_count, 0);
  EXPECT_GE(run.chunks, run.vdp_count);
  EXPECT_EQ(run.stats.fires, run.chunks);

  kernels::Workspace ws;
  for (int i = 0; i < batch; ++i) {
    kernels::geqrt(a_seq[i].view(), ib, t_seq[i].view(), ws);
  }
  for (int i = 0; i < batch; ++i) {
    ASSERT_TRUE(bitwise_equal(a_batch[i], a_seq[i]))
        << "tile " << i << " differs from sequential geqrt";
    ASSERT_TRUE(bitwise_equal(t_batch[i], t_seq[i]))
        << "T factor " << i << " differs from sequential geqrt";
  }
}

const Shape kHeadline[] = {{64, 16}};
const Shape kMixed[] = {{64, 16}, {128, 32}, {13, 13}, {7, 19}, {33, 5},
                        {1, 1},   {2, 31}};

TEST(QrBatch, BitwiseEqualSingleMatrixF64) {
  check_batch<double>(1, kHeadline, 32, {});
}

TEST(QrBatch, BitwiseEqualHeadlineShapeF64) {
  vsaqr::BatchOptions opt;
  opt.workers_per_node = 2;
  check_batch<double>(96, kHeadline, 32, opt);
}

TEST(QrBatch, BitwiseEqualMixedShapesF64) {
  vsaqr::BatchOptions opt;
  opt.workers_per_node = 3;
  opt.chunk = 5;  // force many firings per VDP with ragged last chunks
  check_batch<double>(61, kMixed, 8, opt);
}

TEST(QrBatch, BitwiseEqualMoreVdpsThanMatricesF64) {
  vsaqr::BatchOptions opt;
  opt.workers_per_node = 8;  // nvdp must clamp to the batch size
  check_batch<double>(3, kMixed, 4, opt);
}

TEST(QrBatch, BitwiseEqualHeadlineShapeF32) {
  vsaqr::BatchOptions opt;
  opt.workers_per_node = 2;
  check_batch<float>(96, kHeadline, 32, opt);
}

TEST(QrBatch, BitwiseEqualMixedShapesF32) {
  vsaqr::BatchOptions opt;
  opt.workers_per_node = 2;
  opt.chunk = 3;
  check_batch<float>(40, kMixed, 8, opt);
}

TEST(QrBatch, EmptyBatchIsANoop) {
  const vsaqr::BatchRun run = vsaqr::qr_batch(
      std::span<const MatrixView>(), std::span<const MatrixView>(), {});
  EXPECT_EQ(run.vdp_count, 0);
  EXPECT_EQ(run.chunks, 0);
  EXPECT_EQ(run.stats.fires, 0);
  EXPECT_TRUE(run.matrix_seconds.empty());
}

TEST(QrBatch, RecordsPerMatrixLatency) {
  const int batch = 17;
  std::vector<Matrix> a, t;
  std::vector<MatrixView> av, tv;
  for (int i = 0; i < batch; ++i) {
    a.emplace_back(24, 8);
    t.emplace_back(8, 8);
    fill_random(a.back().view(), 1000 + i);
    av.push_back(a.back().view());
    tv.push_back(t.back().view());
  }
  vsaqr::BatchOptions opt;
  opt.ib = 8;
  opt.record_latency = true;
  const vsaqr::BatchRun run = vsaqr::qr_batch(
      std::span<const MatrixView>(av), std::span<const MatrixView>(tv), opt);
  ASSERT_EQ(run.matrix_seconds.size(), static_cast<std::size_t>(batch));
  for (double s : run.matrix_seconds) EXPECT_GE(s, 0.0);
}

TEST(QrBatch, RejectsMismatchedSpansAndSmallTFactors) {
  Matrix a(8, 4);
  Matrix t_ok(4, 4), t_small(4, 2);
  fill_random(a.view(), 7);
  const MatrixView av[] = {a.view()};
  const MatrixView tv_small[] = {t_small.view()};
  vsaqr::BatchOptions opt;
  opt.ib = 4;
  EXPECT_THROW(vsaqr::qr_batch(std::span<const MatrixView>(av),
                               std::span<const MatrixView>(), opt),
               Error);
  EXPECT_THROW(vsaqr::qr_batch(std::span<const MatrixView>(av),
                               std::span<const MatrixView>(tv_small), opt),
               Error);
}

}  // namespace
}  // namespace pulsarqr
