// The out-of-process transport backend: net::SocketComm over a Unix-
// domain socketpair mesh, and the Vsa fork-per-node run path on top of
// it. The unit tests drive two SocketComm instances inside one process
// (the mesh does not care which side of a socketpair lives where); the
// end-to-end tests fork real node processes through Vsa::run().
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "blas/blas.hpp"
#include "common/rng.hpp"
#include "prt/transport.hpp"
#include "prt/socket_comm.hpp"
#include "prt/vsa.hpp"
#include "ref/reference_qr.hpp"
#include "vsaqr/tree_qr.hpp"

namespace pulsarqr {
namespace {

using prt::Packet;
using prt::net::FaultPlan;
using prt::net::MailboxComm;
using prt::net::Message;
using prt::net::SocketComm;

/// A 2-rank mesh with both ends living in this test process.
struct Pair {
  std::unique_ptr<SocketComm> a;  // rank 0
  std::unique_ptr<SocketComm> b;  // rank 1
  Pair() {
    auto mesh = SocketComm::socketpair_mesh(2);
    a = std::make_unique<SocketComm>(2, 0, mesh[0]);
    b = std::make_unique<SocketComm>(2, 1, mesh[1]);
  }
};

TEST(SocketCommTest, FullMessageHeaderSurvivesTheWire) {
  Pair p;
  Packet payload = Packet::make(24, /*meta=*/0);
  for (int i = 0; i < 24; ++i) {
    payload.bytes()[i] = static_cast<std::byte>(i * 7);
  }
  p.a->isend(0, 1, /*tag=*/5, payload, /*meta=*/-3, /*seq=*/42, /*ack=*/7,
             /*is_ack=*/false);
  auto m = p.b->recv_wait(1, 2'000'000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->source, 0);
  EXPECT_EQ(m->tag, 5);
  EXPECT_EQ(m->meta, -3);
  EXPECT_EQ(m->seq, 42);
  EXPECT_EQ(m->ack, 7);
  EXPECT_FALSE(m->is_ack);
  EXPECT_EQ(m->epoch, 0u);  // first incarnation unless told otherwise
  ASSERT_EQ(prt::net::Comm::get_count(*m), 24u);
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(m->payload.bytes()[i], static_cast<std::byte>(i * 7));
  }
  EXPECT_EQ(p.a->messages_offered(), 1);
  EXPECT_EQ(p.a->messages_sent(), 1);
  EXPECT_EQ(p.a->bytes_sent(), 24);
}

TEST(SocketCommTest, EpochStampsEveryFrameIncludingSelfDelivery) {
  // Crash recovery fences stale frames by sender incarnation: every frame
  // a comm emits — wire and self-delivered alike — must carry its epoch.
  auto mesh = SocketComm::socketpair_mesh(2);
  SocketComm a(2, 0, mesh[0], /*epoch=*/3, {3, 0});
  SocketComm b(2, 1, mesh[1], /*epoch=*/0, {3, 0});
  a.isend(0, 1, 5, Packet::make(8), 1);
  auto m = b.recv_wait(1, 2'000'000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->epoch, 3u);
  a.isend(0, 0, 5, Packet::make(8), 2);
  auto s = a.try_recv(0);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->epoch, 3u);
  // The ctor-provided incarnation vector seeds the receiver-side fence.
  EXPECT_EQ(b.peer_epoch(0), 3u);
  EXPECT_EQ(a.peer_epoch(1), 0u);
}

TEST(SocketCommTest, SelfSendStaysLocal) {
  Pair p;
  p.a->isend(0, 0, 1, Packet::make(8), 11);
  auto m = p.a->try_recv(0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->meta, 11);
  // drain() empties the own mailbox in one call.
  p.a->isend(0, 0, 1, Packet::make(8), 12);
  p.a->isend(0, 0, 1, Packet::make(8), 13);
  auto all = p.a->drain(0);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].meta, 12);
  EXPECT_EQ(all[1].meta, 13);
}

TEST(SocketCommTest, StreamOrderIsPreservedPerPeer) {
  Pair p;
  for (int i = 0; i < 200; ++i) p.a->isend(0, 1, 2, Packet::make(8), i);
  for (int i = 0; i < 200; ++i) {
    auto m = p.b->recv_wait(1, 2'000'000);
    ASSERT_TRUE(m.has_value()) << "message " << i << " never arrived";
    EXPECT_EQ(m->meta, i);  // SOCK_STREAM + in-order parse
  }
}

TEST(SocketCommTest, InterruptWakesABlockedReceiver) {
  Pair p;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    auto m = p.b->recv_wait(1, 30'000'000);
    EXPECT_FALSE(m.has_value());  // interrupt, not a message
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  p.a->interrupt(1);  // remote interrupt travels as a control frame
  waiter.join();
  EXPECT_TRUE(woke.load());
  // Local interrupt latches even when nobody waits yet.
  p.b->interrupt(1);
  EXPECT_FALSE(p.b->recv_wait(1, 30'000'000).has_value());
}

TEST(SocketCommTest, BarrierSynchronizesAllRanks) {
  auto mesh = SocketComm::socketpair_mesh(3);
  std::vector<std::unique_ptr<SocketComm>> comms;
  for (int r = 0; r < 3; ++r) {
    comms.push_back(std::make_unique<SocketComm>(3, r, mesh[r]));
  }
  std::atomic<int> arrived{0};
  std::vector<std::thread> ts;
  for (int r = 0; r < 3; ++r) {
    ts.emplace_back([&, r] {
      for (int round = 0; round < 5; ++round) {
        arrived.fetch_add(1);
        comms[static_cast<std::size_t>(r)]->barrier();
        // After every barrier, all 3 * (round + 1) arrivals so far must
        // be visible to every rank.
        EXPECT_GE(arrived.load(), 3 * (round + 1));
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(arrived.load(), 15);
}

TEST(SocketCommTest, CancelLatchesOwnMailboxAgainstLateFrames) {
  Pair p;
  p.a->isend(0, 1, 0, Packet::make(8), 0);
  auto first = p.b->recv_wait(1, 2'000'000);
  ASSERT_TRUE(first.has_value());
  p.b->cancel(1);  // a rank cancels its own mailbox on shutdown
  p.a->isend(0, 1, 0, Packet::make(8), 1);  // late frame: must vanish
  EXPECT_FALSE(p.b->recv_wait(1, 50'000).has_value());
}

TEST(SocketCommTest, CancelLatchesDestinationOnTheSendSide) {
  Pair p;
  FaultPlan plan;
  plan.seed = 3;
  plan.delay = 1.0;  // everything goes through the sender-side limbo
  plan.delay_us = 1000;
  p.a->set_fault_plan(plan);
  p.a->isend(0, 1, 0, Packet::make(8), 0);
  p.a->cancel(1);  // clears the limbo AND latches dst 1
  for (int i = 1; i < 10; ++i) p.a->isend(0, 1, 0, Packet::make(8), i);
  // Nothing may ever reach rank 1 — not from limbo, not from new sends.
  EXPECT_FALSE(p.b->recv_wait(1, 20'000).has_value());
}

TEST(SocketCommTest, FaultScheduleMatchesTheInProcessBackend) {
  // Same seed, same (src, dst, tag) stream, same message indices: the
  // pure-hash oracle must replay the identical drop/dup schedule on both
  // backends, delivering the same meta sequence and counters.
  FaultPlan plan;
  plan.seed = 31;
  plan.drop = 0.25;
  plan.dup = 0.25;  // no delay/reorder: those depend on wall-clock timing

  MailboxComm mc(2);
  mc.set_fault_plan(plan);
  for (int i = 0; i < 300; ++i) mc.isend(0, 1, 4, Packet::make(8), i);
  std::vector<int> expect_metas;
  while (auto m = mc.try_recv(1)) expect_metas.push_back(m->meta);

  Pair p;
  p.a->set_fault_plan(plan);
  for (int i = 0; i < 300; ++i) p.a->isend(0, 1, 4, Packet::make(8), i);
  std::vector<int> metas;
  while (metas.size() < expect_metas.size()) {
    auto m = p.b->recv_wait(1, 2'000'000);
    ASSERT_TRUE(m.has_value()) << "socket backend lost scheduled messages";
    metas.push_back(m->meta);
  }
  EXPECT_FALSE(p.b->try_recv(1).has_value());
  EXPECT_EQ(metas, expect_metas);
  EXPECT_EQ(p.a->fault_counters().dropped, mc.fault_counters().dropped);
  EXPECT_EQ(p.a->fault_counters().duplicated, mc.fault_counters().duplicated);
  EXPECT_EQ(p.a->messages_sent(), mc.messages_sent());
  EXPECT_EQ(p.a->messages_offered(), mc.messages_offered());
}

// ---- end to end through Vsa::run() ------------------------------------------

vsaqr::TreeQrOptions socket_qr_options(int nodes, int workers) {
  vsaqr::TreeQrOptions opt;
  opt.tree = {plan::TreeKind::BinaryOnFlat, 2, plan::BoundaryMode::Shifted};
  opt.ib = 2;
  opt.nodes = nodes;
  opt.workers_per_node = workers;
  opt.watchdog_seconds = 60.0;
  opt.transport = prt::Transport::Socket;
  return opt;
}

TEST(SocketVsaTest, FactorizationMatchesTheReferenceBitwise) {
  Matrix a0(40, 10);
  fill_random(a0.view(), 17);
  const auto reference = ref::tree_qr(TileMatrix::from_dense(a0.view(), 5), 2,
                                      socket_qr_options(2, 2).tree);
  TileMatrix a = TileMatrix::from_dense(a0.view(), 5);
  auto run = vsaqr::tree_qr(a, socket_qr_options(2, 2));
  EXPECT_GT(run.stats.fires, 0);
  EXPECT_GT(run.stats.remote_messages, 0);
  // Clean fabric, no cancels: everything offered went out.
  EXPECT_EQ(run.stats.wire_messages, run.stats.wire_offered);
  EXPECT_EQ(run.stats.fault_streams, 0);
  EXPECT_EQ(run.stats.leftover_packets, 0);
  for (int j = 0; j < reference.a.cols(); ++j) {
    for (int i = 0; i < reference.a.rows(); ++i) {
      ASSERT_EQ(run.factors.a.at(i, j), reference.a.at(i, j))
          << "factors differ at (" << i << "," << j << ")";
    }
  }
}

TEST(SocketVsaTest, ThreeNodesWithReliableProtocolStayCorrect) {
  Matrix a0(48, 12);
  fill_random(a0.view(), 18);
  vsaqr::TreeQrOptions opt;
  opt.tree = {plan::TreeKind::Binary, 1, plan::BoundaryMode::Shifted};
  opt.ib = 3;
  opt.nodes = 3;
  opt.workers_per_node = 1;
  opt.watchdog_seconds = 60.0;
  opt.transport = prt::Transport::Socket;
  opt.reliable_transport = true;
  opt.retransmit_timeout_us = 60'000'000;  // clean fabric: never fires
  const auto reference =
      ref::tree_qr(TileMatrix::from_dense(a0.view(), 6), 3, opt.tree);
  TileMatrix a = TileMatrix::from_dense(a0.view(), 6);
  auto run = vsaqr::tree_qr(a, opt);
  EXPECT_EQ(run.stats.retransmits, 0);
  EXPECT_EQ(run.stats.faults.total(), 0);
  for (int j = 0; j < reference.a.cols(); ++j) {
    for (int i = 0; i < reference.a.rows(); ++i) {
      ASSERT_EQ(run.factors.a.at(i, j), reference.a.at(i, j))
          << "factors differ at (" << i << "," << j << ")";
    }
  }
}

TEST(SocketVsaTest, ExhaustedRetriesSurfaceTheChildRunReport) {
  // A fully lossy fabric fails in a CHILD process; the structured report
  // must travel back over the control socket and come out of the parent's
  // throw exactly like the in-process backend's.
  Matrix a0(40, 10);
  fill_random(a0.view(), 19);
  TileMatrix a = TileMatrix::from_dense(a0.view(), 5);
  auto opt = socket_qr_options(2, 2);
  opt.fault_plan.seed = 1;
  opt.fault_plan.drop = 1.0;
  opt.reliable_transport = true;
  opt.retransmit_timeout_us = 200;
  opt.max_retransmits = 3;
  try {
    vsaqr::tree_qr(a, opt);
    FAIL() << "a fully lossy link must fail the run";
  } catch (const prt::Vsa::RunError& e) {
    const auto& r = e.report();
    EXPECT_EQ(r.reason, "transport");
    EXPECT_GT(r.faults.dropped, 0);
    EXPECT_GT(r.retransmits, 0);
    ASSERT_FALSE(r.links.empty()) << "report must name the broken streams";
    bool named = false;
    for (const auto& g : r.links) {
      if (g.exhausted && !g.pending_tags.empty()) named = true;
    }
    EXPECT_TRUE(named);
    const std::string what = e.what();
    EXPECT_NE(what.find("RETRANSMITS_EXHAUSTED"), std::string::npos);
    EXPECT_NE(what.find("retransmit limit"), std::string::npos);
  }
}

TEST(SocketVsaTest, TraceMergesChildTimelinesIntoOneRecorder) {
  // Every node process records into its own Recorder; the 'E' epilogue
  // ships the events plus the child's clock epoch, and the parent
  // offset-aligns them onto its own timeline. The merged trace must
  // cover every child's lanes with sane, parent-relative timestamps.
  Matrix a0(40, 10);
  fill_random(a0.view(), 20);
  TileMatrix a = TileMatrix::from_dense(a0.view(), 5);
  auto opt = socket_qr_options(2, 2);
  opt.trace = true;
  auto run = vsaqr::tree_qr(a, opt);
  ASSERT_FALSE(run.events.empty());
  // Worker lanes are global thread ids; each node's proxy gets the lane
  // total_threads + node.
  const int lanes = opt.nodes * opt.workers_per_node + opt.nodes;
  std::set<int> seen;
  for (const auto& ev : run.events) {
    ASSERT_GE(ev.thread, 0);
    ASSERT_LT(ev.thread, lanes);
    ASSERT_LE(ev.t0, ev.t1);
    // Children start after the parent's clock: a negative t0 would mean
    // the offset alignment (child epoch - parent epoch) went wrong.
    ASSERT_GE(ev.t0, 0.0);
    seen.insert(ev.thread);
  }
  EXPECT_GT(seen.size(), 1u) << "trace covers only one lane";
  // One span per firing, at least (proxies may add more).
  EXPECT_GE(static_cast<long long>(run.events.size()), run.stats.fires);
}

TEST(SocketVsaTest, SolveRunsOverTheSocketBackend) {
  const int m = 40, n = 10, nrhs = 2;
  Matrix a0(m, n);
  fill_random_well_conditioned(a0.view(), 23);
  Matrix b(m, nrhs);
  fill_random(b.view(), 24);
  auto opt = socket_qr_options(2, 2);
  Matrix x = vsaqr::tree_qr_solve(TileMatrix::from_dense(a0.view(), 5),
                                  b.view(), opt);
  // Residual orthogonality: A^T (b - A x) ~ 0 for least squares.
  for (int r = 0; r < nrhs; ++r) {
    std::vector<double> rhs(m), xr(n);
    for (int i = 0; i < m; ++i) rhs[i] = b(i, r);
    for (int i = 0; i < n; ++i) xr[i] = x(i, r);
    std::vector<double> res = rhs;
    blas::gemv(blas::Trans::No, -1.0, a0.view(), xr.data(), 1.0, res.data());
    std::vector<double> atr(n, 0.0);
    blas::gemv(blas::Trans::Yes, 1.0, a0.view(), res.data(), 0.0, atr.data());
    EXPECT_LT(blas::nrm2(n, atr.data()), 1e-9 * m) << "rhs " << r;
  }
}

}  // namespace
}  // namespace pulsarqr
