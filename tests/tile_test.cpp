// Unit tests for the tile layout.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tile/tile_matrix.hpp"

namespace pulsarqr {
namespace {

TEST(TileMatrix, ExactMultipleShape) {
  TileMatrix t(12, 8, 4);
  EXPECT_EQ(t.mt(), 3);
  EXPECT_EQ(t.nt(), 2);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(t.tile_rows(i), 4);
  for (int j = 0; j < 2; ++j) EXPECT_EQ(t.tile_cols(j), 4);
}

TEST(TileMatrix, RaggedBorders) {
  TileMatrix t(10, 7, 4);
  EXPECT_EQ(t.mt(), 3);
  EXPECT_EQ(t.nt(), 2);
  EXPECT_EQ(t.tile_rows(2), 2);
  EXPECT_EQ(t.tile_cols(1), 3);
  auto v = t.tile(2, 1);
  EXPECT_EQ(v.rows, 2);
  EXPECT_EQ(v.cols, 3);
  EXPECT_EQ(v.ld, 2);
}

TEST(TileMatrix, RoundTripDense) {
  Matrix a(13, 9);
  fill_random(a.view(), 77);
  TileMatrix t = TileMatrix::from_dense(a.view(), 5);
  Matrix b = t.to_dense();
  for (int j = 0; j < 9; ++j) {
    for (int i = 0; i < 13; ++i) EXPECT_DOUBLE_EQ(a(i, j), b(i, j));
  }
}

TEST(TileMatrix, ElementAccessMatchesDense) {
  Matrix a(7, 6);
  fill_random(a.view(), 78);
  TileMatrix t = TileMatrix::from_dense(a.view(), 3);
  for (int j = 0; j < 6; ++j) {
    for (int i = 0; i < 7; ++i) EXPECT_DOUBLE_EQ(t.at(i, j), a(i, j));
  }
  t.at(6, 5) = 42.0;
  EXPECT_DOUBLE_EQ(t.tile(2, 1)(0, 2), 42.0);
}

TEST(TileMatrix, TilesAreContiguousColumnMajor) {
  TileMatrix t(6, 6, 3);
  t.at(4, 2) = 9.0;  // tile (1, 0), local (1, 2)
  const double* d = t.tile_data(1, 0);
  EXPECT_DOUBLE_EQ(d[1 + 2 * 3], 9.0);
}

TEST(TileMatrix, RejectsBadArgs) {
  EXPECT_THROW(TileMatrix(-1, 2, 3), Error);
  EXPECT_THROW(TileMatrix(2, 2, 0), Error);
}

}  // namespace
}  // namespace pulsarqr
