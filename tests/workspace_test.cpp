// Tests for the per-thread kernels::Workspace arena: allocation/rewind
// semantics, pointer stability across growth, zero heap allocation in the
// tile kernels once warm, and bit-identical kernel results when a workspace
// is reused across firings.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "kernels/tile_kernels.hpp"
#include "kernels/workspace.hpp"

namespace pulsarqr {
namespace {

using kernels::Workspace;
using kernels::WsFrame;

TEST(Workspace, FrameRewindReusesMemory) {
  Workspace ws;
  double* p0 = nullptr;
  {
    WsFrame frame(ws);
    p0 = ws.alloc(100);
    p0[0] = 1.0;
    p0[99] = 2.0;
  }
  const long long after_first = ws.chunk_allocations();
  {
    WsFrame frame(ws);
    double* p1 = ws.alloc(100);
    EXPECT_EQ(p0, p1);  // frame rewound: same storage handed out again
  }
  EXPECT_EQ(ws.chunk_allocations(), after_first);
}

TEST(Workspace, GrowthNeverMovesLiveAllocations) {
  Workspace ws;
  WsFrame frame(ws);
  double* small = ws.alloc(8);
  small[0] = 42.0;
  // Force several chunk growths while `small` stays live.
  std::vector<double*> ptrs;
  for (int i = 0; i < 6; ++i) {
    double* p = ws.alloc(1 << (14 + i));
    p[0] = static_cast<double>(i);
    ptrs.push_back(p);
  }
  EXPECT_DOUBLE_EQ(small[0], 42.0);
  for (int i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(ptrs[i][0], static_cast<double>(i));
  }
  EXPECT_GE(ws.chunk_allocations(), 2);
}

TEST(Workspace, EveryAllocationIs64ByteAligned) {
  // The SIMD kernels use aligned loads on workspace scratch; every pointer
  // the arena hands out — across odd request sizes, mark/rewind cycles and
  // chunk growth — must be 64-byte aligned.
  Workspace ws;
  auto aligned = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % Workspace::kAlign == 0;
  };
  {
    WsFrame frame(ws);
    // Odd sizes back to back: the bump pointer must re-align each time.
    for (std::size_t n : {1u, 3u, 7u, 9u, 63u, 65u, 100u, 1u}) {
      EXPECT_TRUE(aligned(ws.alloc(n))) << "n=" << n;
    }
    // Typed allocations (float path) share the same guarantee.
    EXPECT_TRUE(aligned(ws.alloc_as<float>(13)));
    EXPECT_TRUE(aligned(ws.alloc_as<float>(1)));
    EXPECT_TRUE(aligned(ws.matrix_as<float>(5, 7).data));
  }
  // After rewind, the re-handed pointers are aligned too.
  {
    WsFrame frame(ws);
    EXPECT_TRUE(aligned(ws.alloc(5)));
  }
  // Force chunk growth with live odd-sized allocations in between; the new
  // chunks' bases (fresh aligned allocations) must also be aligned.
  WsFrame frame(ws);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(aligned(ws.alloc(17)));
    EXPECT_TRUE(aligned(ws.alloc(1 << (14 + i))));
  }
  EXPECT_GE(ws.chunk_allocations(), 2);
}

TEST(Workspace, MatrixViewShape) {
  Workspace ws;
  WsFrame frame(ws);
  MatrixView m = ws.matrix(5, 7);
  EXPECT_EQ(m.rows, 5);
  EXPECT_EQ(m.cols, 7);
  EXPECT_EQ(m.ld, 5);
  blas::laset_all(0.0, 1.0, m);
  EXPECT_DOUBLE_EQ(m(3, 3), 1.0);
}

// Run all six tile kernels once against fixed inputs using `ws` for
// scratch; returns the concatenated outputs for bitwise comparison.
std::vector<double> run_all_kernels(Workspace& ws) {
  const int nb = 40;
  const int ib = 8;
  Matrix a(nb, nb), t(ib, nb);
  fill_random(a.view(), 11);
  kernels::geqrt(a.view(), ib, t.view(), ws);

  Matrix c(nb, nb);
  fill_random(c.view(), 12);
  kernels::ormqr(blas::Trans::Yes, a.view(), t.view(), ib, c.view(), ws);

  Matrix a2(nb, nb), t2(ib, nb);
  fill_random(a2.view(), 13);
  kernels::tsqrt(a.view(), a2.view(), ib, t2.view(), ws);

  Matrix c2(nb, nb);
  fill_random(c2.view(), 14);
  kernels::tsmqr(blas::Trans::Yes, a2.view(), t2.view(), ib, c.view(),
                 c2.view(), ws);

  Matrix a3(nb, nb), t3(ib, nb);
  fill_random(a3.view(), 15);
  kernels::ttqrt(a.view(), a3.view(), ib, t3.view(), ws);

  Matrix c3(nb, nb);
  fill_random(c3.view(), 16);
  kernels::ttmqr(blas::Trans::Yes, a3.view(), t3.view(), ib, c.view(),
                 c3.view(), ws);

  std::vector<double> out;
  for (const Matrix* m : {&a, &t, &c, &a2, &t2, &c2, &a3, &t3, &c3}) {
    out.insert(out.end(), m->data(), m->data() + m->rows() * m->cols());
  }
  return out;
}

TEST(Workspace, KernelResultsBitIdenticalOnReuse) {
  Workspace reused;
  const std::vector<double> first = run_all_kernels(reused);
  const std::vector<double> second = run_all_kernels(reused);
  Workspace fresh;
  const std::vector<double> third = run_all_kernels(fresh);
  ASSERT_EQ(first.size(), second.size());
  ASSERT_EQ(first.size(), third.size());
  EXPECT_EQ(0, std::memcmp(first.data(), second.data(),
                           first.size() * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(first.data(), third.data(),
                           first.size() * sizeof(double)));
}

TEST(Workspace, ZeroAllocationsInSteadyState) {
  Workspace ws;
  run_all_kernels(ws);  // warm-up sizes the arena
  const long long warm = ws.chunk_allocations();
  for (int i = 0; i < 10; ++i) run_all_kernels(ws);
  EXPECT_EQ(ws.chunk_allocations(), warm)
      << "tile kernels allocated per firing after warm-up";
}

TEST(Workspace, TlsWorkspaceSteadyState) {
  // The convenience overloads route through the calling thread's arena;
  // after a warm-up pass they must also stop allocating.
  Workspace& ws = kernels::tls_workspace();
  const int nb = 32;
  const int ib = 8;
  Matrix a(nb, nb), t(ib, nb);
  fill_random(a.view(), 21);
  kernels::geqrt(a.view(), ib, t.view());
  const long long warm = ws.chunk_allocations();
  for (int i = 0; i < 5; ++i) {
    fill_random(a.view(), 21);
    kernels::geqrt(a.view(), ib, t.view());
  }
  EXPECT_EQ(ws.chunk_allocations(), warm);
}

}  // namespace
}  // namespace pulsarqr
