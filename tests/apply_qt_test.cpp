// Tests for Q^T application on the systolic array (vsaqr::apply_qt):
// must match the host-side sequential application bitwise, across trees,
// boundary modes, topologies and B shapes.
#include <gtest/gtest.h>

#include "blas/blas.hpp"
#include "common/rng.hpp"
#include "ref/apply_q.hpp"
#include "vsaqr/tree_qr.hpp"

namespace pulsarqr {
namespace {

using plan::BoundaryMode;
using plan::PlanConfig;
using plan::TreeKind;

struct ApplyCase {
  int m, n, nb, ib, nrhs;
  PlanConfig cfg;
  int nodes, workers;
  bool stealing;
};

class ApplyQtParam : public ::testing::TestWithParam<ApplyCase> {};

TEST_P(ApplyQtParam, BitwiseMatchesHostApply) {
  const ApplyCase& c = GetParam();
  Matrix a0(c.m, c.n);
  fill_random(a0.view(), 600 + c.m + c.n);
  Matrix b0(c.m, c.nrhs);
  fill_random(b0.view(), 601 + c.nrhs);

  // Factorize on the host reference (any path works; factors are factors).
  auto factors =
      ref::tree_qr(TileMatrix::from_dense(a0.view(), c.nb), c.ib, c.cfg);

  // Host-side application (ground truth).
  TileMatrix expect = TileMatrix::from_dense(b0.view(), c.nb);
  ref::apply_q(blas::Trans::Yes, factors, expect);

  // Array-side application.
  vsaqr::TreeQrOptions opt;
  opt.tree = c.cfg;
  opt.ib = c.ib;
  opt.nodes = c.nodes;
  opt.workers_per_node = c.workers;
  opt.work_stealing = c.stealing;
  opt.watchdog_seconds = 20.0;
  TileMatrix got =
      vsaqr::apply_qt(factors, TileMatrix::from_dense(b0.view(), c.nb), opt);

  ASSERT_EQ(got.rows(), c.m);
  ASSERT_EQ(got.cols(), c.nrhs);
  for (int j = 0; j < c.nrhs; ++j) {
    for (int i = 0; i < c.m; ++i) {
      ASSERT_EQ(got.at(i, j), expect.at(i, j))
          << "Q^T B differs at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApplyQtParam,
    ::testing::Values(
        ApplyCase{40, 10, 5, 2, 3,
                  {TreeKind::BinaryOnFlat, 2, BoundaryMode::Shifted}, 1, 2,
                  false},
        ApplyCase{40, 10, 5, 2, 3,
                  {TreeKind::BinaryOnFlat, 3, BoundaryMode::Fixed}, 2, 2,
                  false},
        ApplyCase{40, 10, 5, 2, 1, {TreeKind::Flat, 1, BoundaryMode::Shifted},
                  2, 2, false},
        ApplyCase{40, 10, 5, 2, 7,
                  {TreeKind::Binary, 1, BoundaryMode::Shifted}, 2, 2, false},
        ApplyCase{33, 9, 5, 3, 4,
                  {TreeKind::BinaryOnFlat, 2, BoundaryMode::Shifted}, 2, 2,
                  false},  // ragged A and B columns
        ApplyCase{64, 8, 8, 4, 2,
                  {TreeKind::BinaryOnFlat, 2, BoundaryMode::Shifted}, 3, 2,
                  true},  // work stealing
        ApplyCase{24, 24, 6, 3, 5,
                  {TreeKind::BinaryOnFlat, 2, BoundaryMode::Shifted}, 2, 2,
                  false}  // square A
        ));

// Factor once, stream several independent RHS batches through apply
// arrays, solve each: the "factor once, solve many" workflow.
TEST(ApplyQt, FactorOnceSolveMany) {
  const int m = 60;
  const int n = 12;
  const int nb = 6;
  Matrix a0(m, n);
  fill_random_well_conditioned(a0.view(), 71);
  auto factors = ref::tree_qr(
      TileMatrix::from_dense(a0.view(), nb), 3,
      {TreeKind::BinaryOnFlat, 3, BoundaryMode::Shifted});
  Matrix r = ref::extract_r(factors);

  vsaqr::TreeQrOptions opt;
  opt.nodes = 2;
  for (int batch = 0; batch < 3; ++batch) {
    Matrix b(m, 2);
    fill_random(b.view(), 900 + batch);
    TileMatrix qtb = vsaqr::apply_qt(
        factors, TileMatrix::from_dense(b.view(), nb), opt);
    // x = R^{-1} (Q^T b)(0:n) per column; check normal-equation residual.
    for (int c = 0; c < 2; ++c) {
      std::vector<double> x(n);
      for (int i = 0; i < n; ++i) x[i] = qtb.at(i, c);
      blas::trsv(blas::Uplo::Upper, blas::Trans::No, blas::Diag::NonUnit,
                 r.view(), x.data());
      std::vector<double> res(m);
      for (int i = 0; i < m; ++i) res[i] = b(i, c);
      blas::gemv(blas::Trans::No, -1.0, a0.view(), x.data(), 1.0, res.data());
      std::vector<double> atr(n, 0.0);
      blas::gemv(blas::Trans::Yes, 1.0, a0.view(), res.data(), 0.0,
                 atr.data());
      EXPECT_LT(blas::nrm2(n, atr.data()), 1e-10);
    }
  }
}

// The two array-solve paths must agree: factorizing [A | B] with a
// panel-limited plan and factorizing A then streaming B through apply_qt
// compute the same Q^T B with the same kernels.
TEST(ApplyQt, ConsistentWithAugmentedSolve) {
  const int m = 40;
  const int n = 10;
  const int nb = 5;
  const int nrhs = 3;
  Matrix a0(m, n);
  fill_random_well_conditioned(a0.view(), 314);
  Matrix b0(m, nrhs);
  fill_random(b0.view(), 315);
  const PlanConfig cfg{TreeKind::BinaryOnFlat, 2, BoundaryMode::Shifted};

  vsaqr::TreeQrOptions opt;
  opt.tree = cfg;
  opt.ib = 2;
  opt.nodes = 2;
  Matrix x_aug = vsaqr::tree_qr_solve(TileMatrix::from_dense(a0.view(), nb),
                                      b0.view(), opt);

  auto factors = ref::tree_qr(TileMatrix::from_dense(a0.view(), nb), 2, cfg);
  TileMatrix qtb =
      vsaqr::apply_qt(factors, TileMatrix::from_dense(b0.view(), nb), opt);
  Matrix r = ref::extract_r(factors);
  Matrix x_apply(n, nrhs);
  for (int j = 0; j < nrhs; ++j) {
    for (int i = 0; i < n; ++i) x_apply(i, j) = qtb.at(i, j);
  }
  blas::trsm(blas::Side::Left, blas::Uplo::Upper, blas::Trans::No,
             blas::Diag::NonUnit, 1.0, r.view(), x_apply.view());
  for (int j = 0; j < nrhs; ++j) {
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(x_apply(i, j), x_aug(i, j),
                  1e-12 * (1.0 + std::abs(x_aug(i, j))));
    }
  }
}

TEST(ApplyQt, RejectsMismatchedB) {
  Matrix a0(20, 8);
  fill_random(a0.view(), 1);
  auto factors = ref::tree_qr(TileMatrix::from_dense(a0.view(), 4), 2,
                              {TreeKind::Flat, 1, BoundaryMode::Shifted});
  vsaqr::TreeQrOptions opt;
  TileMatrix wrong_rows(16, 2, 4);
  EXPECT_THROW(vsaqr::apply_qt(factors, wrong_rows, opt), Error);
  TileMatrix wrong_nb(20, 2, 5);
  EXPECT_THROW(vsaqr::apply_qt(factors, wrong_nb, opt), Error);
}

}  // namespace
}  // namespace pulsarqr
