// prt::verify — bounded model checking of the Reliable ack/retransmit
// protocol. The headline test exhaustively enumerates every
// send/deliver/drop/duplicate/reorder/timeout interleaving of a 3-frame
// window under a 2-fault budget and asserts exactly-once in-order
// delivery and livelock freedom on every reachable state. The negative
// tests prove the assertions are not vacuous: with timeout recovery
// disabled, the checker must find and reproduce the lost-data execution.
#include <gtest/gtest.h>

#include <string>

#include "prt/verify.hpp"

namespace pulsarqr::prt::verify {
namespace {

TEST(ReliableModel, ExhaustiveWindow3Faults2) {
  ReliableModelOptions opt;  // window 3, 2 faults: the acceptance bound
  const ReliableModelResult res = check_reliable(opt);
  EXPECT_TRUE(res.ok()) << res.to_string();
  EXPECT_FALSE(res.truncated);
  EXPECT_TRUE(res.violations.empty()) << res.to_string();
  // Exhaustiveness sanity: the fault budget must actually widen the
  // space well past the fault-free protocol skeleton.
  EXPECT_GT(res.states, 2000) << res.to_string();
  EXPECT_GE(res.executions, 1);
  EXPECT_GT(res.depth, 10);
}

TEST(ReliableModel, FaultFreeSkeleton) {
  ReliableModelOptions opt;
  opt.max_faults = 0;
  const ReliableModelResult res = check_reliable(opt);
  EXPECT_TRUE(res.ok()) << res.to_string();
  // Without faults nothing ever times out, so no tick appears and every
  // execution converges to the one fully-acked quiescent state.
  EXPECT_EQ(res.executions, 1) << res.to_string();
  EXPECT_LT(res.states, 200);
}

TEST(ReliableModel, DeepFaultBudgetOnSmallWindow) {
  ReliableModelOptions opt;
  opt.window = 2;
  opt.max_faults = 3;  // triple faults: drop the frame, its retransmit...
  const ReliableModelResult res = check_reliable(opt);
  EXPECT_TRUE(res.ok()) << res.to_string();
  EXPECT_GT(res.states, 1000) << res.to_string();
}

TEST(ReliableModel, RecoversFromEveryDropWithinTickBudget) {
  // Worst case for one frame: the original and every retransmission but
  // the last are dropped. The default tick budget (max_faults + 2) must
  // still deliver.
  ReliableModelOptions opt;
  opt.window = 1;
  opt.max_faults = 2;
  const ReliableModelResult res = check_reliable(opt);
  EXPECT_TRUE(res.ok()) << res.to_string();
}

TEST(ReliableModel, DetectsLostDataWithoutTimeoutRecovery) {
  // Positive control: forbid timeout recovery and the checker must find
  // the execution where a dropped frame is simply gone.
  ReliableModelOptions opt;
  opt.window = 2;
  opt.max_faults = 1;
  opt.max_ticks = 0;
  const ReliableModelResult res = check_reliable(opt);
  EXPECT_FALSE(res.ok());
  ASSERT_FALSE(res.violations.empty());
  bool lost = false;
  bool reproducible = false;
  for (const std::string& v : res.violations) {
    if (v.find("lost data") != std::string::npos) lost = true;
    if (v.find("drop(data@") != std::string::npos) reproducible = true;
  }
  EXPECT_TRUE(lost) << res.to_string();
  // Every counterexample names the exact action path that reproduces it.
  EXPECT_TRUE(reproducible) << res.to_string();
}

TEST(ReliableModel, StateValveReportsTruncation) {
  ReliableModelOptions opt;
  opt.max_states = 10;
  const ReliableModelResult res = check_reliable(opt);
  EXPECT_TRUE(res.truncated);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.to_string().find("TRUNCATED"), std::string::npos);
}

TEST(ReliableModel, ResultRenderingNamesTheContract) {
  const ReliableModelResult res = check_reliable({});
  const std::string s = res.to_string();
  EXPECT_NE(s.find("states"), std::string::npos);
  EXPECT_NE(s.find("in-order delivery"), std::string::npos);
}

}  // namespace
}  // namespace pulsarqr::prt::verify
