// Chaos-engineering tests for the PRT transport: deterministic fault
// injection (net::FaultPlan), the ack/retransmit reliable-delivery
// protocol (net::Reliable), and the graceful-failure path
// (Vsa::RunError + RunReport).
//
// The soak test at the bottom runs the full tree QR under many seeded
// fault schedules and verifies each run bit-for-bit against the
// sequential reference plus ||A - QR|| / orthogonality residuals. The
// schedule count defaults to 102 (>= the 100 the acceptance criteria
// ask for); set PQR_CHAOS_SCHEDULES to shrink it for smoke/TSan runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <vector>

#include "blas/blas.hpp"
#include "common/rng.hpp"
#include "prt/transport.hpp"
#include "prt/vsa.hpp"
#include "ref/apply_q.hpp"
#include "ref/reference_qr.hpp"
#include "vsaqr/tree_qr.hpp"

namespace pulsarqr {
namespace {

using prt::Packet;
using Comm = prt::net::MailboxComm;
using prt::net::FaultPlan;
using prt::net::Message;
using prt::net::Reliable;
using Clock = std::chrono::steady_clock;
using std::chrono::microseconds;

// ---- FaultPlan determinism --------------------------------------------------

TEST(FaultPlanTest, SameSeedReplaysTheSameSchedule) {
  auto run = [](std::uint64_t seed) {
    Comm comm(2);
    FaultPlan plan;
    plan.seed = seed;
    plan.drop = 0.2;
    plan.dup = 0.2;
    comm.set_fault_plan(plan);
    for (int i = 0; i < 200; ++i) comm.isend(0, 1, 3, Packet::make(8), i);
    std::vector<int> metas;
    while (auto m = comm.try_recv(1)) metas.push_back(m->meta);
    return std::make_pair(metas, comm.fault_counters());
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second.dropped, b.second.dropped);
  EXPECT_EQ(a.second.duplicated, b.second.duplicated);
  EXPECT_NE(a.first, c.first) << "different seeds produced identical faults";
  // The plan actually did something on this schedule.
  EXPECT_GT(a.second.dropped, 0);
  EXPECT_GT(a.second.duplicated, 0);
}

TEST(FaultPlanTest, DroppedMessagesVanishAndAreCounted) {
  Comm comm(2);
  FaultPlan plan;
  plan.seed = 7;
  plan.drop = 1.0;
  comm.set_fault_plan(plan);
  for (int i = 0; i < 10; ++i) comm.isend(0, 1, 0, Packet::make(8), i);
  EXPECT_FALSE(comm.try_recv(1).has_value());
  EXPECT_EQ(comm.fault_counters().dropped, 10);
  // Accounting contract: offered counts the caller's isends; sent counts
  // what actually reached a mailbox. A dropped message was offered but
  // never sent — the old code counted it as sent and broke the invariant.
  EXPECT_EQ(comm.messages_offered(), 10);
  EXPECT_EQ(comm.messages_sent(), 0);
  EXPECT_EQ(comm.bytes_sent(), 0);
}

TEST(FaultPlanTest, AccountingInvariantHoldsUnderMixedFaults) {
  Comm comm(2);
  FaultPlan plan;
  plan.seed = 99;
  plan.drop = 0.2;
  plan.dup = 0.2;
  plan.delay = 0.2;
  plan.reorder = 0.2;
  plan.delay_us = 100;
  comm.set_fault_plan(plan);
  for (int i = 0; i < 300; ++i) comm.isend(0, 1, 4, Packet::make(8), i);
  // Drain everything (late limbo releases included).
  int received = 0;
  while (comm.recv_wait(1, 50'000).has_value()) ++received;
  const auto f = comm.fault_counters();
  EXPECT_EQ(comm.messages_offered(), 300);
  EXPECT_EQ(comm.messages_sent(), 300 - f.dropped + f.duplicated);
  EXPECT_EQ(received, comm.messages_sent());
  EXPECT_GT(comm.fault_streams(), 0u);  // one (src,dst,tag) stream used
}

TEST(FaultPlanTest, StreamIndexStateResetsOnPlanInstall) {
  // Installing a plan resets the per-stream fault indices, so the same
  // plan replays the same schedule on a reused communicator instead of
  // continuing (and growing) the previous run's stream counters.
  Comm comm(2);
  FaultPlan plan;
  plan.seed = 5;
  plan.drop = 0.3;
  auto play = [&] {
    comm.set_fault_plan(plan);
    std::vector<int> metas;
    for (int i = 0; i < 100; ++i) comm.isend(0, 1, 6, Packet::make(8), i);
    while (auto m = comm.try_recv(1)) metas.push_back(m->meta);
    return metas;
  };
  const auto first = play();
  EXPECT_EQ(comm.fault_streams(), 1u);
  const auto second = play();
  EXPECT_EQ(first, second) << "reinstalling the plan must replay it";
  EXPECT_EQ(comm.fault_streams(), 1u) << "stream state must not accumulate";
}

TEST(FaultPlanTest, CancelLatchesAgainstLimboReinsertion) {
  // Regression: cancel(rank) used to clear the mailbox and limbo once,
  // but a concurrent (or later) isend whose fault fate was delay/reorder
  // would re-insert into limbo and eventually re-fill the cancelled
  // mailbox. The latch must make every later send to the rank a no-op.
  Comm comm(2);
  FaultPlan plan;
  plan.seed = 3;
  plan.delay = 1.0;  // every message goes through limbo
  plan.delay_us = 1000;
  comm.set_fault_plan(plan);
  comm.isend(0, 1, 0, Packet::make(8), 0);
  comm.cancel(1);
  for (int i = 1; i < 20; ++i) comm.isend(0, 1, 0, Packet::make(8), i);
  EXPECT_FALSE(comm.recv_wait(1, 20'000).has_value())
      << "a cancelled rank received a message from limbo";
  // Only the pre-cancel send was counted (at fate time, before the cancel
  // discarded it from limbo — the documented cancel exception to the
  // accounting invariant); the 19 post-cancel sends hit the latch.
  EXPECT_EQ(comm.messages_offered(), 20);
  EXPECT_EQ(comm.messages_sent(), 1);
}

TEST(FaultPlanTest, DelayedMessagesArriveWithinTheBound) {
  Comm comm(2);
  FaultPlan plan;
  plan.seed = 7;
  plan.delay = 1.0;
  plan.delay_us = 2000;
  comm.set_fault_plan(plan);
  for (int i = 0; i < 5; ++i) comm.isend(0, 1, 0, Packet::make(8), i);
  // Every message is in limbo, but recv_wait caps its sleep at the next
  // pending release, so each arrives well before the 5 s timeout.
  for (int i = 0; i < 5; ++i) {
    auto m = comm.recv_wait(1, 5'000'000);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->meta, i);  // same-fate messages keep their order
  }
  EXPECT_EQ(comm.fault_counters().delayed, 5);
}

TEST(FaultPlanTest, ReorderDeliversALaterMessageFirst) {
  // A reorder-held message is released right after the NEXT message to
  // the rank lands — producing a genuine inversion. The hold time bound
  // is huge so only the after-next mechanism can release it here.
  bool saw_inversion = false;
  for (std::uint64_t seed = 0; seed < 64 && !saw_inversion; ++seed) {
    Comm comm(2);
    FaultPlan plan;
    plan.seed = seed;
    plan.reorder = 0.5;
    plan.delay_us = 60'000'000;
    comm.set_fault_plan(plan);
    for (int i = 0; i < 20; ++i) comm.isend(0, 1, 0, Packet::make(8), i);
    std::vector<int> metas;
    while (auto m = comm.try_recv(1)) metas.push_back(m->meta);
    if (!std::is_sorted(metas.begin(), metas.end())) saw_inversion = true;
  }
  EXPECT_TRUE(saw_inversion);
}

// ---- Reliable protocol unit tests ------------------------------------------

Reliable::Params slow_params() {
  Reliable::Params p;
  p.rto_us = 60'000'000;  // no spurious retransmits inside a unit test
  return p;
}

TEST(ReliableTest, InOrderDeliveryAndCumulativeAck) {
  Comm comm(2);
  Reliable a(comm, 0, slow_params());
  Reliable b(comm, 1, slow_params());
  a.send(1, 3, Packet::make(8), 11);
  a.send(1, 3, Packet::make(8), 22);
  std::deque<Message> inbox;
  while (auto m = comm.try_recv(1)) b.on_receive(std::move(*m), inbox);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(inbox[0].meta, 11);
  EXPECT_EQ(inbox[1].meta, 22);
  EXPECT_EQ(inbox[0].seq, 0);
  EXPECT_EQ(inbox[1].seq, 1);
  b.flush_acks();
  EXPECT_EQ(b.acks_sent(), 1);  // one cumulative ack covers both frames
  std::deque<Message> back;
  while (auto m = comm.try_recv(0)) a.on_receive(std::move(*m), back);
  EXPECT_TRUE(back.empty());  // pure acks are consumed, not delivered
  // Everything acked: nothing to retransmit even in the far future.
  EXPECT_TRUE(a.poll(Clock::now() + std::chrono::hours(1)));
  EXPECT_EQ(a.retransmits(), 0);
}

TEST(ReliableTest, DuplicateIsSuppressedAndReAcked) {
  Comm comm(2);
  Reliable a(comm, 0, slow_params());
  Reliable b(comm, 1, slow_params());
  a.send(1, 5, Packet::make(8), 1);
  auto frame = comm.try_recv(1);
  ASSERT_TRUE(frame.has_value());
  Message dup = *frame;
  dup.payload = frame->payload.clone();
  std::deque<Message> inbox;
  b.on_receive(std::move(*frame), inbox);
  ASSERT_EQ(inbox.size(), 1u);
  b.flush_acks();
  EXPECT_EQ(b.acks_sent(), 1);
  // The duplicate (e.g. a retransmission racing the ack) is dropped, but
  // it re-arms the ack: staying silent would leave a sender whose ack was
  // lost retransmitting forever.
  b.on_receive(std::move(dup), inbox);
  EXPECT_EQ(inbox.size(), 1u);
  EXPECT_EQ(b.duplicates_suppressed(), 1);
  b.flush_acks();
  EXPECT_EQ(b.acks_sent(), 2);
}

TEST(ReliableTest, OutOfOrderFramesAreReassembled) {
  Comm comm(2);
  Reliable a(comm, 0, slow_params());
  Reliable b(comm, 1, slow_params());
  for (int i = 0; i < 3; ++i) a.send(1, 2, Packet::make(8), 100 + i);
  std::vector<Message> frames;
  while (auto m = comm.try_recv(1)) frames.push_back(std::move(*m));
  ASSERT_EQ(frames.size(), 3u);
  std::deque<Message> inbox;
  b.on_receive(std::move(frames[2]), inbox);  // future frame: buffered
  EXPECT_TRUE(inbox.empty());
  b.on_receive(std::move(frames[0]), inbox);  // head of line
  EXPECT_EQ(inbox.size(), 1u);
  b.on_receive(std::move(frames[1]), inbox);  // fills the gap: 1 then 2
  ASSERT_EQ(inbox.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(inbox[static_cast<std::size_t>(i)].meta, 100 + i);
  }
}

TEST(ReliableTest, RetransmitBackoffIsExponential) {
  Comm comm(2);
  Reliable::Params prm;
  prm.rto_us = 1000;
  prm.backoff = 2.0;
  prm.max_retries = 10;
  Reliable a(comm, 0, prm);
  std::vector<long long> hook_seqs;
  a.set_retransmit_hook(
      [&](int dst, int tag, long long seq) {
        EXPECT_EQ(dst, 1);
        EXPECT_EQ(tag, 9);
        hook_seqs.push_back(seq);
      });
  a.send(1, 9, Packet::make(8), 0);
  (void)comm.try_recv(1);  // the wire eats the frame; no ack ever comes
  // Synthetic clock: `base` is past the initial deadline, then each step
  // checks the doubled timeout (1000 -> 2000 -> 4000 us).
  const auto base = Clock::now() + std::chrono::seconds(1);
  EXPECT_TRUE(a.poll(base));
  EXPECT_EQ(a.retransmits(), 1);
  EXPECT_TRUE(a.poll(base + microseconds(1000)));  // rto doubled: not due
  EXPECT_EQ(a.retransmits(), 1);
  EXPECT_TRUE(a.poll(base + microseconds(2000)));
  EXPECT_EQ(a.retransmits(), 2);
  EXPECT_TRUE(a.poll(base + microseconds(5000)));  // rto now 4000: not due
  EXPECT_EQ(a.retransmits(), 2);
  EXPECT_TRUE(a.poll(base + microseconds(6000)));
  EXPECT_EQ(a.retransmits(), 3);
  EXPECT_EQ(hook_seqs, (std::vector<long long>{0, 0, 0}));
  // Each retransmission put a real frame on the wire, same sequence.
  int copies = 0;
  while (auto m = comm.try_recv(1)) {
    EXPECT_EQ(m->seq, 0);
    ++copies;
  }
  EXPECT_EQ(copies, 3);
}

TEST(ReliableTest, ExhaustedRetriesFailTheLinkAndNameTheStream) {
  Comm comm(2);
  Reliable::Params prm;
  prm.rto_us = 100;
  prm.max_retries = 3;
  Reliable a(comm, 0, prm);
  a.send(1, 7, Packet::make(8), 0);
  auto t = Clock::now() + std::chrono::seconds(1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(a.poll(t));
    t += std::chrono::seconds(1);  // every deadline long expired
  }
  EXPECT_EQ(a.retransmits(), 3);
  EXPECT_FALSE(a.poll(t));  // cap hit: the link is declared failed
  EXPECT_TRUE(a.failed());
  EXPECT_FALSE(a.poll(t + std::chrono::seconds(1)));  // and stays failed
  EXPECT_EQ(a.retransmits(), 3);  // no further retransmissions
  const auto gaps = a.gaps();
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].src, 0);
  EXPECT_EQ(gaps[0].dst, 1);
  EXPECT_TRUE(gaps[0].exhausted);
  EXPECT_EQ(gaps[0].unacked, 1);
  ASSERT_EQ(gaps[0].pending_tags.size(), 1u);
  EXPECT_EQ(gaps[0].pending_tags[0], 7);
  const std::string s = gaps[0].to_string();
  EXPECT_NE(s.find("link 0->1"), std::string::npos);
  EXPECT_NE(s.find("RETRANSMITS_EXHAUSTED"), std::string::npos);
  EXPECT_NE(s.find("tags=[7]"), std::string::npos);
}

// ---- graceful failure through Vsa::run() ------------------------------------

vsaqr::TreeQrOptions chaos_qr_options(int nodes, int workers) {
  vsaqr::TreeQrOptions opt;
  opt.tree = {plan::TreeKind::BinaryOnFlat, 2, plan::BoundaryMode::Shifted};
  opt.ib = 2;
  opt.nodes = nodes;
  opt.workers_per_node = workers;
  opt.watchdog_seconds = 30.0;
  return opt;
}

TEST(ChaosTest, ExhaustedRetriesProduceStructuredRunReport) {
  Matrix a0(40, 10);
  fill_random(a0.view(), 11);
  TileMatrix a = TileMatrix::from_dense(a0.view(), 5);
  auto opt = chaos_qr_options(2, 2);
  opt.fault_plan.seed = 1;
  opt.fault_plan.drop = 1.0;  // the fabric eats everything, acks included
  opt.reliable_transport = true;
  opt.retransmit_timeout_us = 200;
  opt.max_retransmits = 3;
  try {
    vsaqr::tree_qr(a, opt);
    FAIL() << "a fully lossy link must fail the run";
  } catch (const prt::Vsa::RunError& e) {
    const auto& r = e.report();
    EXPECT_EQ(r.reason, "transport");
    EXPECT_GT(r.vdps_alive, 0);
    EXPECT_FALSE(r.stuck_vdps.empty());
    EXPECT_GT(r.faults.dropped, 0);
    EXPECT_GT(r.retransmits, 0);
    ASSERT_FALSE(r.links.empty()) << "report must name the broken streams";
    bool named = false;
    for (const auto& g : r.links) {
      if (g.exhausted && !g.pending_tags.empty()) named = true;
    }
    EXPECT_TRUE(named);
    const std::string what = e.what();
    EXPECT_NE(what.find("RETRANSMITS_EXHAUSTED"), std::string::npos);
    EXPECT_NE(what.find("retransmit limit"), std::string::npos);
    EXPECT_NE(what.find("VDPs still alive"), std::string::npos);
  }
}

TEST(ChaosTest, LossWithoutReliableTripsWatchdogWithFaultCounters) {
  Matrix a0(40, 10);
  fill_random(a0.view(), 12);
  TileMatrix a = TileMatrix::from_dense(a0.view(), 5);
  auto opt = chaos_qr_options(2, 2);
  opt.fault_plan.seed = 2;
  opt.fault_plan.drop = 1.0;
  opt.reliable_transport = false;  // nothing repairs the losses
  opt.watchdog_seconds = 0.5;
  try {
    vsaqr::tree_qr(a, opt);
    FAIL() << "dropped packets without reliable delivery must deadlock";
  } catch (const prt::Vsa::RunError& e) {
    EXPECT_EQ(e.report().reason, "watchdog");
    EXPECT_GT(e.report().faults.dropped, 0);
    const std::string what = e.what();
    EXPECT_NE(what.find("PRT watchdog"), std::string::npos);
    EXPECT_NE(what.find("VDPs still alive"), std::string::npos);
    EXPECT_NE(what.find("injected faults"), std::string::npos);
  }
}

TEST(ChaosTest, ReliableTransportIsInertOnACleanFabric) {
  Matrix a0(40, 10);
  fill_random(a0.view(), 13);
  TileMatrix a = TileMatrix::from_dense(a0.view(), 5);
  auto reference = ref::tree_qr(TileMatrix::from_dense(a0.view(), 5), 2,
                                chaos_qr_options(2, 2).tree);
  auto opt = chaos_qr_options(2, 2);
  opt.reliable_transport = true;  // protocol on, zero faults
  // Huge RTO: a clean fabric must never time out, so the run is free of
  // retransmissions even on a heavily loaded (e.g. TSan) machine.
  opt.retransmit_timeout_us = 60'000'000;
  auto run = vsaqr::tree_qr(a, opt);
  EXPECT_EQ(run.stats.retransmits, 0);
  EXPECT_EQ(run.stats.faults.total(), 0);
  EXPECT_EQ(run.stats.duplicates_suppressed, 0);
  EXPECT_EQ(run.stats.leftover_packets, 0);
  for (int j = 0; j < run.factors.a.cols(); ++j) {
    for (int i = 0; i < run.factors.a.rows(); ++i) {
      ASSERT_EQ(run.factors.a.at(i, j), reference.a.at(i, j))
          << "factors differ at (" << i << "," << j << ")";
    }
  }
}

// ---- coalesced aggregates under chaos ---------------------------------------

// Fault injection applies per WIRE frame, so a dropped / duplicated /
// reordered aggregate hits every application frame inside it at once and
// one retransmission must repair them all. Three shapes, several seeds
// each, bitwise against the fault-free sequential reference.
TEST(ChaosTest, CoalescedAggregatesSurviveChaos) {
  struct Shape {
    int m, n, nb, ib;
    plan::PlanConfig tree;
    int nodes, workers;
  };
  const std::vector<Shape> shapes = {
      {40, 10, 5, 2, {plan::TreeKind::BinaryOnFlat, 2,
                      plan::BoundaryMode::Shifted}, 2, 2},
      {48, 12, 6, 3, {plan::TreeKind::Binary, 1,
                      plan::BoundaryMode::Shifted}, 3, 1},
      {30, 10, 5, 5, {plan::TreeKind::Flat, 1,
                      plan::BoundaryMode::Fixed}, 2, 2},
  };
  long long total_aggregates = 0;
  for (std::size_t which = 0; which < shapes.size(); ++which) {
    const auto& sh = shapes[which];
    Matrix a0(sh.m, sh.n);
    fill_random(a0.view(), 700 + static_cast<int>(which));
    const auto reference =
        ref::tree_qr(TileMatrix::from_dense(a0.view(), sh.nb), sh.ib, sh.tree);
    for (int s = 0; s < 4; ++s) {
      TileMatrix a = TileMatrix::from_dense(a0.view(), sh.nb);
      vsaqr::TreeQrOptions opt;
      opt.tree = sh.tree;
      opt.ib = sh.ib;
      opt.nodes = sh.nodes;
      opt.workers_per_node = sh.workers;
      opt.watchdog_seconds = 60.0;
      opt.reliable_transport = true;
      opt.retransmit_timeout_us = 800;
      opt.max_retransmits = 30;
      opt.coalesce_bytes = 64 * 1024;  // explicit: aggregates on the wire
      opt.coalesce_flush_us = 50;
      opt.fault_plan.seed = 4000 + static_cast<std::uint64_t>(s) +
                            10 * static_cast<std::uint64_t>(which);
      opt.fault_plan.drop = 0.10;
      opt.fault_plan.dup = 0.10;
      opt.fault_plan.reorder = 0.10;

      auto run = vsaqr::tree_qr(a, opt);
      EXPECT_GT(run.stats.coalesced_frames, 0);
      total_aggregates += run.stats.aggregates_sent;
      ASSERT_EQ(run.stats.leftover_packets, 0)
          << "seed " << opt.fault_plan.seed;
      for (int j = 0; j < reference.a.cols(); ++j) {
        for (int i = 0; i < reference.a.rows(); ++i) {
          ASSERT_EQ(run.factors.a.at(i, j), reference.a.at(i, j))
              << "seed " << opt.fault_plan.seed << " diverged at (" << i
              << "," << j << ")";
        }
      }
    }
  }
  EXPECT_GT(total_aggregates, 0) << "chaos never saw an aggregate frame";
}

// The uncoalesced path (coalesce_bytes = 0) is still the wire format of
// record for oversized frames; it must keep repairing losses too.
TEST(ChaosTest, RawPathWithoutCoalescingStillRepairs) {
  Matrix a0(40, 10);
  fill_random(a0.view(), 21);
  const auto tree = chaos_qr_options(2, 2).tree;
  const auto reference =
      ref::tree_qr(TileMatrix::from_dense(a0.view(), 5), 2, tree);
  TileMatrix a = TileMatrix::from_dense(a0.view(), 5);
  auto opt = chaos_qr_options(2, 2);
  opt.reliable_transport = true;
  opt.retransmit_timeout_us = 800;
  opt.max_retransmits = 30;
  opt.coalesce_bytes = 0;  // every frame is its own wire message
  opt.fault_plan.seed = 77;
  opt.fault_plan.drop = 0.10;
  opt.fault_plan.dup = 0.10;
  opt.fault_plan.reorder = 0.10;
  auto run = vsaqr::tree_qr(a, opt);
  EXPECT_EQ(run.stats.aggregates_sent, 0);
  EXPECT_EQ(run.stats.coalesced_frames, 0);
  EXPECT_GT(run.stats.remote_messages, 0);
  ASSERT_EQ(run.stats.leftover_packets, 0);
  for (int j = 0; j < reference.a.cols(); ++j) {
    for (int i = 0; i < reference.a.rows(); ++i) {
      ASSERT_EQ(run.factors.a.at(i, j), reference.a.at(i, j))
          << "diverged at (" << i << "," << j << ")";
    }
  }
}

// ---- the chaos soak ---------------------------------------------------------

struct SoakShape {
  int m, n, nb, ib;
  plan::PlanConfig tree;
  int nodes, workers;
};

// >= 100 seeded schedules by default (acceptance criterion); CI smoke and
// TSan runs shrink it via PQR_CHAOS_SCHEDULES.
int soak_schedules() {
  if (const char* e = std::getenv("PQR_CHAOS_SCHEDULES")) {
    const int n = std::atoi(e);
    if (n > 0) return n;
  }
  return 102;
}

TEST(ChaosTest, SoakManySeededSchedulesStayCorrect) {
  const std::vector<SoakShape> shapes = {
      {40, 10, 5, 2, {plan::TreeKind::BinaryOnFlat, 2,
                      plan::BoundaryMode::Shifted}, 2, 2},
      {48, 12, 6, 3, {plan::TreeKind::Binary, 1,
                      plan::BoundaryMode::Shifted}, 3, 1},
      {30, 10, 5, 5, {plan::TreeKind::Flat, 1,
                      plan::BoundaryMode::Fixed}, 2, 2},
  };
  // One matrix + sequential reference per shape; every schedule must
  // reproduce the reference factors bit-for-bit.
  std::vector<Matrix> inputs;
  std::vector<ref::TreeQrFactors> references;
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    const auto& sh = shapes[s];
    Matrix a0(sh.m, sh.n);
    fill_random(a0.view(), 900 + static_cast<int>(s));
    references.push_back(ref::tree_qr(TileMatrix::from_dense(a0.view(), sh.nb),
                                      sh.ib, sh.tree));
    inputs.push_back(std::move(a0));
  }
  const int schedules = soak_schedules();
  long long total_faults = 0;
  long long total_retransmits = 0;
  for (int s = 0; s < schedules; ++s) {
    const std::size_t which = static_cast<std::size_t>(s) % shapes.size();
    const auto& sh = shapes[which];
    const Matrix& a0 = inputs[which];
    TileMatrix a = TileMatrix::from_dense(a0.view(), sh.nb);

    vsaqr::TreeQrOptions opt;
    opt.tree = sh.tree;
    opt.ib = sh.ib;
    opt.nodes = sh.nodes;
    opt.workers_per_node = sh.workers;
    opt.watchdog_seconds = 60.0;
    opt.reliable_transport = true;
    opt.retransmit_timeout_us = 800;
    opt.max_retransmits = 30;
    opt.fault_plan.seed = 1000 + static_cast<std::uint64_t>(s);
    opt.fault_plan.drop = 0.08;
    opt.fault_plan.dup = 0.08;
    opt.fault_plan.delay = 0.12;
    opt.fault_plan.reorder = 0.10;
    opt.fault_plan.delay_us = 200;

    auto run = vsaqr::tree_qr(a, opt);
    total_faults += run.stats.faults.total();
    total_retransmits += run.stats.retransmits;
    ASSERT_EQ(run.stats.leftover_packets, 0)
        << "schedule " << opt.fault_plan.seed;
    // Transport accounting invariant (clean runs never cancel a rank):
    // what hit the mailboxes = what was offered, minus drops, plus dups.
    ASSERT_EQ(run.stats.wire_messages,
              run.stats.wire_offered - run.stats.faults.dropped +
                  run.stats.faults.duplicated)
        << "schedule " << opt.fault_plan.seed;

    // Bitwise against the fault-free sequential reference: reliable
    // delivery must make the chaos completely invisible.
    const auto& ref = references[which];
    for (int j = 0; j < ref.a.cols(); ++j) {
      for (int i = 0; i < ref.a.rows(); ++i) {
        ASSERT_EQ(run.factors.a.at(i, j), ref.a.at(i, j))
            << "schedule " << opt.fault_plan.seed << " diverged at (" << i
            << "," << j << ")";
      }
    }
    // Residuals: ||A - QR|| and orthogonality ||Q^T Q - I||.
    const int kk = std::min(sh.m, sh.n);
    Matrix q = ref::form_q(run.factors, sh.m);
    Matrix r = ref::extract_r(run.factors);
    Matrix qr(sh.m, sh.n);
    blas::gemm(blas::Trans::No, blas::Trans::No, 1.0,
               q.block(0, 0, sh.m, kk), r.block(0, 0, kk, sh.n), 0.0,
               qr.view());
    double err = 0.0;
    for (int j = 0; j < sh.n; ++j) {
      for (int i = 0; i < sh.m; ++i) {
        err = std::max(err, std::abs(qr(i, j) - a0(i, j)));
      }
    }
    ASSERT_LT(err / (1.0 + blas::norm_max(a0.view())), 1e-12 * sh.m)
        << "schedule " << opt.fault_plan.seed;
    Matrix qtq(kk, kk);
    blas::gemm(blas::Trans::Yes, blas::Trans::No, 1.0,
               q.block(0, 0, sh.m, kk), q.block(0, 0, sh.m, kk), 0.0,
               qtq.view());
    double orth = 0.0;
    for (int j = 0; j < kk; ++j) {
      for (int i = 0; i < kk; ++i) {
        orth = std::max(orth,
                        std::abs(qtq(i, j) - (i == j ? 1.0 : 0.0)));
      }
    }
    ASSERT_LT(orth, 1e-12 * sh.m) << "schedule " << opt.fault_plan.seed;
  }
  // Sanity: the soak actually exercised the machinery — faults were
  // injected and at least one lost frame was repaired by retransmission.
  EXPECT_GT(total_faults, 0);
  EXPECT_GT(total_retransmits, 0);
}

// The same soak over the Socket transport: one forked OS process per
// node, frames over Unix-domain sockets, FaultPlan applied send-side
// before the wire — so each seed replays the identical chaos schedule the
// in-process soak saw, and the factors must still come out bit-for-bit
// equal to the fault-free sequential reference. Process startup costs
// real time, so this leg caps itself at 24 schedules; the three shapes
// still rotate, covering >= 20 seeds on >= 2 shapes.
TEST(ChaosTest, SocketSoakSeededSchedulesStayCorrect) {
  const std::vector<SoakShape> shapes = {
      {40, 10, 5, 2, {plan::TreeKind::BinaryOnFlat, 2,
                      plan::BoundaryMode::Shifted}, 2, 2},
      {48, 12, 6, 3, {plan::TreeKind::Binary, 1,
                      plan::BoundaryMode::Shifted}, 3, 1},
      {30, 10, 5, 5, {plan::TreeKind::Flat, 1,
                      plan::BoundaryMode::Fixed}, 2, 2},
  };
  std::vector<Matrix> inputs;
  std::vector<ref::TreeQrFactors> references;
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    const auto& sh = shapes[s];
    Matrix a0(sh.m, sh.n);
    fill_random(a0.view(), 900 + static_cast<int>(s));
    references.push_back(ref::tree_qr(TileMatrix::from_dense(a0.view(), sh.nb),
                                      sh.ib, sh.tree));
    inputs.push_back(std::move(a0));
  }
  const int schedules = std::min(soak_schedules(), 24);
  long long total_faults = 0;
  long long total_retransmits = 0;
  for (int s = 0; s < schedules; ++s) {
    const std::size_t which = static_cast<std::size_t>(s) % shapes.size();
    const auto& sh = shapes[which];
    TileMatrix a = TileMatrix::from_dense(inputs[which].view(), sh.nb);

    vsaqr::TreeQrOptions opt;
    opt.tree = sh.tree;
    opt.ib = sh.ib;
    opt.nodes = sh.nodes;
    opt.workers_per_node = sh.workers;
    opt.watchdog_seconds = 60.0;
    opt.transport = prt::Transport::Socket;
    opt.reliable_transport = true;
    opt.retransmit_timeout_us = 800;
    opt.max_retransmits = 30;
    opt.fault_plan.seed = 1000 + static_cast<std::uint64_t>(s);
    opt.fault_plan.drop = 0.08;
    opt.fault_plan.dup = 0.08;
    opt.fault_plan.delay = 0.12;
    opt.fault_plan.reorder = 0.10;
    opt.fault_plan.delay_us = 200;

    auto run = vsaqr::tree_qr(a, opt);
    total_faults += run.stats.faults.total();
    total_retransmits += run.stats.retransmits;
    ASSERT_EQ(run.stats.leftover_packets, 0)
        << "schedule " << opt.fault_plan.seed;
    const auto& ref = references[which];
    for (int j = 0; j < ref.a.cols(); ++j) {
      for (int i = 0; i < ref.a.rows(); ++i) {
        ASSERT_EQ(run.factors.a.at(i, j), ref.a.at(i, j))
            << "schedule " << opt.fault_plan.seed << " diverged at (" << i
            << "," << j << ")";
      }
    }
  }
  EXPECT_GT(total_faults, 0);
  EXPECT_GT(total_retransmits, 0);
}

}  // namespace
}  // namespace pulsarqr
