// End-to-end tests of the 3D virtual systolic array QR.
//
// The strongest check: the VSA must produce BITWISE the same factors as
// the sequential reference executor, for every tree configuration, across
// worker/node counts and schedulers — the dataflow wiring fixes each
// tile's kernel sequence, so any wiring bug shows up as a numerical
// difference.
#include <gtest/gtest.h>

#include <cmath>

#include "blas/blas.hpp"
#include "common/rng.hpp"
#include "lapack/qr.hpp"
#include "ref/apply_q.hpp"
#include "ref/reference_qr.hpp"
#include "vsaqr/tree_qr.hpp"

namespace pulsarqr {
namespace {

using plan::BoundaryMode;
using plan::PlanConfig;
using plan::TreeKind;

struct Case {
  int m, n, nb, ib;
  PlanConfig cfg;
  int nodes, workers;
  prt::Scheduling sched;
};

void expect_bitwise_equal(const ref::TreeQrFactors& a,
                          const ref::TreeQrFactors& b) {
  ASSERT_EQ(a.a.rows(), b.a.rows());
  ASSERT_EQ(a.a.cols(), b.a.cols());
  int diffs = 0;
  for (int j = 0; j < a.a.cols() && diffs < 5; ++j) {
    for (int i = 0; i < a.a.rows(); ++i) {
      if (a.a.at(i, j) != b.a.at(i, j)) {
        ADD_FAILURE() << "factor tile data differs at (" << i << "," << j
                      << "): " << a.a.at(i, j) << " vs " << b.a.at(i, j);
        if (++diffs >= 5) break;
      }
    }
  }
}

class VsaQrParam : public ::testing::TestWithParam<Case> {};

TEST_P(VsaQrParam, BitwiseMatchesReference) {
  const Case& c = GetParam();
  Matrix a0(c.m, c.n);
  fill_random(a0.view(), 500 + c.m * 13 + c.n);
  TileMatrix a = TileMatrix::from_dense(a0.view(), c.nb);

  auto reference = ref::tree_qr(TileMatrix::from_dense(a0.view(), c.nb),
                                c.ib, c.cfg);

  vsaqr::TreeQrOptions opt;
  opt.tree = c.cfg;
  opt.ib = c.ib;
  opt.nodes = c.nodes;
  opt.workers_per_node = c.workers;
  opt.scheduling = c.sched;
  opt.watchdog_seconds = 20.0;
  auto run = vsaqr::tree_qr(a, opt);

  EXPECT_EQ(run.stats.leftover_packets, 0);
  expect_bitwise_equal(run.factors, reference);

  // Belt and braces: the factorization is also a valid QR. For wide
  // matrices R is upper trapezoidal: A = Q(:, 0:k) R(0:k, :), k = min(m,n).
  const int kk = std::min(c.m, c.n);
  Matrix q = ref::form_q(run.factors, c.m);
  Matrix r = ref::extract_r(run.factors);
  Matrix qr(c.m, c.n);
  blas::gemm(blas::Trans::No, blas::Trans::No, 1.0,
             q.block(0, 0, c.m, kk), r.block(0, 0, kk, c.n), 0.0, qr.view());
  double err = 0.0;
  for (int j = 0; j < c.n; ++j) {
    for (int i = 0; i < c.m; ++i) {
      err = std::fmax(err, std::fabs(qr(i, j) - a0(i, j)));
    }
  }
  EXPECT_LT(err / (1.0 + blas::norm_max(a0.view())), 1e-12 * c.m);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const auto lazy = prt::Scheduling::Lazy;
  const auto aggr = prt::Scheduling::Aggressive;
  // Tree sweep on a tall-skinny matrix, single node.
  for (auto bm : {BoundaryMode::Fixed, BoundaryMode::Shifted}) {
    cases.push_back({40, 10, 5, 2, {TreeKind::Flat, 1, bm}, 1, 2, lazy});
    cases.push_back({40, 10, 5, 2, {TreeKind::Binary, 1, bm}, 1, 2, lazy});
    cases.push_back(
        {40, 10, 5, 2, {TreeKind::BinaryOnFlat, 3, bm}, 1, 2, lazy});
  }
  // Multi-node (proxy + deep-copied packets).
  cases.push_back(
      {40, 10, 5, 2, {TreeKind::BinaryOnFlat, 2, BoundaryMode::Shifted},
       3, 2, lazy});
  cases.push_back(
      {40, 10, 5, 2, {TreeKind::Binary, 1, BoundaryMode::Shifted}, 4, 1,
       lazy});
  cases.push_back(
      {40, 10, 5, 2, {TreeKind::Flat, 1, BoundaryMode::Shifted}, 2, 3, lazy});
  // Aggressive scheduling.
  cases.push_back(
      {40, 10, 5, 2, {TreeKind::BinaryOnFlat, 3, BoundaryMode::Shifted},
       2, 2, aggr});
  // Ragged tiles (m, n not multiples of nb).
  cases.push_back(
      {33, 9, 5, 3, {TreeKind::BinaryOnFlat, 2, BoundaryMode::Shifted},
       2, 2, lazy});
  cases.push_back(
      {33, 9, 5, 3, {TreeKind::BinaryOnFlat, 2, BoundaryMode::Fixed},
       1, 3, lazy});
  cases.push_back({31, 7, 4, 4, {TreeKind::Binary, 1, BoundaryMode::Shifted},
                   2, 2, lazy});
  // Square matrix.
  cases.push_back({20, 20, 5, 5, {TreeKind::BinaryOnFlat, 2,
                                  BoundaryMode::Shifted}, 2, 2, lazy});
  // Single tile column (panel only).
  cases.push_back({24, 4, 4, 2, {TreeKind::BinaryOnFlat, 2,
                                 BoundaryMode::Shifted}, 2, 2, lazy});
  // Wide matrix (mt < nt).
  cases.push_back({12, 21, 4, 2, {TreeKind::BinaryOnFlat, 2,
                                  BoundaryMode::Shifted}, 2, 2, lazy});
  // Single tile.
  cases.push_back({5, 4, 8, 3, {TreeKind::Flat, 1, BoundaryMode::Shifted},
                   1, 1, lazy});
  // Large-ish stress with many domains and levels.
  cases.push_back({96, 12, 4, 2, {TreeKind::BinaryOnFlat, 2,
                                  BoundaryMode::Shifted}, 3, 2, lazy});
  cases.push_back({96, 12, 4, 2, {TreeKind::Binary, 1, BoundaryMode::Shifted},
                   3, 2, aggr});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, VsaQrParam, ::testing::ValuesIn(all_cases()));

// The work-stealing executor must produce the same bits: scheduling
// freedom cannot change a dataflow-determined computation.
TEST(VsaQr, WorkStealingBitwiseMatchesReference) {
  Matrix a0(60, 15);
  fill_random(a0.view(), 808);
  const plan::PlanConfig cfg{TreeKind::BinaryOnFlat, 2,
                             BoundaryMode::Shifted};
  auto reference = ref::tree_qr(TileMatrix::from_dense(a0.view(), 5), 2, cfg);
  for (int nodes : {1, 2}) {
    vsaqr::TreeQrOptions opt;
    opt.tree = cfg;
    opt.ib = 2;
    opt.nodes = nodes;
    opt.workers_per_node = 3;
    opt.work_stealing = true;
    auto run = vsaqr::tree_qr(TileMatrix::from_dense(a0.view(), 5), opt);
    EXPECT_EQ(run.stats.leftover_packets, 0);
    for (int j = 0; j < 15; ++j) {
      for (int i = 0; i < 60; ++i) {
        ASSERT_EQ(run.factors.a.at(i, j), reference.a.at(i, j))
            << "nodes=" << nodes << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(VsaQr, DominoIsFlatTree) {
  Matrix a0(30, 10);
  fill_random(a0.view(), 42);
  TileMatrix a = TileMatrix::from_dense(a0.view(), 5);
  vsaqr::TreeQrOptions opt;
  opt.tree = {TreeKind::BinaryOnFlat, 2, BoundaryMode::Shifted};
  opt.ib = 5;
  auto run = vsaqr::domino_qr(a, opt);  // forces the flat tree
  auto reference = ref::tree_qr(
      TileMatrix::from_dense(a0.view(), 5), 5,
      {TreeKind::Flat, 1, BoundaryMode::Shifted});
  EXPECT_EQ(run.factors.plan.config().tree, TreeKind::Flat);
  for (int j = 0; j < 10; ++j) {
    for (int i = 0; i < 30; ++i) {
      EXPECT_EQ(run.factors.a.at(i, j), reference.a.at(i, j));
    }
  }
}

TEST(VsaQr, TraceRecordsAllThreeColors) {
  Matrix a0(48, 12);
  fill_random(a0.view(), 7);
  TileMatrix a = TileMatrix::from_dense(a0.view(), 4);
  vsaqr::TreeQrOptions opt;
  opt.tree = {TreeKind::BinaryOnFlat, 3, BoundaryMode::Shifted};
  opt.ib = 2;
  opt.workers_per_node = 3;
  opt.trace = true;
  auto run = vsaqr::tree_qr(a, opt);
  ASSERT_FALSE(run.events.empty());
  bool seen[3] = {false, false, false};
  for (const auto& e : run.events) {
    ASSERT_GE(e.color, 0);
    ASSERT_LE(e.color, 2);
    seen[e.color] = true;
  }
  EXPECT_TRUE(seen[vsaqr::kColorFactor]);
  EXPECT_TRUE(seen[vsaqr::kColorUpdate]);
  EXPECT_TRUE(seen[vsaqr::kColorBinary]);
  // Total firings: one per (row, column) pass of each step, i.e. the fire
  // count equals the number of plan ops.
  EXPECT_EQ(static_cast<std::size_t>(run.stats.fires),
            run.factors.plan.ops().size());
}

TEST(VsaQr, VdpAndChannelCountsAreSane) {
  Matrix a0(24, 8);
  fill_random(a0.view(), 8);
  TileMatrix a = TileMatrix::from_dense(a0.view(), 4);
  vsaqr::TreeQrOptions opt;
  opt.tree = {TreeKind::BinaryOnFlat, 2, BoundaryMode::Shifted};
  opt.ib = 4;
  auto run = vsaqr::tree_qr(a, opt);
  EXPECT_GT(run.vdp_count, 0);
  EXPECT_GT(run.channel_count, run.vdp_count / 2);
  // mt=6, nt=2: step 0 has 3 domains x 2 columns + binary; step 1 has 3
  // domains x 1 column + binary. Just bound it loosely against explosion.
  EXPECT_LT(run.vdp_count, 64);
}

TEST(VsaQr, LeastSquaresThroughVsaFactors) {
  const int m = 40;
  const int n = 8;
  Matrix a0(m, n);
  fill_random_well_conditioned(a0.view(), 77);
  Rng rng(78);
  std::vector<double> xtrue(n);
  for (auto& v : xtrue) v = rng.next_symmetric();
  std::vector<double> b(m, 0.0);
  blas::gemv(blas::Trans::No, 1.0, a0.view(), xtrue.data(), 0.0, b.data());

  TileMatrix a = TileMatrix::from_dense(a0.view(), 5);
  vsaqr::TreeQrOptions opt;
  opt.tree = {TreeKind::BinaryOnFlat, 2, BoundaryMode::Shifted};
  opt.ib = 5;
  opt.nodes = 2;
  auto run = vsaqr::tree_qr(a, opt);
  const auto x = ref::least_squares(run.factors, b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], xtrue[i], 1e-9);
}

TEST(VsaQr, TsqrSinglePanel) {
  // The communication-avoiding TSQR kernel: one tile-column panel reduced
  // by a pure binary tree.
  const int m = 64;
  const int n = 6;
  Matrix a0(m, n);
  fill_random(a0.view(), 999);
  TileMatrix a = TileMatrix::from_dense(a0.view(), 8);
  vsaqr::TreeQrOptions opt;
  opt.ib = 3;
  opt.nodes = 2;
  auto run = vsaqr::tsqr(a, opt);
  EXPECT_EQ(run.factors.plan.config().tree, TreeKind::Binary);
  // R from TSQR must match dense QR up to column signs.
  Matrix r = ref::extract_r(run.factors);
  Matrix ad = a0;
  std::vector<double> tau(n);
  lapack::geqrf(ad.view(), tau.data());
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) {
      EXPECT_NEAR(std::fabs(r(i, j)), std::fabs(ad(i, j)), 1e-10);
    }
  }
  // Multi-column panels are rejected.
  TileMatrix wide(16, 12, 4);
  EXPECT_THROW(vsaqr::tsqr(wide, opt), Error);
}

TEST(VsaQr, RejectsBadIb) {
  TileMatrix a(8, 4, 4);
  vsaqr::TreeQrOptions opt;
  opt.ib = 5;  // > nb
  EXPECT_THROW(vsaqr::tree_qr(a, opt), Error);
}

}  // namespace
}  // namespace pulsarqr
