// Tests for the foundation layer: views, owning matrices, the PRNG, and
// error plumbing.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/view.hpp"

namespace pulsarqr {
namespace {

TEST(MatrixView, BlockArithmetic) {
  Matrix a(6, 5);
  fill_random(a.view(), 1);
  MatrixView b = a.block(2, 1, 3, 2);
  EXPECT_EQ(b.rows, 3);
  EXPECT_EQ(b.cols, 2);
  EXPECT_EQ(b.ld, 6);
  EXPECT_DOUBLE_EQ(b(0, 0), a(2, 1));
  EXPECT_DOUBLE_EQ(b(2, 1), a(4, 2));
  b(1, 1) = 42.0;
  EXPECT_DOUBLE_EQ(a(3, 2), 42.0);
  EXPECT_EQ(b.col(1), &a(2, 2));
}

TEST(MatrixView, NestedBlocks) {
  Matrix a(8, 8);
  a(5, 6) = 3.5;
  ConstMatrixView v = a.view().block(2, 3, 6, 5).block(3, 3, 2, 2);
  EXPECT_DOUBLE_EQ(v(0, 0), 3.5);
}

using ViewDeathTest = ::testing::Test;

TEST(ViewDeathTest, OutOfRangeBlockAborts) {
  EXPECT_DEATH(
      {
        Matrix a(3, 3);
        (void)a.view().block(1, 1, 3, 3);
      },
      "out of range");
}

TEST(ViewDeathTest, BadShapeAborts) {
  EXPECT_DEATH(
      {
        double d[4];
        MatrixView v(d, 4, 1, 2);  // ld < rows
        (void)v;
      },
      "bad MatrixView shape");
}

TEST(Matrix, ZeroInitialized) {
  Matrix a(3, 2);
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(a(i, j), 0.0);
  }
  EXPECT_THROW(Matrix(-1, 2), Error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(124);
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UnitRangeAndCoverage) {
  Rng rng(5);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
  double mean = 0.0;
  Rng rng2(6);
  for (int i = 0; i < 10000; ++i) mean += rng2.next_symmetric();
  EXPECT_LT(std::abs(mean / 10000), 0.05);
}

TEST(Rng, FillRandomIsSeedStable) {
  Matrix a(4, 4);
  Matrix b(4, 4);
  fill_random(a.view(), 9);
  fill_random(b.view(), 9);
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < 4; ++i) EXPECT_EQ(a(i, j), b(i, j));
  }
}

TEST(Error, RequireThrowsWithMessage) {
  try {
    require(false, "the message");
    FAIL();
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "the message");
  }
  EXPECT_NO_THROW(require(true, "x"));
}

}  // namespace
}  // namespace pulsarqr
