// PacketPool: size-class routing, cross-thread recycling, the zero-
// allocation steady state, and the FrameStager/FrameCursor aggregate
// codec that rides on pooled wire buffers.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "prt/packet.hpp"
#include "prt/packet_pool.hpp"
#include "prt/transport.hpp"
#include "prt/wire.hpp"
#include "vsaqr/tree_qr.hpp"

namespace {

using namespace pulsarqr;
using prt::Packet;
using prt::PacketPool;

long long misses_now() { return PacketPool::stats().misses; }
long long hits_now() { return PacketPool::stats().hits; }

TEST(PacketPoolTest, SizeClassBoundaries) {
  // Classes are powers of two from 64 bytes up; a request is served with
  // the next class up, and 0 marks the unpooled oversize regime.
  EXPECT_EQ(PacketPool::capacity_for(1), 64u);
  EXPECT_EQ(PacketPool::capacity_for(64), 64u);
  EXPECT_EQ(PacketPool::capacity_for(65), 128u);
  EXPECT_EQ(PacketPool::capacity_for(128), 128u);
  EXPECT_EQ(PacketPool::capacity_for(4096), 4096u);
  EXPECT_EQ(PacketPool::capacity_for(4097), 8192u);
  const std::size_t largest = PacketPool::capacity_for(8u << 20);
  EXPECT_EQ(largest, 8u << 20);  // 8 MiB: the largest class
  EXPECT_EQ(PacketPool::capacity_for((8u << 20) + 1), 0u);  // oversize
}

TEST(PacketPoolTest, SameThreadReuseHitsTheMagazine) {
  ASSERT_TRUE(PacketPool::enabled());
  // Warm one buffer of an odd size no other test uses, then re-acquire
  // the same class: the release/acquire pair must be a magazine hit.
  { Packet p = Packet::make(777); }
  const long long h0 = hits_now();
  const long long m0 = misses_now();
  for (int i = 0; i < 8; ++i) {
    Packet p = Packet::make(777);
    EXPECT_NE(p.bytes(), nullptr);
  }
  EXPECT_EQ(misses_now(), m0);
  EXPECT_EQ(hits_now(), h0 + 8);
}

TEST(PacketPoolTest, CrossThreadFreeComesBackThroughTheSpillList) {
  // Allocate on a worker thread, release on exit (its magazine flushes to
  // the central spill list), then re-acquire the class on this thread.
  constexpr std::size_t kBytes = 3000;  // class 4096
  std::thread t([&] {
    std::vector<Packet> held;
    for (int i = 0; i < 32; ++i) held.push_back(Packet::make(kBytes));
  });
  t.join();
  const long long m0 = misses_now();
  std::vector<Packet> again;
  for (int i = 0; i < 32; ++i) again.push_back(Packet::make(kBytes));
  EXPECT_EQ(misses_now(), m0) << "expected all 32 buffers recycled";
}

TEST(PacketPoolTest, DisabledBypassesThePool) {
  PacketPool::set_enabled(false);
  const PacketPool::Stats s0 = PacketPool::stats();
  {
    Packet p = Packet::make(512);
    EXPECT_NE(p.bytes(), nullptr);
  }
  const PacketPool::Stats s1 = PacketPool::stats();
  EXPECT_EQ(s1.hits, s0.hits);
  EXPECT_EQ(s1.misses, s0.misses);
  EXPECT_EQ(s1.recycled, s0.recycled);
  PacketPool::set_enabled(true);
}

TEST(PacketPoolTest, OversizeRequestsAreNotPooled) {
  const long long m0 = misses_now();
  const PacketPool::Stats s0 = PacketPool::stats();
  { Packet p = Packet::make((8u << 20) + 64); }
  const PacketPool::Stats s1 = PacketPool::stats();
  EXPECT_EQ(s1.oversize, s0.oversize + 1);
  EXPECT_EQ(misses_now(), m0);  // oversize is its own counter, not a miss
}

TEST(PacketPoolTest, QrSteadyStateStopsMissing) {
  // The acceptance gate of the zero-allocation fast path: after a warm-up
  // factorization, repeating the identical run draws every packet buffer
  // from the pool — the miss counter stays flat.
  const int n = 192, nb = 32;
  Matrix a0(n, n);
  fill_random(a0.view(), 7);
  const TileMatrix tiled = TileMatrix::from_dense(a0.view(), nb);
  vsaqr::TreeQrOptions opt;
  opt.tree = {plan::TreeKind::BinaryOnFlat, 3, plan::BoundaryMode::Shifted};
  opt.ib = 16;
  opt.nodes = 2;
  opt.workers_per_node = 2;
  for (int warm = 0; warm < 3; ++warm) (void)vsaqr::tree_qr(tiled, opt);
  // Each run spawns fresh worker/proxy threads whose magazines start
  // empty, so scheduling variance can still cost a stray allocation in
  // any one run; the steady state is that runs reach zero misses, not
  // that every run does. Every miss also grows the pooled population, so
  // repetition converges — 8 attempts is far beyond what it needs.
  long long total_misses = 0, total_hits = 0;
  bool reached_zero = false;
  for (int r = 0; r < 8 && !reached_zero; ++r) {
    auto run = vsaqr::tree_qr(tiled, opt);
    reached_zero = run.stats.pool_misses == 0;
    total_misses += run.stats.pool_misses;
    total_hits += run.stats.pool_hits;
  }
  EXPECT_TRUE(reached_zero) << "no warmed run reached the zero-allocation "
                               "steady state";
  EXPECT_GT(total_hits, 0);
  EXPECT_LT(total_misses, total_hits / 20)
      << "warmed runs still allocate more than 5% of their packets";
}

// ---- aggregate codec --------------------------------------------------------

TEST(FrameCodecTest, RoundTripPreservesFramesInOrder) {
  prt::net::FrameStager stager(4096);
  ASSERT_TRUE(stager.empty());
  std::vector<std::vector<std::byte>> payloads;
  for (int i = 0; i < 5; ++i) {
    const std::size_t bytes = 1 + 37 * static_cast<std::size_t>(i);  // odd sizes
    Packet p = Packet::make(bytes, /*meta=*/100 + i);
    for (std::size_t b = 0; b < bytes; ++b) {
      p.bytes()[b] = static_cast<std::byte>((i * 31 + b) & 0xff);
    }
    payloads.emplace_back(p.bytes(), p.bytes() + bytes);
    ASSERT_TRUE(stager.fits(bytes));
    stager.add(/*tag=*/i, p.meta(), p);
  }
  EXPECT_EQ(stager.frames(), 5);
  const Packet wire = stager.take();
  EXPECT_TRUE(stager.empty());
  EXPECT_EQ(wire.meta(), 5);  // meta carries the frame count

  prt::net::FrameCursor cursor(wire);
  prt::net::WireFrame wf;
  int i = 0;
  while (cursor.next(wf)) {
    EXPECT_EQ(wf.tag, i);
    EXPECT_EQ(wf.meta, 100 + i);
    ASSERT_EQ(wf.size, payloads[static_cast<std::size_t>(i)].size());
    EXPECT_EQ(std::memcmp(wf.data, payloads[static_cast<std::size_t>(i)].data(),
                          wf.size),
              0);
    ++i;
  }
  EXPECT_EQ(i, 5);
}

TEST(FrameCodecTest, ZeroByteFramesSurvive) {
  prt::net::FrameStager stager(256);
  Packet empty = Packet::make(0, /*meta=*/42);
  stager.add(/*tag=*/9, empty.meta(), empty);
  stager.add(/*tag=*/10, 43, empty);
  const Packet wire = stager.take();
  prt::net::FrameCursor cursor(wire);
  prt::net::WireFrame wf;
  ASSERT_TRUE(cursor.next(wf));
  EXPECT_EQ(wf.tag, 9);
  EXPECT_EQ(wf.meta, 42);
  EXPECT_EQ(wf.size, 0u);
  ASSERT_TRUE(cursor.next(wf));
  EXPECT_EQ(wf.tag, 10);
  EXPECT_EQ(wf.meta, 43);
  EXPECT_FALSE(cursor.next(wf));
}

TEST(FrameCodecTest, FitsTracksTheWireFormatExactly) {
  // wire_size = 16-byte header + payload padded to 8 bytes.
  using prt::net::FrameStager;
  EXPECT_EQ(FrameStager::wire_size(0), 16u);
  EXPECT_EQ(FrameStager::wire_size(1), 24u);
  EXPECT_EQ(FrameStager::wire_size(8), 24u);
  EXPECT_EQ(FrameStager::wire_size(9), 32u);

  FrameStager stager(2 * 24);  // room for exactly two 8-byte frames
  Packet p = Packet::make(8);
  std::memset(p.bytes(), 0, 8);
  ASSERT_TRUE(stager.fits(8));
  stager.add(0, 0, p);
  ASSERT_TRUE(stager.fits(8));
  stager.add(1, 0, p);
  EXPECT_FALSE(stager.fits(8));  // full to the byte
  EXPECT_EQ(stager.bytes(), 48u);
}

// Byte-exact golden frame: the aggregate header is explicit little-endian
// (wire.hpp), not a memcpy of host integers, so a frame staged anywhere
// must produce exactly these bytes. Catches a regression to host-endian
// headers (which happened to pass the round-trip tests on x86).
TEST(FrameCodecTest, GoldenFrameBytesAreLittleEndian) {
  prt::net::FrameStager stager(256);
  Packet p = Packet::make(3);
  p.bytes()[0] = std::byte{0xAA};
  p.bytes()[1] = std::byte{0xBB};
  p.bytes()[2] = std::byte{0xCC};
  stager.add(/*tag=*/0x01020304, /*meta=*/-2, p);
  const Packet wire = stager.take();
  ASSERT_EQ(wire.size(), 24u);  // 16-byte header + 3 bytes padded to 8
  const unsigned char golden[19] = {
      0x04, 0x03, 0x02, 0x01,                          // tag, LE
      0xFE, 0xFF, 0xFF, 0xFF,                          // meta = -2, LE
      0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // payload length, LE
      0xAA, 0xBB, 0xCC,                                // payload
  };
  // Compare header + payload only; the pad bytes are uninitialized.
  EXPECT_EQ(std::memcmp(wire.bytes(), golden, sizeof(golden)), 0);
}

// The shared scalar codec the aggregate header and the socket frame
// header are built from.
TEST(WireCodecTest, ScalarsRoundTripAndSerializeLittleEndian) {
  namespace wire = prt::net::wire;
  std::byte buf[8];
  wire::put_u32(buf, 0xDEADBEEFu);
  const unsigned char le32[4] = {0xEF, 0xBE, 0xAD, 0xDE};
  EXPECT_EQ(std::memcmp(buf, le32, 4), 0);
  EXPECT_EQ(wire::get_u32(buf), 0xDEADBEEFu);
  wire::put_u64(buf, 0x0102030405060708ULL);
  const unsigned char le64[8] = {0x08, 0x07, 0x06, 0x05,
                                 0x04, 0x03, 0x02, 0x01};
  EXPECT_EQ(std::memcmp(buf, le64, 8), 0);
  EXPECT_EQ(wire::get_u64(buf), 0x0102030405060708ULL);
  wire::put_i32(buf, -123456789);
  EXPECT_EQ(wire::get_i32(buf), -123456789);
  wire::put_i64(buf, -987654321012345LL);
  EXPECT_EQ(wire::get_i64(buf), -987654321012345LL);
  wire::put_f64(buf, -0.15625);  // exactly representable
  EXPECT_EQ(wire::get_f64(buf), -0.15625);

  wire::Blob b;
  b.u32(7);
  b.str("hello");
  b.f64(2.5);
  wire::BlobReader r(b.data(), b.size());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.f64(), 2.5);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.u32(), Error);  // reading past the end throws, not UB
}

}  // namespace
