// Runtime CPU-feature dispatch for the explicit SIMD micro-kernels.
//
// One binary carries every kernel flavor it was compiled with — scalar
// (always), AVX2+FMA and AVX-512 on x86-64, NEON on aarch64 — and picks the
// best one the executing CPU supports, once, at first use. The selection
// can be overridden:
//
//   * environment: PQR_KERNEL_ISA=auto|avx512|avx2|neon|scalar (read once,
//     at first dispatch; unknown or unsupported values fall back to auto
//     with a warning on stderr), or
//   * programmatically: set_isa()/parse_isa(), which is what
//     `pqr --kernel-isa` uses (the CLI rejects bad values instead of
//     falling back).
//
// Each ISA exports one KernelTable<T> per scalar type (double and float):
// the packed-gemm micro-kernel with its MR x NR register-tile footprint
// (packing in gemm_packed.cpp obeys the active table's mr/nr), plus the
// vector level-1 primitives (axpy/dot) and the multi-column fused sweeps
// (dot_cols/ger_cols/axpy_cols) that back blas::gemv/ger and the
// triangular fringe updates of the tsmqr/ttmqr stacked cores. The scalar
// table is the always-correct fallback: plain templated loops, compiled
// with the host-tuning flags when PULSARQR_NATIVE_KERNELS is ON so the
// autovectorized PR 3 baseline is preserved exactly.
#pragma once

#include <atomic>
#include <string_view>

namespace pulsarqr::blas::simd {

/// Kernel instruction sets, in ascending preference order. Auto is a
/// parse-time pseudo-value resolved to the best supported ISA.
enum class Isa { Scalar = 0, Neon = 1, Avx2 = 2, Avx512 = 3 };

/// Short lower-case name ("scalar", "neon", "avx2", "avx512").
const char* isa_name(Isa isa);

/// True if the kernels for `isa` are linked into this binary (decided at
/// build time; see PULSARQR_NATIVE_KERNELS in src/CMakeLists.txt).
bool isa_compiled(Isa isa);

/// True if `isa` is compiled in AND the executing CPU supports it. Scalar
/// is always supported.
bool isa_supported(Isa isa);

/// Best supported ISA on this host (what "auto" resolves to).
Isa detect_isa();

/// The currently selected ISA. First call resolves PQR_KERNEL_ISA (or
/// auto-detects) and latches the kernel tables.
Isa active_isa();

/// Select a specific ISA (or re-run detection). Returns false — and leaves
/// the selection unchanged — if the ISA is not supported on this host.
bool set_isa(Isa isa);
/// Reset to auto-detection (ignoring PQR_KERNEL_ISA).
void set_isa_auto();

/// Parse an ISA name ("auto" included). Returns false on an unknown name;
/// *out is untouched in that case. "auto" yields detect_isa().
bool parse_isa(std::string_view name, Isa* out);

/// One ISA's kernel bundle for scalar type T. All function pointers are
/// non-null in every table.
template <class T>
struct KernelTable {
  /// Register micro-tile of the packed gemm kernel; pack_a/pack_b pad
  /// panels to these sizes, and every A panel is 64-byte aligned so the
  /// kernel may use aligned vector loads on the packed operand.
  int mr = 0;
  int nr = 0;
  /// C(0:mr_eff, 0:nr_eff) += alpha * Ap * Bp over a kc-deep packed panel
  /// pair (full-width accumulation, edge-bounded writeback).
  void (*gemm_micro)(int kc, T alpha, const T* ap, const T* bp, T* c, int ldc,
                     int mr_eff, int nr_eff) = nullptr;
  /// y += a * x.
  void (*axpy)(int n, T a, const T* x, T* y) = nullptr;
  /// dot(x, y).
  T (*dot)(int n, const T* x, const T* y) = nullptr;
  /// out[j * inc_out] += alpha * dot(x, Y.col(j)) for j in [0, ncols); Y
  /// has leading dimension ldy. One pass of x feeds four columns at a time.
  void (*dot_cols)(int n, T alpha, const T* x, const T* y, int ldy, int ncols,
                   T* out, int inc_out) = nullptr;
  /// Y.col(j) += alpha * coeff[j * inc_c] * x for j in [0, ncols).
  void (*ger_cols)(int n, T alpha, const T* x, const T* coeff, int inc_c,
                   T* y, int ldy, int ncols) = nullptr;
  /// y += alpha * sum_j coeff[j * inc_c] * X.col(j); X has leading
  /// dimension ldx.
  void (*axpy_cols)(int n, T alpha, const T* coeff, int inc_c, const T* x,
                    int ldx, int ncols, T* y) = nullptr;
  /// Fused Householder apply C := (I - tau * v * v^T) C for the small-panel
  /// geqr2 path: C is m-by-n with leading dimension ldc, v has length m
  /// with v(0) = 1 implicit (v[0] is never read). Four columns at a time,
  /// the reduction (w_j = v^T c_j) and the update (c_j -= tau * w_j * v)
  /// run back-to-back while the block is register/L1 resident — no
  /// workspace, unlike the classic two-pass larf with a work vector.
  void (*larf)(int m, int n, T tau, const T* v, T* c, int ldc) = nullptr;
};

namespace detail {
extern std::atomic<const KernelTable<double>*> table_f64;
extern std::atomic<const KernelTable<float>*> table_f32;
const KernelTable<double>* resolve_f64();
const KernelTable<float>* resolve_f32();
}  // namespace detail

/// The active ISA's kernel table for T (T = double or float). The atomic
/// load is relaxed: tables are immutable once published and the selection
/// is a process-wide knob like blas::gemm_impl().
template <class T>
inline const KernelTable<T>& kernels();

template <>
inline const KernelTable<double>& kernels<double>() {
  const KernelTable<double>* t =
      detail::table_f64.load(std::memory_order_relaxed);
  return t ? *t : *detail::resolve_f64();
}

template <>
inline const KernelTable<float>& kernels<float>() {
  const KernelTable<float>* t =
      detail::table_f32.load(std::memory_order_relaxed);
  return t ? *t : *detail::resolve_f32();
}

/// A specific ISA's table (must satisfy isa_supported; used by the fuzz
/// tests and benches to A/B kernel flavors without touching the global
/// selection).
const KernelTable<double>& kernels_f64(Isa isa);
const KernelTable<float>& kernels_f32(Isa isa);

template <class T>
const KernelTable<T>& kernels(Isa isa);
template <>
inline const KernelTable<double>& kernels<double>(Isa isa) {
  return kernels_f64(isa);
}
template <>
inline const KernelTable<float>& kernels<float>(Isa isa) {
  return kernels_f32(isa);
}

}  // namespace pulsarqr::blas::simd
