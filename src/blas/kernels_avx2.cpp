// AVX2 + FMA kernel tables. Compiled with -mavx2 -mfma regardless of the
// build host; only reachable through the runtime dispatch in simd.cpp,
// which verifies CPU support before publishing these tables.
//
// Micro-tile: 8x6 doubles — 6 C columns x 2 ymm accumulators = 12 of the
// 16 ymm registers, plus 2 for the A column and 1 for the B broadcast
// (the 8x4 footprint of the scalar kernel would leave a third of the
// register file idle). Floats double the lane count to 16x6.
#include "blas/simd_kernels_inc.hpp"
#include "blas/simd_tables.hpp"

#include <immintrin.h>

namespace pulsarqr::blas::simd {
namespace {

struct Avx2D {
  using T = double;
  using reg = __m256d;
  static constexpr int W = 4;
  static reg zero() { return _mm256_setzero_pd(); }
  static reg set1(T a) { return _mm256_set1_pd(a); }
  static reg load(const T* p) { return _mm256_load_pd(p); }
  static reg loadu(const T* p) { return _mm256_loadu_pd(p); }
  static void storeu(T* p, reg v) { _mm256_storeu_pd(p, v); }
  static reg add(reg a, reg b) { return _mm256_add_pd(a, b); }
  static reg fma(reg a, reg b, reg c) { return _mm256_fmadd_pd(a, b, c); }
  static T hsum(reg v) {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d s = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
  }
};

struct Avx2F {
  using T = float;
  using reg = __m256;
  static constexpr int W = 8;
  static reg zero() { return _mm256_setzero_ps(); }
  static reg set1(T a) { return _mm256_set1_ps(a); }
  static reg load(const T* p) { return _mm256_load_ps(p); }
  static reg loadu(const T* p) { return _mm256_loadu_ps(p); }
  static void storeu(T* p, reg v) { _mm256_storeu_ps(p, v); }
  static reg add(reg a, reg b) { return _mm256_add_ps(a, b); }
  static reg fma(reg a, reg b, reg c) { return _mm256_fmadd_ps(a, b, c); }
  static T hsum(reg v) {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
    return _mm_cvtss_f32(s);
  }
};

}  // namespace

const KernelTable<double>& avx2_table_f64() {
  static const KernelTable<double> t = Kernels<Avx2D, 2, 6>::table();
  return t;
}

const KernelTable<float>& avx2_table_f32() {
  static const KernelTable<float> t = Kernels<Avx2F, 2, 6>::table();
  return t;
}

}  // namespace pulsarqr::blas::simd
