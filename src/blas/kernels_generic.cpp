// The scalar kernel tables: Kernels<ScalarTraits<T>, 8, 4> is exactly the
// PR 3 register-tiled micro-kernel plus plain-loop level-1 sweeps. This TU
// is built with PQR_GEMM_FLAGS (-O3 -funroll-loops, plus -march=native
// when PULSARQR_NATIVE_KERNELS is ON), so on a tuned build the "scalar"
// fallback is the compiler-autovectorized baseline the explicit kernels
// are measured against; on a portable build it is strict baseline-ISA
// code that runs anywhere.
#include "blas/simd_kernels_inc.hpp"
#include "blas/simd_tables.hpp"

namespace pulsarqr::blas::simd {

const KernelTable<double>& scalar_table_f64() {
  static const KernelTable<double> t =
      Kernels<ScalarTraits<double>, 8, 4>::table();
  return t;
}

const KernelTable<float>& scalar_table_f32() {
  static const KernelTable<float> t =
      Kernels<ScalarTraits<float>, 8, 4>::table();
  return t;
}

}  // namespace pulsarqr::blas::simd
