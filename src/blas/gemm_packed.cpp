// Packed, cache-blocked GEMM (the BLIS/GotoBLAS loop nest, from scratch).
//
// C += alpha * op(A) * op(B) is computed as
//
//   for jc in steps of NC:                 (B column block   -> stays in L3)
//     for pc in steps of KC:               (k block; pack B  -> Bp, row panels)
//       for ic in steps of MC:             (A row block; pack A -> Ap, col panels)
//         for jr in steps of NR:           (macro kernel over the packed panels)
//           for ir in steps of MR:
//             micro_kernel: MR x NR register tile, contiguous FMA loop over k
//
// Packing rewrites op(A) into MR-row column panels (Ap[p][k][r], r fastest)
// and op(B) into NR-column row panels (Bp[q][k][c], c fastest), so the
// micro-kernel streams both operands with unit stride regardless of the
// Trans flags, and edge tiles are zero-padded to full MR/NR width so the
// inner loop has a single fixed-trip-count form the compiler vectorizes.
//
// The packing buffers are thread_local and grow-only: steady-state calls
// perform no heap allocation (same discipline as kernels::Workspace).
#include <algorithm>
#include <vector>

#include "blas/blas.hpp"

namespace pulsarqr::blas {

namespace {

// Register micro-tile. 8x4 doubles = 32 accumulators: fits the 16 ymm
// registers of AVX2 as 8 accumulator vectors + operand broadcasts, and
// degrades gracefully to SSE2/NEON 2-lane vectors.
constexpr int MR = 8;
constexpr int NR = 4;
// Cache blocking: Ap is MC*KC doubles (256 KiB, ~L2), one Bp row panel is
// KC*NR doubles (8 KiB, ~L1), Bp in total KC*NC doubles (1 MiB, ~LLC).
constexpr int MC = 128;
constexpr int KC = 256;
constexpr int NC = 512;

struct PackBuffers {
  std::vector<double> a;  // MC x KC, MR-row panels
  std::vector<double> b;  // KC x NC, NR-column panels
};

PackBuffers& pack_buffers() {
  thread_local PackBuffers bufs;
  return bufs;
}

// Pack op(A)(ic:ic+mc, pc:pc+kc) into MR-row panels:
// dst[p * (MR*kc) + k * MR + r] = op(A)(ic + p*MR + r, pc + k),
// zero-padded in r for the last partial panel.
void pack_a(Trans ta, ConstMatrixView a, int ic, int pc, int mc, int kc,
            double* dst) {
  for (int p = 0; p < mc; p += MR) {
    const int pr = std::min(MR, mc - p);
    if (ta == Trans::No) {
      // op(A) columns are A columns: walk k outer, rows contiguous.
      for (int k = 0; k < kc; ++k) {
        const double* src = a.col(pc + k) + ic + p;
        for (int r = 0; r < pr; ++r) dst[k * MR + r] = src[r];
        for (int r = pr; r < MR; ++r) dst[k * MR + r] = 0.0;
      }
    } else {
      // op(A)(i, k) = A(k, i): walk rows outer so k runs down A's columns.
      for (int r = 0; r < pr; ++r) {
        const double* src = a.col(ic + p + r) + pc;
        for (int k = 0; k < kc; ++k) dst[k * MR + r] = src[k];
      }
      for (int r = pr; r < MR; ++r) {
        for (int k = 0; k < kc; ++k) dst[k * MR + r] = 0.0;
      }
    }
    dst += static_cast<std::ptrdiff_t>(MR) * kc;
  }
}

// Pack op(B)(pc:pc+kc, jc:jc+nc) into NR-column panels:
// dst[q * (NR*kc) + k * NR + c] = op(B)(pc + k, jc + q*NR + c),
// zero-padded in c for the last partial panel.
void pack_b(Trans tb, ConstMatrixView b, int pc, int jc, int kc, int nc,
            double* dst) {
  for (int q = 0; q < nc; q += NR) {
    const int qc = std::min(NR, nc - q);
    if (tb == Trans::No) {
      // op(B) columns are B columns: k runs down each column.
      for (int c = 0; c < qc; ++c) {
        const double* src = b.col(jc + q + c) + pc;
        for (int k = 0; k < kc; ++k) dst[k * NR + c] = src[k];
      }
      for (int c = qc; c < NR; ++c) {
        for (int k = 0; k < kc; ++k) dst[k * NR + c] = 0.0;
      }
    } else {
      // op(B)(k, j) = B(j, k): k walks B's columns, contiguous in j.
      for (int k = 0; k < kc; ++k) {
        const double* src = b.col(pc + k) + jc + q;
        for (int c = 0; c < qc; ++c) dst[k * NR + c] = src[c];
        for (int c = qc; c < NR; ++c) dst[k * NR + c] = 0.0;
      }
    }
    dst += static_cast<std::ptrdiff_t>(NR) * kc;
  }
}

// C(0:mr, 0:nr) += alpha * Ap panel * Bp panel. The accumulator loop is
// fully unrolled over the fixed MR x NR tile (operands are zero-padded),
// so the compiler keeps `acc` in vector registers; only the writeback is
// bounded by the true edge sizes.
void micro_kernel(int kc, double alpha, const double* ap, const double* bp,
                  double* c, int ldc, int mr, int nr) {
  double acc[NR][MR] = {};
  for (int k = 0; k < kc; ++k) {
    const double* av = ap + static_cast<std::ptrdiff_t>(k) * MR;
    const double* bv = bp + static_cast<std::ptrdiff_t>(k) * NR;
    for (int j = 0; j < NR; ++j) {
      for (int i = 0; i < MR; ++i) acc[j][i] += av[i] * bv[j];
    }
  }
  if (mr == MR && nr == NR) {
    for (int j = 0; j < NR; ++j) {
      double* cj = c + static_cast<std::ptrdiff_t>(j) * ldc;
      for (int i = 0; i < MR; ++i) cj[i] += alpha * acc[j][i];
    }
  } else {
    for (int j = 0; j < nr; ++j) {
      double* cj = c + static_cast<std::ptrdiff_t>(j) * ldc;
      for (int i = 0; i < mr; ++i) cj[i] += alpha * acc[j][i];
    }
  }
}

}  // namespace

void gemm_packed(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                 ConstMatrixView b, double beta, MatrixView c) {
  const int m = c.rows;
  const int n = c.cols;
  const int k = (ta == Trans::No) ? a.cols : a.rows;
  {
    const int ka = (ta == Trans::No) ? a.cols : a.rows;
    const int kb = (tb == Trans::No) ? b.rows : b.cols;
    const int ma = (ta == Trans::No) ? a.rows : a.cols;
    const int nb = (tb == Trans::No) ? b.cols : b.rows;
    PQR_ASSERT(ka == kb && ma == m && nb == n, "gemm: shape mismatch");
  }
  if (beta == 0.0) {
    laset_all(0.0, 0.0, c);
  } else if (beta != 1.0) {
    for (int j = 0; j < n; ++j) scal(m, beta, c.col(j));
  }
  if (alpha == 0.0 || k == 0 || m == 0 || n == 0) return;

  PackBuffers& bufs = pack_buffers();
  bufs.a.resize(static_cast<std::size_t>(MC) * KC);
  bufs.b.resize(static_cast<std::size_t>(KC) * std::min(n + (NR - 1), NC));

  for (int jc = 0; jc < n; jc += NC) {
    const int nc = std::min(NC, n - jc);
    for (int pc = 0; pc < k; pc += KC) {
      const int kc = std::min(KC, k - pc);
      pack_b(tb, b, pc, jc, kc, nc, bufs.b.data());
      for (int ic = 0; ic < m; ic += MC) {
        const int mc = std::min(MC, m - ic);
        pack_a(ta, a, ic, pc, mc, kc, bufs.a.data());
        for (int jr = 0; jr < nc; jr += NR) {
          const double* bp =
              bufs.b.data() + static_cast<std::ptrdiff_t>(jr / NR) * NR * kc;
          for (int ir = 0; ir < mc; ir += MR) {
            const double* ap =
                bufs.a.data() + static_cast<std::ptrdiff_t>(ir / MR) * MR * kc;
            micro_kernel(kc, alpha, ap, bp,
                         c.col(jc + jr) + ic + ir, c.ld,
                         std::min(MR, mc - ir), std::min(NR, nc - jr));
          }
        }
      }
    }
  }
}

}  // namespace pulsarqr::blas
