// Packed, cache-blocked GEMM (the BLIS/GotoBLAS loop nest, from scratch).
//
// C += alpha * op(A) * op(B) is computed as
//
//   for jc in steps of NC:                 (B column block   -> stays in L3)
//     for pc in steps of KC:               (k block; pack B  -> Bp, row panels)
//       for ic in steps of MC:             (A row block; pack A -> Ap, col panels)
//         for jr in steps of NR:           (macro kernel over the packed panels)
//           for ir in steps of MR:
//             micro_kernel: MR x NR register tile, contiguous FMA loop over k
//
// Packing rewrites op(A) into MR-row column panels (Ap[p][k][r], r fastest)
// and op(B) into NR-column row panels (Bp[q][k][c], c fastest), so the
// micro-kernel streams both operands with unit stride regardless of the
// Trans flags, and edge tiles are zero-padded to full MR/NR width so the
// inner loop has a single fixed-trip-count form.
//
// The micro-kernel and its MR x NR footprint come from the runtime-dispatched
// SIMD kernel table (blas/simd.hpp): 8x6 AVX2, 16x4 AVX-512, 4x4 NEON, 8x4
// scalar for doubles, double the rows for floats. Packing reads mr/nr from
// the table at call time, and the pack buffers are 64-byte aligned so every
// A panel k-step starts on a cache-line boundary (mr * sizeof(T) is a
// multiple of 64 for the x86 tiles), which lets the kernels use aligned
// vector loads on the packed operand.
//
// The packing buffers are thread_local and grow-only: steady-state calls
// perform no heap allocation (same discipline as kernels::Workspace).
#include <algorithm>
#include <cstddef>
#include <new>
#include <utility>

#include "blas/blas.hpp"
#include "blas/simd.hpp"

namespace pulsarqr::blas {

namespace {

// Cache blocking, in elements. Ap is MC*KC doubles (256 KiB, ~L2), one Bp
// row panel is KC*NR doubles (~L1), Bp in total KC*NC doubles (1 MiB, ~LLC).
// Floats reuse the same element counts (half the bytes — comfortably cached).
constexpr int MC = 128;
constexpr int KC = 256;
constexpr int NC = 512;

// Grow-only 64-byte-aligned buffer for the packed panels. std::vector is
// not used because its allocator only guarantees alignof(T).
template <class T>
class AlignedVec {
 public:
  AlignedVec() = default;
  AlignedVec(const AlignedVec&) = delete;
  AlignedVec& operator=(const AlignedVec&) = delete;
  ~AlignedVec() {
    ::operator delete(data_, std::align_val_t(64));
  }

  void reserve(std::size_t n) {
    if (n <= cap_) return;
    ::operator delete(data_, std::align_val_t(64));
    data_ = static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(64)));
    cap_ = n;
  }

  T* data() { return data_; }

 private:
  T* data_ = nullptr;
  std::size_t cap_ = 0;
};

template <class T>
struct PackBuffers {
  AlignedVec<T> a;  // MC x KC, MR-row panels
  AlignedVec<T> b;  // KC x NC, NR-column panels
};

template <class T>
PackBuffers<T>& pack_buffers() {
  thread_local PackBuffers<T> bufs;
  return bufs;
}

// Pack op(A)(ic:ic+mc, pc:pc+kc) into mr-row panels:
// dst[p * (mr*kc) + k * mr + r] = op(A)(ic + p*mr + r, pc + k),
// zero-padded in r for the last partial panel.
template <class T>
void pack_a(Trans ta, ConstMatrixViewT<T> a, int ic, int pc, int mc, int kc,
            int mr, T* dst) {
  for (int p = 0; p < mc; p += mr) {
    const int pr = std::min(mr, mc - p);
    if (ta == Trans::No) {
      // op(A) columns are A columns: walk k outer, rows contiguous.
      for (int k = 0; k < kc; ++k) {
        const T* src = a.col(pc + k) + ic + p;
        for (int r = 0; r < pr; ++r) dst[k * mr + r] = src[r];
        for (int r = pr; r < mr; ++r) dst[k * mr + r] = T(0);
      }
    } else {
      // op(A)(i, k) = A(k, i): walk rows outer so k runs down A's columns.
      for (int r = 0; r < pr; ++r) {
        const T* src = a.col(ic + p + r) + pc;
        for (int k = 0; k < kc; ++k) dst[k * mr + r] = src[k];
      }
      for (int r = pr; r < mr; ++r) {
        for (int k = 0; k < kc; ++k) dst[k * mr + r] = T(0);
      }
    }
    dst += static_cast<std::ptrdiff_t>(mr) * kc;
  }
}

// Pack op(B)(pc:pc+kc, jc:jc+nc) into nr-column panels:
// dst[q * (nr*kc) + k * nr + c] = op(B)(pc + k, jc + q*nr + c),
// zero-padded in c for the last partial panel.
template <class T>
void pack_b(Trans tb, ConstMatrixViewT<T> b, int pc, int jc, int kc, int nc,
            int nr, T* dst) {
  for (int q = 0; q < nc; q += nr) {
    const int qc = std::min(nr, nc - q);
    if (tb == Trans::No) {
      // op(B) columns are B columns: k runs down each column.
      for (int c = 0; c < qc; ++c) {
        const T* src = b.col(jc + q + c) + pc;
        for (int k = 0; k < kc; ++k) dst[k * nr + c] = src[k];
      }
      for (int c = qc; c < nr; ++c) {
        for (int k = 0; k < kc; ++k) dst[k * nr + c] = T(0);
      }
    } else {
      // op(B)(k, j) = B(j, k): k walks B's columns, contiguous in j.
      for (int k = 0; k < kc; ++k) {
        const T* src = b.col(pc + k) + jc + q;
        for (int c = 0; c < qc; ++c) dst[k * nr + c] = src[c];
        for (int c = qc; c < nr; ++c) dst[k * nr + c] = T(0);
      }
    }
    dst += static_cast<std::ptrdiff_t>(nr) * kc;
  }
}

template <class T>
void gemm_packed_t(Trans ta, Trans tb, T alpha, ConstMatrixViewT<T> a,
                   ConstMatrixViewT<T> b, T beta, MatrixViewT<T> c) {
  const int m = c.rows;
  const int n = c.cols;
  const int k = (ta == Trans::No) ? a.cols : a.rows;
  {
    const int ka = (ta == Trans::No) ? a.cols : a.rows;
    const int kb = (tb == Trans::No) ? b.rows : b.cols;
    const int ma = (ta == Trans::No) ? a.rows : a.cols;
    const int nb = (tb == Trans::No) ? b.cols : b.rows;
    PQR_ASSERT(ka == kb && ma == m && nb == n, "gemm: shape mismatch");
  }
  if (beta == T(0)) {
    laset_all(T(0), T(0), c);
  } else if (beta != T(1)) {
    for (int j = 0; j < n; ++j) scal(m, beta, c.col(j));
  }
  if (alpha == T(0) || k == 0 || m == 0 || n == 0) return;

  const simd::KernelTable<T>& kt = simd::kernels<T>();
  const int mr = kt.mr;
  const int nr = kt.nr;

  PackBuffers<T>& bufs = pack_buffers<T>();
  // Panel footprints for THIS problem, capped by the cache blocking and
  // rounded up to whole mr/nr panels. Sizing to the problem (instead of
  // the worst-case MC*KC / KC*NC) keeps sub-block products from faulting
  // in megabytes of thread_local pack pages they will never use; the
  // buffers remain grow-only, so steady-state calls still allocate
  // nothing once a thread has seen its largest shape.
  const int kc_max = std::min(KC, k);
  const int mc_max =
      std::min(((m + mr - 1) / mr) * mr, ((MC + mr - 1) / mr) * mr);
  const int nc_max =
      std::min(((n + nr - 1) / nr) * nr, ((NC + nr - 1) / nr) * nr);
  bufs.a.reserve(static_cast<std::size_t>(mc_max) * kc_max);
  bufs.b.reserve(static_cast<std::size_t>(kc_max) * nc_max);

  for (int jc = 0; jc < n; jc += NC) {
    const int nc = std::min(NC, n - jc);
    for (int pc = 0; pc < k; pc += KC) {
      const int kc = std::min(KC, k - pc);
      pack_b(tb, b, pc, jc, kc, nc, nr, bufs.b.data());
      for (int ic = 0; ic < m; ic += MC) {
        const int mc = std::min(MC, m - ic);
        pack_a(ta, a, ic, pc, mc, kc, mr, bufs.a.data());
        for (int jr = 0; jr < nc; jr += nr) {
          const T* bp =
              bufs.b.data() + static_cast<std::ptrdiff_t>(jr / nr) * nr * kc;
          for (int ir = 0; ir < mc; ir += mr) {
            const T* ap =
                bufs.a.data() + static_cast<std::ptrdiff_t>(ir / mr) * mr * kc;
            kt.gemm_micro(kc, alpha, ap, bp, c.col(jc + jr) + ic + ir, c.ld,
                          std::min(mr, mc - ir), std::min(nr, nc - jr));
          }
        }
      }
    }
  }
}

}  // namespace

void gemm_packed(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                 ConstMatrixView b, double beta, MatrixView c) {
  gemm_packed_t(ta, tb, alpha, a, b, beta, c);
}

void gemm_packed(Trans ta, Trans tb, float alpha, ConstMatrixViewF a,
                 ConstMatrixViewF b, float beta, MatrixViewF c) {
  gemm_packed_t(ta, tb, alpha, a, b, beta, c);
}

}  // namespace pulsarqr::blas
