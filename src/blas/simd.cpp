// Runtime ISA selection for the SIMD kernel tables (see simd.hpp).
//
// CPU capability is probed once with __builtin_cpu_supports on x86-64
// (cpuid under the hood); on aarch64 ASIMD is architecturally guaranteed.
// Which tables exist in this binary is a build-time fact surfaced via the
// PQR_HAVE_KERNELS_* definitions CMake sets on this TU only.
#include "blas/simd.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "blas/simd_tables.hpp"

namespace pulsarqr::blas::simd {

namespace detail {
std::atomic<const KernelTable<double>*> table_f64{nullptr};
std::atomic<const KernelTable<float>*> table_f32{nullptr};
}  // namespace detail

namespace {

std::mutex g_select_mutex;
Isa g_active = Isa::Scalar;  // meaningful only once tables are published

bool cpu_has(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return true;
    case Isa::Neon:
#if defined(__aarch64__)
      return true;  // ASIMD is mandatory on aarch64
#else
      return false;
#endif
    case Isa::Avx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Isa::Avx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

// Publish the tables for `isa` (caller holds g_select_mutex and has
// checked isa_supported).
void publish(Isa isa) {
  detail::table_f64.store(&kernels_f64(isa), std::memory_order_relaxed);
  detail::table_f32.store(&kernels_f32(isa), std::memory_order_relaxed);
  g_active = isa;
}

// First-use resolution: PQR_KERNEL_ISA if set and valid, else detection.
// Bad env values warn and fall back rather than abort — the env path has
// no good place to report errors, unlike `pqr --kernel-isa`.
void resolve_locked() {
  if (detail::table_f64.load(std::memory_order_relaxed) != nullptr) return;
  Isa choice = detect_isa();
  if (const char* env = std::getenv("PQR_KERNEL_ISA")) {
    Isa parsed;
    if (!parse_isa(env, &parsed)) {
      std::fprintf(stderr,
                   "pulsarqr: ignoring unknown PQR_KERNEL_ISA=%s "
                   "(auto|avx512|avx2|neon|scalar)\n",
                   env);
    } else if (!isa_supported(parsed)) {
      std::fprintf(stderr,
                   "pulsarqr: PQR_KERNEL_ISA=%s not usable on this host "
                   "(compiled=%d, cpu=%d); using %s\n",
                   env, isa_compiled(parsed) ? 1 : 0, cpu_has(parsed) ? 1 : 0,
                   isa_name(choice));
    } else {
      choice = parsed;
    }
  }
  publish(choice);
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return "scalar";
    case Isa::Neon:
      return "neon";
    case Isa::Avx2:
      return "avx2";
    case Isa::Avx512:
      return "avx512";
  }
  return "?";
}

bool isa_compiled(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return true;
    case Isa::Neon:
#if defined(PQR_HAVE_KERNELS_NEON)
      return true;
#else
      return false;
#endif
    case Isa::Avx2:
#if defined(PQR_HAVE_KERNELS_AVX2)
      return true;
#else
      return false;
#endif
    case Isa::Avx512:
#if defined(PQR_HAVE_KERNELS_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool isa_supported(Isa isa) { return isa_compiled(isa) && cpu_has(isa); }

Isa detect_isa() {
  for (Isa isa : {Isa::Avx512, Isa::Avx2, Isa::Neon}) {
    if (isa_supported(isa)) return isa;
  }
  return Isa::Scalar;
}

Isa active_isa() {
  std::lock_guard<std::mutex> lock(g_select_mutex);
  resolve_locked();
  return g_active;
}

bool set_isa(Isa isa) {
  if (!isa_supported(isa)) return false;
  std::lock_guard<std::mutex> lock(g_select_mutex);
  publish(isa);
  return true;
}

void set_isa_auto() {
  std::lock_guard<std::mutex> lock(g_select_mutex);
  publish(detect_isa());
}

bool parse_isa(std::string_view name, Isa* out) {
  if (name == "auto") {
    *out = detect_isa();
    return true;
  }
  for (Isa isa : {Isa::Scalar, Isa::Neon, Isa::Avx2, Isa::Avx512}) {
    if (name == isa_name(isa)) {
      *out = isa;
      return true;
    }
  }
  return false;
}

namespace detail {

const KernelTable<double>* resolve_f64() {
  std::lock_guard<std::mutex> lock(g_select_mutex);
  resolve_locked();
  return table_f64.load(std::memory_order_relaxed);
}

const KernelTable<float>* resolve_f32() {
  std::lock_guard<std::mutex> lock(g_select_mutex);
  resolve_locked();
  return table_f32.load(std::memory_order_relaxed);
}

}  // namespace detail

const KernelTable<double>& kernels_f64(Isa isa) {
  switch (isa) {
#if defined(PQR_HAVE_KERNELS_NEON)
    case Isa::Neon:
      return neon_table_f64();
#endif
#if defined(PQR_HAVE_KERNELS_AVX2)
    case Isa::Avx2:
      return avx2_table_f64();
#endif
#if defined(PQR_HAVE_KERNELS_AVX512)
    case Isa::Avx512:
      return avx512_table_f64();
#endif
    default:
      return scalar_table_f64();
  }
}

const KernelTable<float>& kernels_f32(Isa isa) {
  switch (isa) {
#if defined(PQR_HAVE_KERNELS_NEON)
    case Isa::Neon:
      return neon_table_f32();
#endif
#if defined(PQR_HAVE_KERNELS_AVX2)
    case Isa::Avx2:
      return avx2_table_f32();
#endif
#if defined(PQR_HAVE_KERNELS_AVX512)
    case Isa::Avx512:
      return avx512_table_f32();
#endif
    default:
      return scalar_table_f32();
  }
}

}  // namespace pulsarqr::blas::simd
