// NEON (aarch64 ASIMD) kernel tables. ASIMD is architecturally mandatory
// on aarch64, so no runtime feature probe is needed beyond being on the
// architecture at all; the whole TU compiles away elsewhere.
//
// Micro-tile: 4x4 doubles — 4 C columns x 2 128-bit accumulators = 8 of
// the 32 q registers, plus 2 for the A column and a broadcast. Floats
// double the lane count to 8x4.
#if defined(__aarch64__)

#include "blas/simd_kernels_inc.hpp"
#include "blas/simd_tables.hpp"

#include <arm_neon.h>

namespace pulsarqr::blas::simd {
namespace {

struct NeonD {
  using T = double;
  using reg = float64x2_t;
  static constexpr int W = 2;
  static reg zero() { return vdupq_n_f64(0.0); }
  static reg set1(T a) { return vdupq_n_f64(a); }
  static reg load(const T* p) { return vld1q_f64(p); }
  static reg loadu(const T* p) { return vld1q_f64(p); }
  static void storeu(T* p, reg v) { vst1q_f64(p, v); }
  static reg add(reg a, reg b) { return vaddq_f64(a, b); }
  static reg fma(reg a, reg b, reg c) { return vfmaq_f64(c, a, b); }
  static T hsum(reg v) { return vaddvq_f64(v); }
};

struct NeonF {
  using T = float;
  using reg = float32x4_t;
  static constexpr int W = 4;
  static reg zero() { return vdupq_n_f32(0.0f); }
  static reg set1(T a) { return vdupq_n_f32(a); }
  static reg load(const T* p) { return vld1q_f32(p); }
  static reg loadu(const T* p) { return vld1q_f32(p); }
  static void storeu(T* p, reg v) { vst1q_f32(p, v); }
  static reg add(reg a, reg b) { return vaddq_f32(a, b); }
  static reg fma(reg a, reg b, reg c) { return vfmaq_f32(c, a, b); }
  static T hsum(reg v) { return vaddvq_f32(v); }
};

}  // namespace

const KernelTable<double>& neon_table_f64() {
  static const KernelTable<double> t = Kernels<NeonD, 2, 4>::table();
  return t;
}

const KernelTable<float>& neon_table_f32() {
  static const KernelTable<float> t = Kernels<NeonF, 2, 4>::table();
  return t;
}

}  // namespace pulsarqr::blas::simd

#endif  // __aarch64__
