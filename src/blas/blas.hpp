// From-scratch BLAS subset used by the QR kernels.
//
// Only the operations the library needs are provided, all on column-major
// views. Operand aliasing is not supported unless a routine documents it.
//
// The primary interface is double precision; the routines the tile-kernel
// layer is templated over (level 1, trmv/trmm, gemm and the copy/set
// helpers) also have float overloads so the single-precision kernel path
// is end-to-end. The level-1 sweeps and gemm micro-kernels route through
// the runtime-dispatched SIMD kernel tables (blas/simd.hpp).
#pragma once

#include "common/view.hpp"

namespace pulsarqr::blas {

enum class Trans { No, Yes };
enum class Side { Left, Right };
enum class Uplo { Upper, Lower };
enum class Diag { NonUnit, Unit };

// ---- Level 1 -------------------------------------------------------------

/// y := a*x + y (length n).
void axpy(int n, double a, const double* x, double* y);

/// x := a*x (length n).
void scal(int n, double a, double* x);

/// Dot product of two length-n vectors.
double dot(int n, const double* x, const double* y);

/// Euclidean norm of a length-n vector, with scaling against overflow.
double nrm2(int n, const double* x);

/// y := x (length n).
void copy(int n, const double* x, double* y);

// ---- Level 2 -------------------------------------------------------------

/// y := alpha * op(A) * x + beta * y.
void gemv(Trans trans, double alpha, ConstMatrixView a, const double* x,
          double beta, double* y);

/// A := A + alpha * x * y^T.
void ger(double alpha, const double* x, const double* y, MatrixView a);

/// x := op(A) * x for triangular A (n-by-n).
void trmv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView a, double* x);

/// Solve op(A) * x = b in place for triangular A (x overwrites b).
void trsv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView a, double* x);

// ---- Level 3 -------------------------------------------------------------

/// Matrix-multiply implementation behind gemm().
///   Packed — cache-blocked MC/KC/NC loop nest over packed A/B panels with
///            an 8x4 register-tiled micro-kernel; the default. All four
///            Trans combinations pack into one uniform layout.
///   Ref    — the original unblocked column-sweep kernels; kept as the A/B
///            baseline (mirrors prt::ChannelImpl::Mutex) and used for
///            shapes too small to amortize packing.
enum class GemmImpl { Ref, Packed };

/// Select the process-wide gemm implementation (thread-safe knob; reads are
/// relaxed atomics on the gemm hot path).
void set_gemm_impl(GemmImpl impl);
GemmImpl gemm_impl();

/// C := alpha * op(A) * op(B) + beta * C.
void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c);

/// The two implementations, directly callable (for A/B tests and benches);
/// same contract as gemm() but never re-dispatch.
void gemm_ref(Trans ta, Trans tb, double alpha, ConstMatrixView a,
              ConstMatrixView b, double beta, MatrixView c);
void gemm_packed(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                 ConstMatrixView b, double beta, MatrixView c);

/// Direct small-shape implementation: no packing, no pack-buffer touch —
/// the operands are streamed straight through the active kernel table's
/// fused column sweeps (axpy_cols / dot_cols). This is where gemm() sends
/// products below gemm_small_max_work(); directly callable for A/B tests
/// and benches. Same contract as gemm().
void gemm_small(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                ConstMatrixView b, double beta, MatrixView c);
void gemm_small(Trans ta, Trans tb, float alpha, ConstMatrixViewF a,
                ConstMatrixViewF b, float beta, MatrixViewF c);

/// Largest m*n*k the Packed dispatch routes to gemm_small instead of the
/// packed loop nest. Derived from the active kernel table's register tile
/// (64 micro-tile volumes, i.e. 64*mr*nr), not a hard-coded constant: the
/// packing sweep amortizes later on tables with bigger tiles.
long long gemm_small_max_work_f64();
long long gemm_small_max_work_f32();

/// B := alpha * op(A) * B (Side::Left) or alpha * B * op(A) (Side::Right),
/// A triangular.
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b);

/// Solve op(A) * X = alpha * B (Side::Left) or X * op(A) = alpha * B
/// (Side::Right) in place, A triangular; X overwrites B.
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b);

// ---- Auxiliary (LAPACK-style helpers) -------------------------------------

/// Set off-diagonal entries to `off` and diagonal entries to `diag`.
void laset(Uplo uplo, double off, double diag, MatrixView a);
/// Variant that sets the full rectangle.
void laset_all(double off, double diag, MatrixView a);

/// Copy (part of) a matrix: B := A.
void lacpy_all(ConstMatrixView a, MatrixView b);
void lacpy(Uplo uplo, ConstMatrixView a, MatrixView b);

/// Frobenius norm.
double norm_fro(ConstMatrixView a);
/// Max-abs entry.
double norm_max(ConstMatrixView a);
/// One-norm (max column sum).
double norm_one(ConstMatrixView a);

// ---- Single-precision overloads ------------------------------------------
//
// The subset the templated kernel layer (gemm packing + micro-kernels,
// stacked tsqrt/tsmqr/ttqrt/ttmqr cores, larfg) instantiates for float.
// Semantics match the double versions exactly.

void axpy(int n, float a, const float* x, float* y);
void scal(int n, float a, float* x);
float dot(int n, const float* x, const float* y);
float nrm2(int n, const float* x);
void copy(int n, const float* x, float* y);

void gemv(Trans trans, float alpha, ConstMatrixViewF a, const float* x,
          float beta, float* y);
void ger(float alpha, const float* x, const float* y, MatrixViewF a);
void trmv(Uplo uplo, Trans trans, Diag diag, ConstMatrixViewF a, float* x);

void gemm(Trans ta, Trans tb, float alpha, ConstMatrixViewF a,
          ConstMatrixViewF b, float beta, MatrixViewF c);
void gemm_ref(Trans ta, Trans tb, float alpha, ConstMatrixViewF a,
              ConstMatrixViewF b, float beta, MatrixViewF c);
void gemm_packed(Trans ta, Trans tb, float alpha, ConstMatrixViewF a,
                 ConstMatrixViewF b, float beta, MatrixViewF c);
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, float alpha,
          ConstMatrixViewF a, MatrixViewF b);

void laset_all(float off, float diag, MatrixViewF a);
void lacpy_all(ConstMatrixViewF a, MatrixViewF b);

}  // namespace pulsarqr::blas
