// Internal: per-ISA kernel-table accessors, defined one pair per kernel
// translation unit. simd.cpp references each pair only when the matching
// PQR_HAVE_KERNELS_* definition is set by the build (src/CMakeLists.txt),
// which is also what keeps the link honest: a table can only be selected
// if its TU was compiled in.
#pragma once

#include "blas/simd.hpp"

namespace pulsarqr::blas::simd {

// kernels_generic.cpp — always present; compiled with the host-tuning
// flags when PULSARQR_NATIVE_KERNELS is ON (the PR 3 autovectorized
// baseline), plain portable codegen otherwise.
const KernelTable<double>& scalar_table_f64();
const KernelTable<float>& scalar_table_f32();

// kernels_avx2.cpp (x86-64, -mavx2 -mfma).
const KernelTable<double>& avx2_table_f64();
const KernelTable<float>& avx2_table_f32();

// kernels_avx512.cpp (x86-64, -mavx512f).
const KernelTable<double>& avx512_table_f64();
const KernelTable<float>& avx512_table_f32();

// kernels_neon.cpp (aarch64).
const KernelTable<double>& neon_table_f64();
const KernelTable<float>& neon_table_f32();

}  // namespace pulsarqr::blas::simd
