// Shared implementation of the SIMD kernel bundle, parameterized by a
// vector-traits class. Each ISA translation unit (kernels_generic.cpp,
// kernels_avx2.cpp, kernels_avx512.cpp, kernels_neon.cpp) defines a thin
// traits struct — register type, lane count, load/store/fma/hsum — and
// instantiates Kernels<Traits, AR, NR> from this header, so the micro-kernel
// schedule (full-width register accumulation over zero-padded packed panels,
// 4-way unrolled level-1 sweeps, 4-column fused multi-sweeps) is written
// once and compiled per-ISA with that TU's target flags.
//
// Traits contract (see ScalarTraits for the reference shape):
//   using T            — scalar type (double or float)
//   using reg          — vector register holding W lanes of T
//   static constexpr int W
//   zero(), set1(a), load(p) [64-byte-aligned p], loadu(p), storeu(p, v),
//   add(a, b), fma(a, b, c) -> c + a * b, hsum(v) -> sum of lanes
//
// Kernels<VT, AR, NR> yields a gemm micro-tile of MR = AR * W rows by NR
// columns: AR accumulator registers per C column, NR columns resident, so
// AR * NR accumulators + AR operand registers must fit the register file
// (15 of 16 ymm for AVX2 8x6 doubles; 11 of 32 zmm for AVX-512 16x4).
#pragma once

#include <cstddef>

#include "blas/simd.hpp"

namespace pulsarqr::blas::simd {

/// Reference traits: one lane, plain arithmetic. Kernels<ScalarTraits<T>,
/// 8, 4> reproduces the PR 3 scalar register-tiled micro-kernel exactly
/// (the compiler autovectorizes the fixed-trip loops when the TU is built
/// with the host flags).
template <class S>
struct ScalarTraits {
  using T = S;
  using reg = S;
  static constexpr int W = 1;
  static reg zero() { return S(0); }
  static reg set1(T a) { return a; }
  static reg load(const T* p) { return *p; }
  static reg loadu(const T* p) { return *p; }
  static void storeu(T* p, reg v) { *p = v; }
  static reg add(reg a, reg b) { return a + b; }
  static reg fma(reg a, reg b, reg c) { return c + a * b; }
  static T hsum(reg v) { return v; }
};

template <class VT, int AR, int NRK>
struct Kernels {
  using T = typename VT::T;
  using reg = typename VT::reg;
  static constexpr int W = VT::W;
  static constexpr int MR = AR * W;

  // C(0:mr, 0:nr) += alpha * Ap * Bp over packed panels: Ap streams MR
  // contiguous (and 64-byte-aligned) rows per k step, Bp NRK contiguous
  // columns. Accumulation is always full-width — edges are zero-padded by
  // the packing — and only the writeback is bounded.
  static void gemm_micro(int kc, T alpha, const T* ap, const T* bp, T* c,
                         int ldc, int mr, int nr) {
    reg acc[NRK][AR];
    for (int j = 0; j < NRK; ++j) {
      for (int r = 0; r < AR; ++r) acc[j][r] = VT::zero();
    }
    for (int k = 0; k < kc; ++k) {
      reg a[AR];
      for (int r = 0; r < AR; ++r) a[r] = VT::load(ap + r * W);
      for (int j = 0; j < NRK; ++j) {
        const reg b = VT::set1(bp[j]);
        for (int r = 0; r < AR; ++r) acc[j][r] = VT::fma(a[r], b, acc[j][r]);
      }
      ap += MR;
      bp += NRK;
    }
    if (mr == MR && nr == NRK) {
      const reg va = VT::set1(alpha);
      for (int j = 0; j < NRK; ++j) {
        T* cj = c + static_cast<std::ptrdiff_t>(j) * ldc;
        for (int r = 0; r < AR; ++r) {
          VT::storeu(cj + r * W,
                     VT::fma(va, acc[j][r], VT::loadu(cj + r * W)));
        }
      }
    } else {
      alignas(64) T tmp[NRK][MR];
      for (int j = 0; j < NRK; ++j) {
        for (int r = 0; r < AR; ++r) VT::storeu(&tmp[j][r * W], acc[j][r]);
      }
      for (int j = 0; j < nr; ++j) {
        T* cj = c + static_cast<std::ptrdiff_t>(j) * ldc;
        for (int i = 0; i < mr; ++i) cj[i] += alpha * tmp[j][i];
      }
    }
  }

  // y += a * x, 4-vector unrolled.
  static void axpy(int n, T a, const T* x, T* y) {
    int i = 0;
    const reg va = VT::set1(a);
    for (; i + 4 * W <= n; i += 4 * W) {
      for (int u = 0; u < 4; ++u) {
        VT::storeu(y + i + u * W, VT::fma(va, VT::loadu(x + i + u * W),
                                          VT::loadu(y + i + u * W)));
      }
    }
    for (; i + W <= n; i += W) {
      VT::storeu(y + i, VT::fma(va, VT::loadu(x + i), VT::loadu(y + i)));
    }
    for (; i < n; ++i) y[i] += a * x[i];
  }

  // dot(x, y) with 4 independent accumulators.
  static T dot(int n, const T* x, const T* y) {
    reg a0 = VT::zero(), a1 = VT::zero(), a2 = VT::zero(), a3 = VT::zero();
    int i = 0;
    for (; i + 4 * W <= n; i += 4 * W) {
      a0 = VT::fma(VT::loadu(x + i), VT::loadu(y + i), a0);
      a1 = VT::fma(VT::loadu(x + i + W), VT::loadu(y + i + W), a1);
      a2 = VT::fma(VT::loadu(x + i + 2 * W), VT::loadu(y + i + 2 * W), a2);
      a3 = VT::fma(VT::loadu(x + i + 3 * W), VT::loadu(y + i + 3 * W), a3);
    }
    reg a = VT::add(VT::add(a0, a1), VT::add(a2, a3));
    for (; i + W <= n; i += W) {
      a = VT::fma(VT::loadu(x + i), VT::loadu(y + i), a);
    }
    T s = VT::hsum(a);
    for (; i < n; ++i) s += x[i] * y[i];
    return s;
  }

  // out[j * inc_out] += alpha * dot(x, Y.col(j)): one pass of x feeds four
  // columns.
  static void dot_cols(int n, T alpha, const T* x, const T* y, int ldy,
                       int ncols, T* out, int inc_out) {
    int j = 0;
    for (; j + 4 <= ncols; j += 4) {
      const T* y0 = y + static_cast<std::ptrdiff_t>(j) * ldy;
      const T* y1 = y0 + ldy;
      const T* y2 = y1 + ldy;
      const T* y3 = y2 + ldy;
      reg a0 = VT::zero(), a1 = VT::zero(), a2 = VT::zero(), a3 = VT::zero();
      int i = 0;
      for (; i + W <= n; i += W) {
        const reg xv = VT::loadu(x + i);
        a0 = VT::fma(xv, VT::loadu(y0 + i), a0);
        a1 = VT::fma(xv, VT::loadu(y1 + i), a1);
        a2 = VT::fma(xv, VT::loadu(y2 + i), a2);
        a3 = VT::fma(xv, VT::loadu(y3 + i), a3);
      }
      T s0 = VT::hsum(a0), s1 = VT::hsum(a1), s2 = VT::hsum(a2),
        s3 = VT::hsum(a3);
      for (; i < n; ++i) {
        const T xi = x[i];
        s0 += xi * y0[i];
        s1 += xi * y1[i];
        s2 += xi * y2[i];
        s3 += xi * y3[i];
      }
      out[static_cast<std::ptrdiff_t>(j) * inc_out] += alpha * s0;
      out[static_cast<std::ptrdiff_t>(j + 1) * inc_out] += alpha * s1;
      out[static_cast<std::ptrdiff_t>(j + 2) * inc_out] += alpha * s2;
      out[static_cast<std::ptrdiff_t>(j + 3) * inc_out] += alpha * s3;
    }
    for (; j < ncols; ++j) {
      out[static_cast<std::ptrdiff_t>(j) * inc_out] +=
          alpha * dot(n, x, y + static_cast<std::ptrdiff_t>(j) * ldy);
    }
  }

  // Y.col(j) += alpha * coeff[j * inc_c] * x: x is loaded once per block
  // of four destination columns.
  static void ger_cols(int n, T alpha, const T* x, const T* coeff, int inc_c,
                       T* y, int ldy, int ncols) {
    int j = 0;
    for (; j + 4 <= ncols; j += 4) {
      const T t0 = alpha * coeff[static_cast<std::ptrdiff_t>(j) * inc_c];
      const T t1 = alpha * coeff[static_cast<std::ptrdiff_t>(j + 1) * inc_c];
      const T t2 = alpha * coeff[static_cast<std::ptrdiff_t>(j + 2) * inc_c];
      const T t3 = alpha * coeff[static_cast<std::ptrdiff_t>(j + 3) * inc_c];
      T* y0 = y + static_cast<std::ptrdiff_t>(j) * ldy;
      T* y1 = y0 + ldy;
      T* y2 = y1 + ldy;
      T* y3 = y2 + ldy;
      const reg v0 = VT::set1(t0), v1 = VT::set1(t1), v2 = VT::set1(t2),
                v3 = VT::set1(t3);
      int i = 0;
      for (; i + W <= n; i += W) {
        const reg xv = VT::loadu(x + i);
        VT::storeu(y0 + i, VT::fma(v0, xv, VT::loadu(y0 + i)));
        VT::storeu(y1 + i, VT::fma(v1, xv, VT::loadu(y1 + i)));
        VT::storeu(y2 + i, VT::fma(v2, xv, VT::loadu(y2 + i)));
        VT::storeu(y3 + i, VT::fma(v3, xv, VT::loadu(y3 + i)));
      }
      for (; i < n; ++i) {
        const T xi = x[i];
        y0[i] += t0 * xi;
        y1[i] += t1 * xi;
        y2[i] += t2 * xi;
        y3[i] += t3 * xi;
      }
    }
    for (; j < ncols; ++j) {
      axpy(n, alpha * coeff[static_cast<std::ptrdiff_t>(j) * inc_c], x,
           y + static_cast<std::ptrdiff_t>(j) * ldy);
    }
  }

  // y += alpha * sum_j coeff[j * inc_c] * X.col(j): each y vector is
  // loaded and stored once per block of four source columns.
  static void axpy_cols(int n, T alpha, const T* coeff, int inc_c, const T* x,
                        int ldx, int ncols, T* y) {
    int j = 0;
    for (; j + 4 <= ncols; j += 4) {
      const T t0 = alpha * coeff[static_cast<std::ptrdiff_t>(j) * inc_c];
      const T t1 = alpha * coeff[static_cast<std::ptrdiff_t>(j + 1) * inc_c];
      const T t2 = alpha * coeff[static_cast<std::ptrdiff_t>(j + 2) * inc_c];
      const T t3 = alpha * coeff[static_cast<std::ptrdiff_t>(j + 3) * inc_c];
      const T* x0 = x + static_cast<std::ptrdiff_t>(j) * ldx;
      const T* x1 = x0 + ldx;
      const T* x2 = x1 + ldx;
      const T* x3 = x2 + ldx;
      const reg v0 = VT::set1(t0), v1 = VT::set1(t1), v2 = VT::set1(t2),
                v3 = VT::set1(t3);
      int i = 0;
      for (; i + W <= n; i += W) {
        reg yv = VT::loadu(y + i);
        yv = VT::fma(v0, VT::loadu(x0 + i), yv);
        yv = VT::fma(v1, VT::loadu(x1 + i), yv);
        yv = VT::fma(v2, VT::loadu(x2 + i), yv);
        yv = VT::fma(v3, VT::loadu(x3 + i), yv);
        VT::storeu(y + i, yv);
      }
      for (; i < n; ++i) {
        y[i] += t0 * x0[i] + t1 * x1[i] + t2 * x2[i] + t3 * x3[i];
      }
    }
    for (; j < ncols; ++j) {
      axpy(n, alpha * coeff[static_cast<std::ptrdiff_t>(j) * inc_c],
           x + static_cast<std::ptrdiff_t>(j) * ldx, y);
    }
  }

  // Fused small-panel Householder apply: C := (I - tau * v * v^T) C with
  // v(0) = 1 implicit. Per block of four columns the dot pass (w_j =
  // c_j(0) + dot(v[1:], c_j[1:])) and the update pass (c_j(0) -= tau*w_j;
  // c_j[1:] -= tau*w_j * v[1:]) run back-to-back, so v and the column
  // block stay cache-hot and no work vector is needed — this is the
  // geqr2 inner loop of the batched small-matrix QR path.
  static void larf(int m, int n, T tau, const T* v, T* c, int ldc) {
    if (tau == T(0) || m <= 0) return;
    const int len = m - 1;  // rows below the implicit leading 1
    const T* vt = v + 1;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      T* c0 = c + static_cast<std::ptrdiff_t>(j) * ldc;
      T* c1 = c0 + ldc;
      T* c2 = c1 + ldc;
      T* c3 = c2 + ldc;
      reg a0 = VT::zero(), a1 = VT::zero(), a2 = VT::zero(), a3 = VT::zero();
      int i = 0;
      for (; i + W <= len; i += W) {
        const reg xv = VT::loadu(vt + i);
        a0 = VT::fma(xv, VT::loadu(c0 + 1 + i), a0);
        a1 = VT::fma(xv, VT::loadu(c1 + 1 + i), a1);
        a2 = VT::fma(xv, VT::loadu(c2 + 1 + i), a2);
        a3 = VT::fma(xv, VT::loadu(c3 + 1 + i), a3);
      }
      T s0 = c0[0] + VT::hsum(a0), s1 = c1[0] + VT::hsum(a1),
        s2 = c2[0] + VT::hsum(a2), s3 = c3[0] + VT::hsum(a3);
      for (; i < len; ++i) {
        const T vi = vt[i];
        s0 += vi * c0[1 + i];
        s1 += vi * c1[1 + i];
        s2 += vi * c2[1 + i];
        s3 += vi * c3[1 + i];
      }
      const T t0 = tau * s0, t1 = tau * s1, t2 = tau * s2, t3 = tau * s3;
      c0[0] -= t0;
      c1[0] -= t1;
      c2[0] -= t2;
      c3[0] -= t3;
      const reg w0 = VT::set1(-t0), w1 = VT::set1(-t1), w2 = VT::set1(-t2),
                w3 = VT::set1(-t3);
      i = 0;
      for (; i + W <= len; i += W) {
        const reg xv = VT::loadu(vt + i);
        VT::storeu(c0 + 1 + i, VT::fma(w0, xv, VT::loadu(c0 + 1 + i)));
        VT::storeu(c1 + 1 + i, VT::fma(w1, xv, VT::loadu(c1 + 1 + i)));
        VT::storeu(c2 + 1 + i, VT::fma(w2, xv, VT::loadu(c2 + 1 + i)));
        VT::storeu(c3 + 1 + i, VT::fma(w3, xv, VT::loadu(c3 + 1 + i)));
      }
      for (; i < len; ++i) {
        const T vi = vt[i];
        c0[1 + i] -= t0 * vi;
        c1[1 + i] -= t1 * vi;
        c2[1 + i] -= t2 * vi;
        c3[1 + i] -= t3 * vi;
      }
    }
    for (; j < n; ++j) {
      T* cj = c + static_cast<std::ptrdiff_t>(j) * ldc;
      const T t = tau * (cj[0] + dot(len, vt, cj + 1));
      cj[0] -= t;
      axpy(len, -t, vt, cj + 1);
    }
  }

  static KernelTable<T> table() {
    KernelTable<T> t;
    t.mr = MR;
    t.nr = NRK;
    t.gemm_micro = &gemm_micro;
    t.axpy = &axpy;
    t.dot = &dot;
    t.dot_cols = &dot_cols;
    t.ger_cols = &ger_cols;
    t.axpy_cols = &axpy_cols;
    t.larf = &larf;
    return t;
  }
};

}  // namespace pulsarqr::blas::simd
