// AVX-512 kernel tables. Compiled with -mavx512f regardless of the build
// host; only reachable through the runtime dispatch in simd.cpp.
//
// Micro-tile: 16x4 doubles — 4 C columns x 2 zmm accumulators = 8 of the
// 32 zmm registers, plus 2 for the A column and 1 for the B broadcast.
// 16x4 beats 8x8 here because each A load is amortized over two FMAs per
// broadcast and the writeback stays two stores per column. Floats double
// the lane count to 32x4.
#include "blas/simd_kernels_inc.hpp"
#include "blas/simd_tables.hpp"

#include <immintrin.h>

// GCC's _mm512_reduce_add_* expand through _mm256_undefined_pd(), which
// -Wuninitialized flags spuriously (the lanes are masked off).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace pulsarqr::blas::simd {
namespace {

struct Avx512D {
  using T = double;
  using reg = __m512d;
  static constexpr int W = 8;
  static reg zero() { return _mm512_setzero_pd(); }
  static reg set1(T a) { return _mm512_set1_pd(a); }
  static reg load(const T* p) { return _mm512_load_pd(p); }
  static reg loadu(const T* p) { return _mm512_loadu_pd(p); }
  static void storeu(T* p, reg v) { _mm512_storeu_pd(p, v); }
  static reg add(reg a, reg b) { return _mm512_add_pd(a, b); }
  static reg fma(reg a, reg b, reg c) { return _mm512_fmadd_pd(a, b, c); }
  static T hsum(reg v) { return _mm512_reduce_add_pd(v); }
};

struct Avx512F {
  using T = float;
  using reg = __m512;
  static constexpr int W = 16;
  static reg zero() { return _mm512_setzero_ps(); }
  static reg set1(T a) { return _mm512_set1_ps(a); }
  static reg load(const T* p) { return _mm512_load_ps(p); }
  static reg loadu(const T* p) { return _mm512_loadu_ps(p); }
  static void storeu(T* p, reg v) { _mm512_storeu_ps(p, v); }
  static reg add(reg a, reg b) { return _mm512_add_ps(a, b); }
  static reg fma(reg a, reg b, reg c) { return _mm512_fmadd_ps(a, b, c); }
  static T hsum(reg v) { return _mm512_reduce_add_ps(v); }
};

}  // namespace

const KernelTable<double>& avx512_table_f64() {
  static const KernelTable<double> t = Kernels<Avx512D, 2, 4>::table();
  return t;
}

const KernelTable<float>& avx512_table_f32() {
  static const KernelTable<float> t = Kernels<Avx512F, 2, 4>::table();
  return t;
}

}  // namespace pulsarqr::blas::simd
