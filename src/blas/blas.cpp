#include "blas/blas.hpp"

#include <atomic>
#include <cmath>
#include <limits>

#include "blas/simd.hpp"

namespace pulsarqr::blas {

// ---- Level 1 -------------------------------------------------------------
//
// axpy and dot are the innermost loops of every panel factorization; they
// route through the runtime-dispatched SIMD kernel table (an atomic pointer
// load — the table itself is immutable once published).

void axpy(int n, double a, const double* x, double* y) {
  simd::kernels<double>().axpy(n, a, x, y);
}

void axpy(int n, float a, const float* x, float* y) {
  simd::kernels<float>().axpy(n, a, x, y);
}

double dot(int n, const double* x, const double* y) {
  return simd::kernels<double>().dot(n, x, y);
}

float dot(int n, const float* x, const float* y) {
  return simd::kernels<float>().dot(n, x, y);
}

namespace {

template <class T>
void scal_t(int n, T a, T* x) {
  for (int i = 0; i < n; ++i) x[i] *= a;
}

template <class T>
T nrm2_t(int n, const T* x) {
  // Scaled sum of squares, as in LAPACK dlassq, to avoid overflow/underflow.
  T scale = T(0);
  T ssq = T(1);
  for (int i = 0; i < n; ++i) {
    const T ax = std::fabs(x[i]);
    if (ax == T(0)) continue;
    if (scale < ax) {
      const T r = scale / ax;
      ssq = T(1) + ssq * r * r;
      scale = ax;
    } else {
      const T r = ax / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

}  // namespace

void scal(int n, double a, double* x) { scal_t(n, a, x); }
void scal(int n, float a, float* x) { scal_t(n, a, x); }

double nrm2(int n, const double* x) { return nrm2_t(n, x); }
float nrm2(int n, const float* x) { return nrm2_t(n, x); }

void copy(int n, const double* x, double* y) {
  for (int i = 0; i < n; ++i) y[i] = x[i];
}

void copy(int n, const float* x, float* y) {
  for (int i = 0; i < n; ++i) y[i] = x[i];
}

// ---- Level 2 -------------------------------------------------------------

namespace {

template <class T>
void gemv_t(Trans trans, T alpha, ConstMatrixViewT<T> a, const T* x, T beta,
            T* y) {
  const int m = a.rows;
  const int n = a.cols;
  const auto& kt = simd::kernels<T>();
  if (trans == Trans::No) {
    if (beta != T(1)) scal(m, beta, y);
    if (alpha == T(0) || n == 0 || m == 0) return;
    // y += alpha * sum_j x[j] * A(:, j), four columns fused per sweep.
    kt.axpy_cols(m, alpha, x, 1, a.data, a.ld, n, y);
  } else {
    if (beta != T(1)) scal(n, beta, y);
    if (alpha == T(0) || m == 0 || n == 0) return;
    // y[j] += alpha * dot(A(:, j), x), four columns per pass of x.
    kt.dot_cols(m, alpha, x, a.data, a.ld, n, y, 1);
  }
}

template <class T>
void ger_t(T alpha, const T* x, const T* y, MatrixViewT<T> a) {
  if (alpha == T(0) || a.rows == 0 || a.cols == 0) return;
  simd::kernels<T>().ger_cols(a.rows, alpha, x, y, 1, a.data, a.ld, a.cols);
}

template <class T>
void trmv_t(Uplo uplo, Trans trans, Diag diag, ConstMatrixViewT<T> a, T* x) {
  const int n = a.rows;
  PQR_ASSERT(a.cols == n, "trmv: A must be square");
  const bool unit = diag == Diag::Unit;
  if (trans == Trans::No) {
    if (uplo == Uplo::Upper) {
      for (int i = 0; i < n; ++i) {
        T s = unit ? x[i] : a(i, i) * x[i];
        for (int j = i + 1; j < n; ++j) s += a(i, j) * x[j];
        x[i] = s;
      }
    } else {
      for (int i = n - 1; i >= 0; --i) {
        T s = unit ? x[i] : a(i, i) * x[i];
        for (int j = 0; j < i; ++j) s += a(i, j) * x[j];
        x[i] = s;
      }
    }
  } else {
    if (uplo == Uplo::Upper) {
      for (int j = n - 1; j >= 0; --j) {
        T s = unit ? x[j] : a(j, j) * x[j];
        for (int i = 0; i < j; ++i) s += a(i, j) * x[i];
        x[j] = s;
      }
    } else {
      for (int j = 0; j < n; ++j) {
        T s = unit ? x[j] : a(j, j) * x[j];
        for (int i = j + 1; i < n; ++i) s += a(i, j) * x[i];
        x[j] = s;
      }
    }
  }
}

}  // namespace

void gemv(Trans trans, double alpha, ConstMatrixView a, const double* x,
          double beta, double* y) {
  gemv_t(trans, alpha, a, x, beta, y);
}

void gemv(Trans trans, float alpha, ConstMatrixViewF a, const float* x,
          float beta, float* y) {
  gemv_t(trans, alpha, a, x, beta, y);
}

void ger(double alpha, const double* x, const double* y, MatrixView a) {
  ger_t(alpha, x, y, a);
}

void ger(float alpha, const float* x, const float* y, MatrixViewF a) {
  ger_t(alpha, x, y, a);
}

void trmv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView a, double* x) {
  trmv_t(uplo, trans, diag, a, x);
}

void trmv(Uplo uplo, Trans trans, Diag diag, ConstMatrixViewF a, float* x) {
  trmv_t(uplo, trans, diag, a, x);
}

void trsv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView a, double* x) {
  const int n = a.rows;
  PQR_ASSERT(a.cols == n, "trsv: A must be square");
  const bool unit = diag == Diag::Unit;
  if (trans == Trans::No) {
    if (uplo == Uplo::Upper) {
      for (int i = n - 1; i >= 0; --i) {
        double s = x[i];
        for (int j = i + 1; j < n; ++j) s -= a(i, j) * x[j];
        x[i] = unit ? s : s / a(i, i);
      }
    } else {
      for (int i = 0; i < n; ++i) {
        double s = x[i];
        for (int j = 0; j < i; ++j) s -= a(i, j) * x[j];
        x[i] = unit ? s : s / a(i, i);
      }
    }
  } else {
    if (uplo == Uplo::Upper) {
      for (int i = 0; i < n; ++i) {
        double s = x[i];
        for (int j = 0; j < i; ++j) s -= a(j, i) * x[j];
        x[i] = unit ? s : s / a(i, i);
      }
    } else {
      for (int i = n - 1; i >= 0; --i) {
        double s = x[i];
        for (int j = i + 1; j < n; ++j) s -= a(j, i) * x[j];
        x[i] = unit ? s : s / a(i, i);
      }
    }
  }
}

// ---- Level 3 -------------------------------------------------------------

namespace {

// C := C + alpha * A * B. The inner kernels are 4-way unrolled over k so
// each sweep of a C column touches it once per four A columns — the
// no-dependency accumulator form the compiler can vectorize. These stay
// plain loops on purpose: gemm_ref is the scalar reference the SIMD
// kernels are fuzz-checked against.
template <class T>
void gemm_nn(T alpha, ConstMatrixViewT<T> a, ConstMatrixViewT<T> b,
             MatrixViewT<T> c) {
  const int m = c.rows;
  const int kk = a.cols;
  for (int j = 0; j < c.cols; ++j) {
    T* cj = c.col(j);
    int k = 0;
    for (; k + 4 <= kk; k += 4) {
      const T t0 = alpha * b(k, j);
      const T t1 = alpha * b(k + 1, j);
      const T t2 = alpha * b(k + 2, j);
      const T t3 = alpha * b(k + 3, j);
      const T* a0 = a.col(k);
      const T* a1 = a.col(k + 1);
      const T* a2 = a.col(k + 2);
      const T* a3 = a.col(k + 3);
      for (int i = 0; i < m; ++i) {
        cj[i] += t0 * a0[i] + t1 * a1[i] + t2 * a2[i] + t3 * a3[i];
      }
    }
    for (; k < kk; ++k) {
      const T t = alpha * b(k, j);
      if (t == T(0)) continue;
      const T* ak = a.col(k);
      for (int i = 0; i < m; ++i) cj[i] += t * ak[i];
    }
  }
}

template <class T>
void gemm_tn(T alpha, ConstMatrixViewT<T> a, ConstMatrixViewT<T> b,
             MatrixViewT<T> c) {
  // C(i,j) += alpha * dot(A(:,i), B(:,j)); four rows of C share one pass
  // over B's column.
  const int kk = a.rows;
  for (int j = 0; j < c.cols; ++j) {
    const T* bj = b.col(j);
    int i = 0;
    for (; i + 4 <= c.rows; i += 4) {
      const T* a0 = a.col(i);
      const T* a1 = a.col(i + 1);
      const T* a2 = a.col(i + 2);
      const T* a3 = a.col(i + 3);
      T s0 = T(0), s1 = T(0), s2 = T(0), s3 = T(0);
      for (int p = 0; p < kk; ++p) {
        const T bp = bj[p];
        s0 += a0[p] * bp;
        s1 += a1[p] * bp;
        s2 += a2[p] * bp;
        s3 += a3[p] * bp;
      }
      c(i, j) += alpha * s0;
      c(i + 1, j) += alpha * s1;
      c(i + 2, j) += alpha * s2;
      c(i + 3, j) += alpha * s3;
    }
    for (; i < c.rows; ++i) {
      T s = T(0);
      for (int p = 0; p < kk; ++p) s += a(p, i) * bj[p];
      c(i, j) += alpha * s;
    }
  }
}

template <class T>
void gemm_nt(T alpha, ConstMatrixViewT<T> a, ConstMatrixViewT<T> b,
             MatrixViewT<T> c) {
  const int m = c.rows;
  const int kk = a.cols;
  for (int j = 0; j < c.cols; ++j) {
    T* cj = c.col(j);
    int k = 0;
    for (; k + 4 <= kk; k += 4) {
      const T t0 = alpha * b(j, k);
      const T t1 = alpha * b(j, k + 1);
      const T t2 = alpha * b(j, k + 2);
      const T t3 = alpha * b(j, k + 3);
      const T* a0 = a.col(k);
      const T* a1 = a.col(k + 1);
      const T* a2 = a.col(k + 2);
      const T* a3 = a.col(k + 3);
      for (int i = 0; i < m; ++i) {
        cj[i] += t0 * a0[i] + t1 * a1[i] + t2 * a2[i] + t3 * a3[i];
      }
    }
    for (; k < kk; ++k) {
      const T t = alpha * b(j, k);
      if (t == T(0)) continue;
      const T* ak = a.col(k);
      for (int i = 0; i < m; ++i) cj[i] += t * ak[i];
    }
  }
}

template <class T>
void gemm_tt(T alpha, ConstMatrixViewT<T> a, ConstMatrixViewT<T> b,
             MatrixViewT<T> c) {
  // C(i,j) += alpha * dot(A(:,i), B(j,:)); like gemm_tn, four rows of C
  // share one (strided) pass over B's row j, with independent accumulators.
  const int kk = a.rows;
  for (int j = 0; j < c.cols; ++j) {
    int i = 0;
    for (; i + 4 <= c.rows; i += 4) {
      const T* a0 = a.col(i);
      const T* a1 = a.col(i + 1);
      const T* a2 = a.col(i + 2);
      const T* a3 = a.col(i + 3);
      T s0 = T(0), s1 = T(0), s2 = T(0), s3 = T(0);
      for (int p = 0; p < kk; ++p) {
        const T bp = b(j, p);
        s0 += a0[p] * bp;
        s1 += a1[p] * bp;
        s2 += a2[p] * bp;
        s3 += a3[p] * bp;
      }
      c(i, j) += alpha * s0;
      c(i + 1, j) += alpha * s1;
      c(i + 2, j) += alpha * s2;
      c(i + 3, j) += alpha * s3;
    }
    for (; i < c.rows; ++i) {
      T s = T(0);
      for (int p = 0; p < kk; ++p) s += a(p, i) * b(j, p);
      c(i, j) += alpha * s;
    }
  }
}

std::atomic<GemmImpl> g_gemm_impl{GemmImpl::Packed};

template <class T>
void laset_all_t(T off, T diag, MatrixViewT<T> a) {
  for (int j = 0; j < a.cols; ++j) {
    T* cj = a.col(j);
    for (int i = 0; i < a.rows; ++i) cj[i] = off;
    if (j < a.rows) cj[j] = diag;
  }
}

template <class T>
void gemm_ref_t(Trans ta, Trans tb, T alpha, ConstMatrixViewT<T> a,
                ConstMatrixViewT<T> b, T beta, MatrixViewT<T> c) {
  const int ka = (ta == Trans::No) ? a.cols : a.rows;
  const int kb = (tb == Trans::No) ? b.rows : b.cols;
  const int ma = (ta == Trans::No) ? a.rows : a.cols;
  const int nb_ = (tb == Trans::No) ? b.cols : b.rows;
  PQR_ASSERT(ka == kb && ma == c.rows && nb_ == c.cols, "gemm: shape mismatch");
  if (beta == T(0)) {
    laset_all_t(T(0), T(0), c);
  } else if (beta != T(1)) {
    for (int j = 0; j < c.cols; ++j) scal(c.rows, beta, c.col(j));
  }
  if (alpha == T(0) || ka == 0) return;
  if (ta == Trans::No && tb == Trans::No) {
    gemm_nn(alpha, a, b, c);
  } else if (ta == Trans::Yes && tb == Trans::No) {
    gemm_tn(alpha, a, b, c);
  } else if (ta == Trans::No && tb == Trans::Yes) {
    gemm_nt(alpha, a, b, c);
  } else {
    gemm_tt(alpha, a, b, c);
  }
}

// Crossover between the direct small path and the packed loop nest,
// derived from the active table's register tile: packing (two streaming
// copies plus zero padding) starts paying for itself once the product
// covers roughly 64 micro-tile volumes. For the AVX-512 f64 tile (16x4)
// this reproduces the old hard-coded 4096 cutoff; smaller tiles (scalar
// 8x4, NEON 4x4) amortize packing sooner and now get a lower threshold
// instead of inheriting a constant tuned on the widest ISA.
template <class T>
long long gemm_small_max_work_t() {
  const simd::KernelTable<T>& kt = simd::kernels<T>();
  return 64LL * kt.mr * kt.nr;
}

// Direct small-shape gemm: every column of C is produced by one fused
// table sweep over the operands in place — no packing, and (unlike the
// packed path) no thread_local pack-buffer touch, so a tiny product never
// faults in the MC*KC/KC*NC panel pages. TT is the one combination with
// no contiguous fused sweep (both operands would be row-strided); it is
// rare in the QR kernels and falls back to the reference sweep.
template <class T>
void gemm_small_t(Trans ta, Trans tb, T alpha, ConstMatrixViewT<T> a,
                  ConstMatrixViewT<T> b, T beta, MatrixViewT<T> c) {
  const int m = c.rows;
  const int n = c.cols;
  const int k = (ta == Trans::No) ? a.cols : a.rows;
  {
    const int kb = (tb == Trans::No) ? b.rows : b.cols;
    const int ma = (ta == Trans::No) ? a.rows : a.cols;
    const int nb_ = (tb == Trans::No) ? b.cols : b.rows;
    PQR_ASSERT(k == kb && ma == m && nb_ == n, "gemm: shape mismatch");
  }
  if (beta == T(0)) {
    laset_all_t(T(0), T(0), c);
  } else if (beta != T(1)) {
    for (int j = 0; j < c.cols; ++j) scal(c.rows, beta, c.col(j));
  }
  if (alpha == T(0) || k == 0 || m == 0 || n == 0) return;
  const simd::KernelTable<T>& kt = simd::kernels<T>();
  if (ta == Trans::No && tb == Trans::No) {
    // C.col(j) += alpha * sum_p B(p,j) * A.col(p)
    for (int j = 0; j < n; ++j) {
      kt.axpy_cols(m, alpha, b.col(j), 1, a.data, a.ld, k, c.col(j));
    }
  } else if (ta == Trans::Yes && tb == Trans::No) {
    // C(i,j) += alpha * dot(A.col(i), B.col(j))
    for (int j = 0; j < n; ++j) {
      kt.dot_cols(k, alpha, b.col(j), a.data, a.ld, m, c.col(j), 1);
    }
  } else if (ta == Trans::No && tb == Trans::Yes) {
    // C.col(j) += alpha * sum_p B(j,p) * A.col(p): B's row j is the
    // coefficient vector, strided by its leading dimension.
    for (int j = 0; j < n; ++j) {
      kt.axpy_cols(m, alpha, b.data + j, b.ld, a.data, a.ld, k, c.col(j));
    }
  } else {
    gemm_tt(alpha, a, b, c);
  }
}

template <class T>
void gemm_t(Trans ta, Trans tb, T alpha, ConstMatrixViewT<T> a,
            ConstMatrixViewT<T> b, T beta, MatrixViewT<T> c) {
  const int k = (ta == Trans::No) ? a.cols : a.rows;
  // Tiny products cannot amortize the packing sweep; they go to the
  // direct small tier instead (still through the SIMD tables, but with
  // the operands read in place).
  const long long work = static_cast<long long>(c.rows) * c.cols * k;
  if (gemm_impl() != GemmImpl::Packed) {
    gemm_ref(ta, tb, alpha, a, b, beta, c);
  } else if (work > gemm_small_max_work_t<T>()) {
    gemm_packed(ta, tb, alpha, a, b, beta, c);
  } else {
    gemm_small_t(ta, tb, alpha, a, b, beta, c);
  }
}

}  // namespace

void set_gemm_impl(GemmImpl impl) {
  g_gemm_impl.store(impl, std::memory_order_relaxed);
}

GemmImpl gemm_impl() { return g_gemm_impl.load(std::memory_order_relaxed); }

void gemm_ref(Trans ta, Trans tb, double alpha, ConstMatrixView a,
              ConstMatrixView b, double beta, MatrixView c) {
  gemm_ref_t(ta, tb, alpha, a, b, beta, c);
}

void gemm_ref(Trans ta, Trans tb, float alpha, ConstMatrixViewF a,
              ConstMatrixViewF b, float beta, MatrixViewF c) {
  gemm_ref_t(ta, tb, alpha, a, b, beta, c);
}

void gemm_small(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                ConstMatrixView b, double beta, MatrixView c) {
  gemm_small_t(ta, tb, alpha, a, b, beta, c);
}

void gemm_small(Trans ta, Trans tb, float alpha, ConstMatrixViewF a,
                ConstMatrixViewF b, float beta, MatrixViewF c) {
  gemm_small_t(ta, tb, alpha, a, b, beta, c);
}

long long gemm_small_max_work_f64() { return gemm_small_max_work_t<double>(); }

long long gemm_small_max_work_f32() { return gemm_small_max_work_t<float>(); }

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  gemm_t(ta, tb, alpha, a, b, beta, c);
}

void gemm(Trans ta, Trans tb, float alpha, ConstMatrixViewF a,
          ConstMatrixViewF b, float beta, MatrixViewF c) {
  gemm_t(ta, tb, alpha, a, b, beta, c);
}

namespace {

template <class T>
void trmm_t(Side side, Uplo uplo, Trans trans, Diag diag, T alpha,
            ConstMatrixViewT<T> a, MatrixViewT<T> b) {
  if (side == Side::Left) {
    PQR_ASSERT(a.rows == b.rows && a.cols == b.rows, "trmm: shape mismatch");
    for (int j = 0; j < b.cols; ++j) {
      trmv(uplo, trans, diag, a, b.col(j));
      if (alpha != T(1)) scal(b.rows, alpha, b.col(j));
    }
  } else {
    PQR_ASSERT(a.rows == b.cols && a.cols == b.cols, "trmm: shape mismatch");
    // B := alpha * B * op(A). Work row-wise via column combinations:
    // treat each row of B as a vector times op(A) from the right, i.e.
    // B(:,j) := alpha * sum_k B(:,k) * op(A)(k,j). Computed out-of-place
    // one column at a time in the safe traversal order.
    const int n = b.cols;
    const bool upper_effect = (uplo == Uplo::Upper) == (trans == Trans::No);
    if (upper_effect) {
      // op(A) upper: column j depends on columns k <= j, traverse j desc.
      for (int j = n - 1; j >= 0; --j) {
        const T ajj = diag == Diag::Unit ? T(1) : a(j, j);
        scal(b.rows, alpha * ajj, b.col(j));
        for (int k = 0; k < j; ++k) {
          const T t = alpha * (trans == Trans::No ? a(k, j) : a(j, k));
          if (t != T(0)) axpy(b.rows, t, b.col(k), b.col(j));
        }
      }
    } else {
      // op(A) lower: column j depends on columns k >= j, traverse j asc.
      for (int j = 0; j < n; ++j) {
        const T ajj = diag == Diag::Unit ? T(1) : a(j, j);
        scal(b.rows, alpha * ajj, b.col(j));
        for (int k = j + 1; k < n; ++k) {
          const T t = alpha * (trans == Trans::No ? a(k, j) : a(j, k));
          if (t != T(0)) axpy(b.rows, t, b.col(k), b.col(j));
        }
      }
    }
  }
}

}  // namespace

void trmm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b) {
  trmm_t(side, uplo, trans, diag, alpha, a, b);
}

void trmm(Side side, Uplo uplo, Trans trans, Diag diag, float alpha,
          ConstMatrixViewF a, MatrixViewF b) {
  trmm_t(side, uplo, trans, diag, alpha, a, b);
}

void trsm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b) {
  if (alpha != 1.0) {
    for (int j = 0; j < b.cols; ++j) scal(b.rows, alpha, b.col(j));
  }
  if (side == Side::Left) {
    PQR_ASSERT(a.rows == b.rows && a.cols == b.rows, "trsm: shape mismatch");
    for (int j = 0; j < b.cols; ++j) trsv(uplo, trans, diag, a, b.col(j));
  } else {
    PQR_ASSERT(a.rows == b.cols && a.cols == b.cols, "trsm: shape mismatch");
    // Solve X * op(A) = B, i.e. column recurrences over X's columns.
    const int n = b.cols;
    const bool upper_effect = (uplo == Uplo::Upper) == (trans == Trans::No);
    if (upper_effect) {
      // op(A) upper triangular: X(:,j) = (B(:,j) - sum_{k<j} X(:,k) op(A)(k,j)) / op(A)(j,j)
      for (int j = 0; j < n; ++j) {
        for (int k = 0; k < j; ++k) {
          const double t = trans == Trans::No ? a(k, j) : a(j, k);
          if (t != 0.0) axpy(b.rows, -t, b.col(k), b.col(j));
        }
        if (diag == Diag::NonUnit) scal(b.rows, 1.0 / a(j, j), b.col(j));
      }
    } else {
      for (int j = n - 1; j >= 0; --j) {
        for (int k = j + 1; k < n; ++k) {
          const double t = trans == Trans::No ? a(k, j) : a(j, k);
          if (t != 0.0) axpy(b.rows, -t, b.col(k), b.col(j));
        }
        if (diag == Diag::NonUnit) scal(b.rows, 1.0 / a(j, j), b.col(j));
      }
    }
  }
}

// ---- Auxiliary -------------------------------------------------------------

void laset_all(double off, double diag, MatrixView a) {
  laset_all_t(off, diag, a);
}

void laset_all(float off, float diag, MatrixViewF a) {
  laset_all_t(off, diag, a);
}

void laset(Uplo uplo, double off, double diag, MatrixView a) {
  for (int j = 0; j < a.cols; ++j) {
    if (uplo == Uplo::Upper) {
      for (int i = 0; i < j && i < a.rows; ++i) a(i, j) = off;
    } else {
      for (int i = j + 1; i < a.rows; ++i) a(i, j) = off;
    }
    if (j < a.rows) a(j, j) = diag;
  }
}

void lacpy_all(ConstMatrixView a, MatrixView b) {
  PQR_ASSERT(a.rows == b.rows && a.cols == b.cols, "lacpy: shape mismatch");
  for (int j = 0; j < a.cols; ++j) copy(a.rows, a.col(j), b.col(j));
}

void lacpy_all(ConstMatrixViewF a, MatrixViewF b) {
  PQR_ASSERT(a.rows == b.rows && a.cols == b.cols, "lacpy: shape mismatch");
  for (int j = 0; j < a.cols; ++j) copy(a.rows, a.col(j), b.col(j));
}

void lacpy(Uplo uplo, ConstMatrixView a, MatrixView b) {
  PQR_ASSERT(a.rows == b.rows && a.cols == b.cols, "lacpy: shape mismatch");
  for (int j = 0; j < a.cols; ++j) {
    if (uplo == Uplo::Upper) {
      const int top = j < a.rows - 1 ? j + 1 : a.rows;
      copy(top, a.col(j), b.col(j));
    } else {
      for (int i = j; i < a.rows; ++i) b(i, j) = a(i, j);
    }
  }
}

double norm_fro(ConstMatrixView a) {
  double scale = 0.0;
  double ssq = 1.0;
  for (int j = 0; j < a.cols; ++j) {
    for (int i = 0; i < a.rows; ++i) {
      const double ax = std::fabs(a(i, j));
      if (ax == 0.0) continue;
      if (scale < ax) {
        const double r = scale / ax;
        ssq = 1.0 + ssq * r * r;
        scale = ax;
      } else {
        const double r = ax / scale;
        ssq += r * r;
      }
    }
  }
  return scale * std::sqrt(ssq);
}

double norm_max(ConstMatrixView a) {
  double m = 0.0;
  for (int j = 0; j < a.cols; ++j) {
    for (int i = 0; i < a.rows; ++i) {
      m = std::fmax(m, std::fabs(a(i, j)));
    }
  }
  return m;
}

double norm_one(ConstMatrixView a) {
  double m = 0.0;
  for (int j = 0; j < a.cols; ++j) {
    double s = 0.0;
    for (int i = 0; i < a.rows; ++i) s += std::fabs(a(i, j));
    m = std::fmax(m, s);
  }
  return m;
}

}  // namespace pulsarqr::blas
