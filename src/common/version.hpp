// Library version.
#pragma once

#define PULSARQR_VERSION_MAJOR 1
#define PULSARQR_VERSION_MINOR 0
#define PULSARQR_VERSION_PATCH 0
#define PULSARQR_VERSION "1.0.0"

namespace pulsarqr {
/// Version string of the library ("major.minor.patch").
inline const char* version() { return PULSARQR_VERSION; }
}  // namespace pulsarqr
