// Error handling for pulsarqr.
//
// The library throws pulsarqr::Error for user-facing contract violations
// (bad dimensions, invalid configuration) and uses PQR_ASSERT for internal
// invariants that indicate a library bug.
#pragma once

#include <stdexcept>
#include <string>

namespace pulsarqr {

/// Exception thrown on API contract violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

/// Check a user-facing precondition; throws pulsarqr::Error on failure.
void require(bool cond, const std::string& msg);

}  // namespace pulsarqr

// Internal invariant check. Active in all build types: the runtime is
// concurrent and silent corruption is far more expensive than the branch.
#define PQR_ASSERT(expr, msg)                                             \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::pulsarqr::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                     \
  } while (false)
