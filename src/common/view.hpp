// Column-major 2-D views over contiguous storage (LAPACK convention).
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace pulsarqr {

/// Non-owning mutable column-major matrix view: element (i, j) is
/// data[i + j * ld]. All dense-kernel routines in blas/ and lapack/ take
/// MatrixView / ConstMatrixView so they compose with tiles, dense matrices
/// and sub-blocks alike.
struct MatrixView {
  double* data = nullptr;
  int rows = 0;
  int cols = 0;
  int ld = 0;  ///< leading dimension, >= rows

  MatrixView() = default;
  MatrixView(double* d, int m, int n, int l) : data(d), rows(m), cols(n), ld(l) {
    PQR_ASSERT(m >= 0 && n >= 0 && l >= m, "bad MatrixView shape");
  }

  double& operator()(int i, int j) const { return data[i + static_cast<std::ptrdiff_t>(j) * ld]; }

  /// Sub-view of rows [i0, i0+m) x cols [j0, j0+n).
  MatrixView block(int i0, int j0, int m, int n) const {
    PQR_ASSERT(i0 >= 0 && j0 >= 0 && i0 + m <= rows && j0 + n <= cols,
               "MatrixView::block out of range");
    return MatrixView(data + i0 + static_cast<std::ptrdiff_t>(j0) * ld, m, n, ld);
  }

  /// Column j as a raw pointer (length rows).
  double* col(int j) const { return data + static_cast<std::ptrdiff_t>(j) * ld; }
};

/// Non-owning read-only column-major matrix view.
struct ConstMatrixView {
  const double* data = nullptr;
  int rows = 0;
  int cols = 0;
  int ld = 0;

  ConstMatrixView() = default;
  ConstMatrixView(const double* d, int m, int n, int l)
      : data(d), rows(m), cols(n), ld(l) {
    PQR_ASSERT(m >= 0 && n >= 0 && l >= m, "bad ConstMatrixView shape");
  }
  ConstMatrixView(const MatrixView& v)  // NOLINT: implicit by design
      : data(v.data), rows(v.rows), cols(v.cols), ld(v.ld) {}

  const double& operator()(int i, int j) const {
    return data[i + static_cast<std::ptrdiff_t>(j) * ld];
  }

  ConstMatrixView block(int i0, int j0, int m, int n) const {
    PQR_ASSERT(i0 >= 0 && j0 >= 0 && i0 + m <= rows && j0 + n <= cols,
               "ConstMatrixView::block out of range");
    return ConstMatrixView(data + i0 + static_cast<std::ptrdiff_t>(j0) * ld, m, n, ld);
  }

  const double* col(int j) const { return data + static_cast<std::ptrdiff_t>(j) * ld; }
};

/// Owning column-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int m, int n) : rows_(m), cols_(n), data_(checked_size(m, n), 0.0) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int ld() const { return rows_; }

  double& operator()(int i, int j) {
    return data_[i + static_cast<std::size_t>(j) * rows_];
  }
  const double& operator()(int i, int j) const {
    return data_[i + static_cast<std::size_t>(j) * rows_];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  MatrixView view() { return MatrixView(data_.data(), rows_, cols_, rows_); }
  ConstMatrixView view() const {
    return ConstMatrixView(data_.data(), rows_, cols_, rows_);
  }
  MatrixView block(int i0, int j0, int m, int n) { return view().block(i0, j0, m, n); }
  ConstMatrixView block(int i0, int j0, int m, int n) const {
    return view().block(i0, j0, m, n);
  }

 private:
  static std::size_t checked_size(int m, int n) {
    require(m >= 0 && n >= 0, "Matrix dimensions must be non-negative");
    return static_cast<std::size_t>(m) * static_cast<std::size_t>(n);
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

}  // namespace pulsarqr
