// Column-major 2-D views over contiguous storage (LAPACK convention).
//
// The views are templated on the scalar type so the kernel layer (blas/,
// lapack/, kernels/) can be instantiated for both double and float; the
// unsuffixed MatrixView/ConstMatrixView/Matrix aliases are the double
// instantiations used throughout the runtime.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace pulsarqr {

/// Non-owning mutable column-major matrix view: element (i, j) is
/// data[i + j * ld]. All dense-kernel routines in blas/ and lapack/ take
/// MatrixViewT / ConstMatrixViewT so they compose with tiles, dense
/// matrices and sub-blocks alike.
template <class T>
struct MatrixViewT {
  T* data = nullptr;
  int rows = 0;
  int cols = 0;
  int ld = 0;  ///< leading dimension, >= rows

  MatrixViewT() = default;
  MatrixViewT(T* d, int m, int n, int l) : data(d), rows(m), cols(n), ld(l) {
    PQR_ASSERT(m >= 0 && n >= 0 && l >= m, "bad MatrixView shape");
  }

  T& operator()(int i, int j) const {
    return data[i + static_cast<std::ptrdiff_t>(j) * ld];
  }

  /// Sub-view of rows [i0, i0+m) x cols [j0, j0+n).
  MatrixViewT block(int i0, int j0, int m, int n) const {
    PQR_ASSERT(i0 >= 0 && j0 >= 0 && i0 + m <= rows && j0 + n <= cols,
               "MatrixView::block out of range");
    return MatrixViewT(data + i0 + static_cast<std::ptrdiff_t>(j0) * ld, m, n,
                       ld);
  }

  /// Column j as a raw pointer (length rows).
  T* col(int j) const { return data + static_cast<std::ptrdiff_t>(j) * ld; }
};

/// Non-owning read-only column-major matrix view.
template <class T>
struct ConstMatrixViewT {
  const T* data = nullptr;
  int rows = 0;
  int cols = 0;
  int ld = 0;

  ConstMatrixViewT() = default;
  ConstMatrixViewT(const T* d, int m, int n, int l)
      : data(d), rows(m), cols(n), ld(l) {
    PQR_ASSERT(m >= 0 && n >= 0 && l >= m, "bad ConstMatrixView shape");
  }
  ConstMatrixViewT(const MatrixViewT<T>& v)  // NOLINT: implicit by design
      : data(v.data), rows(v.rows), cols(v.cols), ld(v.ld) {}

  const T& operator()(int i, int j) const {
    return data[i + static_cast<std::ptrdiff_t>(j) * ld];
  }

  ConstMatrixViewT block(int i0, int j0, int m, int n) const {
    PQR_ASSERT(i0 >= 0 && j0 >= 0 && i0 + m <= rows && j0 + n <= cols,
               "ConstMatrixView::block out of range");
    return ConstMatrixViewT(data + i0 + static_cast<std::ptrdiff_t>(j0) * ld,
                            m, n, ld);
  }

  const T* col(int j) const {
    return data + static_cast<std::ptrdiff_t>(j) * ld;
  }
};

/// Owning column-major dense matrix.
template <class T>
class MatrixT {
 public:
  MatrixT() = default;
  MatrixT(int m, int n) : rows_(m), cols_(n), data_(checked_size(m, n), T(0)) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int ld() const { return rows_; }

  T& operator()(int i, int j) {
    return data_[i + static_cast<std::size_t>(j) * rows_];
  }
  const T& operator()(int i, int j) const {
    return data_[i + static_cast<std::size_t>(j) * rows_];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  MatrixViewT<T> view() {
    return MatrixViewT<T>(data_.data(), rows_, cols_, rows_);
  }
  ConstMatrixViewT<T> view() const {
    return ConstMatrixViewT<T>(data_.data(), rows_, cols_, rows_);
  }
  MatrixViewT<T> block(int i0, int j0, int m, int n) {
    return view().block(i0, j0, m, n);
  }
  ConstMatrixViewT<T> block(int i0, int j0, int m, int n) const {
    return view().block(i0, j0, m, n);
  }

 private:
  static std::size_t checked_size(int m, int n) {
    require(m >= 0 && n >= 0, "Matrix dimensions must be non-negative");
    return static_cast<std::size_t>(m) * static_cast<std::size_t>(n);
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<T> data_;
};

/// The double-precision instantiations the runtime and result stores use.
using MatrixView = MatrixViewT<double>;
using ConstMatrixView = ConstMatrixViewT<double>;
using Matrix = MatrixT<double>;

/// Single-precision aliases for the float kernel path.
using MatrixViewF = MatrixViewT<float>;
using ConstMatrixViewF = ConstMatrixViewT<float>;
using MatrixF = MatrixT<float>;

}  // namespace pulsarqr
