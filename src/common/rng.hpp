// Deterministic random matrix generation for tests, examples and benches.
#pragma once

#include <cstdint>

#include "common/view.hpp"

namespace pulsarqr {

/// Small, fast, reproducible PRNG (xoshiro256**). Deterministic across
/// platforms, unlike std::mt19937 + std::uniform_real_distribution.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();
  /// Uniform double in [-1, 1).
  double next_symmetric();
  /// Uniform double in [0, 1).
  double next_unit();

 private:
  std::uint64_t s_[4];
};

/// Fill a matrix view with uniform values in [-1, 1), reproducibly.
void fill_random(MatrixView a, std::uint64_t seed);

/// Fill with a well-conditioned random matrix: uniform noise plus a
/// diagonal shift that keeps tall-skinny least-squares problems benign.
void fill_random_well_conditioned(MatrixView a, std::uint64_t seed);

}  // namespace pulsarqr
