#include "common/rng.hpp"

namespace pulsarqr {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_unit() {
  // Top 53 bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_symmetric() { return 2.0 * next_unit() - 1.0; }

void fill_random(MatrixView a, std::uint64_t seed) {
  Rng rng(seed);
  for (int j = 0; j < a.cols; ++j) {
    for (int i = 0; i < a.rows; ++i) {
      a(i, j) = rng.next_symmetric();
    }
  }
}

void fill_random_well_conditioned(MatrixView a, std::uint64_t seed) {
  fill_random(a, seed);
  const int k = a.rows < a.cols ? a.rows : a.cols;
  for (int j = 0; j < k; ++j) {
    a(j, j) += (a(j, j) >= 0 ? 2.0 : -2.0);
  }
}

}  // namespace pulsarqr
