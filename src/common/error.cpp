#include "common/error.hpp"

#include <cstdlib>
#include <iostream>

namespace pulsarqr {

void require(bool cond, const std::string& msg) {
  if (!cond) {
    throw Error(msg);
  }
}

namespace detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  // An internal invariant failed inside a (possibly multithreaded) runtime.
  // Unwinding across worker threads would deadlock the VSA, so abort.
  std::cerr << "pulsarqr internal error: " << msg << "\n  expression: " << expr
            << "\n  at " << file << ":" << line << std::endl;
  std::abort();
}

}  // namespace detail
}  // namespace pulsarqr
