#include "tile/tile_matrix.hpp"

#include "blas/blas.hpp"

namespace pulsarqr {

TileMatrix::TileMatrix(int m, int n, int nb)
    : m_(m), n_(n), nb_(nb) {
  require(m >= 0 && n >= 0 && nb >= 1, "TileMatrix: bad dimensions");
  mt_ = (m + nb - 1) / nb;
  nt_ = (n + nb - 1) / nb;
  tiles_.resize(static_cast<std::size_t>(mt_) * nt_);
  for (int j = 0; j < nt_; ++j) {
    for (int i = 0; i < mt_; ++i) {
      tiles_[index(i, j)].assign(
          static_cast<std::size_t>(tile_rows(i)) * tile_cols(j), 0.0);
    }
  }
}

int TileMatrix::tile_rows(int i) const {
  PQR_ASSERT(i >= 0 && i < mt_, "tile_rows: index out of range");
  return (i == mt_ - 1) ? m_ - i * nb_ : nb_;
}

int TileMatrix::tile_cols(int j) const {
  PQR_ASSERT(j >= 0 && j < nt_, "tile_cols: index out of range");
  return (j == nt_ - 1) ? n_ - j * nb_ : nb_;
}

MatrixView TileMatrix::tile(int i, int j) {
  const int tr = tile_rows(i);
  return MatrixView(tiles_[index(i, j)].data(), tr, tile_cols(j), tr);
}

ConstMatrixView TileMatrix::tile(int i, int j) const {
  const int tr = tile_rows(i);
  return ConstMatrixView(tiles_[index(i, j)].data(), tr, tile_cols(j), tr);
}

double* TileMatrix::tile_data(int i, int j) { return tiles_[index(i, j)].data(); }
const double* TileMatrix::tile_data(int i, int j) const {
  return tiles_[index(i, j)].data();
}

double& TileMatrix::at(int i, int j) {
  PQR_ASSERT(i >= 0 && i < m_ && j >= 0 && j < n_, "at: out of range");
  return tile(i / nb_, j / nb_)(i % nb_, j % nb_);
}

double TileMatrix::at(int i, int j) const {
  PQR_ASSERT(i >= 0 && i < m_ && j >= 0 && j < n_, "at: out of range");
  return tile(i / nb_, j / nb_)(i % nb_, j % nb_);
}

TileMatrix TileMatrix::from_dense(ConstMatrixView a, int nb) {
  TileMatrix t(a.rows, a.cols, nb);
  for (int j = 0; j < t.nt_; ++j) {
    for (int i = 0; i < t.mt_; ++i) {
      blas::lacpy_all(
          a.block(i * nb, j * nb, t.tile_rows(i), t.tile_cols(j)),
          t.tile(i, j));
    }
  }
  return t;
}

Matrix TileMatrix::to_dense() const {
  Matrix a(m_, n_);
  for (int j = 0; j < nt_; ++j) {
    for (int i = 0; i < mt_; ++i) {
      blas::lacpy_all(tile(i, j),
                      a.view().block(i * nb_, j * nb_, tile_rows(i), tile_cols(j)));
    }
  }
  return a;
}

}  // namespace pulsarqr
