// Tile storage: an m-by-n matrix partitioned into nb-by-nb tiles, each tile
// stored contiguously in column-major order (the PLASMA tile layout the
// paper relies on for cache friendliness and for shipping tiles as packets).
#pragma once

#include <cstdint>
#include <vector>

#include "common/view.hpp"

namespace pulsarqr {

class TileMatrix {
 public:
  TileMatrix() = default;

  /// Create an m-by-n zero matrix with tile size nb. Boundary tiles are
  /// ragged (smaller) when nb does not divide m or n.
  TileMatrix(int m, int n, int nb);

  int rows() const { return m_; }
  int cols() const { return n_; }
  int nb() const { return nb_; }
  int mt() const { return mt_; }  ///< number of tile rows
  int nt() const { return nt_; }  ///< number of tile columns

  /// Height of tile row i / width of tile column j (ragged at the border).
  int tile_rows(int i) const;
  int tile_cols(int j) const;

  /// Mutable / const view of tile (i, j); leading dimension == tile height.
  MatrixView tile(int i, int j);
  ConstMatrixView tile(int i, int j) const;

  /// Raw contiguous storage of tile (i, j), tile_rows(i)*tile_cols(j) doubles.
  double* tile_data(int i, int j);
  const double* tile_data(int i, int j) const;

  /// Element access (slow; for tests and small problems).
  double& at(int i, int j);
  double at(int i, int j) const;

  /// Conversions between dense column-major and tile layout.
  static TileMatrix from_dense(ConstMatrixView a, int nb);
  Matrix to_dense() const;

 private:
  int m_ = 0, n_ = 0, nb_ = 0, mt_ = 0, nt_ = 0;
  // One independent buffer per tile so a tile can be aliased into a Packet
  // without copying and without pinning the whole matrix.
  std::vector<std::vector<double>> tiles_;
  int index(int i, int j) const { return i + j * mt_; }
};

}  // namespace pulsarqr
