#include "plan/flops.hpp"

#include <algorithm>

namespace pulsarqr::plan {

double flops_geqrt(double m, double n) {
  // Householder QR of an m-by-n tile.
  return 2.0 * n * n * (m - n / 3.0);
}

double flops_ormqr(double m, double n, double nc) {
  // Apply n reflectors of length up to m to an m-by-nc tile:
  // W = V^T C (2mn*nc), W = T W (n^2 nc), C -= V W (2mn*nc).
  return 4.0 * m * n * nc + n * n * nc;
}

double flops_tsqrt(double m2, double n) {
  // n reflectors of length m2+1; panel + T + block updates.
  return 2.0 * n * n * m2 + 2.0 / 3.0 * n * n * n;
}

double flops_tsmqr(double m2, double n, double nc) {
  // W = C1 + V2^T C2 (2 m2 n nc), W = T W (n^2 nc), C1 -= W, C2 -= V2 W.
  return 4.0 * m2 * n * nc + n * n * nc;
}

double flops_ttqrt(double n) {
  // Triangle-on-triangle: reflector j has j+1 nontrivial bottom entries.
  return 2.0 / 3.0 * n * n * n + n * n;
}

double flops_ttmqr(double n, double nc) {
  // V2 upper triangular halves both gemms of tsmqr with m2 = n.
  return 2.0 * n * n * nc + n * n * nc;
}

namespace {
int tile_rows(int m, int nb, int i) {
  const int mt = (m + nb - 1) / nb;
  return i == mt - 1 ? m - i * nb : nb;
}
int tile_cols(int n, int nb, int j) {
  const int nt = (n + nb - 1) / nb;
  return j == nt - 1 ? n - j * nb : nb;
}
}  // namespace

double op_flops(const Op& op, int m, int n, int nb) {
  const double pw = tile_cols(n, nb, op.j);  // panel width
  switch (op.kind) {
    case OpKind::Geqrt:
      return flops_geqrt(tile_rows(m, nb, op.i), pw);
    case OpKind::Ormqr:
      return flops_ormqr(tile_rows(m, nb, op.i), pw, tile_cols(n, nb, op.l));
    case OpKind::Tsqrt:
      return flops_tsqrt(tile_rows(m, nb, op.k), pw);
    case OpKind::Tsmqr:
      return flops_tsmqr(tile_rows(m, nb, op.k), pw, tile_cols(n, nb, op.l));
    case OpKind::Ttqrt:
      return flops_ttqrt(std::min<double>(pw, tile_rows(m, nb, op.k)));
    case OpKind::Ttmqr:
      return flops_ttmqr(std::min<double>(pw, tile_rows(m, nb, op.k)),
                         tile_cols(n, nb, op.l));
  }
  return 0.0;
}

double plan_flops(const ReductionPlan& plan, int m, int n, int nb) {
  double total = 0.0;
  for (const auto& op : plan.ops()) total += op_flops(op, m, n, nb);
  return total;
}

double qr_useful_flops(double m, double n) {
  return 2.0 * n * n * (m - n / 3.0);
}

}  // namespace pulsarqr::plan
