// Domain partitioning of a panel's tile rows (Figure 6 of the paper).
//
// For panel j the tile rows j..mt-1 are split into domains of h rows; each
// domain is flat-tree reduced independently and the domain heads are then
// binary-tree reduced. Two strategies:
//   Shifted — domain boundaries move with the panel (the paper's default):
//             domain d covers rows [j + d*h, j + (d+1)*h). The eliminated
//             head of step j becomes the *last* row of a step-(j+1) domain,
//             which is what lets consecutive flat trees overlap (Fig 7b).
//   Fixed   — boundaries are absolute multiples of h; the eliminated head
//             of step j is the *first* row of its step-(j+1) domain, so the
//             next flat tree stalls on the binary tree (Fig 7a).
#pragma once

#include <vector>

namespace pulsarqr::plan {

enum class TreeKind {
  Flat,          ///< one flat tree over the whole panel (2013 domino QR)
  Binary,        ///< pure binary tree (every row its own domain)
  BinaryOnFlat,  ///< the paper's hierarchical tree: binary over flat domains
};

enum class BoundaryMode { Fixed, Shifted };

struct PlanConfig {
  TreeKind tree = TreeKind::BinaryOnFlat;
  int domain_size = 6;  ///< h — tile rows per domain (BinaryOnFlat only)
  BoundaryMode boundary = BoundaryMode::Shifted;
};

/// One domain of a panel: tile rows [begin, end), head == begin.
struct Domain {
  int begin = 0;
  int end = 0;
  int head() const { return begin; }
  int size() const { return end - begin; }
};

/// Domains of panel j for an mt-row tile matrix (row indices are global
/// tile-row indices; the first domain always starts at row j).
std::vector<Domain> domains_for_panel(int mt, int j, const PlanConfig& cfg);

/// One level of the binary reduction over `heads` (ascending row indices):
/// pairs (heads[0],heads[1]), (heads[2],heads[3]), ...; the lower index
/// survives. Returns the pair list; `heads` is replaced by the survivors.
std::vector<std::pair<int, int>> binary_level(std::vector<int>& heads);

}  // namespace pulsarqr::plan
