// Floating-point operation counts for the tile kernels and whole plans.
//
// Leading-order counts follow the LAPACK working notes / PLASMA
// conventions. The TT kernels are charged their structure-exploiting
// counts (the paper's kernels exploit the triangular shape; see
// kernels/tile_kernels.hpp for why our implementation computes the same
// result with the dense core).
#pragma once

#include <cstdint>

#include "plan/reduction_plan.hpp"

namespace pulsarqr::plan {

/// Flops of one kernel, for tiles of row count mi (of the moving/eliminated
/// tile), panel width n, updated-tile width nc.
double flops_geqrt(double m, double n);
double flops_ormqr(double m, double n, double nc);
double flops_tsqrt(double m2, double n);
double flops_tsmqr(double m2, double n, double nc);
double flops_ttqrt(double n);
double flops_ttmqr(double n, double nc);

/// Flops of one plan op for a matrix of m rows, n cols, tile size nb.
double op_flops(const Op& op, int m, int n, int nb);

/// Total flops of a plan execution.
double plan_flops(const ReductionPlan& plan, int m, int n, int nb);

/// The standard "useful flops" credited to any QR of an m-by-n matrix
/// (2n^2(m - n/3)); Gflop/s in the paper's figures = this over time.
double qr_useful_flops(double m, double n);

}  // namespace pulsarqr::plan
