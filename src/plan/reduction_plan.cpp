#include "plan/reduction_plan.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pulsarqr::plan {

bool is_factor_op(OpKind k) {
  return k == OpKind::Geqrt || k == OpKind::Tsqrt || k == OpKind::Ttqrt;
}

ReductionPlan::ReductionPlan(int mt, int nt, const PlanConfig& cfg,
                             int max_panels)
    : mt_(mt), nt_(nt), panels_(std::min(mt, nt)), cfg_(cfg) {
  require(mt >= 1 && nt >= 1, "ReductionPlan: empty tile matrix");
  if (max_panels > 0) panels_ = std::min(panels_, max_panels);
  panel_begin_.reserve(panels_ + 1);
  for (int j = 0; j < panels_; ++j) {
    panel_begin_.push_back(ops_.size());
    const auto domains = domains_for_panel(mt_, j, cfg_);
    // Flat phase: every domain is reduced by its own flat tree.
    for (std::size_t d = 0; d < domains.size(); ++d) {
      const auto& dom = domains[d];
      const auto lvl = static_cast<std::int16_t>(d);
      ops_.push_back({OpKind::Geqrt, lvl, j, dom.head(), -1, -1});
      for (int l = j + 1; l < nt_; ++l) {
        ops_.push_back({OpKind::Ormqr, lvl, j, dom.head(), -1, l});
      }
      for (int k = dom.begin + 1; k < dom.end; ++k) {
        ops_.push_back({OpKind::Tsqrt, lvl, j, dom.head(), k, -1});
        for (int l = j + 1; l < nt_; ++l) {
          ops_.push_back({OpKind::Tsmqr, lvl, j, dom.head(), k, l});
        }
      }
    }
    // Binary phase over the domain heads.
    std::vector<int> heads;
    heads.reserve(domains.size());
    for (const auto& dom : domains) heads.push_back(dom.head());
    std::int16_t level = 0;
    while (heads.size() > 1) {
      for (const auto& [i, k] : binary_level(heads)) {
        ops_.push_back({OpKind::Ttqrt, level, j, i, k, -1});
        for (int l = j + 1; l < nt_; ++l) {
          ops_.push_back({OpKind::Ttmqr, level, j, i, k, l});
        }
      }
      ++level;
    }
    PQR_ASSERT(heads.size() == 1 && heads[0] == j,
               "plan: panel reduction must end at the diagonal tile");
  }
  panel_begin_.push_back(ops_.size());
}

std::vector<Op> ReductionPlan::factor_ops(int j) const {
  std::vector<Op> out;
  const auto [b, e] = panel_range(j);
  for (std::size_t idx = b; idx < e; ++idx) {
    if (is_factor_op(ops_[idx].kind)) out.push_back(ops_[idx]);
  }
  return out;
}

}  // namespace pulsarqr::plan
