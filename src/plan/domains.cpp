#include "plan/domains.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pulsarqr::plan {

std::vector<Domain> domains_for_panel(int mt, int j, const PlanConfig& cfg) {
  PQR_ASSERT(j >= 0 && j < mt, "domains_for_panel: bad panel index");
  std::vector<Domain> out;
  switch (cfg.tree) {
    case TreeKind::Flat:
      out.push_back({j, mt});
      break;
    case TreeKind::Binary:
      for (int r = j; r < mt; ++r) out.push_back({r, r + 1});
      break;
    case TreeKind::BinaryOnFlat: {
      const int h = cfg.domain_size;
      require(h >= 1, "domain_size must be >= 1");
      if (cfg.boundary == BoundaryMode::Shifted) {
        for (int b = j; b < mt; b += h) {
          out.push_back({b, std::min(mt, b + h)});
        }
      } else {
        // Absolute boundaries at multiples of h; the domain containing j is
        // truncated to start at j.
        int b = (j / h) * h;
        for (; b < mt; b += h) {
          const int begin = std::max(b, j);
          const int end = std::min(mt, b + h);
          if (begin < end) out.push_back({begin, end});
        }
      }
      break;
    }
  }
  return out;
}

std::vector<std::pair<int, int>> binary_level(std::vector<int>& heads) {
  std::vector<std::pair<int, int>> pairs;
  std::vector<int> survivors;
  for (std::size_t p = 0; p + 1 < heads.size(); p += 2) {
    pairs.emplace_back(heads[p], heads[p + 1]);
    survivors.push_back(heads[p]);
  }
  if (heads.size() % 2 == 1) survivors.push_back(heads.back());
  heads = std::move(survivors);
  return pairs;
}

}  // namespace pulsarqr::plan
