// ReductionPlan — the single source of truth for the hierarchical tree QR
// elimination order (Figure 5 of the paper).
//
// A plan enumerates, panel by panel, every kernel invocation of the
// factorization in a dependency-valid sequential order. It is consumed by:
//   * ref/reference_qr  — sequential ground-truth executor,
//   * ref/apply_q       — applying Q or Q^T to a block of vectors,
//   * vsaqr/*           — building the virtual systolic array,
//   * sim/task_graph    — generating the simulator's task DAG,
//   * plan/flops        — operation counts for Gflop/s reporting.
// Keeping all of them on one op stream is what makes the VSA bitwise
// comparable to the reference executor.
#pragma once

#include <cstdint>
#include <vector>

#include "plan/domains.hpp"

namespace pulsarqr::plan {

enum class OpKind : std::uint8_t {
  Geqrt,  ///< QR of tile (i, j)                         [panel, red]
  Ormqr,  ///< apply Geqrt(i, j) to tile (i, l)          [update, orange]
  Tsqrt,  ///< eliminate tile (k, j) against head (i, j) [panel, red]
  Tsmqr,  ///< apply Tsqrt to tiles (i, l), (k, l)       [update, orange]
  Ttqrt,  ///< binary step: eliminate head (k, j) against head (i, j) [blue]
  Ttmqr,  ///< apply Ttqrt to tiles (i, l), (k, l)       [blue]
};

/// True for the three factorization kinds (panel ops), false for updates.
bool is_factor_op(OpKind k);

/// One kernel invocation. Fields not used by a kind are -1.
///   Geqrt: (i, j)            Ormqr: (i, j, l)
///   Tsqrt: (i, k, j)         Tsmqr: (i, k, j, l)
///   Ttqrt: (i, k, j)         Ttmqr: (i, k, j, l)
struct Op {
  OpKind kind;
  std::int16_t level;  ///< binary-tree level for Tt*, domain index for flat ops
  int j;               ///< panel (tile column being eliminated)
  int i;               ///< head / survivor tile row
  int k;               ///< eliminated tile row (-1 for Geqrt/Ormqr)
  int l;               ///< updated tile column (-1 for factor ops)
};

class ReductionPlan {
 public:
  /// Build the plan for an mt-by-nt tile matrix (mt >= nt is typical but
  /// not required; panels run to min(mt, nt)). A positive `max_panels`
  /// stops the elimination after that many tile columns while the updates
  /// still sweep all nt columns — used to factorize an augmented matrix
  /// [A | B] so that the trailing columns come out as Q^T B (least
  /// squares on the array).
  ReductionPlan(int mt, int nt, const PlanConfig& cfg, int max_panels = -1);

  int mt() const { return mt_; }
  int nt() const { return nt_; }
  int panels() const { return panels_; }
  const PlanConfig& config() const { return cfg_; }

  const std::vector<Op>& ops() const { return ops_; }

  /// Ops restricted to one panel j (contiguous slice of ops()).
  std::pair<std::size_t, std::size_t> panel_range(int j) const {
    return {panel_begin_[j], panel_begin_[j + 1]};
  }

  /// Elimination row pairs of panel j in order: (head, eliminated) for
  /// Tsqrt/Ttqrt plus (head, -1) for Geqrt. Used by Q application.
  std::vector<Op> factor_ops(int j) const;

 private:
  int mt_, nt_, panels_;
  PlanConfig cfg_;
  std::vector<Op> ops_;
  std::vector<std::size_t> panel_begin_;
};

}  // namespace pulsarqr::plan
