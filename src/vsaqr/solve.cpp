// Least squares on the systolic array: factorize the augmented matrix
// [A | B] with the elimination stopped at A's columns. The array then
// delivers R (in A's tile columns) and Q^T B (in B's) in one pass; only
// the final n-by-n triangular solve runs on the host.
#include "vsaqr/tree_qr.hpp"

#include "blas/blas.hpp"

namespace pulsarqr::vsaqr {

Matrix tree_qr_solve(const TileMatrix& a, ConstMatrixView b,
                     TreeQrOptions opt) {
  const int m = a.rows();
  const int n = a.cols();
  const int nb = a.nb();
  const int nrhs = b.cols;
  require(m >= n, "tree_qr_solve: need m >= n");
  require(b.rows == m, "tree_qr_solve: B row count mismatch");
  require(nrhs >= 1, "tree_qr_solve: need at least one right-hand side");

  // Augment: A's columns, zero padding to a full tile boundary (padded
  // columns factor to zero R columns beyond the leading n-by-n block and
  // do not disturb it), then B.
  const int npad = a.nt() * nb;
  TileMatrix aug(m, npad + nrhs, nb);
  for (int j = 0; j < a.nt(); ++j) {
    for (int i = 0; i < a.mt(); ++i) {
      ConstMatrixView src = a.tile(i, j);
      // A's last tile column may be ragged; the augmented tile is full
      // width with zero padding.
      blas::lacpy_all(src, aug.tile(i, j).block(0, 0, src.rows, src.cols));
    }
  }
  for (int j = 0; j < nrhs; ++j) {
    for (int i = 0; i < m; ++i) aug.at(i, npad + j) = b(i, j);
  }

  opt.panel_columns = a.nt();
  auto run = tree_qr(aug, opt);

  // X = R^{-1} (Q^T B)(0:n, :).
  Matrix r(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) r(i, j) = run.factors.a.at(i, j);
  }
  Matrix x(n, nrhs);
  for (int j = 0; j < nrhs; ++j) {
    for (int i = 0; i < n; ++i) x(i, j) = run.factors.a.at(i, npad + j);
  }
  blas::trsm(blas::Side::Left, blas::Uplo::Upper, blas::Trans::No,
             blas::Diag::NonUnit, 1.0, r.view(), x.view());
  return x;
}

}  // namespace pulsarqr::vsaqr
