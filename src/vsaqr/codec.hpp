// Packet encodings for the QR VSA.
//
// Two payload kinds flow through the array:
//   Tile packet — [rows, cols | column-major tile data]; meta = global tile
//                 row index (used for wiring assertions only).
//   VT packet   — [vrows, vcols, trows, tcols | V tile | T tile]; one
//                 Householder-transformation broadcast unit (the paper's
//                 "matrix transformations generated during the QR").
// Headers are stored as doubles so the payload stays homogeneous and
// aligned; dimensions are small integers represented exactly.
#pragma once

#include "common/view.hpp"
#include "prt/packet.hpp"

namespace pulsarqr::vsaqr {

inline std::size_t tile_packet_bytes(int max_rows, int max_cols) {
  return (2 + static_cast<std::size_t>(max_rows) * max_cols) * sizeof(double);
}

inline prt::Packet encode_tile(ConstMatrixView v, int meta) {
  prt::Packet p = prt::Packet::make(tile_packet_bytes(v.rows, v.cols), meta);
  double* d = p.doubles();
  d[0] = v.rows;
  d[1] = v.cols;
  for (int j = 0; j < v.cols; ++j) {
    for (int i = 0; i < v.rows; ++i) d[2 + i + j * v.rows] = v(i, j);
  }
  return p;
}

/// Mutable view of a tile packet's payload (ld == rows).
inline MatrixView tile_view(prt::Packet& p) {
  double* d = p.doubles();
  const int rows = static_cast<int>(d[0]);
  const int cols = static_cast<int>(d[1]);
  return MatrixView(d + 2, rows, cols, rows);
}

inline std::size_t vt_packet_bytes(int max_vrows, int max_vcols, int ib) {
  return (4 + static_cast<std::size_t>(max_vrows) * max_vcols +
          static_cast<std::size_t>(ib) * max_vcols) *
         sizeof(double);
}

inline prt::Packet encode_vt(ConstMatrixView v, ConstMatrixView t, int meta) {
  prt::Packet p =
      prt::Packet::make((4 + static_cast<std::size_t>(v.rows) * v.cols +
                         static_cast<std::size_t>(t.rows) * t.cols) *
                            sizeof(double),
                        meta);
  double* d = p.doubles();
  d[0] = v.rows;
  d[1] = v.cols;
  d[2] = t.rows;
  d[3] = t.cols;
  double* vd = d + 4;
  for (int j = 0; j < v.cols; ++j) {
    for (int i = 0; i < v.rows; ++i) vd[i + j * v.rows] = v(i, j);
  }
  double* td = vd + static_cast<std::size_t>(v.rows) * v.cols;
  for (int j = 0; j < t.cols; ++j) {
    for (int i = 0; i < t.rows; ++i) td[i + j * t.rows] = t(i, j);
  }
  return p;
}

struct VtView {
  ConstMatrixView v;
  ConstMatrixView t;
};

inline VtView vt_view(const prt::Packet& p) {
  const double* d = p.doubles();
  const int vr = static_cast<int>(d[0]);
  const int vc = static_cast<int>(d[1]);
  const int tr = static_cast<int>(d[2]);
  const int tc = static_cast<int>(d[3]);
  const double* vd = d + 4;
  const double* td = vd + static_cast<std::size_t>(vr) * vc;
  return {ConstMatrixView(vd, vr, vc, vr), ConstMatrixView(td, tr, tc, tr)};
}

}  // namespace pulsarqr::vsaqr
