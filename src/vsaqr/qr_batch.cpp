// Fused batch plan: P = min(threads, batch) VDPs, VDP v = tuple (10, v)
// mapped to global thread v, each fed one prefilled channel of [begin, end)
// range packets covering its contiguous slice of the batch. No inter-VDP
// channels: the batch elements are independent, so the graph is P disjoint
// source->sink pipelines and GraphCheck verifies the feed/counter balance
// per VDP. The views live in a shared read-only global (the paper's
// "read-only global parameters"); a range packet is two doubles.
#include "vsaqr/qr_batch.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "kernels/tile_kernels.hpp"
#include "kernels/workspace.hpp"

namespace pulsarqr::vsaqr {

namespace {

using prt::Packet;
using prt::Tuple;
using prt::VdpContext;

/// Tuple kind of the batch VDPs (the QR/Cholesky/LU builders use 0..5 in
/// their own graphs; batch graphs are never mixed with them, the distinct
/// kind just keeps traces and stuck-VDP diagnostics unambiguous).
constexpr int kBatchVdpKind = 10;

template <class T>
struct BatchState {
  std::vector<MatrixViewT<T>> a;
  std::vector<MatrixViewT<T>> t;
  int ib = 32;
  /// Latency sink; null when recording is off. Each VDP writes only the
  /// indices of its own slice, so the concurrent writes are disjoint.
  std::vector<double>* lat = nullptr;
};

template <class T>
void batch_fire(VdpContext& ctx) {
  BatchState<T>& st = ctx.global<BatchState<T>>();
  Packet p = ctx.pop(0);
  const double* range = p.doubles();
  const auto begin = static_cast<std::size_t>(range[0]);
  const auto end = static_cast<std::size_t>(range[1]);
  kernels::Workspace& ws = kernels::tls_workspace();
  if (st.lat == nullptr) {
    for (std::size_t i = begin; i < end; ++i) {
      kernels::geqrt(st.a[i], st.ib, st.t[i], ws);
    }
  } else {
    using clock = std::chrono::steady_clock;
    for (std::size_t i = begin; i < end; ++i) {
      const auto t0 = clock::now();
      kernels::geqrt(st.a[i], st.ib, st.t[i], ws);
      (*st.lat)[i] =
          std::chrono::duration<double>(clock::now() - t0).count();
    }
  }
}

template <class T>
BatchRun qr_batch_t(std::span<const MatrixViewT<T>> a,
                    std::span<const MatrixViewT<T>> t,
                    const BatchOptions& opt) {
  require(a.size() == t.size(), "qr_batch: matrix/T-factor count mismatch");
  require(opt.ib >= 1, "qr_batch: ib must be positive");
  require(opt.nodes >= 1 && opt.workers_per_node >= 1,
          "qr_batch: need at least one node and worker");
  const long long batch = static_cast<long long>(a.size());
  for (long long i = 0; i < batch; ++i) {
    const int k = std::min(a[i].rows, a[i].cols);
    require(t[i].rows >= std::min(opt.ib, k) && t[i].cols >= k,
            "qr_batch: T factor too small for its matrix");
  }

  BatchRun out;
  if (opt.record_latency) out.matrix_seconds.assign(a.size(), 0.0);
  if (batch == 0) return out;

  prt::Vsa::Config cfg;
  cfg.nodes = opt.nodes;
  cfg.workers_per_node = opt.workers_per_node;
  cfg.scheduling = opt.scheduling;
  cfg.channel_impl = opt.channel_impl;
  cfg.spin_us = opt.spin_us;
  cfg.graph_check = opt.graph_check;
  cfg.watchdog_seconds = opt.watchdog_seconds;
  prt::Vsa vsa(cfg);

  auto st = std::make_shared<BatchState<T>>();
  st->a.assign(a.begin(), a.end());
  st->t.assign(t.begin(), t.end());
  st->ib = opt.ib;
  st->lat = opt.record_latency ? &out.matrix_seconds : nullptr;
  vsa.set_global(st);

  const int threads = cfg.nodes * cfg.workers_per_node;
  const int nvdp =
      static_cast<int>(std::min<long long>(threads, batch));
  long long chunk = opt.chunk;
  if (chunk <= 0) {
    // Auto: ~8 firings per VDP, capped so huge batches still make packets
    // negligible and tiny ones fire once per matrix.
    chunk = std::clamp<long long>(batch / (8LL * nvdp), 1, 64);
  }

  long long next = 0;
  for (int v = 0; v < nvdp; ++v) {
    const long long slice = batch / nvdp + (v < batch % nvdp ? 1 : 0);
    const long long end = next + slice;
    std::vector<Packet> ranges;
    ranges.reserve(static_cast<std::size_t>((slice + chunk - 1) / chunk));
    for (long long s = next; s < end; s += chunk) {
      Packet p = Packet::make(2 * sizeof(double), v);
      p.doubles()[0] = static_cast<double>(s);
      p.doubles()[1] = static_cast<double>(std::min(end, s + chunk));
      ranges.push_back(std::move(p));
    }
    const int fires = static_cast<int>(ranges.size());
    const Tuple id{kBatchVdpKind, v};
    vsa.add_vdp(id, fires, &batch_fire<T>, /*num_inputs=*/1,
                /*num_outputs=*/0, /*color=*/0, /*outputs_per_fire=*/0);
    vsa.feed(id, 0, 2 * sizeof(double), std::move(ranges));
    vsa.map_vdp(id, v);
    out.chunks += fires;
    next = end;
  }
  out.vdp_count = nvdp;
  out.stats = vsa.run();
  return out;
}

}  // namespace

BatchRun qr_batch(std::span<const MatrixView> a, std::span<const MatrixView> t,
                  const BatchOptions& opt) {
  return qr_batch_t<double>(a, t, opt);
}

BatchRun qr_batch(std::span<const MatrixViewF> a,
                  std::span<const MatrixViewF> t, const BatchOptions& opt) {
  return qr_batch_t<float>(a, t, opt);
}

}  // namespace pulsarqr::vsaqr
