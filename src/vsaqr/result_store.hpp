// Thread-safe collection point for the factorization's outputs.
//
// Tiles leave the systolic array when they become final (eliminated V
// tiles, binary losers, and the R tiles of each step's survivor row); the
// VDP that finalizes a tile deposits it here together with its T factors.
// Every (i, j) slot is written exactly once, by exactly one VDP, so writes
// are lock-free; atomic flags catch double writes and missing tiles.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "prt/packet.hpp"
#include "ref/reference_qr.hpp"
#include "tile/tile_matrix.hpp"

namespace pulsarqr::vsaqr {

class ResultStore {
 public:
  ResultStore(int m, int n, int nb, int ib);

  int mt() const { return a_.mt(); }
  int nt() const { return a_.nt(); }

  /// Deposit the final content of factor tile (i, j).
  void put_tile(int i, int j, ConstMatrixView tile);
  /// Deposit the geqrt T factors of tile (i, j).
  void put_tg(int i, int j, ConstMatrixView t);
  /// Deposit the tsqrt/ttqrt T factors of eliminated row i at panel j.
  void put_tt(int i, int j, ConstMatrixView t);

  /// Verify completeness (every tile deposited) and move the collected
  /// factors out. `plan` must describe the run that filled the store.
  ref::TreeQrFactors finish(plan::ReductionPlan plan, int ib);

  // ---- socket-transport result shipping ----
  //
  // Under the Socket transport every node process fills a copy-on-write
  // copy of this store with ONLY its own deposits; the parent's copy
  // stays empty. With the deposit log enabled, each put_* also records
  // (kind, i, j), and serialize_deposits() re-reads the deposited slots
  // into one little-endian blob the child ships home in its run
  // epilogue; apply_deposits() replays a child's blob into the parent's
  // store (re-asserting the exactly-once discipline across processes).

  /// Start recording deposits. Call BEFORE the run (i.e. pre-fork).
  void enable_deposit_log();
  /// Little-endian blob of every logged deposit (shape + data).
  prt::Packet serialize_deposits() const;
  /// Replay one child's blob into this store.
  void apply_deposits(const prt::Packet& blob);

  // ---- crash recovery: exactly-once deposits ----
  //
  // Under crash recovery a deposit can in principle be replayed (a
  // respawned node re-executes its VDPs from scratch, and the parent
  // applies whatever epilogue blobs reach it). With dedup enabled a
  // re-deposit of an already-written slot is verified to be bitwise
  // identical to the first write and then skipped — it neither
  // overwrites nor re-logs — so replay is idempotent end to end. A
  // re-deposit with DIFFERENT content still asserts: that is not
  // recovery, it is two VDPs claiming one slot.

  /// Make re-deposits idempotent (verify + skip) instead of fatal.
  /// Call BEFORE the run, alongside enable_deposit_log().
  void enable_dedup();

 private:
  struct Deposit {
    std::uint8_t kind;  ///< 0 = tile, 1 = tg, 2 = tt
    int i;
    int j;
  };
  void log_deposit(std::uint8_t kind, int i, int j);

  TileMatrix a_;
  ref::TStore tg_;
  ref::TStore tt_;
  int ib_;
  std::vector<std::atomic<bool>> tile_written_;
  /// First-writer flags for the T stores, mirroring tile_written_: they
  /// make put_tg/put_tt replays detectable (and loggable exactly once).
  std::vector<std::atomic<bool>> tg_written_;
  std::vector<std::atomic<bool>> tt_written_;
  bool log_enabled_ = false;
  bool dedup_ = false;
  mutable std::mutex log_mu_;
  std::vector<Deposit> log_;  ///< guarded by log_mu_
};

}  // namespace pulsarqr::vsaqr
