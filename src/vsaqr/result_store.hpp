// Thread-safe collection point for the factorization's outputs.
//
// Tiles leave the systolic array when they become final (eliminated V
// tiles, binary losers, and the R tiles of each step's survivor row); the
// VDP that finalizes a tile deposits it here together with its T factors.
// Every (i, j) slot is written exactly once, by exactly one VDP, so writes
// are lock-free; atomic flags catch double writes and missing tiles.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "ref/reference_qr.hpp"
#include "tile/tile_matrix.hpp"

namespace pulsarqr::vsaqr {

class ResultStore {
 public:
  ResultStore(int m, int n, int nb, int ib);

  int mt() const { return a_.mt(); }
  int nt() const { return a_.nt(); }

  /// Deposit the final content of factor tile (i, j).
  void put_tile(int i, int j, ConstMatrixView tile);
  /// Deposit the geqrt T factors of tile (i, j).
  void put_tg(int i, int j, ConstMatrixView t);
  /// Deposit the tsqrt/ttqrt T factors of eliminated row i at panel j.
  void put_tt(int i, int j, ConstMatrixView t);

  /// Verify completeness (every tile deposited) and move the collected
  /// factors out. `plan` must describe the run that filled the store.
  ref::TreeQrFactors finish(plan::ReductionPlan plan, int ib);

 private:
  TileMatrix a_;
  ref::TStore tg_;
  ref::TStore tt_;
  int ib_;
  std::vector<std::atomic<bool>> tile_written_;
};

}  // namespace pulsarqr::vsaqr
