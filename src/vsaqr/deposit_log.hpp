// Socket-transport result shipping for scenario stores that collect one
// TileMatrix of final tiles (Cholesky's L, LU's in-place factors) — the
// same mechanism ResultStore implements for QR, factored out so every
// scenario produces correct results under prt::Transport::Socket.
//
// Under the socket backend each node process deposits into its own
// copy-on-write copy of the store, so the parent's copy stays empty.
// With the log enabled (pre-fork), each put also records its (i, j);
// serialize() re-reads the recorded slots into one little-endian blob
// the child ships home in its run epilogue, and apply() replays a
// child's blob into the parent's store. Replay goes through the same
// put used by the VDPs, so a plain lacpy-overwrite store is naturally
// idempotent — replaying identical content twice is harmless, which is
// exactly the contract crash recovery needs.
#pragma once

#include <mutex>
#include <vector>

#include "prt/packet.hpp"
#include "prt/wire.hpp"
#include "tile/tile_matrix.hpp"

namespace pulsarqr::vsaqr {

class TileDepositLog {
 public:
  /// Start recording deposits. Call BEFORE the run (i.e. pre-fork).
  void enable() { enabled_ = true; }
  bool enabled() const { return enabled_; }

  /// Record that slot (i, j) of the store's matrix was written.
  void record(int i, int j) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    log_.push_back({i, j});
  }

  /// Little-endian blob of every recorded slot, re-read from `m`
  /// (shape + column-major data per slot).
  prt::Packet serialize(const TileMatrix& m) const {
    namespace wire = prt::net::wire;
    std::vector<Entry> log;
    {
      std::lock_guard<std::mutex> lock(mu_);
      log = log_;
    }
    wire::Blob b;
    b.u32(static_cast<std::uint32_t>(log.size()));
    for (const Entry& e : log) {
      b.i32(e.i);
      b.i32(e.j);
      const ConstMatrixView v = m.tile(e.i, e.j);
      b.i32(v.rows);
      b.i32(v.cols);
      for (int c = 0; c < v.cols; ++c) b.f64s(v.col(c), v.rows);
    }
    prt::Packet out = prt::Packet::make(b.size());
    if (b.size() > 0) std::memcpy(out.bytes(), b.data(), b.size());
    return out;
  }

  /// Replay one child's blob through `put(i, j, view)` — the store's own
  /// deposit function, so whatever discipline it enforces applies to
  /// shipped tiles too.
  template <class Put>
  static void apply(const prt::Packet& blob, Put&& put) {
    namespace wire = prt::net::wire;
    wire::BlobReader br(blob.bytes(), blob.size());
    const std::uint32_t count = br.u32();
    std::vector<double> buf;
    for (std::uint32_t k = 0; k < count; ++k) {
      const int i = br.i32();
      const int j = br.i32();
      const int rows = br.i32();
      const int cols = br.i32();
      require(rows >= 0 && cols >= 0,
              "TileDepositLog::apply: corrupt deposit blob");
      buf.resize(static_cast<std::size_t>(rows) * cols);
      for (std::size_t e = 0; e < buf.size(); ++e) buf[e] = br.f64();
      put(i, j, ConstMatrixView(buf.data(), rows, cols, rows));
    }
  }

 private:
  struct Entry {
    int i;
    int j;
  };
  bool enabled_ = false;
  mutable std::mutex mu_;
  std::vector<Entry> log_;  ///< guarded by mu_
};

}  // namespace pulsarqr::vsaqr
