#include "vsaqr/result_store.hpp"

#include <cstring>

#include "blas/blas.hpp"
#include "prt/wire.hpp"

namespace pulsarqr::vsaqr {

namespace {
/// Column-major copy of a (contiguous-destination) view into a Blob.
void blob_matrix(prt::net::wire::Blob& b, ConstMatrixView v) {
  b.i32(v.rows);
  b.i32(v.cols);
  for (int j = 0; j < v.cols; ++j) b.f64s(v.col(j), v.rows);
}

/// Bitwise equality of two equally-shaped views (memcmp per column: a
/// replayed deposit must reproduce the first write exactly, including
/// signed zeros and NaN payloads).
bool bitwise_equal(ConstMatrixView a, ConstMatrixView b) {
  if (a.rows != b.rows || a.cols != b.cols) return false;
  for (int j = 0; j < a.cols; ++j) {
    if (std::memcmp(a.col(j), b.col(j),
                    static_cast<std::size_t>(a.rows) * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}
}  // namespace

ResultStore::ResultStore(int m, int n, int nb, int ib)
    : a_(m, n, nb),
      tg_(a_.mt(), a_.nt(), ib, nb, n),
      tt_(a_.mt(), a_.nt(), ib, nb, n),
      ib_(ib),
      tile_written_(static_cast<std::size_t>(a_.mt()) * a_.nt()),
      tg_written_(static_cast<std::size_t>(a_.mt()) * a_.nt()),
      tt_written_(static_cast<std::size_t>(a_.mt()) * a_.nt()) {
  // Pre-touch every T slot so concurrent put_tg/put_tt never allocate the
  // same lazily-created buffer from two threads.
  for (int j = 0; j < a_.nt(); ++j) {
    for (int i = 0; i < a_.mt(); ++i) {
      (void)tg_.t(i, j);
      (void)tt_.t(i, j);
    }
  }
}

void ResultStore::put_tile(int i, int j, ConstMatrixView tile) {
  MatrixView dst = a_.tile(i, j);
  PQR_ASSERT(dst.rows == tile.rows && dst.cols == tile.cols,
             "ResultStore: tile shape mismatch");
  const bool was =
      tile_written_[i + static_cast<std::size_t>(j) * a_.mt()].exchange(true);
  if (was) {
    PQR_ASSERT(dedup_, "ResultStore: tile deposited twice");
    PQR_ASSERT(bitwise_equal(tile, dst),
               "ResultStore: conflicting re-deposit of tile (replay produced "
               "different content)");
    return;  // idempotent replay: already written, already logged
  }
  blas::lacpy_all(tile, dst);
  log_deposit(0, i, j);
}

void ResultStore::put_tg(int i, int j, ConstMatrixView t) {
  MatrixView dst = tg_.t(i, j);
  const ConstMatrixView src = t.block(0, 0, dst.rows, dst.cols);
  const bool was =
      tg_written_[i + static_cast<std::size_t>(j) * a_.mt()].exchange(true);
  if (was && dedup_) {
    PQR_ASSERT(bitwise_equal(src, dst),
               "ResultStore: conflicting re-deposit of geqrt T factors");
    return;
  }
  blas::lacpy_all(src, dst);
  if (!was) log_deposit(1, i, j);
}

void ResultStore::put_tt(int i, int j, ConstMatrixView t) {
  MatrixView dst = tt_.t(i, j);
  const ConstMatrixView src = t.block(0, 0, dst.rows, dst.cols);
  const bool was =
      tt_written_[i + static_cast<std::size_t>(j) * a_.mt()].exchange(true);
  if (was && dedup_) {
    PQR_ASSERT(bitwise_equal(src, dst),
               "ResultStore: conflicting re-deposit of tree T factors");
    return;
  }
  blas::lacpy_all(src, dst);
  if (!was) log_deposit(2, i, j);
}

void ResultStore::enable_deposit_log() { log_enabled_ = true; }

void ResultStore::enable_dedup() { dedup_ = true; }

void ResultStore::log_deposit(std::uint8_t kind, int i, int j) {
  if (!log_enabled_) return;
  std::lock_guard<std::mutex> lock(log_mu_);
  log_.push_back({kind, i, j});
}

prt::Packet ResultStore::serialize_deposits() const {
  namespace wire = prt::net::wire;
  std::vector<Deposit> log;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    log = log_;
  }
  wire::Blob b;
  b.u32(static_cast<std::uint32_t>(log.size()));
  for (const Deposit& d : log) {
    b.u32(d.kind);
    b.i32(d.i);
    b.i32(d.j);
    switch (d.kind) {
      case 0:
        blob_matrix(b, a_.tile(d.i, d.j));
        break;
      case 1:
        blob_matrix(b, tg_.t(d.i, d.j));
        break;
      default:
        blob_matrix(b, tt_.t(d.i, d.j));
        break;
    }
  }
  prt::Packet out = prt::Packet::make(b.size());
  if (b.size() > 0) std::memcpy(out.bytes(), b.data(), b.size());
  return out;
}

void ResultStore::apply_deposits(const prt::Packet& blob) {
  namespace wire = prt::net::wire;
  wire::BlobReader br(blob.bytes(), blob.size());
  const std::uint32_t count = br.u32();
  std::vector<double> buf;
  for (std::uint32_t k = 0; k < count; ++k) {
    const std::uint32_t kind = br.u32();
    const int i = br.i32();
    const int j = br.i32();
    const int rows = br.i32();
    const int cols = br.i32();
    require(rows >= 0 && cols >= 0,
            "ResultStore::apply_deposits: corrupt deposit blob");
    buf.resize(static_cast<std::size_t>(rows) * cols);
    for (std::size_t e = 0; e < buf.size(); ++e) buf[e] = br.f64();
    const ConstMatrixView v(buf.data(), rows, cols, rows);
    // Replaying through put_* keeps the exactly-once flags authoritative
    // across processes: two children claiming one tile still assert.
    switch (kind) {
      case 0:
        put_tile(i, j, v);
        break;
      case 1:
        put_tg(i, j, v);
        break;
      case 2:
        put_tt(i, j, v);
        break;
      default:
        require(false, "ResultStore::apply_deposits: unknown deposit kind");
    }
  }
}

ref::TreeQrFactors ResultStore::finish(plan::ReductionPlan plan, int ib) {
  for (int j = 0; j < a_.nt(); ++j) {
    for (int i = 0; i < a_.mt(); ++i) {
      require(tile_written_[i + static_cast<std::size_t>(j) * a_.mt()].load(),
              "ResultStore: tile (" + std::to_string(i) + "," +
                  std::to_string(j) + ") was never deposited");
    }
  }
  return ref::TreeQrFactors{std::move(a_), std::move(tg_), std::move(tt_),
                            std::move(plan), ib};
}

}  // namespace pulsarqr::vsaqr
