#include "vsaqr/result_store.hpp"

#include "blas/blas.hpp"

namespace pulsarqr::vsaqr {

ResultStore::ResultStore(int m, int n, int nb, int ib)
    : a_(m, n, nb),
      tg_(a_.mt(), a_.nt(), ib, nb, n),
      tt_(a_.mt(), a_.nt(), ib, nb, n),
      ib_(ib),
      tile_written_(static_cast<std::size_t>(a_.mt()) * a_.nt()) {
  // Pre-touch every T slot so concurrent put_tg/put_tt never allocate the
  // same lazily-created buffer from two threads.
  for (int j = 0; j < a_.nt(); ++j) {
    for (int i = 0; i < a_.mt(); ++i) {
      (void)tg_.t(i, j);
      (void)tt_.t(i, j);
    }
  }
}

void ResultStore::put_tile(int i, int j, ConstMatrixView tile) {
  const bool was =
      tile_written_[i + static_cast<std::size_t>(j) * a_.mt()].exchange(true);
  PQR_ASSERT(!was, "ResultStore: tile deposited twice");
  MatrixView dst = a_.tile(i, j);
  PQR_ASSERT(dst.rows == tile.rows && dst.cols == tile.cols,
             "ResultStore: tile shape mismatch");
  blas::lacpy_all(tile, dst);
}

void ResultStore::put_tg(int i, int j, ConstMatrixView t) {
  MatrixView dst = tg_.t(i, j);
  blas::lacpy_all(t.block(0, 0, dst.rows, dst.cols), dst);
}

void ResultStore::put_tt(int i, int j, ConstMatrixView t) {
  MatrixView dst = tt_.t(i, j);
  blas::lacpy_all(t.block(0, 0, dst.rows, dst.cols), dst);
}

ref::TreeQrFactors ResultStore::finish(plan::ReductionPlan plan, int ib) {
  for (int j = 0; j < a_.nt(); ++j) {
    for (int i = 0; i < a_.mt(); ++i) {
      require(tile_written_[i + static_cast<std::size_t>(j) * a_.mt()].load(),
              "ResultStore: tile (" + std::to_string(i) + "," +
                  std::to_string(j) + ") was never deposited");
    }
  }
  return ref::TreeQrFactors{std::move(a_), std::move(tg_), std::move(tt_),
                            std::move(plan), ib};
}

}  // namespace pulsarqr::vsaqr
