// Construction of the 3D Virtual Systolic Array for hierarchical tree QR
// (Section V-C, Figure 8 of the paper).
//
// Array layout, per panel step k:
//   * one Factor VDP  F(k,d)   = tuple (0,k,d)    per domain d  [red]
//   * one Update VDP  U(k,d,l) = tuple (1,k,d,l)  per domain and trailing
//     column l                                              [orange]
//   * one TtFactor VDP B(k,p)  = tuple (2,k,p)    per binary pair p [blue]
//   * one TtUpdate VDP BU(k,p,l) = tuple (3,k,p,l)           [blue]
//
// Data movement:
//   * Column tiles stream "down" the steps: U(k,d,l) keeps the first tile
//     it sees (its domain head's row), combines every further tile with it
//     (tsmqr) and forwards the result to step k+1 through a solid channel.
//   * (V,T) transformation packets stream "right" along each step through
//     per-domain by-passing chains F(k,d) -> U(k,d,k+1) -> U(k,d,k+2) ...,
//     and per-pair chains B(k,p) -> BU(k,p,k+1) -> ... Each VDP forwards
//     the packet before using it, overlapping communication with compute.
//   * Domain-top tiles leave the flat pipelines through dashed channels
//     into the binary tree (F->B for the panel column, U->BU for trailing
//     columns); each pair's loser tile re-enters step k+1's flat pipeline
//     as that domain's LAST expected tile, through a dashed channel that
//     the consumer keeps disabled until it has consumed everything else —
//     the overlap mechanism of Figure 7(b). With fixed boundaries the
//     loser is the FIRST expected tile of its next-step domain, so the
//     consumer stalls on the binary tree, reproducing Figure 7(a).
//
// Finalized tiles (eliminated V tiles, binary losers, and each step's
// surviving R row) exit the array into the shared ResultStore together
// with their T factors.
#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "kernels/tile_kernels.hpp"
#include "plan/domains.hpp"
#include "prt/graph_check.hpp"
#include "vsaqr/codec.hpp"
#include "vsaqr/result_store.hpp"
#include "vsaqr/tree_qr.hpp"

namespace pulsarqr::vsaqr {

namespace {

using prt::Packet;
using prt::Tuple;
using prt::VdpContext;

Tuple f_tuple(int k, int d) { return Tuple{0, k, d}; }
Tuple u_tuple(int k, int d, int l) { return Tuple{1, k, d, l}; }
Tuple b_tuple(int k, int p) { return Tuple{2, k, p}; }
Tuple bu_tuple(int k, int p, int l) { return Tuple{3, k, p, l}; }

/// A channel endpoint on a producer VDP.
struct Producer {
  Tuple vdp;
  int slot = -1;
};

/// Shared configuration of a flat-pipeline VDP (F or U).
struct FlatCfg {
  int k = 0;        ///< panel step
  int l = 0;        ///< column handled (== k for F)
  int pw = 0;       ///< panel width (tile columns of panel k)
  int ib = 0;
  bool is_factor = false;
  std::vector<int> rows;      ///< rows in consumption order
  std::vector<int> row_slot;  ///< input slot of each row's channel
  int vt_in = -1;             ///< U only: transformation-chain input
  int vt_out = -1;
  int solid_out = -1;  ///< U only: stream to step k+1
  int top_out = -1;    ///< F: R tile to binary; U: top tile to BU; -1 = sink
};

/// Configuration of a binary VDP (B or BU).
struct BinCfg {
  int k = 0;
  int l = 0;  ///< column (== k for B)
  int pw = 0;
  int ib = 0;
  int winner = 0;
  int loser = 0;
  int vt_out = -1;
  int win_out = -1;  ///< winner tile onward; -1 = deposit final
  int c2_out = -1;   ///< BU only: loser tile to next step (dashed)
};

struct FlatState {
  int idx = 0;
  Packet held;
  Matrix t;
};

// After consuming the packet of row `idx`, switch the active tile-input
// channel if the next expected row arrives on a different channel (the
// paper's dynamic enable/disable of the dashed channels).
void advance_tile_slot(VdpContext& ctx, const FlatCfg& cfg, int idx) {
  if (idx + 1 < static_cast<int>(cfg.rows.size()) &&
      cfg.row_slot[idx + 1] != cfg.row_slot[idx]) {
    ctx.disable_input(cfg.row_slot[idx]);
    ctx.enable_input(cfg.row_slot[idx + 1]);
  }
}

// Flat factor VDP (red): flat-tree reduction of one domain's panel tiles.
void factor_fire(VdpContext& ctx, const FlatCfg& cfg) {
  auto& st = ctx.local<FlatState>();
  const int idx = st.idx++;
  const int r = cfg.rows[idx];
  Packet tile = ctx.pop(cfg.row_slot[idx]);
  PQR_ASSERT(tile.meta() == r, "tree-qr: factor VDP received wrong tile row");
  advance_tile_slot(ctx, cfg, idx);
  auto& store = ctx.global<ResultStore>();
  kernels::Workspace& ws = kernels::tls_workspace();
  if (idx == 0) {
    st.held = std::move(tile);
    st.t = Matrix(cfg.ib, cfg.pw);
    MatrixView v = tile_view(st.held);
    kernels::geqrt(v, cfg.ib, st.t.view(), ws);
    store.put_tg(r, cfg.k, st.t.view());
    if (cfg.vt_out >= 0) ctx.push(cfg.vt_out, encode_vt(v, st.t.view(), r));
  } else {
    MatrixView v2 = tile_view(tile);
    MatrixView held = tile_view(st.held);
    PQR_ASSERT(held.rows >= cfg.pw, "tree-qr: short tile used as survivor");
    kernels::tsqrt(held.block(0, 0, cfg.pw, cfg.pw), v2, cfg.ib, st.t.view(),
                   ws);
    store.put_tt(r, cfg.k, st.t.view());
    store.put_tile(r, cfg.k, v2);  // eliminated: final for this column
    if (cfg.vt_out >= 0) ctx.push(cfg.vt_out, encode_vt(v2, st.t.view(), r));
  }
  if (idx == static_cast<int>(cfg.rows.size()) - 1) {
    if (cfg.top_out >= 0) {
      ctx.push(cfg.top_out, std::move(st.held));
    } else {
      store.put_tile(cfg.rows[0], cfg.k, tile_view(st.held));
    }
  }
}

// Flat update VDP (orange): applies the domain's transformations to one
// trailing column; keeps the head row's tile, streams the rest.
void update_fire(VdpContext& ctx, const FlatCfg& cfg) {
  auto& st = ctx.local<FlatState>();
  const int idx = st.idx++;
  Packet vt = ctx.pop(cfg.vt_in);
  if (cfg.vt_out >= 0) ctx.push(cfg.vt_out, vt);  // by-pass before use
  Packet tile = ctx.pop(cfg.row_slot[idx]);
  PQR_ASSERT(tile.meta() == cfg.rows[idx],
             "tree-qr: update VDP received wrong tile row");
  advance_tile_slot(ctx, cfg, idx);
  const VtView w = vt_view(vt);
  kernels::Workspace& ws = kernels::tls_workspace();
  if (idx == 0) {
    st.held = std::move(tile);
    kernels::ormqr(blas::Trans::Yes, w.v, w.t, cfg.ib, tile_view(st.held), ws);
  } else {
    kernels::tsmqr(blas::Trans::Yes, w.v, w.t, cfg.ib, tile_view(st.held),
                   tile_view(tile), ws);
    if (cfg.solid_out >= 0) {
      ctx.push(cfg.solid_out, std::move(tile));
    } else {
      // Last panel: this row of Q^T [trailing columns] is final.
      ctx.global<ResultStore>().put_tile(cfg.rows[idx], cfg.l,
                                         tile_view(tile));
    }
  }
  if (idx == static_cast<int>(cfg.rows.size()) - 1) {
    if (cfg.top_out >= 0) {
      ctx.push(cfg.top_out, std::move(st.held));
    } else {
      ctx.global<ResultStore>().put_tile(cfg.rows[0], cfg.l,
                                         tile_view(st.held));
    }
  }
}

// Binary factor VDP (blue): one ttqrt of two domain-top R tiles.
void tt_factor_fire(VdpContext& ctx, const BinCfg& cfg) {
  Packet rw = ctx.pop(0);
  Packet rl = ctx.pop(1);
  PQR_ASSERT(rw.meta() == cfg.winner && rl.meta() == cfg.loser,
             "tree-qr: binary VDP received wrong tiles");
  MatrixView w = tile_view(rw);
  MatrixView l = tile_view(rl);
  PQR_ASSERT(w.rows >= cfg.pw, "tree-qr: short tile used as tt survivor");
  // T is consumed by the store/codec copies below, so a frame-scoped
  // workspace buffer replaces the old per-firing heap Matrix.
  kernels::Workspace& ws = kernels::tls_workspace();
  kernels::WsFrame frame(ws);
  MatrixView t = ws.matrix(cfg.ib, cfg.pw);
  kernels::ttqrt(w.block(0, 0, cfg.pw, cfg.pw), l, cfg.ib, t, ws);
  auto& store = ctx.global<ResultStore>();
  store.put_tt(cfg.loser, cfg.k, t);
  store.put_tile(cfg.loser, cfg.k, l);  // loser: final for this column
  if (cfg.vt_out >= 0) ctx.push(cfg.vt_out, encode_vt(l, t, cfg.loser));
  if (cfg.win_out >= 0) {
    ctx.push(cfg.win_out, std::move(rw));
  } else {
    store.put_tile(cfg.winner, cfg.k, w);  // overall survivor: R(k,k)
  }
}

// Binary update VDP (blue): one ttmqr on the pair's trailing tiles at
// column l; the winner tile moves up the tree, the loser re-enters the
// next step's flat pipeline through the dashed channel.
void tt_update_fire(VdpContext& ctx, const BinCfg& cfg) {
  Packet vt = ctx.pop(2);
  if (cfg.vt_out >= 0) ctx.push(cfg.vt_out, vt);  // by-pass before use
  Packet c1 = ctx.pop(0);
  Packet c2 = ctx.pop(1);
  PQR_ASSERT(c1.meta() == cfg.winner && c2.meta() == cfg.loser,
             "tree-qr: binary update received wrong tiles");
  const VtView w = vt_view(vt);
  kernels::ttmqr(blas::Trans::Yes, w.v, w.t, cfg.ib, tile_view(c1),
                 tile_view(c2), kernels::tls_workspace());
  if (cfg.win_out >= 0) {
    ctx.push(cfg.win_out, std::move(c1));
  } else {
    ctx.global<ResultStore>().put_tile(cfg.winner, cfg.l, tile_view(c1));
  }
  if (cfg.c2_out >= 0) {
    ctx.push(cfg.c2_out, std::move(c2));
  } else {
    ctx.global<ResultStore>().put_tile(cfg.loser, cfg.l, tile_view(c2));
  }
}

/// One binary reduction pair.
struct PairInfo {
  int winner = 0;
  int loser = 0;
  int level = 0;
};

struct BinaryStructure {
  std::vector<PairInfo> pairs;  ///< level-major order
  /// Pair indices each head participates in, in order.
  std::map<int, std::vector<int>> pairs_of;
};

// GraphCheck balance declarations shared by the factorization and apply
// builders. Tile-input slots consume one packet per row routed to them
// (not one per firing once channels are grouped), top_out emits a single
// packet at the last firing, and solid_out skips the held head row.
void declare_flat_balance(prt::Vsa& vsa, const Tuple& tup,
                          const FlatCfg& cfg) {
  std::vector<long long> per_slot;
  for (int s : cfg.row_slot) {
    if (s >= static_cast<int>(per_slot.size())) per_slot.resize(s + 1, 0);
    ++per_slot[s];
  }
  for (std::size_t s = 0; s < per_slot.size(); ++s) {
    vsa.declare_input_packets(tup, static_cast<int>(s), per_slot[s]);
  }
  if (cfg.top_out >= 0) vsa.declare_output_packets(tup, cfg.top_out, 1);
  if (cfg.solid_out >= 0) {
    vsa.declare_output_packets(tup, cfg.solid_out,
                               static_cast<long long>(cfg.rows.size()) - 1);
  }
}

BinaryStructure make_binary(const std::vector<plan::Domain>& domains) {
  BinaryStructure bs;
  std::vector<int> heads;
  for (const auto& d : domains) heads.push_back(d.head());
  int level = 0;
  while (heads.size() > 1) {
    for (const auto& [w, l] : plan::binary_level(heads)) {
      const int idx = static_cast<int>(bs.pairs.size());
      bs.pairs.push_back({w, l, level});
      bs.pairs_of[w].push_back(idx);
      bs.pairs_of[l].push_back(idx);
    }
    ++level;
  }
  return bs;
}

class Builder {
 public:
  Builder(const TileMatrix& a, const TreeQrOptions& opt)
      : a_(a),
        opt_(opt),
        vsa_(make_config(opt)),
        store_(std::make_shared<ResultStore>(a.rows(), a.cols(), a.nb(),
                                             opt.ib)),
        total_threads_(opt.nodes * opt.workers_per_node) {
    vsa_.set_global(store_);
    if (opt.transport == prt::Transport::Socket) {
      // Each node process deposits into its own copy-on-write store; the
      // deposit log ships every child's tiles back for the parent to
      // merge before finish().
      store_->enable_deposit_log();
      if (opt.max_respawns > 0) store_->enable_dedup();
      auto store = store_;
      vsa_.set_process_hooks(
          [store] { return store->serialize_deposits(); },
          [store](int, const Packet& blob) { store->apply_deposits(blob); });
    }
    tile_bytes_ = tile_packet_bytes(a.nb(), a.nb());
    vt_bytes_ = vt_packet_bytes(a.nb(), a.nb(), opt.ib);
  }

  void build() {
    panels_ = std::min(a_.mt(), a_.nt());
    if (opt_.panel_columns > 0) panels_ = std::min(panels_, opt_.panel_columns);
    for (int k = 0; k < panels_; ++k) build_step(k);
  }

  /// Static analysis of the constructed graph without executing it.
  prt::GraphReport lint() {
    build();
    return prt::GraphCheck::check(vsa_);
  }

  TreeQrRun run() {
    build();
    auto stats = vsa_.run();
    TreeQrRun out{
        store_->finish(plan::ReductionPlan(a_.mt(), a_.nt(), opt_.tree,
                                           opt_.panel_columns),
                       opt_.ib),
        stats,
        {},
        vdp_count_,
        channel_count_};
    if (opt_.trace) out.events = vsa_.recorder().collect();
    return out;
  }

 private:
  static prt::Vsa::Config make_config(const TreeQrOptions& opt) {
    prt::Vsa::Config c;
    c.nodes = opt.nodes;
    c.workers_per_node = opt.workers_per_node;
    c.scheduling = opt.scheduling;
    c.work_stealing = opt.work_stealing;
    c.trace = opt.trace;
    c.watchdog_seconds = opt.watchdog_seconds;
    c.channel_impl = opt.channel_impl;
    c.spin_us = opt.spin_us;
    c.graph_check = opt.graph_check;
    c.reliable_transport = opt.reliable_transport;
    c.fault_plan = opt.fault_plan;
    c.retransmit_timeout_us = opt.retransmit_timeout_us;
    c.max_retransmits = opt.max_retransmits;
    c.coalesce_bytes = opt.coalesce_bytes;
    c.coalesce_flush_us = opt.coalesce_flush_us;
    c.transport = opt.transport;
    c.max_respawns = opt.max_respawns;
    c.replay_log_bytes = opt.replay_log_bytes;
    c.heartbeat_timeout_seconds = opt.heartbeat_timeout_seconds;
    return c;
  }

  void connect(const Producer& src, const Tuple& dst, int slot,
               std::size_t bytes, bool enabled = true) {
    vsa_.connect(src.vdp, src.slot, dst, slot, bytes, enabled);
    ++channel_count_;
  }

  /// Feed the initial tiles of step 0 or wire the tile channels of step k.
  /// Returns (rows order, slot per row, number of tile slots).
  void wire_tile_inputs(const Tuple& dst, const std::vector<int>& rows, int l,
                        FlatCfg& cfg) {
    cfg.rows = rows;
    cfg.row_slot.resize(rows.size());
    if (cfg.k == 0) {
      // Step 0: one prefilled source channel carries the whole domain.
      std::vector<Packet> initial;
      for (int r : rows) {
        initial.push_back(encode_tile(a_.tile(r, l), r));
      }
      vsa_.feed(dst, 0, tile_bytes_, std::move(initial));
      ++channel_count_;
      for (auto& s : cfg.row_slot) s = 0;
      cfg.vt_in = 1;
      return;
    }
    // Group consecutive rows by producer; one channel per group. Only the
    // first group's channel starts enabled — the VDP walks the schedule.
    int slot = -1;
    const Producer* prev = nullptr;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto it = producers_.find({rows[i], l});
      PQR_ASSERT(it != producers_.end(), "tree-qr: no producer for tile");
      const Producer& p = it->second;
      if (prev == nullptr || !(prev->vdp == p.vdp && prev->slot == p.slot)) {
        ++slot;
        connect(p, dst, slot, tile_bytes_, /*enabled=*/slot == 0);
        prev = &it->second;
      }
      cfg.row_slot[i] = slot;
    }
    cfg.vt_in = slot + 1;
  }

  void build_step(int k) {
    const int mt = a_.mt();
    const int nt = a_.nt();
    const int pw = a_.tile_cols(k);
    const auto domains = plan::domains_for_panel(mt, k, opt_.tree);
    const auto bs = make_binary(domains);
    const bool has_binary = domains.size() > 1;

    std::map<std::pair<int, int>, Producer> next_producers;
    std::map<int, int> dom_of_head;
    for (std::size_t d = 0; d < domains.size(); ++d) {
      dom_of_head[domains[d].head()] = static_cast<int>(d);
    }
    // Threads of the flat VDPs (binary parents inherit the winner's).
    std::map<std::pair<int, int>, int> f_thread;  // (d, l) -> thread

    // ---- flat pipelines --------------------------------------------------
    for (std::size_t d = 0; d < domains.size(); ++d) {
      const auto& dom = domains[d];
      std::vector<int> rows;
      for (int r = dom.begin; r < dom.end; ++r) rows.push_back(r);

      for (int l = k; l < nt; ++l) {
        const bool is_factor = l == k;
        auto cfg = std::make_shared<FlatCfg>();
        cfg->k = k;
        cfg->l = l;
        cfg->pw = pw;
        cfg->ib = opt_.ib;
        cfg->is_factor = is_factor;
        const Tuple tup =
            is_factor ? f_tuple(k, static_cast<int>(d))
                      : u_tuple(k, static_cast<int>(d), l);

        // Output slot layout (allocated in a fixed order).
        int next_out = 0;
        if (is_factor) {
          if (k + 1 < nt) cfg->vt_out = next_out++;
          if (has_binary) cfg->top_out = next_out++;
        } else {
          if (l + 1 < nt) cfg->vt_out = next_out++;
          // At the last panel there is no next step: streamed tiles are
          // final (they are rows of Q^T applied to the trailing columns).
          if (rows.size() > 1 && k + 1 < panels_) cfg->solid_out = next_out++;
          if (has_binary) cfg->top_out = next_out++;
        }

        wire_tile_inputs(tup, rows, l, *cfg);
        const int num_inputs = is_factor ? cfg->vt_in : cfg->vt_in + 1;
        if (is_factor) cfg->vt_in = -1;

        auto fn = is_factor ? VdpFnFor(&factor_fire, cfg)
                            : VdpFnFor(&update_fire, cfg);
        vsa_.add_vdp(tup, static_cast<int>(rows.size()), std::move(fn),
                     num_inputs, next_out,
                     is_factor ? kColorFactor : kColorUpdate);
        declare_flat_balance(vsa_, tup, *cfg);
        ++vdp_count_;
        const int thread = rr_thread_++ % total_threads_;
        vsa_.map_vdp(tup, thread);
        f_thread[{static_cast<int>(d), l}] = thread;
        if (!is_factor) vt_in_slot_[tup] = cfg->vt_in;
        last_out_slot_[tup] = cfg->top_out;

        // Solid stream into step k+1: register the non-top rows.
        if (!is_factor && cfg->solid_out >= 0) {
          for (std::size_t i = 1; i < rows.size(); ++i) {
            next_producers[{rows[i], l}] = Producer{tup, cfg->solid_out};
          }
        }
      }
      // Transformation chain along the step: F -> U(k+1) -> U(k+2) ...
      for (int l = k; l + 1 < nt; ++l) {
        const Tuple src = l == k ? f_tuple(k, static_cast<int>(d))
                                 : u_tuple(k, static_cast<int>(d), l);
        const Tuple dst = u_tuple(k, static_cast<int>(d), l + 1);
        // vt_out is always slot 0 when it exists.
        connect({src, 0}, dst, /*computed below*/ vt_slot_of(dst), vt_bytes_);
      }
    }

    // ---- binary tree -----------------------------------------------------
    // Current top/R producer of each live head, per column (k == panel R).
    std::map<std::pair<int, int>, Producer> cur;  // (head, l) -> producer
    if (has_binary) {
      for (std::size_t d = 0; d < domains.size(); ++d) {
        const int head = domains[d].head();
        // top_out slot of F/U: depends on its layout computed above; it is
        // the LAST output slot (see allocation order).
        for (int l = k; l < nt; ++l) {
          const Tuple tup = l == k ? f_tuple(k, static_cast<int>(d))
                                   : u_tuple(k, static_cast<int>(d), l);
          cur[{head, l}] = Producer{tup, last_out_slot_[tup]};
        }
      }
    }
    for (std::size_t pi = 0; pi < bs.pairs.size(); ++pi) {
      const auto& pr = bs.pairs[pi];
      const bool winner_continues =
          bs.pairs_of.at(pr.winner).back() != static_cast<int>(pi);
      const int bthread = f_thread[{dom_of_head[pr.winner], k}];
      for (int l = k; l < nt; ++l) {
        auto cfg = std::make_shared<BinCfg>();
        cfg->k = k;
        cfg->l = l;
        cfg->pw = pw;
        cfg->ib = opt_.ib;
        cfg->winner = pr.winner;
        cfg->loser = pr.loser;
        const bool is_b = l == k;
        const Tuple tup = is_b ? b_tuple(k, static_cast<int>(pi))
                               : bu_tuple(k, static_cast<int>(pi), l);
        int next_out = 0;
        if (is_b) {
          if (k + 1 < nt) cfg->vt_out = next_out++;
          if (winner_continues) cfg->win_out = next_out++;
        } else {
          if (l + 1 < nt) cfg->vt_out = next_out++;
          if (winner_continues) cfg->win_out = next_out++;
          if (k + 1 < panels_) cfg->c2_out = next_out++;
        }
        auto fn = is_b ? BinFnFor(&tt_factor_fire, cfg)
                       : BinFnFor(&tt_update_fire, cfg);
        vsa_.add_vdp(tup, 1, std::move(fn), is_b ? 2 : 3, next_out,
                     kColorBinary);
        ++vdp_count_;
        vsa_.map_vdp(tup, is_b ? bthread
                               : f_thread[{dom_of_head[pr.winner], l}]);

        // Wire the pair's tile inputs from the current producers.
        connect(cur.at({pr.winner, l}), tup, 0, tile_bytes_);
        connect(cur.at({pr.loser, l}), tup, 1, tile_bytes_);
        if (winner_continues) {
          cur[{pr.winner, l}] = Producer{tup, cfg->win_out};
        }
        // Loser's trailing tile re-enters step k+1 (dashed).
        if (!is_b && cfg->c2_out >= 0) {
          next_producers[{pr.loser, l}] = Producer{tup, cfg->c2_out};
        }
      }
      // Transformation chain of the pair: B -> BU(k+1) -> BU(k+2) ...
      for (int l = k; l + 1 < nt; ++l) {
        const Tuple src = l == k ? b_tuple(k, static_cast<int>(pi))
                                 : bu_tuple(k, static_cast<int>(pi), l);
        const Tuple dst = bu_tuple(k, static_cast<int>(pi), l + 1);
        connect({src, 0}, dst, 2, vt_bytes_);
      }
    }

    producers_ = std::move(next_producers);
  }

  // Helpers that wrap the firing functions with their shared config.
  static prt::VdpFn VdpFnFor(void (*fire)(VdpContext&, const FlatCfg&),
                             std::shared_ptr<FlatCfg> cfg) {
    return [fire, cfg = std::move(cfg)](VdpContext& ctx) { fire(ctx, *cfg); };
  }
  static prt::VdpFn BinFnFor(void (*fire)(VdpContext&, const BinCfg&),
                             std::shared_ptr<BinCfg> cfg) {
    return [fire, cfg = std::move(cfg)](VdpContext& ctx) { fire(ctx, *cfg); };
  }

  int vt_slot_of(const Tuple& dst) const {
    const auto it = vt_in_slot_.find(dst);
    PQR_ASSERT(it != vt_in_slot_.end(), "tree-qr: unknown vt slot");
    return it->second;
  }

  const TileMatrix& a_;
  TreeQrOptions opt_;
  prt::Vsa vsa_;
  std::shared_ptr<ResultStore> store_;
  int total_threads_;
  int panels_ = 0;
  int rr_thread_ = 0;
  std::size_t tile_bytes_ = 0;
  std::size_t vt_bytes_ = 0;
  int vdp_count_ = 0;
  int channel_count_ = 0;
  std::map<std::pair<int, int>, Producer> producers_;
  std::map<Tuple, int> vt_in_slot_;
  std::map<Tuple, int> last_out_slot_;
};

// ---- apply-only array -------------------------------------------------------
//
// The Q^T-application array is the factorization array with the factor
// VDPs removed: the per-domain and per-pair (V,T) chains are *fed* from
// the stored factors, B's tiles play the trailing columns, and every
// step is "panel-limited" (no column of B is ever eliminated), so the
// last step deposits its stream — the same machinery tree_qr_solve uses.
class ApplyBuilder {
 public:
  ApplyBuilder(const ref::TreeQrFactors& f, const TileMatrix& b,
               const TreeQrOptions& opt)
      : f_(f), b_(b), opt_(opt), vsa_(vsa_config(opt)) {
    require(b.rows() == f.a.rows() && b.nb() == f.a.nb(),
            "apply_qt: B must match the factored matrix rows and tile size");
    require(b.cols() >= 1, "apply_qt: B must have at least one column");
    store_ = std::make_shared<ResultStore>(b.rows(), b.cols(), b.nb(), f.ib);
    vsa_.set_global(store_);
    if (opt.transport == prt::Transport::Socket) {
      store_->enable_deposit_log();
      if (opt.max_respawns > 0) store_->enable_dedup();
      auto store = store_;
      vsa_.set_process_hooks(
          [store] { return store->serialize_deposits(); },
          [store](int, const Packet& blob) { store->apply_deposits(blob); });
    }
    tile_bytes_ = tile_packet_bytes(b.nb(), b.nb());
    vt_bytes_ = vt_packet_bytes(f.a.nb(), f.a.nb(), f.ib);
    total_threads_ = opt.nodes * opt.workers_per_node;
  }

  TileMatrix run() {
    const int panels = f_.plan.panels();
    for (int k = 0; k < panels; ++k) build_step(k, panels);
    vsa_.run();
    // Every (row, column) tile of B was deposited exactly once; reuse the
    // factor-store completeness check, then take the tile matrix.
    return store_
        ->finish(plan::ReductionPlan(b_.mt(), std::max(b_.nt(), 1),
                                     {plan::TreeKind::Flat, 1,
                                      plan::BoundaryMode::Shifted}),
                 f_.ib)
        .a;
  }

 private:
  static prt::Vsa::Config vsa_config(const TreeQrOptions& opt) {
    prt::Vsa::Config c;
    c.nodes = opt.nodes;
    c.workers_per_node = opt.workers_per_node;
    c.scheduling = opt.scheduling;
    c.work_stealing = opt.work_stealing;
    c.trace = opt.trace;
    c.watchdog_seconds = opt.watchdog_seconds;
    c.channel_impl = opt.channel_impl;
    c.spin_us = opt.spin_us;
    c.graph_check = opt.graph_check;
    c.reliable_transport = opt.reliable_transport;
    c.fault_plan = opt.fault_plan;
    c.retransmit_timeout_us = opt.retransmit_timeout_us;
    c.max_retransmits = opt.max_retransmits;
    c.coalesce_bytes = opt.coalesce_bytes;
    c.coalesce_flush_us = opt.coalesce_flush_us;
    c.transport = opt.transport;
    c.max_respawns = opt.max_respawns;
    c.replay_log_bytes = opt.replay_log_bytes;
    c.heartbeat_timeout_seconds = opt.heartbeat_timeout_seconds;
    return c;
  }

  void connect(const Producer& src, const Tuple& dst, int slot,
               std::size_t bytes, bool enabled = true) {
    vsa_.connect(src.vdp, src.slot, dst, slot, bytes, enabled);
  }

  /// (V,T) packets of one domain's flat reduction, in firing order.
  std::vector<Packet> domain_vt_packets(int k, const plan::Domain& dom) {
    std::vector<Packet> out;
    out.push_back(
        encode_vt(f_.a.tile(dom.head(), k), f_.tg.t(dom.head(), k),
                  dom.head()));
    for (int r = dom.begin + 1; r < dom.end; ++r) {
      out.push_back(encode_vt(f_.a.tile(r, k), f_.tt.t(r, k), r));
    }
    return out;
  }

  void wire_tile_inputs(const Tuple& dst, const std::vector<int>& rows,
                        int l, FlatCfg& cfg) {
    cfg.rows = rows;
    cfg.row_slot.resize(rows.size());
    if (cfg.k == 0) {
      std::vector<Packet> initial;
      for (int r : rows) initial.push_back(encode_tile(b_.tile(r, l), r));
      vsa_.feed(dst, 0, tile_bytes_, std::move(initial));
      for (auto& s : cfg.row_slot) s = 0;
      cfg.vt_in = 1;
      return;
    }
    int slot = -1;
    const Producer* prev = nullptr;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto it = producers_.find({rows[i], l});
      PQR_ASSERT(it != producers_.end(), "apply_qt: no producer for tile");
      const Producer& p = it->second;
      if (prev == nullptr || !(prev->vdp == p.vdp && prev->slot == p.slot)) {
        ++slot;
        connect(p, dst, slot, tile_bytes_, /*enabled=*/slot == 0);
        prev = &it->second;
      }
      cfg.row_slot[i] = slot;
    }
    cfg.vt_in = slot + 1;
  }

  void build_step(int k, int panels) {
    const int mt = f_.plan.mt();
    const int bt = b_.nt();
    const int pw = f_.a.tile_cols(k);
    const auto domains = plan::domains_for_panel(mt, k, f_.plan.config());
    const auto bs = make_binary(domains);
    const bool has_binary = domains.size() > 1;

    std::map<std::pair<int, int>, Producer> next_producers;
    std::map<int, int> dom_of_head;
    for (std::size_t d = 0; d < domains.size(); ++d) {
      dom_of_head[domains[d].head()] = static_cast<int>(d);
    }

    // ---- flat apply pipelines (one per domain per B column) --------------
    for (std::size_t d = 0; d < domains.size(); ++d) {
      const auto& dom = domains[d];
      std::vector<int> rows;
      for (int r = dom.begin; r < dom.end; ++r) rows.push_back(r);
      for (int c = 0; c < bt; ++c) {
        auto cfg = std::make_shared<FlatCfg>();
        cfg->k = k;
        cfg->l = c;  // deposits land in B's column c
        cfg->pw = pw;
        cfg->ib = f_.ib;
        const Tuple tup = Tuple{4, k, static_cast<int>(d), c};
        int next_out = 0;
        if (c + 1 < bt) cfg->vt_out = next_out++;
        if (rows.size() > 1 && k + 1 < panels) cfg->solid_out = next_out++;
        if (has_binary) cfg->top_out = next_out++;
        wire_tile_inputs(tup, rows, c, *cfg);
        const int num_inputs = cfg->vt_in + 1;
        vsa_.add_vdp(
            tup, static_cast<int>(rows.size()),
            [cfg](VdpContext& ctx) { update_fire(ctx, *cfg); }, num_inputs,
            next_out, kColorUpdate);
        declare_flat_balance(vsa_, tup, *cfg);
        const int thread = rr_thread_++ % total_threads_;
        vsa_.map_vdp(tup, thread);
        thread_of_[{static_cast<int>(d), c}] = thread;
        vt_in_slot_[tup] = cfg->vt_in;
        last_out_slot_[tup] = cfg->top_out;
        if (cfg->solid_out >= 0) {
          for (std::size_t i = 1; i < rows.size(); ++i) {
            next_producers[{rows[i], c}] = Producer{tup, cfg->solid_out};
          }
        }
      }
      // Feed the domain's (V,T) chain into column 0, then chain onward.
      vsa_.feed(Tuple{4, k, static_cast<int>(d), 0},
                vt_in_slot_.at(Tuple{4, k, static_cast<int>(d), 0}),
                vt_bytes_, domain_vt_packets(k, dom));
      for (int c = 0; c + 1 < bt; ++c) {
        const Tuple src{4, k, static_cast<int>(d), c};
        const Tuple dst{4, k, static_cast<int>(d), c + 1};
        connect({src, 0}, dst, vt_in_slot_.at(dst), vt_bytes_);
      }
    }

    // ---- binary apply VDPs -----------------------------------------------
    std::map<std::pair<int, int>, Producer> cur;  // (head, c) -> producer
    if (has_binary) {
      for (std::size_t d = 0; d < domains.size(); ++d) {
        const int head = domains[d].head();
        for (int c = 0; c < bt; ++c) {
          const Tuple tup{4, k, static_cast<int>(d), c};
          cur[{head, c}] = Producer{tup, last_out_slot_.at(tup)};
        }
      }
    }
    for (std::size_t pi = 0; pi < bs.pairs.size(); ++pi) {
      const auto& pr = bs.pairs[pi];
      const bool winner_continues =
          bs.pairs_of.at(pr.winner).back() != static_cast<int>(pi);
      for (int c = 0; c < bt; ++c) {
        auto cfg = std::make_shared<BinCfg>();
        cfg->k = k;
        cfg->l = c;
        cfg->pw = pw;
        cfg->ib = f_.ib;
        cfg->winner = pr.winner;
        cfg->loser = pr.loser;
        const Tuple tup{5, k, static_cast<int>(pi), c};
        int next_out = 0;
        if (c + 1 < bt) cfg->vt_out = next_out++;
        if (winner_continues) cfg->win_out = next_out++;
        if (k + 1 < panels) cfg->c2_out = next_out++;
        vsa_.add_vdp(
            tup, 1, [cfg](VdpContext& ctx) { tt_update_fire(ctx, *cfg); }, 3,
            next_out, kColorBinary);
        vsa_.map_vdp(tup, thread_of_.at({dom_of_head[pr.winner], c}));
        connect(cur.at({pr.winner, c}), tup, 0, tile_bytes_);
        connect(cur.at({pr.loser, c}), tup, 1, tile_bytes_);
        if (winner_continues) cur[{pr.winner, c}] = Producer{tup, cfg->win_out};
        if (cfg->c2_out >= 0) {
          next_producers[{pr.loser, c}] = Producer{tup, cfg->c2_out};
        }
      }
      // The pair's (V,T) feed + chain.
      std::vector<Packet> vt;
      vt.push_back(
          encode_vt(f_.a.tile(pr.loser, k), f_.tt.t(pr.loser, k), pr.loser));
      vsa_.feed(Tuple{5, k, static_cast<int>(pi), 0}, 2, vt_bytes_,
                std::move(vt));
      for (int c = 0; c + 1 < bt; ++c) {
        connect({Tuple{5, k, static_cast<int>(pi), c}, 0},
                Tuple{5, k, static_cast<int>(pi), c + 1}, 2, vt_bytes_);
      }
    }
    producers_ = std::move(next_producers);
  }

  const ref::TreeQrFactors& f_;
  const TileMatrix& b_;
  TreeQrOptions opt_;
  prt::Vsa vsa_;
  std::shared_ptr<ResultStore> store_;
  std::size_t tile_bytes_ = 0;
  std::size_t vt_bytes_ = 0;
  int total_threads_ = 1;
  int rr_thread_ = 0;
  std::map<std::pair<int, int>, Producer> producers_;
  std::map<std::pair<int, int>, int> thread_of_;  ///< (domain, c) -> thread
  std::map<Tuple, int> vt_in_slot_;
  std::map<Tuple, int> last_out_slot_;
};

}  // namespace

TileMatrix apply_qt(const ref::TreeQrFactors& factors, const TileMatrix& b,
                    const TreeQrOptions& opt) {
  ApplyBuilder builder(factors, b, opt);
  return builder.run();
}

TreeQrRun tree_qr(const TileMatrix& a, const TreeQrOptions& opt) {
  require(opt.ib >= 1 && opt.ib <= a.nb(), "tree_qr: need 1 <= ib <= nb");
  Builder b(a, opt);
  return b.run();
}

prt::GraphReport lint_tree_qr(const TileMatrix& a, const TreeQrOptions& opt) {
  require(opt.ib >= 1 && opt.ib <= a.nb(), "lint_tree_qr: need 1 <= ib <= nb");
  Builder b(a, opt);
  return b.lint();
}

TreeQrRun domino_qr(const TileMatrix& a, TreeQrOptions opt) {
  opt.tree.tree = plan::TreeKind::Flat;
  return tree_qr(a, opt);
}

TreeQrRun tsqr(const TileMatrix& a, TreeQrOptions opt) {
  require(a.nt() == 1,
          "tsqr: the matrix must be a single tile-column panel (n <= nb)");
  opt.tree.tree = plan::TreeKind::Binary;
  return tree_qr(a, opt);
}

}  // namespace pulsarqr::vsaqr
