// Batched small-matrix QR: one fused VSA plan for a whole batch.
//
// The paper's workload is one enormous factorization per run; the dominant
// production shape is the opposite — millions of tiny QRs (per-request
// least squares, MIMO channel inversion), where latency is all runtime
// overhead and no flops. qr_batch factors every matrix of a batch in place
// through ONE graph: each VDP owns a contiguous *slice of the batch*
// (rather than a tile of one matrix), fed by a prefilled source channel of
// [begin, end) range packets. Graph construction, GraphCheck and worker
// spawn are paid once per batch instead of once per matrix, and each VDP
// factors its matrices back-to-back with the geqrt panel kernel on its
// thread's reusable Workspace — after the first matrix warms the arena,
// the steady state performs no heap allocation.
//
// Both precisions ride the same templated builder: the f32 overload uses
// the float geqrt path (templated lapack panel kernels + f32 SIMD tables).
#pragma once

#include <span>
#include <vector>

#include "common/view.hpp"
#include "prt/vsa.hpp"

namespace pulsarqr::vsaqr {

struct BatchOptions {
  /// Inner block size of each matrix's geqrt (T factors are ib-by-n).
  int ib = 32;
  int nodes = 1;
  int workers_per_node = 2;
  /// Matrices per VDP firing (one range packet each). 0 picks a chunk that
  /// gives every VDP several firings (watchdog heartbeats, readable
  /// traces) while keeping the packet count negligible.
  int chunk = 0;
  prt::Scheduling scheduling = prt::Scheduling::Lazy;
  prt::ChannelImpl channel_impl = prt::ChannelImpl::Spsc;
  int spin_us = -1;
  bool graph_check = true;
  double watchdog_seconds = 30.0;
  /// Record per-matrix factorization seconds into BatchRun::matrix_seconds
  /// (two clock reads per matrix; off for peak-throughput runs).
  bool record_latency = false;
};

struct BatchRun {
  prt::Vsa::RunStats stats;
  int vdp_count = 0;
  long long chunks = 0;  ///< range packets fed (total firings)
  /// Per-matrix kernel seconds, indexed like the input span (only when
  /// BatchOptions::record_latency; each VDP writes its own slice).
  std::vector<double> matrix_seconds;
};

/// Factor every a[i] in place (geqrt layout: R in the upper triangle,
/// Householder vectors below, T factors in t[i]). t[i] must be at least
/// min(ib, k_i)-by-k_i for k_i = min(a[i].rows, a[i].cols). The spans hold
/// const views (the view structs are not mutated; the matrix data is).
/// Results are bitwise identical to calling kernels::geqrt on each matrix
/// sequentially — both paths run the same kernel on the same bytes.
BatchRun qr_batch(std::span<const MatrixView> a, std::span<const MatrixView> t,
                  const BatchOptions& opt = {});
BatchRun qr_batch(std::span<const MatrixViewF> a,
                  std::span<const MatrixViewF> t, const BatchOptions& opt = {});

}  // namespace pulsarqr::vsaqr
