// Public driver for the tree-based QR decomposition on a 3D Virtual
// Systolic Array (Section V of the paper).
//
// tree_qr() builds the VSA for the requested reduction tree (flat, binary,
// or binary-on-flat with domain size h and fixed/shifted boundaries), runs
// it on the PULSAR runtime across virtual nodes and worker threads, and
// returns the same TreeQrFactors the sequential reference executor
// produces — bit-for-bit, since both issue identical kernel sequences.
#pragma once

#include <vector>

#include "plan/reduction_plan.hpp"
#include "prt/graph_check.hpp"
#include "prt/vsa.hpp"
#include "ref/reference_qr.hpp"
#include "tile/tile_matrix.hpp"

namespace pulsarqr::vsaqr {

struct TreeQrOptions {
  plan::PlanConfig tree;  ///< reduction tree (kind, h, boundary mode)
  int ib = 32;            ///< inner block size
  int nodes = 1;          ///< virtual distributed-memory nodes
  int workers_per_node = 2;
  prt::Scheduling scheduling = prt::Scheduling::Lazy;
  /// Execute with the per-node work-stealing pool instead of the static
  /// VDP->thread binding (see prt::Vsa::Config::work_stealing).
  bool work_stealing = false;
  bool trace = false;
  double watchdog_seconds = 60.0;
  /// Channel queue implementation (see prt::Vsa::Config::channel_impl);
  /// the mutex fallback exists mainly for A/B measurement.
  prt::ChannelImpl channel_impl = prt::ChannelImpl::Spsc;
  /// Idle-worker spin before parking, in microseconds; negative = auto
  /// (see prt::Vsa::Config::spin_us).
  int spin_us = -1;
  /// Eliminate only this many tile columns (> 0); the remaining columns
  /// are swept by the updates only and come out as Q^T applied to them.
  /// Used by tree_qr_solve to factorize [A | B] in one pass.
  int panel_columns = -1;
  /// Statically verify the constructed array with prt::GraphCheck before
  /// executing it (see prt::Vsa::Config::graph_check).
  bool graph_check = true;
  /// Ack/retransmit reliable delivery on the inter-node transport (see
  /// prt::Vsa::Config::reliable_transport). Required for correct
  /// completion when fault_plan injects losses.
  bool reliable_transport = false;
  /// Deterministic chaos schedule for the inter-node transport (see
  /// prt::Vsa::Config::fault_plan); inert when all probabilities are zero.
  prt::net::FaultPlan fault_plan;
  /// Reliable-protocol tuning (see prt::Vsa::Config).
  int retransmit_timeout_us = 2000;
  int max_retransmits = 10;
  /// Per-destination egress coalescing of inter-node frames (see
  /// prt::Vsa::Config::coalesce_bytes / coalesce_flush_us). 0 disables.
  std::size_t coalesce_bytes = 64 * 1024;
  int coalesce_flush_us = 50;
  /// Transport backend for inter-node traffic: InProcess threads (the
  /// default) or one forked OS process per node over Unix-domain sockets
  /// (see prt::Transport). Socket mode ships result tiles back to the
  /// parent through the ResultStore deposit log.
  prt::Transport transport = prt::Transport::InProcess;
  /// Crash recovery over the Socket transport: how many node-process
  /// deaths the run may absorb by respawning (see
  /// prt::Vsa::Config::max_respawns; requires reliable_transport). Also
  /// switches the ResultStore to idempotent re-deposits.
  int max_respawns = 0;
  /// Per-destination byte budget of the crash-replay frame log (see
  /// prt::Vsa::Config::replay_log_bytes).
  std::size_t replay_log_bytes = 64 * 1024 * 1024;
  /// Parent-side liveness deadline on child heartbeats and control-plane
  /// reads (see prt::Vsa::Config::heartbeat_timeout_seconds).
  double heartbeat_timeout_seconds = 10.0;
};

struct TreeQrRun {
  ref::TreeQrFactors factors;
  prt::Vsa::RunStats stats;
  std::vector<prt::trace::Event> events;  ///< populated when trace is on
  int vdp_count = 0;
  int channel_count = 0;
};

/// Factorize a tile matrix on the virtual systolic array. The input matrix
/// is read-only; its tiles are fed into the array as packets.
TreeQrRun tree_qr(const TileMatrix& a, const TreeQrOptions& opt);

/// Build the factorization array for `a` and statically verify it with
/// prt::GraphCheck, without executing a single firing. A well-formed plan
/// yields a report with no diagnostics; used by the vsa_lint tool.
prt::GraphReport lint_tree_qr(const TileMatrix& a, const TreeQrOptions& opt);

/// The 2013 "domino QR" (the paper's predecessor [4]): the flat-tree
/// special case of the same array.
TreeQrRun domino_qr(const TileMatrix& a, TreeQrOptions opt);

/// Communication-avoiding TSQR: the QR of a single tile-column panel
/// (n <= nb) by pure binary reduction — the classic tall-skinny kernel.
/// Returns the factors (R in tile (0,0); the per-level V/T packets in the
/// usual layout) after running the array with TreeKind::Binary.
TreeQrRun tsqr(const TileMatrix& a, TreeQrOptions opt);

/// Apply Q^T to a block of vectors on the systolic array, streaming B's
/// tiles through an apply-only replica of the factorization array whose
/// (V,T) chains are fed from the stored factors. Lets one factorization
/// serve many right-hand-side batches without re-running the reduction.
/// B must have the same row count and tile size as the factored matrix;
/// returns Q^T B.
TileMatrix apply_qt(const ref::TreeQrFactors& factors, const TileMatrix& b,
                    const TreeQrOptions& opt);

/// Solve min_X ||A X - B|| entirely on the systolic array: the augmented
/// matrix [A | B] streams through the array with the elimination stopped
/// at A's columns, so B's columns come out as Q^T B and only the final
/// triangular solve runs on the host. A is m-by-n with m >= n, B is
/// m-by-nrhs; returns the n-by-nrhs solution.
Matrix tree_qr_solve(const TileMatrix& a, ConstMatrixView b,
                     TreeQrOptions opt);

/// VDP colors used for tracing, matching Figure 7's palette: red = flat
/// panel factorization, orange = flat trailing updates, blue = binary.
enum TraceColor { kColorFactor = 0, kColorUpdate = 1, kColorBinary = 2 };

}  // namespace pulsarqr::vsaqr
