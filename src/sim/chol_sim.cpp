#include "sim/chol_sim.hpp"

#include <unordered_map>

#include "common/error.hpp"

namespace pulsarqr::sim {

namespace {

// Kernel efficiencies: potrf is panel-like, trsm is triangular-solve
// rich, the gemm/syrk updates are the throughput kernels — reuse the
// corresponding QR calibration points.
double chol_task_seconds(const chol::Op& op, int n, int nb,
                         const MachineModel& mm) {
  double eff;
  switch (op.kind) {
    case chol::OpKind::Potrf: eff = mm.eff_geqrt; break;
    case chol::OpKind::Trsm: eff = mm.eff_tsqrt; break;
    default: eff = mm.eff_tsmqr; break;
  }
  return chol::op_flops(op, n, nb) / (mm.core_peak_gflops * 1e9 * eff) +
         mm.task_overhead_s;
}

}  // namespace

SimResult simulate_cholesky(int n, int nb, const MachineModel& mm,
                            int nodes) {
  const int mt = (n + nb - 1) / nb;
  chol::CholPlan plan(mt);
  const auto& ops = plan.ops();
  const int nops = static_cast<int>(ops.size());
  const int threads = nodes * mm.workers_per_node();
  require(threads >= 1, "simulate_cholesky: no worker threads");

  TaskGraph g;
  g.num_tasks = nops;
  g.num_threads = threads;
  g.workers_per_node = mm.workers_per_node();
  g.duration.resize(nops);
  g.thread.resize(nops);

  // Replicate the builder's creation-order cyclic mapping: per step k the
  // VDPs are P(k), S(k,k+1), ..., S(k,mt-1).
  std::vector<std::int64_t> base(mt + 1, 0);
  for (int k = 0; k < mt; ++k) base[k + 1] = base[k] + (mt - k);
  auto thread_of = [&](int k, int j /* == k for P */) {
    return static_cast<int>((base[k] + (j - k)) % threads);
  };

  auto tile_key = [&](int i, int j) {
    return static_cast<std::int64_t>(i) * mt + j;
  };
  std::unordered_map<std::int64_t, int> last_writer;
  std::unordered_map<std::int64_t, int> vdp_last;

  std::vector<std::int64_t> offsets(nops + 1, 0);
  std::vector<std::int32_t> preds;
  std::vector<EdgeKind> kinds;
  preds.reserve(static_cast<std::size_t>(nops) * 3);
  kinds.reserve(static_cast<std::size_t>(nops) * 3);

  for (int x = 0; x < nops; ++x) {
    const chol::Op& op = ops[x];
    struct Access {
      int i, j;
      bool write;
    };
    Access acc[3];
    int na = 0;
    int vdp_j = op.k;  // column of the owning VDP (== k for the panel)
    switch (op.kind) {
      case chol::OpKind::Potrf:
        acc[na++] = {op.k, op.k, true};
        break;
      case chol::OpKind::Trsm:
        acc[na++] = {op.k, op.k, false};
        acc[na++] = {op.i, op.k, true};
        break;
      case chol::OpKind::Syrk:
        acc[na++] = {op.j, op.k, false};
        acc[na++] = {op.j, op.j, true};
        vdp_j = op.j;
        break;
      case chol::OpKind::Gemm:
        acc[na++] = {op.i, op.k, false};
        acc[na++] = {op.j, op.k, false};
        acc[na++] = {op.i, op.j, true};
        vdp_j = op.j;
        break;
    }
    g.duration[x] = static_cast<float>(chol_task_seconds(op, n, nb, mm));
    g.thread[x] = thread_of(op.k, vdp_j);

    const std::int64_t vk =
        static_cast<std::int64_t>(op.k) * (mt + 1) + vdp_j;
    int local[4];
    EdgeKind local_kind[4];
    int nl = 0;
    if (auto it = vdp_last.find(vk); it != vdp_last.end()) {
      local[nl] = it->second;
      local_kind[nl++] = EdgeKind::Serial;
    }
    vdp_last[vk] = x;
    for (int a = 0; a < na; ++a) {
      if (auto it = last_writer.find(tile_key(acc[a].i, acc[a].j));
          it != last_writer.end()) {
        const int p = it->second;
        bool dup = p == x;
        for (int q = 0; q < nl; ++q) dup = dup || local[q] == p;
        if (!dup) {
          local[nl] = p;
          local_kind[nl++] = EdgeKind::Tile;
        }
      }
      if (acc[a].write) last_writer[tile_key(acc[a].i, acc[a].j)] = x;
    }
    offsets[x + 1] = offsets[x] + nl;
    for (int q = 0; q < nl; ++q) {
      preds.push_back(local[q]);
      kinds.push_back(local_kind[q]);
    }
  }
  g.pred_offset = std::move(offsets);
  g.pred_task = std::move(preds);
  g.pred_kind = std::move(kinds);

  CostModel cost(mm, n, n, nb, nb);
  return simulate_graph(g, cost, chol::chol_useful_flops(n),
                        chol::plan_flops(plan, n, nb));
}

}  // namespace pulsarqr::sim
