// Machine model for the performance simulator — the stand-in for the
// Cray XT5 (Kraken) evaluation platform of Section VI.
//
// Kraken node: two 2.6 GHz six-core AMD Opteron (Istanbul), 16 GB RAM,
// SeaStar2+ interconnect. Peak per core = 2.6 GHz x 4 flops/cycle =
// 10.4 Gflop/s. The paper runs one MPI process per node with one thread
// per physical core, one of which is the communication proxy.
#pragma once

namespace pulsarqr::sim {

struct MachineModel {
  int cores_per_node = 12;
  /// One core per node runs the PRT proxy and does no math (Section IV-B).
  bool proxy_core_reserved = true;

  double core_peak_gflops = 10.4;

  // Kernel efficiencies relative to peak. Panel kernels are rich in
  // level-1/2 BLAS and short dgemms; updates are dgemm-bound. The TT
  // kernels are "special kernels which may not be optimized on this
  // computer" (Section VI), hence the lower factors.
  // Calibrated so the simulated Figure 10/11 curves land on the paper's
  // magnitudes (hierarchical ~10.3 Tflop/s at m = 737280 on 9216 cores,
  // flat saturating near 1.1 Tflop/s); see EXPERIMENTS.md.
  double eff_geqrt = 0.35;
  double eff_tsqrt = 0.42;
  double eff_ttqrt = 0.18;
  double eff_ormqr = 0.43;
  double eff_tsmqr = 0.47;
  double eff_ttmqr = 0.27;

  // SeaStar2+-class link: per-message latency and per-node bandwidth.
  double link_latency_s = 8.0e-6;
  double link_bandwidth_bps = 6.0e9;

  /// Effective per-stage latency multiplier for synchronous collectives
  /// (MPI software overhead + network congestion when thousands of ranks
  /// synchronize; relevant to the ScaLAPACK comparator, whose panel is a
  /// sequence of blocking collectives).
  double collective_alpha_factor = 4.0;

  /// Sustained per-core memory bandwidth for strided (block-cyclic) panel
  /// access — bounds dgemv/dger in the ScaLAPACK panel.
  double memory_bw_core_bps = 2.0e9;

  /// Runtime overhead per task (dependence tracking, queue handling).
  double task_overhead_s = 2.0e-6;

  /// Model per-node injection-bandwidth contention: a node's outgoing
  /// messages serialize through its NIC instead of departing in parallel.
  /// Off by default (the calibrated headline figures use independent
  /// edges); enabled for the weak-scaling comparisons where aggregate
  /// traffic matters.
  bool model_nic_contention = false;

  /// Per-dependency hand-off latency between tasks on the same node.
  /// Zero for PRT (zero-copy aliasing, by-pass chains); a generic
  /// task-superscalar runtime pays a scheduler round-trip per resolved
  /// dependency, which is how the PaRSEC-style comparator is modeled.
  double intra_node_edge_latency_s = 0.0;

  /// Workers that execute kernels on one node.
  int workers_per_node() const {
    return cores_per_node - (proxy_core_reserved ? 1 : 0);
  }

  /// The paper's Kraken configuration.
  static MachineModel kraken() { return MachineModel{}; }
};

}  // namespace pulsarqr::sim
