#include "sim/task_graph.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "plan/domains.hpp"

namespace pulsarqr::sim {

VdpThreadMap::VdpThreadMap(int mt, int nt, const plan::PlanConfig& cfg,
                           int num_threads)
    : mt_(mt), nt_(nt), threads_(num_threads), cfg_(cfg) {
  const int panels = std::min(mt, nt);
  base_.resize(panels + 1, 0);
  for (int k = 0; k < panels; ++k) {
    const auto doms = plan::domains_for_panel(mt_, k, cfg_);
    base_[k + 1] =
        base_[k] + static_cast<std::int64_t>(doms.size()) * (nt_ - k);
  }
}

int VdpThreadMap::flat_thread(int k, int domain, int l) const {
  const std::int64_t idx =
      base_[k] + static_cast<std::int64_t>(domain) * (nt_ - k) + (l - k);
  return static_cast<int>(idx % threads_);
}

int VdpThreadMap::domain_index(int k, int i) const {
  switch (cfg_.tree) {
    case plan::TreeKind::Flat:
      return 0;
    case plan::TreeKind::Binary:
      return i - k;
    case plan::TreeKind::BinaryOnFlat: {
      const int h = cfg_.domain_size;
      if (cfg_.boundary == plan::BoundaryMode::Shifted) {
        return (i - k) / h;
      }
      // Fixed boundaries: domain 0 starts at k; later heads sit at the
      // absolute multiples of h above k.
      if (i == k) return 0;
      const int first = (k / h + 1) * h;  // first boundary above k
      PQR_ASSERT(i >= first && (i - first) % h == 0,
                 "domain_index: row is not a head");
      return 1 + (i - first) / h;
    }
  }
  return 0;
}

TaskGraph build_task_graph(const plan::ReductionPlan& plan,
                           const CostModel& cost, int nodes) {
  using plan::Op;
  using plan::OpKind;
  const int nt = plan.nt();
  const auto& ops = plan.ops();
  const int nops = static_cast<int>(ops.size());
  const int wpn = cost.machine().workers_per_node();
  const int threads = nodes * wpn;
  require(threads >= 1, "build_task_graph: no worker threads");

  TaskGraph g;
  g.num_tasks = nops;
  g.num_threads = threads;
  g.workers_per_node = wpn;
  g.duration.resize(nops);
  g.thread.resize(nops);

  VdpThreadMap tmap(plan.mt(), plan.nt(), plan.config(), threads);

  // ---- thread assignment and durations -------------------------------------
  for (int x = 0; x < nops; ++x) {
    const Op& op = ops[x];
    g.duration[x] = static_cast<float>(cost.task_seconds(op));
    int d;      // domain whose pipeline executes this op
    int l;      // column of the pipeline
    switch (op.kind) {
      case OpKind::Geqrt:
      case OpKind::Tsqrt:
        d = op.level;  // plan stores the domain index for flat ops
        l = op.j;
        break;
      case OpKind::Ormqr:
      case OpKind::Tsmqr:
        d = op.level;
        l = op.l;
        break;
      case OpKind::Ttqrt:
        d = tmap.domain_index(op.j, op.i);  // winner-side child
        l = op.j;
        break;
      case OpKind::Ttmqr:
      default:
        d = tmap.domain_index(op.j, op.i);
        l = op.l;
        break;
    }
    g.thread[x] = tmap.flat_thread(op.j, d, l);
  }

  // ---- dependencies ---------------------------------------------------------
  // Last writer of every tile, and last op of every VDP (serialization).
  auto tile_key = [&](int i, int j) {
    return static_cast<std::int64_t>(i) * nt + j;
  };
  // VDP key: flat VDPs by (type 0, k, d, l); binary by (type 1, k, i, l).
  auto vdp_key = [&](const Op& op) {
    int type, a, b;
    switch (op.kind) {
      case OpKind::Geqrt:
      case OpKind::Tsqrt:
      case OpKind::Ormqr:
      case OpKind::Tsmqr:
        type = 0;
        a = op.level;
        b = plan::is_factor_op(op.kind) ? op.j : op.l;
        break;
      default:
        // Each Tt pair fires once per column; key by (survivor, column) —
        // a survivor appears in several pairs, and those fire in sequence
        // on the same thread, so collapsing them into one "VDP chain" is
        // exactly the serialization the array imposes (the survivor tile
        // flows through them in order).
        type = 1;
        a = op.i;
        b = plan::is_factor_op(op.kind) ? op.j : op.l;
        break;
    }
    return (static_cast<std::int64_t>(type) << 62) |
           (static_cast<std::int64_t>(op.j) << 44) |
           (static_cast<std::int64_t>(a) << 22) | static_cast<std::int64_t>(b);
  };

  std::unordered_map<std::int64_t, int> last_writer;
  std::unordered_map<std::int64_t, int> vdp_last;
  last_writer.reserve(static_cast<std::size_t>(plan.mt()) * nt * 2);
  vdp_last.reserve(nops / 4 + 16);

  std::vector<std::int64_t> offsets(nops + 1, 0);
  std::vector<std::int32_t> preds;
  std::vector<EdgeKind> kinds;
  preds.reserve(static_cast<std::size_t>(nops) * 3);
  kinds.reserve(static_cast<std::size_t>(nops) * 3);

  // Scratch: the tiles each op touches.
  struct Access {
    int i, j;
    bool write;
    bool vt;  ///< read of a transformation (V,T) packet
  };
  Access acc[3];

  for (int x = 0; x < nops; ++x) {
    const Op& op = ops[x];
    int na = 0;
    switch (op.kind) {
      case OpKind::Geqrt:
        acc[na++] = {op.i, op.j, true, false};
        break;
      case OpKind::Ormqr:
        acc[na++] = {op.i, op.j, false, true};
        acc[na++] = {op.i, op.l, true, false};
        break;
      case OpKind::Tsqrt:
      case OpKind::Ttqrt:
        acc[na++] = {op.i, op.j, true, false};
        acc[na++] = {op.k, op.j, true, false};
        break;
      case OpKind::Tsmqr:
      case OpKind::Ttmqr:
        acc[na++] = {op.k, op.j, false, true};
        acc[na++] = {op.i, op.l, true, false};
        acc[na++] = {op.k, op.l, true, false};
        break;
    }

    const std::int64_t vk = vdp_key(op);
    int local[4];
    EdgeKind local_kind[4];
    int nl = 0;
    if (auto it = vdp_last.find(vk); it != vdp_last.end()) {
      local[nl] = it->second;
      local_kind[nl++] = EdgeKind::Serial;
    }
    vdp_last[vk] = x;

    for (int a = 0; a < na; ++a) {
      const std::int64_t tk = tile_key(acc[a].i, acc[a].j);
      if (auto it = last_writer.find(tk); it != last_writer.end()) {
        const int p = it->second;
        bool dup = false;
        for (int q = 0; q < nl; ++q) dup = dup || local[q] == p;
        if (!dup && p != x) {
          local[nl] = p;
          local_kind[nl++] = acc[a].vt ? EdgeKind::Vt : EdgeKind::Tile;
        }
      }
      if (acc[a].write) last_writer[tk] = x;
    }

    offsets[x + 1] = offsets[x] + nl;
    for (int q = 0; q < nl; ++q) {
      preds.push_back(local[q]);
      kinds.push_back(local_kind[q]);
    }
  }

  g.pred_offset = std::move(offsets);
  g.pred_task = std::move(preds);
  g.pred_kind = std::move(kinds);
  return g;
}

}  // namespace pulsarqr::sim
