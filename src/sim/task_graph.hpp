// Task graph generation for the performance simulator.
//
// The graph mirrors what the PULSAR runtime actually executes: one task
// per plan op, serialized per VDP (a VDP fires one packet at a time),
// with RAW dependencies through tiles and transformation packets. WAR
// hazards do not exist in the systolic implementation — transformations
// travel as copied (V,T) packets — so they produce no edges, unlike a
// conservative superscalar analysis.
//
// Each task is statically assigned to a worker thread by replicating the
// VSA builder's mapping (Section V-D): flat VDPs cyclically in creation
// order, binary VDPs on the thread of their winner-side child.
#pragma once

#include <cstdint>
#include <vector>

#include "plan/reduction_plan.hpp"
#include "sim/cost_model.hpp"

namespace pulsarqr::sim {

enum class EdgeKind : std::uint8_t {
  Serial,  ///< same-VDP ordering (no message)
  Tile,    ///< tile packet
  Vt,      ///< (V,T) transformation packet
};

struct TaskGraph {
  int num_tasks = 0;
  int num_threads = 0;
  int workers_per_node = 0;
  std::vector<float> duration;  ///< seconds per task
  std::vector<std::int32_t> thread;

  // Predecessor lists in CSR form.
  std::vector<std::int64_t> pred_offset;  ///< size num_tasks + 1
  std::vector<std::int32_t> pred_task;
  std::vector<EdgeKind> pred_kind;

  int node_of(int task) const { return thread[task] / workers_per_node; }
};

/// Replicates the builder's cyclic flat-VDP thread assignment: the VDP
/// handling (panel k, domain d, column l) is worker
/// (base_k + d*(nt-k) + (l-k)) mod P with base_k the creation-order prefix.
class VdpThreadMap {
 public:
  VdpThreadMap(int mt, int nt, const plan::PlanConfig& cfg, int num_threads);

  int flat_thread(int k, int domain, int l) const;
  /// Domain index of head row i at panel k (closed form per tree kind).
  int domain_index(int k, int i) const;

 private:
  int mt_, nt_, threads_;
  plan::PlanConfig cfg_;
  std::vector<std::int64_t> base_;  ///< creation-order prefix per panel
};

/// Build the full task graph for a plan on `nodes` nodes of the machine.
TaskGraph build_task_graph(const plan::ReductionPlan& plan,
                           const CostModel& cost, int nodes);

}  // namespace pulsarqr::sim
