// Per-task execution times and per-message communication times derived
// from the machine model and the kernel flop counts.
#pragma once

#include "plan/flops.hpp"
#include "sim/machine.hpp"

namespace pulsarqr::sim {

class CostModel {
 public:
  CostModel(const MachineModel& mm, int m, int n, int nb, int ib)
      : mm_(mm), m_(m), n_(n), nb_(nb), ib_(ib) {}

  /// Wall time of one kernel op on one core, including runtime overhead.
  double task_seconds(const plan::Op& op) const;

  /// Time for a tile-sized message between two nodes.
  double tile_message_seconds() const {
    const double bytes = 8.0 * nb_ * nb_ + 16;
    return mm_.link_latency_s + bytes / mm_.link_bandwidth_bps;
  }

  /// Time for a (V,T) transformation message between two nodes.
  double vt_message_seconds() const {
    const double bytes = 8.0 * (static_cast<double>(nb_) * nb_ +
                                static_cast<double>(ib_) * nb_) +
                         32;
    return mm_.link_latency_s + bytes / mm_.link_bandwidth_bps;
  }

  const MachineModel& machine() const { return mm_; }
  int nb() const { return nb_; }

 private:
  double efficiency(plan::OpKind k) const;

  MachineModel mm_;
  int m_, n_, nb_, ib_;
};

}  // namespace pulsarqr::sim
