// Analytic cost model of ScaLAPACK-style pdgeqrf (block Householder QR on
// a 2D block-cyclic grid) — the established-solver comparator of
// Section VI-A. The paper reports LibSci/ScaLAPACK lagging tree QR by at
// least 3x (up to an order of magnitude) on tall-skinny matrices; the gap
// comes from the column-by-column, latency-bound panel factorization that
// cannot overlap with the trailing update, which is exactly what this
// model charges for.
#pragma once

#include "sim/machine.hpp"

namespace pulsarqr::sim {

struct ScalapackResult {
  double seconds = 0.0;
  double useful_gflops = 0.0;
  double panel_seconds = 0.0;   ///< latency-bound panel factorization
  double update_seconds = 0.0;  ///< gemm-bound trailing update
  int pr = 0, pc = 0;           ///< process grid used
};

/// Model pdgeqrf of an m-by-n matrix with block size nb on `cores`
/// single-threaded processes of machine `mm` (the classic ScaLAPACK
/// deployment: one MPI rank per core).
ScalapackResult scalapack_qr_model(double m, double n, int nb,
                                   const MachineModel& mm, int cores);

}  // namespace pulsarqr::sim
