// Performance simulation of the PULSAR-mapped Cholesky (src/chol) on the
// same machine model and DES engine as the QR simulator.
#pragma once

#include "chol/chol_plan.hpp"
#include "sim/simulator.hpp"

namespace pulsarqr::sim {

/// Simulate the systolic Cholesky of an n-by-n SPD matrix with tile size
/// nb on `nodes` nodes of machine `mm`.
SimResult simulate_cholesky(int n, int nb, const MachineModel& mm, int nodes);

}  // namespace pulsarqr::sim
