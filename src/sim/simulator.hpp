// Discrete-event simulator: executes a task graph on the machine model
// and reports the metrics the paper's figures plot.
#pragma once

#include "plan/reduction_plan.hpp"
#include "sim/task_graph.hpp"

namespace pulsarqr::sim {

struct SimResult {
  double seconds = 0.0;        ///< simulated makespan
  double useful_gflops = 0.0;  ///< 2n^2(m - n/3) / time — the paper's metric
  double actual_gflops = 0.0;  ///< flops actually executed / time
  double busy_fraction = 0.0;  ///< worker utilization
  long long tasks = 0;
  double total_flops = 0.0;
};

/// Simulate one tree-QR factorization of an m-by-n matrix with tile size
/// nb / inner block ib on `nodes` nodes of machine `mm`.
SimResult simulate_tree_qr(int m, int n, int nb, int ib,
                           const plan::PlanConfig& cfg,
                           const MachineModel& mm, int nodes);

/// Lower-level entry point when the plan/graph are reused.
SimResult simulate_graph(const TaskGraph& g, const CostModel& cost,
                         double useful_flops, double total_flops);

}  // namespace pulsarqr::sim
