#include "sim/cost_model.hpp"

namespace pulsarqr::sim {

double CostModel::efficiency(plan::OpKind k) const {
  using plan::OpKind;
  switch (k) {
    case OpKind::Geqrt: return mm_.eff_geqrt;
    case OpKind::Tsqrt: return mm_.eff_tsqrt;
    case OpKind::Ttqrt: return mm_.eff_ttqrt;
    case OpKind::Ormqr: return mm_.eff_ormqr;
    case OpKind::Tsmqr: return mm_.eff_tsmqr;
    case OpKind::Ttmqr: return mm_.eff_ttmqr;
  }
  return 1.0;
}

double CostModel::task_seconds(const plan::Op& op) const {
  const double flops = plan::op_flops(op, m_, n_, nb_);
  const double rate = mm_.core_peak_gflops * 1e9 * efficiency(op.kind);
  return flops / rate + mm_.task_overhead_s;
}

}  // namespace pulsarqr::sim
