#include "sim/scalapack_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "plan/flops.hpp"

namespace pulsarqr::sim {

namespace {

// Tall-skinny friendly grid: pr >= pc, pr/pc as close to m/n as the
// factorization of `cores` allows (capped to keep pc >= 1).
std::pair<int, int> choose_grid(double m, double n, int cores) {
  int best_pr = cores;
  int best_pc = 1;
  double best_score = 1e300;
  const double target = std::max(1.0, m / std::max(1.0, n));
  for (int pc = 1; pc * pc <= cores * 64; ++pc) {
    if (cores % pc != 0) continue;
    const int pr = cores / pc;
    if (pr < pc) break;
    const double ratio = static_cast<double>(pr) / pc;
    const double score = std::fabs(std::log(ratio / target));
    if (score < best_score) {
      best_score = score;
      best_pr = pr;
      best_pc = pc;
    }
  }
  return {best_pr, best_pc};
}

}  // namespace

ScalapackResult scalapack_qr_model(double m, double n, int nb,
                                   const MachineModel& mm, int cores) {
  require(cores >= 1, "scalapack model: need at least one core");
  const auto [pr, pc] = choose_grid(m, n, cores);
  const double alpha = mm.link_latency_s;
  const double beta = 1.0 / mm.link_bandwidth_bps;  // seconds per byte
  const double peak = mm.core_peak_gflops * 1e9;

  // Trailing update: dlarfb is gemm-rich; ScaLAPACK reaches decent node
  // efficiency on it but runs it in lockstep with the panels (no
  // lookahead in pdgeqrf).
  const double update_flops = plan::qr_useful_flops(m, n);
  const double update_seconds = update_flops / (cores * peak * 0.50);

  // Panel factorization: each of the n columns performs a column-norm
  // allreduce, a beta/tau broadcast and a rank-1-update synchronization —
  // three log(pr)-deep blocking collectives of tiny messages (charged at
  // the synchronous-collective effective latency) — plus memory-bound
  // dgemv/dger sweeps over the local (m/pr)-by-(remaining panel) strip.
  const double cols = n;
  const double alpha_eff = alpha * mm.collective_alpha_factor;
  const double collective = 6.0 * std::ceil(std::log2(std::max(2, pr))) *
                            (alpha_eff + 64 * beta);
  const double avg_rows_local = (m - n / 2.0) / pr;
  // dgemv + dger touch ~3 copies of the local strip per column.
  const double col_work =
      3.0 * 8.0 * avg_rows_local * (nb / 2.0) / mm.memory_bw_core_bps;
  double panel_seconds = cols * (collective + col_work);

  // Per-panel V/T broadcast along the process rows before the update.
  const double panels = std::ceil(n / static_cast<double>(nb));
  const double v_bytes = 8.0 * nb * (m / pr);
  panel_seconds += panels * std::ceil(std::log2(std::max(2, pc))) *
                   (alpha + v_bytes * beta);

  ScalapackResult r;
  r.pr = pr;
  r.pc = pc;
  r.panel_seconds = panel_seconds;
  r.update_seconds = update_seconds;
  // Synchronous execution: the two phases do not overlap.
  r.seconds = panel_seconds + update_seconds;
  r.useful_gflops = update_flops / r.seconds / 1e9;
  return r;
}

}  // namespace pulsarqr::sim
