// Performance simulation of the PULSAR-mapped LU (src/lu).
#pragma once

#include "lu/lu_plan.hpp"
#include "sim/simulator.hpp"

namespace pulsarqr::sim {

/// Simulate the systolic no-pivot LU of an m-by-n matrix with tile size
/// nb on `nodes` nodes of machine `mm`.
SimResult simulate_lu(int m, int n, int nb, const MachineModel& mm,
                      int nodes);

}  // namespace pulsarqr::sim
