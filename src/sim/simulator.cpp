#include "sim/simulator.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "plan/flops.hpp"

namespace pulsarqr::sim {

namespace {

/// Per-thread ready queue ordered by the time a task's inputs are all
/// available (the moment the VDP becomes fireable).
struct ReadyTask {
  double avail;
  int task;
  bool operator>(const ReadyTask& o) const {
    return avail > o.avail || (avail == o.avail && task > o.task);
  }
};

struct Completion {
  double time;
  int task;
  bool operator>(const Completion& o) const {
    return time > o.time || (time == o.time && task > o.task);
  }
};

}  // namespace

SimResult simulate_graph(const TaskGraph& g, const CostModel& cost,
                         double useful_flops, double total_flops) {
  const int n = g.num_tasks;
  const int threads = g.num_threads;

  // Successor CSR from the predecessor CSR.
  std::vector<std::int64_t> soff(n + 1, 0);
  for (std::int64_t e = 0; e < g.pred_offset[n]; ++e) {
    ++soff[g.pred_task[e] + 1];
  }
  for (int i = 0; i < n; ++i) soff[i + 1] += soff[i];
  std::vector<std::int32_t> succ(g.pred_offset[n]);
  std::vector<EdgeKind> succ_kind(g.pred_offset[n]);
  {
    std::vector<std::int64_t> fill = soff;
    for (int x = 0; x < n; ++x) {
      for (std::int64_t e = g.pred_offset[x]; e < g.pred_offset[x + 1]; ++e) {
        const int p = g.pred_task[e];
        succ[fill[p]] = x;
        succ_kind[fill[p]] = g.pred_kind[e];
        ++fill[p];
      }
    }
  }

  std::vector<std::int32_t> npred(n);
  std::vector<double> avail(n, 0.0);
  for (int x = 0; x < n; ++x) {
    npred[x] = static_cast<std::int32_t>(g.pred_offset[x + 1] -
                                         g.pred_offset[x]);
  }

  std::vector<std::priority_queue<ReadyTask, std::vector<ReadyTask>,
                                  std::greater<ReadyTask>>>
      ready(threads);
  std::vector<double> free_at(threads, 0.0);
  std::vector<char> busy(threads, 0);
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      events;

  const double tile_msg = cost.tile_message_seconds();
  const double vt_msg = cost.vt_message_seconds();
  const double local_edge = cost.machine().intra_node_edge_latency_s;
  const bool nic_contention = cost.machine().model_nic_contention;
  const double latency = cost.machine().link_latency_s;
  // Per-node NIC availability (injection serialization), when modeled.
  std::vector<double> nic_free(
      (g.num_threads + g.workers_per_node - 1) / g.workers_per_node, 0.0);

  auto start_task = [&](int th, double now) {
    // Thread becomes free: run the ready task whose inputs arrive first.
    if (ready[th].empty()) {
      busy[th] = 0;
      return;
    }
    const ReadyTask rt = ready[th].top();
    ready[th].pop();
    const double start = std::max({now, free_at[th], rt.avail});
    busy[th] = 1;
    events.push({start + g.duration[rt.task], rt.task});
  };

  auto enqueue_ready = [&](int task, double now) {
    const int th = g.thread[task];
    ready[th].push({avail[task], task});
    if (!busy[th]) start_task(th, now);
  };

  for (int x = 0; x < n; ++x) {
    if (npred[x] == 0) enqueue_ready(x, 0.0);
  }

  double makespan = 0.0;
  long long done = 0;
  double busy_time = 0.0;
  while (!events.empty()) {
    const Completion c = events.top();
    events.pop();
    const int x = c.task;
    const int th = g.thread[x];
    free_at[th] = c.time;
    makespan = std::max(makespan, c.time);
    busy_time += g.duration[x];
    ++done;
    for (std::int64_t e = soff[x]; e < soff[x + 1]; ++e) {
      const int s = succ[e];
      double arrive = c.time;
      if (succ_kind[e] != EdgeKind::Serial) {
        if (g.node_of(x) != g.node_of(s)) {
          const double msg = succ_kind[e] == EdgeKind::Vt ? vt_msg : tile_msg;
          if (nic_contention) {
            // Serialize the transfer through the source node's NIC; the
            // wire latency is paid after injection completes.
            const double xfer = msg - latency;
            double& nf = nic_free[g.node_of(x)];
            nf = std::max(nf, c.time) + xfer;
            arrive = nf + latency;
          } else {
            arrive = c.time + msg;
          }
        } else {
          arrive = c.time + local_edge;
        }
      }
      avail[s] = std::max(avail[s], arrive);
      if (--npred[s] == 0) enqueue_ready(s, c.time);
    }
    start_task(th, c.time);
  }
  require(done == n, "simulate_graph: task graph has a cycle");

  SimResult r;
  r.seconds = makespan;
  r.tasks = n;
  r.total_flops = total_flops;
  r.useful_gflops = useful_flops / makespan / 1e9;
  r.actual_gflops = total_flops / makespan / 1e9;
  r.busy_fraction = busy_time / (makespan * threads);
  return r;
}

SimResult simulate_tree_qr(int m, int n, int nb, int ib,
                           const plan::PlanConfig& cfg,
                           const MachineModel& mm, int nodes) {
  const int mt = (m + nb - 1) / nb;
  const int nt = (n + nb - 1) / nb;
  plan::ReductionPlan plan(mt, nt, cfg);
  CostModel cost(mm, m, n, nb, ib);
  TaskGraph g = build_task_graph(plan, cost, nodes);
  return simulate_graph(g, cost, plan::qr_useful_flops(m, n),
                        plan::plan_flops(plan, m, n, nb));
}

}  // namespace pulsarqr::sim
