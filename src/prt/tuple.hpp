// VDP identity tuples ("a string of integers", Section IV-A of the paper).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace pulsarqr::prt {

/// A VDP identifier: an ordered list of integers. Hashable, comparable and
/// printable; used as the key of every VDP and channel-endpoint lookup.
class Tuple {
 public:
  Tuple() = default;
  Tuple(std::initializer_list<int> vals) : vals_(vals) {}
  explicit Tuple(std::vector<int> vals) : vals_(std::move(vals)) {}

  std::size_t size() const { return vals_.size(); }
  int operator[](std::size_t i) const { return vals_[i]; }
  const std::vector<int>& values() const { return vals_; }

  bool operator==(const Tuple& o) const { return vals_ == o.vals_; }
  bool operator!=(const Tuple& o) const { return vals_ != o.vals_; }
  bool operator<(const Tuple& o) const { return vals_ < o.vals_; }

  std::size_t hash() const;
  std::string to_string() const;

 private:
  std::vector<int> vals_;
};

/// Convenience constructors mirroring prt_tuple_new2/3/4 from the paper.
inline Tuple tuple2(int a, int b) { return Tuple{a, b}; }
inline Tuple tuple3(int a, int b, int c) { return Tuple{a, b, c}; }
inline Tuple tuple4(int a, int b, int c, int d) { return Tuple{a, b, c, d}; }

struct TupleHash {
  std::size_t operator()(const Tuple& t) const { return t.hash(); }
};

}  // namespace pulsarqr::prt
