// Execution tracing: per-thread firing records used to regenerate the
// paper's Figure 7 execution traces and to compute utilization/overlap
// statistics.
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "prt/tuple.hpp"

namespace pulsarqr::prt::trace {

/// Trace color reserved for transport events (retransmissions, link
/// failures) on the proxy lanes; QR builders use 0..2 for firing classes.
inline constexpr int kColorTransport = 3;

struct Event {
  int thread = 0;       ///< global worker id (node * workers + worker)
  int color = 0;        ///< VDP class (user-assigned; QR: red/orange/blue)
  Tuple tuple;
  double t0 = 0.0;      ///< seconds since run start
  double t1 = 0.0;
};

class Recorder {
 public:
  /// `extra_lanes` appends per-proxy lanes after the worker lanes: lane
  /// num_threads+k belongs to node k's proxy thread (transport marks).
  Recorder(int num_threads, bool enabled, int extra_lanes = 0);

  bool enabled() const { return enabled_; }
  void start_clock();
  double now() const;

  /// The recorder's clock epoch as nanoseconds on the CLOCK_MONOTONIC
  /// timeline. On Linux the monotonic clock is machine-wide, so a parent
  /// process can subtract a forked child's epoch from its own and
  /// offset-align the child's events onto one merged timeline.
  std::int64_t epoch_ns() const;

  /// Append an already-timestamped event under `ev.thread`'s lane —
  /// the cross-process trace merge (events deserialized from a node
  /// process's epilogue). Bypasses `enabled_`; single-threaded use only.
  void inject(const Event& ev);

  /// Called from worker `thread` only (per-thread buffers, no locking).
  void record(int thread, int color, const Tuple& tuple, double t0, double t1);

  /// Zero-width event: a point-in-time mark (e.g. one retransmission) on
  /// `thread`'s lane. Same single-writer-per-lane contract as record().
  void record_mark(int thread, int color, const Tuple& tuple, double t);

  /// Merge per-thread buffers into one time-sorted event list.
  std::vector<Event> collect() const;

  int num_threads() const { return static_cast<int>(buffers_.size()); }

 private:
  bool enabled_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::vector<Event>> buffers_;
};

/// Summary statistics of a trace.
struct TraceStats {
  double span = 0.0;                    ///< last end - first start
  double busy = 0.0;                    ///< total busy time over all threads
  double utilization = 0.0;             ///< busy / (span * threads)
  std::vector<double> busy_by_color;    ///< indexed by color id
  /// Fraction of wall time during which at least one "panel-phase" task
  /// (colors in `overlap_colors`) runs concurrently with at least one task
  /// of another color — the Figure 7 overlap measure.
  double overlap_fraction = 0.0;
};

TraceStats compute_stats(const std::vector<Event>& events, int num_threads,
                         int overlap_color);

/// Pipelining depth: treat tuple element `key_index` of every event as a
/// stage id (the QR arrays store the panel step there), take each stage's
/// [first start, last end] window, and return the average number of
/// stages in flight over the span (sum of window lengths / span). 1.0 =
/// fully serialized stages; larger = deeper pipelining. This is the
/// robust form of Figure 7's "overlap of consecutive tree reductions":
/// unlike instantaneous task overlap it is insensitive to preemption
/// noise on oversubscribed hosts.
double pipeline_depth(const std::vector<Event>& events, int key_index = 1);

/// CSV: thread,color,tuple,t0,t1 (one row per firing).
void write_csv(std::ostream& os, const std::vector<Event>& events);

/// ASCII Gantt chart: one row per thread, `width` characters across the
/// span; each cell shows the color digit of the dominant task.
void write_ascii_gantt(std::ostream& os, const std::vector<Event>& events,
                       int num_threads, int width,
                       const std::vector<std::string>& color_names);

}  // namespace pulsarqr::prt::trace
