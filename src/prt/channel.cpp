#include "prt/channel.hpp"

namespace pulsarqr::prt {

void Channel::push(Packet p) {
  PQR_ASSERT(p.size() <= max_bytes_,
             "channel: packet exceeds the declared maximum size");
  if (destroyed_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    q_.push_back(std::move(p));
    size_.store(static_cast<int>(q_.size()), std::memory_order_release);
  }
  if (waker_ != nullptr) waker_->wake();
}

Packet Channel::pop() {
  std::lock_guard<std::mutex> lock(mu_);
  PQR_ASSERT(!q_.empty(), "channel: pop from empty channel");
  Packet p = std::move(q_.front());
  q_.pop_front();
  size_.store(static_cast<int>(q_.size()), std::memory_order_release);
  return p;
}

void Channel::set_enabled(bool e) {
  enabled_.store(e, std::memory_order_release);
  if (e && waker_ != nullptr) waker_->wake();
}

void Channel::destroy() {
  destroyed_.store(true, std::memory_order_release);
  enabled_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  q_.clear();
  size_.store(0, std::memory_order_release);
}

}  // namespace pulsarqr::prt
