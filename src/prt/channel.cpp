#include "prt/channel.hpp"

#include "prt/tsan.hpp"

namespace pulsarqr::prt {

Channel::Channel(std::size_t max_bytes, bool enabled, ChannelImpl impl,
                 int capacity)
    : max_bytes_(max_bytes), impl_(impl), capacity_(capacity),
      enabled_(enabled) {
  if (impl_ == ChannelImpl::Spsc) {
    Node* dummy = new Node;
    head_.store(dummy, std::memory_order_relaxed);
    tail_ = dummy;
    first_ = dummy;
    head_copy_ = dummy;
  }
}

Channel::~Channel() {
  if (impl_ != ChannelImpl::Spsc) return;
  // Every node ever allocated is reachable from first_ through the next
  // chain (recycling pops from the front and relinks at the tail).
  Node* n = first_;
  while (n != nullptr) {
    Node* next = n->next.load(std::memory_order_relaxed);
    delete n;
    n = next;
  }
}

Channel::Node* Channel::alloc_node() {
  // Recycle a node the consumer has moved past; nodes strictly before
  // head_ are no longer referenced by the consumer. Refresh the cached
  // head position only when the cache runs dry (Vyukov's SPSC cache).
  if (first_ != head_copy_) {
    Node* n = first_;
    first_ = n->next.load(std::memory_order_relaxed);
    PULSARQR_TSAN_ACQUIRE(n);  // node handed back by the consumer's pop
    return n;
  }
  head_copy_ = head_.load(std::memory_order_acquire);
  if (first_ != head_copy_) {
    Node* n = first_;
    first_ = n->next.load(std::memory_order_relaxed);
    PULSARQR_TSAN_ACQUIRE(n);
    return n;
  }
  return new Node;
}

void Channel::push_spsc(Packet p) {
  // No fence or handshake against destroy(): a push racing destroy() may
  // link its node after the drain walked past, but a destroyed channel
  // reports size() == 0 forever, so the straggler is unobservable — its
  // payload is released by drain_spsc() if the walk saw it, else by the
  // destructor. Everything here is plain or release-ordered.
  if (destroyed_.load(std::memory_order_acquire)) return;
  Node* n = alloc_node();
  n->p = std::move(p);
  n->next.store(nullptr, std::memory_order_relaxed);
  PULSARQR_TSAN_RELEASE(n);  // payload handoff to the consumer
  tail_->next.store(n, std::memory_order_release);
  tail_ = n;
  // Single-writer counter: plain load + store, no RMW on the hot path.
  pushed_.store(pushed_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
}

Packet Channel::pop_spsc() {
  Node* h = head_.load(std::memory_order_relaxed);  // consumer-owned
  Node* n = h->next.load(std::memory_order_acquire);
  PQR_ASSERT(n != nullptr, "channel: pop from empty channel");
  PULSARQR_TSAN_ACQUIRE(n);  // pairs with the producer's payload handoff
  Packet p = std::move(n->p);
  PULSARQR_TSAN_RELEASE(h);  // node handed back for producer recycling
  head_.store(n, std::memory_order_release);  // frees h for recycling
  popped_.store(popped_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  return p;
}

void Channel::drain_spsc() {
  // Consumer-side drop of everything queued: advance head_ over all
  // linked nodes, releasing each payload now rather than at destruction.
  Node* h = head_.load(std::memory_order_relaxed);
  long long dropped = 0;
  while (Node* n = h->next.load(std::memory_order_acquire)) {
    n->p = Packet();
    h = n;
    ++dropped;
  }
  head_.store(h, std::memory_order_release);
  popped_.store(popped_.load(std::memory_order_relaxed) + dropped,
                std::memory_order_release);
}

void Channel::push(Packet p) {
  PQR_ASSERT(p.size() <= max_bytes_,
             "channel: packet exceeds the declared maximum size");
  if (impl_ == ChannelImpl::Spsc) {
    push_spsc(std::move(p));
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    // destroyed_ is checked under the same lock that guards the queue, so
    // a push can never re-enqueue after destroy() cleared it.
    if (destroyed_.load(std::memory_order_acquire)) return;
    q_.push_back(std::move(p));
    mutex_size_.store(static_cast<int>(q_.size()), std::memory_order_release);
    pushed_.store(pushed_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_release);
  }
  if (waker_ != nullptr) waker_->wake();
}

Packet Channel::pop() {
  if (impl_ == ChannelImpl::Spsc) {
    Packet p = pop_spsc();
    if (pop_waker_ != nullptr) pop_waker_->wake();
    return p;
  }
  Packet p;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PQR_ASSERT(!q_.empty(), "channel: pop from empty channel");
    p = std::move(q_.front());
    q_.pop_front();
    mutex_size_.store(static_cast<int>(q_.size()), std::memory_order_release);
    popped_.store(popped_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_release);
  }
  if (pop_waker_ != nullptr) pop_waker_->wake();
  return p;
}

int Channel::size() const {
  if (impl_ != ChannelImpl::Spsc) {
    return mutex_size_.load(std::memory_order_acquire);
  }
  // A destroyed channel is empty forever, even if a push that raced
  // destroy() managed to link a node (see push_spsc).
  if (destroyed_.load(std::memory_order_acquire)) return 0;
  // pushed_ is loaded first: popped_ can only advance past the loaded
  // pushed_ value if more pushes happened since, so the difference only
  // ever under-reports (clamped at zero) — never phantom packets.
  const long long pushed = pushed_.load(std::memory_order_acquire);
  const long long popped = popped_.load(std::memory_order_acquire);
  const long long n = pushed - popped;
  return n > 0 ? static_cast<int>(n) : 0;
}

void Channel::set_enabled(bool e) {
  enabled_.store(e, std::memory_order_release);
  if (e && waker_ != nullptr) waker_->wake();
}

void Channel::destroy() {
  enabled_.store(false, std::memory_order_release);
  if (impl_ != ChannelImpl::Spsc) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      destroyed_.store(true, std::memory_order_release);
      popped_.store(popped_.load(std::memory_order_relaxed) +
                        static_cast<long long>(q_.size()),
                    std::memory_order_release);
      q_.clear();
      mutex_size_.store(0, std::memory_order_release);
    }
    if (pop_waker_ != nullptr) pop_waker_->wake();
    return;
  }
  // After this store, size() pins to zero and later pushes drop their
  // packet on entry. One already-in-flight push may still link a node the
  // drain below misses; it stays in the list, unobservable, until the
  // destructor frees it. Nothing resurfaces on a destroyed channel and no
  // per-push fence is needed to guarantee it.
  destroyed_.store(true, std::memory_order_release);
  drain_spsc();
  // A destroyed channel reports size() == 0 forever, so any producer
  // stalled on has_room() can proceed.
  if (pop_waker_ != nullptr) pop_waker_->wake();
}

}  // namespace pulsarqr::prt
