#include "prt/verify.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <sstream>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "prt/packet.hpp"
#include "prt/tags.hpp"
#include "prt/transport.hpp"

namespace pulsarqr::prt::verify {
namespace {

using Comm = net::MailboxComm;
using net::Message;
using net::Reliable;

/// Application tags used by the model: frame i carries kBaseTag + i, so
/// the in-order assertion is a pure tag check on the delivery stream.
constexpr int kBaseTag = 100;

struct Action {
  enum Kind : std::uint8_t { kSend, kDeliver, kDrop, kDup, kTick };
  Kind kind = kSend;
  std::uint8_t dir = 0;  ///< 0: data net (toward rank 1), 1: ack net
  std::uint8_t idx = 0;  ///< position in the in-flight queue

  std::string to_string() const {
    std::ostringstream os;
    switch (kind) {
      case kSend: os << "send"; break;
      case kDeliver: os << "deliver"; break;
      case kDrop: os << "drop"; break;
      case kDup: os << "dup"; break;
      case kTick: os << "tick"; break;
    }
    if (kind == kDeliver || kind == kDrop || kind == kDup) {
      os << (dir == 0 ? "(data@" : "(ack@") << static_cast<int>(idx) << ')';
    }
    return os.str();
  }
};

std::string render_path(const std::vector<Action>& path) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) os << "; ";
    os << path[i].to_string();
  }
  os << ']';
  return os.str();
}

/// One execution prefix's live state: a real two-rank Comm with a
/// Reliable endpoint on each side, plus the two adversarially scheduled
/// in-flight queues. Non-copyable (Comm owns mutexes); the checker
/// rebuilds a World by replaying its action path from the initial state.
class World {
 public:
  explicit World(const ReliableModelOptions& opt)
      : opt_(opt),
        comm_(2),
        a_(comm_, 0, params()),
        b_(comm_, 1, params()),
        base_(std::chrono::steady_clock::now()) {}

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  bool violated() const { return !violation_.empty(); }
  const std::string& violation() const { return violation_; }
  int delivered() const { return delivered_; }

  /// Every action applicable in this state. A violated world enables
  /// nothing — the execution stops at the first broken assertion.
  void enabled(std::vector<Action>& out) const {
    out.clear();
    if (violated()) return;
    if (sends_ < opt_.window) out.push_back({Action::kSend, 0, 0});
    for (std::uint8_t d = 0; d < 2; ++d) {
      for (std::size_t i = 0; i < net_[d].size(); ++i) {
        const auto idx = static_cast<std::uint8_t>(i);
        out.push_back({Action::kDeliver, d, idx});
        if (faults_ < opt_.max_faults) {
          out.push_back({Action::kDrop, d, idx});
          out.push_back({Action::kDup, d, idx});
        }
      }
    }
    // Timeout recovery: one tick = "every unacked frame times out at
    // once" (the clock jumps past all backoff deadlines). Enabled only
    // when the network is empty — a retransmission racing an in-flight
    // original is observationally a duplicate, which the kDup fault
    // already explores — and budgeted so recovery terminates.
    if (net_[0].empty() && net_[1].empty() && ticks_ < tick_cap() &&
        unacked_frames()) {
      out.push_back({Action::kTick, 0, 0});
    }
  }

  void apply(const Action& a) {
    switch (a.kind) {
      case Action::kSend: {
        Packet p = Packet::make(16, sends_);
        p.doubles()[0] = static_cast<double>(sends_);
        p.doubles()[1] = static_cast<double>(1000 + sends_);
        a_.send(1, kBaseTag + sends_, p, sends_);
        ++sends_;
        drain_mailbox(1);
        break;
      }
      case Action::kDeliver: {
        Message m = take(a);
        std::deque<Message> dq;
        if (a.dir == 0) {
          b_.on_receive(std::move(m), dq);
          for (Message& d : dq) record_delivery(d);
          b_.flush_acks();
          drain_mailbox(0);
        } else {
          a_.on_receive(std::move(m), dq);
          if (!dq.empty()) fail("ack channel delivered data to the sender");
        }
        break;
      }
      case Action::kDrop:
        take(a);
        ++faults_;
        break;
      case Action::kDup:
        net_[a.dir].push_back(net_[a.dir][a.idx]);
        ++faults_;
        break;
      case Action::kTick: {
        ++ticks_;
        // Each tick jumps a day further: monotone, and past every backoff
        // deadline any frame could have accumulated.
        const auto now = base_ + std::chrono::hours(24) * ticks_;
        if (!a_.poll(now)) {
          fail("sender reported link failure (retry budget exhausted)");
        }
        drain_mailbox(1);
        break;
      }
    }
  }

  /// Canonical state rendering for deduplication. The in-flight queues
  /// are rendered as sorted multisets: delivery order is adversarial, so
  /// queue permutations are behaviorally identical.
  std::string fingerprint() const {
    std::ostringstream os;
    os << sends_ << '|' << delivered_ << '|' << faults_ << '|' << ticks_
       << '|' << a_.state_fingerprint() << '|' << b_.state_fingerprint();
    for (int d = 0; d < 2; ++d) {
      std::vector<std::string> ms;
      ms.reserve(net_[d].size());
      for (const Message& m : net_[d]) {
        std::ostringstream one;
        one << m.tag << '/' << m.seq << '/' << m.ack << '/'
            << (m.is_ack ? 1 : 0);
        ms.push_back(one.str());
      }
      std::sort(ms.begin(), ms.end());
      os << "|n" << d << ':';
      for (const std::string& s : ms) os << s << ';';
    }
    return os.str();
  }

 private:
  static Reliable::Params params() {
    Reliable::Params p;
    p.rto_us = 1000;
    p.backoff = 2.0;
    // Never exhausted within the tick budget; exhaustion would otherwise
    // masquerade as the link-failure violation below.
    p.max_retries = 1000;
    return p;
  }

  int tick_cap() const {
    return opt_.max_ticks >= 0 ? opt_.max_ticks : opt_.max_faults + 2;
  }

  bool unacked_frames() const {
    for (const net::LinkGap& g : a_.gaps()) {
      if (g.src == 0 && g.unacked > 0) return true;
    }
    return false;
  }

  void fail(const std::string& what) {
    if (violation_.empty()) violation_ = what;
  }

  Message take(const Action& a) {
    Message m = std::move(net_[a.dir][a.idx]);
    net_[a.dir].erase(net_[a.dir].begin() + a.idx);
    return m;
  }

  /// Move everything the endpoints just isend'ed out of the rank's
  /// mailbox into the corresponding adversarial in-flight queue.
  void drain_mailbox(int rank) {
    std::deque<Message> got = comm_.drain(rank);
    auto& net = net_[rank == 1 ? 0 : 1];
    for (Message& m : got) net.push_back(std::move(m));
  }

  void record_delivery(const Message& m) {
    std::ostringstream os;
    if (m.tag != kBaseTag + delivered_) {
      os << "delivery #" << delivered_ << " carried tag " << m.tag
         << ", expected " << (kBaseTag + delivered_)
         << " (out-of-order or duplicate delivery)";
      fail(os.str());
      return;
    }
    if (m.meta != delivered_) {
      os << "delivery #" << delivered_ << " carried meta " << m.meta;
      fail(os.str());
      return;
    }
    if (m.payload.size() != 16 ||
        m.payload.doubles()[0] != static_cast<double>(delivered_) ||
        m.payload.doubles()[1] != static_cast<double>(1000 + delivered_)) {
      os << "delivery #" << delivered_ << " payload corrupted";
      fail(os.str());
      return;
    }
    ++delivered_;
  }

  const ReliableModelOptions& opt_;
  Comm comm_;
  Reliable a_;  ///< sender endpoint, rank 0
  Reliable b_;  ///< receiver endpoint, rank 1
  std::chrono::steady_clock::time_point base_;
  std::vector<Message> net_[2];  ///< [0] toward rank 1, [1] toward rank 0
  int sends_ = 0;
  int delivered_ = 0;
  int faults_ = 0;
  int ticks_ = 0;
  std::string violation_;
};

}  // namespace

std::string ReliableModelResult::to_string() const {
  std::ostringstream os;
  os << "reliable model: " << states << " states, " << transitions
     << " transitions, " << executions << " complete executions, depth "
     << depth;
  if (truncated) os << " [TRUNCATED at max_states]";
  if (violations.empty()) {
    os << "\n  all assertions held: exactly-once in-order delivery, no "
          "livelock";
  } else {
    for (const std::string& v : violations) os << "\n  VIOLATION: " << v;
  }
  return os.str();
}

ReliableModelResult check_reliable(const ReliableModelOptions& opt) {
  ReliableModelResult res;
  // Parent-link tree of actions: Worlds are non-copyable, so each state
  // is reconstructed by replaying its root path. With pop-time
  // deduplication each distinct state replays once (plus once per
  // redundant edge into it).
  struct Node {
    int parent;
    Action a;
  };
  std::vector<Node> tree;
  std::vector<int> stack;  ///< node ids; -1 = root (empty path)
  std::unordered_set<std::string> seen;
  constexpr std::size_t kMaxViolations = 16;

  auto path_of = [&](int node) {
    std::vector<Action> p;
    for (int n = node; n >= 0; n = tree[n].parent) p.push_back(tree[n].a);
    std::reverse(p.begin(), p.end());
    return p;
  };
  auto record = [&](const std::vector<Action>& path, const std::string& what) {
    if (res.violations.size() < kMaxViolations) {
      res.violations.push_back(what + " after " + render_path(path));
    }
  };

  stack.push_back(-1);
  std::vector<Action> acts;
  while (!stack.empty() && !res.truncated &&
         res.violations.size() < kMaxViolations) {
    const int node = stack.back();
    stack.pop_back();
    const std::vector<Action> path = path_of(node);

    World w(opt);
    for (const Action& a : path) {
      w.apply(a);
      if (w.violated()) break;
    }
    if (w.violated()) {
      record(path, w.violation());
      continue;
    }
    if (!seen.insert(w.fingerprint()).second) continue;
    ++res.states;
    if (res.states > opt.max_states) {
      res.truncated = true;
      break;
    }
    if (static_cast<int>(path.size()) > res.depth) {
      res.depth = static_cast<int>(path.size());
    }
    if (static_cast<int>(path.size()) > opt.max_depth) {
      record(path, "livelock guard: execution exceeds the depth bound");
      continue;
    }
    w.enabled(acts);
    if (acts.empty()) {
      ++res.executions;
      if (w.delivered() < opt.window) {
        std::ostringstream os;
        os << "quiescent with " << w.delivered() << '/' << opt.window
           << " frames delivered (lost data)";
        record(path, os.str());
      }
      continue;
    }
    for (const Action& a : acts) {
      tree.push_back({node, a});
      stack.push_back(static_cast<int>(tree.size()) - 1);
      ++res.transitions;
    }
  }
  return res;
}

}  // namespace pulsarqr::prt::verify
