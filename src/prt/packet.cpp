#include "prt/packet.hpp"

#include <new>

namespace pulsarqr::prt {

namespace {
std::shared_ptr<std::byte[]> alloc_aligned(std::size_t bytes) {
  // Over-align to 64 bytes so double payloads sit on cache lines.
  auto* raw = static_cast<std::byte*>(
      ::operator new[](bytes > 0 ? bytes : 1, std::align_val_t(64)));
  return std::shared_ptr<std::byte[]>(
      raw, [](std::byte* p) { ::operator delete[](p, std::align_val_t(64)); });
}
}  // namespace

Packet Packet::make(std::size_t bytes, int meta) {
  return Packet(alloc_aligned(bytes), bytes, meta);
}

Packet Packet::clone() const {
  Packet p = make(size_, meta_);
  if (size_ > 0) std::memcpy(p.data_.get(), data_.get(), size_);
  return p;
}

}  // namespace pulsarqr::prt
