#include "prt/packet.hpp"

#include "prt/packet_pool.hpp"

namespace pulsarqr::prt {

Packet Packet::make(std::size_t bytes, int meta) {
  return Packet(PacketPool::acquire(bytes), bytes, meta);
}

Packet Packet::clone() const {
  Packet p = make(size_, meta_);
  if (size_ > 0) std::memcpy(p.data_.get(), data_.get(), size_);
  return p;
}

}  // namespace pulsarqr::prt
