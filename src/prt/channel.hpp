// Channels: static unidirectional FIFO connections between two VDPs
// (Section IV-A). A channel object lives with its destination VDP; the
// source holds a reference that is either a direct pointer (intra-node) or
// a (node, tag) address served by the proxy (inter-node).
#pragma once

#include <atomic>
#include <deque>
#include <mutex>

#include "prt/packet.hpp"
#include "prt/tuple.hpp"

namespace pulsarqr::prt {

/// Wakes the worker thread that owns a VDP when new input arrives or a
/// channel is enabled. Implemented by the runtime's worker loop.
class Waker {
 public:
  virtual ~Waker() = default;
  virtual void wake() = 0;
};

class Channel {
 public:
  Channel(std::size_t max_bytes, bool enabled)
      : max_bytes_(max_bytes), enabled_(enabled) {}

  /// Producer side (any thread, or the proxy). Wakes the owner if set.
  void push(Packet p);

  /// Consumer side (owner VDP's thread only).
  Packet pop();

  /// Number of queued packets (approximate under concurrency; exact for
  /// the owning thread's ready check once it holds the packet).
  int size() const { return size_.load(std::memory_order_acquire); }

  bool enabled() const { return enabled_.load(std::memory_order_acquire); }
  void set_enabled(bool e);

  /// A disabled-and-cleared channel; packets pushed after destruction are
  /// dropped (mirrors prt's channel-destroy option).
  void destroy();
  bool destroyed() const { return destroyed_.load(std::memory_order_acquire); }

  std::size_t max_bytes() const { return max_bytes_; }

  void set_waker(Waker* w) { waker_ = w; }

 private:
  std::size_t max_bytes_;
  std::atomic<bool> enabled_;
  std::atomic<bool> destroyed_{false};
  std::atomic<int> size_{0};
  Waker* waker_ = nullptr;
  mutable std::mutex mu_;
  std::deque<Packet> q_;
};

}  // namespace pulsarqr::prt
