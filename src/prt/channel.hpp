// Channels: static unidirectional FIFO connections between two VDPs
// (Section IV-A). A channel object lives with its destination VDP; the
// source holds a reference that is either a direct pointer (intra-node) or
// a (node, tag) address served by the proxy (inter-node).
//
// Concurrency contract (enforced statically by prt::GraphCheck): every
// channel has exactly ONE producer — either the source VDP (whose firings
// are serialized by the worker binding or the work-stealing claim flag) or
// the destination node's proxy thread — and exactly ONE consumer, the
// destination VDP. That single-producer/single-consumer invariant is what
// legitimizes the default lock-free implementation below.
#pragma once

#include <atomic>
#include <deque>
#include <mutex>

#include "prt/packet.hpp"
#include "prt/tuple.hpp"

namespace pulsarqr::prt {

/// Wakes the worker thread that owns a VDP when new input arrives or a
/// channel is enabled. Implemented by the runtime's worker loop.
class Waker {
 public:
  virtual ~Waker() = default;
  virtual void wake() = 0;
};

/// Queue implementation behind a Channel.
///   Spsc  — lock-free single-producer/single-consumer linked-node queue
///           with a producer-side node cache (Vyukov style); the default.
///   Mutex — the legacy mutex-protected deque; kept as a fallback and as
///           the baseline for the channel microbenchmark.
enum class ChannelImpl { Spsc, Mutex };

class Channel {
 public:
  /// `capacity` bounds the number of RESIDENT packets (0 = unbounded).
  /// The bound is enforced cooperatively: the producer's firing rule
  /// (Vdp::ready) refuses to fire while a bounded local output channel is
  /// at capacity, and pop() wakes the producer again once space frees.
  /// The queue itself never blocks or drops — a push beyond capacity
  /// still succeeds (the proxy path and multi-packet firings may overshoot
  /// by a burst), which is why GraphCheck's flow analysis, not the queue,
  /// is the authority on whether a declared bound can deadlock the graph.
  Channel(std::size_t max_bytes, bool enabled,
          ChannelImpl impl = ChannelImpl::Spsc, int capacity = 0);
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Producer side (the single producer thread, or the proxy). Wakes the
  /// owner if set. Pushes to a destroyed channel are dropped.
  void push(Packet p);

  /// Consumer side (owner VDP's thread only). The channel must be
  /// non-empty, i.e. size() returned > 0 on this thread.
  Packet pop();

  /// Number of queued packets (approximate under concurrency; exact for
  /// the owning thread's ready check once it holds the packet).
  int size() const;

  /// Lifetime traffic counters (monotone; approximate under concurrency).
  /// Used by stuck-VDP diagnostics to distinguish a channel that never saw
  /// a packet from one whose traffic stopped mid-stream.
  long long pushed() const { return pushed_.load(std::memory_order_acquire); }
  long long popped() const { return popped_.load(std::memory_order_acquire); }

  bool enabled() const { return enabled_.load(std::memory_order_acquire); }
  void set_enabled(bool e);

  /// A disabled-and-cleared channel; packets pushed after destruction are
  /// dropped (mirrors prt's channel-destroy option). Consumer-side
  /// operation: must not race with pop() (the runtime only calls it from
  /// the destination VDP's firing code). A push racing with destroy()
  /// either observes the destroyed flag and drops the packet itself, or
  /// its node is drained here or held invisibly (size() pins to zero)
  /// until the destructor — a packet never resurfaces on a destroyed
  /// channel, and the push fast path needs no fence to guarantee it.
  void destroy();
  bool destroyed() const { return destroyed_.load(std::memory_order_acquire); }

  std::size_t max_bytes() const { return max_bytes_; }
  ChannelImpl impl() const { return impl_; }

  /// Declared resident-packet bound; 0 means unbounded.
  int capacity() const { return capacity_; }
  bool bounded() const { return capacity_ > 0; }
  /// Backpressure predicate for the producer's firing rule: true while a
  /// bounded channel has room for another packet. The producer reads
  /// size() across threads, which can only over-estimate occupancy (a
  /// stale popped_), so a false "no room" is transient and healed by the
  /// pop-side waker — the bound is never under-enforced from staleness.
  bool has_room() const { return capacity_ == 0 || size() < capacity_; }

  void set_waker(Waker* w) { waker_ = w; }
  /// Producer-side waker, fired by pop() (and destroy()) when space frees
  /// on a bounded channel so a producer stalled on has_room() re-scans.
  /// Wired before any thread starts, like waker_.
  void set_pop_waker(Waker* w) { pop_waker_ = w; }

 private:
  struct Node {
    std::atomic<Node*> next{nullptr};
    Packet p;
  };

  Node* alloc_node();
  void push_spsc(Packet p);
  Packet pop_spsc();
  void drain_spsc();

  std::size_t max_bytes_;
  ChannelImpl impl_;
  int capacity_;
  std::atomic<bool> enabled_;
  std::atomic<bool> destroyed_{false};
  Waker* waker_ = nullptr;
  Waker* pop_waker_ = nullptr;

  // ---- SPSC state. The queue is a singly linked list from first_ to
  // tail_; [first_, head_) are consumed nodes awaiting recycling, head_ is
  // the consumer's dummy, (head_, tail_] hold live packets.

  // Consumer-owned half.
  alignas(64) std::atomic<Node*> head_{nullptr};
  std::atomic<long long> popped_{0};  ///< single writer: the consumer

  // Producer-owned half.
  alignas(64) Node* tail_ = nullptr;
  Node* first_ = nullptr;      ///< oldest node not yet recycled
  Node* head_copy_ = nullptr;  ///< producer's cached copy of head_
  std::atomic<long long> pushed_{0};  ///< single writer: the producer

  // ---- Mutex-impl state. The Mutex impl shares the pushed_/popped_
  // counters above; its updates are serialized by mu_, preserving the
  // single-writer store discipline.
  mutable std::mutex mu_;
  std::deque<Packet> q_;
  std::atomic<int> mutex_size_{0};
};

}  // namespace pulsarqr::prt
