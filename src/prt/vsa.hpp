// Virtual Systolic Array + the PULSAR Runtime (PRT) execution engine
// (Section IV of the paper).
//
// The VSA is built once (VDPs + channels + an optional feed of initial
// packets), then run() maps VDPs onto virtual nodes and worker threads,
// spawns one proxy thread per node for inter-node traffic (served by the
// prt::net loopback transport — the MPI substitution), and executes until
// every VDP's counter reaches zero.
#pragma once

#include <any>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "prt/trace.hpp"
#include "prt/transport.hpp"
#include "prt/vdp.hpp"

namespace pulsarqr::prt {

namespace net {
class SocketComm;
}

/// Lazy fires a ready VDP once then moves on (encourages lookahead; the
/// paper's best scheme for tree QR); Aggressive re-fires while ready.
enum class Scheduling { Lazy, Aggressive };

/// Which transport backend carries inter-node traffic (paper §IV-B).
/// InProcess: every node is a thread group in this process and frames
/// move through per-rank mailboxes (net::MailboxComm). Socket: run()
/// forks one real OS process per node and frames cross Unix-domain
/// stream sockets (net::SocketComm) — real address-space isolation,
/// selectable per run with no change to the VSA graph.
enum class Transport { InProcess, Socket };

class Vsa {
 public:
  struct Config {
    int nodes = 1;
    int workers_per_node = 2;
    Scheduling scheduling = Scheduling::Lazy;
    /// Alternative execution principle (Section II of the paper invites
    /// comparing runtimes): ignore the static VDP->thread binding within
    /// each node and let the node's workers fire any ready VDP from a
    /// shared pool. The VDP->node placement (and hence all inter-node
    /// channels) is unchanged — stealing cannot cross address spaces.
    bool work_stealing = false;
    bool trace = false;
    /// Abort the run (with a stuck-VDP diagnostic) if no VDP fires for
    /// this long. 0 disables the watchdog.
    double watchdog_seconds = 30.0;
    /// Microseconds an idle worker spins on its atomic wake flag before
    /// parking on the condition variable (adaptive spin-then-park). The
    /// spin keeps fine-grained small-nb pipelines out of the kernel; the
    /// park keeps idle workers off the CPU. 0 parks immediately; negative
    /// selects automatically — 50 when the machine has a hardware thread
    /// per worker, 0 when oversubscribed (spinning on a shared core only
    /// steals time from the worker holding the packet).
    int spin_us = -1;
    /// Queue implementation behind every channel. The lock-free SPSC
    /// default is legitimized by the GraphCheck-enforced one-producer-per-
    /// input-slot invariant (the producer is either the source VDP's
    /// serialized firings or the node proxy — never both).
    ChannelImpl channel_impl = ChannelImpl::Spsc;
    /// Run prt::GraphCheck over the constructed graph at the top of
    /// run() and throw (before spawning any thread) if it finds an
    /// error-severity diagnostic — turning wiring and packet-balance bugs
    /// from watchdog timeouts into immediate, named failures. Opt out for
    /// graphs that intentionally violate the static model (e.g. VDPs
    /// whose packet flow cannot be declared).
    bool graph_check = true;
    /// Layer the sequence-numbered ack/retransmit protocol over the
    /// inter-node transport (per-(src,dst) monotone sequence numbers,
    /// cumulative acks piggybacked on traffic, retransmit with exponential
    /// backoff, duplicate suppression). Off by default: the fast path is
    /// untouched when disabled — proxies send raw frames exactly as
    /// before. Required for correct completion under a lossy fault_plan.
    bool reliable_transport = false;
    /// Deterministic fault injection applied to every inter-node frame
    /// (including protocol acks and retransmissions). A default
    /// (all-zero) plan leaves the transport untouched.
    net::FaultPlan fault_plan;
    /// Initial retransmit timeout of the reliable protocol; doubles per
    /// retry (exponential backoff).
    int retransmit_timeout_us = 2000;
    /// Retransmissions per frame before the link is declared failed and
    /// the run torn down with a RunError.
    int max_retransmits = 10;
    /// Per-destination egress coalescing: each proxy stages outbound
    /// frames per destination rank and ships them as one aggregate wire
    /// message of up to this many bytes (one fault-plan decision and, under
    /// reliable_transport, one sequence number per aggregate). Frames too
    /// large to ever fit are sent directly, after flushing the stage to
    /// preserve per-destination order. 0 disables coalescing (every frame
    /// is its own wire message, as before).
    std::size_t coalesce_bytes = 64 * 1024;
    /// Deadline for a non-full staged aggregate: a proxy flushes any
    /// destination whose oldest staged frame has waited this long.
    int coalesce_flush_us = 50;
    /// Transport backend for inter-node traffic (see prt::Transport).
    /// Socket mode forks one process per node at run(); for results to
    /// reach the parent it needs process hooks (set_process_hooks) or
    /// side effects written to files. With trace on, each child ships
    /// its events home in the run epilogue and the parent merges them
    /// into one clock-aligned timeline.
    Transport transport = Transport::InProcess;
    /// Crash recovery (Socket transport only; requires
    /// reliable_transport). How many dead node processes the parent may
    /// replace over the whole run: a dead child (EOF, SIGKILL, heartbeat
    /// timeout) is respawned from the pristine pre-fork image with a
    /// bumped incarnation epoch, survivors replay their retained frame
    /// history to it, and it re-fires its VDPs from scratch. 0 (the
    /// default) keeps today's behavior — any child death fails the run
    /// with a structured RunError naming the dead rank.
    int max_respawns = 0;
    /// Per-destination byte budget of acked frames each survivor retains
    /// for crash replay (only when max_respawns > 0). An eviction that a
    /// later replay would have needed fails the run instead of silently
    /// losing frames.
    std::size_t replay_log_bytes = 64 * 1024 * 1024;
    /// Parent-side liveness deadline: a child that sends neither a
    /// heartbeat nor a control byte for this long is declared dead
    /// (SIGKILLed and, budget permitting, respawned). Also bounds every
    /// parent control-plane read — a child hung before its first
    /// heartbeat can no longer stall the parent forever.
    double heartbeat_timeout_seconds = 10.0;
  };

  struct RunStats {
    double seconds = 0.0;
    long long fires = 0;
    /// Application frames crossing node boundaries (counted by the sending
    /// proxies) and their payload bytes — independent of how the transport
    /// packages them on the wire.
    long long remote_messages = 0;
    long long remote_bytes = 0;
    /// What actually hit the wire: aggregates count once however many
    /// frames they carry, and wire_bytes includes framing headers. With
    /// coalescing off, wire_messages == remote_messages (+ protocol acks).
    /// wire_offered counts isend calls accepted from callers BEFORE the
    /// fault plan decided their fate; under chaos the accounting
    /// invariant wire_messages == wire_offered - faults.dropped +
    /// faults.duplicated holds (absent cancels).
    long long wire_offered = 0;
    long long wire_messages = 0;
    long long wire_bytes = 0;
    /// Distinct (src, dst, tag) fault streams tracked by the oracle under
    /// the current plan — bounded by the run's topology and reset per
    /// plan install (debug visibility for the stream-counter map).
    long long fault_streams = 0;
    long long coalesced_frames = 0;  ///< frames shipped inside aggregates
    long long aggregates_sent = 0;   ///< aggregate wire messages
    // Packet-pool health for this run (steady state: misses stop growing).
    long long pool_hits = 0;
    long long pool_misses = 0;
    int leftover_packets = 0;
    std::vector<double> busy_per_thread;
    /// Seconds each node's proxy spent doing transport work (sending,
    /// draining, splitting aggregates) — the runtime's communication cost.
    std::vector<double> proxy_busy_per_node;
    // Transport health (all zero on a clean, fault-free run).
    net::FaultCounters faults;           ///< injected by Config::fault_plan
    long long retransmits = 0;           ///< frames re-sent by the protocol
    long long duplicates_suppressed = 0; ///< frames deduplicated on receive
    long long acks_sent = 0;             ///< pure (non-piggybacked) acks
    // Crash recovery (all zero on a run with no process deaths).
    long long respawns = 0;          ///< node processes replaced mid-run
    long long replayed_frames = 0;   ///< frames survivors requeued for replay
    long long refired_fires = 0;     ///< VDP firings of respawned incarnations
  };

  /// Structured diagnosis attached to a RunError: what was stuck and why,
  /// in machine-readable form (the what() string renders the same data).
  struct RunReport {
    std::string reason;  ///< "watchdog", "transport" or "process"
    std::vector<std::string> stuck_vdps;  ///< tuple/counter/input-slot lines
    int vdps_alive = 0;
    std::vector<net::LinkGap> links;  ///< in-flight sequence gaps per link
    net::FaultCounters faults;
    long long retransmits = 0;
    /// Socket transport: ranks whose process died without a clean exit
    /// (and, with recovery off or exhausted, killed the run).
    std::vector<int> dead_ranks;
    std::string to_string() const;
  };

  /// Thrown by run() on watchdog expiry or reliable-transport failure
  /// AFTER workers and proxies have been joined — the process is left
  /// clean (no detached threads, no leaked packets), and report() names
  /// the stuck VDPs, the affected (src,dst,tag) streams, and the injected
  /// fault totals.
  class RunError : public Error {
   public:
    RunError(const std::string& header, RunReport report)
        : Error(header + report.to_string()), report_(std::move(report)) {}
    const RunReport& report() const { return report_; }

   private:
    RunReport report_;
  };

  explicit Vsa(Config cfg);
  ~Vsa();

  Vsa(const Vsa&) = delete;
  Vsa& operator=(const Vsa&) = delete;

  const Config& config() const { return cfg_; }
  int total_threads() const { return cfg_.nodes * cfg_.workers_per_node; }

  /// prt_vdp_new + prt_vsa_vdp_insert: register a VDP. `color` classifies
  /// firings for tracing (QR: 0 = flat factor, 1 = update, 2 = binary).
  /// `outputs_per_fire` is a packet-balance hint for GraphCheck: how many
  /// packets each connected output slot emits per firing (uniform across
  /// slots; use declare_output_packets for per-slot totals).
  Vdp& add_vdp(Tuple tuple, int counter, VdpFn fn, int num_inputs,
               int num_outputs, int color = 0, int outputs_per_fire = 1);

  /// GraphCheck balance declarations for VDPs whose packet flow is not
  /// one-per-firing: the total number of packets the VDP will push on
  /// `out_slot` (resp. pop from `in_slot`) over its whole lifetime.
  void declare_output_packets(const Tuple& vdp, int out_slot,
                              long long total_packets);
  void declare_input_packets(const Tuple& vdp, int in_slot,
                             long long total_packets);

  /// prt_channel_new + channel_insert on both endpoints: connect output
  /// slot `out_slot` of `src` to input slot `in_slot` of `dst`. Channels
  /// may start disabled and be enabled from VDP code at runtime.
  ///
  /// `capacity` bounds the channel's resident packets (0 = unbounded, the
  /// default). A bounded intra-node channel backpressures its producer:
  /// the producer's firing rule stalls while the channel is full and
  /// resumes when the consumer pops. GraphCheck's flow analysis verifies
  /// statically that declared bounds cannot deadlock the graph (and that
  /// feeds never prefill past them); an inter-node bound is analyzed
  /// statically but not enforced at runtime (the proxy decouples the
  /// endpoints).
  void connect(const Tuple& src, int out_slot, const Tuple& dst, int in_slot,
               std::size_t max_bytes, bool enabled = true, int capacity = 0);

  /// A source channel: an input channel with no producer VDP, prefilled
  /// with `initial` packets before the run starts. `capacity` as in
  /// connect(); a feed larger than its own bound is a GraphCheck error.
  void feed(const Tuple& dst, int in_slot, std::size_t max_bytes,
            std::vector<Packet> initial, bool enabled = true,
            int capacity = 0);

  /// Explicit VDP -> global worker thread mapping (thread / workers_per_node
  /// is the node). Unmapped VDPs fall back to the default mapping.
  void map_vdp(const Tuple& tuple, int global_thread);

  /// Default mapping function; if unset, VDPs are assigned round-robin in
  /// creation order.
  void set_default_mapping(std::function<int(const Tuple&)> fn);

  /// Read-only global parameters (paper: "read-only global parameters").
  template <class T>
  void set_global(std::shared_ptr<T> g) {
    global_ = std::move(g);
  }

  template <class T>
  T& global() const {
    auto p = std::any_cast<std::shared_ptr<T>>(&global_);
    PQR_ASSERT(p != nullptr, "global: type mismatch or not set");
    return **p;
  }

  /// Socket-transport result plumbing. Each node process runs with a
  /// copy-on-write copy of the whole application state; whatever its
  /// VDPs computed dies with it unless shipped back. `collect` runs in
  /// each child after a clean local finish and returns an opaque blob
  /// (the child's contribution — e.g. serialized result tiles); `merge`
  /// runs in the parent once per child, with the child's rank and blob.
  /// Unused (and unnecessary) under the in-process transport.
  void set_process_hooks(std::function<Packet()> collect,
                         std::function<void(int, const Packet&)> merge) {
    collect_hook_ = std::move(collect);
    merge_hook_ = std::move(merge);
  }

  /// Execute the VSA to completion. Throws pulsarqr::Error on watchdog
  /// expiry (deadlocked VSA) or invalid wiring.
  RunStats run();

  /// Available after run() when Config::trace is set.
  const trace::Recorder& recorder() const { return *recorder_; }

  /// Internal: route a packet from a firing VDP (used by VdpContext).
  void push_from(VdpContext& ctx, int slot, Packet p);

  struct Worker;  ///< implementation detail (vsa.cpp)
  struct Node;    ///< implementation detail (vsa.cpp)

 private:
  friend class GraphCheck;  ///< read-only static analysis of the graph

  void validate_and_wire();
  void worker_loop(Worker& w);
  void worker_loop_stealing(Worker& w, Node& n);
  void proxy_loop(Node& n);
  void fire(Vdp& v, Worker& w);
  /// `only_node` >= 0 restricts the stuck-VDP census to that node — a
  /// forked node process reports only what it was responsible for.
  RunReport make_run_report(int only_node = -1) const;
  /// Socket transport: fork one process per node, run the control plane
  /// (heartbeats, death detection, respawn + rejoin orchestration), merge
  /// child epilogues into RunStats (or re-throw a child failure).
  RunStats run_socket();
  /// Body of one forked node process; never returns (always _exit).
  /// `incarnation` is 0 for the original fork, bumped per respawn;
  /// `peer_epochs` the incarnation table of every rank at fork time.
  [[noreturn]] void child_main(int rank, std::vector<int> peer_fds,
                               int control_fd, std::uint32_t incarnation,
                               std::vector<std::uint32_t> peer_epochs);
  /// First-failure path (called from a proxy): mark the run failed and
  /// wake every worker and proxy so the shutdown join in run() completes.
  void cancel_run_from_transport();

  Config cfg_;
  std::unordered_map<Tuple, std::unique_ptr<Vdp>, TupleHash> vdps_;
  std::vector<Vdp*> creation_order_;

  struct PendingEdge {
    Tuple src;
    int out_slot;
    Tuple dst;
    int in_slot;
    std::size_t max_bytes;
    bool enabled;
    int capacity;  ///< resident-packet bound; 0 = unbounded
  };
  struct PendingFeed {
    Tuple dst;
    int in_slot;
    std::size_t max_bytes;
    std::vector<Packet> initial;
    bool enabled;
    int capacity;  ///< resident-packet bound; 0 = unbounded
  };
  std::vector<PendingEdge> edges_;
  std::vector<PendingFeed> feeds_;
  std::unordered_map<Tuple, int, TupleHash> explicit_map_;
  std::function<int(const Tuple&)> default_map_;
  std::any global_;

  // Runtime state (valid during run()).
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Waker>> pool_wakers_;
  std::unique_ptr<net::Comm> comm_;
  std::unique_ptr<trace::Recorder> recorder_;
  std::atomic<long long> fires_{0};
  std::atomic<int> workers_running_{0};
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> done_{false};
  bool ran_ = false;
  int spin_us_ = 0;  ///< Config::spin_us with the auto default resolved

  // Transport-health state, published by proxies (Reliable endpoints are
  // proxy-local; gaps and totals are deposited here at detection/exit so
  // run() can build the RunReport after joining them).
  std::atomic<bool> transport_failed_{false};
  // Egress accounting, published by proxies at exit: application frames
  // and payload bytes sent, and how many went inside aggregates.
  std::atomic<long long> total_remote_msgs_{0};
  std::atomic<long long> total_remote_bytes_{0};
  std::atomic<long long> total_coalesced_{0};
  std::atomic<long long> total_aggregates_{0};
  std::atomic<long long> total_retransmits_{0};
  std::atomic<long long> total_dups_suppressed_{0};
  std::atomic<long long> total_acks_sent_{0};
  /// Frames this process requeued from the replay log when a crashed
  /// peer's replacement rejoined (published by the proxy at exit).
  std::atomic<long long> total_replayed_{0};
  mutable std::mutex fail_mu_;
  std::vector<net::LinkGap> link_gaps_;  ///< guarded by fail_mu_

  /// Non-owning view of comm_ as the socket backend. Set only inside
  /// socket node processes (child_main) so the proxy can fence frames
  /// from dead incarnations, poll queued peer rejoins and probe peer
  /// liveness. Null on the in-process path and in the parent.
  net::SocketComm* sock_comm_ = nullptr;

  // Socket-transport result plumbing (set_process_hooks).
  std::function<Packet()> collect_hook_;
  std::function<void(int, const Packet&)> merge_hook_;
};

template <class T>
T& VdpContext::global() const {
  return vsa.global<T>();
}

}  // namespace pulsarqr::prt
