#include "prt/trace.hpp"

#include <algorithm>
#include <map>
#include <cmath>

namespace pulsarqr::prt::trace {

Recorder::Recorder(int num_threads, bool enabled, int extra_lanes)
    : enabled_(enabled), buffers_(num_threads + extra_lanes) {
  epoch_ = std::chrono::steady_clock::now();
}

void Recorder::start_clock() { epoch_ = std::chrono::steady_clock::now(); }

double Recorder::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::int64_t Recorder::epoch_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             epoch_.time_since_epoch())
      .count();
}

void Recorder::inject(const Event& ev) {
  // Merged events keep their original lane when it exists (worker global
  // ids and proxy lanes are process-independent); anything else lands on
  // lane 0 rather than growing the lane table.
  const std::size_t lane =
      ev.thread >= 0 && static_cast<std::size_t>(ev.thread) < buffers_.size()
          ? static_cast<std::size_t>(ev.thread)
          : 0;
  buffers_[lane].push_back(ev);
}

void Recorder::record(int thread, int color, const Tuple& tuple, double t0,
                      double t1) {
  if (!enabled_) return;
  buffers_[thread].push_back({thread, color, tuple, t0, t1});
}

void Recorder::record_mark(int thread, int color, const Tuple& tuple,
                           double t) {
  if (!enabled_) return;
  buffers_[thread].push_back({thread, color, tuple, t, t});
}

std::vector<Event> Recorder::collect() const {
  std::vector<Event> all;
  for (const auto& b : buffers_) all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end(),
            [](const Event& a, const Event& b) { return a.t0 < b.t0; });
  return all;
}

TraceStats compute_stats(const std::vector<Event>& events, int num_threads,
                         int overlap_color) {
  TraceStats s;
  if (events.empty()) return s;
  double t_min = events.front().t0;
  double t_max = 0.0;
  int max_color = 0;
  for (const auto& e : events) {
    t_min = std::min(t_min, e.t0);
    t_max = std::max(t_max, e.t1);
    s.busy += e.t1 - e.t0;
    max_color = std::max(max_color, e.color);
  }
  s.span = t_max - t_min;
  s.utilization = s.span > 0 ? s.busy / (s.span * num_threads) : 0.0;
  s.busy_by_color.assign(max_color + 1, 0.0);
  for (const auto& e : events) s.busy_by_color[e.color] += e.t1 - e.t0;

  // Overlap: sweep the merged start/end points; measure the time during
  // which a task of `overlap_color` and a task of a different color are
  // simultaneously in flight.
  struct Edge {
    double t;
    int delta;   // +1 start, -1 end
    bool is_oc;  // belongs to the overlap color
  };
  std::vector<Edge> edges;
  edges.reserve(events.size() * 2);
  for (const auto& e : events) {
    edges.push_back({e.t0, +1, e.color == overlap_color});
    edges.push_back({e.t1, -1, e.color == overlap_color});
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.t < b.t; });
  int oc = 0;
  int other = 0;
  double last = edges.empty() ? 0.0 : edges.front().t;
  double both = 0.0;
  for (const auto& e : edges) {
    if (oc > 0 && other > 0) both += e.t - last;
    last = e.t;
    (e.is_oc ? oc : other) += e.delta;
  }
  s.overlap_fraction = s.span > 0 ? both / s.span : 0.0;
  return s;
}

double pipeline_depth(const std::vector<Event>& events, int key_index) {
  if (events.empty()) return 0.0;
  struct Window {
    double t0 = 1e300;
    double t1 = -1e300;
  };
  std::map<int, Window> windows;
  double span0 = events.front().t0;
  double span1 = events.front().t1;
  for (const auto& e : events) {
    if (static_cast<int>(e.tuple.size()) <= key_index) continue;
    Window& w = windows[e.tuple[key_index]];
    w.t0 = std::min(w.t0, e.t0);
    w.t1 = std::max(w.t1, e.t1);
    span0 = std::min(span0, e.t0);
    span1 = std::max(span1, e.t1);
  }
  const double span = span1 - span0;
  if (span <= 0.0 || windows.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [key, w] : windows) total += w.t1 - w.t0;
  return total / span;
}

void write_csv(std::ostream& os, const std::vector<Event>& events) {
  os << "thread,color,tuple,t0,t1\n";
  for (const auto& e : events) {
    os << e.thread << ',' << e.color << ',' << '"' << e.tuple.to_string()
       << '"' << ',' << e.t0 << ',' << e.t1 << '\n';
  }
}

void write_ascii_gantt(std::ostream& os, const std::vector<Event>& events,
                       int num_threads, int width,
                       const std::vector<std::string>& color_names) {
  if (events.empty() || width <= 0) return;
  double t_min = events.front().t0;
  double t_max = events.front().t1;
  for (const auto& e : events) {
    t_min = std::min(t_min, e.t0);
    t_max = std::max(t_max, e.t1);
  }
  const double span = std::max(t_max - t_min, 1e-12);
  // cells[thread][x] = color + 1 (0 = idle).
  std::vector<std::vector<int>> cells(num_threads, std::vector<int>(width, 0));
  for (const auto& e : events) {
    int x0 = static_cast<int>((e.t0 - t_min) / span * width);
    int x1 = static_cast<int>((e.t1 - t_min) / span * width);
    x0 = std::clamp(x0, 0, width - 1);
    x1 = std::clamp(x1, x0, width - 1);
    for (int x = x0; x <= x1; ++x) cells[e.thread][x] = e.color + 1;
  }
  static const char glyphs[] = ".FUB456789";  // idle, then color 0,1,2,...
  for (int t = 0; t < num_threads; ++t) {
    os << "thr" << (t < 10 ? " " : "") << t << " |";
    for (int x = 0; x < width; ++x) {
      const int c = cells[t][x];
      os << (c < static_cast<int>(sizeof(glyphs)) ? glyphs[c] : '?');
    }
    os << "|\n";
  }
  os << "legend: '.'=idle";
  for (std::size_t c = 0; c < color_names.size() && c + 1 < sizeof(glyphs) - 1;
       ++c) {
    os << "  '" << glyphs[c + 1] << "'=" << color_names[c];
  }
  os << "\n";
}

}  // namespace pulsarqr::prt::trace
