// In-process message-passing transport — the repo's MPI substitution.
//
// The paper's proxy uses exactly six MPI calls (Isend, Irecv, Test,
// Get_count, Barrier, Cancel) between one MPI process per node. This shim
// provides the same nonblocking six-call surface over per-rank mailboxes.
// Payloads are deep-copied on send, emulating separate address spaces, so
// aliasing bugs that MPI would expose are exposed here too. Tag routing is
// numbered independently per (source, destination) pair, as in the paper.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "prt/packet.hpp"

namespace pulsarqr::prt::net {

struct Message {
  int source = -1;
  int tag = -1;
  int meta = 0;
  Packet payload;  ///< already an independent copy on the receive side
};

/// A "communicator" over nranks in-process ranks.
class Comm {
 public:
  explicit Comm(int nranks);

  int size() const { return static_cast<int>(boxes_.size()); }

  /// Nonblocking send: copies the payload and delivers it to dst's mailbox.
  /// Returns a request handle; completion is immediate in this transport
  /// but callers must still test() it (MPI discipline).
  int isend(int src, int dst, int tag, const Packet& payload, int meta);

  /// MPI_Test equivalent: true once the send completed.
  bool test(int request) const;

  /// MPI_Irecv+Test pattern collapsed into a non-blocking poll of the
  /// rank's mailbox. Empty optional when nothing has arrived.
  std::optional<Message> try_recv(int rank);

  /// Batch receive: every queued message for the rank in arrival order,
  /// taken in a single mailbox swap (one lock round-trip total — the
  /// proxy's bulk path). Empty deque when nothing has arrived.
  std::deque<Message> drain(int rank);

  /// Blocking receive with a deadline; used by proxies to idle efficiently.
  std::optional<Message> recv_wait(int rank, int timeout_us);

  /// MPI_Get_count equivalent.
  static std::size_t get_count(const Message& m) { return m.payload.size(); }

  /// MPI_Barrier equivalent over all ranks.
  void barrier();

  /// MPI_Cancel equivalent: drop all undelivered messages for a rank.
  void cancel(int rank);

  /// Wake a rank blocked in recv_wait (used for shutdown).
  void interrupt(int rank);

  /// Totals for RunStats.
  long long messages_sent() const { return sent_.load(); }
  long long bytes_sent() const { return bytes_.load(); }

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> q;
  };
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::atomic<long long> sent_{0};
  std::atomic<long long> bytes_{0};
  // Barrier state.
  std::mutex bmu_;
  std::condition_variable bcv_;
  int barrier_count_ = 0;
  int barrier_gen_ = 0;
};

}  // namespace pulsarqr::prt::net
