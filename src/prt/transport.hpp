// In-process message-passing transport — the repo's MPI substitution.
//
// The paper's proxy uses exactly six MPI calls (Isend, Irecv, Test,
// Get_count, Barrier, Cancel) between one MPI process per node. This shim
// provides the same nonblocking six-call surface over per-rank mailboxes.
// Payloads are deep-copied on send, emulating separate address spaces, so
// aliasing bugs that MPI would expose are exposed here too. Tag routing is
// numbered independently per (source, destination) pair, as in the paper.
//
// On top of the paper's reliable-fabric assumption, this file adds the
// chaos machinery the paper never needed:
//   * FaultPlan — seeded, deterministic drop/duplicate/delay/reorder
//     injection inside Comm, decided per (src, dst, tag, message-index) by
//     a pure hash, so a schedule replays identically from its seed.
//   * Reliable — a sequence-numbered ack/retransmit endpoint the node
//     proxies layer over Comm to restore exactly-once, in-order delivery
//     per (src, dst) link when the fabric below is faulted.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "prt/packet.hpp"
#include "prt/tags.hpp"

namespace pulsarqr::prt::net {

struct Message {
  int source = -1;
  int tag = -1;
  int meta = 0;
  /// Reliable-transport header, piggybacked on every frame when the
  /// protocol is on; all -1/false on the (unchanged) fast path.
  long long seq = -1;  ///< per-(src,dst) data sequence number; -1 = none
  long long ack = -1;  ///< cumulative ack for the reverse link; -1 = none
  bool is_ack = false;  ///< pure ack frame (empty payload, not routed)
  Packet payload;       ///< already an independent copy on the receive side
  /// Sender incarnation (crash recovery): 0 for the original process of a
  /// rank, bumped per respawn. Receivers fence frames whose epoch is
  /// older than the sender's current incarnation — a stale in-flight
  /// frame (worst: a stale cumulative ack) from a dead incarnation must
  /// not touch post-rejoin protocol state. Always 0 in-process.
  std::uint32_t epoch = 0;
};

/// Deterministic fault-injection schedule applied inside Comm::isend.
/// Every probability decision for the i-th message of a (src, dst, tag)
/// stream is a pure hash of (seed, src, dst, tag, i): the same seed
/// replays the same drop/dup/delay/reorder pattern regardless of thread
/// interleaving (only the wall-clock release of delayed messages varies).
struct FaultPlan {
  std::uint64_t seed = 0;
  double drop = 0.0;     ///< P(message silently dropped)
  double dup = 0.0;      ///< P(message delivered twice)
  double delay = 0.0;    ///< P(message held for delay_us before delivery)
  double reorder = 0.0;  ///< P(message held behind the next one to the rank)
  int delay_us = 200;    ///< bounded hold time of delayed/reordered messages
  /// Process-level fault (Socket transport only): SIGKILL the node
  /// process of `kill_rank` once that rank's workers have completed
  /// `kill_after` VDP firings. Fires at most once per run, and only in
  /// the rank's first incarnation — a respawned replacement is never
  /// re-killed, so every schedule terminates. Deliberately excluded from
  /// any(): process death is not a message-level fault, so it neither
  /// activates the oracle nor perturbs the drop/dup/delay/reorder replay.
  int kill_rank = -1;
  long long kill_after = 0;
  bool any() const {
    return drop > 0.0 || dup > 0.0 || delay > 0.0 || reorder > 0.0;
  }
  bool kill() const { return kill_rank >= 0; }
};

/// Totals of injected faults, surfaced through Vsa::RunStats / RunReport.
struct FaultCounters {
  long long dropped = 0;
  long long duplicated = 0;
  long long delayed = 0;
  long long reordered = 0;
  long long total() const { return dropped + duplicated + delayed + reordered; }
};

/// Snapshot of one directed (src, dst) link's sequence state, used by the
/// graceful-failure RunReport to name in-flight gaps and stuck streams.
struct LinkGap {
  int src = -1;
  int dst = -1;
  long long next_seq = 0;   ///< sender: next fresh sequence number
  long long acked = -1;     ///< sender: highest cumulative ack received
  long long expected = 0;   ///< receiver: next in-order seq it is waiting for
  int unacked = 0;          ///< sender: frames in flight (sent, not acked)
  int buffered_out_of_order = 0;  ///< receiver: frames held past a gap
  bool exhausted = false;   ///< sender: retransmit cap hit on this link
  std::vector<int> pending_tags;  ///< tags of the unacked frames, in order
  std::string to_string() const;
};

/// The outcome the fault plan assigned to one message.
struct FaultFate {
  bool drop = false;
  bool dup = false;
  bool delay = false;
  bool reorder = false;
};

/// Deterministic fault oracle shared by every transport backend: holds the
/// plan, the per-(src, dst, tag) stream counters, and the injected-fault
/// totals. Each decide() is a pure hash of (seed, stream, index), so the
/// in-process mailbox backend and the socket backend replay the exact same
/// schedule from the same seed — the send side decides the fate before the
/// message touches any wire.
///
/// The stream-counter map is reset every time a plan is installed: a
/// long-lived communicator re-seeded per run (the VSA-as-a-service
/// direction) starts each schedule from index 0 instead of accumulating
/// one map entry per stream forever. streams() surfaces the live size.
class FaultOracle {
 public:
  void set_plan(const FaultPlan& plan);
  bool active() const { return active_.load(std::memory_order_acquire); }
  /// Decide the idx-th message of the (src, dst, tag) stream (advancing
  /// its index) and tally the counters.
  FaultFate decide(int src, int dst, int tag);
  int delay_us() const;
  FaultCounters counters() const;
  /// Number of distinct (src, dst, tag) streams seen under the current
  /// plan — the bound satellite accounting exposes via RunStats.
  std::size_t streams() const;

 private:
  std::atomic<bool> active_{false};
  mutable std::mutex mu_;
  FaultPlan plan_;
  std::unordered_map<std::uint64_t, long long> stream_idx_;
  FaultCounters counters_;
};

/// Abstract "communicator" over nranks ranks — the six-call MPI surface of
/// the paper (Isend/Test, Irecv as try_recv/drain/recv_wait, Get_count,
/// Barrier, Cancel) plus the chaos and accounting hooks every backend
/// shares. Backends: MailboxComm (in-process per-rank mailboxes, the
/// original thread-emulated transport) and net::SocketComm
/// (socket_comm.hpp — Unix-domain stream sockets between real processes).
///
/// Accounting contract (chaos-invariant, asserted in chaos_test):
///   messages_offered  = isend calls accepted from callers
///   messages_sent     = what actually went to a mailbox/wire — dropped
///                       messages count zero, duplicated messages twice,
///   so  sent == offered - dropped + duplicated
/// in the absence of cancel (sends to a cancelled rank are discarded after
/// being offered, without counting as sent).
class Comm {
 public:
  explicit Comm(int nranks);
  virtual ~Comm();

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int size() const { return nranks_; }

  /// Nonblocking send: copies the payload and delivers it to dst's mailbox
  /// (through the fault plan, if one is set). Returns a request handle;
  /// completion is immediate in this transport but callers must still
  /// test() it (MPI discipline). The trailing seq/ack/is_ack header is
  /// used by the Reliable layer and defaults to "no header".
  ///
  /// `shared` skips the deep copy and hands the receiver a reference to
  /// the caller's buffer. Only for payloads that are immutable for the
  /// rest of their life on BOTH sides: the proxy's gather-coalesced wire
  /// buffers (the gather is the address-space copy; the receiver splits
  /// into fresh buffers) and Reliable retransmissions (a retransmitted
  /// frame is either the only copy ever delivered or suppressed unread by
  /// the receiver's sequence dedup). The default path keeps the deep copy
  /// that emulates separate address spaces.
  virtual int isend(int src, int dst, int tag, const Packet& payload, int meta,
                    long long seq = -1, long long ack = -1, bool is_ack = false,
                    bool shared = false) = 0;

  /// MPI_Test equivalent: true once the send completed. Both backends
  /// complete sends synchronously (mailbox enqueue / blocking write).
  virtual bool test(int /*request*/) const { return true; }

  /// MPI_Irecv+Test pattern collapsed into a non-blocking poll of the
  /// rank's mailbox. Empty optional when nothing has arrived.
  virtual std::optional<Message> try_recv(int rank) = 0;

  /// Batch receive: every queued message for the rank in arrival order,
  /// taken in a single mailbox swap (one lock round-trip total — the
  /// proxy's bulk path). Empty deque when nothing has arrived.
  virtual std::deque<Message> drain(int rank) = 0;

  /// Blocking receive with a deadline; used by proxies to idle
  /// efficiently. The deadline is absolute: spurious condition-variable
  /// wakeups never extend the effective timeout. Returns early (empty)
  /// when an interrupt is pending for the rank.
  virtual std::optional<Message> recv_wait(int rank, int timeout_us) = 0;

  /// MPI_Get_count equivalent.
  static std::size_t get_count(const Message& m) { return m.payload.size(); }

  /// MPI_Barrier equivalent over all ranks.
  virtual void barrier() = 0;

  /// MPI_Cancel equivalent: drop all undelivered messages for a rank
  /// (including ones held back by the fault plan), and latch the rank as
  /// cancelled — later sends to it are discarded instead of re-filling
  /// the mailbox or limbo a racing isend could otherwise repopulate.
  virtual void cancel(int rank) = 0;

  /// Wake a rank blocked in recv_wait (used for shutdown and to nudge an
  /// idle proxy). The wake is latched: an interrupt delivered while no
  /// one waits makes the next recv_wait return immediately instead of
  /// being lost. Idempotent — repeated interrupts collapse into one latch.
  virtual void interrupt(int rank) = 0;

  /// Install the fault plan. Must be called before any traffic; a plan
  /// with all probabilities zero leaves the fast path untouched.
  void set_fault_plan(const FaultPlan& plan) { oracle_.set_plan(plan); }

  /// Totals for RunStats (see the accounting contract above).
  long long messages_offered() const { return offered_.load(); }
  long long messages_sent() const { return sent_.load(); }
  long long bytes_sent() const { return bytes_.load(); }
  FaultCounters fault_counters() const { return oracle_.counters(); }
  /// Distinct fault streams tracked under the current plan (bounded by
  /// the run's (src, dst, tag) topology; reset per plan install).
  std::size_t fault_streams() const { return oracle_.streams(); }

 protected:
  int nranks_;
  FaultOracle oracle_;
  std::atomic<long long> offered_{0};
  std::atomic<long long> sent_{0};
  std::atomic<long long> bytes_{0};
};

/// The in-process backend: per-rank mailboxes between threads of one
/// process, deep-copying payloads to emulate separate address spaces.
class MailboxComm : public Comm {
 public:
  explicit MailboxComm(int nranks);

  int isend(int src, int dst, int tag, const Packet& payload, int meta,
            long long seq = -1, long long ack = -1, bool is_ack = false,
            bool shared = false) override;
  std::optional<Message> try_recv(int rank) override;
  std::deque<Message> drain(int rank) override;
  std::optional<Message> recv_wait(int rank, int timeout_us) override;

  /// The generation counter is 64-bit and monotone, so a rank re-entering
  /// the barrier immediately can never alias a generation an earlier
  /// waiter is still testing.
  void barrier() override;
  void cancel(int rank) override;
  void interrupt(int rank) override;

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> q;
    bool wake_pending = false;  ///< latched interrupt (guarded by mu)
    bool cancelled = false;     ///< latched cancel (guarded by mu)
  };
  /// A message held back by the fault plan.
  struct Limbo {
    std::chrono::steady_clock::time_point release;
    bool after_next = false;  ///< reorder: also release on the next delivery
    Message m;
  };

  /// Returns false when the destination rank is cancelled (the message is
  /// discarded under the same lock that latched the cancel — no race).
  bool enqueue(int dst, Message m);
  /// Move due limbo messages of the rank into its mailbox; returns the
  /// earliest release time still pending (if any).
  std::optional<std::chrono::steady_clock::time_point> release_due(int rank);

  std::vector<std::unique_ptr<Mailbox>> boxes_;
  // Barrier state.
  std::mutex bmu_;
  std::condition_variable bcv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
  // Limbo + cancel-latch state (guarded by fmu_; the fault-free fast path
  // never takes this lock — its cancel check rides the mailbox lock).
  mutable std::mutex fmu_;
  std::vector<std::vector<Limbo>> limbo_;  ///< per destination rank
  std::vector<char> cancelled_;            ///< per-rank latched cancel
};

/// Reliable-delivery endpoint for one rank: per-(src,dst) monotone
/// sequence numbers, cumulative acks piggybacked on data frames (plus
/// pure-ack frames when no reverse traffic exists), retransmission on
/// timeout with exponential backoff and a retry cap, and duplicate
/// suppression + in-order reassembly on the receive side.
///
/// Owned and driven by a single proxy thread; not thread-safe. Layered
/// strictly above Comm: every frame it emits goes through isend (and thus
/// through the fault plan), every frame it consumes comes from the rank's
/// mailbox.
class Reliable {
 public:
  struct Params {
    int rto_us = 2000;      ///< initial retransmit timeout
    double backoff = 2.0;   ///< timeout multiplier per retransmission
    int max_retries = 10;   ///< retransmits per frame before giving up
    /// Crash-replay retention: per-destination byte budget of ACKED
    /// frames kept past acknowledgement (the same shared buffers the
    /// retransmit queue already holds — no copies). 0 disables retention
    /// (acked frames drop immediately, the pre-recovery behavior). When
    /// the budget overflows, the oldest frames are evicted; a later
    /// replay_link() on a link that evicted reports an unrecoverable gap.
    std::size_t replay_log_bytes = 0;
  };

  Reliable(Comm& comm, int rank, Params params);

  /// Send one data frame to dst: assigns the link's next sequence number,
  /// piggybacks the cumulative ack of the reverse link, and retains a
  /// shared reference to the payload (no copy) for retransmission until
  /// acked. `shared` is forwarded to Comm::isend for the first
  /// transmission (see the contract there); retransmissions are always
  /// sent shared — the staged buffer goes on the wire as-is instead of
  /// being deep-copied per transmission.
  void send(int dst, int tag, const Packet& payload, int meta,
            bool shared = false);

  /// Process one raw incoming frame. Data frames that complete the
  /// in-order prefix of their link (including previously buffered
  /// out-of-order frames) are appended to `deliver`; duplicates are
  /// suppressed and pure acks consumed.
  void on_receive(Message m, std::deque<Message>& deliver);

  /// Emit pure-ack frames for links whose cumulative ack advanced (or
  /// that saw a duplicate) since the last data frame / flush.
  void flush_acks();

  /// Retransmit every timed-out unacked frame (with backoff), as of
  /// `now`. Returns false once any frame has exhausted its retries — the
  /// link is then considered failed and stops retransmitting.
  bool poll(std::chrono::steady_clock::time_point now);

  /// Invoked (if set) for every retransmission: (dst, tag, seq).
  void set_retransmit_hook(std::function<void(int, int, long long)> hook) {
    retransmit_hook_ = std::move(hook);
  }

  /// Liveness probe consulted by poll(): false for a destination means
  /// the peer is known down (its process died and has not rejoined yet),
  /// so timed-out frames have their deadlines pushed instead of burning
  /// retries — a respawn window must not exhaust the retransmit cap.
  void set_link_up_probe(std::function<bool(int)> probe) {
    link_up_ = std::move(probe);
  }

  /// Crash recovery, survivor side. Requeue the link's ENTIRE retained
  /// history to dst — the replay log (acked frames) back in front of the
  /// still-unacked tail — with original sequence numbers, reset acked to
  /// -1 and all deadlines to `now`, so the normal poll() path
  /// retransmits everything in order to the fresh incarnation (which
  /// receives from expected = 0). Returns the number of frames requeued,
  /// or -1 when eviction already discarded part of the history (an
  /// unrecoverable gap: the run must fail instead of silently losing
  /// frames).
  long long replay_link(int dst, std::chrono::steady_clock::time_point now);

  /// Crash recovery, survivor side: forget everything received from a
  /// dead incarnation of `src`. The replacement re-sends its stream from
  /// seq 0, so expected resets to 0 and the reassembly buffer clears;
  /// duplicate suppression of the re-executed firings happens above this
  /// layer (per-channel delivered-frame counts in the proxy), not here.
  void reset_recv_link(int src);

  bool failed() const { return failed_; }
  long long retransmits() const { return retransmits_; }
  long long duplicates_suppressed() const { return dup_suppressed_; }
  long long acks_sent() const { return acks_sent_; }
  /// Frames requeued by replay_link() over the endpoint's lifetime.
  long long replayed() const { return replayed_; }

  /// Sequence-state snapshot of every link this endpoint has touched —
  /// sender views (src == rank) and receiver views (dst == rank).
  std::vector<LinkGap> gaps() const;

  /// Canonical rendering of the endpoint's complete protocol state:
  /// per-link sequence numbers, cumulative acks, the unacked retention
  /// queue (seq/tag/retry counts), reassembly buffers and ack debts.
  /// Retransmit deadlines are deliberately excluded — two endpoints with
  /// equal fingerprints behave identically under any action sequence
  /// whose poll() horizon exceeds every backoff, which is exactly how the
  /// bounded model checker (prt::verify) advances time. Used for state
  /// deduplication there and available for debugging.
  std::string state_fingerprint() const;

 private:
  struct Unacked {
    long long seq = 0;
    int tag = -1;
    int meta = 0;
    /// Shares the sender's buffer — no retention copy, and retransmissions
    /// put this same buffer on the wire (isend `shared`). Safe because
    /// payloads are immutable once handed to the transport (the same
    /// contract intra-node zero-copy channels already rely on) and the
    /// receiver's sequence dedup discards late duplicates unread; the only
    /// place an independent copy is still taken is the fault plan's
    /// duplicate injection, which is the one point that mutates fate.
    Packet payload;
    std::chrono::steady_clock::time_point deadline;
    long long rto_us = 0;
    int retries = 0;
  };
  struct SendLink {
    long long next_seq = 0;
    long long acked = -1;
    bool exhausted = false;
    std::deque<Unacked> unacked;
    /// Acked frames retained for crash replay, ascending seq, bounded by
    /// Params::replay_log_bytes (oldest evicted first).
    std::deque<Unacked> replay;
    std::size_t replay_bytes = 0;
    long long replay_evicted = 0;
  };
  struct RecvLink {
    long long expected = 0;
    std::map<long long, Message> out_of_order;
    bool ack_dirty = false;
  };

  long long piggyback_ack(int peer) const;
  /// Move one freshly acked frame into the replay log (or drop it when
  /// retention is off), evicting oldest-first past the byte budget.
  void retain_for_replay(SendLink& link, Unacked u);

  Comm& comm_;
  int rank_;
  Params params_;
  std::map<int, SendLink> send_;  ///< keyed by destination rank
  std::map<int, RecvLink> recv_;  ///< keyed by source rank
  std::function<void(int, int, long long)> retransmit_hook_;
  std::function<bool(int)> link_up_;
  bool failed_ = false;
  long long retransmits_ = 0;
  long long dup_suppressed_ = 0;
  long long acks_sent_ = 0;
  long long replayed_ = 0;
};

// ---- frame coalescing -------------------------------------------------------
//
// Wire format of an aggregate (tag == kAggregateTag, meta == frame count):
// a sequence of frames, each a 16-byte header {int32 tag, int32 meta,
// uint64 size} followed by the payload padded to 8 bytes. One aggregate is
// one fault-plan decision and (under Reliable) one sequence number, so the
// per-message latency, ack and retransmit costs amortize over every frame
// it carries.

/// One application frame inside an aggregate, as decoded by FrameCursor.
/// `data` points into the aggregate's buffer and lives as long as it.
struct WireFrame {
  int tag = -1;
  int meta = 0;
  std::size_t size = 0;
  const std::byte* data = nullptr;
};

/// Per-destination egress staging buffer: gather-copies outbound frames
/// into one pooled wire buffer up to `capacity` bytes. Owned and driven
/// by a single proxy thread; not thread-safe.
class FrameStager {
 public:
  explicit FrameStager(std::size_t capacity) : capacity_(capacity) {}

  bool empty() const { return frames_ == 0; }
  int frames() const { return frames_; }
  std::size_t bytes() const { return used_; }

  /// Wire cost of one frame: header plus the payload padded to 8 bytes.
  static std::size_t wire_size(std::size_t payload_bytes) {
    return kHeaderBytes + ((payload_bytes + 7) & ~std::size_t{7});
  }

  /// Whether a frame of `payload_bytes` still fits the staged buffer.
  bool fits(std::size_t payload_bytes) const {
    return used_ + wire_size(payload_bytes) <= capacity_;
  }

  /// Gather-copy one frame into the staging buffer (caller checks fits()).
  void add(int tag, int meta, const Packet& p);

  /// The staged aggregate, trimmed to the gathered bytes, with meta set to
  /// the frame count; resets the stager. Requires !empty().
  Packet take();

 private:
  static constexpr std::size_t kHeaderBytes = 16;

  std::size_t capacity_;
  Packet buf_;  ///< pooled; allocated lazily on the first add()
  std::size_t used_ = 0;
  int frames_ = 0;
};

/// Zero-copy reader over an aggregate payload built by FrameStager.
class FrameCursor {
 public:
  explicit FrameCursor(const Packet& aggregate)
      : data_(aggregate.bytes()), size_(aggregate.size()) {}

  /// Advance to the next frame; false when the aggregate is exhausted.
  bool next(WireFrame& out);

 private:
  const std::byte* data_;
  std::size_t size_;
  std::size_t off_ = 0;
};

}  // namespace pulsarqr::prt::net
