#include "prt/socket_comm.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "prt/wire.hpp"

namespace pulsarqr::prt::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Write exactly n bytes (blocking, no SIGPIPE). False on any error —
/// the peer is gone; the caller treats the frame as dropped on the wire.
bool send_all(int fd, const std::byte* p, std::size_t n) {
  while (n > 0) {
    const ssize_t k = ::send(fd, p, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

}  // namespace

std::vector<std::vector<int>> SocketComm::socketpair_mesh(int nranks) {
  std::vector<std::vector<int>> mesh(nranks, std::vector<int>(nranks, -1));
  for (int a = 0; a < nranks; ++a) {
    for (int b = a + 1; b < nranks; ++b) {
      int sv[2];
      require(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
              "SocketComm: socketpair failed: " +
                  std::string(std::strerror(errno)));
      mesh[a][b] = sv[0];
      mesh[b][a] = sv[1];
    }
  }
  return mesh;
}

SocketComm::SocketComm(int nranks, int rank, std::vector<int> peer_fds,
                       std::uint32_t epoch,
                       std::vector<std::uint32_t> peer_epochs)
    : Comm(nranks), rank_(rank), epoch_(epoch), peer_fds_(nranks),
      peer_epoch_(nranks), peer_down_(nranks) {
  require(rank_ >= 0 && rank_ < nranks, "SocketComm: rank out of range");
  require(static_cast<int>(peer_fds.size()) == nranks,
          "SocketComm: need one fd per rank");
  require(peer_epochs.empty() ||
              static_cast<int>(peer_epochs.size()) == nranks,
          "SocketComm: need one peer epoch per rank (or none)");
  peer_fds[rank_] = -1;  // never talk to ourselves over a socket
  for (int r = 0; r < nranks; ++r) {
    peer_fds_[r].store(peer_fds[r], std::memory_order_relaxed);
    peer_epoch_[r].store(peer_epochs.empty() ? 0u : peer_epochs[r],
                         std::memory_order_relaxed);
    peer_down_[r].store(false, std::memory_order_relaxed);
  }
  // Self-delivered messages are stamped with our own incarnation.
  peer_epoch_[rank_].store(epoch_, std::memory_order_relaxed);
  wmu_.reserve(nranks);
  for (int r = 0; r < nranks; ++r) wmu_.push_back(std::make_unique<std::mutex>());
  cancelled_to_.assign(nranks, 0);
  barrier_seen_.assign(nranks, 0);
  require(::pipe(wake_pipe_) == 0, "SocketComm: pipe failed: " +
                                       std::string(std::strerror(errno)));
  receiver_ = std::thread([this] { receiver_loop(); });
}

SocketComm::~SocketComm() {
  stop_.store(true, std::memory_order_release);
  const char b = 'w';
  // Best-effort nudge; the receiver also polls stop_ on a short timeout.
  (void)!::write(wake_pipe_[1], &b, 1);
  if (receiver_.joinable()) receiver_.join();
  for (auto& fd : peer_fds_) {
    const int f = fd.load(std::memory_order_relaxed);
    if (f >= 0) ::close(f);
  }
  // Rejoins queued but never installed still own their fds.
  for (const Rejoin& rj : rejoins_) {
    if (rj.fd >= 0) ::close(rj.fd);
  }
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

void SocketComm::rejoin_peer(int rank, int fd, std::uint32_t epoch) {
  {
    std::lock_guard<std::mutex> lock(rjmu_);
    rejoins_.push_back(Rejoin{rank, fd, epoch});
  }
  // Nudge an idle proxy out of recv_wait so it installs promptly.
  interrupt(rank_);
}

std::vector<SocketComm::Rejoin> SocketComm::take_rejoins() {
  std::lock_guard<std::mutex> lock(rjmu_);
  std::vector<Rejoin> out;
  out.swap(rejoins_);
  return out;
}

void SocketComm::install_rejoin(const Rejoin& rj) {
  PQR_ASSERT(rj.rank >= 0 && rj.rank < size() && rj.rank != rank_,
             "SocketComm: bad rejoin rank");
  {
    // The write lock serializes against in-flight write_frame calls: no
    // sender can interleave half a frame across the fd swap.
    std::lock_guard<std::mutex> lock(*wmu_[rj.rank]);
    peer_fds_[rj.rank].store(rj.fd, std::memory_order_release);
    peer_epoch_[rj.rank].store(rj.epoch, std::memory_order_release);
  }
  peer_down_[rj.rank].store(false, std::memory_order_release);
  // Wake the receiver so it reconciles (closes the replaced fd, discards
  // the dead incarnation's partial stream, and starts polling the new fd).
  const char b = 'w';
  (void)!::write(wake_pipe_[1], &b, 1);
}

bool SocketComm::write_frame(int dst, std::uint32_t kind, std::uint32_t flags,
                             int source, int tag, int meta,
                             const std::byte* payload, std::size_t len,
                             long long seq, long long ack) {
  std::byte hdr[kFrameHeaderBytes];
  wire::put_u32(hdr, kind);
  wire::put_u32(hdr + 4, flags);
  wire::put_i32(hdr + 8, source);
  wire::put_i32(hdr + 12, tag);
  wire::put_i32(hdr + 16, meta);
  wire::put_u64(hdr + 20, static_cast<std::uint64_t>(len));
  wire::put_i64(hdr + 28, seq);
  wire::put_i64(hdr + 36, ack);
  wire::put_u32(hdr + 44, epoch_);
  // One frame, one writer at a time: header and payload must be adjacent
  // on the stream. SOCK_STREAM backpressure cannot deadlock two mutually
  // blocked senders because every process's receiver thread drains
  // independently of its own sends. The fd is loaded under the same lock
  // install_rejoin swaps it under, so a frame never splits across fds.
  std::lock_guard<std::mutex> lock(*wmu_[dst]);
  const int fd = peer_fds_[dst].load(std::memory_order_acquire);
  if (fd < 0) return false;
  if (!send_all(fd, hdr, kFrameHeaderBytes) ||
      (len > 0 && !send_all(fd, payload, len))) {
    // The peer's process is gone (or its socket is); freeze the link
    // until a replacement rejoins.
    peer_down_[dst].store(true, std::memory_order_release);
    return false;
  }
  return true;
}

bool SocketComm::local_enqueue(Message m) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_self_) return false;
    q_.push_back(std::move(m));
  }
  cv_.notify_one();
  return true;
}

bool SocketComm::transmit(int dst, const Message& m) {
  bool ok;
  if (dst == rank_) {
    Message self = m;
    self.epoch = epoch_;  // self-delivery is always the live incarnation
    ok = local_enqueue(std::move(self));
  } else {
    ok = write_frame(dst, kData, m.is_ack ? 1u : 0u, m.source, m.tag, m.meta,
                     m.payload.bytes(), m.payload.size(), m.seq, m.ack);
  }
  if (ok) {
    sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(static_cast<long long>(m.payload.size()),
                     std::memory_order_relaxed);
  }
  return ok;
}

int SocketComm::isend(int src, int dst, int tag, const Packet& payload,
                      int meta, long long seq, long long ack, bool is_ack,
                      bool shared) {
  PQR_ASSERT(dst >= 0 && dst < size(), "isend: bad destination rank");
  PQR_ASSERT(src == rank_, "SocketComm::isend: src must be the owning rank");
  if (is_ack) {
    require(tag == kPureAckTag,
            "isend: an ack frame must use the reserved pure-ack tag " +
                std::to_string(kPureAckTag) + ", got " + std::to_string(tag));
  } else if (tag != kAggregateTag) {
    require_user_tag(tag, "isend");
  }
  offered_.fetch_add(1, std::memory_order_relaxed);
  // The wire write below serializes the bytes out of the caller's buffer
  // either way, so `shared` needs no deep copy here; the flag only
  // matters for the local (dst == rank_) delivery, where the receiver
  // adopts the buffer. Local delivery of a non-shared payload clones to
  // preserve the separate-address-space emulation of the base contract.
  Message m{src, tag, meta, seq, ack, is_ack,
            (dst == rank_ && !shared) ? payload.clone() : payload};
  if (!oracle_.active()) {
    (void)transmit(dst, m);
    return 0;
  }
  bool held = false;
  bool dup = false;
  {
    std::lock_guard<std::mutex> lock(lmu_);
    if (cancelled_to_[dst] != 0) return 0;  // offered, never sent
    const FaultFate f = oracle_.decide(src, dst, tag);
    if (f.drop) return 0;
    dup = f.dup;
    held = f.delay || f.reorder;
    if (held) {
      Limbo l;
      l.release = Clock::now() + std::chrono::microseconds(oracle_.delay_us());
      l.after_next = f.reorder;
      l.dst = dst;
      l.m = dup ? Message{m.source, m.tag, m.meta, m.seq,
                          m.ack,    m.is_ack, m.payload}
                : std::move(m);
      limbo_.push_back(std::move(l));
    }
  }
  if (held && !dup) return 0;
  if (dup && !held) (void)transmit(dst, m);
  if (transmit(dst, m)) flush_after_next(dst);
  return 0;
}

std::optional<Clock::time_point> SocketComm::flush_due_limbo() {
  std::vector<Limbo> due;
  std::optional<Clock::time_point> earliest;
  {
    std::lock_guard<std::mutex> lock(lmu_);
    if (limbo_.empty()) return std::nullopt;
    const auto now = Clock::now();
    for (auto it = limbo_.begin(); it != limbo_.end();) {
      if (it->release <= now) {
        due.push_back(std::move(*it));
        it = limbo_.erase(it);
      } else {
        if (!earliest || it->release < *earliest) earliest = it->release;
        ++it;
      }
    }
  }
  for (auto& l : due) (void)transmit(l.dst, l.m);
  return earliest;
}

void SocketComm::flush_after_next(int dst) {
  std::vector<Limbo> held;
  {
    std::lock_guard<std::mutex> lock(lmu_);
    for (auto it = limbo_.begin(); it != limbo_.end();) {
      if (it->after_next && it->dst == dst) {
        held.push_back(std::move(*it));
        it = limbo_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& l : held) (void)transmit(l.dst, l.m);
}

std::optional<Message> SocketComm::try_recv(int rank) {
  PQR_ASSERT(rank == rank_, "SocketComm: can only receive for the owning rank");
  if (oracle_.active()) flush_due_limbo();
  std::lock_guard<std::mutex> lock(mu_);
  if (q_.empty()) return std::nullopt;
  Message m = std::move(q_.front());
  q_.pop_front();
  return m;
}

std::deque<Message> SocketComm::drain(int rank) {
  PQR_ASSERT(rank == rank_, "SocketComm: can only receive for the owning rank");
  if (oracle_.active()) flush_due_limbo();
  std::deque<Message> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.swap(q_);
  return out;
}

std::optional<Message> SocketComm::recv_wait(int rank, int timeout_us) {
  PQR_ASSERT(rank == rank_, "SocketComm: can only receive for the owning rank");
  const auto deadline = Clock::now() + std::chrono::microseconds(timeout_us);
  for (;;) {
    // Flush due limbo traffic first, and cap this round's sleep at the
    // next pending release: a delayed outbound message must not wait for
    // the caller's full timeout (the sender is its only flusher).
    auto until = deadline;
    if (oracle_.active()) {
      if (auto next = flush_due_limbo(); next && *next < until) until = *next;
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_until(lock, until,
                     [&] { return !q_.empty() || wake_pending_; });
      if (wake_pending_) {
        wake_pending_ = false;  // consume the latched interrupt
        if (q_.empty()) return std::nullopt;
      }
      if (!q_.empty()) {
        Message m = std::move(q_.front());
        q_.pop_front();
        return m;
      }
    }
    if (Clock::now() >= deadline) return std::nullopt;
  }
}

void SocketComm::barrier() {
  if (size() == 1) return;
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(bmu_);
    gen = ++barrier_gen_;
  }
  // Dissemination: announce our generation to every peer (control frame,
  // bypasses the fault plan), then wait until every peer announced gen.
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    (void)write_frame(r, kBarrier, 0, rank_, 0, 0, nullptr, 0,
                      static_cast<long long>(gen), -1);
  }
  std::unique_lock<std::mutex> lock(bmu_);
  bcv_.wait(lock, [&] {
    for (int r = 0; r < size(); ++r) {
      if (r != rank_ && barrier_seen_[r] < static_cast<long long>(gen)) {
        return false;
      }
    }
    return true;
  });
}

void SocketComm::cancel(int rank) {
  {
    std::lock_guard<std::mutex> lock(lmu_);
    cancelled_to_[rank] = 1;
    for (auto it = limbo_.begin(); it != limbo_.end();) {
      if (it->dst == rank) {
        it = limbo_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (rank == rank_) {
    // Our own mailbox: clear what arrived and latch so frames the
    // receiver thread delivers later are discarded too.
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_self_ = true;
    q_.clear();
  }
}

void SocketComm::interrupt(int rank) {
  if (rank == rank_) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      wake_pending_ = true;  // latch: idempotent, never lost
    }
    cv_.notify_all();
    return;
  }
  (void)write_frame(rank, kInterrupt, 0, rank_, 0, 0, nullptr, 0, -1, -1);
}

void SocketComm::parse_frames(int peer, std::vector<std::byte>& buf) {
  std::size_t off = 0;
  while (buf.size() - off >= kFrameHeaderBytes) {
    const std::byte* h = buf.data() + off;
    const std::uint32_t kind = wire::get_u32(h);
    const std::uint32_t flags = wire::get_u32(h + 4);
    const int source = wire::get_i32(h + 8);
    const int tag = wire::get_i32(h + 12);
    const int meta = wire::get_i32(h + 16);
    const std::size_t len = static_cast<std::size_t>(wire::get_u64(h + 20));
    const long long seq = wire::get_i64(h + 28);
    const long long ack = wire::get_i64(h + 36);
    const std::uint32_t epoch = wire::get_u32(h + 44);
    if (buf.size() - off < kFrameHeaderBytes + len) break;  // partial frame
    const std::byte* body = h + kFrameHeaderBytes;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    switch (kind) {
      case kData: {
        // Pooled receive buffer: the payload is copied off the stream
        // buffer into a fresh PacketPool allocation the channels adopt.
        Packet p = Packet::make(len, meta);
        if (len > 0) std::memcpy(p.bytes(), body, len);
        (void)local_enqueue(Message{source, tag, meta, seq, ack,
                                    (flags & 1u) != 0, std::move(p), epoch});
        break;
      }
      case kBarrier: {
        {
          std::lock_guard<std::mutex> lock(bmu_);
          if (seq > barrier_seen_[peer]) barrier_seen_[peer] = seq;
        }
        bcv_.notify_all();
        break;
      }
      case kInterrupt: {
        {
          std::lock_guard<std::mutex> lock(mu_);
          wake_pending_ = true;
        }
        cv_.notify_all();
        break;
      }
      default:
        PQR_ASSERT(false, "SocketComm: unknown frame kind " +
                              std::to_string(kind) + " from rank " +
                              std::to_string(peer));
    }
    off += kFrameHeaderBytes + len;
  }
  if (off > 0) buf.erase(buf.begin(), buf.begin() + static_cast<long>(off));
}

void SocketComm::receiver_loop() {
  std::vector<std::vector<std::byte>> bufs(size());
  std::vector<char> dead(size(), 0);
  // The receiver's own view of each peer fd. When install_rejoin swaps a
  // peer's fd, the receiver — the only thread that might still be polling
  // the old one — closes the replaced fd itself at the next loop top and
  // discards the dead incarnation's partial stream bytes.
  std::vector<int> cur(size(), -1);
  for (int r = 0; r < size(); ++r) {
    cur[r] = peer_fds_[r].load(std::memory_order_acquire);
  }
  std::vector<std::byte> chunk(64 * 1024);
  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<pollfd> pfds;
    std::vector<int> owners;
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      const int fd = peer_fds_[r].load(std::memory_order_acquire);
      if (fd != cur[r]) {  // a replacement rejoined on a fresh socket
        if (cur[r] >= 0) ::close(cur[r]);
        cur[r] = fd;
        bufs[r].clear();  // partial frame bytes of the dead incarnation
        dead[r] = 0;
      }
      if (fd < 0 || dead[r] != 0) continue;
      pfds.push_back({fd, POLLIN, 0});
      owners.push_back(r);
    }
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    const int n = ::poll(pfds.data(), pfds.size(), /*ms=*/50);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // polling is unrecoverable; shutdown will reap us
    }
    if (n == 0) continue;
    for (std::size_t i = 0; i + 1 < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int peer = owners[i];
      if (pfds[i].fd != cur[peer]) continue;  // swapped mid-iteration
      const ssize_t k =
          ::recv(pfds[i].fd, chunk.data(), chunk.size(), MSG_DONTWAIT);
      if (k > 0) {
        bufs[peer].insert(bufs[peer].end(), chunk.data(), chunk.data() + k);
        parse_frames(peer, bufs[peer]);
      } else if (k == 0 || (k < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                            errno != EINTR)) {
        dead[peer] = 1;  // peer process exited; normal during teardown
        peer_down_[peer].store(true, std::memory_order_release);
      }
    }
    if ((pfds.back().revents & POLLIN) != 0) {
      char b;
      (void)!::read(wake_pipe_[0], &b, 1);
    }
  }
  // A swap the loop never got to reconcile would leak the replaced fd.
  for (int r = 0; r < size(); ++r) {
    if (cur[r] >= 0 && cur[r] != peer_fds_[r].load(std::memory_order_acquire)) {
      ::close(cur[r]);
    }
  }
}

}  // namespace pulsarqr::prt::net
