// Registry of the transport's reserved tag space.
//
// Application channel tags are assigned from 0 upward, independently per
// (source, destination) rank pair (paper: tag routing numbered per pair).
// The transport reserves the negative tags below for protocol traffic;
// before this registry existed each reserved value lived at its point of
// use, and nothing stopped user code from passing a negative tag that
// aliased ack or aggregate traffic straight through the proxy. Every
// send-side entry point (Comm::isend, Reliable::send, FrameStager::add)
// now validates against this table, so a collision is a named error at
// send time instead of a mis-routed frame.
#pragma once

#include <string>

#include "common/error.hpp"

namespace pulsarqr::prt::net {

/// Tag of a pure (non-piggybacked) ack frame emitted by the Reliable
/// protocol: empty payload, never sequenced, consumed by the peer endpoint
/// and never routed to a channel.
constexpr int kPureAckTag = -1;

/// Tag of an aggregate wire frame: one physical message carrying several
/// application frames to the same destination rank, gathered by the
/// sending proxy and split back by the receiving one (see FrameStager /
/// FrameCursor in transport.hpp).
constexpr int kAggregateTag = -2;

/// Application channel tags are numbered from here upward.
constexpr int kFirstUserTag = 0;

constexpr bool is_reserved_tag(int tag) {
  return tag == kPureAckTag || tag == kAggregateTag;
}

/// Name of a reserved tag's owner, or nullptr for a non-reserved value.
constexpr const char* reserved_tag_name(int tag) {
  switch (tag) {
    case kPureAckTag: return "reliable-protocol pure ack";
    case kAggregateTag: return "coalesced aggregate";
    default: return nullptr;
  }
}

/// Validate a tag supplied for application (channel) traffic: it must sit
/// in the user tag space. Throws pulsarqr::Error naming the reserved owner
/// (or just the offending value) otherwise.
inline void require_user_tag(int tag, const char* where) {
  if (tag >= kFirstUserTag) return;
  const char* owner = reserved_tag_name(tag);
  throw Error(std::string(where) + ": tag " + std::to_string(tag) +
              (owner != nullptr
                   ? std::string(" is reserved for ") + owner + " traffic"
                   : " is negative; application tags are numbered from " +
                         std::to_string(kFirstUserTag)));
}

}  // namespace pulsarqr::prt::net
