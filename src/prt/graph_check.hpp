// Static analysis of a constructed (not yet running) VSA graph.
//
// The VSA programming model makes correctness hinge on invariants the
// runtime itself never checks: every input channel must eventually receive
// as many packets as its VDP will pop, every declared slot must be wired,
// and no set of initially-enabled empty channels may form a cycle. Today a
// mis-wired tree only surfaces as a watchdog abort after the full timeout;
// GraphCheck proves (or refutes) well-formedness before the first firing.
//
// Checks performed:
//   * wiring    — declared output slots never connected, declared input
//                 slots neither connected nor fed, duplicate producers on
//                 one input slot, duplicate connections from one output
//                 slot, unknown endpoint tuples, out-of-range slots;
//   * blocked   — VDPs with inputs that are all unconnected, or whose
//                 input channels all start disabled (permanently un-ready:
//                 only a VDP's own firing code can enable its inputs);
//   * balance   — feed counts and declared per-slot production totals are
//                 propagated through the graph; a channel that receives
//                 fewer packets than its consumer's firing counter demands
//                 is starvation (guaranteed watchdog deadlock), more is a
//                 packet leak (residual packets after the run);
//   * cycles    — a strongly connected component of initially-enabled,
//                 initially-empty channels can never fire (each member
//                 waits on another: certain deadlock);
//   * capacity  — fed packets larger than the channel's max_bytes;
//   * reachability — every VDP must be reachable from some source (a
//                 zero-input VDP or a fed channel);
//   * flow      — symbolic per-channel occupancy bounds from the declared
//                 packet balance: every channel's peak resident packets
//                 (all producer output delivered before any pop) and
//                 end-of-run residue are computed and reported in
//                 GraphReport::flows. Against a declared capacity this
//                 yields two errors: a feed that prefills past its own
//                 bound (overflow at t=0), and a bounded-buffer deadlock —
//                 a producer that may stall on a full bounded channel
//                 while, under some firing schedule, the consumer's own
//                 progress depends (through other channels) on that very
//                 producer. The deadlock check is existential over firing
//                 schedules: a flagged graph has at least one schedule
//                 that deadlocks (uniform-rate graphs with adequate bounds
//                 are never flagged, by the marked-graph token-count
//                 invariant), so treat it like the other errors — fix the
//                 bound or the declared flow, or opt out via
//                 Config::graph_check for graphs whose schedule provably
//                 avoids it.
//
// Production totals default to one packet per output slot per firing
// (`outputs_per_fire` on add_vdp scales all slots); consumption defaults
// to one packet per input slot per firing. Builders whose VDPs push or
// pop non-uniformly declare exact lifetime totals with
// Vsa::declare_output_packets / Vsa::declare_input_packets.
#pragma once

#include <string>
#include <vector>

#include "prt/tuple.hpp"

namespace pulsarqr::prt {

class Vsa;
class Vdp;

enum class Severity { Warning, Error };

enum class CheckKind {
  UnknownVdp,         ///< connect/feed endpoint names no registered VDP
  BadSlot,            ///< slot index outside the VDP's declared range
  DanglingOutput,     ///< declared output slot with no destination
  UnfedInput,         ///< declared input slot neither connected nor fed
  DuplicateProducer,  ///< two producers (connects/feeds) on one slot
  BlockedVdp,         ///< all inputs unconnected or all start disabled
  Starvation,         ///< channel receives fewer packets than popped
  PacketLeak,         ///< channel receives more packets than popped
  EnabledCycle,       ///< cycle of enabled empty channels: sure deadlock
  OversizeFeed,       ///< fed packet exceeds the channel's max_bytes
  Unreachable,        ///< no path from any source reaches the VDP
  CapacityOverflow,   ///< feed prefill or single-firing burst > capacity
  CapacityDeadlock,   ///< bounded channel can stall its producer in a cycle
};

const char* to_string(CheckKind kind);

/// One finding: severity, kind, the VDP it anchors to, the slot (or -1
/// when the finding is not slot-specific) and a human-readable message
/// that already embeds tuple and slot.
struct Diagnostic {
  Severity severity = Severity::Error;
  CheckKind kind = CheckKind::UnknownVdp;
  Tuple vdp;
  int slot = -1;
  std::string message;
};

/// Symbolic occupancy bounds of one channel, derived from the declared
/// packet balance (flow analysis). `peak_packets` is the worst case over
/// all firing interleavings — every packet the producer (or feed) will
/// ever deliver resident before the consumer pops one; `resident_end` is
/// the guaranteed end-of-run residue (delivered minus consumed, clamped
/// at zero). Both are exact under the declared totals, not estimates.
struct ChannelFlow {
  Tuple src;            ///< producer VDP; meaningless when from_feed
  int src_slot = -1;    ///< producer output slot; -1 for a feed
  Tuple dst;
  int dst_slot = -1;
  bool from_feed = false;
  long long fed = 0;        ///< packets prefilled by feeds
  long long delivered = 0;  ///< lifetime deliveries: fed + producer total
  long long consumed = 0;   ///< lifetime pops by the consumer
  long long peak_packets = 0;
  long long resident_end = 0;
  int capacity = 0;         ///< declared bound; 0 = unbounded
  std::size_t max_bytes = 0;
  long long peak_bytes() const {
    return peak_packets * static_cast<long long>(max_bytes);
  }
};

struct GraphReport {
  std::vector<Diagnostic> diagnostics;
  /// Per-channel occupancy bounds (one entry per connect or feed whose
  /// endpoints resolved), in declaration order.
  std::vector<ChannelFlow> flows;

  int errors() const;
  int warnings() const;
  bool ok() const { return errors() == 0; }

  /// Multi-line rendering, one "severity kind: message" line per finding.
  std::string to_string() const;

  /// Machine-readable rendering for CI gating: {"errors": N, "warnings":
  /// N, "diagnostics": [{severity, kind, vdp, slot, message}...],
  /// "flows": [{src, src_slot, dst, dst_slot, delivered, consumed,
  /// peak_packets, resident_end, capacity, max_bytes}...]}.
  std::string to_json() const;
};

class GraphCheck {
 public:
  /// Analyze a built-but-not-run VSA. Does not modify the VSA and may be
  /// called any number of times before run().
  static GraphReport check(const Vsa& vsa);
};

/// Formatter shared by GraphCheck and the runtime watchdog: per-slot input
/// state of a wired VDP, e.g. "[0:empty 1:off(3) 2:destroyed]". Only
/// meaningful once channels exist (inside run()).
std::string describe_input_slots(const Vdp& vdp);

}  // namespace pulsarqr::prt
