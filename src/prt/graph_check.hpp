// Static analysis of a constructed (not yet running) VSA graph.
//
// The VSA programming model makes correctness hinge on invariants the
// runtime itself never checks: every input channel must eventually receive
// as many packets as its VDP will pop, every declared slot must be wired,
// and no set of initially-enabled empty channels may form a cycle. Today a
// mis-wired tree only surfaces as a watchdog abort after the full timeout;
// GraphCheck proves (or refutes) well-formedness before the first firing.
//
// Checks performed:
//   * wiring    — declared output slots never connected, declared input
//                 slots neither connected nor fed, duplicate producers on
//                 one input slot, duplicate connections from one output
//                 slot, unknown endpoint tuples, out-of-range slots;
//   * blocked   — VDPs with inputs that are all unconnected, or whose
//                 input channels all start disabled (permanently un-ready:
//                 only a VDP's own firing code can enable its inputs);
//   * balance   — feed counts and declared per-slot production totals are
//                 propagated through the graph; a channel that receives
//                 fewer packets than its consumer's firing counter demands
//                 is starvation (guaranteed watchdog deadlock), more is a
//                 packet leak (residual packets after the run);
//   * cycles    — a strongly connected component of initially-enabled,
//                 initially-empty channels can never fire (each member
//                 waits on another: certain deadlock);
//   * capacity  — fed packets larger than the channel's max_bytes;
//   * reachability — every VDP must be reachable from some source (a
//                 zero-input VDP or a fed channel).
//
// Production totals default to one packet per output slot per firing
// (`outputs_per_fire` on add_vdp scales all slots); consumption defaults
// to one packet per input slot per firing. Builders whose VDPs push or
// pop non-uniformly declare exact lifetime totals with
// Vsa::declare_output_packets / Vsa::declare_input_packets.
#pragma once

#include <string>
#include <vector>

#include "prt/tuple.hpp"

namespace pulsarqr::prt {

class Vsa;
class Vdp;

enum class Severity { Warning, Error };

enum class CheckKind {
  UnknownVdp,         ///< connect/feed endpoint names no registered VDP
  BadSlot,            ///< slot index outside the VDP's declared range
  DanglingOutput,     ///< declared output slot with no destination
  UnfedInput,         ///< declared input slot neither connected nor fed
  DuplicateProducer,  ///< two producers (connects/feeds) on one slot
  BlockedVdp,         ///< all inputs unconnected or all start disabled
  Starvation,         ///< channel receives fewer packets than popped
  PacketLeak,         ///< channel receives more packets than popped
  EnabledCycle,       ///< cycle of enabled empty channels: sure deadlock
  OversizeFeed,       ///< fed packet exceeds the channel's max_bytes
  Unreachable,        ///< no path from any source reaches the VDP
};

const char* to_string(CheckKind kind);

/// One finding: severity, kind, the VDP it anchors to, the slot (or -1
/// when the finding is not slot-specific) and a human-readable message
/// that already embeds tuple and slot.
struct Diagnostic {
  Severity severity = Severity::Error;
  CheckKind kind = CheckKind::UnknownVdp;
  Tuple vdp;
  int slot = -1;
  std::string message;
};

struct GraphReport {
  std::vector<Diagnostic> diagnostics;

  int errors() const;
  int warnings() const;
  bool ok() const { return errors() == 0; }

  /// Multi-line rendering, one "severity kind: message" line per finding.
  std::string to_string() const;
};

class GraphCheck {
 public:
  /// Analyze a built-but-not-run VSA. Does not modify the VSA and may be
  /// called any number of times before run().
  static GraphReport check(const Vsa& vsa);
};

/// Formatter shared by GraphCheck and the runtime watchdog: per-slot input
/// state of a wired VDP, e.g. "[0:empty 1:off(3) 2:destroyed]". Only
/// meaningful once channels exist (inside run()).
std::string describe_input_slots(const Vdp& vdp);

}  // namespace pulsarqr::prt
