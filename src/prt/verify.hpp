// Bounded explicit-state model checking of the net::Reliable protocol.
//
// The chaos tests (chaos_test.cpp) sample the fault space: a seeded
// FaultPlan drops/duplicates/reorders a random subset of frames and the
// run either delivers everything or it does not. Sampling finds bugs with
// probability; it never proves their absence. This module instead
// *enumerates* every interleaving of a small closed system — one sender
// endpoint, one receiver endpoint, an adversarial network — up to bounded
// budgets, and asserts the protocol's contract on every reachable state:
//
//   * safety   — frames are delivered to the application exactly once and
//                in send order (tag/meta/payload all verified), and the
//                ack channel never delivers data;
//   * liveness — every maximal execution (no enabled action left) ends
//                with all sent frames delivered, and no execution exceeds
//                a depth bound (livelock guard).
//
// The model drives the REAL net::Comm and net::Reliable classes, not an
// abstraction of them: frames an endpoint emits land in an in-flight
// queue from which the checker adversarially picks what to deliver, drop
// or duplicate next (delivery from any queue position = arbitrary
// reordering). Time is modelled as an explicit "tick" action that calls
// Reliable::poll with a clock jump past every backoff deadline, so each
// tick retransmits everything unacked; ticks are enabled only when the
// network is empty (pure timeout recovery) and are budgeted so a fault on
// every retransmission still leaves one clean round.
//
// States are deduplicated through Reliable::state_fingerprint plus the
// network contents (as a multiset — queue permutations are equivalent
// because delivery order is adversarial anyway), which keeps the search
// finite and small: window 3 / 2 faults is a few thousand distinct states.
#pragma once

#include <string>
#include <vector>

namespace pulsarqr::prt::verify {

struct ReliableModelOptions {
  int window = 3;      ///< application frames sent (seq space explored)
  int max_faults = 2;  ///< total drop + duplicate injections per execution
  /// Timeout-recovery rounds per execution; -1 = max_faults + 2 (enough
  /// for a fault on every retransmission round plus one clean round).
  int max_ticks = -1;
  int max_depth = 128;  ///< per-execution action bound (livelock guard)
  long long max_states = 4'000'000;  ///< distinct-state valve
};

struct ReliableModelResult {
  long long states = 0;       ///< distinct states explored
  long long transitions = 0;  ///< state-graph edges expanded
  long long executions = 0;   ///< maximal (quiescent) executions reached
  int depth = 0;              ///< deepest state, in actions from the root
  bool truncated = false;     ///< hit max_states: exploration incomplete
  /// Each entry names the violated assertion and the exact action
  /// sequence reproducing it. Empty = every assertion held everywhere.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty() && !truncated; }
  std::string to_string() const;
};

/// Exhaustively explore the bounded protocol model. Deterministic: same
/// options, same result. Window 3 / 2 faults completes in well under a
/// second; cost grows steeply (exponentially) with both budgets.
ReliableModelResult check_reliable(const ReliableModelOptions& opt = {});

}  // namespace pulsarqr::prt::verify
