// Explicit little-endian wire codec shared by every byte format the
// transport puts on (or prepares for) a wire: the aggregate frame headers
// of FrameStager/FrameCursor, the socket transport's frame headers, and
// the control-plane blobs (stats epilogues, failure reports, result
// deposits) exchanged between node processes.
//
// Every value is written byte-by-byte in little-endian order, never by
// memcpy of a host integer, so two heterogeneous hosts (or a host and a
// recorded golden frame) always agree on the encoding. Signed values
// travel as their two's-complement unsigned image; doubles as their
// IEEE-754 bit pattern.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace pulsarqr::prt::net::wire {

inline void put_u32(std::byte* p, std::uint32_t v) {
  p[0] = static_cast<std::byte>(v & 0xff);
  p[1] = static_cast<std::byte>((v >> 8) & 0xff);
  p[2] = static_cast<std::byte>((v >> 16) & 0xff);
  p[3] = static_cast<std::byte>((v >> 24) & 0xff);
}

inline void put_u64(std::byte* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v & 0xffffffffULL));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

inline void put_i32(std::byte* p, std::int32_t v) {
  put_u32(p, static_cast<std::uint32_t>(v));
}

inline void put_i64(std::byte* p, std::int64_t v) {
  put_u64(p, static_cast<std::uint64_t>(v));
}

inline void put_f64(std::byte* p, double v) {
  put_u64(p, std::bit_cast<std::uint64_t>(v));
}

inline std::uint32_t get_u32(const std::byte* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t get_u64(const std::byte* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

inline std::int32_t get_i32(const std::byte* p) {
  return static_cast<std::int32_t>(get_u32(p));
}

inline std::int64_t get_i64(const std::byte* p) {
  return static_cast<std::int64_t>(get_u64(p));
}

inline double get_f64(const std::byte* p) {
  return std::bit_cast<double>(get_u64(p));
}

/// Control-plane rejoin handshake of the socket transport's crash
/// recovery: 'R' {rank i32, epoch u32}, sent parent -> survivor with the
/// replacement's fresh socket descriptor riding the first byte via
/// SCM_RIGHTS. Both ends encode/decode through this codec so the layout
/// lives in exactly one place.
inline constexpr std::size_t kRejoinHdrBytes = 9;
inline constexpr std::size_t kRejoinBodyBytes = kRejoinHdrBytes - 1;

struct RejoinHdr {
  std::int32_t rank;     ///< rank that was respawned
  std::uint32_t epoch;   ///< its new incarnation number
};

inline void put_rejoin_hdr(std::byte* p, const RejoinHdr& h) {
  p[0] = static_cast<std::byte>('R');
  put_i32(p + 1, h.rank);
  put_u32(p + 5, h.epoch);
}

/// Decode the body bytes that follow the already-consumed 'R' tag.
inline RejoinHdr get_rejoin_body(const std::byte* p) {
  return RejoinHdr{get_i32(p), get_u32(p + 4)};
}

/// Append-only little-endian blob builder for variable-length payloads
/// (control-plane messages, serialized deposits and reports).
class Blob {
 public:
  void u32(std::uint32_t v) { grow(4, [&](std::byte* p) { put_u32(p, v); }); }
  void u64(std::uint64_t v) { grow(8, [&](std::byte* p) { put_u64(p, v); }); }
  void i32(std::int32_t v) { grow(4, [&](std::byte* p) { put_i32(p, v); }); }
  void i64(std::int64_t v) { grow(8, [&](std::byte* p) { put_i64(p, v); }); }
  void f64(double v) { grow(8, [&](std::byte* p) { put_f64(p, v); }); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(reinterpret_cast<const std::byte*>(s.data()), s.size());
  }
  void bytes(const std::byte* p, std::size_t n) {
    buf_.insert(buf_.end(), p, p + n);
  }
  /// Column-major doubles of a matrix view, each as its LE bit pattern.
  void f64s(const double* p, std::size_t n) {
    const std::size_t at = buf_.size();
    buf_.resize(at + 8 * n);
    for (std::size_t i = 0; i < n; ++i) put_f64(buf_.data() + at + 8 * i, p[i]);
  }

  const std::byte* data() const { return buf_.data(); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <class Fn>
  void grow(std::size_t n, Fn write) {
    const std::size_t at = buf_.size();
    buf_.resize(at + n);
    write(buf_.data() + at);
  }
  std::vector<std::byte> buf_;
};

/// Sequential reader over a Blob's bytes; throws past-the-end reads
/// instead of walking off the buffer (a truncated control message is a
/// peer bug or a dead peer, either way a named error beats UB).
class BlobReader {
 public:
  BlobReader(const std::byte* p, std::size_t n) : p_(p), n_(n) {}

  std::uint32_t u32() { return get_u32(take(4)); }
  std::uint64_t u64() { return get_u64(take(8)); }
  std::int32_t i32() { return get_i32(take(4)); }
  std::int64_t i64() { return get_i64(take(8)); }
  double f64() { return get_f64(take(8)); }
  std::string str() {
    const std::size_t len = static_cast<std::size_t>(u64());
    const std::byte* p = take(len);
    return std::string(reinterpret_cast<const char*>(p), len);
  }
  const std::byte* take(std::size_t n) {
    require(off_ + n <= n_, "wire::BlobReader: truncated blob");
    const std::byte* p = p_ + off_;
    off_ += n;
    return p;
  }
  bool done() const { return off_ == n_; }
  std::size_t remaining() const { return n_ - off_; }

 private:
  const std::byte* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

}  // namespace pulsarqr::prt::net::wire
