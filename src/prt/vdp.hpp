// Virtual Data Processor (Section IV-A): executable code + read/write
// persistent local store + input/output channels + a firing counter.
#pragma once

#include <any>
#include <atomic>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "prt/channel.hpp"
#include "prt/tuple.hpp"

namespace pulsarqr::prt {

class Vsa;
struct VdpContext;

using VdpFn = std::function<void(VdpContext&)>;

/// Where a packet pushed to an output slot goes: directly into a local
/// channel, or to the proxy addressed by (destination node, tag).
struct OutputRef {
  Channel* local = nullptr;
  int dst_node = -1;
  int tag = -1;
  std::size_t max_bytes = 0;
  bool connected = false;
};

class Vdp {
 public:
  Vdp(Tuple tuple, int counter, VdpFn fn, int num_inputs, int num_outputs,
      int color, int outputs_per_fire = 1)
      : tuple_(std::move(tuple)),
        counter_(counter),
        fn_(std::move(fn)),
        color_(color),
        outputs_per_fire_(outputs_per_fire),
        inputs_(num_inputs),
        outputs_(num_outputs),
        declared_in_(num_inputs, -1),
        declared_out_(num_outputs, -1) {}

  const Tuple& tuple() const { return tuple_; }
  int color() const { return color_; }
  int counter() const { return counter_; }
  bool dead() const { return dead_.load(std::memory_order_acquire); }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }

  /// Packet-balance declarations used by prt::GraphCheck: the total number
  /// of packets this VDP will push on an output slot / pop from an input
  /// slot over its whole lifetime. Undeclared slots default to one packet
  /// per firing (scaled by the add_vdp outputs_per_fire hint for outputs).
  long long expected_output_packets(int slot) const {
    const long long d = declared_out_[slot];
    return d >= 0 ? d
                  : static_cast<long long>(counter_) * outputs_per_fire_;
  }
  long long expected_input_packets(int slot) const {
    const long long d = declared_in_[slot];
    return d >= 0 ? d : counter_;
  }

  /// The wired input channel of a slot; nullptr until run() wires the
  /// graph (used by the stuck-VDP diagnostic formatter).
  const Channel* input_channel(int slot) const { return inputs_[slot].get(); }

  /// Firing rule: every enabled input channel holds a packet, and at least
  /// one input is enabled (a VDP declared with zero inputs is always ready
  /// — a source). All inputs disabled => blocked. Additionally — only when
  /// the graph declares channel capacities — every bounded LOCAL output
  /// channel must have room (backpressure: the producer stalls instead of
  /// overrunning the consumer's declared buffer; Channel::pop wakes it
  /// when space frees). Inter-node outputs are not gated: the proxy pair
  /// decouples the producer from the remote consumer's buffer, which is
  /// exactly the over-capacity risk GraphCheck's flow analysis reports
  /// statically.
  bool ready() const {
    if (gate_outputs_) {
      for (const OutputRef& out : outputs_) {
        if (out.local != nullptr && !out.local->has_room()) return false;
      }
    }
    if (inputs_.empty()) return true;
    bool any_enabled = false;
    for (const auto& ch : inputs_) {
      if (ch == nullptr || !ch->enabled()) continue;
      any_enabled = true;
      if (ch->size() == 0) return false;
    }
    return any_enabled;
  }

 private:
  friend class Vsa;
  friend struct VdpContext;

  Tuple tuple_;
  int counter_;
  VdpFn fn_;
  int color_;
  int outputs_per_fire_;
  std::vector<std::unique_ptr<Channel>> inputs_;  ///< owned by destination
  std::vector<OutputRef> outputs_;
  /// True iff some local output channel is bounded — set once during
  /// wiring so the common (unbounded) graph pays one branch in ready().
  bool gate_outputs_ = false;
  std::vector<long long> declared_in_;   ///< -1 = default (see accessors)
  std::vector<long long> declared_out_;
  std::any local_;
  /// Written by the worker holding the firing claim, read by any worker
  /// scanning for candidates (work stealing) — hence atomic.
  std::atomic<bool> dead_{false};
  int global_thread_ = -1;  ///< assigned by the mapping at run()
  /// Claim flag for the work-stealing executor: at most one worker fires
  /// a VDP at a time.
  std::atomic<bool> running_{false};
};

/// The interface handed to a VDP's function at each firing. Mirrors the
/// paper's cycle (Figure 3): pop inputs (or forward them first — by-pass),
/// invoke kernels, push outputs; plus dynamic channel control.
struct VdpContext {
  Vdp& vdp;
  Vsa& vsa;
  int node;           ///< node executing this firing
  int global_thread;  ///< global worker id

  const Tuple& tuple() const { return vdp.tuple_; }
  /// Remaining firings including the current one.
  int counter() const { return vdp.counter_; }

  /// Consumer side of the channel's SPSC contract: only the firing code
  /// of the destination VDP pops, and firings are serialized (worker
  /// binding or the stealing claim), so pop needs no lock.
  Packet pop(int slot) {
    PQR_ASSERT(slot >= 0 && slot < vdp.num_inputs() &&
                   vdp.inputs_[slot] != nullptr,
               "pop: bad input slot");
    return vdp.inputs_[slot]->pop();
  }

  /// Number of packets currently waiting on an input slot.
  int input_size(int slot) const {
    PQR_ASSERT(slot >= 0 && slot < vdp.num_inputs() &&
                   vdp.inputs_[slot] != nullptr,
               "input_size: bad input slot");
    return vdp.inputs_[slot]->size();
  }

  void push(int slot, Packet p);  // defined in vsa.cpp (needs routing)

  void enable_input(int slot) { set_input_enabled(slot, true); }
  void disable_input(int slot) { set_input_enabled(slot, false); }

  /// Destroy an input channel (paper: channels can be destroyed during
  /// execution): queued packets are dropped, later pushes are ignored and
  /// the slot no longer participates in the firing rule. A consumer-side
  /// operation like pop(): Channel::destroy() handles a concurrent
  /// producer push, but must never race with pop() itself — calling it
  /// from the owning VDP's firing code (as here) guarantees that.
  void destroy_input(int slot) {
    PQR_ASSERT(slot >= 0 && slot < vdp.num_inputs() &&
                   vdp.inputs_[slot] != nullptr,
               "destroy_input: bad input slot");
    vdp.inputs_[slot]->destroy();
  }

  /// Persistent local store, constructed on first access and destroyed
  /// with the VDP (the paper's size_loc local storage, but typed).
  template <class T, class... Args>
  T& local(Args&&... args) {
    if (!vdp.local_.has_value()) {
      vdp.local_.emplace<T>(std::forward<Args>(args)...);
    }
    return *std::any_cast<T>(&vdp.local_);
  }

  /// Read-only global parameters shared by all VDPs (set via
  /// Vsa::set_global). T must match the type that was set.
  template <class T>
  T& global() const;  // defined after Vsa (vsa.hpp)

 private:
  void set_input_enabled(int slot, bool e) {
    PQR_ASSERT(slot >= 0 && slot < vdp.num_inputs() &&
                   vdp.inputs_[slot] != nullptr,
               "enable/disable: bad input slot");
    vdp.inputs_[slot]->set_enabled(e);
  }
};

}  // namespace pulsarqr::prt
