// Out-of-process transport backend: Unix-domain stream sockets between
// one real OS process per node (the paper's §IV-B MPI process model made
// concrete). One SocketComm instance lives in each node process and
// implements the same six-call Comm surface as the in-process
// MailboxComm; the Vsa run path forks the node processes and hands each
// one its row of a pre-opened socketpair mesh.
//
// Wire format — one frame per message, fixed 48-byte little-endian
// header (wire.hpp codec, never host-endian memcpy) followed by the
// payload bytes:
//
//   offset  field         encoding
//   0       kind          u32   0 = data, 1 = barrier, 2 = interrupt
//   4       flags         u32   bit 0 = is_ack
//   8       source        i32   sending rank
//   12      tag           i32   Message::tag (reserved tags included)
//   16      meta          i32   Message::meta
//   20      payload_len   u64   bytes following the header
//   28      seq           i64   Reliable sequence number (-1 = none)
//   36      ack           i64   cumulative ack (-1 = none)
//   44      epoch         u32   sender incarnation (crash recovery)
//
// Every frame is stamped with the sender's incarnation number (0 for the
// original process of each rank, bumped per crash respawn); receivers
// track the expected incarnation per peer and the proxy fences data
// frames from dead incarnations — a stale cumulative ack surviving in a
// socket buffer across a rejoin would otherwise trim frames the replay
// path just requeued.
//
// Data frames carry the full Message header, so the Reliable layer and
// the proxy's aggregate split run unchanged over either backend. Barrier
// frames carry the sender's barrier generation in `seq` (dissemination
// barrier: everyone sends its generation to everyone, then waits until
// it has seen its own generation from every peer). Interrupt frames wake
// a peer blocked in recv_wait.
//
// Fault injection happens on the SEND side, before any bytes hit the
// wire, using the same FaultOracle pure-hash decisions as MailboxComm —
// a chaos seed therefore replays the identical drop/dup/delay/reorder
// schedule on both backends. Delayed/reordered messages wait in a
// sender-side limbo and are flushed opportunistically by the sending
// process's own transport calls. Barrier and interrupt frames bypass the
// fault plan (they are control, not data).
#pragma once

#include <thread>

#include "prt/transport.hpp"

namespace pulsarqr::prt::net {

class SocketComm : public Comm {
 public:
  /// Frame kinds on the wire (header field 0).
  enum : std::uint32_t { kData = 0, kBarrier = 1, kInterrupt = 2 };
  static constexpr std::size_t kFrameHeaderBytes = 48;

  /// Build the full nranks x nranks socketpair mesh (AF_UNIX,
  /// SOCK_STREAM). mesh[a][b] is the fd rank `a` uses to talk to rank
  /// `b` (mesh[a][a] = -1); mesh[a][b] and mesh[b][a] are the two ends
  /// of one socketpair. Called by the parent BEFORE forking; each child
  /// keeps its own row (closing the rest) and the parent closes all.
  static std::vector<std::vector<int>> socketpair_mesh(int nranks);

  /// Take ownership of this rank's row of the mesh (peer_fds[rank] is
  /// ignored / may be -1). Starts the receiver thread. `epoch` is this
  /// process's incarnation (0 unless it is a crash respawn);
  /// `peer_epochs` the current incarnation of every peer at construction
  /// time (empty = all zero — no crash has happened yet).
  SocketComm(int nranks, int rank, std::vector<int> peer_fds,
             std::uint32_t epoch = 0,
             std::vector<std::uint32_t> peer_epochs = {});
  ~SocketComm() override;

  int rank() const { return rank_; }
  std::uint32_t epoch() const { return epoch_; }

  // ---- crash recovery: peer rejoin --------------------------------------
  //
  // When a peer's process dies and the parent forks a replacement, each
  // survivor receives (over its control socketpair) the replacement's
  // rank, new incarnation number and a fresh socket fd. The control
  // thread queues the rejoin here; the node's proxy thread — the sole
  // owner of the Reliable endpoint — installs it, then resets/replays
  // the protocol state. Installation swaps the peer fd under the write
  // lock (the receiver thread closes the replaced fd itself and discards
  // its partial stream) and bumps the expected peer incarnation so stale
  // frames from the dead incarnation are fenced at the proxy's drain.

  struct Rejoin {
    int rank = -1;
    int fd = -1;
    std::uint32_t epoch = 0;
  };

  /// Queue a rejoin (any thread).
  void rejoin_peer(int rank, int fd, std::uint32_t epoch);
  /// Drain queued rejoins (proxy thread).
  std::vector<Rejoin> take_rejoins();
  /// Swap in the replacement's fd + incarnation (proxy thread). The old
  /// fd, if any, stays open until the receiver thread reconciles.
  void install_rejoin(const Rejoin& rj);

  /// Expected incarnation of a peer (frames below it are stale).
  std::uint32_t peer_epoch(int rank) const {
    return peer_epoch_[rank].load(std::memory_order_acquire);
  }
  /// False while the peer's process is known dead (EOF / write failure
  /// seen) and no replacement has rejoined yet — the Reliable layer's
  /// link-up probe, so retransmits idle instead of exhausting.
  bool peer_alive(int rank) const {
    return !peer_down_[rank].load(std::memory_order_acquire);
  }

  int isend(int src, int dst, int tag, const Packet& payload, int meta,
            long long seq = -1, long long ack = -1, bool is_ack = false,
            bool shared = false) override;
  std::optional<Message> try_recv(int rank) override;
  std::deque<Message> drain(int rank) override;
  std::optional<Message> recv_wait(int rank, int timeout_us) override;
  void barrier() override;
  void cancel(int rank) override;
  void interrupt(int rank) override;

  /// Frames of any kind accepted by the receiver thread — a liveness
  /// signal for the per-process watchdog (acks arriving while no local
  /// VDP fires still count as progress).
  long long frames_received() const {
    return frames_received_.load(std::memory_order_relaxed);
  }

 private:
  /// A message held back by the send-side fault plan.
  struct Limbo {
    std::chrono::steady_clock::time_point release;
    bool after_next = false;  ///< reorder: release on the next send to dst
    int dst = -1;
    Message m;
  };

  /// Serialize + write one data frame to dst (or deliver locally when
  /// dst == rank_). Returns false when the destination is unreachable
  /// (peer gone, mailbox cancelled) — the frame is silently dropped, as
  /// a real wire would; the Reliable layer repairs or reports it.
  bool transmit(int dst, const Message& m);
  bool write_frame(int dst, std::uint32_t kind, std::uint32_t flags,
                   int source, int tag, int meta, const std::byte* payload,
                   std::size_t len, long long seq, long long ack);
  /// Deliver one message into this process's own mailbox.
  bool local_enqueue(Message m);
  /// Transmit limbo messages whose release time has passed (any dst);
  /// returns the earliest release still pending.
  std::optional<std::chrono::steady_clock::time_point> flush_due_limbo();
  /// Transmit limbo messages held "until the next send" to dst.
  void flush_after_next(int dst);
  void receiver_loop();
  /// Parse and dispatch every complete frame at the front of a peer's
  /// receive buffer, compacting it afterwards.
  void parse_frames(int peer, std::vector<std::byte>& buf);

  int rank_;
  std::uint32_t epoch_ = 0;  ///< this process's incarnation, stamped on frames
  /// Owned; -1 for self. Atomic so the receiver thread can reconcile a
  /// rejoin-swapped fd without taking the write lock; writers load under
  /// wmu_[dst], which also serializes against install_rejoin's swap.
  std::vector<std::atomic<int>> peer_fds_;
  std::vector<std::atomic<std::uint32_t>> peer_epoch_;
  std::vector<std::atomic<bool>> peer_down_;
  std::vector<std::unique_ptr<std::mutex>> wmu_;  ///< per-peer write lock
  int wake_pipe_[2] = {-1, -1};  ///< receiver-thread shutdown nudge

  // Pending rejoins queued by the control thread for the proxy.
  std::mutex rjmu_;
  std::vector<Rejoin> rejoins_;

  // This process's own mailbox (the only receivable rank).
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> q_;
  bool wake_pending_ = false;   ///< latched interrupt (guarded by mu_)
  bool cancelled_self_ = false; ///< latched cancel of our own rank

  // Send-side fault limbo + per-destination cancel latches.
  std::mutex lmu_;
  std::vector<Limbo> limbo_;
  std::vector<char> cancelled_to_;

  // Dissemination-barrier state.
  std::mutex bmu_;
  std::condition_variable bcv_;
  std::uint64_t barrier_gen_ = 0;          ///< our own generation
  std::vector<long long> barrier_seen_;    ///< highest gen seen per peer

  std::atomic<long long> frames_received_{0};
  std::atomic<bool> stop_{false};
  std::thread receiver_;
};

}  // namespace pulsarqr::prt::net
