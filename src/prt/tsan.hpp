// ThreadSanitizer happens-before annotation layer.
//
// The runtime's two lock-free handoff protocols — the SPSC channel's node
// handoff (payload publication through the `next` release-store, node
// recycling through the `head_` release-store) and the packet pool's
// buffer circulation (thread magazine <-> central spill list) — already
// carry the happens-before edges TSan needs through their acquire/release
// atomics and mutexes. These macros restate those edges explicitly, for
// two reasons:
//
//   * documentation — the PULSARQR_TSAN_RELEASE/ACQUIRE pair at a handoff
//     names the exact address whose ownership crosses threads, which is
//     the invariant a reader (or a future refactor) must preserve;
//   * robustness — if an ordering is ever weakened to a fence-based
//     scheme (std::atomic_thread_fence is invisible to TSan), the
//     annotations keep the sanitizer's model sound instead of flooding
//     every test with false positives.
//
// Each annotation restates an edge the synchronization already creates;
// none invents one, so they can never mask a real race elsewhere. They
// compile to nothing unless PULSARQR_TSAN is defined (the CMake
// -DPULSARQR_SANITIZE=thread build defines it) and the TSan interface
// header is available.
#pragma once

#if defined(PULSARQR_TSAN) && defined(__has_include)
#if __has_include(<sanitizer/tsan_interface.h>)
#include <sanitizer/tsan_interface.h>
#define PULSARQR_TSAN_ACTIVE 1
#endif
#endif

#ifdef PULSARQR_TSAN_ACTIVE
/// The current thread releases ownership of the memory reachable from
/// `addr`: everything it wrote there is published to whichever thread
/// next acquires the same address.
#define PULSARQR_TSAN_RELEASE(addr) __tsan_release((void*)(addr))
/// The current thread acquires ownership of the memory reachable from
/// `addr`, pairing with the prior PULSARQR_TSAN_RELEASE on that address.
#define PULSARQR_TSAN_ACQUIRE(addr) __tsan_acquire((void*)(addr))
#else
#define PULSARQR_TSAN_RELEASE(addr) ((void)(addr))
#define PULSARQR_TSAN_ACQUIRE(addr) ((void)(addr))
#endif
