// Data packets flowing through VSA channels.
//
// A packet is a reference-counted byte buffer plus a small integer metadata
// word. Copying a packet shares the buffer — this is the zero-copy
// shared-memory aliasing the paper relies on for intra-node channels and
// for the by-pass (forward-before-use) pattern. Inter-node transport
// deep-copies the bytes, emulating separate address spaces.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>

#include "common/error.hpp"

namespace pulsarqr::prt {

class Packet {
 public:
  Packet() = default;

  /// Allocate an uninitialized packet of `bytes` bytes. The buffer comes
  /// from prt::PacketPool (recycled on last-reference release), so a
  /// warmed steady state performs no heap allocation here.
  static Packet make(std::size_t bytes, int meta = 0);

  /// Deep copy (used by the inter-node transport and by VDPs that must
  /// retain data past forwarding the original).
  Packet clone() const;

  bool empty() const { return data_ == nullptr; }
  std::size_t size() const { return size_; }
  int meta() const { return meta_; }
  void set_meta(int m) { meta_ = m; }

  /// Shrink the logical payload to `bytes` (<= size()). The underlying
  /// buffer keeps its full capacity and still returns to its pool size
  /// class; used by the proxy's frame coalescer to trim a staged wire
  /// buffer to the bytes actually gathered.
  void truncate(std::size_t bytes) {
    PQR_ASSERT(bytes <= size_, "truncate: cannot grow a packet");
    size_ = bytes;
  }

  std::byte* bytes() { return data_.get(); }
  const std::byte* bytes() const { return data_.get(); }

  /// Typed views of the payload; the payload is always max-aligned.
  double* doubles() { return reinterpret_cast<double*>(data_.get()); }
  const double* doubles() const {
    return reinterpret_cast<const double*>(data_.get());
  }
  std::size_t num_doubles() const { return size_ / sizeof(double); }

 private:
  Packet(std::shared_ptr<std::byte[]> d, std::size_t n, int meta)
      : data_(std::move(d)), size_(n), meta_(meta) {}

  std::shared_ptr<std::byte[]> data_;
  std::size_t size_ = 0;
  int meta_ = 0;
};

}  // namespace pulsarqr::prt
