#include "prt/transport.hpp"

#include <chrono>

namespace pulsarqr::prt::net {

Comm::Comm(int nranks) {
  require(nranks >= 1, "Comm: need at least one rank");
  boxes_.reserve(nranks);
  for (int r = 0; r < nranks; ++r) boxes_.push_back(std::make_unique<Mailbox>());
}

int Comm::isend(int src, int dst, int tag, const Packet& payload, int meta) {
  PQR_ASSERT(dst >= 0 && dst < size(), "isend: bad destination rank");
  Message m{src, tag, meta, payload.clone()};  // deep copy: address spaces
  auto& box = *boxes_[dst];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.q.push_back(std::move(m));
  }
  box.cv.notify_one();
  sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(static_cast<long long>(payload.size()),
                   std::memory_order_relaxed);
  return 0;  // request handle; completion is immediate
}

bool Comm::test(int /*request*/) const { return true; }

std::optional<Message> Comm::try_recv(int rank) {
  auto& box = *boxes_[rank];
  std::lock_guard<std::mutex> lock(box.mu);
  if (box.q.empty()) return std::nullopt;
  Message m = std::move(box.q.front());
  box.q.pop_front();
  return m;
}

std::deque<Message> Comm::drain(int rank) {
  auto& box = *boxes_[rank];
  std::deque<Message> out;
  std::lock_guard<std::mutex> lock(box.mu);
  out.swap(box.q);
  return out;
}

std::optional<Message> Comm::recv_wait(int rank, int timeout_us) {
  auto& box = *boxes_[rank];
  std::unique_lock<std::mutex> lock(box.mu);
  if (box.q.empty()) {
    box.cv.wait_for(lock, std::chrono::microseconds(timeout_us));
  }
  if (box.q.empty()) return std::nullopt;
  Message m = std::move(box.q.front());
  box.q.pop_front();
  return m;
}

void Comm::barrier() {
  std::unique_lock<std::mutex> lock(bmu_);
  const int gen = barrier_gen_;
  if (++barrier_count_ == size()) {
    barrier_count_ = 0;
    ++barrier_gen_;
    bcv_.notify_all();
  } else {
    bcv_.wait(lock, [&] { return barrier_gen_ != gen; });
  }
}

void Comm::cancel(int rank) {
  auto& box = *boxes_[rank];
  std::lock_guard<std::mutex> lock(box.mu);
  box.q.clear();
}

void Comm::interrupt(int rank) { boxes_[rank]->cv.notify_all(); }

}  // namespace pulsarqr::prt::net
