#include "prt/transport.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>

#include "prt/wire.hpp"

namespace pulsarqr::prt::net {

namespace {

using Clock = std::chrono::steady_clock;

/// splitmix64: the fault oracle. Statistically solid, trivially seedable,
/// and — unlike an engine with internal state — a pure function, so the
/// decision for message i of a stream never depends on which thread asked
/// first.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t stream_key(int src, int dst, int tag) {
  return splitmix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                     << 40) ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))
                     << 20) ^
                    static_cast<std::uint32_t>(tag));
}

/// Uniform [0,1) decision for the idx-th message of a stream, per fault
/// kind (`salt` keeps drop/dup/delay/reorder decisions independent).
double u01(std::uint64_t seed, std::uint64_t key, long long idx, int salt) {
  const std::uint64_t h = splitmix64(
      seed ^ splitmix64(key + static_cast<std::uint64_t>(idx) * 0x632be59bd9b4e019ULL +
                        static_cast<std::uint64_t>(salt)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::string LinkGap::to_string() const {
  std::ostringstream os;
  os << "link " << src << "->" << dst << ":";
  if (next_seq >= 0) {  // sender view
    os << " sent=" << next_seq << " acked_through=" << acked
       << " in_flight=" << unacked;
    if (!pending_tags.empty()) {
      os << " tags=[";
      for (std::size_t i = 0; i < pending_tags.size(); ++i) {
        if (i != 0) os << ",";
        os << pending_tags[i];
      }
      os << "]";
    }
    if (exhausted) os << " RETRANSMITS_EXHAUSTED";
  }
  if (expected >= 0) {  // receiver view
    os << " expecting_seq=" << expected;
    if (buffered_out_of_order > 0) {
      os << " buffered_out_of_order=" << buffered_out_of_order;
    }
  }
  return os.str();
}

// ---- FaultOracle ------------------------------------------------------------

void FaultOracle::set_plan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  // Fresh plan, fresh schedule: the stream counters restart from index 0
  // (and the map shrinks back to nothing), so a long-lived communicator
  // re-seeded per run replays schedules instead of leaking one map entry
  // per (src, dst, tag) stream forever.
  stream_idx_.clear();
  active_.store(plan.any(), std::memory_order_release);
}

FaultFate FaultOracle::decide(int src, int dst, int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t key = stream_key(src, dst, tag);
  const long long idx = stream_idx_[key]++;
  FaultFate f;
  if (u01(plan_.seed, key, idx, 1) < plan_.drop) {
    f.drop = true;
    ++counters_.dropped;
    return f;
  }
  f.dup = u01(plan_.seed, key, idx, 2) < plan_.dup;
  f.delay = u01(plan_.seed, key, idx, 3) < plan_.delay;
  f.reorder = !f.delay && u01(plan_.seed, key, idx, 4) < plan_.reorder;
  if (f.dup) ++counters_.duplicated;
  if (f.delay) ++counters_.delayed;
  if (f.reorder) ++counters_.reordered;
  return f;
}

int FaultOracle::delay_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_.delay_us;
}

FaultCounters FaultOracle::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::size_t FaultOracle::streams() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stream_idx_.size();
}

// ---- Comm (shared surface) --------------------------------------------------

Comm::Comm(int nranks) : nranks_(nranks) {
  require(nranks >= 1, "Comm: need at least one rank");
}

Comm::~Comm() = default;

namespace {
/// Tag-space gate (see prt/tags.hpp): protocol traffic must carry exactly
/// its reserved tag, and application traffic must stay out of the
/// reserved (negative) range — a user-supplied negative tag would
/// otherwise alias ack or aggregate handling on the receive side.
void check_send_tag(int tag, bool is_ack) {
  if (is_ack) {
    require(tag == kPureAckTag,
            "isend: an ack frame must use the reserved pure-ack tag " +
                std::to_string(kPureAckTag) + ", got " + std::to_string(tag));
  } else if (tag != kAggregateTag) {
    require_user_tag(tag, "isend");
  }
}
}  // namespace

// ---- MailboxComm ------------------------------------------------------------

MailboxComm::MailboxComm(int nranks) : Comm(nranks) {
  boxes_.reserve(nranks);
  for (int r = 0; r < nranks; ++r) boxes_.push_back(std::make_unique<Mailbox>());
  limbo_.resize(nranks);
  cancelled_.assign(nranks, 0);
}

bool MailboxComm::enqueue(int dst, Message m) {
  auto& box = *boxes_[dst];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    if (box.cancelled) return false;  // latched: post-cancel sends vanish
    box.q.push_back(std::move(m));
  }
  box.cv.notify_one();
  if (oracle_.active()) {
    // A delivery landed: release any reorder-held message for this rank
    // (it now sits BEHIND the newer one — the reordering happened).
    std::vector<Message> held;
    {
      std::lock_guard<std::mutex> lock(fmu_);
      auto& limbo = limbo_[dst];
      for (auto it = limbo.begin(); it != limbo.end();) {
        if (it->after_next) {
          held.push_back(std::move(it->m));
          it = limbo.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!held.empty()) {
      std::lock_guard<std::mutex> lock(box.mu);
      if (!box.cancelled) {
        for (auto& h : held) box.q.push_back(std::move(h));
        box.cv.notify_one();
      }
    }
  }
  return true;
}

int MailboxComm::isend(int src, int dst, int tag, const Packet& payload,
                       int meta, long long seq, long long ack, bool is_ack,
                       bool shared) {
  PQR_ASSERT(dst >= 0 && dst < size(), "isend: bad destination rank");
  check_send_tag(tag, is_ack);
  offered_.fetch_add(1, std::memory_order_relaxed);
  // Default: deep copy, emulating separate address spaces. `shared` hands
  // over a reference for payloads immutable on both sides (coalesced wire
  // buffers, retransmissions) — see the declaration for the contract.
  Message m{src, tag, meta, seq, ack, is_ack,
            shared ? payload : payload.clone()};
  if (!oracle_.active()) {
    // Fate first, count second: a message the cancel latch discards is
    // offered but never sent.
    if (enqueue(dst, std::move(m))) {
      sent_.fetch_add(1, std::memory_order_relaxed);
      bytes_.fetch_add(static_cast<long long>(payload.size()),
                       std::memory_order_relaxed);
    }
    return 0;  // request handle; completion is immediate
  }
  // Fault plan: every decision is a pure function of (seed, stream,
  // message index) — deterministic per seed, independent per fault kind.
  // The cancel latch, the decision, limbo bookkeeping and the post-fate
  // accounting all happen under fmu_ (the oracle's own lock nests inside
  // it, never the reverse); mailbox delivery (box.mu) happens strictly
  // after fmu_ is released — box.mu and fmu_ never nest, in either order.
  bool dup = false;
  bool held = false;
  {
    std::lock_guard<std::mutex> lock(fmu_);
    if (cancelled_[dst] != 0) return 0;  // latched: discard, don't decide
    const FaultFate f = oracle_.decide(src, dst, tag);
    if (f.drop) return 0;  // vanished on the wire: offered, never sent
    dup = f.dup;
    held = f.delay || f.reorder;
    // Post-fate accounting: what actually goes toward a mailbox — twice
    // for a duplicate, zero for a drop (satellite invariant:
    // sent == offered - dropped + duplicated, absent cancels).
    const long long copies = dup ? 2 : 1;
    sent_.fetch_add(copies, std::memory_order_relaxed);
    bytes_.fetch_add(copies * static_cast<long long>(payload.size()),
                     std::memory_order_relaxed);
    if (held) {
      Limbo l;
      l.release =
          Clock::now() + std::chrono::microseconds(oracle_.delay_us());
      l.after_next = f.reorder;
      if (dup) {
        // The duplicate travels normally (below) while the original waits.
        Message copy = m;
        copy.payload = m.payload.clone();
        l.m = std::move(copy);
      } else {
        l.m = std::move(m);
      }
      limbo_[dst].push_back(std::move(l));
    }
  }
  if (held && !dup) return 0;
  if (dup && !held) {
    Message copy = m;
    copy.payload = m.payload.clone();
    enqueue(dst, std::move(copy));
  }
  enqueue(dst, std::move(m));
  return 0;
}

std::optional<Clock::time_point> MailboxComm::release_due(int rank) {
  std::vector<Message> due;
  std::optional<Clock::time_point> earliest;
  {
    std::lock_guard<std::mutex> lock(fmu_);
    auto& limbo = limbo_[rank];
    if (limbo.empty()) return std::nullopt;
    const auto now = Clock::now();
    for (auto it = limbo.begin(); it != limbo.end();) {
      if (it->release <= now) {
        due.push_back(std::move(it->m));
        it = limbo.erase(it);
      } else {
        if (!earliest || it->release < *earliest) earliest = it->release;
        ++it;
      }
    }
  }
  if (!due.empty()) {
    auto& box = *boxes_[rank];
    std::lock_guard<std::mutex> lock(box.mu);
    if (!box.cancelled) {
      for (auto& m : due) box.q.push_back(std::move(m));
      box.cv.notify_one();
    }
  }
  return earliest;
}

std::optional<Message> MailboxComm::try_recv(int rank) {
  if (oracle_.active()) release_due(rank);
  auto& box = *boxes_[rank];
  std::lock_guard<std::mutex> lock(box.mu);
  if (box.q.empty()) return std::nullopt;
  Message m = std::move(box.q.front());
  box.q.pop_front();
  return m;
}

std::deque<Message> MailboxComm::drain(int rank) {
  if (oracle_.active()) release_due(rank);
  auto& box = *boxes_[rank];
  std::deque<Message> out;
  std::lock_guard<std::mutex> lock(box.mu);
  out.swap(box.q);
  return out;
}

std::optional<Message> MailboxComm::recv_wait(int rank, int timeout_us) {
  auto& box = *boxes_[rank];
  const auto deadline = Clock::now() + std::chrono::microseconds(timeout_us);
  for (;;) {
    // Release due limbo traffic first and cap this round's sleep at the
    // next pending release, so a delayed message never waits for the
    // caller's full timeout. Computed BEFORE taking box.mu (never nest
    // box.mu under fmu_ or vice versa).
    auto until = deadline;
    if (oracle_.active()) {
      if (auto next = release_due(rank); next && *next < until) until = *next;
    }
    {
      std::unique_lock<std::mutex> lock(box.mu);
      // Absolute-deadline predicate wait: spurious wakeups re-evaluate
      // against the same deadline instead of restarting the timeout.
      box.cv.wait_until(lock, until, [&] {
        return !box.q.empty() || box.wake_pending;
      });
      if (box.wake_pending) {
        box.wake_pending = false;  // consume the latched interrupt
        if (box.q.empty()) return std::nullopt;
      }
      if (!box.q.empty()) {
        Message m = std::move(box.q.front());
        box.q.pop_front();
        return m;
      }
    }
    if (Clock::now() >= deadline) return std::nullopt;
    // Woke early for a pending limbo release; loop to deliver it.
  }
}

void MailboxComm::barrier() {
  std::unique_lock<std::mutex> lock(bmu_);
  const std::uint64_t gen = barrier_gen_;
  if (++barrier_count_ == size()) {
    barrier_count_ = 0;
    ++barrier_gen_;  // 64-bit monotone: immediate re-entry cannot alias
    bcv_.notify_all();
  } else {
    bcv_.wait(lock, [&] { return barrier_gen_ != gen; });
  }
}

void MailboxComm::cancel(int rank) {
  // Latch BOTH sides of the race: the per-rank flag under fmu_ stops a
  // concurrent isend from re-populating the limbo after the clear below,
  // and the mailbox flag under box.mu stops a concurrent enqueue from
  // re-populating the queue. Either the racing send wins its lock first
  // (and its message is cleared here) or cancel does (and the send sees
  // the latch and discards) — nothing survives.
  {
    std::lock_guard<std::mutex> lock(fmu_);
    cancelled_[rank] = 1;
    limbo_[rank].clear();
  }
  auto& box = *boxes_[rank];
  std::lock_guard<std::mutex> lock(box.mu);
  box.cancelled = true;
  box.q.clear();
}

void MailboxComm::interrupt(int rank) {
  auto& box = *boxes_[rank];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.wake_pending = true;  // latch: idempotent, never lost
  }
  box.cv.notify_all();
}

// ---- Reliable ---------------------------------------------------------------

Reliable::Reliable(Comm& comm, int rank, Params params)
    : comm_(comm), rank_(rank), params_(params) {
  require(params_.rto_us > 0, "Reliable: rto_us must be positive");
  require(params_.backoff >= 1.0, "Reliable: backoff must be >= 1");
  require(params_.max_retries >= 0, "Reliable: max_retries must be >= 0");
}

long long Reliable::piggyback_ack(int peer) const {
  auto it = recv_.find(peer);
  return it == recv_.end() ? -1 : it->second.expected - 1;
}

void Reliable::send(int dst, int tag, const Packet& payload, int meta,
                    bool shared) {
  // Sequenced frames carry either an application tag or a whole
  // aggregate; anything else in the reserved range is a caller bug.
  if (tag != kAggregateTag) require_user_tag(tag, "Reliable::send");
  auto& link = send_[dst];
  const long long seq = link.next_seq++;
  comm_.isend(rank_, dst, tag, payload, meta, seq, piggyback_ack(dst), false,
              shared);
  if (auto it = recv_.find(dst); it != recv_.end()) {
    it->second.ack_dirty = false;  // the piggyback carried the ack
  }
  Unacked u;
  u.seq = seq;
  u.tag = tag;
  u.meta = meta;
  u.payload = payload;  // retained shared — see the Unacked contract
  u.rto_us = params_.rto_us;
  u.deadline = Clock::now() + std::chrono::microseconds(params_.rto_us);
  link.unacked.push_back(std::move(u));
}

void Reliable::on_receive(Message m, std::deque<Message>& deliver) {
  const int peer = m.source;
  // 1. Cumulative ack (piggybacked or pure): retire acknowledged frames.
  if (m.ack >= 0) {
    if (auto it = send_.find(peer); it != send_.end()) {
      auto& link = it->second;
      if (m.ack > link.acked) link.acked = m.ack;
      while (!link.unacked.empty() && link.unacked.front().seq <= link.acked) {
        retain_for_replay(link, std::move(link.unacked.front()));
        link.unacked.pop_front();
      }
    }
  }
  if (m.is_ack) return;
  if (m.seq < 0) {  // unsequenced frame (protocol off on the peer)
    deliver.push_back(std::move(m));
    return;
  }
  // 2. Data path: dedup, reassemble in order.
  auto& link = recv_[peer];
  if (m.seq < link.expected || link.out_of_order.count(m.seq) != 0) {
    ++dup_suppressed_;
    // Re-ack: a duplicate usually means our previous ack was lost — if we
    // stayed silent, the sender would retransmit forever.
    link.ack_dirty = true;
    return;
  }
  if (m.seq > link.expected) {
    link.out_of_order.emplace(m.seq, std::move(m));
    return;
  }
  deliver.push_back(std::move(m));
  ++link.expected;
  for (auto it = link.out_of_order.begin();
       it != link.out_of_order.end() && it->first == link.expected;
       it = link.out_of_order.erase(it)) {
    deliver.push_back(std::move(it->second));
    ++link.expected;
  }
  link.ack_dirty = true;
}

void Reliable::flush_acks() {
  for (auto& [peer, link] : recv_) {
    if (!link.ack_dirty) continue;
    // Pure ack: empty payload, tag -1, never sequenced (and therefore
    // never acked or retransmitted itself — losing one is harmless, the
    // next duplicate triggers another).
    comm_.isend(rank_, peer, kPureAckTag, Packet(), /*meta=*/0, /*seq=*/-1,
                link.expected - 1, /*is_ack=*/true);
    link.ack_dirty = false;
    ++acks_sent_;
  }
}

void Reliable::retain_for_replay(SendLink& link, Unacked u) {
  if (params_.replay_log_bytes == 0) return;  // retention off: drop as before
  link.replay_bytes += u.payload.size();
  link.replay.push_back(std::move(u));
  while (link.replay_bytes > params_.replay_log_bytes &&
         !link.replay.empty()) {
    link.replay_bytes -= link.replay.front().payload.size();
    link.replay.pop_front();
    ++link.replay_evicted;
  }
}

long long Reliable::replay_link(int dst, Clock::time_point now) {
  auto it = send_.find(dst);
  if (it == send_.end()) return 0;  // never sent there: nothing to replay
  auto& link = it->second;
  if (link.replay_evicted > 0) return -1;  // history incomplete: give up
  // Replay log (acked, oldest first) goes back IN FRONT of the still-
  // unacked tail; both are already in ascending seq order, so the merged
  // queue is the link's complete send history from seq 0.
  for (auto rit = link.replay.rbegin(); rit != link.replay.rend(); ++rit) {
    link.unacked.push_front(std::move(*rit));
  }
  link.replay.clear();
  link.replay_bytes = 0;
  link.acked = -1;
  link.exhausted = false;
  for (auto& u : link.unacked) {
    u.retries = 0;
    u.rto_us = params_.rto_us;
    u.deadline = now;  // due immediately: the next poll() walks them in order
  }
  replayed_ += static_cast<long long>(link.unacked.size());
  return static_cast<long long>(link.unacked.size());
}

void Reliable::reset_recv_link(int src) {
  auto it = recv_.find(src);
  if (it == recv_.end()) return;
  it->second.expected = 0;
  it->second.out_of_order.clear();
  it->second.ack_dirty = false;
}

bool Reliable::poll(Clock::time_point now) {
  for (auto& [dst, link] : send_) {
    if (link.exhausted) continue;
    const bool up = !link_up_ || link_up_(dst);
    for (auto& u : link.unacked) {
      if (u.deadline > now) continue;
      if (!up) {
        // Peer known down (crash window): push the deadline instead of
        // burning retries — the rejoin path re-arms everything anyway.
        u.deadline = now + std::chrono::microseconds(u.rto_us);
        continue;
      }
      if (u.retries >= params_.max_retries) {
        link.exhausted = true;
        failed_ = true;
        break;
      }
      ++u.retries;
      ++retransmits_;
      // Shared: the retained buffer goes on the wire as-is, no deep copy
      // per transmission (the receiver's seq dedup discards stale copies).
      comm_.isend(rank_, dst, u.tag, u.payload, u.meta, u.seq,
                  piggyback_ack(dst), false, /*shared=*/true);
      u.rto_us = static_cast<long long>(
          static_cast<double>(u.rto_us) * params_.backoff);
      u.deadline = now + std::chrono::microseconds(u.rto_us);
      if (retransmit_hook_) retransmit_hook_(dst, u.tag, u.seq);
    }
  }
  return !failed_;
}

std::string Reliable::state_fingerprint() const {
  std::ostringstream os;
  for (const auto& [dst, link] : send_) {
    os << 's' << dst << ':' << link.next_seq << ',' << link.acked << ','
       << (link.exhausted ? 1 : 0) << '[';
    for (const auto& u : link.unacked) {
      os << u.seq << '/' << u.tag << '/' << u.retries << ';';
    }
    os << ']';
  }
  for (const auto& [src, link] : recv_) {
    os << 'r' << src << ':' << link.expected << ','
       << (link.ack_dirty ? 1 : 0) << '[';
    for (const auto& [seq, m] : link.out_of_order) os << seq << ';';
    os << ']';
  }
  return os.str();
}

std::vector<LinkGap> Reliable::gaps() const {
  std::vector<LinkGap> out;
  for (const auto& [dst, link] : send_) {
    LinkGap g;
    g.src = rank_;
    g.dst = dst;
    g.next_seq = link.next_seq;
    g.acked = link.acked;
    g.expected = -1;  // sender view
    g.unacked = static_cast<int>(link.unacked.size());
    g.exhausted = link.exhausted;
    for (const auto& u : link.unacked) g.pending_tags.push_back(u.tag);
    out.push_back(std::move(g));
  }
  for (const auto& [src, link] : recv_) {
    LinkGap g;
    g.src = src;
    g.dst = rank_;
    g.next_seq = -1;  // receiver view
    g.acked = -1;
    g.expected = link.expected;
    g.buffered_out_of_order = static_cast<int>(link.out_of_order.size());
    out.push_back(std::move(g));
  }
  return out;
}

// ---- frame coalescing -------------------------------------------------------

void FrameStager::add(int tag, int meta, const Packet& p) {
  PQR_ASSERT(fits(p.size()), "FrameStager::add: frame does not fit");
  // Aggregates nest only application frames: a reserved tag inside one
  // (a nested aggregate, an ack) would be mis-dispatched by the
  // receiving proxy's split loop.
  require_user_tag(tag, "FrameStager::add");
  if (buf_.empty()) buf_ = Packet::make(capacity_);
  std::byte* at = buf_.bytes() + used_;
  // Explicit little-endian header (wire.hpp), NOT a memcpy of host
  // integers: an aggregate staged on one host must parse identically on
  // any other, and on the golden frames recorded in the tests.
  wire::put_i32(at, tag);
  wire::put_i32(at + 4, meta);
  wire::put_u64(at + 8, static_cast<std::uint64_t>(p.size()));
  if (p.size() > 0) std::memcpy(at + kHeaderBytes, p.bytes(), p.size());
  used_ += wire_size(p.size());
  ++frames_;
}

Packet FrameStager::take() {
  PQR_ASSERT(frames_ > 0, "FrameStager::take: nothing staged");
  buf_.truncate(used_);
  buf_.set_meta(frames_);
  Packet out = std::move(buf_);
  buf_ = Packet();
  used_ = 0;
  frames_ = 0;
  return out;
}

bool FrameCursor::next(WireFrame& out) {
  if (off_ >= size_) return false;
  PQR_ASSERT(off_ + 16 <= size_, "FrameCursor: truncated frame header");
  out.tag = wire::get_i32(data_ + off_);
  out.meta = wire::get_i32(data_ + off_ + 4);
  out.size = static_cast<std::size_t>(wire::get_u64(data_ + off_ + 8));
  out.data = data_ + off_ + 16;
  PQR_ASSERT(off_ + FrameStager::wire_size(out.size) <= size_,
             "FrameCursor: truncated frame payload");
  off_ += FrameStager::wire_size(out.size);
  return true;
}

}  // namespace pulsarqr::prt::net
