#include "prt/graph_check.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "prt/vsa.hpp"

namespace pulsarqr::prt {

const char* to_string(CheckKind kind) {
  switch (kind) {
    case CheckKind::UnknownVdp: return "unknown-vdp";
    case CheckKind::BadSlot: return "bad-slot";
    case CheckKind::DanglingOutput: return "dangling-output";
    case CheckKind::UnfedInput: return "unfed-input";
    case CheckKind::DuplicateProducer: return "duplicate-producer";
    case CheckKind::BlockedVdp: return "blocked-vdp";
    case CheckKind::Starvation: return "starvation";
    case CheckKind::PacketLeak: return "packet-leak";
    case CheckKind::EnabledCycle: return "enabled-cycle";
    case CheckKind::OversizeFeed: return "oversize-feed";
    case CheckKind::Unreachable: return "unreachable";
    case CheckKind::CapacityOverflow: return "capacity-overflow";
    case CheckKind::CapacityDeadlock: return "capacity-deadlock";
  }
  return "?";
}

int GraphReport::errors() const {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Error;
                    }));
}

int GraphReport::warnings() const {
  return static_cast<int>(diagnostics.size()) - errors();
}

std::string GraphReport::to_string() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics) {
    os << "  " << (d.severity == Severity::Error ? "error" : "warning") << ' '
       << prt::to_string(d.kind) << ": " << d.message << '\n';
  }
  os << "  (" << errors() << " error(s), " << warnings() << " warning(s))";
  return os.str();
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// diagnostic messages are ASCII but may quote user tuple names.
void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string GraphReport::to_json() const {
  std::ostringstream os;
  os << "{\"errors\":" << errors() << ",\"warnings\":" << warnings()
     << ",\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i != 0) os << ',';
    os << "{\"severity\":"
       << (d.severity == Severity::Error ? "\"error\"" : "\"warning\"")
       << ",\"kind\":\"" << prt::to_string(d.kind) << "\",\"vdp\":";
    json_escape(os, d.vdp.to_string());
    os << ",\"slot\":" << d.slot << ",\"message\":";
    json_escape(os, d.message);
    os << '}';
  }
  os << "],\"flows\":[";
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const ChannelFlow& f = flows[i];
    if (i != 0) os << ',';
    os << "{\"src\":";
    json_escape(os, f.from_feed ? std::string("feed") : f.src.to_string());
    os << ",\"src_slot\":" << f.src_slot << ",\"dst\":";
    json_escape(os, f.dst.to_string());
    os << ",\"dst_slot\":" << f.dst_slot << ",\"fed\":" << f.fed
       << ",\"delivered\":" << f.delivered << ",\"consumed\":" << f.consumed
       << ",\"peak_packets\":" << f.peak_packets
       << ",\"resident_end\":" << f.resident_end
       << ",\"capacity\":" << f.capacity << ",\"max_bytes\":" << f.max_bytes
       << '}';
  }
  os << "]}";
  return os.str();
}

std::string describe_input_slots(const Vdp& vdp) {
  std::ostringstream os;
  os << '[';
  for (int s = 0; s < vdp.num_inputs(); ++s) {
    if (s > 0) os << ' ';
    os << s << ':';
    const Channel* ch = vdp.input_channel(s);
    if (ch == nullptr) {
      os << "unwired";
    } else if (ch->destroyed()) {
      os << "destroyed";
    } else if (!ch->enabled()) {
      os << "off(" << ch->size() << ')';
    } else if (ch->size() == 0) {
      // Distinguish a slot that never saw a packet (likely a wiring or
      // balance bug) from one whose traffic stopped mid-stream (likely a
      // lost message or a stuck upstream VDP).
      if (ch->pushed() > 0) {
        os << "empty(saw " << ch->pushed() << ')';
      } else {
        os << "empty";
      }
    } else {
      os << "ready(" << ch->size() << ')';
    }
  }
  os << ']';
  return os.str();
}

namespace {

/// Per-input-slot aggregation of the pending connects and feeds.
struct InSlot {
  int producers = 0;            ///< connects + feeds targeting the slot
  const Vdp* src = nullptr;     ///< producer VDP (when a connect exists)
  int src_slot = -1;
  long long fed = 0;            ///< packets prefilled by a feed
  bool has_feed = false;
  bool has_edge = false;
  bool enabled = false;         ///< channel's initial enable state
};

struct OutSlot {
  int uses = 0;                 ///< connects leaving the slot
};

}  // namespace

GraphReport GraphCheck::check(const Vsa& vsa) {
  GraphReport rep;
  auto add = [&rep](Severity sev, CheckKind kind, const Tuple& t, int slot,
                    std::string msg) {
    rep.diagnostics.push_back({sev, kind, t, slot, std::move(msg)});
  };
  auto err = [&add](CheckKind kind, const Tuple& t, int slot,
                    std::string msg) {
    add(Severity::Error, kind, t, slot, std::move(msg));
  };

  auto find = [&vsa](const Tuple& t) -> const Vdp* {
    auto it = vsa.vdps_.find(t);
    return it == vsa.vdps_.end() ? nullptr : it->second.get();
  };
  auto slot_on = [](int slot, const Tuple& t) {
    return "slot " + std::to_string(slot) + " of VDP " + t.to_string();
  };

  // ---- index the pending connects and feeds ------------------------------
  std::unordered_map<const Vdp*, int> index;
  for (std::size_t i = 0; i < vsa.creation_order_.size(); ++i) {
    index[vsa.creation_order_[i]] = static_cast<int>(i);
  }
  const int n = static_cast<int>(vsa.creation_order_.size());
  std::vector<std::vector<InSlot>> ins(n);
  std::vector<std::vector<OutSlot>> outs(n);
  for (int i = 0; i < n; ++i) {
    ins[i].resize(vsa.creation_order_[i]->num_inputs());
    outs[i].resize(vsa.creation_order_[i]->num_outputs());
  }
  // Adjacency for the cycle and reachability passes. `enabled_adj` keeps
  // only channels that participate in the firing rule from the start.
  std::vector<std::vector<int>> adj(n), enabled_adj(n);

  for (const Vsa::PendingEdge& e : vsa.edges_) {
    const Vdp* src = find(e.src);
    const Vdp* dst = find(e.dst);
    if (src == nullptr) {
      err(CheckKind::UnknownVdp, e.src, e.out_slot,
          "connect names unknown source VDP " + e.src.to_string());
    }
    if (dst == nullptr) {
      err(CheckKind::UnknownVdp, e.dst, e.in_slot,
          "connect names unknown destination VDP " + e.dst.to_string());
    }
    bool valid = src != nullptr && dst != nullptr;
    if (src != nullptr &&
        (e.out_slot < 0 || e.out_slot >= src->num_outputs())) {
      err(CheckKind::BadSlot, e.src, e.out_slot,
          "connect uses out-of-range output " + slot_on(e.out_slot, e.src) +
              " (declares " + std::to_string(src->num_outputs()) +
              " outputs)");
      valid = false;
    }
    if (dst != nullptr && (e.in_slot < 0 || e.in_slot >= dst->num_inputs())) {
      err(CheckKind::BadSlot, e.dst, e.in_slot,
          "connect uses out-of-range input " + slot_on(e.in_slot, e.dst) +
              " (declares " + std::to_string(dst->num_inputs()) + " inputs)");
      valid = false;
    }
    if (!valid) continue;
    const int si = index.at(src);
    const int di = index.at(dst);
    OutSlot& o = outs[si][e.out_slot];
    if (++o.uses > 1) {
      err(CheckKind::DuplicateProducer, e.src, e.out_slot,
          "output " + slot_on(e.out_slot, e.src) +
              " is connected more than once");
    }
    InSlot& in = ins[di][e.in_slot];
    ++in.producers;
    in.has_edge = true;
    in.src = src;
    in.src_slot = e.out_slot;
    in.enabled = in.enabled || e.enabled;
    adj[si].push_back(di);
    if (e.enabled) enabled_adj[si].push_back(di);
  }

  for (const Vsa::PendingFeed& f : vsa.feeds_) {
    const Vdp* dst = find(f.dst);
    if (dst == nullptr) {
      err(CheckKind::UnknownVdp, f.dst, f.in_slot,
          "feed names unknown VDP " + f.dst.to_string());
      continue;
    }
    if (f.in_slot < 0 || f.in_slot >= dst->num_inputs()) {
      err(CheckKind::BadSlot, f.dst, f.in_slot,
          "feed uses out-of-range input " + slot_on(f.in_slot, f.dst) +
              " (declares " + std::to_string(dst->num_inputs()) + " inputs)");
      continue;
    }
    InSlot& in = ins[index.at(dst)][f.in_slot];
    ++in.producers;
    in.has_feed = true;
    in.fed += static_cast<long long>(f.initial.size());
    in.enabled = in.enabled || f.enabled;
    for (std::size_t p = 0; p < f.initial.size(); ++p) {
      if (f.initial[p].size() > f.max_bytes) {
        err(CheckKind::OversizeFeed, f.dst, f.in_slot,
            "fed packet " + std::to_string(p) + " (" +
                std::to_string(f.initial[p].size()) + " bytes) exceeds the " +
                std::to_string(f.max_bytes) + "-byte capacity of input " +
                slot_on(f.in_slot, f.dst));
      }
    }
  }

  // ---- wiring + packet balance, per VDP ----------------------------------
  // VDPs with wiring findings are excluded from the reachability verdict:
  // the wiring diagnostic is the root cause.
  std::vector<bool> wiring_broken(n, false);

  for (int i = 0; i < n; ++i) {
    const Vdp& v = *vsa.creation_order_[i];

    int unwired_inputs = 0;
    for (const InSlot& in : ins[i]) {
      if (in.producers == 0) ++unwired_inputs;
    }
    if (v.num_inputs() > 0 && unwired_inputs == v.num_inputs()) {
      // The silent-blocked case: alive, never ready, burns the watchdog.
      wiring_broken[i] = true;
      err(CheckKind::BlockedVdp, v.tuple(), -1,
          "VDP " + v.tuple().to_string() + " has only unconnected input " +
              "slots (" + std::to_string(v.num_inputs()) +
              " declared): it can never become ready");
    } else {
      for (int s = 0; s < v.num_inputs(); ++s) {
        if (ins[i][s].producers == 0) {
          wiring_broken[i] = true;
          err(CheckKind::UnfedInput, v.tuple(), s,
              "declared input " + slot_on(s, v.tuple()) +
                  " is neither connected nor fed");
        }
      }
    }
    for (int s = 0; s < v.num_inputs(); ++s) {
      if (ins[i][s].producers > 1) {
        wiring_broken[i] = true;
        err(CheckKind::DuplicateProducer, v.tuple(), s,
            "input " + slot_on(s, v.tuple()) + " has " +
                std::to_string(ins[i][s].producers) +
                " producers (connects/feeds); a slot accepts exactly one");
      }
    }
    if (v.num_inputs() > 0 && unwired_inputs < v.num_inputs()) {
      bool any_enabled = false;
      for (const InSlot& in : ins[i]) any_enabled |= in.enabled;
      if (!any_enabled) {
        wiring_broken[i] = true;
        err(CheckKind::BlockedVdp, v.tuple(), -1,
            "every input channel of VDP " + v.tuple().to_string() +
                " starts disabled; only its own firing code could enable "
                "one, so it can never fire");
      }
    }
    for (int s = 0; s < v.num_outputs(); ++s) {
      if (outs[i][s].uses == 0) {
        wiring_broken[i] = true;
        err(CheckKind::DanglingOutput, v.tuple(), s,
            "declared output " + slot_on(s, v.tuple()) +
                " has no destination");
      }
    }

    // Packet balance: compare what the single producer of each input slot
    // will deliver over its lifetime against what this VDP will pop.
    for (int s = 0; s < v.num_inputs(); ++s) {
      const InSlot& in = ins[i][s];
      if (in.producers != 1) continue;  // unfed/duplicate flagged above
      const long long expected = v.expected_input_packets(s);
      const long long available =
          in.fed +
          (in.has_edge ? in.src->expected_output_packets(in.src_slot) : 0);
      if (available < expected) {
        err(CheckKind::Starvation, v.tuple(), s,
            "input " + slot_on(s, v.tuple()) + " will receive only " +
                std::to_string(available) + " of the " +
                std::to_string(expected) +
                " packets its firing counter needs — guaranteed watchdog "
                "deadlock" +
                (in.has_edge ? " (producer " + in.src->tuple().to_string() +
                                   " slot " + std::to_string(in.src_slot) +
                                   ")"
                             : ""));
      } else if (available > expected) {
        add(Severity::Warning, CheckKind::PacketLeak, v.tuple(), s,
            "input " + slot_on(s, v.tuple()) + " will receive " +
                std::to_string(available) + " packets but its consumer "
                "only pops " + std::to_string(expected) + "; " +
                std::to_string(available - expected) +
                " packet(s) will be left over after the run");
      }
    }
  }

  // ---- flow/capacity analysis --------------------------------------------
  // Symbolic per-channel occupancy bounds from the declared packet balance.
  // Per-firing schedules are modeled as an "even-spread band": a slot whose
  // lifetime total is T over C firings moves between floor(T/C) and
  // ceil(T/C) packets per firing, in any order. Within that band the
  // analysis is adversarial — it flags a declared capacity if SOME
  // consistent schedule wedges the graph — so a flagged bound is either a
  // real deadlock or one only a stronger-than-declared schedule avoids.
  {
    struct Chan {
      int src = -1;  ///< producer VDP index; -1 for a feed
      int src_slot = -1;
      int dst = -1;
      int dst_slot = -1;
      bool enabled = false;
      int capacity = 0;
      long long fed = 0;
      long long delivered = 0;  ///< fed + lifetime producer pushes
      long long consumed = 0;
      std::size_t max_bytes = 0;
      bool stall = false;  ///< bounded and able to gate its producer
    };
    std::vector<Chan> chans;
    auto valid_slot = [&](const InSlot& in) { return in.producers == 1; };
    for (const Vsa::PendingEdge& e : vsa.edges_) {
      const Vdp* src = find(e.src);
      const Vdp* dst = find(e.dst);
      if (src == nullptr || dst == nullptr || e.out_slot < 0 ||
          e.out_slot >= src->num_outputs() || e.in_slot < 0 ||
          e.in_slot >= dst->num_inputs()) {
        continue;  // wiring diagnostics above are the root cause
      }
      const int di = index.at(dst);
      if (!valid_slot(ins[di][e.in_slot])) continue;
      Chan c;
      c.src = index.at(src);
      c.src_slot = e.out_slot;
      c.dst = di;
      c.dst_slot = e.in_slot;
      c.enabled = e.enabled;
      c.capacity = e.capacity;
      c.delivered = src->expected_output_packets(e.out_slot);
      c.consumed = dst->expected_input_packets(e.in_slot);
      c.max_bytes = e.max_bytes;
      chans.push_back(c);
    }
    for (const Vsa::PendingFeed& f : vsa.feeds_) {
      const Vdp* dst = find(f.dst);
      if (dst == nullptr || f.in_slot < 0 || f.in_slot >= dst->num_inputs()) {
        continue;
      }
      const int di = index.at(dst);
      if (!valid_slot(ins[di][f.in_slot])) continue;
      Chan c;
      c.dst = di;
      c.dst_slot = f.in_slot;
      c.enabled = f.enabled;
      c.capacity = f.capacity;
      c.fed = static_cast<long long>(f.initial.size());
      c.delivered = c.fed;
      c.consumed = dst->expected_input_packets(f.in_slot);
      c.max_bytes = f.max_bytes;
      chans.push_back(c);
    }

    // Occupancy bounds -> GraphReport::flows, plus the capacity errors.
    // Even-spread per-firing bounds of an output slot: C firings move T
    // packets, so a single firing pushes at most ceil(T/C) and at least
    // floor(T/C); same for the consumer's pops.
    auto out_burst = [&](const Chan& c) -> long long {  // max pushes/firing
      const Vdp& v = *vsa.creation_order_[c.src];
      const long long cnt = v.counter();
      return (c.delivered + cnt - 1) / cnt;
    };
    for (Chan& c : chans) {
      ChannelFlow flow;
      flow.src = c.src >= 0 ? vsa.creation_order_[c.src]->tuple() : Tuple{};
      flow.src_slot = c.src_slot;
      flow.dst = vsa.creation_order_[c.dst]->tuple();
      flow.dst_slot = c.dst_slot;
      flow.from_feed = c.src < 0;
      flow.fed = c.fed;
      flow.delivered = c.delivered;
      flow.consumed = c.consumed;
      // Worst interleaving: everything the channel will ever receive is
      // resident before the consumer's first pop.
      flow.peak_packets = c.delivered;
      flow.resident_end = std::max<long long>(0, c.delivered - c.consumed);
      flow.capacity = c.capacity;
      flow.max_bytes = c.max_bytes;
      rep.flows.push_back(flow);

      if (c.capacity <= 0) continue;
      const Tuple& dt = vsa.creation_order_[c.dst]->tuple();
      if (c.fed > c.capacity) {
        err(CheckKind::CapacityOverflow, dt, c.dst_slot,
            "feed prefills " + std::to_string(c.fed) + " packet(s) into " +
                "input " + slot_on(c.dst_slot, dt) +
                " whose declared capacity is " + std::to_string(c.capacity) +
                ": the bound is broken before the first firing");
        continue;
      }
      if (c.src < 0) continue;
      const Tuple& st = vsa.creation_order_[c.src]->tuple();
      const long long burst = out_burst(c);
      if (burst > c.capacity) {
        err(CheckKind::CapacityOverflow, st, c.src_slot,
            "a single firing of VDP " + st.to_string() + " can push " +
                std::to_string(burst) + " packet(s) on output slot " +
                std::to_string(c.src_slot) + " (" +
                std::to_string(c.delivered) + " over " +
                std::to_string(vsa.creation_order_[c.src]->counter()) +
                " firings), more than the " + std::to_string(c.capacity) +
                "-packet capacity of input " + slot_on(c.dst_slot, dt) +
                " can ever hold");
        continue;
      }
      // Can the producer hit the backpressure gate with firings left?
      // Worst even-spread ordering front-loads the pushes: occupancy
      // before the last firing reaches delivered - floor(T/C) (or all of
      // `delivered` when some firings push nothing).
      const Vdp& sv = *vsa.creation_order_[c.src];
      if (sv.counter() >= 2 && c.delivered > 0) {
        const long long floor_push = c.delivered / sv.counter();
        const long long pre_fire_peak = c.delivered - floor_push;
        c.stall = pre_fire_peak >= c.capacity;
      }
    }

    // Bounded-buffer deadlock: for each channel X (u -> v) that can gate
    // its producer, look for a dependency path from the consumer v back to
    // u that does not use X itself — if v's progress (transitively, via
    // data edges "consumer waits on producer" and other backpressure edges
    // "producer waits on consumer") requires u to act, some schedule wedges
    // with X full. A data edge is skipped when its channel provably covers
    // X (same producer, same consumer, per-firing pushes at least X's and
    // pops at most X's: it can never be empty while X is full).
    const int nc = static_cast<int>(chans.size());
    struct WaitEdge {
      int to;
      int chan;
      bool data;  ///< consumer-waits-producer (vs backpressure)
    };
    std::vector<std::vector<WaitEdge>> waits(n);
    for (int ci = 0; ci < nc; ++ci) {
      const Chan& c = chans[ci];
      if (c.src < 0) continue;  // feeds: no producer to wait on / gate
      if (c.enabled) waits[c.dst].push_back({c.src, ci, true});
      if (c.stall) waits[c.src].push_back({c.dst, ci, false});
    }
    auto covers = [&](const Chan& c, const Chan& x) {
      if (c.src != x.src || c.dst != x.dst || !c.enabled) return false;
      const Vdp& u = *vsa.creation_order_[x.src];
      const Vdp& v = *vsa.creation_order_[x.dst];
      const long long cu = u.counter(), cv = v.counter();
      const long long push_min_c = c.delivered / cu;
      const long long push_max_x = (x.delivered + cu - 1) / cu;
      const long long pop_max_c = (c.consumed + cv - 1) / cv;
      const long long pop_min_x = x.consumed / cv;
      return push_min_c >= push_max_x && pop_max_c <= pop_min_x;
    };
    for (int xi = 0; xi < nc; ++xi) {
      const Chan& x = chans[xi];
      if (!x.stall) continue;
      // BFS from the consumer v toward the producer u, avoiding X.
      std::vector<int> parent(n, -2);
      std::vector<int> bfs{x.dst};
      parent[x.dst] = -1;
      bool found = x.dst == x.src;  // self-loop: u waits on its own pops
      for (std::size_t head = 0; head < bfs.size() && !found; ++head) {
        const int at = bfs[head];
        for (const WaitEdge& w : waits[at]) {
          if (w.chan == xi || parent[w.to] != -2) continue;
          if (w.data && covers(chans[w.chan], x)) continue;
          parent[w.to] = at;
          if (w.to == x.src) {
            found = true;
            break;
          }
          bfs.push_back(w.to);
        }
      }
      if (!found) continue;
      const Tuple& ut = vsa.creation_order_[x.src]->tuple();
      const Tuple& vt = vsa.creation_order_[x.dst]->tuple();
      std::string path;
      if (x.src != x.dst) {
        std::vector<int> rev{x.src};
        for (int at = parent[x.src]; at >= 0; at = parent[at]) {
          rev.push_back(at);
        }
        for (std::size_t j = rev.size(); j-- > 0;) {
          path += vsa.creation_order_[rev[j]]->tuple().to_string();
          if (j != 0) path += " -> ";
        }
      } else {
        path = vt.to_string() + " -> " + ut.to_string();
      }
      err(CheckKind::CapacityDeadlock, ut, x.src_slot,
          "bounded channel (output slot " + std::to_string(x.src_slot) +
              " of VDP " + ut.to_string() + " -> input slot " +
              std::to_string(x.dst_slot) + " of VDP " + vt.to_string() +
              ", capacity " + std::to_string(x.capacity) +
              ", worst-case occupancy " + std::to_string(x.delivered) +
              ") can stall its producer while the consumer's progress "
              "depends on that producer (" +
              path +
              "): some firing schedule consistent with the declared packet "
              "totals deadlocks here — raise the capacity, rebalance the "
              "declared flow, or disable graph_check if the runtime "
              "schedule provably avoids it");
    }
  }

  // ---- cycles among initially-enabled channels ---------------------------
  // Every connect channel starts empty, so each member of a strongly
  // connected component over enabled channels waits on another member:
  // none can ever fire. Tarjan, iterative to survive deep graphs.
  {
    std::vector<int> disc(n, -1), low(n, 0), comp(n, -1);
    std::vector<bool> on_stack(n, false);
    std::vector<int> stack;
    int timer = 0, ncomp = 0;
    struct Frame { int v; std::size_t edge; };
    for (int root = 0; root < n; ++root) {
      if (disc[root] != -1) continue;
      std::vector<Frame> frames{{root, 0}};
      while (!frames.empty()) {
        Frame& f = frames.back();
        const int v = f.v;
        if (f.edge == 0) {
          disc[v] = low[v] = timer++;
          stack.push_back(v);
          on_stack[v] = true;
        }
        if (f.edge < enabled_adj[v].size()) {
          const int w = enabled_adj[v][f.edge++];
          if (disc[w] == -1) {
            frames.push_back({w, 0});
          } else if (on_stack[w]) {
            low[v] = std::min(low[v], disc[w]);
          }
        } else {
          if (low[v] == disc[v]) {
            while (true) {
              const int w = stack.back();
              stack.pop_back();
              on_stack[w] = false;
              comp[w] = ncomp;
              if (w == v) break;
            }
            ++ncomp;
          }
          frames.pop_back();
          if (!frames.empty()) {
            low[frames.back().v] = std::min(low[frames.back().v], low[v]);
          }
        }
      }
    }
    std::vector<std::vector<int>> members(ncomp);
    for (int i = 0; i < n; ++i) members[comp[i]].push_back(i);
    std::vector<bool> self_loop(n, false);
    for (int i = 0; i < n; ++i) {
      for (int w : enabled_adj[i]) self_loop[i] = self_loop[i] || w == i;
    }
    for (const auto& m : members) {
      if (m.size() < 2 && !(m.size() == 1 && self_loop[m[0]])) continue;
      std::string names;
      for (std::size_t j = 0; j < m.size() && j < 4; ++j) {
        names += (j ? " -> " : "") +
                 vsa.creation_order_[m[j]]->tuple().to_string();
      }
      if (m.size() > 4) names += " -> ...";
      for (int i : m) wiring_broken[i] = true;
      err(CheckKind::EnabledCycle, vsa.creation_order_[m[0]]->tuple(), -1,
          std::to_string(m.size()) + " VDP(s) form a cycle of " +
              "initially-enabled empty channels (" + names +
              "): none can ever fire");
    }
  }

  // ---- reachability from the sources -------------------------------------
  {
    std::vector<bool> reached(n, false);
    std::vector<int> bfs;
    for (int i = 0; i < n; ++i) {
      const Vdp& v = *vsa.creation_order_[i];
      bool fed = false;
      for (const InSlot& in : ins[i]) fed = fed || in.has_feed;
      if (v.num_inputs() == 0 || fed) {
        reached[i] = true;
        bfs.push_back(i);
      }
    }
    for (std::size_t head = 0; head < bfs.size(); ++head) {
      for (int w : adj[bfs[head]]) {
        if (!reached[w]) {
          reached[w] = true;
          bfs.push_back(w);
        }
      }
    }
    for (int i = 0; i < n; ++i) {
      if (reached[i] || wiring_broken[i]) continue;
      err(CheckKind::Unreachable, vsa.creation_order_[i]->tuple(), -1,
          "VDP " + vsa.creation_order_[i]->tuple().to_string() +
              " is not reachable from any source (zero-input VDP or fed "
              "channel); no packet can ever arrive");
    }
  }

  // Errors first, preserving discovery order within each severity.
  std::stable_sort(rep.diagnostics.begin(), rep.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.severity == Severity::Error &&
                            b.severity != Severity::Error;
                   });
  return rep;
}

}  // namespace pulsarqr::prt
