#include "prt/packet_pool.hpp"

#include <atomic>
#include <mutex>
#include <new>
#include <vector>

#include "prt/tsan.hpp"

namespace pulsarqr::prt {

namespace {

constexpr std::size_t kMinClass = 64;  // one cache line
constexpr int kClasses = 18;           // 64 B .. 8 MiB (64 << 17)
constexpr int kMagazineCap = 16;       // buffers per thread per class
constexpr int kRefill = kMagazineCap / 2;

std::size_t class_capacity(int idx) { return kMinClass << idx; }

/// Smallest class holding `bytes`, or -1 above the largest class.
int class_index(std::size_t bytes) {
  std::size_t cap = kMinClass;
  for (int idx = 0; idx < kClasses; ++idx, cap <<= 1) {
    if (bytes <= cap) return idx;
  }
  return -1;
}

std::byte* heap_alloc(std::size_t bytes) {
  // Over-align to 64 bytes so double payloads sit on cache lines.
  return static_cast<std::byte*>(
      ::operator new[](bytes > 0 ? bytes : 1, std::align_val_t(64)));
}

void heap_free(std::byte* p) {
  ::operator delete[](p, std::align_val_t(64));
}

/// Global half of the pool. Leaky singleton: Packet deleters may run from
/// static destructors, so the pool must outlive everything.
struct Central {
  std::atomic<bool> enabled{true};
  std::atomic<long long> hits{0};
  std::atomic<long long> misses{0};
  std::atomic<long long> oversize{0};
  std::atomic<long long> recycled{0};
  struct ClassList {
    std::mutex mu;
    std::vector<std::byte*> free;
  };
  ClassList spill[kClasses];
};

Central& central() {
  static Central* c = new Central;
  return *c;
}

struct Magazine {
  std::byte* bufs[kClasses][kMagazineCap];
  int count[kClasses] = {};
};

// The magazine is reached through a trivially-destructible thread_local
// pointer: after the owning destructor runs (late in thread teardown) the
// pointer reads null and frees fall through to the global spill list, so
// a Packet released from another thread_local's destructor stays safe.
thread_local Magazine* tls_magazine = nullptr;
thread_local bool tls_dead = false;

void spill_to_central(int idx, std::byte** bufs, int n) {
  auto& cls = central().spill[idx];
  std::lock_guard<std::mutex> lock(cls.mu);
  cls.free.insert(cls.free.end(), bufs, bufs + n);
}

struct MagazineOwner {
  Magazine* mag = nullptr;
  ~MagazineOwner() {
    if (mag != nullptr) {
      for (int idx = 0; idx < kClasses; ++idx) {
        if (mag->count[idx] > 0) {
          spill_to_central(idx, mag->bufs[idx], mag->count[idx]);
        }
      }
      delete mag;
    }
    tls_magazine = nullptr;
    tls_dead = true;
  }
};

Magazine* magazine() {
  if (tls_magazine == nullptr && !tls_dead) {
    static thread_local MagazineOwner owner;
    owner.mag = new Magazine;
    tls_magazine = owner.mag;
  }
  return tls_magazine;
}

void release(std::byte* p, int idx) {
  // The buffer leaves this thread's use: whatever was written into it is
  // published to the thread that next draws it from a magazine or the
  // spill list (the mutex / last-shared_ptr release already order this;
  // see tsan.hpp).
  PULSARQR_TSAN_RELEASE(p);
  Central& c = central();
  if (!c.enabled.load(std::memory_order_relaxed)) {
    heap_free(p);
    return;
  }
  c.recycled.fetch_add(1, std::memory_order_relaxed);
  Magazine* mag = magazine();
  if (mag == nullptr) {
    spill_to_central(idx, &p, 1);
    return;
  }
  if (mag->count[idx] == kMagazineCap) {
    // Full: spill the older half so cross-thread flows (alloc here, free
    // there) drain back to the global list instead of piling up locally.
    spill_to_central(idx, mag->bufs[idx], kRefill);
    mag->count[idx] = kMagazineCap - kRefill;
    for (int i = 0; i < mag->count[idx]; ++i) {
      mag->bufs[idx][i] = mag->bufs[idx][i + kRefill];
    }
  }
  mag->bufs[idx][mag->count[idx]++] = p;
}

std::shared_ptr<std::byte[]> wrap_pooled(std::byte* p, int idx) {
  return std::shared_ptr<std::byte[]>(p,
                                      [idx](std::byte* q) { release(q, idx); });
}

std::shared_ptr<std::byte[]> wrap_plain(std::byte* p) {
  return std::shared_ptr<std::byte[]>(p, [](std::byte* q) { heap_free(q); });
}

}  // namespace

std::shared_ptr<std::byte[]> PacketPool::acquire(std::size_t bytes) {
  Central& c = central();
  if (!c.enabled.load(std::memory_order_relaxed)) {
    return wrap_plain(heap_alloc(bytes));
  }
  const int idx = class_index(bytes);
  if (idx < 0) {
    c.oversize.fetch_add(1, std::memory_order_relaxed);
    return wrap_plain(heap_alloc(bytes));
  }
  Magazine* mag = magazine();
  if (mag != nullptr && mag->count[idx] > 0) {
    c.hits.fetch_add(1, std::memory_order_relaxed);
    std::byte* out = mag->bufs[idx][--mag->count[idx]];
    PULSARQR_TSAN_ACQUIRE(out);  // buffer handoff from its previous owner
    return wrap_pooled(out, idx);
  }
  // Magazine empty: refill a batch from the global spill list so the next
  // few allocations of this class stay lock-free. Take at most half of
  // what the list holds — a fixed batch would let the first thread after
  // a quiet spell drain the class and strand buffers in its magazine
  // while the other threads fall through to fresh allocations.
  {
    auto& cls = c.spill[idx];
    std::lock_guard<std::mutex> lock(cls.mu);
    if (!cls.free.empty()) {
      std::byte* out = cls.free.back();
      cls.free.pop_back();
      if (mag != nullptr) {
        int take = static_cast<int>(cls.free.size() / 2);
        if (take > kRefill) take = kRefill;
        while (take-- > 0) {
          mag->bufs[idx][mag->count[idx]++] = cls.free.back();
          cls.free.pop_back();
        }
      }
      c.hits.fetch_add(1, std::memory_order_relaxed);
      PULSARQR_TSAN_ACQUIRE(out);  // buffer handoff via the spill list
      return wrap_pooled(out, idx);
    }
  }
  c.misses.fetch_add(1, std::memory_order_relaxed);
  return wrap_pooled(heap_alloc(class_capacity(idx)), idx);
}

void PacketPool::set_enabled(bool on) {
  central().enabled.store(on, std::memory_order_relaxed);
}

bool PacketPool::enabled() {
  return central().enabled.load(std::memory_order_relaxed);
}

PacketPool::Stats PacketPool::stats() {
  Central& c = central();
  Stats s;
  s.hits = c.hits.load(std::memory_order_relaxed);
  s.misses = c.misses.load(std::memory_order_relaxed);
  s.oversize = c.oversize.load(std::memory_order_relaxed);
  s.recycled = c.recycled.load(std::memory_order_relaxed);
  return s;
}

std::size_t PacketPool::capacity_for(std::size_t bytes) {
  const int idx = class_index(bytes);
  return idx < 0 ? 0 : class_capacity(idx);
}

void PacketPool::trim() {
  Central& c = central();
  for (int idx = 0; idx < kClasses; ++idx) {
    std::vector<std::byte*> taken;
    {
      std::lock_guard<std::mutex> lock(c.spill[idx].mu);
      taken.swap(c.spill[idx].free);
    }
    for (std::byte* p : taken) heap_free(p);
  }
}

}  // namespace pulsarqr::prt
