#include "prt/tuple.hpp"

namespace pulsarqr::prt {

std::size_t Tuple::hash() const {
  // FNV-1a over the integer values; stable across platforms.
  std::uint64_t h = 1469598103934665603ULL;
  for (int v : vals_) {
    auto u = static_cast<std::uint32_t>(v);
    for (int b = 0; b < 4; ++b) {
      h ^= (u >> (8 * b)) & 0xffu;
      h *= 1099511628211ULL;
    }
  }
  return static_cast<std::size_t>(h);
}

std::string Tuple::to_string() const {
  std::string s = "(";
  for (std::size_t i = 0; i < vals_.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(vals_[i]);
  }
  s += ")";
  return s;
}

}  // namespace pulsarqr::prt
