#include "prt/vsa.hpp"

#include <algorithm>

#include "prt/graph_check.hpp"
#include "prt/packet_pool.hpp"
#include "prt/socket_comm.hpp"
#include "prt/wire.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

namespace pulsarqr::prt {

using namespace std::chrono_literals;

namespace {
std::uint64_t route_key(int src_node, int tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_node))
          << 32) |
         static_cast<std::uint32_t>(tag);
}

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}
}  // namespace

// ---- runtime structures -----------------------------------------------------

struct OutMsg {
  int dst_node = -1;
  int tag = -1;
  Packet p;
};

struct Vsa::Worker : Waker {
  int node_id = 0;
  int local_id = 0;
  int global_id = 0;
  std::vector<Vdp*> vdps;
  int alive = 0;
  double busy = 0.0;

  // Wake state: a generation counter bumped by every wake(), plus a
  // parked flag so producers skip the mutex entirely while the worker is
  // running or spinning (the common case). Dekker pairing: the waiter
  // publishes parked then re-reads the epoch, the waker publishes the
  // epoch then reads parked — both seq_cst, so no wake is ever lost.
  std::atomic<std::uint64_t> wake_epoch{0};
  std::atomic<bool> parked{false};
  std::mutex mu;
  std::condition_variable cv;

  // Heartbeat for the watchdog: incremented entering AND leaving fire(),
  // so an odd value means "a firing is in flight on this worker".
  std::atomic<std::uint64_t> fire_epoch{0};

  // Outgoing inter-node packets (one queue per worker, as in Figure 4).
  std::mutex omu;
  std::deque<OutMsg> outq;

  std::thread thread;

  void wake() override {
    wake_epoch.fetch_add(1, std::memory_order_seq_cst);
    if (parked.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lock(mu);  // pairs with the parked wait
      cv.notify_one();
    }
  }

  /// Spin-then-park until the wake epoch moves past `seen` (a value read
  /// BEFORE the caller's last scan, so any wake during the scan returns
  /// immediately), `stop()` turns true, or a backstop timeout expires.
  template <class Stop>
  void wait_for_wake(std::uint64_t seen, int spin_us, Stop stop) {
    if (spin_us > 0) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::microseconds(spin_us);
      int iter = 0;
      while (wake_epoch.load(std::memory_order_acquire) == seen) {
        cpu_relax();
        if ((++iter & 63) == 0 &&
            (stop() || std::chrono::steady_clock::now() >= deadline)) {
          break;
        }
      }
      if (wake_epoch.load(std::memory_order_acquire) != seen || stop()) return;
    }
    std::unique_lock<std::mutex> lock(mu);
    parked.store(true, std::memory_order_seq_cst);
    // The 10ms wait_for is a liveness backstop only; the epoch/parked
    // protocol makes real wakeups prompt.
    cv.wait_for(lock, 10ms, [&] {
      return wake_epoch.load(std::memory_order_seq_cst) != seen || stop();
    });
    parked.store(false, std::memory_order_relaxed);
  }
};

struct Vsa::Node {
  int id = 0;
  std::vector<Worker*> workers;
  std::unordered_map<std::uint64_t, Channel*> route;  ///< (src, tag) -> channel
  bool has_remote = false;
  std::thread proxy;

  // Work-stealing executor state: a shared pool of fire candidates for
  // this node's workers. pool_epoch/parked mirror the Worker wake
  // protocol so idle workers can spin outside the lock before parking.
  std::mutex pool_mu;
  std::condition_variable pool_cv;
  std::deque<Vdp*> pool;
  std::atomic<std::uint64_t> pool_epoch{0};
  std::atomic<int> parked{0};
  std::atomic<int> alive{0};

  // Outgoing inter-node queue used in work-stealing mode. Consecutive
  // firings of one VDP may run on different workers there; per-worker
  // queues would let the proxy reorder packets of a single channel, so
  // stealing funnels sends through one per-node FIFO (claim
  // serialization makes the enqueue order the channel order).
  std::mutex omu;
  std::deque<OutMsg> outq;

  /// Seconds the proxy spent on transport work (written by the proxy
  /// thread, read by run() after joining it).
  double proxy_busy = 0.0;

  void enqueue(Vdp* v) {
    {
      std::lock_guard<std::mutex> lock(pool_mu);
      pool.push_back(v);
    }
    pool_epoch.fetch_add(1, std::memory_order_seq_cst);
    if (parked.load(std::memory_order_seq_cst) > 0) {
      pool_cv.notify_one();
    }
  }
};

namespace {
/// Channel waker used in work-stealing mode: arrival of a packet turns
/// the destination VDP into a fire candidate for the whole node.
struct PoolWaker : Waker {
  Vsa::Node* node = nullptr;
  Vdp* vdp = nullptr;
  void wake() override { node->enqueue(vdp); }
};
}  // namespace

// ---- construction -----------------------------------------------------------

Vsa::Vsa(Config cfg) : cfg_(cfg) {
  require(cfg_.nodes >= 1 && cfg_.workers_per_node >= 1,
          "Vsa: need at least one node and one worker per node");
}

Vsa::~Vsa() = default;

Vdp& Vsa::add_vdp(Tuple tuple, int counter, VdpFn fn, int num_inputs,
                  int num_outputs, int color, int outputs_per_fire) {
  require(counter >= 1, "add_vdp: counter must be positive");
  require(outputs_per_fire >= 0, "add_vdp: outputs_per_fire must be >= 0");
  require(!ran_, "add_vdp: VSA already ran");
  auto vdp = std::make_unique<Vdp>(tuple, counter, std::move(fn), num_inputs,
                                   num_outputs, color, outputs_per_fire);
  auto [it, inserted] = vdps_.emplace(std::move(tuple), std::move(vdp));
  require(inserted, "add_vdp: duplicate tuple " + it->first.to_string());
  creation_order_.push_back(it->second.get());
  return *it->second;
}

void Vsa::declare_output_packets(const Tuple& vdp, int out_slot,
                                 long long total_packets) {
  auto it = vdps_.find(vdp);
  require(it != vdps_.end(),
          "declare_output_packets: unknown VDP " + vdp.to_string());
  Vdp& v = *it->second;
  require(out_slot >= 0 && out_slot < v.num_outputs(),
          "declare_output_packets: bad output slot on " + vdp.to_string());
  require(total_packets >= 0,
          "declare_output_packets: total must be >= 0 on " + vdp.to_string());
  v.declared_out_[out_slot] = total_packets;
}

void Vsa::declare_input_packets(const Tuple& vdp, int in_slot,
                                long long total_packets) {
  auto it = vdps_.find(vdp);
  require(it != vdps_.end(),
          "declare_input_packets: unknown VDP " + vdp.to_string());
  Vdp& v = *it->second;
  require(in_slot >= 0 && in_slot < v.num_inputs(),
          "declare_input_packets: bad input slot on " + vdp.to_string());
  require(total_packets >= 0,
          "declare_input_packets: total must be >= 0 on " + vdp.to_string());
  v.declared_in_[in_slot] = total_packets;
}

void Vsa::connect(const Tuple& src, int out_slot, const Tuple& dst,
                  int in_slot, std::size_t max_bytes, bool enabled,
                  int capacity) {
  require(capacity >= 0, "connect: capacity must be >= 0 (0 = unbounded)");
  edges_.push_back(
      {src, out_slot, dst, in_slot, max_bytes, enabled, capacity});
}

void Vsa::feed(const Tuple& dst, int in_slot, std::size_t max_bytes,
               std::vector<Packet> initial, bool enabled, int capacity) {
  require(capacity >= 0, "feed: capacity must be >= 0 (0 = unbounded)");
  feeds_.push_back(
      {dst, in_slot, max_bytes, std::move(initial), enabled, capacity});
}

void Vsa::map_vdp(const Tuple& tuple, int global_thread) {
  explicit_map_[tuple] = global_thread;
}

void Vsa::set_default_mapping(std::function<int(const Tuple&)> fn) {
  default_map_ = std::move(fn);
}

// ---- wiring -----------------------------------------------------------------

void Vsa::validate_and_wire() {
  const int total = total_threads();

  // Assign VDPs to threads.
  int rr = 0;
  for (Vdp* v : creation_order_) {
    int t;
    if (auto it = explicit_map_.find(v->tuple_); it != explicit_map_.end()) {
      t = it->second;
    } else if (default_map_) {
      t = default_map_(v->tuple_);
    } else {
      t = rr++ % total;
    }
    require(t >= 0 && t < total,
            "mapping: thread out of range for VDP " + v->tuple_.to_string());
    v->global_thread_ = t;
  }

  // Create workers and nodes.
  workers_.clear();
  nodes_.clear();
  for (int n = 0; n < cfg_.nodes; ++n) {
    auto node = std::make_unique<Node>();
    node->id = n;
    nodes_.push_back(std::move(node));
  }
  for (int t = 0; t < total; ++t) {
    auto w = std::make_unique<Worker>();
    w->global_id = t;
    w->node_id = t / cfg_.workers_per_node;
    w->local_id = t % cfg_.workers_per_node;
    nodes_[w->node_id]->workers.push_back(w.get());
    workers_.push_back(std::move(w));
  }
  for (Vdp* v : creation_order_) {
    workers_[v->global_thread_]->vdps.push_back(v);
    workers_[v->global_thread_]->alive += 1;
  }

  auto find_vdp = [&](const Tuple& t, const char* what) -> Vdp& {
    auto it = vdps_.find(t);
    require(it != vdps_.end(),
            std::string(what) + ": unknown VDP " + t.to_string());
    return *it->second;
  };

  // Source feeds become prefilled input channels.
  for (auto& f : feeds_) {
    Vdp& dst = find_vdp(f.dst, "feed");
    require(f.in_slot >= 0 && f.in_slot < dst.num_inputs(),
            "feed: bad input slot on " + f.dst.to_string());
    require(dst.inputs_[f.in_slot] == nullptr,
            "feed: input slot already connected on " + f.dst.to_string());
    auto ch = std::make_unique<Channel>(f.max_bytes, f.enabled,
                                        cfg_.channel_impl, f.capacity);
    for (auto& p : f.initial) ch->push(std::move(p));
    dst.inputs_[f.in_slot] = std::move(ch);
  }

  // Regular edges.
  std::map<std::pair<int, int>, int> next_tag;  // per (src node, dst node)
  for (auto& e : edges_) {
    Vdp& src = find_vdp(e.src, "connect(src)");
    Vdp& dst = find_vdp(e.dst, "connect(dst)");
    require(e.out_slot >= 0 && e.out_slot < src.num_outputs(),
            "connect: bad output slot on " + e.src.to_string());
    require(e.in_slot >= 0 && e.in_slot < dst.num_inputs(),
            "connect: bad input slot on " + e.dst.to_string());
    require(!src.outputs_[e.out_slot].connected,
            "connect: output slot already connected on " + e.src.to_string());
    require(dst.inputs_[e.in_slot] == nullptr,
            "connect: input slot already connected on " + e.dst.to_string());

    auto ch = std::make_unique<Channel>(e.max_bytes, e.enabled,
                                        cfg_.channel_impl, e.capacity);
    Channel* chp = ch.get();
    dst.inputs_[e.in_slot] = std::move(ch);

    OutputRef& out = src.outputs_[e.out_slot];
    out.connected = true;
    out.max_bytes = e.max_bytes;
    const int src_node = src.global_thread_ / cfg_.workers_per_node;
    const int dst_node = dst.global_thread_ / cfg_.workers_per_node;
    if (src_node == dst_node) {
      out.local = chp;  // zero-copy shared-memory path
      if (chp->bounded()) src.gate_outputs_ = true;
    } else {
      const int tag = next_tag[{src_node, dst_node}]++;
      out.dst_node = dst_node;
      out.tag = tag;
      nodes_[dst_node]->route[route_key(src_node, tag)] = chp;
      nodes_[src_node]->has_remote = true;
      nodes_[dst_node]->has_remote = true;
    }
  }

  // Every slot must be connected; a dangling slot is a latent deadlock.
  for (Vdp* v : creation_order_) {
    for (int s = 0; s < v->num_inputs(); ++s) {
      require(v->inputs_[s] != nullptr, "run: unconnected input slot " +
                                            std::to_string(s) + " on VDP " +
                                            v->tuple_.to_string());
    }
    for (int s = 0; s < v->num_outputs(); ++s) {
      require(v->outputs_[s].connected, "run: unconnected output slot " +
                                            std::to_string(s) + " on VDP " +
                                            v->tuple_.to_string());
    }
    // Fail fast on a silently-blocked VDP: with every input channel
    // disabled from the start it is permanently un-ready (only its own
    // firing code could enable an input), yet it counts as alive and
    // would burn the whole watchdog timeout.
    if (v->num_inputs() > 0) {
      bool any_enabled = false;
      for (const auto& ch : v->inputs_) any_enabled |= ch->enabled();
      require(any_enabled, "run: every input channel of VDP " +
                               v->tuple_.to_string() +
                               " starts disabled; it can never fire");
    }
  }

  // Attach wakers now that ownership is final. With the sweep executor a
  // packet wakes the destination VDP's bound worker; with work stealing
  // it makes the VDP a fire candidate for its whole node.
  if (cfg_.work_stealing) {
    for (Vdp* v : creation_order_) {
      Node* node = nodes_[v->global_thread_ / cfg_.workers_per_node].get();
      node->alive.fetch_add(1, std::memory_order_relaxed);
      auto waker = std::make_unique<PoolWaker>();
      waker->node = node;
      waker->vdp = v;
      for (auto& ch : v->inputs_) ch->set_waker(waker.get());
      // Backpressure liveness: a pop on a bounded local output of v frees
      // room, so v (stalled by its firing rule) becomes a candidate again.
      for (OutputRef& out : v->outputs_) {
        if (out.local != nullptr && out.local->bounded()) {
          out.local->set_pop_waker(waker.get());
        }
      }
      pool_wakers_.push_back(std::move(waker));
    }
  } else {
    for (Vdp* v : creation_order_) {
      for (auto& ch : v->inputs_) {
        ch->set_waker(workers_[v->global_thread_].get());
      }
      // Backpressure liveness (sweep executor): wake the producer's bound
      // worker when the consumer pops a bounded local channel.
      for (OutputRef& out : v->outputs_) {
        if (out.local != nullptr && out.local->bounded()) {
          out.local->set_pop_waker(workers_[v->global_thread_].get());
        }
      }
    }
  }
}

// ---- packet routing ---------------------------------------------------------

void Vsa::push_from(VdpContext& ctx, int slot, Packet p) {
  Vdp& v = ctx.vdp;
  PQR_ASSERT(slot >= 0 && slot < v.num_outputs(), "push: bad output slot");
  OutputRef& out = v.outputs_[slot];
  PQR_ASSERT(out.connected, "push: unconnected output slot");
  PQR_ASSERT(p.size() <= out.max_bytes, "push: packet exceeds channel max");
  if (out.local != nullptr) {
    out.local->push(std::move(p));
    return;
  }
  // Inter-node: hand the packet to the outgoing queue and wake the
  // node's proxy through its mailbox (MPI-progress style).
  if (cfg_.work_stealing) {
    Node& n = *nodes_[ctx.node];
    std::lock_guard<std::mutex> lock(n.omu);
    n.outq.push_back({out.dst_node, out.tag, std::move(p)});
  } else {
    Worker& w = *workers_[ctx.global_thread];
    std::lock_guard<std::mutex> lock(w.omu);
    w.outq.push_back({out.dst_node, out.tag, std::move(p)});
  }
  comm_->interrupt(ctx.node);
}

void VdpContext::push(int slot, Packet p) {
  vsa.push_from(*this, slot, std::move(p));
}

// ---- execution --------------------------------------------------------------

void Vsa::fire(Vdp& v, Worker& w) {
  // Heartbeat -> odd: tells the watchdog a firing STARTED (and is still
  // in flight), so one kernel outliving watchdog_seconds is progress, not
  // a deadlock.
  w.fire_epoch.fetch_add(1, std::memory_order_relaxed);
  const double t0 = recorder_->now();
  VdpContext ctx{v, *this, w.node_id, w.global_id};
  v.fn_(ctx);
  --v.counter_;
  if (v.counter_ <= 0) {
    v.dead_.store(true, std::memory_order_release);
    v.local_.reset();
  }
  const double t1 = recorder_->now();
  w.busy += t1 - t0;
  recorder_->record(w.global_id, v.color_, v.tuple_, t0, t1);
  w.fire_epoch.fetch_add(1, std::memory_order_relaxed);  // back to even
  fires_.fetch_add(1, std::memory_order_relaxed);
}

void Vsa::worker_loop(Worker& w) {
  while (!cancelled_.load(std::memory_order_relaxed) && w.alive > 0) {
    // Sample the wake epoch BEFORE the scan: a packet arriving for a VDP
    // the scan already passed bumps the epoch and voids the wait below.
    const std::uint64_t seen = w.wake_epoch.load(std::memory_order_acquire);
    bool fired = false;
    for (Vdp* v : w.vdps) {
      if (v->dead()) continue;
      while (v->ready()) {
        fire(*v, w);
        fired = true;
        if (v->dead()) {
          --w.alive;
          break;
        }
        if (cfg_.scheduling == Scheduling::Lazy) break;
      }
      if (cancelled_.load(std::memory_order_relaxed)) break;
    }
    if (w.alive == 0) break;
    if (!fired) {
      w.wait_for_wake(seen, spin_us_, [this] {
        return cancelled_.load(std::memory_order_relaxed);
      });
    }
  }
  workers_running_.fetch_sub(1, std::memory_order_acq_rel);
}

void Vsa::worker_loop_stealing(Worker& w, Node& n) {
  while (!cancelled_.load(std::memory_order_relaxed) &&
         n.alive.load(std::memory_order_acquire) > 0) {
    // Sampled before the pool check so an enqueue racing with an empty
    // verdict cuts the wait short (same protocol as Worker::wait_for_wake).
    const std::uint64_t seen = n.pool_epoch.load(std::memory_order_acquire);
    Vdp* v = nullptr;
    {
      std::unique_lock<std::mutex> lock(n.pool_mu);
      if (!n.pool.empty()) {
        v = n.pool.front();
        n.pool.pop_front();
      }
    }
    if (v == nullptr) {
      auto stop = [&] {
        return cancelled_.load(std::memory_order_relaxed) ||
               n.alive.load(std::memory_order_acquire) <= 0;
      };
      if (spin_us_ > 0) {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::microseconds(spin_us_);
        int iter = 0;
        while (n.pool_epoch.load(std::memory_order_acquire) == seen) {
          cpu_relax();
          if ((++iter & 63) == 0 &&
              (stop() || std::chrono::steady_clock::now() >= deadline)) {
            break;
          }
        }
      }
      if (n.pool_epoch.load(std::memory_order_acquire) == seen && !stop()) {
        std::unique_lock<std::mutex> lock(n.pool_mu);
        n.parked.fetch_add(1, std::memory_order_seq_cst);
        n.pool_cv.wait_for(lock, 10ms, [&] {
          return !n.pool.empty() ||
                 n.pool_epoch.load(std::memory_order_seq_cst) != seen ||
                 stop();
        });
        n.parked.fetch_sub(1, std::memory_order_relaxed);
      }
      continue;
    }
    if (v->dead() || !v->ready()) continue;  // stale candidate
    bool expected = false;
    if (!v->running_.compare_exchange_strong(expected, true)) {
      continue;  // another worker holds it; it re-enqueues if still ready
    }
    if (v->dead()) {
      v->running_.store(false);
      continue;
    }
    while (v->ready()) {
      fire(*v, w);
      if (v->dead() || cfg_.scheduling == Scheduling::Lazy) break;
    }
    const bool died = v->dead();
    v->running_.store(false, std::memory_order_release);
    if (died) {
      if (n.alive.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Node done: release idle workers. Locking pairs with the parked
        // predicate so the last notification cannot slip between its
        // evaluation and the park.
        std::lock_guard<std::mutex> lock(n.pool_mu);
        n.pool_cv.notify_all();
      }
    } else if (v->ready()) {
      // Re-check AFTER unclaiming: a packet that arrived while we held
      // the claim may have had its candidate dropped by another worker
      // (claim failure), so this VDP's wakeup is now our responsibility.
      n.enqueue(v);
    }
  }
  workers_running_.fetch_sub(1, std::memory_order_acq_rel);
}

void Vsa::proxy_loop(Node& n) {
  // Reliable endpoint: proxy-local, created only when the protocol is on,
  // so the disabled fast path below is byte-for-byte the old raw-frame
  // proxy (the only addition is a null-pointer test per batch).
  std::unique_ptr<net::Reliable> rel;
  // Crash recovery is active only in socket node processes with a respawn
  // budget: the Reliable endpoint then retains acked frames for replay,
  // idles retransmits to dead peers instead of exhausting, and the proxy
  // fences stale incarnations + dedups a replacement's re-sent prefix.
  const bool recovery = sock_comm_ != nullptr && cfg_.max_respawns > 0;
  if (cfg_.reliable_transport) {
    net::Reliable::Params params;
    params.rto_us = cfg_.retransmit_timeout_us;
    params.max_retries = cfg_.max_retransmits;
    if (recovery) params.replay_log_bytes = cfg_.replay_log_bytes;
    rel = std::make_unique<net::Reliable>(*comm_, n.id, params);
    if (recovery) {
      // While a peer's process is down (EOF / write failure seen, no
      // replacement yet) retransmits to it are deferred, not charged
      // against the retry budget — the respawn window must not look like
      // a lossy link that exhausted.
      rel->set_link_up_probe(
          [this](int r) { return sock_comm_->peer_alive(r); });
    }
    if (recorder_->enabled()) {
      // Retransmissions show up as zero-width marks on the node's proxy
      // lane (lane total_threads()+node), tuple = (dst, tag, seq).
      rel->set_retransmit_hook([this, &n](int dst, int tag, long long seq) {
        recorder_->record_mark(total_threads() + n.id, trace::kColorTransport,
                               Tuple{dst, tag, static_cast<int>(seq)},
                               recorder_->now());
      });
    }
  }
  // Channel-level exactly-once bookkeeping for crash replay. Wire
  // sequence numbers cannot dedup a respawned peer's re-sent stream: the
  // replacement re-coalesces from scratch, so its frame k need not carry
  // the same application frames as the dead incarnation's frame k. What
  // IS deterministic is the per-channel order of application frames
  // (single producer VDP, fixed firing order, in-order delivery under
  // Reliable) — so we count delivered frames per (source node, tag) route
  // and, at a rejoin, arrange to drop exactly the already-delivered
  // prefix of the replacement's fresh stream.
  std::unordered_map<std::uint64_t, long long> delivered;
  std::unordered_map<std::uint64_t, long long> replay_skip;
  auto should_deliver = [&](int src, int tag) {
    if (!recovery) return true;
    const std::uint64_t key = route_key(src, tag);
    if (auto it = replay_skip.find(key);
        it != replay_skip.end() && it->second > 0) {
      --it->second;
      return false;  // re-executed duplicate of a frame we already pushed
    }
    ++delivered[key];
    return true;
  };
  auto deliver = [&](net::Message& m) {
    if (m.tag == net::kAggregateTag) {
      // Split an aggregate back into its application frames. Each frame
      // gets a fresh pooled packet: the aggregate buffer is shared with
      // the sender (and, under Reliable, with its retransmit retention),
      // so channels must not alias into it.
      net::FrameCursor cursor(m.payload);
      net::WireFrame wf;
      int count = 0;
      while (cursor.next(wf)) {
        ++count;
        if (!should_deliver(m.source, wf.tag)) continue;
        auto it = n.route.find(route_key(m.source, wf.tag));
        PQR_ASSERT(it != n.route.end(), "proxy: unroutable coalesced frame");
        Packet p = Packet::make(wf.size, wf.meta);
        if (wf.size > 0) std::memcpy(p.bytes(), wf.data, wf.size);
        it->second->push(std::move(p));
      }
      PQR_ASSERT(count == m.meta, "proxy: aggregate frame count mismatch");
      return;
    }
    if (!should_deliver(m.source, m.tag)) return;
    auto it = n.route.find(route_key(m.source, m.tag));
    PQR_ASSERT(it != n.route.end(), "proxy: unroutable message");
    // Raw frame: adopt the transport's (pooled) buffer directly.
    m.payload.set_meta(m.meta);
    it->second->push(std::move(m.payload));
  };
  // Incoming frames pass through the protocol first (ack processing,
  // dedup, in-order reassembly); `inbox` holds what it cleared for
  // delivery. With the protocol off, frames go straight through.
  std::deque<net::Message> inbox;
  auto accept = [&](net::Message&& m) {
    // Fence frames from a dead incarnation of a respawned peer. They can
    // linger in socket buffers or our mailbox across the rejoin; a stale
    // cumulative ack in particular would trim frames the replay path just
    // requeued, deadlocking the replacement. The fence is applied here —
    // after the mailbox, before the protocol — because the rejoin install
    // happens on this same thread, so no frame can race past it.
    if (recovery && m.source != n.id &&
        m.epoch < sock_comm_->peer_epoch(m.source)) {
      return;
    }
    if (rel) {
      rel->on_receive(std::move(m), inbox);
    } else {
      inbox.push_back(std::move(m));
    }
  };
  auto deliver_inbox = [&] {
    while (!inbox.empty()) {
      deliver(inbox.front());
      inbox.pop_front();
    }
  };
  // ---- egress: per-destination frame coalescing ----
  //
  // Outbound frames are gather-copied into one pooled wire buffer per
  // destination and shipped as a single aggregate message (one fault-plan
  // decision, one sequence number) when the stage fills, its deadline
  // expires, or the run winds down. Frames that could never fit are sent
  // directly — after flushing the stage, so per-destination order holds.
  using Clock = std::chrono::steady_clock;
  const std::size_t cap = cfg_.coalesce_bytes;
  const auto flush_window = std::chrono::microseconds(
      cfg_.coalesce_flush_us > 0 ? cfg_.coalesce_flush_us : 0);
  struct Egress {
    net::FrameStager stager;
    Clock::time_point deadline{};  ///< flush-by time of the oldest frame
    explicit Egress(std::size_t c) : stager(c) {}
  };
  std::map<int, Egress> egress;  // destination rank -> staging buffer
  long long frames = 0, frame_bytes = 0, coalesced = 0, aggregates = 0;
  double busy = 0.0;

  auto wire_send = [&](int dst, int tag, const Packet& p, int meta,
                       bool shared) {
    if (rel) {
      rel->send(dst, tag, p, meta, shared);
    } else {
      const int req = comm_->isend(n.id, dst, tag, p, meta, /*seq=*/-1,
                                   /*ack=*/-1, /*is_ack=*/false, shared);
      PQR_ASSERT(comm_->test(req), "proxy: isend did not complete");
    }
  };
  auto flush = [&](int dst, Egress& e) {
    if (e.stager.empty()) return false;
    coalesced += e.stager.frames();
    ++aggregates;
    const Packet wire = e.stager.take();
    // Shared: the gather copy above already played the address-space
    // copy; the receiving proxy splits into fresh pooled packets.
    wire_send(dst, net::kAggregateTag, wire, wire.meta(), /*shared=*/true);
    return true;
  };
  auto send_one = [&](OutMsg& m) {
    ++frames;
    frame_bytes += static_cast<long long>(m.p.size());
    if (cap == 0) {  // coalescing off: one wire message per frame
      wire_send(m.dst_node, m.tag, m.p, m.p.meta(), /*shared=*/false);
      return;
    }
    Egress& e = egress.try_emplace(m.dst_node, cap).first->second;
    if (net::FrameStager::wire_size(m.p.size()) > cap) {
      flush(m.dst_node, e);  // preserve per-destination order
      wire_send(m.dst_node, m.tag, m.p, m.p.meta(), /*shared=*/false);
      return;
    }
    if (!e.stager.fits(m.p.size())) flush(m.dst_node, e);
    if (e.stager.empty()) e.deadline = Clock::now() + flush_window;
    e.stager.add(m.tag, m.p.meta(), m.p);
  };
  auto flush_due = [&](Clock::time_point now) {
    bool any = false;
    for (auto& [dst, e] : egress) {
      if (!e.stager.empty() && now >= e.deadline) any |= flush(dst, e);
    }
    return any;
  };
  auto flush_all = [&] {
    bool any = false;
    for (auto& [dst, e] : egress) any |= flush(dst, e);
    return any;
  };
  /// Microseconds until the earliest staged-frame deadline, capped at
  /// `cap_us` — bounds the idle recv_wait so a deadline flush is prompt.
  auto next_flush_in_us = [&](Clock::time_point now, int cap_us) {
    long long best = cap_us;
    for (auto& [dst, e] : egress) {
      if (e.stager.empty()) continue;
      const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
                            e.deadline - now)
                            .count();
      best = std::min(best, std::max<long long>(left, 0));
    }
    return static_cast<int>(best);
  };

  // Batched outgoing drain: swap the whole queue out under one lock
  // instead of one lock round-trip per message, then stage lock-free.
  std::deque<OutMsg> batch;
  auto send_all = [&](std::mutex& mu, std::deque<OutMsg>& q) {
    batch.clear();
    {
      std::lock_guard<std::mutex> lock(mu);
      batch.swap(q);
    }
    for (OutMsg& m : batch) send_one(m);
    return !batch.empty();
  };
  for (;;) {
    const auto t0 = Clock::now();
    bool any = false;
    if (recovery) {
      // Install any peer rejoin queued by the control thread. This thread
      // owns the Reliable endpoint and the routes, so install + replay +
      // dedup snapshot are a single atomic step from the proxy's view.
      for (const auto& rj : sock_comm_->take_rejoins()) {
        any = true;
        sock_comm_->install_rejoin(rj);
        if (rel) {
          const long long nrep = rel->replay_link(rj.rank, Clock::now());
          if (nrep < 0) {
            // The replay log overflowed its byte budget before this crash:
            // part of the acked history is gone and the replacement can
            // never be made whole. Tear the run down with a transport
            // failure instead of silently wedging.
            cancel_run_from_transport();
          }
          rel->reset_recv_link(rj.rank);
        }
        // The replacement re-executes its node from the start: arrange to
        // drop the prefix of each of its channels that this node already
        // consumed (exactly-once at the channel level).
        for (const auto& [key, cnt] : delivered) {
          if (static_cast<int>(key >> 32) == rj.rank) replay_skip[key] = cnt;
        }
      }
    }
    // Serve the outgoing queues of this node's workers (and the node
    // queue used by the work-stealing executor).
    for (Worker* w : n.workers) {
      any |= send_all(w->omu, w->outq);
    }
    any |= send_all(n.omu, n.outq);
    // Drain all queued incoming messages in one mailbox swap.
    for (auto& m : comm_->drain(n.id)) {
      accept(std::move(m));
      any = true;
    }
    deliver_inbox();
    if (rel) {
      rel->flush_acks();
      // Retransmit timed-out frames — but only while the run is live: a
      // completed or cancelled run must not ping-pong late frames between
      // exiting proxies, and a post-completion unacked frame (receiver
      // done, final ack lost) is not a failure.
      if (!done_.load(std::memory_order_acquire) &&
          !cancelled_.load(std::memory_order_acquire) &&
          !rel->poll(Clock::now())) {
        cancel_run_from_transport();
      }
    }
    const bool winding_down = done_.load(std::memory_order_acquire) ||
                              cancelled_.load(std::memory_order_acquire);
    // Ship staged aggregates whose deadline passed — or everything, once
    // the run winds down (an unflushed stage would strand its frames).
    any |= winding_down ? flush_all() : flush_due(Clock::now());
    busy += std::chrono::duration<double>(Clock::now() - t0).count();
    if (winding_down) {
      if (!any) break;
      continue;
    }
    if (!any) {
      // Idle: no outbound frames queued and the mailbox is dry, so the
      // pipeline is likely stalled waiting on what we staged. Flush now
      // instead of holding to the deadline (Nagle with an idle bypass) —
      // extra batching should cost latency only while the proxy is busy.
      const auto f0 = Clock::now();
      if (flush_all()) {
        busy += std::chrono::duration<double>(Clock::now() - f0).count();
        continue;
      }
      if (auto m = comm_->recv_wait(n.id, next_flush_in_us(Clock::now(), 200))) {
        const auto r0 = Clock::now();
        accept(std::move(*m));
        deliver_inbox();
        busy += std::chrono::duration<double>(Clock::now() - r0).count();
      }
    }
  }
  n.proxy_busy = busy;
  total_remote_msgs_.fetch_add(frames, std::memory_order_relaxed);
  total_remote_bytes_.fetch_add(frame_bytes, std::memory_order_relaxed);
  total_coalesced_.fetch_add(coalesced, std::memory_order_relaxed);
  total_aggregates_.fetch_add(aggregates, std::memory_order_relaxed);
  if (rel) {
    // Publish endpoint totals (and, on a failed run, link snapshots) for
    // RunStats / the RunReport; run() joins proxies before reading them.
    total_retransmits_.fetch_add(rel->retransmits(),
                                 std::memory_order_relaxed);
    total_dups_suppressed_.fetch_add(rel->duplicates_suppressed(),
                                     std::memory_order_relaxed);
    total_acks_sent_.fetch_add(rel->acks_sent(), std::memory_order_relaxed);
    total_replayed_.fetch_add(rel->replayed(), std::memory_order_relaxed);
    if (cancelled_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(fail_mu_);
      for (auto& g : rel->gaps()) link_gaps_.push_back(std::move(g));
    }
  }
}

void Vsa::cancel_run_from_transport() {
  if (transport_failed_.exchange(true, std::memory_order_acq_rel)) return;
  cancelled_.store(true, std::memory_order_release);
  // Same wake fan-out as the shutdown path in run(): parked workers,
  // work-stealing pools, and proxies blocked in recv_wait.
  for (auto& w : workers_) w->wake();
  for (auto& node : nodes_) {
    std::lock_guard<std::mutex> lock(node->pool_mu);
    node->pool_cv.notify_all();
  }
  for (int r = 0; r < cfg_.nodes; ++r) comm_->interrupt(r);
}

Vsa::RunStats Vsa::run() {
  require(!ran_, "run: VSA already ran");
  if (cfg_.graph_check) {
    const GraphReport report = GraphCheck::check(*this);
    if (!report.ok()) {
      throw Error(
          "GraphCheck: the VSA graph is malformed; aborting before "
          "execution (set Config::graph_check = false to bypass).\n" +
          report.to_string());
    }
  }
  // Marked only after the graph passes the check: a lint failure leaves
  // the object reporting the graph error again on retry, not a
  // misleading "already ran".
  ran_ = true;
  validate_and_wire();
  spin_us_ = cfg_.spin_us;
  if (spin_us_ < 0) {
    // Auto: spin only when every worker can have its own hardware thread;
    // on an oversubscribed machine an idle spinner just steals the core
    // from the worker that has the packet.
    const unsigned hw = std::thread::hardware_concurrency();
    spin_us_ = (hw != 0 && workers_.size() <= hw) ? 50 : 0;
  }
  if (cfg_.max_respawns > 0) {
    require(cfg_.transport == Transport::Socket,
            "run: Config::max_respawns requires the Socket transport (crash "
            "recovery respawns OS processes)");
    require(cfg_.reliable_transport,
            "run: crash recovery (max_respawns > 0) requires "
            "reliable_transport — survivors replay a crashed peer's frames "
            "from the protocol's retained send log");
  }
  require(!cfg_.fault_plan.kill() || cfg_.transport == Transport::Socket,
          "run: FaultPlan kill faults require the Socket transport (there is "
          "no process to kill in-process)");

  if (cfg_.transport == Transport::Socket) return run_socket();

  comm_ = std::make_unique<net::MailboxComm>(cfg_.nodes);
  if (cfg_.fault_plan.any()) comm_->set_fault_plan(cfg_.fault_plan);
  // Pool counters are process-global; snapshot them so RunStats reports
  // this run's delta (a warmed pool shows zero misses here).
  const PacketPool::Stats pool0 = PacketPool::stats();
  // One extra trace lane per node for its proxy (transport marks).
  recorder_ = std::make_unique<trace::Recorder>(total_threads(), cfg_.trace,
                                                cfg_.nodes);
  recorder_->start_clock();

  workers_running_.store(static_cast<int>(workers_.size()));
  const auto t_start = std::chrono::steady_clock::now();
  if (cfg_.work_stealing) {
    // Seed every VDP as an initial fire candidate on its node.
    for (Vdp* v : creation_order_) {
      nodes_[v->global_thread_ / cfg_.workers_per_node]->enqueue(v);
    }
  }
  for (auto& w : workers_) {
    w->thread = std::thread([this, wp = w.get()] {
      if (cfg_.work_stealing) {
        worker_loop_stealing(*wp, *nodes_[wp->node_id]);
      } else {
        worker_loop(*wp);
      }
    });
  }
  bool any_proxy = false;
  for (auto& n : nodes_) {
    if (n->has_remote) {
      n->proxy = std::thread([this, np = n.get()] { proxy_loop(*np); });
      any_proxy = true;
    }
  }

  // Watchdog: progress is any completed fire, any fire START since the
  // last check, or a firing currently in flight (odd per-worker
  // heartbeat). A single kernel outliving watchdog_seconds is therefore
  // never a false deadlock; only "no VDP can fire anywhere" trips it.
  long long last_fires = -1;
  std::vector<std::uint64_t> last_heartbeat(workers_.size(), 0);
  auto last_progress = std::chrono::steady_clock::now();
  while (workers_running_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(1ms);
    bool progress = false;
    const long long f = fires_.load(std::memory_order_relaxed);
    if (f != last_fires) {
      last_fires = f;
      progress = true;
    }
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const std::uint64_t hb =
          workers_[i]->fire_epoch.load(std::memory_order_relaxed);
      if (hb != last_heartbeat[i]) {
        last_heartbeat[i] = hb;
        progress = true;
      } else if ((hb & 1u) != 0) {
        progress = true;  // long-running firing still in flight
      }
    }
    if (progress) {
      last_progress = std::chrono::steady_clock::now();
    } else if (cfg_.watchdog_seconds > 0 &&
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             last_progress)
                       .count() > cfg_.watchdog_seconds) {
      cancelled_.store(true, std::memory_order_release);
      break;
    }
  }

  // Shut down: wake everything, join workers, then proxies.
  for (auto& w : workers_) w->wake();
  for (auto& n : nodes_) {
    std::lock_guard<std::mutex> lock(n->pool_mu);
    n->pool_cv.notify_all();
  }
  for (auto& w : workers_) w->thread.join();
  done_.store(true, std::memory_order_release);
  if (any_proxy) {
    for (int r = 0; r < cfg_.nodes; ++r) comm_->interrupt(r);
    for (auto& n : nodes_) {
      if (n->proxy.joinable()) n->proxy.join();
    }
  }

  if (cancelled_.load()) {
    // Workers and proxies are already joined: the teardown is complete
    // and the error below is the only thing that escapes.
    RunReport report = make_run_report();
    std::string header;
    if (report.reason == "transport") {
      header =
          "PRT transport: reliable delivery failed (retransmit limit "
          "reached after " +
          std::to_string(cfg_.max_retransmits) +
          " attempts); tearing the run down.\n";
    } else {
      header = "PRT watchdog: no VDP fired for " +
               std::to_string(cfg_.watchdog_seconds) +
               "s; the VSA is deadlocked.\n";
    }
    throw RunError(header, std::move(report));
  }

  RunStats stats;
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  stats.fires = fires_.load();
  stats.remote_messages = total_remote_msgs_.load(std::memory_order_relaxed);
  stats.remote_bytes = total_remote_bytes_.load(std::memory_order_relaxed);
  stats.wire_offered = comm_->messages_offered();
  stats.wire_messages = comm_->messages_sent();
  stats.wire_bytes = comm_->bytes_sent();
  stats.fault_streams = static_cast<long long>(comm_->fault_streams());
  stats.coalesced_frames = total_coalesced_.load(std::memory_order_relaxed);
  stats.aggregates_sent = total_aggregates_.load(std::memory_order_relaxed);
  const PacketPool::Stats pool1 = PacketPool::stats();
  stats.pool_hits = pool1.hits - pool0.hits;
  stats.pool_misses = pool1.misses - pool0.misses;
  stats.faults = comm_->fault_counters();
  stats.retransmits = total_retransmits_.load(std::memory_order_relaxed);
  stats.duplicates_suppressed =
      total_dups_suppressed_.load(std::memory_order_relaxed);
  stats.acks_sent = total_acks_sent_.load(std::memory_order_relaxed);
  for (auto& w : workers_) stats.busy_per_thread.push_back(w->busy);
  for (auto& node : nodes_) {
    stats.proxy_busy_per_node.push_back(node->proxy_busy);
  }
  for (Vdp* v : creation_order_) {
    for (auto& ch : v->inputs_) stats.leftover_packets += ch->size();
  }
  for (int r = 0; r < cfg_.nodes; ++r) {
    while (auto m = comm_->try_recv(r)) {
      // Protocol frames lingering in a mailbox after a successful run
      // (late pure acks, retransmitted copies of already-delivered data)
      // are expected residue, not lost application packets.
      if (!m->is_ack && m->seq < 0) ++stats.leftover_packets;
    }
  }
  return stats;
}

// ---- socket transport: one process per node ---------------------------------
//
// run_socket() forks after the graph is built and wired but before any
// thread exists, so every node process inherits an identical copy-on-write
// image of the VSA (VDPs, channels, feeds, globals). Each child runs ONLY
// its own node's workers and proxy over a SocketComm wired into a
// pre-opened socketpair mesh; the parent runs no VDPs at all — it is the
// control plane. Per-child results and stats travel back over a dedicated
// control socketpair as little-endian blobs (wire.hpp).
//
// Control protocol (child c <-> parent):
//   c -> p  'D'                    local workers finished cleanly
//   p -> c  'G'                    every node finished; tear down
//   p -> c  'C'                    another node failed; abandon the run
//   c -> p  'E' u64 len  blob      success epilogue (stats + app blob)
//   c -> p  'F' u64 len  blob      serialized RunReport (local failure)
// A child that gets 'C' (or loses the parent) exits silently with
// status 1; a child EOF without 'E'/'F' means it crashed outright.

namespace {

bool fd_send_all(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t k = ::send(fd, p, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

bool fd_read_exact(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t k = ::recv(fd, p, n, 0);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (k == 0) return false;  // EOF
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

/// Bounded counterpart of fd_read_exact: poll before every recv and give
/// up (returning false) once `deadline` passes. Control-plane reads in
/// the parent must never block indefinitely on a wedged child — the
/// caller escalates to the SIGKILL backstop instead.
bool fd_read_deadline(int fd, void* buf, std::size_t n,
                      std::chrono::steady_clock::time_point deadline) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    if (left < 0) return false;
    pollfd pfd{fd, POLLIN, 0};
    const int pn = ::poll(&pfd, 1, static_cast<int>(std::min<long long>(
                                       left, 100)));
    if (pn < 0 && errno != EINTR) return false;
    if (pn <= 0) continue;
    const ssize_t k = ::recv(fd, p, n, 0);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (k == 0) return false;  // EOF
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

/// Read one control byte, keeping room for an SCM_RIGHTS descriptor: the
/// rejoin handshake rides its fd on the first byte of the 'R' message,
/// and a plain read() at that moment would silently discard it.
/// Returns 1 on success, 0 on EOF, -1 on error; *out_fd receives the
/// passed descriptor (or stays -1).
int ctl_read_byte(int fd, char* c, int* out_fd) {
  *out_fd = -1;
  iovec iov{c, 1};
  alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = cbuf;
  msg.msg_controllen = sizeof cbuf;
  for (;;) {
    const ssize_t k = ::recvmsg(fd, &msg, 0);
    if (k < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (k == 0) return 0;
    break;
  }
  for (cmsghdr* cm = CMSG_FIRSTHDR(&msg); cm != nullptr;
       cm = CMSG_NXTHDR(&msg, cm)) {
    if (cm->cmsg_level == SOL_SOCKET && cm->cmsg_type == SCM_RIGHTS) {
      std::memcpy(out_fd, CMSG_DATA(cm), sizeof(int));
    }
  }
  return 1;
}

/// Send a small control message with one descriptor attached to its
/// first byte (SCM_RIGHTS). The kernel duplicates the fd into the
/// receiver at delivery, so the caller may close its copy on return.
bool ctl_send_fd(int fd, const std::byte* hdr, std::size_t n, int pass_fd) {
  iovec iov{const_cast<std::byte*>(hdr), n};
  alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
  std::memset(cbuf, 0, sizeof cbuf);
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = cbuf;
  msg.msg_controllen = sizeof cbuf;
  cmsghdr* cm = CMSG_FIRSTHDR(&msg);
  cm->cmsg_level = SOL_SOCKET;
  cm->cmsg_type = SCM_RIGHTS;
  cm->cmsg_len = CMSG_LEN(sizeof(int));
  std::memcpy(CMSG_DATA(cm), &pass_fd, sizeof(int));
  for (;;) {
    const ssize_t k = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    // A socketpair takes the whole few-byte message atomically; finish a
    // (theoretical) short write without re-sending the ancillary data.
    if (static_cast<std::size_t>(k) < n) {
      return fd_send_all(fd, hdr + k, n - static_cast<std::size_t>(k));
    }
    return true;
  }
}

bool ctl_send_blob(int fd, char type, const net::wire::Blob& b) {
  std::byte hdr[9];
  hdr[0] = static_cast<std::byte>(type);
  net::wire::put_u64(hdr + 1, b.size());
  if (!fd_send_all(fd, hdr, sizeof hdr)) return false;
  return b.size() == 0 || fd_send_all(fd, b.data(), b.size());
}

void serialize_report(net::wire::Blob& b, const Vsa::RunReport& r) {
  b.str(r.reason);
  b.u32(static_cast<std::uint32_t>(r.stuck_vdps.size()));
  for (const auto& s : r.stuck_vdps) b.str(s);
  b.i32(r.vdps_alive);
  b.u32(static_cast<std::uint32_t>(r.links.size()));
  for (const auto& g : r.links) {
    b.i32(g.src);
    b.i32(g.dst);
    b.i64(g.next_seq);
    b.i64(g.acked);
    b.i64(g.expected);
    b.i32(g.unacked);
    b.i32(g.buffered_out_of_order);
    b.u32(g.exhausted ? 1 : 0);
    b.u32(static_cast<std::uint32_t>(g.pending_tags.size()));
    for (int t : g.pending_tags) b.i32(t);
  }
  b.i64(r.faults.dropped);
  b.i64(r.faults.duplicated);
  b.i64(r.faults.delayed);
  b.i64(r.faults.reordered);
  b.i64(r.retransmits);
  b.u32(static_cast<std::uint32_t>(r.dead_ranks.size()));
  for (int d : r.dead_ranks) b.i32(d);
}

Vsa::RunReport deserialize_report(const std::byte* p, std::size_t n) {
  net::wire::BlobReader br(p, n);
  Vsa::RunReport r;
  r.reason = br.str();
  const std::uint32_t ns = br.u32();
  for (std::uint32_t i = 0; i < ns; ++i) r.stuck_vdps.push_back(br.str());
  r.vdps_alive = br.i32();
  const std::uint32_t nl = br.u32();
  for (std::uint32_t i = 0; i < nl; ++i) {
    net::LinkGap g;
    g.src = br.i32();
    g.dst = br.i32();
    g.next_seq = br.i64();
    g.acked = br.i64();
    g.expected = br.i64();
    g.unacked = br.i32();
    g.buffered_out_of_order = br.i32();
    g.exhausted = br.u32() != 0;
    const std::uint32_t nt = br.u32();
    for (std::uint32_t t = 0; t < nt; ++t) g.pending_tags.push_back(br.i32());
    r.links.push_back(std::move(g));
  }
  r.faults.dropped = br.i64();
  r.faults.duplicated = br.i64();
  r.faults.delayed = br.i64();
  r.faults.reordered = br.i64();
  r.retransmits = br.i64();
  const std::uint32_t nd = br.u32();
  for (std::uint32_t i = 0; i < nd; ++i) r.dead_ranks.push_back(br.i32());
  return r;
}

std::string failure_header(const std::string& reason, const Vsa::Config& cfg) {
  if (reason == "transport") {
    return "PRT transport: reliable delivery failed (retransmit limit "
           "reached after " +
           std::to_string(cfg.max_retransmits) +
           " attempts); tearing the run down.\n";
  }
  if (reason == "watchdog") {
    return "PRT watchdog: no VDP fired for " +
           std::to_string(cfg.watchdog_seconds) +
           "s; the VSA is deadlocked.\n";
  }
  return "PRT socket transport: a node process exited without a report "
         "(crash or abort in a forked node) and the respawn budget was "
         "exhausted or recovery is off (Config::max_respawns); tearing the "
         "run down.\n";
}

}  // namespace

void Vsa::child_main(int rank, std::vector<int> peer_fds, int control_fd,
                     std::uint32_t incarnation,
                     std::vector<std::uint32_t> peer_epochs) {
  auto sock_comm = std::make_unique<net::SocketComm>(
      cfg_.nodes, rank, std::move(peer_fds), incarnation,
      std::move(peer_epochs));
  net::SocketComm* sock = sock_comm.get();
  sock_comm_ = sock;
  comm_ = std::move(sock_comm);
  if (cfg_.fault_plan.any()) comm_->set_fault_plan(cfg_.fault_plan);
  const PacketPool::Stats pool0 = PacketPool::stats();
  recorder_ = std::make_unique<trace::Recorder>(total_threads(), cfg_.trace,
                                                cfg_.nodes);
  recorder_->start_clock();

  Node& node = *nodes_[rank];
  std::vector<Worker*> local;
  for (auto& w : workers_) {
    if (w->node_id == rank) local.push_back(w.get());
  }
  workers_running_.store(static_cast<int>(local.size()));
  if (cfg_.work_stealing) {
    // Seed only OUR node's VDPs as fire candidates; the rest of the graph
    // belongs to sibling processes.
    for (Vdp* v : creation_order_) {
      if (v->global_thread_ / cfg_.workers_per_node == rank) node.enqueue(v);
    }
  }
  for (Worker* w : local) {
    w->thread = std::thread([this, w, &node] {
      if (cfg_.work_stealing) {
        worker_loop_stealing(*w, node);
      } else {
        worker_loop(*w);
      }
    });
  }
  if (node.has_remote || cfg_.max_respawns > 0) {
    // With a respawn budget the proxy must exist even on a node with no
    // remote channels today: a rejoining replacement may need its acks
    // and replays served.
    node.proxy = std::thread([this, &node] { proxy_loop(node); });
  }

  bool parent_cancel = false;
  auto cancel_locally = [&] {
    cancelled_.store(true, std::memory_order_release);
    for (Worker* w : local) w->wake();
    {
      std::lock_guard<std::mutex> lock(node.pool_mu);
      node.pool_cv.notify_all();
    }
    comm_->interrupt(rank);
  };
  // Dispatch one pending control byte. Returns 0 when handled ('R'
  // rejoin, stray bytes), 1 on cancel ('C', EOF, parent death), 2 on 'G'.
  auto handle_ctl = [&]() -> int {
    char c = 0;
    int rfd = -1;
    const int k = ctl_read_byte(control_fd, &c, &rfd);
    if (k <= 0) {
      if (rfd >= 0) ::close(rfd);
      return 1;
    }
    if (c == 'R') {
      // Peer rejoin: the fresh socket fd rides the first byte of the
      // handshake (see wire::RejoinHdr). Queue it for the proxy thread.
      std::byte rest[net::wire::kRejoinBodyBytes];
      if (!fd_read_exact(control_fd, rest, sizeof rest)) {
        if (rfd >= 0) ::close(rfd);
        return 1;
      }
      const net::wire::RejoinHdr rj = net::wire::get_rejoin_body(rest);
      if (rfd >= 0 && rj.rank >= 0 && rj.rank < cfg_.nodes &&
          rj.rank != rank) {
        sock->rejoin_peer(rj.rank, rfd, rj.epoch);
      } else if (rfd >= 0) {
        ::close(rfd);
      }
      return 0;
    }
    if (rfd >= 0) ::close(rfd);
    if (c == 'G') return 2;
    return 1;  // 'C' or garbage: the run is over
  };
  // Liveness heartbeat to the parent (~5/s): its control plane SIGKILLs a
  // child it has not heard from in heartbeat_timeout_seconds.
  auto last_hb_sent = std::chrono::steady_clock::now();
  auto send_heartbeat = [&] {
    const auto now = std::chrono::steady_clock::now();
    if (now - last_hb_sent < 200ms) return;
    last_hb_sent = now;
    const char h = 'H';
    (void)fd_send_all(control_fd, &h, 1);
  };
  auto check_parent = [&] {
    pollfd pfd{control_fd, POLLIN, 0};
    if (::poll(&pfd, 1, 0) <= 0 ||
        (pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
      return;
    }
    if (handle_ctl() == 1) {
      parent_cancel = true;
      cancel_locally();
    }
  };

  // Per-process watchdog: local progress is a completed or in-flight
  // firing OR any frame accepted off the wire — a node whose VDPs are all
  // blocked on remote input is not deadlocked while its peers talk to it.
  long long last_fires = -1;
  long long last_rx = -1;
  std::vector<std::uint64_t> last_hb(local.size(), 0);
  auto last_progress = std::chrono::steady_clock::now();
  while (workers_running_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(1ms);
    check_parent();
    send_heartbeat();
    if (incarnation == 0 && cfg_.fault_plan.kill() &&
        cfg_.fault_plan.kill_rank == rank &&
        fires_.load(std::memory_order_relaxed) >= cfg_.fault_plan.kill_after) {
      // Injected crash: die exactly as a real segfault/OOM-kill would —
      // no unwinding, no 'F' report, sockets torn down by the kernel.
      // Only the first incarnation self-destructs, or the respawn loop
      // would never converge.
      ::kill(::getpid(), SIGKILL);
    }
    bool progress = false;
    const long long f = fires_.load(std::memory_order_relaxed);
    if (f != last_fires) {
      last_fires = f;
      progress = true;
    }
    const long long rx = sock->frames_received();
    if (rx != last_rx) {
      last_rx = rx;
      progress = true;
    }
    for (std::size_t i = 0; i < local.size(); ++i) {
      const std::uint64_t hb =
          local[i]->fire_epoch.load(std::memory_order_relaxed);
      if (hb != last_hb[i]) {
        last_hb[i] = hb;
        progress = true;
      } else if ((hb & 1u) != 0) {
        progress = true;
      }
    }
    if (progress) {
      last_progress = std::chrono::steady_clock::now();
    } else if (cfg_.watchdog_seconds > 0 &&
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             last_progress)
                       .count() > cfg_.watchdog_seconds) {
      cancel_locally();
      break;
    }
  }

  for (Worker* w : local) w->wake();
  {
    std::lock_guard<std::mutex> lock(node.pool_mu);
    node.pool_cv.notify_all();
  }
  for (Worker* w : local) {
    if (w->thread.joinable()) w->thread.join();
  }

  // Local workers done. Keep the proxy alive (late acks, retransmits for
  // peers still running) until the parent declares the whole run over.
  bool ok = !cancelled_.load(std::memory_order_acquire);
  if (ok) {
    const char d = 'D';
    ok = fd_send_all(control_fd, &d, 1);
  }
  while (ok) {
    if (cancelled_.load(std::memory_order_acquire)) {
      // Transport failure surfaced while waiting (exhausted retransmits
      // to a peer): downgrade to the failure path below.
      ok = false;
      break;
    }
    send_heartbeat();
    pollfd pfd{control_fd, POLLIN, 0};
    const int pn = ::poll(&pfd, 1, /*ms=*/10);
    if (pn < 0 && errno != EINTR) {
      ok = false;
      parent_cancel = true;
      break;
    }
    if (pn <= 0) continue;
    const int verdict = handle_ctl();
    if (verdict == 1) {
      ok = false;
      parent_cancel = true;
      cancelled_.store(true, std::memory_order_release);
      break;
    }
    if (verdict == 2) break;  // 'G': every node is done
  }

  done_.store(true, std::memory_order_release);
  comm_->interrupt(rank);
  if (node.proxy.joinable()) node.proxy.join();

  if (!ok) {
    // Always ship the local report — even when the parent initiated the
    // cancel. When a sibling process crashed, the survivors' link gaps
    // (who was mid-flight to the dead rank, and how far behind) are the
    // most useful part of the final diagnostic; the parent merges them.
    net::wire::Blob b;
    serialize_report(b, make_run_report(rank));
    (void)ctl_send_blob(control_fd, 'F', b);
    comm_.reset();  // join the receiver thread before exiting
    ::_exit(1);
  }

  // Success epilogue: this node's stats contribution plus the
  // application blob (collect hook) for the parent to merge.
  net::wire::Blob b;
  b.i64(fires_.load(std::memory_order_relaxed));
  b.u32(static_cast<std::uint32_t>(local.size()));
  for (Worker* w : local) b.f64(w->busy);
  b.f64(node.proxy_busy);
  b.i64(total_remote_msgs_.load(std::memory_order_relaxed));
  b.i64(total_remote_bytes_.load(std::memory_order_relaxed));
  b.i64(total_coalesced_.load(std::memory_order_relaxed));
  b.i64(total_aggregates_.load(std::memory_order_relaxed));
  b.i64(total_retransmits_.load(std::memory_order_relaxed));
  b.i64(total_dups_suppressed_.load(std::memory_order_relaxed));
  b.i64(total_acks_sent_.load(std::memory_order_relaxed));
  b.i64(comm_->messages_offered());
  b.i64(comm_->messages_sent());
  b.i64(comm_->bytes_sent());
  const net::FaultCounters fc = comm_->fault_counters();
  b.i64(fc.dropped);
  b.i64(fc.duplicated);
  b.i64(fc.delayed);
  b.i64(fc.reordered);
  b.u64(comm_->fault_streams());
  long long leftover = 0;
  for (Vdp* v : creation_order_) {
    if (v->global_thread_ / cfg_.workers_per_node != rank) continue;
    for (auto& ch : v->inputs_) leftover += ch->size();
  }
  while (auto m = comm_->try_recv(rank)) {
    if (!m->is_ack && m->seq < 0) ++leftover;
  }
  b.i64(leftover);
  const PacketPool::Stats pool1 = PacketPool::stats();
  b.i64(pool1.hits - pool0.hits);
  b.i64(pool1.misses - pool0.misses);
  if (collect_hook_) {
    const Packet app = collect_hook_();
    b.u64(app.size());
    if (app.size() > 0) b.bytes(app.bytes(), app.size());
  } else {
    b.u64(0);
  }
  // Crash-recovery epilogue: which incarnation finished, how many frames
  // this process replayed for rejoining peers, and (when tracing) the
  // local events with this process's clock epoch so the parent can
  // offset-align them onto one timeline.
  b.u32(incarnation);
  b.i64(total_replayed_.load(std::memory_order_relaxed));
  b.i64(recorder_->epoch_ns());
  const std::vector<trace::Event> events =
      cfg_.trace ? recorder_->collect() : std::vector<trace::Event>{};
  b.u64(events.size());
  for (const trace::Event& ev : events) {
    b.i32(ev.thread);
    b.i32(ev.color);
    b.u32(static_cast<std::uint32_t>(ev.tuple.size()));
    for (int x : ev.tuple.values()) b.i32(x);
    b.f64(ev.t0);
    b.f64(ev.t1);
  }
  (void)ctl_send_blob(control_fd, 'E', b);
  comm_.reset();  // join the receiver thread before exiting
  ::_exit(0);
}

Vsa::RunStats Vsa::run_socket() {
  const int N = cfg_.nodes;
  // The parent's recorder is purely a merge target: children ship their
  // events home in the 'E' epilogue together with their clock epoch, and
  // the parent offset-aligns them onto this recorder's timeline (Linux
  // CLOCK_MONOTONIC is machine-wide, so epochs are directly comparable).
  recorder_ = std::make_unique<trace::Recorder>(total_threads(), cfg_.trace,
                                                cfg_.nodes);
  recorder_->start_clock();
  auto mesh = net::SocketComm::socketpair_mesh(N);
  std::vector<int> ctl_parent(N, -1), ctl_child(N, -1);
  for (int r = 0; r < N; ++r) {
    int sv[2];
    require(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
            "run: control socketpair failed: " +
                std::string(std::strerror(errno)));
    ctl_parent[r] = sv[0];
    ctl_child[r] = sv[1];
  }

  const auto t_start = std::chrono::steady_clock::now();
  std::vector<pid_t> pids(N, -1);
  std::vector<std::uint32_t> incarnation(N, 0);
  for (int r = 0; r < N; ++r) {
    const pid_t pid = ::fork();
    require(pid >= 0,
            "run: fork failed: " + std::string(std::strerror(errno)));
    if (pid == 0) {
      // Node process r: drop every inherited fd that is not ours (other
      // ranks' mesh rows, their control ends, all parent control ends).
      for (int a = 0; a < N; ++a) {
        if (a == r) continue;
        for (int bfd : mesh[a]) {
          if (bfd >= 0) ::close(bfd);
        }
      }
      for (int s = 0; s < N; ++s) {
        if (ctl_parent[s] >= 0) ::close(ctl_parent[s]);
        if (s != r && ctl_child[s] >= 0) ::close(ctl_child[s]);
      }
      child_main(r, std::move(mesh[r]), ctl_child[r], /*incarnation=*/0,
                 std::vector<std::uint32_t>(N, 0));  // never returns
    }
    pids[r] = pid;
  }
  for (auto& row : mesh) {
    for (int fd : row) {
      if (fd >= 0) ::close(fd);
    }
  }
  for (int r = 0; r < N; ++r) ::close(ctl_child[r]);

  // Control plane: collect 'D' from everyone, broadcast 'G', collect
  // epilogues. A child that dies without a report (EOF, SIGKILL,
  // heartbeat silence) is respawned from this process's pristine
  // pre-thread image while the respawn budget lasts; otherwise — and on
  // any 'F' — broadcast 'C' and re-throw the merged failure after
  // reaping every child.
  enum ChildState { kRunning, kDone, kEnded, kFailed };
  std::vector<int> state(N, kRunning);
  std::vector<std::vector<std::byte>> epilogue(N);
  std::vector<char> reaped(N, 0);
  bool go_sent = false, cancel_sent = false, failed = false;
  int respawns_used = 0;
  RunReport fail_report;
  const bool bounded = cfg_.watchdog_seconds > 0;
  // Generous backstop over the children's own watchdogs: if it trips,
  // a child is wedged beyond reporting (SIGKILL is all that is left).
  const auto kill_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(cfg_.watchdog_seconds + 120.0));
  // Per-child liveness: children heartbeat ('H') about five times a
  // second; silence past this deadline means a wedged (not merely slow —
  // the heartbeat loop runs regardless of kernel durations) process and
  // is escalated to SIGKILL, which then takes the dead-child path below.
  const bool hb_bounded = cfg_.heartbeat_timeout_seconds > 0;
  const auto hb_timeout =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              hb_bounded ? cfg_.heartbeat_timeout_seconds : 0.0));
  std::vector<std::chrono::steady_clock::time_point> last_heard(
      N, std::chrono::steady_clock::now());
  auto fail_with = [&](RunReport r) {
    if (!failed) {
      failed = true;
      fail_report = std::move(r);
      return;
    }
    // Later reports refine rather than replace the first: survivors' link
    // gaps and any additional dead ranks accumulate onto it.
    for (auto& g : r.links) fail_report.links.push_back(std::move(g));
    for (int d : r.dead_ranks) {
      if (std::find(fail_report.dead_ranks.begin(),
                    fail_report.dead_ranks.end(),
                    d) == fail_report.dead_ranks.end()) {
        fail_report.dead_ranks.push_back(d);
      }
    }
  };
  auto read_blob = [&](int fd, std::vector<std::byte>& out) {
    // Bounded: a child wedged mid-blob must not hang the control plane
    // past the liveness deadline it would otherwise be judged by.
    const auto deadline =
        std::chrono::steady_clock::now() +
        (hb_bounded ? hb_timeout
                    : std::chrono::steady_clock::duration(
                          std::chrono::hours(24)));
    std::byte len8[8];
    if (!fd_read_deadline(fd, len8, 8, deadline)) return false;
    const std::uint64_t len = net::wire::get_u64(len8);
    out.resize(len);
    return len == 0 || fd_read_deadline(fd, out.data(), len, deadline);
  };

  auto respawn = [&](int r) {
    ++respawns_used;
    ++incarnation[r];
    // Fresh socketpairs replacement <-> every survivor plus a new control
    // pair; the old descriptors died with the old process.
    std::vector<int> child_row(N, -1);
    std::vector<int> surv_fd(N, -1);
    for (int s = 0; s < N; ++s) {
      if (s == r) continue;
      int sv[2];
      require(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
              "run: respawn socketpair failed: " +
                  std::string(std::strerror(errno)));
      child_row[s] = sv[0];
      surv_fd[s] = sv[1];
    }
    int ctl[2];
    require(::socketpair(AF_UNIX, SOCK_STREAM, 0, ctl) == 0,
            "run: respawn control socketpair failed: " +
                std::string(std::strerror(errno)));
    // The parent runs no threads, so fork here is as safe as the initial
    // fork loop: the replacement inherits the same pristine
    // copy-on-write image of the unrun graph (VDPs, channels, feeds) and
    // will re-fire its node from the start.
    const pid_t pid = ::fork();
    require(pid >= 0,
            "run: respawn fork failed: " + std::string(std::strerror(errno)));
    if (pid == 0) {
      for (int s = 0; s < N; ++s) {
        if (surv_fd[s] >= 0) ::close(surv_fd[s]);
        if (ctl_parent[s] >= 0) ::close(ctl_parent[s]);
      }
      ::close(ctl[0]);
      child_main(r, std::move(child_row), ctl[1], incarnation[r],
                 incarnation);  // never returns
    }
    pids[r] = pid;
    reaped[r] = 0;
    ctl_parent[r] = ctl[0];
    ::close(ctl[1]);
    for (int s = 0; s < N; ++s) {
      if (child_row[s] >= 0) ::close(child_row[s]);
    }
    // Hand every survivor its end of the fresh link: a wire::RejoinHdr
    // with the descriptor riding the first byte (SCM_RIGHTS duplicates
    // it into the survivor at delivery, so our copy closes).
    for (int s = 0; s < N; ++s) {
      if (surv_fd[s] < 0) continue;
      std::byte hdr[net::wire::kRejoinHdrBytes];
      net::wire::put_rejoin_hdr(
          hdr, net::wire::RejoinHdr{r, incarnation[r]});
      if (state[s] != kFailed && ctl_parent[s] >= 0) {
        (void)ctl_send_fd(ctl_parent[s], hdr, sizeof hdr, surv_fd[s]);
      }
      ::close(surv_fd[s]);
    }
    // The replacement must re-finish its node: re-gate 'G' on it.
    state[r] = kRunning;
    last_heard[r] = std::chrono::steady_clock::now();
  };

  auto handle_child_death = [&](int r) {
    if (!reaped[r]) {
      int st = 0;
      ::waitpid(pids[r], &st, 0);
      reaped[r] = 1;
    }
    if (ctl_parent[r] >= 0) {
      ::close(ctl_parent[r]);
      ctl_parent[r] = -1;
    }
    if (state[r] == kEnded) return;  // epilogue already delivered
    if (!failed && !go_sent && respawns_used < cfg_.max_respawns) {
      respawn(r);
      return;
    }
    // No budget left, or the run is past the point of recovery (once 'G'
    // is out, survivors tear their protocol state down and the dead
    // rank's epilogue may be gone with it): structured failure naming
    // the dead rank and — from this process's pristine image — the VDP
    // tuples that died with it.
    state[r] = kFailed;
    RunReport rep = make_run_report(r);
    rep.reason = "process";
    rep.dead_ranks.push_back(r);
    fail_with(std::move(rep));
  };

  for (;;) {
    int terminal = 0;
    bool all_past_running = true;
    for (int r = 0; r < N; ++r) {
      if (state[r] == kEnded || state[r] == kFailed) ++terminal;
      if (state[r] == kRunning) all_past_running = false;
    }
    if (terminal == N) break;
    if (failed && !cancel_sent) {
      const char c = 'C';
      for (int r = 0; r < N; ++r) {
        if (state[r] == kRunning || state[r] == kDone) {
          (void)fd_send_all(ctl_parent[r], &c, 1);
        }
      }
      cancel_sent = true;
    }
    if (!go_sent && !failed && all_past_running) {
      const char g = 'G';
      for (int r = 0; r < N; ++r) (void)fd_send_all(ctl_parent[r], &g, 1);
      go_sent = true;
    }

    std::vector<pollfd> pfds;
    std::vector<int> owners;
    for (int r = 0; r < N; ++r) {
      if (state[r] == kEnded || state[r] == kFailed) continue;
      pfds.push_back({ctl_parent[r], POLLIN, 0});
      owners.push_back(r);
    }
    const int pn = ::poll(pfds.data(), pfds.size(), /*ms=*/100);
    const auto now = std::chrono::steady_clock::now();
    if (bounded && now > kill_deadline) {
      for (int r = 0; r < N; ++r) {
        if (!reaped[r]) ::kill(pids[r], SIGKILL);
      }
      for (int r = 0; r < N; ++r) {
        if (!reaped[r]) {
          int st = 0;
          ::waitpid(pids[r], &st, 0);
        }
        if (ctl_parent[r] >= 0) ::close(ctl_parent[r]);
      }
      throw RunError(
          "PRT socket transport: node processes stopped responding; "
          "killed.\n",
          make_run_report());
    }
    // Heartbeat deadline: a child silent past the timeout is wedged.
    // SIGKILL it and take the normal dead-child path (respawn or fail).
    if (hb_bounded) {
      for (int r = 0; r < N; ++r) {
        if (state[r] == kEnded || state[r] == kFailed) continue;
        if (now - last_heard[r] > hb_timeout) {
          ::kill(pids[r], SIGKILL);
          handle_child_death(r);
        }
      }
    }
    if (pn <= 0) continue;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int r = owners[i];
      // Skip entries whose fd was closed or replaced since the poll (a
      // heartbeat kill or an earlier death in this same sweep respawned
      // the rank): the snapshot no longer describes this child.
      if (ctl_parent[r] != pfds[i].fd) continue;
      char t = 0;
      if (!fd_read_exact(pfds[i].fd, &t, 1)) {
        handle_child_death(r);  // EOF without 'E'/'F': crashed outright
        continue;
      }
      last_heard[r] = std::chrono::steady_clock::now();
      if (t == 'H') {
        // Liveness heartbeat only.
      } else if (t == 'D') {
        state[r] = kDone;
      } else if (t == 'E') {
        if (read_blob(pfds[i].fd, epilogue[r])) {
          state[r] = kEnded;
        } else {
          ::kill(pids[r], SIGKILL);
          handle_child_death(r);
        }
      } else if (t == 'F') {
        std::vector<std::byte> blob;
        state[r] = kFailed;
        if (read_blob(pfds[i].fd, blob)) {
          fail_with(deserialize_report(blob.data(), blob.size()));
        } else {
          RunReport rep;
          rep.reason = "process";
          fail_with(std::move(rep));
        }
      } else {
        // Protocol violation: treat it as a crash of the child.
        ::kill(pids[r], SIGKILL);
        handle_child_death(r);
      }
    }
  }

  for (int r = 0; r < N; ++r) {
    if (!reaped[r]) {
      int st = 0;
      ::waitpid(pids[r], &st, 0);
    }
    if (ctl_parent[r] >= 0) ::close(ctl_parent[r]);
  }
  if (failed) {
    // Header first: argument evaluation is unsequenced, so reading
    // fail_report.reason inline could see the already-moved-from report.
    std::string header = failure_header(fail_report.reason, cfg_);
    throw RunError(std::move(header), std::move(fail_report));
  }

  RunStats stats;
  stats.respawns = respawns_used;
  stats.busy_per_thread.assign(total_threads(), 0.0);
  stats.proxy_busy_per_node.assign(N, 0.0);
  const std::int64_t parent_epoch_ns = recorder_->epoch_ns();
  for (int r = 0; r < N; ++r) {
    net::wire::BlobReader br(epilogue[r].data(), epilogue[r].size());
    const long long child_fires = br.i64();
    stats.fires += child_fires;
    const std::uint32_t nw = br.u32();
    for (std::uint32_t l = 0; l < nw; ++l) {
      stats.busy_per_thread[r * cfg_.workers_per_node + l] = br.f64();
    }
    stats.proxy_busy_per_node[r] = br.f64();
    stats.remote_messages += br.i64();
    stats.remote_bytes += br.i64();
    stats.coalesced_frames += br.i64();
    stats.aggregates_sent += br.i64();
    stats.retransmits += br.i64();
    stats.duplicates_suppressed += br.i64();
    stats.acks_sent += br.i64();
    stats.wire_offered += br.i64();
    stats.wire_messages += br.i64();
    stats.wire_bytes += br.i64();
    stats.faults.dropped += br.i64();
    stats.faults.duplicated += br.i64();
    stats.faults.delayed += br.i64();
    stats.faults.reordered += br.i64();
    stats.fault_streams += static_cast<long long>(br.u64());
    stats.leftover_packets += static_cast<int>(br.i64());
    stats.pool_hits += br.i64();
    stats.pool_misses += br.i64();
    const std::uint64_t app_len = br.u64();
    Packet app;
    if (app_len > 0) {
      app = Packet::make(app_len);
      std::memcpy(app.bytes(), br.take(app_len), app_len);
    }
    if (merge_hook_) merge_hook_(r, app);
    // Crash-recovery tail of the epilogue: incarnation, replay work, and
    // (when tracing) the child's events offset-aligned onto the parent's
    // clock so the merged timeline is coherent across processes.
    const std::uint32_t child_incarnation = br.u32();
    if (child_incarnation > 0) stats.refired_fires += child_fires;
    stats.replayed_frames += br.i64();
    const std::int64_t child_epoch_ns = br.i64();
    const double off =
        static_cast<double>(child_epoch_ns - parent_epoch_ns) * 1e-9;
    const std::uint64_t nev = br.u64();
    for (std::uint64_t e = 0; e < nev; ++e) {
      trace::Event ev;
      ev.thread = br.i32();
      ev.color = br.i32();
      const std::uint32_t tn = br.u32();
      std::vector<int> vals(tn);
      for (std::uint32_t x = 0; x < tn; ++x) vals[x] = br.i32();
      ev.tuple = Tuple(std::move(vals));
      ev.t0 = br.f64() + off;
      ev.t1 = br.f64() + off;
      recorder_->inject(ev);
    }
  }
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  return stats;
}

Vsa::RunReport Vsa::make_run_report(int only_node) const {
  RunReport r;
  r.reason = transport_failed_.load(std::memory_order_acquire) ? "transport"
                                                               : "watchdog";
  int shown = 0;
  for (const Vdp* v : creation_order_) {
    if (only_node >= 0 &&
        v->global_thread_ / cfg_.workers_per_node != only_node) {
      continue;
    }
    if (v->dead()) continue;
    ++r.vdps_alive;
    if (shown >= 20) continue;
    ++shown;
    r.stuck_vdps.push_back("VDP " + v->tuple_.to_string() +
                           " counter=" + std::to_string(v->counter_) +
                           " inputs=" + describe_input_slots(*v));
  }
  // comm_ is null in the socket-transport parent (the control plane never
  // opens a communicator); its report carries no fault totals.
  if (comm_) r.faults = comm_->fault_counters();
  r.retransmits = total_retransmits_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(fail_mu_);
    for (const auto& g : link_gaps_) {
      // Keep only links with something actually in flight or broken —
      // naming every idle link would bury the culprit.
      const bool sender_stuck = g.next_seq >= 0 && (g.unacked > 0 || g.exhausted);
      const bool receiver_stuck = g.expected >= 0 && g.buffered_out_of_order > 0;
      if (sender_stuck || receiver_stuck) r.links.push_back(g);
    }
  }
  return r;
}

std::string Vsa::RunReport::to_string() const {
  std::ostringstream os;
  if (!dead_ranks.empty()) {
    os << "  dead node processes:";
    for (int r : dead_ranks) os << ' ' << r;
    os << '\n';
  }
  for (const std::string& line : stuck_vdps) os << "  " << line << '\n';
  os << "  (" << vdps_alive << " VDPs still alive)";
  for (const auto& g : links) os << "\n  " << g.to_string();
  if (faults.total() > 0) {
    os << "\n  injected faults: dropped=" << faults.dropped
       << " duplicated=" << faults.duplicated << " delayed=" << faults.delayed
       << " reordered=" << faults.reordered;
  }
  if (retransmits > 0) os << "\n  retransmits=" << retransmits;
  return os.str();
}

}  // namespace pulsarqr::prt
