// Pooled allocator for Packet payload buffers.
//
// The tree-QR pipeline emits a flood of identically-sized nb×nb / ib×nb
// frames per panel step; routing every Packet::make through the global
// allocator puts malloc on the transport fast path. The pool recycles
// released payload buffers through power-of-two size classes so a warmed
// steady state performs zero packet allocations:
//
//   * thread-local magazines — a small per-thread, per-class stack of free
//     buffers. The common free/alloc pair (a VDP dropping a consumed tile,
//     then making its output packet of the same class) never takes a lock.
//   * a global spill list per class — magazines overflow into it and
//     refill from it, so buffers freed on one thread (packets routinely
//     cross threads through channels and the proxy) come back to whichever
//     thread allocates next.
//
// The pool is process-global and enabled by default; set_enabled(false)
// restores plain heap allocation (the A/B baseline for benchmarks and the
// `pqr --no-packet-pool` flag). Buffers above the largest size class are
// never pooled. All buffers are 64-byte aligned, as before.
#pragma once

#include <cstddef>
#include <memory>

namespace pulsarqr::prt {

class PacketPool {
 public:
  /// Monotone process-lifetime totals (relaxed atomics; exact once the
  /// threads touching the pool are quiescent). RunStats reports the delta
  /// of hits/misses over a run: a warmed steady state shows misses == 0.
  struct Stats {
    long long hits = 0;      ///< buffers served from a magazine or spill list
    long long misses = 0;    ///< fresh heap allocations of poolable sizes
    long long oversize = 0;  ///< requests above the largest class (unpooled)
    long long recycled = 0;  ///< buffers returned to the pool on last release
  };

  /// A buffer of at least `bytes` bytes (rounded up to the size class);
  /// its deleter returns the buffer to the pool on last-reference release.
  static std::shared_ptr<std::byte[]> acquire(std::size_t bytes);

  /// Process-wide switch. Disabled: acquire falls back to plain aligned
  /// heap allocation and releases of previously pooled buffers free them.
  static void set_enabled(bool on);
  static bool enabled();

  static Stats stats();

  /// The buffer capacity a request of `bytes` is served with, or 0 when
  /// the size is above the largest class and bypasses the pool.
  static std::size_t capacity_for(std::size_t bytes);

  /// Free every buffer cached in the global spill lists (thread-local
  /// magazines are flushed only at thread exit). Test / low-memory hook.
  static void trim();
};

}  // namespace pulsarqr::prt
