#include "kernels/workspace.hpp"

#include <algorithm>

namespace pulsarqr::kernels {

double* Workspace::alloc(std::size_t n) {
  if (n == 0) n = 1;  // keep pointers distinct and non-null
  // Advance through existing chunks (tail space left by a smaller earlier
  // frame is simply skipped; the arena is scratch, not an allocator).
  while (cur_ < chunks_.size() && used_ + n > chunks_[cur_].cap) {
    ++cur_;
    used_ = 0;
  }
  if (cur_ == chunks_.size()) {
    const std::size_t last = chunks_.empty() ? 0 : chunks_.back().cap;
    const std::size_t cap = std::max({n, 2 * last, kMinChunk});
    chunks_.push_back({std::make_unique<double[]>(cap), cap});
    ++chunk_allocations_;
    used_ = 0;
  }
  double* p = chunks_[cur_].data.get() + used_;
  used_ += n;
  return p;
}

std::size_t Workspace::doubles_reserved() const {
  std::size_t total = 0;
  for (const auto& c : chunks_) total += c.cap;
  return total;
}

Workspace& tls_workspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace pulsarqr::kernels
