#include "kernels/workspace.hpp"

#include <algorithm>
#include <cstdint>

namespace pulsarqr::kernels {

double* Workspace::alloc(std::size_t n) {
  if (n == 0) n = 1;  // keep pointers distinct and non-null
  // Round the request up to whole cache lines: used_ stays a multiple of
  // kAlignDoubles, so every pointer handed out is 64-byte aligned.
  n = (n + kAlignDoubles - 1) / kAlignDoubles * kAlignDoubles;
  // Advance through existing chunks (tail space left by a smaller earlier
  // frame is simply skipped; the arena is scratch, not an allocator).
  while (cur_ < chunks_.size() && used_ + n > chunks_[cur_].cap) {
    ++cur_;
    used_ = 0;
  }
  if (cur_ == chunks_.size()) {
    const std::size_t last = chunks_.empty() ? 0 : chunks_.back().cap;
    const std::size_t cap = std::max({n, 2 * last, kMinChunk});
    double* raw = static_cast<double*>(
        ::operator new(cap * sizeof(double), std::align_val_t(kAlign)));
    chunks_.push_back({std::unique_ptr<double[], AlignedDelete>(raw), cap});
    ++chunk_allocations_;
    used_ = 0;
  }
  double* p = chunks_[cur_].data.get() + used_;
  PQR_ASSERT(reinterpret_cast<std::uintptr_t>(p) % kAlign == 0,
             "workspace: misaligned bump pointer");
  used_ += n;
  return p;
}

std::size_t Workspace::doubles_reserved() const {
  std::size_t total = 0;
  for (const auto& c : chunks_) total += c.cap;
  return total;
}

Workspace& tls_workspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace pulsarqr::kernels
