#include "kernels/tile_kernels.hpp"

#include <algorithm>

#include "blas/simd.hpp"
#include "lapack/householder.hpp"
#include "lapack/qr.hpp"

namespace pulsarqr::kernels {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;

void geqrt(MatrixView a, int ib, MatrixView t, Workspace& ws) {
  lapack::geqrt(a, ib, t, ws);
}

void geqrt(MatrixView a, int ib, MatrixView t) {
  lapack::geqrt(a, ib, t, tls_workspace());
}

void ormqr(blas::Trans trans, ConstMatrixView v, ConstMatrixView t, int ib,
           MatrixView c, Workspace& ws) {
  lapack::ormqr_t(trans, v, t, ib, c, ws);
}

void ormqr(blas::Trans trans, ConstMatrixView v, ConstMatrixView t, int ib,
           MatrixView c) {
  lapack::ormqr_t(trans, v, t, ib, c, tls_workspace());
}

void geqrt(MatrixViewF a, int ib, MatrixViewF t, Workspace& ws) {
  lapack::geqrt(a, ib, t, ws);
}

void geqrt(MatrixViewF a, int ib, MatrixViewF t) {
  lapack::geqrt(a, ib, t, tls_workspace());
}

void ormqr(blas::Trans trans, ConstMatrixViewF v, ConstMatrixViewF t, int ib,
           MatrixViewF c, Workspace& ws) {
  lapack::ormqr_t(trans, v, t, ib, c, ws);
}

void ormqr(blas::Trans trans, ConstMatrixViewF v, ConstMatrixViewF t, int ib,
           MatrixViewF c) {
  lapack::ormqr_t(trans, v, t, ib, c, tls_workspace());
}

namespace {

// Row bound of column c of the stacked block A2/V2: the dense (TS) kernels
// use the full height m2; the TT kernels exploit the upper-triangular
// structure — column c has nonzeros only in rows [0, min(c+1, m2)), and
// everything below is foreign data (Householder vectors of the flat phase)
// that must be neither read nor written.
inline int row_bound(bool tri, int c, int m2) {
  return tri ? std::min(c + 1, m2) : m2;
}

// Shared "triangle on top of block" QR core: factorizes [A1; A2] where A1
// is n-by-n upper triangular and A2 is m2-by-n dense (tri=false) or upper
// triangular (tri=true, per-column row bounds). Householder vector j is
// [e_j; V2(:, j)] (identity top), so only row j of A1 is touched when
// eliminating column j, and the block T recurrence reduces to dot products
// over V2 columns. For the triangular case the block update splits each
// panel into the rectangle of rows valid for every panel column (handled
// by gemm) and a fringe of at most ib-1 rows per panel column, swept with
// the multi-column fused kernels (dot_cols/ger_cols) from the active SIMD
// table — one pass of the V2 column feeds four trailing columns at a time.
template <class T>
void stacked_qrt(MatrixViewT<T> a1, MatrixViewT<T> a2, int ib,
                 MatrixViewT<T> t, Workspace& ws, bool tri) {
  const int n = a1.cols;
  const int m2 = a2.rows;
  PQR_ASSERT(a1.rows >= n, "tsqrt: A1 must be at least n-by-n");
  PQR_ASSERT(a2.cols == n, "tsqrt: A2 column mismatch");
  require(ib >= 1, "tsqrt: ib must be positive");
  PQR_ASSERT(t.rows >= std::min(ib, n) && t.cols >= n, "tsqrt: T too small");
  if (n == 0) return;

  const auto& kt = blas::simd::kernels<T>();
  WsFrame frame(ws);
  const int ibk = std::min(ib, n);
  T* tau = ws.alloc_as<T>(ibk);
  T* workbuf = ws.alloc_as<T>(static_cast<std::size_t>(ibk) * n);

  for (int jb = 0; jb < n; jb += ib) {
    const int kb = std::min(ib, n - jb);
    // Panel: eliminate columns jb .. jb+kb-1 one reflector at a time.
    for (int jl = 0; jl < kb; ++jl) {
      const int j = jb + jl;
      const int bj = row_bound(tri, j, m2);
      tau[jl] = lapack::larfg(bj + 1, a1(j, j), a2.col(j));
      // Apply H_j to the remaining columns of this panel.
      for (int jj = j + 1; jj < jb + kb; ++jj) {
        T w = a1(j, jj) + blas::dot(bj, a2.col(j), a2.col(jj));
        w *= tau[jl];
        a1(j, jj) -= w;
        blas::axpy(bj, -w, a2.col(j), a2.col(jj));
      }
    }
    // T block for this panel: T(i,i) = tau_i and
    // T(0:i, i) = -tau_i * T(0:i, 0:i) * (V2b(:, 0:i)^T V2b(:, i));
    // the identity tops of the reflectors contribute nothing off-diagonal.
    MatrixViewT<T> tb = t.block(0, jb, kb, kb);
    for (int i = 0; i < kb; ++i) {
      tb(i, i) = tau[i];
      for (int j2 = 0; j2 < i; ++j2) {
        const int bj2 = row_bound(tri, jb + j2, m2);
        tb(j2, i) = -tau[i] * blas::dot(bj2, a2.col(jb + j2), a2.col(jb + i));
      }
      if (i > 0) {
        blas::trmv(Uplo::Upper, Trans::No, Diag::NonUnit,
                   ConstMatrixViewT<T>(tb.data, i, i, tb.ld), tb.col(i));
      }
    }
    // Block update of the trailing columns: with V = [I; V2b],
    //   W  = A1(jb:jb+kb, rest) + V2b^T A2(:, rest)
    //   W := T^T W
    //   A1(jb:jb+kb, rest) -= W ;  A2(:, rest) -= V2b W.
    const int rest = n - (jb + kb);
    if (rest > 0) {
      MatrixViewT<T> w(workbuf, kb, rest, kb);
      blas::lacpy_all(a1.block(jb, jb + kb, kb, rest), w);
      // Rows [0, r0) are valid for every panel column; the per-column
      // fringe [r0, row_bound(c)) is at most kb-1 rows deep.
      const int r0 = row_bound(tri, jb, m2);
      if (r0 > 0) {
        ConstMatrixViewT<T> v2b(a2.col(jb), r0, kb, a2.ld);
        blas::gemm(Trans::Yes, Trans::No, T(1), v2b,
                   ConstMatrixViewT<T>(a2.col(jb + kb), r0, rest, a2.ld),
                   T(1), w);
      }
      if (tri) {
        // Fringe of W = V2b^T A2: row i2 of W gains the bounded dot of
        // V2 column jb+i2 against every trailing column — one fused sweep.
        for (int i2 = 0; i2 < kb; ++i2) {
          const int hi = row_bound(true, jb + i2, m2);
          if (hi <= r0) continue;
          kt.dot_cols(hi - r0, T(1), a2.col(jb + i2) + r0,
                      a2.col(jb + kb) + r0, a2.ld, rest, &w(i2, 0), w.ld);
        }
      }
      blas::trmm(Side::Left, Uplo::Upper, Trans::Yes, Diag::NonUnit, T(1),
                 ConstMatrixViewT<T>(tb), w);
      for (int j2 = 0; j2 < rest; ++j2) {
        blas::axpy(kb, T(-1), w.col(j2), a1.col(jb + kb + j2) + jb);
      }
      if (r0 > 0) {
        ConstMatrixViewT<T> v2b(a2.col(jb), r0, kb, a2.ld);
        blas::gemm(Trans::No, Trans::No, T(-1), v2b, ConstMatrixViewT<T>(w),
                   T(1), MatrixViewT<T>(a2.col(jb + kb), r0, rest, a2.ld));
      }
      if (tri) {
        // Fringe of A2 -= V2b W: rank-1 fan-out of V2 column jb+i2 into
        // the trailing columns, coefficients from row i2 of W.
        for (int i2 = 0; i2 < kb; ++i2) {
          const int hi = row_bound(true, jb + i2, m2);
          if (hi <= r0) continue;
          kt.ger_cols(hi - r0, T(-1), a2.col(jb + i2) + r0, &w(i2, 0), w.ld,
                      a2.col(jb + kb) + r0, a2.ld, rest);
        }
      }
    }
  }
}

// Shared apply core for tsmqr/ttmqr: C := op(Q) C with Q from stacked_qrt.
// With tri=true, v2 is read through the same per-column row bounds, so the
// raw ttqrt output tile (upper triangle = V2, strict lower = foreign data)
// can be passed directly; C2 rows at or above every column's bound are
// untouched, matching the reflectors' support.
template <class T>
void stacked_apply(Trans trans, ConstMatrixViewT<T> v2, ConstMatrixViewT<T> t,
                   int ib, MatrixViewT<T> c1, MatrixViewT<T> c2, Workspace& ws,
                   bool tri) {
  const int n = v2.cols;
  const int m2 = v2.rows;
  const int nc = c1.cols;
  PQR_ASSERT(c1.rows >= n, "tsmqr: C1 must have at least n rows");
  PQR_ASSERT(c2.rows == m2 && c2.cols == nc, "tsmqr: C2 shape mismatch");
  require(ib >= 1, "tsmqr: ib must be positive");
  if (n == 0 || nc == 0) return;

  const auto& kt = blas::simd::kernels<T>();
  WsFrame frame(ws);
  T* workbuf = ws.alloc_as<T>(static_cast<std::size_t>(std::min(ib, n)) * nc);
  const int nblocks = (n + ib - 1) / ib;
  // Q^T applies inner blocks first-to-last (with T^T), Q last-to-first.
  for (int bi = 0; bi < nblocks; ++bi) {
    const int b = trans == Trans::Yes ? bi : nblocks - 1 - bi;
    const int jb = b * ib;
    const int kb = std::min(ib, n - jb);
    const int r0 = row_bound(tri, jb, m2);
    ConstMatrixViewT<T> tb = t.block(0, jb, kb, kb);
    MatrixViewT<T> w(workbuf, kb, nc, kb);
    // W = C1(jb:jb+kb, :) + V2b^T C2
    blas::lacpy_all(c1.block(jb, 0, kb, nc), w);
    if (r0 > 0) {
      ConstMatrixViewT<T> v2b(v2.col(jb), r0, kb, v2.ld);
      blas::gemm(Trans::Yes, Trans::No, T(1), v2b,
                 ConstMatrixViewT<T>(c2.data, r0, nc, c2.ld), T(1), w);
    }
    if (tri) {
      // Triangular fringe of V2b^T C2, one fused multi-column sweep per
      // panel row (ISA dot_cols kernel; depth at most ib-1 rows).
      for (int i2 = 0; i2 < kb; ++i2) {
        const int hi = row_bound(true, jb + i2, m2);
        if (hi <= r0) continue;
        kt.dot_cols(hi - r0, T(1), v2.col(jb + i2) + r0, c2.col(0) + r0,
                    c2.ld, nc, &w(i2, 0), w.ld);
      }
    }
    // W := op(T) W
    blas::trmm(Side::Left, Uplo::Upper, trans, Diag::NonUnit, T(1), tb, w);
    // C1(jb:jb+kb, :) -= W ;  C2 -= V2b W
    for (int j2 = 0; j2 < nc; ++j2) {
      blas::axpy(kb, T(-1), w.col(j2), c1.col(j2) + jb);
    }
    if (r0 > 0) {
      ConstMatrixViewT<T> v2b(v2.col(jb), r0, kb, v2.ld);
      blas::gemm(Trans::No, Trans::No, T(-1), v2b, ConstMatrixViewT<T>(w),
                 T(1), MatrixViewT<T>(c2.data, r0, nc, c2.ld));
    }
    if (tri) {
      // Triangular fringe of C2 -= V2b W (ISA ger_cols kernel).
      for (int i2 = 0; i2 < kb; ++i2) {
        const int hi = row_bound(true, jb + i2, m2);
        if (hi <= r0) continue;
        kt.ger_cols(hi - r0, T(-1), v2.col(jb + i2) + r0, &w(i2, 0), w.ld,
                    c2.col(0) + r0, c2.ld, nc);
      }
    }
  }
}

template <class T>
void ttqrt_t(MatrixViewT<T> a1, MatrixViewT<T> a2, int ib, MatrixViewT<T> t,
             Workspace& ws) {
  // Only the upper triangle of A2 is input (R of the losing domain) and only
  // the upper triangle is output (V2); the strict lower part of the tile
  // holds Householder vectors from the flat-tree phase and must survive —
  // the row-bounded core never touches it.
  const int n = a1.cols;
  const int m2 = std::min(a2.rows, n);
  stacked_qrt<T>(a1, MatrixViewT<T>(a2.data, m2, n, a2.ld), ib, t, ws,
                 /*tri=*/true);
}

template <class T>
void ttmqr_t(Trans trans, ConstMatrixViewT<T> v2, ConstMatrixViewT<T> t,
             int ib, MatrixViewT<T> c1, MatrixViewT<T> c2, Workspace& ws) {
  const int n = v2.cols;
  const int m2 = std::min(v2.rows, n);
  stacked_apply<T>(trans, ConstMatrixViewT<T>(v2.data, m2, n, v2.ld), t, ib,
                   c1, MatrixViewT<T>(c2.data, m2, c2.cols, c2.ld), ws,
                   /*tri=*/true);
}

}  // namespace

void tsqrt(MatrixView a1, MatrixView a2, int ib, MatrixView t, Workspace& ws) {
  stacked_qrt<double>(a1, a2, ib, t, ws, /*tri=*/false);
}

void tsqrt(MatrixView a1, MatrixView a2, int ib, MatrixView t) {
  stacked_qrt<double>(a1, a2, ib, t, tls_workspace(), /*tri=*/false);
}

void tsqrt(MatrixViewF a1, MatrixViewF a2, int ib, MatrixViewF t,
           Workspace& ws) {
  stacked_qrt<float>(a1, a2, ib, t, ws, /*tri=*/false);
}

void tsmqr(Trans trans, ConstMatrixView v2, ConstMatrixView t, int ib,
           MatrixView c1, MatrixView c2, Workspace& ws) {
  stacked_apply<double>(trans, v2, t, ib, c1, c2, ws, /*tri=*/false);
}

void tsmqr(Trans trans, ConstMatrixView v2, ConstMatrixView t, int ib,
           MatrixView c1, MatrixView c2) {
  stacked_apply<double>(trans, v2, t, ib, c1, c2, tls_workspace(),
                        /*tri=*/false);
}

void tsmqr(Trans trans, ConstMatrixViewF v2, ConstMatrixViewF t, int ib,
           MatrixViewF c1, MatrixViewF c2, Workspace& ws) {
  stacked_apply<float>(trans, v2, t, ib, c1, c2, ws, /*tri=*/false);
}

void ttqrt(MatrixView a1, MatrixView a2, int ib, MatrixView t, Workspace& ws) {
  ttqrt_t<double>(a1, a2, ib, t, ws);
}

void ttqrt(MatrixView a1, MatrixView a2, int ib, MatrixView t) {
  ttqrt_t<double>(a1, a2, ib, t, tls_workspace());
}

void ttqrt(MatrixViewF a1, MatrixViewF a2, int ib, MatrixViewF t,
           Workspace& ws) {
  ttqrt_t<float>(a1, a2, ib, t, ws);
}

void ttmqr(Trans trans, ConstMatrixView v2, ConstMatrixView t, int ib,
           MatrixView c1, MatrixView c2, Workspace& ws) {
  ttmqr_t<double>(trans, v2, t, ib, c1, c2, ws);
}

void ttmqr(Trans trans, ConstMatrixView v2, ConstMatrixView t, int ib,
           MatrixView c1, MatrixView c2) {
  ttmqr_t<double>(trans, v2, t, ib, c1, c2, tls_workspace());
}

void ttmqr(Trans trans, ConstMatrixViewF v2, ConstMatrixViewF t, int ib,
           MatrixViewF c1, MatrixViewF c2, Workspace& ws) {
  ttmqr_t<float>(trans, v2, t, ib, c1, c2, ws);
}

}  // namespace pulsarqr::kernels
