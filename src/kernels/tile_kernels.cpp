#include "kernels/tile_kernels.hpp"

#include <algorithm>
#include <vector>

#include "lapack/householder.hpp"
#include "lapack/qr.hpp"

namespace pulsarqr::kernels {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;

void geqrt(MatrixView a, int ib, MatrixView t) { lapack::geqrt(a, ib, t); }

void ormqr(blas::Trans trans, ConstMatrixView v, ConstMatrixView t, int ib,
           MatrixView c) {
  lapack::ormqr_t(trans, v, t, ib, c);
}

namespace {

// Shared "triangle on top of block" QR core: factorizes [A1; A2] where A1
// is n-by-n upper triangular and A2 is m2-by-n dense. Householder vector j
// is [e_j; V2(:, j)] (identity top), so only row j of A1 is touched when
// eliminating column j, and the block T recurrence reduces to dot products
// over V2 columns.
void stacked_qrt(MatrixView a1, MatrixView a2, int ib, MatrixView t) {
  const int n = a1.cols;
  const int m2 = a2.rows;
  PQR_ASSERT(a1.rows >= n, "tsqrt: A1 must be at least n-by-n");
  PQR_ASSERT(a2.cols == n, "tsqrt: A2 column mismatch");
  require(ib >= 1, "tsqrt: ib must be positive");
  PQR_ASSERT(t.rows >= std::min(ib, n) && t.cols >= n, "tsqrt: T too small");

  std::vector<double> tau(std::min(ib, n));
  std::vector<double> work;

  for (int jb = 0; jb < n; jb += ib) {
    const int kb = std::min(ib, n - jb);
    // Panel: eliminate columns jb .. jb+kb-1 one reflector at a time.
    for (int jl = 0; jl < kb; ++jl) {
      const int j = jb + jl;
      tau[jl] = lapack::larfg(m2 + 1, a1(j, j), a2.col(j));
      // Apply H_j to the remaining columns of this panel.
      for (int jj = j + 1; jj < jb + kb; ++jj) {
        double w = a1(j, jj) + blas::dot(m2, a2.col(j), a2.col(jj));
        w *= tau[jl];
        a1(j, jj) -= w;
        blas::axpy(m2, -w, a2.col(j), a2.col(jj));
      }
    }
    // T block for this panel: T(i,i) = tau_i and
    // T(0:i, i) = -tau_i * T(0:i, 0:i) * (V2b(:, 0:i)^T V2b(:, i));
    // the identity tops of the reflectors contribute nothing off-diagonal.
    MatrixView tb = t.block(0, jb, kb, kb);
    for (int i = 0; i < kb; ++i) {
      tb(i, i) = tau[i];
      for (int j2 = 0; j2 < i; ++j2) {
        tb(j2, i) = -tau[i] * blas::dot(m2, a2.col(jb + j2), a2.col(jb + i));
      }
      if (i > 0) {
        blas::trmv(Uplo::Upper, Trans::No, Diag::NonUnit,
                   ConstMatrixView(tb.data, i, i, tb.ld), tb.col(i));
      }
    }
    // Block update of the trailing columns: with V = [I; V2b],
    //   W  = A1(jb:jb+kb, rest) + V2b^T A2(:, rest)
    //   W := T^T W
    //   A1(jb:jb+kb, rest) -= W ;  A2(:, rest) -= V2b W.
    const int rest = n - (jb + kb);
    if (rest > 0) {
      work.resize(static_cast<std::size_t>(kb) * rest);
      MatrixView w(work.data(), kb, rest, kb);
      blas::lacpy_all(a1.block(jb, jb + kb, kb, rest), w);
      ConstMatrixView v2b(a2.col(jb), m2, kb, a2.ld);
      blas::gemm(Trans::Yes, Trans::No, 1.0, v2b,
                 a2.block(0, jb + kb, m2, rest), 1.0, w);
      blas::trmm(Side::Left, Uplo::Upper, Trans::Yes, Diag::NonUnit, 1.0,
                 ConstMatrixView(tb), w);
      for (int j2 = 0; j2 < rest; ++j2) {
        blas::axpy(kb, -1.0, w.col(j2), a1.col(jb + kb + j2) + jb);
      }
      blas::gemm(Trans::No, Trans::No, -1.0, v2b, ConstMatrixView(w), 1.0,
                 a2.block(0, jb + kb, m2, rest));
    }
  }
}

// Shared apply core for tsmqr/ttmqr: C := op(Q) C with Q from stacked_qrt.
void stacked_apply(Trans trans, ConstMatrixView v2, ConstMatrixView t, int ib,
                   MatrixView c1, MatrixView c2) {
  const int n = v2.cols;
  const int m2 = v2.rows;
  const int nc = c1.cols;
  PQR_ASSERT(c1.rows >= n, "tsmqr: C1 must have at least n rows");
  PQR_ASSERT(c2.rows == m2 && c2.cols == nc, "tsmqr: C2 shape mismatch");
  require(ib >= 1, "tsmqr: ib must be positive");
  if (n == 0 || nc == 0) return;

  std::vector<double> work(static_cast<std::size_t>(std::min(ib, n)) * nc);
  const int nblocks = (n + ib - 1) / ib;
  // Q^T applies inner blocks first-to-last (with T^T), Q last-to-first.
  for (int bi = 0; bi < nblocks; ++bi) {
    const int b = trans == Trans::Yes ? bi : nblocks - 1 - bi;
    const int jb = b * ib;
    const int kb = std::min(ib, n - jb);
    ConstMatrixView v2b(v2.col(jb), m2, kb, v2.ld);
    ConstMatrixView tb = t.block(0, jb, kb, kb);
    MatrixView w(work.data(), kb, nc, kb);
    // W = C1(jb:jb+kb, :) + V2b^T C2
    blas::lacpy_all(c1.block(jb, 0, kb, nc), w);
    blas::gemm(Trans::Yes, Trans::No, 1.0, v2b, ConstMatrixView(c2), 1.0, w);
    // W := op(T) W
    blas::trmm(Side::Left, Uplo::Upper, trans, Diag::NonUnit, 1.0, tb, w);
    // C1(jb:jb+kb, :) -= W ;  C2 -= V2b W
    for (int j2 = 0; j2 < nc; ++j2) {
      blas::axpy(kb, -1.0, w.col(j2), c1.col(j2) + jb);
    }
    blas::gemm(Trans::No, Trans::No, -1.0, v2b, ConstMatrixView(w), 1.0, c2);
  }
}

// Copy the upper triangle of src into a dense zero-filled n-by-n buffer.
Matrix upper_of(ConstMatrixView src) {
  const int n = src.cols;
  PQR_ASSERT(src.rows >= std::min(src.rows, n), "upper_of: bad shape");
  const int m = std::min(src.rows, n);
  Matrix dense(m, n);
  for (int j = 0; j < n; ++j) {
    const int top = std::min(j + 1, m);
    for (int i = 0; i < top; ++i) dense(i, j) = src(i, j);
  }
  return dense;
}

// Write the upper triangle of src back into dst, leaving the strict lower
// part of dst untouched (it holds Householder vectors from earlier kernels).
void copy_upper_back(ConstMatrixView src, MatrixView dst) {
  for (int j = 0; j < src.cols; ++j) {
    const int top = std::min(j + 1, src.rows);
    for (int i = 0; i < top; ++i) dst(i, j) = src(i, j);
  }
}

}  // namespace

void tsqrt(MatrixView a1, MatrixView a2, int ib, MatrixView t) {
  stacked_qrt(a1, a2, ib, t);
}

void tsmqr(Trans trans, ConstMatrixView v2, ConstMatrixView t, int ib,
           MatrixView c1, MatrixView c2) {
  stacked_apply(trans, v2, t, ib, c1, c2);
}

void ttqrt(MatrixView a1, MatrixView a2, int ib, MatrixView t) {
  // Only the upper triangle of A2 is input (R of the losing domain) and only
  // the upper triangle is output (V2); the strict lower part of the tile
  // holds Householder vectors from the flat-tree phase and must survive.
  const int n = a1.cols;
  const int m2 = std::min(a2.rows, n);
  Matrix v2 = upper_of(ConstMatrixView(a2.data, m2, n, a2.ld));
  stacked_qrt(a1, v2.view(), ib, t);
  copy_upper_back(v2.view(), MatrixView(a2.data, m2, n, a2.ld));
}

void ttmqr(Trans trans, ConstMatrixView v2, ConstMatrixView t, int ib,
           MatrixView c1, MatrixView c2) {
  const int n = v2.cols;
  const int m2 = std::min(v2.rows, n);
  Matrix v2u = upper_of(ConstMatrixView(v2.data, m2, n, v2.ld));
  stacked_apply(trans, v2u.view(), t, ib, c1,
                MatrixView(c2.data, m2, c2.cols, c2.ld));
}

}  // namespace pulsarqr::kernels
