// The six tile kernels of the tree-based QR decomposition (Section V-B of
// the paper; PLASMA core_blas equivalents):
//
//   geqrt  — QR of a single tile; R in the upper triangle, Householder
//            vectors in the strict lower trapezoid, T factors on the side.
//   ormqr  — apply the geqrt transformations to a trailing tile.
//   tsqrt  — incremental QR of [R1; A2] ("triangle on top of square"):
//            R1 is an already-factorized upper-triangular tile, A2 a full
//            tile; R1 is updated, A2 is overwritten by Householder vectors.
//   tsmqr  — apply the tsqrt transformations to a stacked pair [C1; C2].
//   ttqrt  — incremental QR of [R1; R2] ("triangle on top of triangle"):
//            both operands upper triangular; used by the binary tree.
//   ttmqr  — apply the ttqrt transformations to a stacked pair [C1; C2].
//
// All kernels use inner block size ib: transformations are accumulated in
// ib-wide compact WY blocks whose T factors are stored in an ib-by-n tile.
// The TT kernels share the stacked-QR core with the TS kernels, but run it
// with per-column row bounds: column c of an upper-triangular V2 has
// nonzeros only in rows [0, min(c+1, m2)), so the TT kernels touch only
// the upper triangle in place — the strict lower part of the tile (which
// holds Householder vectors from the flat-tree phase) is never read or
// written, there are no dense round-trip copies, and the triangular flop
// savings are realized rather than merely modeled in sim/cost_model.
//
// Scratch memory: every kernel has an overload taking an explicit
// kernels::Workspace (zero heap allocation in steady state) and a
// convenience overload that uses the calling thread's tls_workspace().
#pragma once

#include "blas/blas.hpp"
#include "common/view.hpp"
#include "kernels/workspace.hpp"

namespace pulsarqr::kernels {

/// QR of tile a (m-by-n, any shape). t is ib-by-n (one T block per inner
/// panel). Equivalent to lapack::geqrt.
void geqrt(MatrixView a, int ib, MatrixView t, Workspace& ws);
void geqrt(MatrixView a, int ib, MatrixView t);

/// Apply op(Q) from geqrt(v, t) to tile c from the left (op = transpose for
/// Trans::Yes, as used during factorization).
void ormqr(blas::Trans trans, ConstMatrixView v, ConstMatrixView t, int ib,
           MatrixView c, Workspace& ws);
void ormqr(blas::Trans trans, ConstMatrixView v, ConstMatrixView t, int ib,
           MatrixView c);

/// Incremental QR of [A1; A2]: A1 is n-by-n upper triangular (R from a
/// previous geqrt/tsqrt) and is updated in place; A2 is m2-by-n (m2 >= 1,
/// any m2 including m2 < n) and is overwritten with the Householder
/// vectors V2; t is ib-by-n.
void tsqrt(MatrixView a1, MatrixView a2, int ib, MatrixView t, Workspace& ws);
void tsqrt(MatrixView a1, MatrixView a2, int ib, MatrixView t);

/// Apply op(Q) from tsqrt(v2, t) to the stacked pair [C1; C2] from the
/// left. C1 is n-by-nc (only its first n rows participate; callers pass a
/// tile whose row count equals v2.cols), C2 is m2-by-nc with m2 == v2.rows.
void tsmqr(blas::Trans trans, ConstMatrixView v2, ConstMatrixView t, int ib,
           MatrixView c1, MatrixView c2, Workspace& ws);
void tsmqr(blas::Trans trans, ConstMatrixView v2, ConstMatrixView t, int ib,
           MatrixView c1, MatrixView c2);

/// Triangle-on-triangle QR: like tsqrt but A2 is upper triangular on entry
/// (only its upper triangle is read or written; the strict lower part is
/// preserved bit-for-bit); V2 stays upper triangular.
void ttqrt(MatrixView a1, MatrixView a2, int ib, MatrixView t, Workspace& ws);
void ttqrt(MatrixView a1, MatrixView a2, int ib, MatrixView t);

/// Apply op(Q) from ttqrt to [C1; C2]. v2 may be the raw tile from ttqrt:
/// only its upper triangle is read.
void ttmqr(blas::Trans trans, ConstMatrixView v2, ConstMatrixView t, int ib,
           MatrixView c1, MatrixView c2, Workspace& ws);
void ttmqr(blas::Trans trans, ConstMatrixView v2, ConstMatrixView t, int ib,
           MatrixView c1, MatrixView c2);

// Single-precision instantiations of the panel and stacked (tree) kernels.
// The cores are templated on the scalar type and route through the same
// SIMD kernel tables; contracts match the double versions.
void geqrt(MatrixViewF a, int ib, MatrixViewF t, Workspace& ws);
void geqrt(MatrixViewF a, int ib, MatrixViewF t);
void ormqr(blas::Trans trans, ConstMatrixViewF v, ConstMatrixViewF t, int ib,
           MatrixViewF c, Workspace& ws);
void ormqr(blas::Trans trans, ConstMatrixViewF v, ConstMatrixViewF t, int ib,
           MatrixViewF c);
void tsqrt(MatrixViewF a1, MatrixViewF a2, int ib, MatrixViewF t,
           Workspace& ws);
void tsmqr(blas::Trans trans, ConstMatrixViewF v2, ConstMatrixViewF t, int ib,
           MatrixViewF c1, MatrixViewF c2, Workspace& ws);
void ttqrt(MatrixViewF a1, MatrixViewF a2, int ib, MatrixViewF t,
           Workspace& ws);
void ttmqr(blas::Trans trans, ConstMatrixViewF v2, ConstMatrixViewF t, int ib,
           MatrixViewF c1, MatrixViewF c2, Workspace& ws);

}  // namespace pulsarqr::kernels
