// The six tile kernels of the tree-based QR decomposition (Section V-B of
// the paper; PLASMA core_blas equivalents):
//
//   geqrt  — QR of a single tile; R in the upper triangle, Householder
//            vectors in the strict lower trapezoid, T factors on the side.
//   ormqr  — apply the geqrt transformations to a trailing tile.
//   tsqrt  — incremental QR of [R1; A2] ("triangle on top of square"):
//            R1 is an already-factorized upper-triangular tile, A2 a full
//            tile; R1 is updated, A2 is overwritten by Householder vectors.
//   tsmqr  — apply the tsqrt transformations to a stacked pair [C1; C2].
//   ttqrt  — incremental QR of [R1; R2] ("triangle on top of triangle"):
//            both operands upper triangular; used by the binary tree.
//   ttmqr  — apply the ttqrt transformations to a stacked pair [C1; C2].
//
// All kernels use inner block size ib: transformations are accumulated in
// ib-wide compact WY blocks whose T factors are stored in an ib-by-n tile.
// The TT kernels share the stacked-QR core with the TS kernels: on upper
// triangular input the Householder vectors stay upper triangular (the
// structural zeros are preserved exactly), so the math is identical and the
// flop savings of the triangular structure are accounted for analytically
// in sim/cost_model rather than exploited in the inner loops.
#pragma once

#include "blas/blas.hpp"
#include "common/view.hpp"

namespace pulsarqr::kernels {

/// QR of tile a (m-by-n, any shape). t is ib-by-n (one T block per inner
/// panel). Equivalent to lapack::geqrt.
void geqrt(MatrixView a, int ib, MatrixView t);

/// Apply op(Q) from geqrt(v, t) to tile c from the left (op = transpose for
/// Trans::Yes, as used during factorization).
void ormqr(blas::Trans trans, ConstMatrixView v, ConstMatrixView t, int ib,
           MatrixView c);

/// Incremental QR of [A1; A2]: A1 is n-by-n upper triangular (R from a
/// previous geqrt/tsqrt) and is updated in place; A2 is m2-by-n (m2 >= 1,
/// any m2 including m2 < n) and is overwritten with the Householder
/// vectors V2; t is ib-by-n.
void tsqrt(MatrixView a1, MatrixView a2, int ib, MatrixView t);

/// Apply op(Q) from tsqrt(v2, t) to the stacked pair [C1; C2] from the
/// left. C1 is n-by-nc (only its first n rows participate; callers pass a
/// tile whose row count equals v2.cols), C2 is m2-by-nc with m2 == v2.rows.
void tsmqr(blas::Trans trans, ConstMatrixView v2, ConstMatrixView t, int ib,
           MatrixView c1, MatrixView c2);

/// Triangle-on-triangle QR: like tsqrt but A2 is upper triangular on entry
/// (only its upper triangle is meaningful); V2 stays upper triangular.
void ttqrt(MatrixView a1, MatrixView a2, int ib, MatrixView t);

/// Apply op(Q) from ttqrt to [C1; C2].
void ttmqr(blas::Trans trans, ConstMatrixView v2, ConstMatrixView t, int ib,
           MatrixView c1, MatrixView c2);

}  // namespace pulsarqr::kernels
