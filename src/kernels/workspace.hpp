// Per-thread scratch arena for the compute kernels.
//
// Every tile kernel (geqrt/ormqr/tsqrt/tsmqr/ttqrt/ttmqr) and the dense
// LAPACK-style routines need small scratch buffers (tau vectors, block-T
// staging, the W panel of a block update). Allocating them per call puts a
// malloc/free pair on the critical path of every VDP firing; the Workspace
// is a grow-only chunked bump allocator that amortizes those to zero.
//
// Contract:
//   * One Workspace per thread. The kernels' convenience overloads use
//     tls_workspace(); the VSA firing code passes it explicitly so the
//     ownership is visible at the call site. A Workspace is NOT
//     thread-safe — never share one across threads.
//   * Allocation is frame-scoped: a kernel opens a WsFrame on entry, and
//     every alloc() made inside it is released (the bump pointer rewinds)
//     when the frame is destroyed. Frames nest (kernels calling lapack
//     helpers that open their own frames is fine).
//   * Memory is chunked, so a grow never moves live allocations: pointers
//     handed out earlier in the frame stay valid.
//   * Every pointer handed out is 64-byte aligned (chunk bases are
//     64-byte aligned and sizes are bumped in cache-line units), so the
//     SIMD kernels may use aligned loads/stores on workspace buffers and
//     scratch never straddles a line it doesn't own.
//   * Steady state allocates nothing: once the arena has grown to the
//     high-water mark of a kernel mix, repeating those kernels performs
//     zero heap allocations (asserted by workspace_test and observable via
//     chunk_allocations()).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

#include "common/view.hpp"

namespace pulsarqr::kernels {

class Workspace {
 public:
  /// Alignment of every pointer returned by alloc()/alloc_as().
  static constexpr std::size_t kAlign = 64;

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Bump-allocate n doubles (uninitialized), 64-byte aligned. Valid until
  /// the enclosing frame is released; never moved by later allocations.
  double* alloc(std::size_t n);

  /// Bump-allocate n elements of T (uninitialized), 64-byte aligned. The
  /// float kernel instantiations allocate their scratch through this.
  template <class T>
  T* alloc_as(std::size_t n) {
    static_assert(alignof(T) <= kAlign, "over-aligned workspace type");
    const std::size_t nd =
        (n * sizeof(T) + sizeof(double) - 1) / sizeof(double);
    return reinterpret_cast<T*>(alloc(nd));
  }

  /// Bump-allocate an m-by-n column-major matrix view (ld == m),
  /// uninitialized.
  MatrixView matrix(int m, int n) { return matrix_as<double>(m, n); }

  template <class T>
  MatrixViewT<T> matrix_as(int m, int n) {
    return MatrixViewT<T>(alloc_as<T>(static_cast<std::size_t>(m) * n), m, n,
                          m);
  }

  /// Number of heap allocations (chunks) ever made — the steady-state
  /// zero-allocation counter used by tests.
  long long chunk_allocations() const { return chunk_allocations_; }

  /// Total doubles reserved across all chunks.
  std::size_t doubles_reserved() const;

  /// Opaque rewind cursor; see WsFrame.
  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };
  Mark mark() const { return {cur_, used_}; }
  void rewind(Mark m) {
    cur_ = m.chunk;
    used_ = m.used;
  }

 private:
  struct AlignedDelete {
    void operator()(double* p) const {
      ::operator delete(p, std::align_val_t(kAlign));
    }
  };
  struct Chunk {
    std::unique_ptr<double[], AlignedDelete> data;
    std::size_t cap = 0;
  };

  static constexpr std::size_t kMinChunk = 1 << 14;  ///< doubles (128 KiB)
  /// Bump granularity in doubles: one cache line, so used_ is always a
  /// multiple of the alignment and every returned pointer inherits the
  /// chunk base's 64-byte alignment.
  static constexpr std::size_t kAlignDoubles = kAlign / sizeof(double);

  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;   ///< chunk the bump pointer is in
  std::size_t used_ = 0;  ///< doubles consumed in chunk cur_
  long long chunk_allocations_ = 0;
};

/// RAII allocation frame: everything alloc()ed between construction and
/// destruction is released together. Open one per kernel invocation.
class WsFrame {
 public:
  explicit WsFrame(Workspace& ws) : ws_(ws), mark_(ws.mark()) {}
  ~WsFrame() { ws_.rewind(mark_); }
  WsFrame(const WsFrame&) = delete;
  WsFrame& operator=(const WsFrame&) = delete;

 private:
  Workspace& ws_;
  Workspace::Mark mark_;
};

/// The calling thread's kernel workspace (one arena per thread, created on
/// first use). The default kernel overloads route here; pass a Workspace
/// explicitly where ownership should be visible (e.g. VDP firing code).
Workspace& tls_workspace();

}  // namespace pulsarqr::kernels
