#include "lu/vsa_lu.hpp"

#include <algorithm>
#include <memory>

#include "blas/blas.hpp"
#include "lapack/lu.hpp"
#include "vsaqr/codec.hpp"
#include "vsaqr/deposit_log.hpp"

namespace pulsarqr::lu {

namespace {

using prt::Packet;
using prt::Tuple;
using prt::VdpContext;
using vsaqr::encode_tile;
using vsaqr::tile_view;

Tuple p_tuple(int k) { return Tuple{0, k}; }
Tuple s_tuple(int k, int j) { return Tuple{1, k, j}; }

/// Overwrite-copy deposits are naturally idempotent, so crash-recovery
/// replays of shipped tiles need no extra discipline here.
struct LuStore {
  explicit LuStore(TileMatrix f) : f(std::move(f)) {}
  TileMatrix f;
  vsaqr::TileDepositLog dlog;  ///< socket transport: ships tiles home
  void put(int i, int j, ConstMatrixView tile) {
    blas::lacpy_all(tile, f.tile(i, j));
    dlog.record(i, j);
  }
};

struct PanelCfg {
  int k = 0;
  int kb = 0;          ///< pivot count of the diagonal tile
  int chain_out = -1;  ///< LU(k,k) then L(i,k) to S(k,k+1)
};

struct PanelState {
  int idx = 0;
  Packet held;
};

void panel_fire(VdpContext& ctx, const PanelCfg& cfg) {
  auto& st = ctx.local<PanelState>();
  const int idx = st.idx++;
  const int r = cfg.k + idx;
  Packet tile = ctx.pop(0);
  PQR_ASSERT(tile.meta() == r, "vsa-lu: panel VDP received wrong row");
  auto& store = ctx.global<LuStore>();
  if (idx == 0) {
    lapack::getf2_nopiv(tile_view(tile));
    store.put(cfg.k, cfg.k, tile_view(tile));
    st.held = std::move(tile);
    if (cfg.chain_out >= 0) ctx.push(cfg.chain_out, st.held);
  } else {
    blas::trsm(blas::Side::Right, blas::Uplo::Upper, blas::Trans::No,
               blas::Diag::NonUnit, 1.0,
               ConstMatrixView(tile_view(st.held))
                   .block(0, 0, cfg.kb, cfg.kb),
               tile_view(tile));
    store.put(r, cfg.k, tile_view(tile));
    if (cfg.chain_out >= 0) ctx.push(cfg.chain_out, std::move(tile));
  }
}

struct UpdateCfg {
  int k = 0;
  int j = 0;
  int kb = 0;
  int chain_out = -1;
  int solid_out = -1;  ///< -1 only when the domain has no streamed rows
};

struct UpdateState {
  int idx = 0;
  Packet ukj;  ///< the held top tile, = U(k,j) after the first firing
};

void update_fire(VdpContext& ctx, const UpdateCfg& cfg) {
  auto& st = ctx.local<UpdateState>();
  const int idx = st.idx++;
  Packet chain = ctx.pop(1);
  PQR_ASSERT(chain.meta() == cfg.k + idx,
             "vsa-lu: update VDP received wrong chain packet");
  if (cfg.chain_out >= 0) ctx.push(cfg.chain_out, chain);  // by-pass first
  Packet tile = ctx.pop(0);
  PQR_ASSERT(tile.meta() == cfg.k + idx,
             "vsa-lu: update VDP received wrong tile");
  auto& store = ctx.global<LuStore>();
  if (idx == 0) {
    // chain == LU(k,k): finish U(k,j) on the pivot rows of the top tile.
    MatrixView t = tile_view(tile);
    blas::trsm(blas::Side::Left, blas::Uplo::Lower, blas::Trans::No,
               blas::Diag::Unit, 1.0,
               ConstMatrixView(tile_view(chain)).block(0, 0, cfg.kb, cfg.kb),
               MatrixView(t.data, cfg.kb, t.cols, t.ld));
    store.put(cfg.k, cfg.j, t);
    st.ukj = std::move(tile);
  } else {
    // chain == L(i,k): A(i,j) -= L(i,k) U(k,j).
    MatrixView li = tile_view(chain);
    MatrixView u = tile_view(st.ukj);
    blas::gemm(blas::Trans::No, blas::Trans::No, -1.0,
               ConstMatrixView(li).block(0, 0, li.rows, cfg.kb),
               ConstMatrixView(u.data, cfg.kb, u.cols, u.ld), 1.0,
               tile_view(tile));
    ctx.push(cfg.solid_out, std::move(tile));
  }
}

class Builder {
 public:
  Builder(const TileMatrix& a, const VsaLuOptions& opt)
      : a_(a), opt_(opt), vsa_(make_config(opt)) {
    store_ = std::make_shared<LuStore>(TileMatrix(a.rows(), a.cols(), a.nb()));
    vsa_.set_global(store_);
    if (opt.transport == prt::Transport::Socket) {
      // Each node process fills its own copy-on-write store; the deposit
      // log ships every child's factor tiles back for the parent to merge.
      store_->dlog.enable();
      auto store = store_;
      vsa_.set_process_hooks(
          [store] { return store->dlog.serialize(store->f); },
          [store](int, const Packet& blob) {
            vsaqr::TileDepositLog::apply(
                blob, [&store](int i, int j, ConstMatrixView v) {
                  store->put(i, j, v);
                });
          });
    }
    bytes_ = vsaqr::tile_packet_bytes(a.nb(), a.nb());
  }

  void build() {
    const int mt = a_.mt();
    const int nt = a_.nt();
    const int panels = std::min(mt, nt);
    const int threads = opt_.nodes * opt_.workers_per_node;
    int rr = 0;
    for (int k = 0; k < panels; ++k) {
      const int kb = std::min(a_.tile_rows(k), a_.tile_cols(k));
      auto pcfg = std::make_shared<PanelCfg>();
      pcfg->k = k;
      pcfg->kb = kb;
      pcfg->chain_out = k + 1 < nt ? 0 : -1;
      vsa_.add_vdp(
          p_tuple(k), mt - k,
          [pcfg](VdpContext& ctx) { panel_fire(ctx, *pcfg); }, 1,
          pcfg->chain_out >= 0 ? 1 : 0, kLuPanel);
      vsa_.map_vdp(p_tuple(k), rr++ % threads);
      ++vdp_count_;
      feed_if_first_step(p_tuple(k), k, k);

      for (int j = k + 1; j < nt; ++j) {
        auto ucfg = std::make_shared<UpdateCfg>();
        ucfg->k = k;
        ucfg->j = j;
        ucfg->kb = kb;
        ucfg->chain_out = j + 1 < nt ? 0 : -1;
        const bool has_stream = mt - k - 1 > 0;
        int next_out = ucfg->chain_out >= 0 ? 1 : 0;
        ucfg->solid_out = has_stream ? next_out++ : -1;
        vsa_.add_vdp(
            s_tuple(k, j), mt - k,
            [ucfg](VdpContext& ctx) { update_fire(ctx, *ucfg); }, 2,
            next_out, kLuUpdate);
        // The first firing keeps U(k,j) instead of streaming it onward.
        if (has_stream) {
          vsa_.declare_output_packets(s_tuple(k, j), ucfg->solid_out,
                                      mt - k - 1);
        }
        vsa_.map_vdp(s_tuple(k, j), rr++ % threads);
        ++vdp_count_;
        feed_if_first_step(s_tuple(k, j), k, j);
        // Chain: P(k) -> S(k,k+1) -> S(k,k+2) -> ...
        const Tuple src = j == k + 1 ? p_tuple(k) : s_tuple(k, j - 1);
        vsa_.connect(src, 0, s_tuple(k, j), 1, bytes_);
        ++channel_count_;
        // Solid stream to step k+1.
        if (has_stream) {
          const Tuple dst = j == k + 1 ? p_tuple(k + 1) : s_tuple(k + 1, j);
          vsa_.connect(s_tuple(k, j), ucfg->solid_out, dst, 0, bytes_);
          ++channel_count_;
        }
      }
    }
  }

  prt::GraphReport lint() {
    build();
    return prt::GraphCheck::check(vsa_);
  }

  VsaLuRun run() {
    build();
    auto stats = vsa_.run();
    VsaLuRun out{std::move(store_->f), stats, {}, vdp_count_, channel_count_};
    if (opt_.trace) out.events = vsa_.recorder().collect();
    return out;
  }

 private:
  static prt::Vsa::Config make_config(const VsaLuOptions& opt) {
    prt::Vsa::Config c;
    c.nodes = opt.nodes;
    c.workers_per_node = opt.workers_per_node;
    c.scheduling = opt.scheduling;
    c.work_stealing = opt.work_stealing;
    c.trace = opt.trace;
    c.watchdog_seconds = opt.watchdog_seconds;
    c.graph_check = opt.graph_check;
    c.transport = opt.transport;
    c.reliable_transport = opt.reliable_transport;
    c.fault_plan = opt.fault_plan;
    c.retransmit_timeout_us = opt.retransmit_timeout_us;
    c.max_retransmits = opt.max_retransmits;
    c.max_respawns = opt.max_respawns;
    c.replay_log_bytes = opt.replay_log_bytes;
    c.heartbeat_timeout_seconds = opt.heartbeat_timeout_seconds;
    return c;
  }

  void feed_if_first_step(const Tuple& dst, int k, int j) {
    if (k > 0) return;  // wired by the producing S(k-1, j)
    std::vector<Packet> initial;
    for (int i = 0; i < a_.mt(); ++i) {
      initial.push_back(encode_tile(a_.tile(i, j), i));
    }
    vsa_.feed(dst, 0, bytes_, std::move(initial));
    ++channel_count_;
  }

  const TileMatrix& a_;
  VsaLuOptions opt_;
  prt::Vsa vsa_;
  std::shared_ptr<LuStore> store_;
  std::size_t bytes_ = 0;
  int vdp_count_ = 0;
  int channel_count_ = 0;
};

}  // namespace

VsaLuRun vsa_lu(const TileMatrix& a, const VsaLuOptions& opt) {
  Builder b(a, opt);
  return b.run();
}

prt::GraphReport lint_vsa_lu(const TileMatrix& a, const VsaLuOptions& opt) {
  Builder b(a, opt);
  return b.lint();
}

}  // namespace pulsarqr::lu
