// Tile LU (no pivoting) mapped onto the PULSAR runtime — the third
// algorithm on the runtime, and the original systolic-array showcase
// (Kung & Leiserson, reference [8] of the paper).
//
// Streaming structure per step k, mirroring the Cholesky array:
//   * Panel VDP P(k): first tile -> getrf (the packed LU of the diagonal
//     tile, held), further tiles -> trsm against the held U; the held
//     LU(k,k) followed by every L(i,k) is broadcast rightward through a
//     by-passing chain;
//   * Update VDP S(k,j): first chain packet is LU(k,k) -> trsm_L turns
//     its held top tile into the final U(k,j); every later chain packet
//     L(i,k) pairs with the streamed tile A(i,j) (gemm) which then flows
//     to step k+1.
// Unlike QR/Cholesky, every channel is consumed from the first firing,
// so no dynamic channel enabling is needed — LU is the simplest of the
// three arrays.
#pragma once

#include "lu/reference_lu.hpp"
#include "prt/graph_check.hpp"
#include "prt/vsa.hpp"

namespace pulsarqr::lu {

struct VsaLuOptions {
  int nodes = 1;
  int workers_per_node = 2;
  prt::Scheduling scheduling = prt::Scheduling::Lazy;
  bool work_stealing = false;
  bool trace = false;
  double watchdog_seconds = 60.0;
  /// Statically verify the constructed array with prt::GraphCheck before
  /// executing it (see prt::Vsa::Config::graph_check).
  bool graph_check = true;
  /// Transport backend (see prt::Transport). Socket mode ships the final
  /// packed factors back to the parent through a TileDepositLog.
  prt::Transport transport = prt::Transport::InProcess;
  /// Reliable-delivery protocol + tuning (see prt::Vsa::Config).
  bool reliable_transport = false;
  prt::net::FaultPlan fault_plan;
  int retransmit_timeout_us = 2000;
  int max_retransmits = 10;
  /// Crash recovery over the Socket transport (see
  /// prt::Vsa::Config::max_respawns / replay_log_bytes /
  /// heartbeat_timeout_seconds).
  int max_respawns = 0;
  std::size_t replay_log_bytes = 64 * 1024 * 1024;
  double heartbeat_timeout_seconds = 10.0;
};

struct VsaLuRun {
  TileMatrix f;  ///< packed factors: U upper, unit-L below
  prt::Vsa::RunStats stats;
  std::vector<prt::trace::Event> events;
  int vdp_count = 0;
  int channel_count = 0;
};

/// Factorize a tile matrix (no pivoting — the input must be safe for it,
/// e.g. diagonally dominant) on the systolic array.
VsaLuRun vsa_lu(const TileMatrix& a, const VsaLuOptions& opt);

/// Build the LU array for `a` and statically verify it with
/// prt::GraphCheck, without executing it (see the vsa_lint tool).
prt::GraphReport lint_vsa_lu(const TileMatrix& a, const VsaLuOptions& opt);

enum LuTraceColor { kLuPanel = 0, kLuUpdate = 1 };

}  // namespace pulsarqr::lu
