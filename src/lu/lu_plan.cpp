#include "lu/lu_plan.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pulsarqr::lu {

LuPlan::LuPlan(int mt, int nt)
    : mt_(mt), nt_(nt), panels_(std::min(mt, nt)) {
  require(mt >= 1 && nt >= 1, "LuPlan: empty tile matrix");
  for (int k = 0; k < panels_; ++k) {
    ops_.push_back({OpKind::Getrf, k, -1, -1});
    for (int i = k + 1; i < mt_; ++i) {
      ops_.push_back({OpKind::TrsmU, k, i, -1});
    }
    for (int j = k + 1; j < nt_; ++j) {
      ops_.push_back({OpKind::TrsmL, k, -1, j});
      for (int i = k + 1; i < mt_; ++i) {
        ops_.push_back({OpKind::Gemm, k, i, j});
      }
    }
  }
}

namespace {
int rows_of(int m, int nb, int i) {
  const int mt = (m + nb - 1) / nb;
  return i == mt - 1 ? m - i * nb : nb;
}
int cols_of(int n, int nb, int j) {
  const int nt = (n + nb - 1) / nb;
  return j == nt - 1 ? n - j * nb : nb;
}
}  // namespace

double op_flops(const Op& op, int m, int n, int nb) {
  const double bk = cols_of(n, nb, op.k);
  switch (op.kind) {
    case OpKind::Getrf: {
      const double d = std::min<double>(rows_of(m, nb, op.k), bk);
      return 2.0 / 3.0 * d * d * d;
    }
    case OpKind::TrsmU:
      return static_cast<double>(rows_of(m, nb, op.i)) * bk * bk;
    case OpKind::TrsmL:
      return bk * bk * cols_of(n, nb, op.j);
    case OpKind::Gemm:
      return 2.0 * rows_of(m, nb, op.i) * bk * cols_of(n, nb, op.j);
  }
  return 0.0;
}

double plan_flops(const LuPlan& plan, int m, int n, int nb) {
  double total = 0.0;
  for (const auto& op : plan.ops()) total += op_flops(op, m, n, nb);
  return total;
}

double lu_useful_flops(double n) { return 2.0 * n * n * n / 3.0; }

}  // namespace pulsarqr::lu
