// Tile LU (no pivoting) plan — op stream for the PULSAR-mapped LU
// (src/lu), the third algorithm mapped onto the runtime and the original
// systolic-array showcase (Kung & Leiserson, reference [8] of the paper).
//
// Right-looking tile algorithm:
//   for k:  GETRF(k,k);
//           TRSM_U(i,k) for i>k  (L(i,k) := A(i,k) U(k,k)^{-1})
//           TRSM_L(k,j) for j>k  (U(k,j) := L(k,k)^{-1} A(k,j))
//           GEMM(i,j,k)          (A(i,j) -= L(i,k) U(k,j))
#pragma once

#include <cstdint>
#include <vector>

namespace pulsarqr::lu {

enum class OpKind : std::uint8_t { Getrf, TrsmU, TrsmL, Gemm };

/// One kernel invocation; unused fields are -1.
///   Getrf: (k)    TrsmU: (i, k)    TrsmL: (k, j)    Gemm: (i, j, k)
struct Op {
  OpKind kind;
  int k;
  int i;
  int j;
};

class LuPlan {
 public:
  LuPlan(int mt, int nt);

  int mt() const { return mt_; }
  int nt() const { return nt_; }
  int panels() const { return panels_; }
  const std::vector<Op>& ops() const { return ops_; }

 private:
  int mt_, nt_, panels_;
  std::vector<Op> ops_;
};

double op_flops(const Op& op, int m, int n, int nb);
double plan_flops(const LuPlan& plan, int m, int n, int nb);
/// Classical LU useful flops for a square n-by-n system: 2 n^3 / 3.
double lu_useful_flops(double n);

}  // namespace pulsarqr::lu
