// Sequential reference executor for the tile LU plan, plus the solve
// driver. Ground truth for the systolic-array LU.
#pragma once

#include <vector>

#include "lu/lu_plan.hpp"
#include "tile/tile_matrix.hpp"

namespace pulsarqr::lu {

/// Execute one plan op against the tile matrix.
void execute_op(const Op& op, TileMatrix& a);

/// Factorize a tile matrix in place (no pivoting): U in the upper
/// triangle, unit-L below.
TileMatrix tile_lu(TileMatrix a);

/// Solve A x = b for square A given the packed tile factors.
std::vector<double> lu_solve(const TileMatrix& f, std::vector<double> b);

/// Build a diagonally dominant random matrix (safe for no-pivot LU).
Matrix random_diag_dominant(int m, int n, std::uint64_t seed);

}  // namespace pulsarqr::lu
