#include "lu/reference_lu.hpp"

#include <utility>

#include "blas/blas.hpp"
#include "common/rng.hpp"
#include "lapack/lu.hpp"

namespace pulsarqr::lu {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;

void execute_op(const Op& op, TileMatrix& a) {
  switch (op.kind) {
    case OpKind::Getrf:
      lapack::getf2_nopiv(a.tile(op.k, op.k));
      break;
    case OpKind::TrsmU: {
      // L(i,k) := A(i,k) * U(k,k)^{-1}; the pivot block is kb-by-kb with
      // kb = min(diag tile rows, cols) — rectangular border tiles carry a
      // trapezoidal factor.
      const int kb = std::min(a.tile_rows(op.k), a.tile_cols(op.k));
      blas::trsm(Side::Right, Uplo::Upper, Trans::No, Diag::NonUnit, 1.0,
                 a.tile(op.k, op.k).block(0, 0, kb, kb), a.tile(op.i, op.k));
      break;
    }
    case OpKind::TrsmL: {
      // U(k,j) := L(k,k)^{-1} * A(k,j) on the pivot rows.
      const int kb = std::min(a.tile_rows(op.k), a.tile_cols(op.k));
      blas::trsm(Side::Left, Uplo::Lower, Trans::No, Diag::Unit, 1.0,
                 a.tile(op.k, op.k).block(0, 0, kb, kb),
                 MatrixView(a.tile(op.k, op.j).data, kb,
                            a.tile_cols(op.j), a.tile(op.k, op.j).ld));
      break;
    }
    case OpKind::Gemm: {
      const int kb = std::min(a.tile_rows(op.k), a.tile_cols(op.k));
      blas::gemm(Trans::No, Trans::No, -1.0,
                 ConstMatrixView(a.tile(op.i, op.k).data, a.tile_rows(op.i),
                                 kb, a.tile(op.i, op.k).ld),
                 ConstMatrixView(a.tile(op.k, op.j).data, kb,
                                 a.tile_cols(op.j), a.tile(op.k, op.j).ld),
                 1.0, a.tile(op.i, op.j));
      break;
    }
  }
}

TileMatrix tile_lu(TileMatrix a) {
  LuPlan plan(a.mt(), a.nt());
  for (const auto& op : plan.ops()) execute_op(op, a);
  return a;
}

std::vector<double> lu_solve(const TileMatrix& f, std::vector<double> b) {
  require(f.rows() == f.cols(), "lu_solve: matrix must be square");
  require(static_cast<int>(b.size()) == f.rows(), "lu_solve: rhs length");
  Matrix lu = f.to_dense();
  lapack::getrs_nopiv(lu.view(), b.data());
  return b;
}

Matrix random_diag_dominant(int m, int n, std::uint64_t seed) {
  Matrix a(m, n);
  fill_random(a.view(), seed);
  const int k = std::min(m, n);
  for (int j = 0; j < k; ++j) {
    a(j, j) += (a(j, j) >= 0 ? 1.0 : -1.0) * std::max(m, n);
  }
  return a;
}

}  // namespace pulsarqr::lu
