// Cholesky factorization (lower, A = L L^T) — the tile kernel behind the
// PULSAR-mapped Cholesky (src/chol), and a dense driver for tests.
#pragma once

#include "common/view.hpp"

namespace pulsarqr::lapack {

/// Unblocked lower Cholesky of an n-by-n SPD matrix in place. Throws
/// pulsarqr::Error if a non-positive pivot is met (matrix not SPD).
void potf2(MatrixView a);

/// Blocked lower Cholesky with block size nb.
void potrf(MatrixView a, int nb = 32);

/// Solve A x = b given the Cholesky factor L (lower triangle of a);
/// b is overwritten with x.
void potrs(ConstMatrixView a, double* b);

}  // namespace pulsarqr::lapack
