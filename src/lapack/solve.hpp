// Dense least-squares driver (LAPACK dgels equivalent, QR path only) used
// as ground truth for the tile/VSA solvers and by the examples.
#pragma once

#include <vector>

#include "common/view.hpp"

namespace pulsarqr::lapack {

/// Solve min_x ||A x - b||_2 for full-rank A (m >= n) via Householder QR.
/// A is destroyed. b has length m; returns x of length n.
std::vector<double> least_squares(MatrixView a, std::vector<double> b);

/// Residual norm ||b - A x||_2 without destroying A.
double residual_norm(ConstMatrixView a, const std::vector<double>& x,
                     const std::vector<double>& b);

}  // namespace pulsarqr::lapack
