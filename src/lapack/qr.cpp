#include "lapack/qr.hpp"

#include <algorithm>

#include "lapack/householder.hpp"

namespace pulsarqr::lapack {

using blas::Diag;
using blas::Trans;
using blas::Uplo;
using kernels::Workspace;
using kernels::WsFrame;

void geqr2(MatrixView a, double* tau, Workspace& ws) {
  const int m = a.rows;
  const int n = a.cols;
  const int k = std::min(m, n);
  WsFrame frame(ws);
  double* work = ws.alloc(std::max(n, 1));
  for (int j = 0; j < k; ++j) {
    double* col = a.col(j) + j;
    tau[j] = larfg(m - j, col[0], col + 1);
    if (j + 1 < n) {
      // Apply H_j to the trailing columns; col[0] temporarily plays v(0)=1.
      const double ajj = col[0];
      col[0] = 1.0;
      larf_left(col, tau[j], a.block(j, j + 1, m - j, n - j - 1), work);
      col[0] = ajj;
    }
  }
}

void geqr2(MatrixView a, double* tau) { geqr2(a, tau, kernels::tls_workspace()); }

void geqrf(MatrixView a, double* tau, int nb, Workspace& ws) {
  const int m = a.rows;
  const int n = a.cols;
  const int k = std::min(m, n);
  if (k == 0) return;
  nb = std::max(1, std::min(nb, k));
  WsFrame frame(ws);
  MatrixView t = ws.matrix(nb, nb);
  double* work = ws.alloc(static_cast<std::size_t>(nb) * std::max(n, 1));
  for (int j = 0; j < k; j += nb) {
    const int kb = std::min(nb, k - j);
    geqr2(a.block(j, j, m - j, kb), tau + j, ws);
    if (j + kb < n) {
      MatrixView tview = t.block(0, 0, kb, kb);
      larft(a.block(j, j, m - j, kb), tau + j, tview);
      larfb_left(Trans::Yes, a.block(j, j, m - j, kb), ConstMatrixView(tview),
                 a.block(j, j + kb, m - j, n - j - kb), work);
    }
  }
}

void geqrf(MatrixView a, double* tau, int nb) {
  geqrf(a, tau, nb, kernels::tls_workspace());
}

void geqrt(MatrixView a, int ib, MatrixView t, Workspace& ws) {
  const int m = a.rows;
  const int n = a.cols;
  const int k = std::min(m, n);
  if (k == 0) return;
  require(ib >= 1, "geqrt: ib must be positive");
  PQR_ASSERT(t.rows >= std::min(ib, k) && t.cols >= k, "geqrt: T too small");
  WsFrame frame(ws);
  double* tau = ws.alloc(k);
  double* work = ws.alloc(static_cast<std::size_t>(ib) * std::max(n, 1));
  for (int j = 0; j < k; j += ib) {
    const int kb = std::min(ib, k - j);
    geqr2(a.block(j, j, m - j, kb), tau + j, ws);
    // T block for this panel, stored at T(0:kb, j:j+kb).
    larft(a.block(j, j, m - j, kb), tau + j, t.block(0, j, kb, kb));
    if (j + kb < n) {
      larfb_left(Trans::Yes, a.block(j, j, m - j, kb),
                 ConstMatrixView(t.block(0, j, kb, kb)),
                 a.block(j, j + kb, m - j, n - j - kb), work);
    }
  }
}

void geqrt(MatrixView a, int ib, MatrixView t) {
  geqrt(a, ib, t, kernels::tls_workspace());
}

void ormqr(blas::Trans trans, ConstMatrixView a, const double* tau,
           MatrixView c, int nb, Workspace& ws) {
  const int m = c.rows;
  const int k = std::min(a.rows, a.cols);
  PQR_ASSERT(a.rows == m, "ormqr: V row mismatch");
  if (k == 0) return;
  nb = std::max(1, std::min(nb, k));
  WsFrame frame(ws);
  MatrixView t = ws.matrix(nb, nb);
  double* work = ws.alloc(static_cast<std::size_t>(nb) * std::max(c.cols, 1));
  // Q = H_1 ... H_k. Q^T C applies blocks first-to-last; Q C last-to-first.
  const int nblocks = (k + nb - 1) / nb;
  for (int bi = 0; bi < nblocks; ++bi) {
    const int b = trans == Trans::Yes ? bi : nblocks - 1 - bi;
    const int j = b * nb;
    const int kb = std::min(nb, k - j);
    MatrixView tview = t.block(0, 0, kb, kb);
    larft(a.block(j, j, m - j, kb), tau + j, tview);
    larfb_left(trans, a.block(j, j, m - j, kb), ConstMatrixView(tview),
               c.block(j, 0, m - j, c.cols), work);
  }
}

void ormqr(blas::Trans trans, ConstMatrixView a, const double* tau,
           MatrixView c, int nb) {
  ormqr(trans, a, tau, c, nb, kernels::tls_workspace());
}

void ormqr_t(blas::Trans trans, ConstMatrixView a, ConstMatrixView t, int ib,
             MatrixView c, Workspace& ws) {
  const int m = c.rows;
  const int k = std::min(a.rows, a.cols);
  PQR_ASSERT(a.rows == m, "ormqr_t: V row mismatch");
  if (k == 0) return;
  WsFrame frame(ws);
  double* work = ws.alloc(static_cast<std::size_t>(ib) * std::max(c.cols, 1));
  const int nblocks = (k + ib - 1) / ib;
  for (int bi = 0; bi < nblocks; ++bi) {
    const int b = trans == Trans::Yes ? bi : nblocks - 1 - bi;
    const int j = b * ib;
    const int kb = std::min(ib, k - j);
    larfb_left(trans, a.block(j, j, m - j, kb), t.block(0, j, kb, kb),
               c.block(j, 0, m - j, c.cols), work);
  }
}

void ormqr_t(blas::Trans trans, ConstMatrixView a, ConstMatrixView t, int ib,
             MatrixView c) {
  ormqr_t(trans, a, t, ib, c, kernels::tls_workspace());
}

Matrix form_q(ConstMatrixView a, const double* tau, int k) {
  const int m = a.rows;
  PQR_ASSERT(k <= m, "form_q: more columns than rows");
  Matrix q(m, k);
  blas::laset_all(0.0, 1.0, q.view());
  ormqr(Trans::No, a, tau, q.view());
  return q;
}

}  // namespace pulsarqr::lapack
