#include "lapack/qr.hpp"

#include <algorithm>

#include "blas/simd.hpp"
#include "lapack/householder.hpp"

namespace pulsarqr::lapack {

using blas::Diag;
using blas::Trans;
using blas::Uplo;
using kernels::Workspace;
using kernels::WsFrame;

namespace {

// The geqr2 trailing update is the kernel table's fused larf entry (dot
// and rank-1 update in one cache-hot sweep, no work vector), which is what
// makes the sub-nb64 batched path cheap: a 64x16 geqr2 performs no
// workspace traffic at all.
template <class T>
void geqr2_t(MatrixViewT<T> a, T* tau) {
  const int m = a.rows;
  const int n = a.cols;
  const int k = std::min(m, n);
  const blas::simd::KernelTable<T>& kt = blas::simd::kernels<T>();
  for (int j = 0; j < k; ++j) {
    T* col = a.col(j) + j;
    tau[j] = larfg(m - j, col[0], col + 1);
    if (j + 1 < n) {
      // Apply H_j to the trailing columns; larf treats v(0) = 1 as
      // implicit, so col[0] (which already holds beta) is never read.
      kt.larf(m - j, n - j - 1, tau[j], col, a.col(j + 1) + j, a.ld);
    }
  }
}

template <class T>
void geqrt_t(MatrixViewT<T> a, int ib, MatrixViewT<T> t, Workspace& ws) {
  const int m = a.rows;
  const int n = a.cols;
  const int k = std::min(m, n);
  if (k == 0) return;
  require(ib >= 1, "geqrt: ib must be positive");
  PQR_ASSERT(t.rows >= std::min(ib, k) && t.cols >= k, "geqrt: T too small");
  WsFrame frame(ws);
  T* tau = ws.alloc_as<T>(k);
  T* work = ws.alloc_as<T>(static_cast<std::size_t>(ib) * std::max(n, 1));
  for (int j = 0; j < k; j += ib) {
    const int kb = std::min(ib, k - j);
    geqr2_t<T>(a.block(j, j, m - j, kb), tau + j);
    // T block for this panel, stored at T(0:kb, j:j+kb).
    larft(ConstMatrixViewT<T>(a.block(j, j, m - j, kb)), tau + j,
          t.block(0, j, kb, kb));
    if (j + kb < n) {
      larfb_left(Trans::Yes, ConstMatrixViewT<T>(a.block(j, j, m - j, kb)),
                 ConstMatrixViewT<T>(t.block(0, j, kb, kb)),
                 a.block(j, j + kb, m - j, n - j - kb), work);
    }
  }
}

template <class T>
void ormqr_t_t(blas::Trans trans, ConstMatrixViewT<T> a, ConstMatrixViewT<T> t,
               int ib, MatrixViewT<T> c, Workspace& ws) {
  const int m = c.rows;
  const int k = std::min(a.rows, a.cols);
  PQR_ASSERT(a.rows == m, "ormqr_t: V row mismatch");
  if (k == 0) return;
  WsFrame frame(ws);
  T* work = ws.alloc_as<T>(static_cast<std::size_t>(ib) * std::max(c.cols, 1));
  const int nblocks = (k + ib - 1) / ib;
  for (int bi = 0; bi < nblocks; ++bi) {
    const int b = trans == Trans::Yes ? bi : nblocks - 1 - bi;
    const int j = b * ib;
    const int kb = std::min(ib, k - j);
    larfb_left(trans, a.block(j, j, m - j, kb), t.block(0, j, kb, kb),
               c.block(j, 0, m - j, c.cols), work);
  }
}

}  // namespace

void geqr2(MatrixView a, double* tau, Workspace&) { geqr2_t<double>(a, tau); }

void geqr2(MatrixView a, double* tau) { geqr2_t<double>(a, tau); }

void geqr2(MatrixViewF a, float* tau, Workspace&) { geqr2_t<float>(a, tau); }

void geqr2(MatrixViewF a, float* tau) { geqr2_t<float>(a, tau); }

void geqrf(MatrixView a, double* tau, int nb, Workspace& ws) {
  const int m = a.rows;
  const int n = a.cols;
  const int k = std::min(m, n);
  if (k == 0) return;
  nb = std::max(1, std::min(nb, k));
  WsFrame frame(ws);
  MatrixView t = ws.matrix(nb, nb);
  double* work = ws.alloc(static_cast<std::size_t>(nb) * std::max(n, 1));
  for (int j = 0; j < k; j += nb) {
    const int kb = std::min(nb, k - j);
    geqr2(a.block(j, j, m - j, kb), tau + j, ws);
    if (j + kb < n) {
      MatrixView tview = t.block(0, 0, kb, kb);
      larft(a.block(j, j, m - j, kb), tau + j, tview);
      larfb_left(Trans::Yes, a.block(j, j, m - j, kb), ConstMatrixView(tview),
                 a.block(j, j + kb, m - j, n - j - kb), work);
    }
  }
}

void geqrf(MatrixView a, double* tau, int nb) {
  geqrf(a, tau, nb, kernels::tls_workspace());
}

void geqrt(MatrixView a, int ib, MatrixView t, Workspace& ws) {
  geqrt_t<double>(a, ib, t, ws);
}

void geqrt(MatrixView a, int ib, MatrixView t) {
  geqrt_t<double>(a, ib, t, kernels::tls_workspace());
}

void geqrt(MatrixViewF a, int ib, MatrixViewF t, Workspace& ws) {
  geqrt_t<float>(a, ib, t, ws);
}

void geqrt(MatrixViewF a, int ib, MatrixViewF t) {
  geqrt_t<float>(a, ib, t, kernels::tls_workspace());
}

void ormqr(blas::Trans trans, ConstMatrixView a, const double* tau,
           MatrixView c, int nb, Workspace& ws) {
  const int m = c.rows;
  const int k = std::min(a.rows, a.cols);
  PQR_ASSERT(a.rows == m, "ormqr: V row mismatch");
  if (k == 0) return;
  nb = std::max(1, std::min(nb, k));
  WsFrame frame(ws);
  MatrixView t = ws.matrix(nb, nb);
  double* work = ws.alloc(static_cast<std::size_t>(nb) * std::max(c.cols, 1));
  // Q = H_1 ... H_k. Q^T C applies blocks first-to-last; Q C last-to-first.
  const int nblocks = (k + nb - 1) / nb;
  for (int bi = 0; bi < nblocks; ++bi) {
    const int b = trans == Trans::Yes ? bi : nblocks - 1 - bi;
    const int j = b * nb;
    const int kb = std::min(nb, k - j);
    MatrixView tview = t.block(0, 0, kb, kb);
    larft(a.block(j, j, m - j, kb), tau + j, tview);
    larfb_left(trans, a.block(j, j, m - j, kb), ConstMatrixView(tview),
               c.block(j, 0, m - j, c.cols), work);
  }
}

void ormqr(blas::Trans trans, ConstMatrixView a, const double* tau,
           MatrixView c, int nb) {
  ormqr(trans, a, tau, c, nb, kernels::tls_workspace());
}

void ormqr_t(blas::Trans trans, ConstMatrixView a, ConstMatrixView t, int ib,
             MatrixView c, Workspace& ws) {
  ormqr_t_t<double>(trans, a, t, ib, c, ws);
}

void ormqr_t(blas::Trans trans, ConstMatrixView a, ConstMatrixView t, int ib,
             MatrixView c) {
  ormqr_t_t<double>(trans, a, t, ib, c, kernels::tls_workspace());
}

void ormqr_t(blas::Trans trans, ConstMatrixViewF a, ConstMatrixViewF t,
             int ib, MatrixViewF c, Workspace& ws) {
  ormqr_t_t<float>(trans, a, t, ib, c, ws);
}

void ormqr_t(blas::Trans trans, ConstMatrixViewF a, ConstMatrixViewF t,
             int ib, MatrixViewF c) {
  ormqr_t_t<float>(trans, a, t, ib, c, kernels::tls_workspace());
}

Matrix form_q(ConstMatrixView a, const double* tau, int k) {
  const int m = a.rows;
  PQR_ASSERT(k <= m, "form_q: more columns than rows");
  Matrix q(m, k);
  blas::laset_all(0.0, 1.0, q.view());
  ormqr(Trans::No, a, tau, q.view());
  return q;
}

}  // namespace pulsarqr::lapack
