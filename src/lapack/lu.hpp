// LU factorization without pivoting (A = L U, L unit lower), used by the
// PULSAR-mapped LU (src/lu). No-pivot LU is numerically safe only for
// special classes (diagonally dominant, SPD-like); callers are expected
// to know their matrix — the same contract as PLASMA's dgetrf_nopiv.
#pragma once

#include "common/view.hpp"

namespace pulsarqr::lapack {

/// Unblocked no-pivot LU of an m-by-n matrix in place: U in the upper
/// triangle, unit-L factors below. Throws on a zero pivot.
void getf2_nopiv(MatrixView a);

/// Blocked no-pivot LU with block size nb.
void getrf_nopiv(MatrixView a, int nb = 32);

/// Solve A x = b given the packed LU factors (square n-by-n); b is
/// overwritten with x.
void getrs_nopiv(ConstMatrixView lu, double* b);

}  // namespace pulsarqr::lapack
