#include "lapack/solve.hpp"

#include "blas/blas.hpp"
#include "lapack/qr.hpp"

namespace pulsarqr::lapack {

std::vector<double> least_squares(MatrixView a, std::vector<double> b) {
  const int m = a.rows;
  const int n = a.cols;
  require(m >= n, "least_squares: need m >= n");
  require(static_cast<int>(b.size()) == m, "least_squares: rhs length mismatch");
  std::vector<double> tau(n);
  geqrf(a, tau.data());
  MatrixView bview(b.data(), m, 1, m);
  ormqr(blas::Trans::Yes, ConstMatrixView(a), tau.data(), bview);
  // Solve R x = (Q^T b)(0:n).
  blas::trsv(blas::Uplo::Upper, blas::Trans::No, blas::Diag::NonUnit,
             ConstMatrixView(a.data, n, n, a.ld), b.data());
  b.resize(n);
  return b;
}

double residual_norm(ConstMatrixView a, const std::vector<double>& x,
                     const std::vector<double>& b) {
  std::vector<double> r = b;
  blas::gemv(blas::Trans::No, -1.0, a, x.data(), 1.0, r.data());
  return blas::nrm2(static_cast<int>(r.size()), r.data());
}

}  // namespace pulsarqr::lapack
