// Dense (non-tiled) QR factorizations: unblocked geqr2, blocked geqrf,
// the T-producing geqrt used by the tile kernels, Q application (ormqr)
// and explicit Q formation. These serve as the ground-truth reference for
// the tile algorithms and as the building blocks of the tile kernels.
#pragma once

#include <vector>

#include "blas/blas.hpp"
#include "common/view.hpp"
#include "kernels/workspace.hpp"

namespace pulsarqr::lapack {

// Every routine exists in two forms: one taking an explicit scratch
// Workspace (the hot path — zero heap allocation in steady state) and a
// convenience overload that uses the calling thread's tls_workspace().
//
// geqr2, geqrt and ormqr_t — the panel routines the tile kernels and the
// batched small-matrix QR build on — also have float overloads; the cores
// are templated on the scalar type and route through the same SIMD kernel
// tables as the double path.

/// Unblocked Householder QR of an m-by-n matrix (m >= n not required).
/// On exit the upper triangle holds R, the strict lower trapezoid holds the
/// Householder vectors; tau must have min(m, n) entries. The trailing
/// update goes through the kernel table's fused larf entry and needs no
/// scratch — the Workspace overload is kept for signature symmetry.
void geqr2(MatrixView a, double* tau, kernels::Workspace& ws);
void geqr2(MatrixView a, double* tau);
void geqr2(MatrixViewF a, float* tau, kernels::Workspace& ws);
void geqr2(MatrixViewF a, float* tau);

/// Blocked Householder QR with block size nb. Same output layout as geqr2.
void geqrf(MatrixView a, double* tau, int nb, kernels::Workspace& ws);
void geqrf(MatrixView a, double* tau, int nb = 32);

/// QR with T factors, PLASMA CORE_dgeqrt layout: A is m-by-n; inner block
/// size ib; T is ib-by-n, holding one ib-by-kb upper-triangular T block per
/// inner panel (kb = min(ib, n - j)).
void geqrt(MatrixView a, int ib, MatrixView t, kernels::Workspace& ws);
void geqrt(MatrixView a, int ib, MatrixView t);
void geqrt(MatrixViewF a, int ib, MatrixViewF t, kernels::Workspace& ws);
void geqrt(MatrixViewF a, int ib, MatrixViewF t);

/// Apply Q (or Q^T) from geqr2/geqrf output to C from the left:
/// C := op(Q) * C. a holds the reflectors (m-by-k), tau their scalars.
void ormqr(blas::Trans trans, ConstMatrixView a, const double* tau,
           MatrixView c, int nb, kernels::Workspace& ws);
void ormqr(blas::Trans trans, ConstMatrixView a, const double* tau,
           MatrixView c, int nb = 32);

/// Apply Q (or Q^T) from geqrt output to C from the left, using the stored
/// T factors (PLASMA CORE_dormqr equivalent).
void ormqr_t(blas::Trans trans, ConstMatrixView a, ConstMatrixView t, int ib,
             MatrixView c, kernels::Workspace& ws);
void ormqr_t(blas::Trans trans, ConstMatrixView a, ConstMatrixView t, int ib,
             MatrixView c);
void ormqr_t(blas::Trans trans, ConstMatrixViewF a, ConstMatrixViewF t,
             int ib, MatrixViewF c, kernels::Workspace& ws);
void ormqr_t(blas::Trans trans, ConstMatrixViewF a, ConstMatrixViewF t,
             int ib, MatrixViewF c);

/// Form the leading m-by-k columns of Q explicitly from geqrf output.
Matrix form_q(ConstMatrixView a, const double* tau, int k);

}  // namespace pulsarqr::lapack
