#include "lapack/householder.hpp"

#include <cmath>
#include <limits>

#include "blas/simd.hpp"

namespace pulsarqr::lapack {

using blas::Diag;
using blas::Trans;
using blas::Uplo;

namespace {

template <class T>
T larfg_t(int n, T& alpha, T* x) {
  if (n <= 1) return T(0);
  const T xnorm = blas::nrm2(n - 1, x);
  if (xnorm == T(0)) return T(0);  // H = I
  T beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
  // Rescale if beta is tiny (LAPACK-style safeguard); safmin is
  // xlamch('S') / xlamch('E'), the smallest value safe to invert.
  const T safmin = std::numeric_limits<T>::min() /
                   (std::numeric_limits<T>::epsilon() / T(2));
  int iters = 0;
  T scale = T(1);
  while (std::fabs(beta) < safmin && iters < 20) {
    const T inv = T(1) / safmin;
    blas::scal(n - 1, inv, x);
    beta *= inv;
    alpha *= inv;
    scale *= safmin;
    ++iters;
  }
  if (iters > 0) {
    const T xn = blas::nrm2(n - 1, x);
    beta = -std::copysign(std::hypot(alpha, xn), alpha);
  }
  const T tau = (beta - alpha) / beta;
  blas::scal(n - 1, T(1) / (alpha - beta), x);
  alpha = beta * scale;
  return tau;
}

template <class T>
void larft_t(ConstMatrixViewT<T> v, const T* tau, MatrixViewT<T> t) {
  const int k = v.cols;
  PQR_ASSERT(t.rows >= k && t.cols >= k, "larft: T too small");
  const int m = v.rows;
  const blas::simd::KernelTable<T>& kt = blas::simd::kernels<T>();
  for (int i = 0; i < k; ++i) {
    t(i, i) = tau[i];
    if (i == 0) continue;
    // t(0:i, i) = -tau_i * V(:, 0:i)^T * v_i, exploiting the unit-lower
    // trapezoidal structure: v_i has zeros above row i and v_i(i) = 1, so
    // the head term is v(i, j) and the tail is one fused multi-column dot
    // over rows i+1..m-1.
    for (int j = 0; j < i; ++j) t(j, i) = -tau[i] * v(i, j);
    if (i + 1 < m) {
      kt.dot_cols(m - i - 1, -tau[i], v.col(i) + i + 1, v.col(0) + i + 1,
                  v.ld, i, t.col(i), 1);
    }
    // t(0:i, i) := T(0:i, 0:i) * t(0:i, i)
    blas::trmv(Uplo::Upper, Trans::No, Diag::NonUnit,
               ConstMatrixViewT<T>(t.data, i, i, t.ld), t.col(i));
  }
}

template <class T>
void larfb_left_t(blas::Trans trans, ConstMatrixViewT<T> v,
                  ConstMatrixViewT<T> t, MatrixViewT<T> c, T* work) {
  const int m = c.rows;
  const int n = c.cols;
  const int k = v.cols;
  PQR_ASSERT(v.rows == m && t.rows >= k && t.cols >= k,
             "larfb_left: shape mismatch");
  if (k == 0 || m == 0 || n == 0) return;
  // W (k-by-n) = V^T C, with V = [V1 (unit lower tri, k-by-k); V2].
  MatrixViewT<T> w(work, k, n, k);
  // W := V1^T C1 : copy C1 then trmm.
  blas::lacpy_all(ConstMatrixViewT<T>(c.data, k, n, c.ld), w);
  blas::trmm(blas::Side::Left, Uplo::Lower, Trans::Yes, Diag::Unit, T(1),
             ConstMatrixViewT<T>(v.data, k, k, v.ld), w);
  if (m > k) {
    blas::gemm(Trans::Yes, Trans::No, T(1), v.block(k, 0, m - k, k),
               ConstMatrixViewT<T>(c.data + k, m - k, n, c.ld), T(1), w);
  }
  // W := op(T) W
  blas::trmm(blas::Side::Left, Uplo::Upper, trans, Diag::NonUnit, T(1),
             ConstMatrixViewT<T>(t.data, k, k, t.ld), w);
  // C := C - V W
  if (m > k) {
    blas::gemm(Trans::No, Trans::No, T(-1), v.block(k, 0, m - k, k),
               ConstMatrixViewT<T>(w), T(1),
               MatrixViewT<T>(c.data + k, m - k, n, c.ld));
  }
  // C1 := C1 - V1 W : compute V1 W via trmm into a copy of W, then subtract.
  blas::trmm(blas::Side::Left, Uplo::Lower, Trans::No, Diag::Unit, T(1),
             ConstMatrixViewT<T>(v.data, k, k, v.ld), w);
  for (int j = 0; j < n; ++j) {
    blas::axpy(k, T(-1), w.col(j), c.col(j));
  }
}

}  // namespace

double larfg(int n, double& alpha, double* x) { return larfg_t(n, alpha, x); }

float larfg(int n, float& alpha, float* x) { return larfg_t(n, alpha, x); }

void larft(ConstMatrixView v, const double* tau, MatrixView t) {
  larft_t(v, tau, t);
}

void larft(ConstMatrixViewF v, const float* tau, MatrixViewF t) {
  larft_t(v, tau, t);
}

void larfb_left(blas::Trans trans, ConstMatrixView v, ConstMatrixView t,
                MatrixView c, double* work) {
  larfb_left_t(trans, v, t, c, work);
}

void larfb_left(blas::Trans trans, ConstMatrixViewF v, ConstMatrixViewF t,
                MatrixViewF c, float* work) {
  larfb_left_t(trans, v, t, c, work);
}

}  // namespace pulsarqr::lapack
