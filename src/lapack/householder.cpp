#include "lapack/householder.hpp"

#include <cmath>
#include <limits>

namespace pulsarqr::lapack {

using blas::Diag;
using blas::Trans;
using blas::Uplo;

namespace {

template <class T>
T larfg_t(int n, T& alpha, T* x) {
  if (n <= 1) return T(0);
  const T xnorm = blas::nrm2(n - 1, x);
  if (xnorm == T(0)) return T(0);  // H = I
  T beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
  // Rescale if beta is tiny (LAPACK-style safeguard); safmin is
  // xlamch('S') / xlamch('E'), the smallest value safe to invert.
  const T safmin = std::numeric_limits<T>::min() /
                   (std::numeric_limits<T>::epsilon() / T(2));
  int iters = 0;
  T scale = T(1);
  while (std::fabs(beta) < safmin && iters < 20) {
    const T inv = T(1) / safmin;
    blas::scal(n - 1, inv, x);
    beta *= inv;
    alpha *= inv;
    scale *= safmin;
    ++iters;
  }
  if (iters > 0) {
    const T xn = blas::nrm2(n - 1, x);
    beta = -std::copysign(std::hypot(alpha, xn), alpha);
  }
  const T tau = (beta - alpha) / beta;
  blas::scal(n - 1, T(1) / (alpha - beta), x);
  alpha = beta * scale;
  return tau;
}

}  // namespace

double larfg(int n, double& alpha, double* x) { return larfg_t(n, alpha, x); }

float larfg(int n, float& alpha, float* x) { return larfg_t(n, alpha, x); }

void larf_left(const double* v, double tau, MatrixView c, double* work) {
  if (tau == 0.0) return;
  const int m = c.rows;
  const int n = c.cols;
  // work := C^T v  (v(0) = 1 implicit)
  for (int j = 0; j < n; ++j) {
    const double* cj = c.col(j);
    double s = cj[0];
    for (int i = 1; i < m; ++i) s += cj[i] * v[i];
    work[j] = s;
  }
  // C := C - tau * v * work^T
  for (int j = 0; j < n; ++j) {
    const double t = tau * work[j];
    if (t == 0.0) continue;
    double* cj = c.col(j);
    cj[0] -= t;
    for (int i = 1; i < m; ++i) cj[i] -= t * v[i];
  }
}

void larft(ConstMatrixView v, const double* tau, MatrixView t) {
  const int k = v.cols;
  PQR_ASSERT(t.rows >= k && t.cols >= k, "larft: T too small");
  const int m = v.rows;
  for (int i = 0; i < k; ++i) {
    t(i, i) = tau[i];
    if (i == 0) continue;
    // t(0:i, i) = -tau_i * V(:, 0:i)^T * v_i, exploiting the unit-lower
    // trapezoidal structure: v_i has zeros above row i and v_i(i) = 1.
    for (int j = 0; j < i; ++j) {
      // dot over rows i..m-1; row i of column j is v(i, j), v_i(i) = 1.
      double s = v(i, j);  // * v_i(i) == 1
      for (int r = i + 1; r < m; ++r) s += v(r, j) * v(r, i);
      t(j, i) = -tau[i] * s;
    }
    // t(0:i, i) := T(0:i, 0:i) * t(0:i, i)
    blas::trmv(Uplo::Upper, Trans::No, Diag::NonUnit,
               ConstMatrixView(t.data, i, i, t.ld), t.col(i));
  }
}

void larfb_left(blas::Trans trans, ConstMatrixView v, ConstMatrixView t,
                MatrixView c, double* work) {
  const int m = c.rows;
  const int n = c.cols;
  const int k = v.cols;
  PQR_ASSERT(v.rows == m && t.rows >= k && t.cols >= k,
             "larfb_left: shape mismatch");
  if (k == 0 || m == 0 || n == 0) return;
  // W (k-by-n) = V^T C, with V = [V1 (unit lower tri, k-by-k); V2].
  MatrixView w(work, k, n, k);
  // W := V1^T C1 : copy C1 then trmm.
  blas::lacpy_all(ConstMatrixView(c.data, k, n, c.ld), w);
  blas::trmm(blas::Side::Left, Uplo::Lower, Trans::Yes, Diag::Unit,
             1.0, ConstMatrixView(v.data, k, k, v.ld), w);
  if (m > k) {
    blas::gemm(Trans::Yes, Trans::No, 1.0, v.block(k, 0, m - k, k),
               ConstMatrixView(c.data + k, m - k, n, c.ld), 1.0, w);
  }
  // W := op(T) W
  blas::trmm(blas::Side::Left, Uplo::Upper, trans, Diag::NonUnit, 1.0,
             ConstMatrixView(t.data, k, k, t.ld), w);
  // C := C - V W
  if (m > k) {
    blas::gemm(Trans::No, Trans::No, -1.0, v.block(k, 0, m - k, k),
               ConstMatrixView(w), 1.0,
               MatrixView(c.data + k, m - k, n, c.ld));
  }
  // C1 := C1 - V1 W : compute V1 W via trmm into a copy of W, then subtract.
  blas::trmm(blas::Side::Left, Uplo::Lower, Trans::No, Diag::Unit, 1.0,
             ConstMatrixView(v.data, k, k, v.ld), w);
  for (int j = 0; j < n; ++j) {
    blas::axpy(k, -1.0, w.col(j), c.col(j));
  }
}

}  // namespace pulsarqr::lapack
