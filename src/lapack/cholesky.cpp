#include "lapack/cholesky.hpp"

#include <cmath>

#include "blas/blas.hpp"

namespace pulsarqr::lapack {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;

namespace {
void zero_strict_upper(MatrixView a) {
  for (int j = 1; j < a.cols; ++j) {
    for (int i = 0; i < j && i < a.rows; ++i) a(i, j) = 0.0;
  }
}
}  // namespace

void potf2(MatrixView a) {
  const int n = a.rows;
  PQR_ASSERT(a.cols == n, "potf2: A must be square");
  for (int j = 0; j < n; ++j) {
    double d = a(j, j);
    for (int p = 0; p < j; ++p) d -= a(j, p) * a(j, p);
    require(d > 0.0, "potf2: matrix is not positive definite");
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (int i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (int p = 0; p < j; ++p) s -= a(i, p) * a(j, p);
      a(i, j) = s / ljj;
    }
  }
  zero_strict_upper(a);
}

void potrf(MatrixView a, int nb) {
  const int n = a.rows;
  PQR_ASSERT(a.cols == n, "potrf: A must be square");
  if (nb >= n) {
    potf2(a);
    return;
  }
  for (int k = 0; k < n; k += nb) {
    const int kb = k + nb < n ? nb : n - k;
    potf2(a.block(k, k, kb, kb));
    if (k + kb < n) {
      const int rest = n - k - kb;
      // L21 := A21 * L11^{-T}
      blas::trsm(Side::Right, Uplo::Lower, Trans::Yes, Diag::NonUnit, 1.0,
                 a.block(k, k, kb, kb), a.block(k + kb, k, rest, kb));
      // A22 -= L21 * L21^T (full square update: cheaper bookkeeping than a
      // triangular syrk and the upper triangle is discarded below anyway).
      blas::gemm(Trans::No, Trans::Yes, -1.0, a.block(k + kb, k, rest, kb),
                 a.block(k + kb, k, rest, kb), 1.0,
                 a.block(k + kb, k + kb, rest, rest));
    }
  }
  zero_strict_upper(a);
}

void potrs(ConstMatrixView a, double* b) {
  blas::trsv(Uplo::Lower, Trans::No, Diag::NonUnit, a, b);
  blas::trsv(Uplo::Lower, Trans::Yes, Diag::NonUnit, a, b);
}

}  // namespace pulsarqr::lapack
