// Householder reflector primitives (LAPACK dlarfg/dlarf/dlarft/dlarfb
// equivalents), the numerical core of every QR kernel in this library.
//
// Conventions follow LAPACK: a reflector is H = I - tau * v * v^T with
// v(0) = 1 implicit; a block of k reflectors is H_1 ... H_k =
// I - V * T * V^T with V unit-lower-trapezoidal and T upper triangular.
//
// Every routine exists for double and float: the single-precision overloads
// back the f32 geqrt/qr_batch path. The rank-1 apply itself (dlarf) lives
// in the SIMD kernel tables as the fused `larf` entry (blas/simd.hpp) and
// is called directly by geqr2 — there is no separate larf routine here.
#pragma once

#include "blas/blas.hpp"
#include "common/view.hpp"

namespace pulsarqr::lapack {

/// Generate a Householder reflector for the n-vector [alpha; x] (x of
/// length n-1) such that H * [alpha; x] = [beta; 0]. On return alpha is
/// overwritten with beta and x with the tail of v. Returns tau.
double larfg(int n, double& alpha, double* x);
/// Single-precision variant (same contract), for the float kernel path.
float larfg(int n, float& alpha, float* x);

/// Form the T factor of a block reflector from V (m-by-k, unit lower
/// trapezoidal, diagonal ones implicit) and tau (length k). T is k-by-k
/// upper triangular, written into t.
void larft(ConstMatrixView v, const double* tau, MatrixView t);
void larft(ConstMatrixViewF v, const float* tau, MatrixViewF t);

/// Apply a block reflector (or its transpose) from the left:
/// C := (I - V op(T) V^T) C, with trans selecting op(T) = T or T^T.
/// V is m-by-k unit-lower-trapezoidal; work must hold k * C.cols scalars.
void larfb_left(blas::Trans trans, ConstMatrixView v, ConstMatrixView t,
                MatrixView c, double* work);
void larfb_left(blas::Trans trans, ConstMatrixViewF v, ConstMatrixViewF t,
                MatrixViewF c, float* work);

}  // namespace pulsarqr::lapack
