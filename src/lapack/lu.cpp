#include "lapack/lu.hpp"

#include <algorithm>
#include <cmath>

#include "blas/blas.hpp"

namespace pulsarqr::lapack {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;

void getf2_nopiv(MatrixView a) {
  const int m = a.rows;
  const int n = a.cols;
  const int k = std::min(m, n);
  for (int j = 0; j < k; ++j) {
    const double pivot = a(j, j);
    require(pivot != 0.0, "getf2_nopiv: zero pivot (matrix needs pivoting)");
    for (int i = j + 1; i < m; ++i) a(i, j) /= pivot;
    // Rank-1 update of the trailing block: A22 -= l * u^T, where u is the
    // (strided) remainder of row j — updated column by column.
    for (int c = j + 1; c < n; ++c) {
      const double u = a(j, c);
      if (u != 0.0) blas::axpy(m - j - 1, -u, a.col(j) + j + 1, a.col(c) + j + 1);
    }
  }
}

void getrf_nopiv(MatrixView a, int nb) {
  const int m = a.rows;
  const int n = a.cols;
  const int k = std::min(m, n);
  if (nb >= k) {
    getf2_nopiv(a);
    return;
  }
  for (int j = 0; j < k; j += nb) {
    const int kb = std::min(nb, k - j);
    // Factor the panel.
    getf2_nopiv(a.block(j, j, m - j, kb));
    if (j + kb < n) {
      // U12 := L11^{-1} A12
      blas::trsm(Side::Left, Uplo::Lower, Trans::No, Diag::Unit, 1.0,
                 a.block(j, j, kb, kb), a.block(j, j + kb, kb, n - j - kb));
      if (j + kb < m) {
        // A22 -= L21 U12
        blas::gemm(Trans::No, Trans::No, -1.0,
                   a.block(j + kb, j, m - j - kb, kb),
                   a.block(j, j + kb, kb, n - j - kb), 1.0,
                   a.block(j + kb, j + kb, m - j - kb, n - j - kb));
      }
    }
  }
}

void getrs_nopiv(ConstMatrixView lu, double* b) {
  PQR_ASSERT(lu.rows == lu.cols, "getrs_nopiv: LU must be square");
  blas::trsv(Uplo::Lower, Trans::No, Diag::Unit, lu, b);
  blas::trsv(Uplo::Upper, Trans::No, Diag::NonUnit, lu, b);
}

}  // namespace pulsarqr::lapack
