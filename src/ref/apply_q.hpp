// Apply the orthogonal factor of a tree QR factorization (or its
// transpose) to a block of vectors, replaying the plan's transformations.
// Also provides the tile least-squares driver and explicit Q formation.
#pragma once

#include <vector>

#include "blas/blas.hpp"
#include "ref/reference_qr.hpp"

namespace pulsarqr::ref {

/// B := Q^T B (trans == Yes) or B := Q B (trans == No). B must have the
/// same row count and tile size as the factored matrix.
void apply_q(blas::Trans trans, const TreeQrFactors& f, TileMatrix& b);

/// Form the leading m-by-k columns of Q explicitly (k <= m).
Matrix form_q(const TreeQrFactors& f, int k);

/// Solve min_x ||A x - b|| given the factorization of A (m >= n).
std::vector<double> least_squares(const TreeQrFactors& f,
                                  const std::vector<double>& b);

}  // namespace pulsarqr::ref
