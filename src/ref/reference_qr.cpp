#include "ref/reference_qr.hpp"

#include <algorithm>
#include <utility>

#include "kernels/tile_kernels.hpp"

namespace pulsarqr::ref {

TStore::TStore(int mt, int nt, int ib, int nb, int n)
    : mt_(mt), nt_(nt), ib_(ib), nb_(nb), n_(n) {
  tiles_.resize(static_cast<std::size_t>(mt) * nt);
}

MatrixView TStore::t(int i, int j) {
  PQR_ASSERT(i >= 0 && i < mt_ && j >= 0 && j < nt_, "TStore: out of range");
  const int cols = (j == nt_ - 1) ? n_ - j * nb_ : nb_;
  auto& buf = tiles_[i + static_cast<std::size_t>(j) * mt_];
  if (buf.empty()) buf.assign(static_cast<std::size_t>(ib_) * cols, 0.0);
  return MatrixView(buf.data(), ib_, cols, ib_);
}

ConstMatrixView TStore::t(int i, int j) const {
  PQR_ASSERT(i >= 0 && i < mt_ && j >= 0 && j < nt_, "TStore: out of range");
  const int cols = (j == nt_ - 1) ? n_ - j * nb_ : nb_;
  const auto& buf = tiles_[i + static_cast<std::size_t>(j) * mt_];
  PQR_ASSERT(!buf.empty(), "TStore: reading unwritten T tile");
  return ConstMatrixView(buf.data(), ib_, cols, ib_);
}

void execute_op(const plan::Op& op, TileMatrix& a, TStore& tg, TStore& tt,
                int ib) {
  using plan::OpKind;
  const int pw = a.tile_cols(op.j);  // panel width
  switch (op.kind) {
    case OpKind::Geqrt:
      kernels::geqrt(a.tile(op.i, op.j), ib, tg.t(op.i, op.j));
      break;
    case OpKind::Ormqr:
      kernels::ormqr(blas::Trans::Yes, a.tile(op.i, op.j), tg.t(op.i, op.j),
                     ib, a.tile(op.i, op.l));
      break;
    case OpKind::Tsqrt:
      kernels::tsqrt(a.tile(op.i, op.j).block(0, 0, pw, pw),
                     a.tile(op.k, op.j), ib, tt.t(op.k, op.j));
      break;
    case OpKind::Tsmqr:
      kernels::tsmqr(blas::Trans::Yes, a.tile(op.k, op.j), tt.t(op.k, op.j),
                     ib, a.tile(op.i, op.l), a.tile(op.k, op.l));
      break;
    case OpKind::Ttqrt:
      kernels::ttqrt(a.tile(op.i, op.j).block(0, 0, pw, pw),
                     a.tile(op.k, op.j), ib, tt.t(op.k, op.j));
      break;
    case OpKind::Ttmqr:
      kernels::ttmqr(blas::Trans::Yes, a.tile(op.k, op.j), tt.t(op.k, op.j),
                     ib, a.tile(op.i, op.l), a.tile(op.k, op.l));
      break;
  }
}

TreeQrFactors tree_qr(TileMatrix a, int ib, const plan::PlanConfig& cfg) {
  require(ib >= 1 && ib <= a.nb(), "tree_qr: need 1 <= ib <= nb");
  const int mt = a.mt();
  const int nt = a.nt();
  const int nb = a.nb();
  const int n = a.cols();
  TreeQrFactors f{std::move(a), TStore(mt, nt, ib, nb, n),
                  TStore(mt, nt, ib, nb, n),
                  plan::ReductionPlan(mt, nt, cfg), ib};
  for (const auto& op : f.plan.ops()) {
    execute_op(op, f.a, f.tg, f.tt, ib);
  }
  return f;
}

Matrix extract_r(const TreeQrFactors& f) {
  const int n = f.a.cols();
  Matrix r(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) {
      if (i < f.a.rows()) r(i, j) = f.a.at(i, j);
    }
  }
  return r;
}

}  // namespace pulsarqr::ref
