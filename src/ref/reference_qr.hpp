// Sequential reference executor for a ReductionPlan — the ground truth the
// virtual systolic array is tested against, and the simplest way to use the
// tree QR without the runtime.
#pragma once

#include <vector>

#include "plan/reduction_plan.hpp"
#include "tile/tile_matrix.hpp"

namespace pulsarqr::ref {

/// Storage for the T factors of the block reflectors: one ib-by-(panel
/// width) tile per (tile row, panel) position.
class TStore {
 public:
  TStore() = default;
  TStore(int mt, int nt, int ib, int nb, int n);
  MatrixView t(int i, int j);
  ConstMatrixView t(int i, int j) const;
  int ib() const { return ib_; }

 private:
  int mt_ = 0, nt_ = 0, ib_ = 0, nb_ = 0, n_ = 0;
  std::vector<std::vector<double>> tiles_;
};

/// Output of a tree QR factorization. `a` holds R in the upper triangle of
/// the upper tile rows, flat-tree Householder vectors in the lower parts,
/// and binary-tree (TT) vectors in the upper triangles of eliminated head
/// tiles. `tg` holds geqrt T factors, `tt` holds tsqrt/ttqrt T factors
/// (each tile row is eliminated exactly once, so one slot per row suffices).
struct TreeQrFactors {
  TileMatrix a;
  TStore tg;
  TStore tt;
  plan::ReductionPlan plan;
  int ib = 0;
};

/// Execute one plan op against the factor storage (kernel dispatch shared
/// by the reference executor; the VSA performs the same calls on
/// packet-carried tiles).
void execute_op(const plan::Op& op, TileMatrix& a, TStore& tg, TStore& tt,
                int ib);

/// Factorize a tile matrix with the given tree configuration. The input is
/// consumed (moved into the factor storage).
TreeQrFactors tree_qr(TileMatrix a, int ib, const plan::PlanConfig& cfg);

/// Extract the dense n-by-n upper-triangular R factor.
Matrix extract_r(const TreeQrFactors& f);

}  // namespace pulsarqr::ref
