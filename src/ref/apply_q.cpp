#include "ref/apply_q.hpp"

#include "blas/blas.hpp"
#include "kernels/tile_kernels.hpp"

namespace pulsarqr::ref {

namespace {

// Apply the update corresponding to one factor op to the tiles of B.
void apply_factor_op(blas::Trans trans, const plan::Op& op,
                     const TreeQrFactors& f, TileMatrix& b) {
  using plan::OpKind;
  const TileMatrix& a = f.a;
  const int ib = f.ib;
  for (int l = 0; l < b.nt(); ++l) {
    switch (op.kind) {
      case OpKind::Geqrt:
        kernels::ormqr(trans, a.tile(op.i, op.j), f.tg.t(op.i, op.j), ib,
                       b.tile(op.i, l));
        break;
      case OpKind::Tsqrt:
        kernels::tsmqr(trans, a.tile(op.k, op.j), f.tt.t(op.k, op.j), ib,
                       b.tile(op.i, l), b.tile(op.k, l));
        break;
      case OpKind::Ttqrt:
        kernels::ttmqr(trans, a.tile(op.k, op.j), f.tt.t(op.k, op.j), ib,
                       b.tile(op.i, l), b.tile(op.k, l));
        break;
      default:
        PQR_ASSERT(false, "apply_factor_op: not a factor op");
    }
  }
}

}  // namespace

void apply_q(blas::Trans trans, const TreeQrFactors& f, TileMatrix& b) {
  require(b.rows() == f.a.rows() && b.nb() == f.a.nb(),
          "apply_q: B must match the factored matrix rows and tile size");
  // Q = Q_1 Q_2 ... Q_p in elimination order: Q^T B applies ops forward,
  // Q B applies them backward.
  const auto& ops = f.plan.ops();
  if (trans == blas::Trans::Yes) {
    for (const auto& op : ops) {
      if (plan::is_factor_op(op.kind)) apply_factor_op(trans, op, f, b);
    }
  } else {
    for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
      if (plan::is_factor_op(it->kind)) apply_factor_op(trans, *it, f, b);
    }
  }
}

Matrix form_q(const TreeQrFactors& f, int k) {
  const int m = f.a.rows();
  require(k >= 0 && k <= m, "form_q: bad column count");
  TileMatrix q(m, k, f.a.nb());
  for (int d = 0; d < k; ++d) q.at(d, d) = 1.0;
  apply_q(blas::Trans::No, f, q);
  return q.to_dense();
}

std::vector<double> least_squares(const TreeQrFactors& f,
                                  const std::vector<double>& b) {
  const int m = f.a.rows();
  const int n = f.a.cols();
  require(m >= n, "least_squares: need m >= n");
  require(static_cast<int>(b.size()) == m, "least_squares: rhs length");
  TileMatrix bt(m, 1, f.a.nb());
  for (int i = 0; i < m; ++i) bt.at(i, 0) = b[i];
  apply_q(blas::Trans::Yes, f, bt);
  std::vector<double> x(n);
  for (int i = 0; i < n; ++i) x[i] = bt.at(i, 0);
  Matrix r = extract_r(f);
  blas::trsv(blas::Uplo::Upper, blas::Trans::No, blas::Diag::NonUnit,
             r.view(), x.data());
  return x;
}

}  // namespace pulsarqr::ref
