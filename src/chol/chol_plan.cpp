#include "chol/chol_plan.hpp"

#include "common/error.hpp"

namespace pulsarqr::chol {

CholPlan::CholPlan(int mt) : mt_(mt) {
  require(mt >= 1, "CholPlan: empty tile matrix");
  for (int k = 0; k < mt; ++k) {
    ops_.push_back({OpKind::Potrf, k, -1, -1});
    for (int i = k + 1; i < mt; ++i) {
      ops_.push_back({OpKind::Trsm, k, i, -1});
    }
    for (int j = k + 1; j < mt; ++j) {
      ops_.push_back({OpKind::Syrk, k, -1, j});
      for (int i = j + 1; i < mt; ++i) {
        ops_.push_back({OpKind::Gemm, k, i, j});
      }
    }
  }
}

namespace {
int tile_dim(int n, int nb, int i) {
  const int mt = (n + nb - 1) / nb;
  return i == mt - 1 ? n - i * nb : nb;
}
}  // namespace

double op_flops(const Op& op, int n, int nb) {
  const double b = tile_dim(n, nb, op.k);
  switch (op.kind) {
    case OpKind::Potrf: {
      const double d = tile_dim(n, nb, op.k);
      return d * d * d / 3.0;
    }
    case OpKind::Trsm:
      return static_cast<double>(tile_dim(n, nb, op.i)) * b * b;
    case OpKind::Syrk: {
      const double d = tile_dim(n, nb, op.j);
      return d * d * b;
    }
    case OpKind::Gemm:
      return 2.0 * tile_dim(n, nb, op.i) * tile_dim(n, nb, op.j) * b;
  }
  return 0.0;
}

double plan_flops(const CholPlan& plan, int n, int nb) {
  double total = 0.0;
  for (const auto& op : plan.ops()) total += op_flops(op, n, nb);
  return total;
}

double chol_useful_flops(double n) { return n * n * n / 3.0; }

}  // namespace pulsarqr::chol
