#include "chol/vsa_chol.hpp"

#include <map>
#include <memory>

#include "blas/blas.hpp"
#include "lapack/cholesky.hpp"
#include "vsaqr/codec.hpp"
#include "vsaqr/deposit_log.hpp"

namespace pulsarqr::chol {

namespace {

using prt::Packet;
using prt::Tuple;
using prt::VdpContext;
using vsaqr::encode_tile;
using vsaqr::tile_view;

Tuple p_tuple(int k) { return Tuple{0, k}; }
Tuple s_tuple(int k, int j) { return Tuple{1, k, j}; }

/// Thread-safe store for the finalized L tiles (one writer per tile).
/// The overwrite-copy put is naturally idempotent, so crash-recovery
/// replays of shipped deposits need no extra discipline here.
struct CholStore {
  explicit CholStore(TileMatrix l) : l(std::move(l)) {}
  TileMatrix l;
  vsaqr::TileDepositLog dlog;  ///< socket transport: ships tiles home
  void put(int i, int k, ConstMatrixView tile) {
    blas::lacpy_all(tile, l.tile(i, k));
    dlog.record(i, k);
  }
};

struct PanelCfg {
  int k = 0;
  int mt = 0;
  int chain_out = -1;  ///< L chain to S(k, k+1); -1 on the last step
};

struct PanelState {
  int idx = 0;
  Packet held;  ///< L_kk after the first firing
};

void panel_fire(VdpContext& ctx, const PanelCfg& cfg) {
  auto& st = ctx.local<PanelState>();
  const int idx = st.idx++;
  const int r = cfg.k + idx;
  Packet tile = ctx.pop(0);
  PQR_ASSERT(tile.meta() == r, "vsa-chol: panel VDP received wrong row");
  auto& store = ctx.global<CholStore>();
  if (idx == 0) {
    lapack::potf2(tile_view(tile));
    store.put(cfg.k, cfg.k, tile_view(tile));
    st.held = std::move(tile);
  } else {
    blas::trsm(blas::Side::Right, blas::Uplo::Lower, blas::Trans::Yes,
               blas::Diag::NonUnit, 1.0, tile_view(st.held),
               tile_view(tile));
    store.put(r, cfg.k, tile_view(tile));
    if (cfg.chain_out >= 0) ctx.push(cfg.chain_out, std::move(tile));
  }
}

struct UpdateCfg {
  int k = 0;
  int j = 0;
  int mt = 0;
  int chain_out = -1;  ///< forward the L stream to S(k, j+1)
  int solid_out = -1;  ///< updated tiles to step k+1 (always present)
};

struct UpdateState {
  int idx = 0;
  Packet ljk;  ///< L(j,k), kept when it passes through the chain
};

void update_fire(VdpContext& ctx, const UpdateCfg& cfg) {
  auto& st = ctx.local<UpdateState>();
  const int idx = st.idx++;
  const int i = cfg.k + 1 + idx;  // row of the arriving L tile
  Packet li = ctx.pop(1);
  PQR_ASSERT(li.meta() == i, "vsa-chol: update VDP received wrong L row");
  if (cfg.chain_out >= 0) ctx.push(cfg.chain_out, li);  // by-pass first
  if (i < cfg.j) {
    // Drain-only firing: this L belongs to columns left of ours. Arm the
    // tile stream one firing before we start consuming it, so the firing
    // rule starts waiting for tiles exactly when they are needed.
    if (i == cfg.j - 1) ctx.enable_input(0);
    return;
  }
  if (i == cfg.j) {
    st.ljk = li;  // keep (aliased: the chain only reads)
  }
  Packet tile = ctx.pop(0);
  PQR_ASSERT(tile.meta() == i, "vsa-chol: update VDP received wrong tile");
  // A(i,j) -= L(i,k) * L(j,k)^T ; at i == j this is the syrk step.
  blas::gemm(blas::Trans::No, blas::Trans::Yes, -1.0, tile_view(li),
             tile_view(st.ljk), 1.0, tile_view(tile));
  ctx.push(cfg.solid_out, std::move(tile));
}

class Builder {
 public:
  Builder(const TileMatrix& a, const VsaCholOptions& opt)
      : a_(a), opt_(opt), vsa_(make_config(opt)) {
    require(a.rows() == a.cols(), "vsa_cholesky: matrix must be square");
    store_ = std::make_shared<CholStore>(TileMatrix(a.rows(), a.cols(),
                                                    a.nb()));
    vsa_.set_global(store_);
    if (opt.transport == prt::Transport::Socket) {
      // Each node process fills its own copy-on-write store; the deposit
      // log ships every child's L tiles back for the parent to merge.
      store_->dlog.enable();
      auto store = store_;
      vsa_.set_process_hooks(
          [store] { return store->dlog.serialize(store->l); },
          [store](int, const Packet& blob) {
            vsaqr::TileDepositLog::apply(
                blob, [&store](int i, int j, ConstMatrixView v) {
                  store->put(i, j, v);
                });
          });
    }
    bytes_ = vsaqr::tile_packet_bytes(a.nb(), a.nb());
  }

  void build() {
    const int mt = a_.mt();
    const int threads = opt_.nodes * opt_.workers_per_node;
    int rr = 0;
    for (int k = 0; k < mt; ++k) {
      // Panel VDP.
      auto pcfg = std::make_shared<PanelCfg>();
      pcfg->k = k;
      pcfg->mt = mt;
      const bool has_chain = k + 1 < mt;
      pcfg->chain_out = has_chain ? 0 : -1;
      vsa_.add_vdp(
          p_tuple(k), mt - k,
          [pcfg](VdpContext& ctx) { panel_fire(ctx, *pcfg); }, 1,
          has_chain ? 1 : 0, kCholPanel);
      // The first firing factorizes L_kk and pushes nothing on the chain.
      if (has_chain) vsa_.declare_output_packets(p_tuple(k), 0, mt - k - 1);
      vsa_.map_vdp(p_tuple(k), rr++ % threads);
      ++vdp_count_;
      wire_tiles(p_tuple(k), k, k, /*enabled=*/true);

      // Update VDPs.
      for (int j = k + 1; j < mt; ++j) {
        auto ucfg = std::make_shared<UpdateCfg>();
        ucfg->k = k;
        ucfg->j = j;
        ucfg->mt = mt;
        ucfg->chain_out = j + 1 < mt ? 0 : -1;
        ucfg->solid_out = j + 1 < mt ? 1 : 0;
        vsa_.add_vdp(
            s_tuple(k, j), mt - k - 1,
            [ucfg](VdpContext& ctx) { update_fire(ctx, *ucfg); }, 2,
            (j + 1 < mt ? 2 : 1), kCholUpdate);
        // Drain-only firings (i < j) touch neither the tile stream nor the
        // solid output: both carry mt - j packets, not one per firing.
        vsa_.declare_input_packets(s_tuple(k, j), 0, mt - j);
        vsa_.declare_output_packets(s_tuple(k, j), ucfg->solid_out, mt - j);
        vsa_.map_vdp(s_tuple(k, j), rr++ % threads);
        ++vdp_count_;
        // The tile stream is consumed only from the (j-k)-th firing on;
        // keep it disabled until then so early firings are chain-only.
        wire_tiles(s_tuple(k, j), k, j, /*enabled=*/j == k + 1);
        // Chain: P(k) -> S(k,k+1) -> S(k,k+2) -> ...
        const Tuple src = j == k + 1 ? p_tuple(k) : s_tuple(k, j - 1);
        vsa_.connect(src, 0, s_tuple(k, j), 1, bytes_);
        ++channel_count_;
        // Solid stream to the next step's consumer. The consumer's tile
        // input starts enabled only if it is needed from its first firing
        // (P VDPs always; S VDPs only when they are the first trailing
        // column of their step).
        const Tuple dst = j == k + 1 ? p_tuple(k + 1) : s_tuple(k + 1, j);
        const bool dst_enabled = j <= k + 2;
        vsa_.connect(s_tuple(k, j), ucfg->solid_out, dst, 0, bytes_,
                     dst_enabled);
        ++channel_count_;
      }
    }
  }

  prt::GraphReport lint() {
    build();
    return prt::GraphCheck::check(vsa_);
  }

  VsaCholRun run() {
    build();
    auto stats = vsa_.run();
    VsaCholRun out{std::move(store_->l), stats, {}, vdp_count_,
                   channel_count_};
    if (opt_.trace) out.events = vsa_.recorder().collect();
    return out;
  }

 private:
  static prt::Vsa::Config make_config(const VsaCholOptions& opt) {
    prt::Vsa::Config c;
    c.nodes = opt.nodes;
    c.workers_per_node = opt.workers_per_node;
    c.scheduling = opt.scheduling;
    c.work_stealing = opt.work_stealing;
    c.trace = opt.trace;
    c.watchdog_seconds = opt.watchdog_seconds;
    c.graph_check = opt.graph_check;
    c.transport = opt.transport;
    c.reliable_transport = opt.reliable_transport;
    c.fault_plan = opt.fault_plan;
    c.retransmit_timeout_us = opt.retransmit_timeout_us;
    c.max_retransmits = opt.max_retransmits;
    c.max_respawns = opt.max_respawns;
    c.replay_log_bytes = opt.replay_log_bytes;
    c.heartbeat_timeout_seconds = opt.heartbeat_timeout_seconds;
    return c;
  }

  /// Step-0 consumers are fed the input tiles; later steps are wired by
  /// their producers (see run()).
  void wire_tiles(const Tuple& dst, int k, int j, bool enabled) {
    if (k > 0) {
      // The producing connect() was issued when S(k-1, j) was created;
      // only the enable state matters here and is set on that edge.
      return;
    }
    std::vector<Packet> initial;
    for (int i = j; i < a_.mt(); ++i) {
      initial.push_back(encode_tile(a_.tile(i, j), i));
    }
    vsa_.feed(dst, 0, bytes_, std::move(initial), enabled);
    ++channel_count_;
  }

  const TileMatrix& a_;
  VsaCholOptions opt_;
  prt::Vsa vsa_;
  std::shared_ptr<CholStore> store_;
  std::size_t bytes_ = 0;
  int vdp_count_ = 0;
  int channel_count_ = 0;
};

}  // namespace

VsaCholRun vsa_cholesky(const TileMatrix& a, const VsaCholOptions& opt) {
  Builder b(a, opt);
  return b.run();
}

prt::GraphReport lint_vsa_cholesky(const TileMatrix& a,
                                   const VsaCholOptions& opt) {
  Builder b(a, opt);
  return b.lint();
}

}  // namespace pulsarqr::chol
