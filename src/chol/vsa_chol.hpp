// Tile Cholesky mapped onto the PULSAR runtime — the paper's stated
// follow-up work ("to map other algorithms onto PULSAR"), built with the
// same streaming idioms as the QR array:
//
//   * one Panel VDP P(k) per step: first tile -> potrf (L_kk held),
//     further tiles -> trsm against the held L_kk; every produced L tile
//     is broadcast rightward through a by-passing chain;
//   * one Update VDP S(k,j) per trailing column: consumes the L chain in
//     row order, keeps L_jk when it passes, pairs every L_ik (i >= j)
//     with the streamed tile A(i,j) (syrk at i == j, gemm after) and
//     forwards the updated tile to step k+1;
//   * tile-stream channels start disabled on VDPs that first need to
//     drain the chain (j > k+1) and are enabled on the fly, mirroring the
//     QR array's dynamic channel control.
//
// Finalized L tiles exit into a shared result store; the output is
// bitwise identical to chol::tile_cholesky.
#pragma once

#include "chol/reference_chol.hpp"
#include "prt/graph_check.hpp"
#include "prt/vsa.hpp"

namespace pulsarqr::chol {

struct VsaCholOptions {
  int nodes = 1;
  int workers_per_node = 2;
  prt::Scheduling scheduling = prt::Scheduling::Lazy;
  bool work_stealing = false;
  bool trace = false;
  double watchdog_seconds = 60.0;
  /// Statically verify the constructed array with prt::GraphCheck before
  /// executing it (see prt::Vsa::Config::graph_check).
  bool graph_check = true;
  /// Transport backend (see prt::Transport). Socket mode ships final L
  /// tiles back to the parent through a TileDepositLog.
  prt::Transport transport = prt::Transport::InProcess;
  /// Reliable-delivery protocol + tuning (see prt::Vsa::Config).
  bool reliable_transport = false;
  prt::net::FaultPlan fault_plan;
  int retransmit_timeout_us = 2000;
  int max_retransmits = 10;
  /// Crash recovery over the Socket transport (see
  /// prt::Vsa::Config::max_respawns / replay_log_bytes /
  /// heartbeat_timeout_seconds).
  int max_respawns = 0;
  std::size_t replay_log_bytes = 64 * 1024 * 1024;
  double heartbeat_timeout_seconds = 10.0;
};

struct VsaCholRun {
  TileMatrix l;  ///< lower triangle holds the factor
  prt::Vsa::RunStats stats;
  std::vector<prt::trace::Event> events;
  int vdp_count = 0;
  int channel_count = 0;
};

/// Factorize an SPD tile matrix on the systolic array. Only the lower
/// triangle of `a` is read.
VsaCholRun vsa_cholesky(const TileMatrix& a, const VsaCholOptions& opt);

/// Build the Cholesky array for `a` and statically verify it with
/// prt::GraphCheck, without executing it (see the vsa_lint tool).
prt::GraphReport lint_vsa_cholesky(const TileMatrix& a,
                                   const VsaCholOptions& opt);

enum CholTraceColor { kCholPanel = 0, kCholUpdate = 1 };

}  // namespace pulsarqr::chol
