// Tile Cholesky plan — the op-stream single source of truth for the
// PULSAR-mapped Cholesky (the paper's stated follow-up: "map other
// algorithms onto PULSAR"). Right-looking tile algorithm on the lower
// triangle:
//   for k:  POTRF(k,k);  TRSM(i,k) for i>k;
//           SYRK(j,j,k) and GEMM(i,j,k) for k<j<=i.
#pragma once

#include <cstdint>
#include <vector>

namespace pulsarqr::chol {

enum class OpKind : std::uint8_t {
  Potrf,  ///< factor diagonal tile (k, k)
  Trsm,   ///< L(i,k) := A(i,k) L(k,k)^{-T}
  Syrk,   ///< A(j,j) -= L(j,k) L(j,k)^T
  Gemm,   ///< A(i,j) -= L(i,k) L(j,k)^T, i > j
};

/// One kernel invocation; unused fields are -1.
///   Potrf: (k)    Trsm: (i, k)    Syrk: (j, k)    Gemm: (i, j, k)
struct Op {
  OpKind kind;
  int k;
  int i;  ///< row (Trsm/Gemm)
  int j;  ///< updated column (Syrk/Gemm)
};

class CholPlan {
 public:
  explicit CholPlan(int mt);

  int mt() const { return mt_; }
  const std::vector<Op>& ops() const { return ops_; }

 private:
  int mt_;
  std::vector<Op> ops_;
};

/// Flop counts (lower-triangular kernels, tile size nb; diagonal blocks
/// counted as triangular work).
double op_flops(const Op& op, int n, int nb);
double plan_flops(const CholPlan& plan, int n, int nb);
/// Classical Cholesky useful flops: n^3 / 3.
double chol_useful_flops(double n);

}  // namespace pulsarqr::chol
