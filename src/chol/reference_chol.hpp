// Sequential reference executor for the tile Cholesky plan, plus the SPD
// solve driver. Ground truth for the systolic-array Cholesky.
#pragma once

#include <vector>

#include "chol/chol_plan.hpp"
#include "tile/tile_matrix.hpp"

namespace pulsarqr::chol {

/// Execute one plan op against the tile matrix (lower triangle holds the
/// data; the strict upper tiles are ignored and left untouched).
void execute_op(const Op& op, TileMatrix& a);

/// Factorize an SPD tile matrix in place (lower triangle becomes L).
/// The matrix must be square with square tiles.
TileMatrix tile_cholesky(TileMatrix a);

/// Extract the dense lower-triangular factor.
Matrix extract_l(const TileMatrix& l);

/// Solve A x = b given the tile factor from tile_cholesky.
std::vector<double> chol_solve(const TileMatrix& l, std::vector<double> b);

/// Build a well-conditioned random SPD matrix (M M^T + n I).
Matrix random_spd(int n, std::uint64_t seed);

}  // namespace pulsarqr::chol
