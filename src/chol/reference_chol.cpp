#include "chol/reference_chol.hpp"

#include <utility>

#include "blas/blas.hpp"
#include "common/rng.hpp"
#include "lapack/cholesky.hpp"

namespace pulsarqr::chol {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;

void execute_op(const Op& op, TileMatrix& a) {
  switch (op.kind) {
    case OpKind::Potrf:
      lapack::potf2(a.tile(op.k, op.k));
      break;
    case OpKind::Trsm:
      blas::trsm(Side::Right, Uplo::Lower, Trans::Yes, Diag::NonUnit, 1.0,
                 a.tile(op.k, op.k), a.tile(op.i, op.k));
      break;
    case OpKind::Syrk:
      blas::gemm(Trans::No, Trans::Yes, -1.0, a.tile(op.j, op.k),
                 a.tile(op.j, op.k), 1.0, a.tile(op.j, op.j));
      break;
    case OpKind::Gemm:
      blas::gemm(Trans::No, Trans::Yes, -1.0, a.tile(op.i, op.k),
                 a.tile(op.j, op.k), 1.0, a.tile(op.i, op.j));
      break;
  }
}

TileMatrix tile_cholesky(TileMatrix a) {
  require(a.rows() == a.cols(), "tile_cholesky: matrix must be square");
  CholPlan plan(a.mt());
  for (const auto& op : plan.ops()) execute_op(op, a);
  return a;
}

Matrix extract_l(const TileMatrix& l) {
  const int n = l.rows();
  Matrix out(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) out(i, j) = l.at(i, j);
  }
  return out;
}

std::vector<double> chol_solve(const TileMatrix& l, std::vector<double> b) {
  require(static_cast<int>(b.size()) == l.rows(),
          "chol_solve: rhs length mismatch");
  Matrix ld = extract_l(l);
  lapack::potrs(ld.view(), b.data());
  return b;
}

Matrix random_spd(int n, std::uint64_t seed) {
  Matrix m(n, n);
  fill_random(m.view(), seed);
  Matrix a(n, n);
  blas::gemm(Trans::No, Trans::Yes, 1.0, m.view(), m.view(), 0.0, a.view());
  for (int i = 0; i < n; ++i) a(i, i) += n;
  return a;
}

}  // namespace pulsarqr::chol
