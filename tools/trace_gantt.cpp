// trace_gantt — render a trace CSV (written by `pqr factor --trace` or
// the fig07 harness) as an ASCII Gantt chart plus summary statistics.
//
//   trace_gantt <trace.csv> [width] [overlap_color]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "prt/trace.hpp"

using namespace pulsarqr;

namespace {

// Parse one CSV row: thread,color,"(t,u,p,l,e)",t0,t1
bool parse_row(const std::string& line, prt::trace::Event& ev) {
  std::istringstream ss(line);
  std::string field;
  if (!std::getline(ss, field, ',')) return false;
  ev.thread = std::atoi(field.c_str());
  if (!std::getline(ss, field, ',')) return false;
  ev.color = std::atoi(field.c_str());
  // Quoted tuple field (may contain commas).
  if (ss.peek() == '"') {
    ss.get();
    std::getline(ss, field, '"');
    ss.get();  // trailing comma
    std::vector<int> vals;
    std::istringstream ts(field.substr(1, field.size() - 2));
    std::string v;
    while (std::getline(ts, v, ',')) vals.push_back(std::atoi(v.c_str()));
    ev.tuple = prt::Tuple(std::move(vals));
  } else {
    std::getline(ss, field, ',');
  }
  if (!std::getline(ss, field, ',')) return false;
  ev.t0 = std::atof(field.c_str());
  if (!std::getline(ss, field, ',')) return false;
  ev.t1 = std::atof(field.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_gantt <trace.csv> [width] "
                         "[overlap_color]\n");
    return 2;
  }
  const int width = argc > 2 ? std::atoi(argv[2]) : 120;
  const int overlap_color = argc > 3 ? std::atoi(argv[3]) : 2;

  std::ifstream is(argv[1]);
  if (!is) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  std::string line;
  std::getline(is, line);  // header
  std::vector<prt::trace::Event> events;
  int max_thread = 0;
  while (std::getline(is, line)) {
    prt::trace::Event ev;
    if (parse_row(line, ev)) {
      max_thread = std::max(max_thread, ev.thread);
      events.push_back(std::move(ev));
    }
  }
  if (events.empty()) {
    std::fprintf(stderr, "no events in %s\n", argv[1]);
    return 1;
  }
  const int threads = max_thread + 1;
  prt::trace::write_ascii_gantt(std::cout, events, threads, width,
                                {"flat-factor", "update", "binary"});
  const auto stats =
      prt::trace::compute_stats(events, threads, overlap_color);
  std::printf("\n%zu firings on %d threads | span %.4f s | busy %.4f s | "
              "utilization %.1f%% | overlap(color %d) %.1f%%\n",
              events.size(), threads, stats.span, stats.busy,
              stats.utilization * 100, overlap_color,
              stats.overlap_fraction * 100);
  for (std::size_t c = 0; c < stats.busy_by_color.size(); ++c) {
    std::printf("  color %zu busy: %.4f s\n", c, stats.busy_by_color[c]);
  }
  return 0;
}
