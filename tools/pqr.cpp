// pqr — command-line driver for the pulsarqr library.
//
//   pqr factor   --m 4096 --n 512 [--nb 128 --ib 32 --tree hier --h 6
//                 --boundary shifted --nodes 2 --workers 2 --sched lazy
//                 --trace trace.csv --check --seed 1 --graph-check 0
//                 --channel spsc|mutex --spin-us -1|0|50 --gemm packed|ref
//                 --chaos-seed 42 --drop 0.05 --dup 0.05 --reorder 0.1
//                 --delay 0.1 --delay-us 200 --reliable
//                 --rto-us 2000 --max-retransmits 10
//                 --coalesce-bytes 65536 --flush-us 50 --no-packet-pool
//                 --transport inproc|socket
//                 --max-respawns 0 --replay-log-mb 64 --hb-timeout 10
//                 --kill-node -1 --kill-after 0
//                 --kernel-isa auto|avx512|avx2|neon|scalar]
//
// The chaos flags install a deterministic FaultPlan on the inter-node
// transport (same seed => same fault schedule); --reliable layers the
// ack/retransmit protocol on top so the run still completes correctly.
// Under --transport socket, --kill-node R --kill-after F SIGKILLs rank R's
// node process after F firings and --max-respawns N lets the run absorb up
// to N such deaths by respawning (requires --reliable).
//   pqr batch    --batch 1024 --m 64 --n 16 [--ib 32 --nodes 1 --workers 2
//                 --chunk 0 --f32 --seed 1 --check --graph-check 0
//                 --kernel-isa ...]
//
// `batch` factors N independent small matrices through ONE fused VSA plan
// (see src/vsaqr/qr_batch.hpp) and reports jobs/sec plus per-matrix latency
// percentiles; --check verifies each result is bitwise identical to a
// sequential geqrt loop.
//   pqr solve    --m 4096 --n 512 [--nrhs 1 ...]
//   pqr chol     --n 1024 [--nb 128 --nodes 2 --workers 2
//                 --transport inproc|socket --reliable ...]
//   pqr lu       --n 1024 [--nb 128 --nodes 2 --workers 2
//                 --transport inproc|socket --reliable ...]
//   pqr simulate --m 368640 --n 4608 [--nb 192 --ib 48 --tree hier --h 6
//                 --nodes 768]
//
// `factor`, `solve`, `chol` and `lu` run the real PULSAR runtime on this
// host; `simulate` replays a task graph on the Kraken machine model.

// GCC 12's -Wrestrict emits a known false positive on inlined std::string
// copies under -O3 (GCC PR105651); the flag-map code trips it.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "blas/blas.hpp"
#include "blas/simd.hpp"
#include "chol/vsa_chol.hpp"
#include "kernels/tile_kernels.hpp"
#include "vsaqr/qr_batch.hpp"
#include "common/rng.hpp"
#include "lu/vsa_lu.hpp"
#include "lapack/solve.hpp"
#include "prt/packet_pool.hpp"
#include "ref/apply_q.hpp"
#include "sim/chol_sim.hpp"
#include "sim/lu_sim.hpp"
#include "sim/scalapack_model.hpp"
#include "sim/simulator.hpp"
#include "vsaqr/tree_qr.hpp"

using namespace pulsarqr;

namespace {

struct Args {
  std::map<std::string, std::string> kv;

  bool has(const std::string& k) const { return kv.count(k) > 0; }
  int geti(const std::string& k, int dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : std::atoi(it->second.c_str());
  }
  std::string gets(const std::string& k, const std::string& dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
  double getd(const std::string& k, double dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : std::atof(it->second.c_str());
  }
};

Args parse(int argc, char** argv, int first) {
  Args a;
  for (int i = first; i < argc; ++i) {
    const char* arg = argv[i];
    if (arg[0] != '-' || arg[1] != '-') {
      std::fprintf(stderr, "unexpected argument: %s\n", arg);
      std::exit(2);
    }
    const std::string key(arg + 2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      a.kv[key] = argv[++i];
    } else {
      a.kv[key] = "1";  // boolean flag
    }
  }
  return a;
}

plan::PlanConfig tree_config(const Args& a) {
  plan::PlanConfig cfg;
  const std::string tree = a.gets("tree", "hier");
  if (tree == "flat") {
    cfg.tree = plan::TreeKind::Flat;
  } else if (tree == "binary") {
    cfg.tree = plan::TreeKind::Binary;
  } else if (tree == "hier" || tree == "binary-on-flat") {
    cfg.tree = plan::TreeKind::BinaryOnFlat;
  } else {
    std::fprintf(stderr, "unknown --tree %s (flat|binary|hier)\n",
                 tree.c_str());
    std::exit(2);
  }
  cfg.domain_size = a.geti("h", 6);
  const std::string bm = a.gets("boundary", "shifted");
  cfg.boundary = bm == "fixed" ? plan::BoundaryMode::Fixed
                               : plan::BoundaryMode::Shifted;
  return cfg;
}

/// Transport / chaos / reliability / crash-recovery flags, shared by the
/// factor, solve, chol and lu commands (their option structs carry
/// identically-named fields).
template <class Opt>
void transport_options(Opt& opt, const Args& a) {
  // Transport backend: in-process mailbox threads (default) or one forked
  // OS process per node over Unix-domain sockets.
  const std::string transport = a.gets("transport", "inproc");
  if (transport == "socket") {
    opt.transport = prt::Transport::Socket;
  } else if (transport != "inproc") {
    std::fprintf(stderr, "unknown --transport %s (inproc|socket)\n",
                 transport.c_str());
    std::exit(2);
  }
  // Chaos engineering: a seeded deterministic fault schedule plus the
  // reliable-delivery protocol that tolerates it.
  opt.fault_plan.seed = static_cast<std::uint64_t>(a.geti("chaos-seed", 0));
  opt.fault_plan.drop = a.getd("drop", 0.0);
  opt.fault_plan.dup = a.getd("dup", 0.0);
  opt.fault_plan.delay = a.getd("delay", 0.0);
  opt.fault_plan.reorder = a.getd("reorder", 0.0);
  opt.fault_plan.delay_us = a.geti("delay-us", opt.fault_plan.delay_us);
  // Process-level fault + the recovery budget that absorbs it.
  opt.fault_plan.kill_rank = a.geti("kill-node", opt.fault_plan.kill_rank);
  opt.fault_plan.kill_after = a.geti("kill-after", 0);
  opt.reliable_transport = a.geti("reliable", 0) != 0;
  opt.retransmit_timeout_us = a.geti("rto-us", opt.retransmit_timeout_us);
  opt.max_retransmits = a.geti("max-retransmits", opt.max_retransmits);
  opt.max_respawns = a.geti("max-respawns", opt.max_respawns);
  opt.replay_log_bytes = static_cast<std::size_t>(a.geti(
                             "replay-log-mb",
                             static_cast<int>(opt.replay_log_bytes >> 20)))
                         << 20;
  opt.heartbeat_timeout_seconds =
      a.getd("hb-timeout", opt.heartbeat_timeout_seconds);
  if (opt.fault_plan.any() && !opt.reliable_transport) {
    std::fprintf(stderr,
                 "warning: fault injection without --reliable; expect a "
                 "watchdog RunError on lossy schedules\n");
  }
}

/// One line of crash-recovery accounting, printed when recovery was armed
/// or actually exercised.
void print_recovery(const prt::Vsa::RunStats& stats, int max_respawns) {
  if (max_respawns <= 0 && stats.respawns == 0) return;
  std::printf("recovery: respawns=%lld replayed_frames=%lld "
              "refired_fires=%lld\n",
              stats.respawns, stats.replayed_frames, stats.refired_fires);
}

vsaqr::TreeQrOptions qr_options(const Args& a) {
  vsaqr::TreeQrOptions opt;
  opt.tree = tree_config(a);
  opt.ib = a.geti("ib", 32);
  opt.nodes = a.geti("nodes", 1);
  opt.workers_per_node = a.geti("workers", 2);
  opt.scheduling = a.gets("sched", "lazy") == "aggressive"
                       ? prt::Scheduling::Aggressive
                       : prt::Scheduling::Lazy;
  opt.trace = a.has("trace");
  opt.graph_check = a.geti("graph-check", 1) != 0;
  opt.channel_impl = a.gets("channel", "spsc") == "mutex"
                         ? prt::ChannelImpl::Mutex
                         : prt::ChannelImpl::Spsc;
  opt.spin_us = a.geti("spin-us", opt.spin_us);
  transport_options(opt, a);
  // Egress coalescing (--coalesce-bytes 0 turns it off).
  opt.coalesce_bytes = static_cast<std::size_t>(
      a.geti("coalesce-bytes", static_cast<int>(opt.coalesce_bytes)));
  opt.coalesce_flush_us = a.geti("flush-us", opt.coalesce_flush_us);
  return opt;
}

int cmd_factor(const Args& a) {
  const int m = a.geti("m", 4096);
  const int n = a.geti("n", 512);
  const int nb = a.geti("nb", 128);
  Matrix a0(m, n);
  fill_random(a0.view(), a.geti("seed", 1));
  TileMatrix tiled = TileMatrix::from_dense(a0.view(), nb);
  auto opt = qr_options(a);
  auto run = vsaqr::tree_qr(tiled, opt);
  std::printf("factor %dx%d nb=%d ib=%d tree=%s kernels=%s/f64: %.3fs wall, "
              "%lld firings, %d VDPs, %d channels, %lld inter-node msgs "
              "(%.1f MB)\n",
              m, n, nb, opt.ib, a.gets("tree", "hier").c_str(),
              blas::simd::isa_name(blas::simd::active_isa()),
              run.stats.seconds, run.stats.fires, run.vdp_count,
              run.channel_count, run.stats.remote_messages,
              run.stats.remote_bytes / 1e6);
  if (run.stats.remote_messages > 0) {
    std::printf("datapath: wire_msgs=%lld (%.1f MB) coalesced=%lld in %lld "
                "aggregates | pool hits=%lld misses=%lld\n",
                run.stats.wire_messages, run.stats.wire_bytes / 1e6,
                run.stats.coalesced_frames, run.stats.aggregates_sent,
                run.stats.pool_hits, run.stats.pool_misses);
  }
  if (opt.fault_plan.any() || opt.reliable_transport) {
    std::printf("transport: dropped=%lld duplicated=%lld delayed=%lld "
                "reordered=%lld streams=%lld | retransmits=%lld "
                "dups_suppressed=%lld acks=%lld\n",
                run.stats.faults.dropped, run.stats.faults.duplicated,
                run.stats.faults.delayed, run.stats.faults.reordered,
                run.stats.fault_streams, run.stats.retransmits,
                run.stats.duplicates_suppressed, run.stats.acks_sent);
  }
  print_recovery(run.stats, opt.max_respawns);
  if (a.has("trace")) {
    std::ofstream os(a.gets("trace", "trace.csv"));
    prt::trace::write_csv(os, run.events);
    std::printf("trace written to %s (%zu events)\n",
                a.gets("trace", "trace.csv").c_str(), run.events.size());
  }
  if (a.has("check")) {
    TileMatrix b = TileMatrix::from_dense(a0.view(), nb);
    ref::apply_q(blas::Trans::Yes, run.factors, b);
    double below = 0.0;
    Matrix qta = b.to_dense();
    for (int j = 0; j < n; ++j) {
      for (int i = j + 1; i < m; ++i) {
        below = std::max(below, std::abs(qta(i, j)));
      }
    }
    std::printf("check: max |(Q^T A)_below-diagonal| = %.3e\n", below);
    if (below > 1e-9 * m) return 1;
  }
  return 0;
}

/// Nearest-rank percentile of an already-sorted latency vector, in
/// microseconds.
double pct_us(const std::vector<double>& sorted, int p) {
  const std::size_t n = sorted.size();
  const std::size_t rank =
      std::max<std::size_t>(1, (n * p + 99) / 100);  // ceil(p/100 * n)
  return sorted[std::min(rank, n) - 1] * 1e6;
}

template <class T>
int run_batch(const Args& a, const char* prec) {
  const int batch = a.geti("batch", 1024);
  const int m = a.geti("m", 64);
  const int n = a.geti("n", 16);
  const int k = std::min(m, n);
  if (batch < 1 || k < 1) {
    std::fprintf(stderr, "batch: need --batch >= 1 and --m, --n >= 1\n");
    return 2;
  }
  vsaqr::BatchOptions opt;
  opt.ib = a.geti("ib", 32);
  opt.nodes = a.geti("nodes", 1);
  opt.workers_per_node = a.geti("workers", 2);
  opt.chunk = a.geti("chunk", 0);
  opt.graph_check = a.geti("graph-check", 1) != 0;
  opt.record_latency = true;

  std::vector<MatrixT<T>> mats, tfac;
  std::vector<MatrixViewT<T>> av, tv;
  mats.reserve(batch);
  tfac.reserve(batch);
  Rng rng(static_cast<std::uint64_t>(a.geti("seed", 1)));
  for (int i = 0; i < batch; ++i) {
    mats.emplace_back(m, n);
    tfac.emplace_back(std::min(opt.ib, k), k);
    MatrixT<T>& mat = mats.back();
    for (int j = 0; j < n; ++j) {
      for (int r = 0; r < m; ++r) mat(r, j) = static_cast<T>(rng.next_symmetric());
    }
  }
  std::vector<MatrixT<T>> ref_a, ref_t;
  if (a.has("check")) {
    ref_a = mats;
    ref_t = tfac;
  }
  for (int i = 0; i < batch; ++i) {
    av.push_back(mats[i].view());
    tv.push_back(tfac[i].view());
  }

  const auto run = vsaqr::qr_batch(std::span<const MatrixViewT<T>>(av),
                                   std::span<const MatrixViewT<T>>(tv), opt);
  std::vector<double> lat = run.matrix_seconds;
  std::sort(lat.begin(), lat.end());
  std::printf("batch %d of %dx%d ib=%d kernels=%s/%s: %.3fs wall, "
              "%.0f jobs/s, p50=%.2fus p99=%.2fus, %lld firings, %d VDPs, "
              "%lld chunks\n",
              batch, m, n, opt.ib,
              blas::simd::isa_name(blas::simd::active_isa()), prec,
              run.stats.seconds, batch / run.stats.seconds, pct_us(lat, 50),
              pct_us(lat, 99), run.stats.fires, run.vdp_count, run.chunks);
  if (a.has("check")) {
    kernels::Workspace ws;
    long long mismatches = 0;
    for (int i = 0; i < batch; ++i) {
      kernels::geqrt(ref_a[i].view(), opt.ib, ref_t[i].view(), ws);
      const bool ok =
          std::memcmp(mats[i].data(), ref_a[i].data(),
                      sizeof(T) * static_cast<std::size_t>(m) * n) == 0 &&
          std::memcmp(tfac[i].data(), ref_t[i].data(),
                      sizeof(T) * static_cast<std::size_t>(ref_t[i].rows()) *
                          ref_t[i].cols()) == 0;
      if (!ok) ++mismatches;
    }
    std::printf("check: %lld of %d matrices differ from sequential geqrt "
                "(bitwise)\n",
                mismatches, batch);
    if (mismatches > 0) return 1;
  }
  return 0;
}

int cmd_batch(const Args& a) {
  return a.geti("f32", 0) != 0 ? run_batch<float>(a, "f32")
                               : run_batch<double>(a, "f64");
}

int cmd_solve(const Args& a) {
  const int m = a.geti("m", 4096);
  const int n = a.geti("n", 512);
  const int nb = a.geti("nb", 128);
  const int nrhs = a.geti("nrhs", 1);
  Matrix a0(m, n);
  fill_random_well_conditioned(a0.view(), a.geti("seed", 1));
  Matrix b(m, nrhs);
  fill_random(b.view(), a.geti("seed", 1) + 1);
  TileMatrix tiled = TileMatrix::from_dense(a0.view(), nb);
  Matrix x = vsaqr::tree_qr_solve(tiled, b.view(), qr_options(a));
  // Report residual orthogonality per rhs.
  double worst = 0.0;
  for (int r = 0; r < nrhs; ++r) {
    std::vector<double> rhs(m), xr(n);
    for (int i = 0; i < m; ++i) rhs[i] = b(i, r);
    for (int i = 0; i < n; ++i) xr[i] = x(i, r);
    std::vector<double> res = rhs;
    blas::gemv(blas::Trans::No, -1.0, a0.view(), xr.data(), 1.0, res.data());
    std::vector<double> atr(n, 0.0);
    blas::gemv(blas::Trans::Yes, 1.0, a0.view(), res.data(), 0.0, atr.data());
    worst = std::max(worst, blas::nrm2(n, atr.data()));
  }
  std::printf("solve %dx%d, %d rhs: done; max ||A^T (b - A x)|| = %.3e\n", m,
              n, nrhs, worst);
  return worst < 1e-7 * m ? 0 : 1;
}

int cmd_chol(const Args& a) {
  const int n = a.geti("n", 1024);
  const int nb = a.geti("nb", 128);
  Matrix spd = chol::random_spd(n, a.geti("seed", 1));
  chol::VsaCholOptions opt;
  opt.nodes = a.geti("nodes", 1);
  opt.workers_per_node = a.geti("workers", 2);
  opt.graph_check = a.geti("graph-check", 1) != 0;
  transport_options(opt, a);
  auto run = chol::vsa_cholesky(TileMatrix::from_dense(spd.view(), nb), opt);
  print_recovery(run.stats, opt.max_respawns);
  Matrix l = chol::extract_l(run.l);
  Matrix llt(n, n);
  blas::gemm(blas::Trans::No, blas::Trans::Yes, 1.0, l.view(), l.view(), 0.0,
             llt.view());
  double err = 0.0;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      err = std::max(err, std::abs(llt(i, j) - spd(i, j)));
    }
  }
  std::printf("cholesky %dx%d nb=%d: %.3fs wall, %lld firings, "
              "||LL^T - A||_max / ||A||_max = %.3e\n",
              n, n, nb, run.stats.seconds, run.stats.fires,
              err / blas::norm_max(spd.view()));
  return err / blas::norm_max(spd.view()) < 1e-10 * n ? 0 : 1;
}

int cmd_lu(const Args& a) {
  const int n = a.geti("n", 1024);
  const int nb = a.geti("nb", 128);
  Matrix m = lu::random_diag_dominant(n, n, a.geti("seed", 1));
  lu::VsaLuOptions opt;
  opt.nodes = a.geti("nodes", 1);
  opt.workers_per_node = a.geti("workers", 2);
  opt.graph_check = a.geti("graph-check", 1) != 0;
  transport_options(opt, a);
  auto run = lu::vsa_lu(TileMatrix::from_dense(m.view(), nb), opt);
  print_recovery(run.stats, opt.max_respawns);
  // Verify by solving a planted system through the factors.
  Rng rng(a.geti("seed", 1) + 7);
  std::vector<double> xtrue(n);
  for (auto& v : xtrue) v = rng.next_symmetric();
  std::vector<double> b(n, 0.0);
  blas::gemv(blas::Trans::No, 1.0, m.view(), xtrue.data(), 0.0, b.data());
  const auto x = lu::lu_solve(run.f, b);
  double err = 0.0;
  for (int i = 0; i < n; ++i) err = std::max(err, std::abs(x[i] - xtrue[i]));
  std::printf("lu %dx%d nb=%d: %.3fs wall, %lld firings, planted-solution "
              "max error %.3e\n",
              n, n, nb, run.stats.seconds, run.stats.fires, err);
  return err < 1e-9 * n ? 0 : 1;
}

int cmd_simulate(const Args& a) {
  const int m = a.geti("m", 368640);
  const int n = a.geti("n", 4608);
  const int nb = a.geti("nb", 192);
  const int nodes = a.geti("nodes", 768);
  const std::string algo = a.gets("algo", "qr");
  const sim::MachineModel mm = sim::MachineModel::kraken();
  sim::SimResult r;
  if (algo == "qr") {
    r = sim::simulate_tree_qr(m, n, nb, a.geti("ib", 48), tree_config(a), mm,
                              nodes);
  } else if (algo == "chol") {
    r = sim::simulate_cholesky(n, nb, mm, nodes);
  } else if (algo == "lu") {
    r = sim::simulate_lu(m, n, nb, mm, nodes);
  } else {
    std::fprintf(stderr, "unknown --algo %s (qr|chol|lu)\n", algo.c_str());
    return 2;
  }
  std::printf("simulate %s %dx%d nb=%d on %d nodes (%d cores, kraken "
              "model):\n",
              algo.c_str(), algo == "chol" ? n : m, n, nb, nodes,
              nodes * mm.cores_per_node);
  std::printf("  makespan %.3f s | useful %.0f Gflop/s | actual %.0f "
              "Gflop/s | utilization %.1f%% | %lld tasks\n",
              r.seconds, r.useful_gflops, r.actual_gflops,
              r.busy_fraction * 100, r.tasks);
  if (algo == "qr") {
    const auto s = sim::scalapack_qr_model(m, n, 64, mm,
                                           nodes * mm.cores_per_node);
    std::printf("  ScaLAPACK model: %.3f s (%.2fx slower)\n", s.seconds,
                s.seconds / r.seconds);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: pqr <factor|batch|solve|chol|lu|simulate> "
                 "[--key ...]\n"
                 "see the header of tools/pqr.cpp for the full flag list\n");
    return 2;
  }
  // Plain C-string dispatch (a GCC 12 -Wrestrict false positive fires on
  // the equivalent std::string comparisons under -O3).
  const char* cmd = argv[1];
  const Args a = parse(argc, argv, 2);
  // Process-wide compute-kernel A/B switch, the analogue of --channel for
  // the runtime: every command funnels its flops through blas::gemm.
  const std::string gemm = a.gets("gemm", "packed");
  if (gemm == "ref") {
    blas::set_gemm_impl(blas::GemmImpl::Ref);
  } else if (gemm == "packed") {
    blas::set_gemm_impl(blas::GemmImpl::Packed);
  } else {
    std::fprintf(stderr, "unknown --gemm %s (packed|ref)\n", gemm.c_str());
    return 2;
  }
  // Kernel ISA selection. Unlike the PQR_KERNEL_ISA env override (which
  // warns and falls back), the CLI rejects bad or unsupported values.
  const std::string isa_arg = a.gets("kernel-isa", "");
  if (!isa_arg.empty()) {
    blas::simd::Isa isa;
    if (!blas::simd::parse_isa(isa_arg, &isa)) {
      std::fprintf(stderr,
                   "unknown --kernel-isa %s (auto|avx512|avx2|neon|scalar)\n",
                   isa_arg.c_str());
      return 2;
    }
    if (!blas::simd::set_isa(isa)) {
      std::fprintf(stderr,
                   "--kernel-isa %s is not usable here (compiled in: %s; "
                   "detected best: %s)\n",
                   isa_arg.c_str(),
                   blas::simd::isa_compiled(isa) ? "yes" : "no",
                   blas::simd::isa_name(blas::simd::detect_isa()));
      return 2;
    }
  }
  // Process-wide packet-buffer recycling A/B switch (on by default).
  if (a.geti("no-packet-pool", 0) != 0) {
    prt::PacketPool::set_enabled(false);
  }
  try {
    if (std::strcmp(cmd, "factor") == 0) return cmd_factor(a);
    if (std::strcmp(cmd, "batch") == 0) return cmd_batch(a);
    if (std::strcmp(cmd, "solve") == 0) return cmd_solve(a);
    if (std::strcmp(cmd, "chol") == 0) return cmd_chol(a);
    if (std::strcmp(cmd, "lu") == 0) return cmd_lu(a);
    if (std::strcmp(cmd, "simulate") == 0) return cmd_simulate(a);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd);
  return 2;
}
