// vsa_lint — static verification of VSA plans and the transport protocol.
//
// Subcommand `lint` (the default) builds the requested systolic array
// (QR, Cholesky, LU, or all three) for a given tile shape and runs
// prt::GraphCheck over the constructed graph: wiring, packet balance,
// enabled-channel cycles, feed capacity, flow/occupancy bounds and
// reachability. No kernel ever runs and no thread is spawned, so
// arbitrarily large plans lint in milliseconds.
//
//   vsa_lint [lint] [--algo qr|chol|lu|all] --mt 8 --nt 6
//            [--nb 8 --ib 4 --tree hier --h 2 --boundary shifted
//             --nodes 2 --workers 2 --panels 3 --verbose --json]
//
// Subcommand `verify-protocol` runs the bounded model checker over the
// net::Reliable ack/retransmit protocol (prt::verify): every
// drop/duplicate/reorder/timeout interleaving within the budgets,
// asserting exactly-once in-order delivery and livelock freedom.
//
//   vsa_lint verify-protocol [--window 3 --faults 2 --ticks -1
//                             --max-states 4000000 --json]
//
// mt/nt are TILE counts (the matrix is mt*nb by nt*nb; chol and lu use
// mt x mt). `--json` replaces the human output with one machine-readable
// JSON object on stdout for CI gating.
//
// Exit codes, one per failure class:
//   0  everything verified clean
//   1  a linted plan has an error-severity graph finding
//   2  usage error (unknown flag/value, plan construction failure)
//   3  protocol violation or truncated (incomplete) model exploration
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "chol/vsa_chol.hpp"
#include "lu/vsa_lu.hpp"
#include "prt/verify.hpp"
#include "vsaqr/tree_qr.hpp"

using namespace pulsarqr;

namespace {

struct Args {
  std::string subcommand = "lint";
  std::map<std::string, std::string> kv;

  bool has(const std::string& k) const { return kv.count(k) > 0; }
  int geti(const std::string& k, int dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : std::atoi(it->second.c_str());
  }
  long long getll(const std::string& k, long long dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : std::atoll(it->second.c_str());
  }
  std::string gets(const std::string& k, const std::string& dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
};

Args parse(int argc, char** argv) {
  Args a;
  int i = 1;
  if (i < argc && std::strncmp(argv[i], "--", 2) != 0) {
    a.subcommand = argv[i++];
  }
  for (; i < argc; ++i) {
    const char* arg = argv[i];
    if (arg[0] != '-' || arg[1] != '-') {
      std::fprintf(stderr, "unexpected argument: %s\n", arg);
      std::exit(2);
    }
    const std::string key(arg + 2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      a.kv[key] = argv[++i];
    } else {
      a.kv[key] = "1";
    }
  }
  return a;
}

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// One linted plan, retained so --json can emit them all at the end.
struct PlanVerdict {
  std::string algo;
  std::string shape;
  prt::GraphReport report;
};

/// Print one plan's verdict (human mode); returns its error count.
int report(const PlanVerdict& v, bool verbose, bool json) {
  if (json) return v.report.errors();
  if (v.report.ok() && v.report.diagnostics.empty()) {
    std::printf("%-5s %s: OK\n", v.algo.c_str(), v.shape.c_str());
  } else {
    std::printf("%-5s %s: %d error(s), %d warning(s)\n", v.algo.c_str(),
                v.shape.c_str(), v.report.errors(), v.report.warnings());
    verbose = true;
  }
  if (verbose && !v.report.diagnostics.empty()) {
    std::printf("%s\n", v.report.to_string().c_str());
  }
  return v.report.errors();
}

int run_lint(const Args& a) {
  const std::string algo = a.gets("algo", "all");
  const int mt = a.geti("mt", 8);
  const int nt = a.geti("nt", 6);
  const int nb = a.geti("nb", 8);
  const bool verbose = a.has("verbose");
  const bool json = a.has("json");
  if (mt < 1 || nt < 1 || nb < 1) {
    std::fprintf(stderr, "need --mt >= 1, --nt >= 1, --nb >= 1\n");
    return 2;
  }
  if (algo != "qr" && algo != "chol" && algo != "lu" && algo != "all") {
    std::fprintf(stderr, "unknown --algo %s (qr|chol|lu|all)\n", algo.c_str());
    return 2;
  }

  std::vector<PlanVerdict> verdicts;
  try {
    if (algo == "qr" || algo == "all") {
      vsaqr::TreeQrOptions opt;
      const std::string tree = a.gets("tree", "hier");
      if (tree == "flat") {
        opt.tree.tree = plan::TreeKind::Flat;
      } else if (tree == "binary") {
        opt.tree.tree = plan::TreeKind::Binary;
      } else if (tree == "hier" || tree == "binary-on-flat") {
        opt.tree.tree = plan::TreeKind::BinaryOnFlat;
      } else {
        std::fprintf(stderr, "unknown --tree %s (flat|binary|hier)\n",
                     tree.c_str());
        return 2;
      }
      opt.tree.domain_size = a.geti("h", 6);
      opt.tree.boundary = a.gets("boundary", "shifted") == "fixed"
                              ? plan::BoundaryMode::Fixed
                              : plan::BoundaryMode::Shifted;
      opt.ib = std::min(a.geti("ib", 4), nb);
      opt.nodes = a.geti("nodes", 1);
      opt.workers_per_node = a.geti("workers", 2);
      opt.panel_columns = a.geti("panels", -1);
      const TileMatrix zero(mt * nb, nt * nb, nb);
      verdicts.push_back(
          {"qr",
           "mt=" + std::to_string(mt) + " nt=" + std::to_string(nt) +
               " tree=" + tree + " h=" + std::to_string(opt.tree.domain_size),
           vsaqr::lint_tree_qr(zero, opt)});
    }
    if (algo == "chol" || algo == "all") {
      chol::VsaCholOptions opt;
      opt.nodes = a.geti("nodes", 1);
      opt.workers_per_node = a.geti("workers", 2);
      const TileMatrix zero(mt * nb, mt * nb, nb);
      verdicts.push_back({"chol", "mt=" + std::to_string(mt),
                          chol::lint_vsa_cholesky(zero, opt)});
    }
    if (algo == "lu" || algo == "all") {
      lu::VsaLuOptions opt;
      opt.nodes = a.geti("nodes", 1);
      opt.workers_per_node = a.geti("workers", 2);
      const TileMatrix zero(mt * nb, mt * nb, nb);
      verdicts.push_back(
          {"lu", "mt=" + std::to_string(mt), lu::lint_vsa_lu(zero, opt)});
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  int errors = 0;
  for (const PlanVerdict& v : verdicts) errors += report(v, verbose, json);
  if (json) {
    std::string out = "{\"plans\":[";
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      if (i != 0) out += ',';
      out += "{\"algo\":\"";
      json_escape(out, verdicts[i].algo);
      out += "\",\"shape\":\"";
      json_escape(out, verdicts[i].shape);
      out += "\",\"report\":";
      out += verdicts[i].report.to_json();
      out += '}';
    }
    out += "],\"errors\":" + std::to_string(errors) + "}";
    std::printf("%s\n", out.c_str());
  }
  return errors > 0 ? 1 : 0;
}

int run_verify_protocol(const Args& a) {
  prt::verify::ReliableModelOptions opt;
  opt.window = a.geti("window", opt.window);
  opt.max_faults = a.geti("faults", opt.max_faults);
  opt.max_ticks = a.geti("ticks", opt.max_ticks);
  opt.max_depth = a.geti("max-depth", opt.max_depth);
  opt.max_states = a.getll("max-states", opt.max_states);
  if (opt.window < 1 || opt.max_faults < 0) {
    std::fprintf(stderr, "need --window >= 1 and --faults >= 0\n");
    return 2;
  }
  const prt::verify::ReliableModelResult res =
      prt::verify::check_reliable(opt);
  if (a.has("json")) {
    std::string out = "{\"window\":" + std::to_string(opt.window) +
                      ",\"max_faults\":" + std::to_string(opt.max_faults) +
                      ",\"states\":" + std::to_string(res.states) +
                      ",\"transitions\":" + std::to_string(res.transitions) +
                      ",\"executions\":" + std::to_string(res.executions) +
                      ",\"depth\":" + std::to_string(res.depth) +
                      ",\"truncated\":";
    out += res.truncated ? "true" : "false";
    out += ",\"violations\":[";
    for (std::size_t i = 0; i < res.violations.size(); ++i) {
      if (i != 0) out += ',';
      out += '"';
      json_escape(out, res.violations[i]);
      out += '"';
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
  } else {
    std::printf("%s\n", res.to_string().c_str());
  }
  return res.ok() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (a.subcommand == "lint") return run_lint(a);
  if (a.subcommand == "verify-protocol") return run_verify_protocol(a);
  std::fprintf(stderr, "unknown subcommand %s (lint|verify-protocol)\n",
               a.subcommand.c_str());
  return 2;
}
